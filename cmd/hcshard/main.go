// Command hcshard is one shard worker of the distributed exact engine: the
// coordinator (internal/dist.Cluster with transport "proc") forks one hcshard
// per shard, ships it the graph and program spec over a socket, and drives it
// round by round with the same frame protocol goroutine workers speak. It has
// no standalone mode — running it outside a coordinator is an error.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"dhc/internal/dist"
)

func main() {
	var (
		socket  = flag.String("socket", "", "coordinator socket address (required)")
		network = flag.String("network", "unix", "socket network: unix or tcp")
		shard   = flag.Int("shard", -1, "shard index (required)")
	)
	flag.Parse()
	if *socket == "" || *shard < 0 {
		fmt.Fprintln(os.Stderr, "hcshard: -socket and -shard are required (this binary is launched by the dist coordinator)")
		os.Exit(2)
	}
	conn, err := net.Dial(*network, *socket)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hcshard: dial %s %s: %v\n", *network, *socket, err)
		os.Exit(1)
	}
	defer conn.Close()
	if err := dist.RunWorker(conn, *shard, dist.FaultFromEnv()); err != nil {
		fmt.Fprintf(os.Stderr, "hcshard: shard %d: %v\n", *shard, err)
		os.Exit(1)
	}
}
