package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dhc"
	"dhc/internal/bench"
	"dhc/internal/peakmem"
)

// scalingParams is the -scaling pipeline's configuration: the same grid axes
// as -json, but one shared instance per size, memory metering around both
// construction and every solve, and a hard counter-identity check across the
// worker grid.
type scalingParams struct {
	out, rev     string
	grid         benchGrid
	seed         uint64
	colors       int
	delta, cmult float64
	// solve overrides dhc.SolveContext in tests; nil selects the real solver.
	solve func(ctx context.Context, g *dhc.Graph, algo dhc.Algorithm, opts dhc.Options) (*dhc.Result, error)
}

// runScaling measures the multi-core scaling curve: for each size it builds
// one G(n,p) instance (metering the streaming construction's heap high-water
// against the finished CSR footprint), then solves the same instance once per
// worker count with a PeakSampler running. Every row is a Scaling record
// carrying mem_peak_bytes / bytes_per_vertex / construction_peak_bytes /
// graph_bytes. Counters must be byte-identical across the whole worker grid —
// any divergence aborts the run before a report is written, making this mode
// double as the determinism smoke test CI runs on every push. A cell whose
// solve errors fails the run too: an errored cell never entered the identity
// check, so letting it through would report "deterministic" for a grid that
// was never actually compared.
func runScaling(ctx context.Context, p scalingParams) error {
	solve := p.solve
	if solve == nil {
		solve = dhc.SolveContext
	}
	rep := bench.NewReport(p.rev, runtime.Version(), runtime.NumCPU())
	var failed []string
	for _, n := range p.grid.sizes {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("scaling grid canceled; %s not written: %w", p.out, err)
		}
		pr := dhc.ThresholdP(n, p.cmult, p.delta)
		graphSeed := p.seed + uint64(n)
		runtime.GC()
		ps := peakmem.Start(0)
		start := time.Now()
		g := dhc.NewGNP(n, pr, graphSeed)
		buildWall := time.Since(start).Seconds()
		constructionPeak := ps.Stop()
		graphBytes := g.MemBytes()
		fmt.Printf("construct n=%d: m=%d wall=%.3fs graph=%.1fMB peak=%.1fMB (%.2fx of graph)\n",
			n, g.M(), buildWall, mb(graphBytes), mb(constructionPeak),
			float64(constructionPeak)/float64(graphBytes))
		for _, algo := range p.grid.algos {
			for _, engine := range p.grid.engines {
				var base *bench.Record
				for _, workers := range p.grid.workerGrid {
					if err := ctx.Err(); err != nil {
						return fmt.Errorf("scaling grid canceled; %s not written: %w", p.out, err)
					}
					rec := bench.Record{
						Algo:                  algo.String(),
						Engine:                engine.Name(),
						N:                     n,
						M:                     int64(g.M()),
						P:                     pr,
						Seed:                  p.seed,
						GraphSeed:             graphSeed,
						NumColors:             p.colors,
						Workers:               workers,
						Scaling:               true,
						ConstructionPeakBytes: constructionPeak,
						GraphBytes:            graphBytes,
					}
					opts := dhc.Options{
						Seed:       rec.Seed,
						Engine:     engine.Engine,
						NumColors:  p.colors,
						Delta:      p.delta,
						Workers:    workers,
						DenseSweep: engine.Dense,
					}
					applyDist(p.grid, engine, &opts, &rec)
					runtime.GC()
					ps := peakmem.Start(0)
					start := time.Now()
					res, err := solve(ctx, g, algo, opts)
					rec.WallSeconds = time.Since(start).Seconds()
					rec.MemPeakBytes = ps.Stop()
					solverBytes := rec.MemPeakBytes - graphBytes
					if solverBytes < 0 {
						solverBytes = 0
					}
					rec.BytesPerVertex = float64(solverBytes) / float64(n)
					if err != nil {
						rec.Error = err.Error()
					} else {
						rec.OK = true
						rec.Rounds = res.Rounds
						rec.Steps = res.Steps
						rec.Phase1Rounds = res.Phase1Rounds
						rec.Phase2Rounds = res.Phase2Rounds
						rec.ShardStats = res.ShardStats
						if res.Counters != nil {
							rec.Messages = res.Counters.Messages
							rec.Bits = res.Counters.Bits
							rec.RoundsSkipped = res.Counters.RoundsSkipped
						}
					}
					rep.Append(rec)
					status := "ok=true"
					if !rec.OK {
						status = "ok=false err=" + rec.Error
					}
					fmt.Printf("%s/%s n=%d workers=%d: wall=%.3fs peak=%.1fMB (%.0f solver B/vertex) %s\n",
						rec.Algo, rec.Engine, n, workers, rec.WallSeconds,
						mb(rec.MemPeakBytes), rec.BytesPerVertex, status)
					if !rec.OK {
						// An errored cell is a hole in the counter-identity
						// check, not a pass: record it and fail the run once
						// the grid finishes, so one look at the output lists
						// every broken cell instead of just the first.
						failed = append(failed, fmt.Sprintf("%s/%s n=%d workers=%d: %s",
							rec.Algo, rec.Engine, n, workers, rec.Error))
					}
					if rec.OK {
						if base == nil {
							cp := rec
							base = &cp
						} else if rec.Rounds != base.Rounds || rec.Steps != base.Steps ||
							rec.Phase1Rounds != base.Phase1Rounds || rec.Phase2Rounds != base.Phase2Rounds ||
							rec.Messages != base.Messages || rec.Bits != base.Bits {
							return fmt.Errorf("determinism violation: %s/%s n=%d workers=%d counters "+
								"(rounds=%d steps=%d p1=%d p2=%d) diverge from workers=%d "+
								"(rounds=%d steps=%d p1=%d p2=%d); %s not written",
								rec.Algo, rec.Engine, n, workers,
								rec.Rounds, rec.Steps, rec.Phase1Rounds, rec.Phase2Rounds,
								base.Workers, base.Rounds, base.Steps, base.Phase1Rounds, base.Phase2Rounds,
								p.out)
						}
					}
				}
			}
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("scaling run failed: %d cell(s) errored, so the cross-worker "+
			"determinism check did not cover the grid; %s not written:\n  %s",
			len(failed), p.out, strings.Join(failed, "\n  "))
	}
	if err := rep.Validate(); err != nil {
		return err
	}
	f, err := os.Create(p.out)
	if err != nil {
		return err
	}
	if err := rep.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	printSpeedups(rep, p.grid)
	fmt.Printf("wrote %s (%d scaling records, schema v%d, host %d-cpu)\n",
		p.out, len(rep.Records), rep.SchemaVersion, rep.NumCPU)
	return nil
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
