// Command hcbench regenerates every experiment table of DESIGN.md's
// per-experiment index and prints fitted scaling exponents. Its output is
// the source of the measured columns in EXPERIMENTS.md.
//
// Usage:
//
//	hcbench                 # all experiments, default scale
//	hcbench -only E2,E4     # a subset
//	hcbench -scale 0.5 -trials 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dhc/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hcbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		only    = flag.String("only", "", "comma-separated experiment ids (E1,E2,E3,E4,E6,E8,D1)")
		trials  = flag.Int("trials", 3, "trials per sweep point")
		scale   = flag.Float64("scale", 1, "multiplier on the default n grids")
		seed    = flag.Uint64("seed", 1, "base seed")
		workers = flag.Int("workers", 1, "step-engine phase-1 worker pool size (identical results at any value)")
	)
	flag.Parse()

	cfg := bench.Config{Trials: *trials, Scale: *scale, Seed: *seed, Workers: *workers}
	runners := map[string]func(bench.Config) *bench.Table{
		"E1": bench.E1, "E2": bench.E2, "E3": bench.E3,
		"E4": bench.E4, "E6": bench.E6, "E8": bench.E8, "D1": bench.D1,
	}
	order := []string{"E1", "E2", "E3", "E4", "E6", "E8", "D1"}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, id := range order {
		if len(want) > 0 && !want[id] {
			continue
		}
		t := runners[id](cfg)
		if err := t.Write(os.Stdout); err != nil {
			return err
		}
		printFits(id, t)
	}
	return nil
}

// printFits reports log-log scaling exponents for the experiments where the
// paper predicts one.
func printFits(id string, t *bench.Table) {
	switch id {
	case "E1":
		xs, ys := bench.Columns(t.Rows, bench.XN, bench.YSteps)
		fmt.Printf("E1 fit: steps ~ n^%.3f (Theorem 2 predicts ~1 x log factor)\n\n",
			bench.FitExponent(xs, ys))
	case "E2":
		xs, ys := bench.Columns(t.Rows, bench.XN, bench.YRounds)
		fmt.Printf("E2 fit: rounds ~ n^%.3f (Theorem 1 predicts ~0.5 x polylog)\n\n",
			bench.FitExponent(xs, ys))
	case "E4":
		byDelta := map[string][]bench.Row{}
		for _, r := range t.Rows {
			byDelta[r.Label] = append(byDelta[r.Label], r)
		}
		for label, rows := range byDelta {
			xs, ys := bench.Columns(rows, bench.XN, bench.YRounds)
			fmt.Printf("E4 fit %s: rounds ~ n^%.3f (Theorem 10 predicts ~delta x polylog)\n",
				label, bench.FitExponent(xs, ys))
		}
		fmt.Println()
	case "E6":
		xs, ys := bench.Columns(t.Rows, bench.XN, bench.YRounds)
		fmt.Printf("E6 fit: rounds ~ n^%.3f (Theorem 19 predicts ~1-delta regimes)\n\n",
			bench.FitExponent(xs, ys))
	}
}
