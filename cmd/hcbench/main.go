// Command hcbench regenerates every experiment table of DESIGN.md's
// per-experiment index and prints fitted scaling exponents. Its output is
// the source of the measured columns in EXPERIMENTS.md.
//
// It is also the repository's benchmark pipeline: -json runs a
// (algo × engine × n × workers) grid and writes a versioned machine-readable
// report (the BENCH_<rev>.json trajectory files at the repository root), and
// -validate checks such a report's schema and run health, which is what the
// CI smoke job gates on.
//
// Usage:
//
//	hcbench                 # all experiments, default scale
//	hcbench -only E2,E4     # a subset
//	hcbench -scale 0.5 -trials 2
//	hcbench -json BENCH_abc1234.json -rev abc1234 \
//	    -algos dhc2 -engines step -sizes 100000,1000000 -workerGrid 1,8
//	hcbench -validate BENCH_abc1234.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"dhc"
	"dhc/internal/bench"
	"dhc/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hcbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		only    = flag.String("only", "", "comma-separated experiment ids (E1,E2,E3,E4,E6,E8,D1)")
		trials  = flag.Int("trials", 3, "trials per sweep point")
		scale   = flag.Float64("scale", 1, "multiplier on the default n grids")
		seed    = flag.Uint64("seed", 1, "base seed")
		workers = flag.Int("workers", 1, "worker pool size for the experiment tables (identical results at any value)")

		jsonOut    = flag.String("json", "", "benchmark pipeline: write a versioned JSON report to this path and exit")
		scaling    = flag.String("scaling", "", "scaling pipeline: run the -workerGrid curve over one shared instance per size with heap high-water metering, verify counter identity across worker counts, and write the JSON report to this path")
		validate   = flag.String("validate", "", "validate an existing JSON report (schema + no failed runs) and exit")
		rev        = flag.String("rev", "dev", "revision label embedded in the JSON report")
		algos      = flag.String("algos", "dhc2", "pipeline: comma-separated algorithms (dra,dhc1,dhc2,upcast)")
		engines    = flag.String("engines", "step", "pipeline: comma-separated engines (step,exact,exact-dense,dist)")
		sizes      = flag.String("sizes", "4096,16384", "pipeline: comma-separated vertex counts")
		workerGrid = flag.String("workerGrid", "1,8", "pipeline: comma-separated worker counts to measure each point at")
		shards     = flag.Int("shards", 4, "pipeline: shard-worker count for the dist engine columns")
		transport  = flag.String("transport", "unix", "pipeline: shard transport for the dist engine (unix, tcp, proc)")
		shardBin   = flag.String("shardbin", "", "pipeline: hcshard binary for -transport proc (default: resolve hcshard via PATH)")
		colors     = flag.Int("colors", 8, "pipeline: partition count K (0 = let the algorithm derive it)")
		delta      = flag.Float64("delta", 1.0, "pipeline: density exponent of p = cmult*ln(n)/n^delta")
		cmult      = flag.Float64("cmult", 32, "pipeline: density constant of p = cmult*ln(n)/n^delta")
		bound      = flag.Int64("bound", 0, "pipeline: broadcast-bound override B for the exact engines (0 = tight default, n = the paper's trivial bound)")
		reuse      = flag.Int("reuseTrials", 0, "pipeline: also measure repeated-trial throughput over this many per-point trials, once via fresh Solve calls and once via one reusable Solver session (mode=fresh/reuse record pairs)")
		gen        = flag.String("gen", "", "pipeline: also measure construction throughput for these comma-separated graph families (gnp,gnm,regular,powerlaw,geometric,sbm,hypercube,torus)")
		genSizes   = flag.String("genSizes", "10000,100000", "pipeline: vertex counts for the -gen construction grid (lattice families round down to their nearest valid size)")
		genParam   = flag.Float64("genParam", 4, "pipeline: density parameter for the -gen families (same meaning as a sweep cell's param; ignored by lattices)")
		genDelta   = flag.Float64("genDelta", 1, "pipeline: density exponent for the -gen families (independent of -delta: construction throughput is usually measured in the sparse regime)")

		client       = flag.String("client", "", "load-test mode: base URL of a running hcserve (e.g. http://127.0.0.1:8080); issues a cold pass then a warm pass over the -sizes x -algos x -engines x -clientSeeds request mix and records latency/throughput/cache rows")
		clientConns  = flag.Int("clientConns", 4, "client mode: concurrent connections")
		clientReqs   = flag.Int("clientRequests", 128, "client mode: warm-pass request count (raised to the mix size when smaller)")
		clientSeeds  = flag.Int("clientSeeds", 4, "client mode: solver seeds per grid point in the request mix")
		clientSolveT = flag.Int64("clientTimeoutMS", 0, "client mode: per-request solve deadline in milliseconds (0 = the server's default)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
		memprofile = flag.String("memprofile", "", "write a heap profile at exit to this path")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hcbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "hcbench: memprofile:", err)
			}
		}()
	}

	if *validate != "" {
		return runValidate(*validate)
	}
	if *client != "" {
		grid, err := parseGrid(*algos, *engines, *sizes, *workerGrid, *shards, *transport, *shardBin)
		if err != nil {
			return err
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return runClient(ctx, clientParams{
			url:   strings.TrimRight(*client, "/"),
			conns: *clientConns, requests: *clientReqs, seeds: *clientSeeds,
			grid: grid, colors: *colors, delta: *delta, cmult: *cmult,
			timeoutMS: *clientSolveT, out: *jsonOut, rev: *rev,
		})
	}
	if *scaling != "" {
		grid, err := parseGrid(*algos, *engines, *sizes, *workerGrid, *shards, *transport, *shardBin)
		if err != nil {
			return err
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return runScaling(ctx, scalingParams{
			out: *scaling, rev: *rev, grid: grid,
			seed: *seed, colors: *colors, delta: *delta, cmult: *cmult,
		})
	}
	if *jsonOut != "" {
		grid, err := parseGrid(*algos, *engines, *sizes, *workerGrid, *shards, *transport, *shardBin)
		if err != nil {
			return err
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		gp := genParams{families: *gen, param: *genParam, delta: *genDelta}
		if gp.families != "" {
			if gp.sizes, err = bench.ParseInts(*genSizes); err != nil {
				return fmt.Errorf("bad -genSizes: %w", err)
			}
		}
		return runJSON(ctx, jsonParams{
			out: *jsonOut, rev: *rev, grid: grid,
			trials: *trials, seed: *seed, colors: *colors,
			delta: *delta, cmult: *cmult, bound: *bound,
			reuseTrials: *reuse, gen: gp,
		})
	}

	cfg := bench.Config{Trials: *trials, Scale: *scale, Seed: *seed, Workers: *workers}
	runners := map[string]func(bench.Config) *bench.Table{
		"E1": bench.E1, "E2": bench.E2, "E3": bench.E3,
		"E4": bench.E4, "E6": bench.E6, "E8": bench.E8, "D1": bench.D1,
	}
	order := []string{"E1", "E2", "E3", "E4", "E6", "E8", "D1"}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	for _, id := range order {
		if len(want) > 0 && !want[id] {
			continue
		}
		t := runners[id](cfg)
		if err := t.Write(os.Stdout); err != nil {
			return err
		}
		printFits(id, t)
	}
	return nil
}

// benchGrid is the cartesian sweep of the JSON pipeline.
type benchGrid struct {
	algos      []dhc.Algorithm
	engines    []bench.EngineMode
	sizes      []int
	workerGrid []int
	// shards/transport/shardBin are the shard topology applied to every
	// "dist" engine column of the grid (ignored by the in-process engines).
	shards              int
	transport, shardBin string
}

// applyDist configures opts for the distributed engine when mode is a "dist"
// column, and mirrors the topology into the report record (nil rec skipped).
func applyDist(grid benchGrid, mode bench.EngineMode, opts *dhc.Options, rec *bench.Record) {
	if !mode.Dist {
		return
	}
	opts.Shards = grid.shards
	opts.Transport = grid.transport
	opts.ShardBinary = grid.shardBin
	if rec != nil {
		rec.Shards = grid.shards
		rec.Transport = grid.transport
	}
}

type jsonParams struct {
	out, rev     string
	grid         benchGrid
	trials       int
	seed         uint64
	colors       int
	delta, cmult float64
	bound        int64
	reuseTrials  int
	gen          genParams
}

// genParams is the -gen construction-throughput grid.
type genParams struct {
	families     string
	sizes        []int
	param, delta float64
}

func parseGrid(algos, engines, sizes, workerGrid string, shards int, transport, shardBin string) (benchGrid, error) {
	g := benchGrid{shards: shards, transport: transport, shardBin: shardBin}
	var err error
	if g.algos, err = bench.ParseAlgorithms(algos); err != nil {
		return g, err
	}
	if g.engines, err = bench.ParseEngineModes(engines); err != nil {
		return g, err
	}
	if g.sizes, err = bench.ParseInts(sizes); err != nil {
		return g, fmt.Errorf("bad -sizes: %w", err)
	}
	if g.workerGrid, err = bench.ParseInts(workerGrid); err != nil {
		return g, fmt.Errorf("bad -workerGrid: %w", err)
	}
	if len(g.algos) == 0 || len(g.engines) == 0 || len(g.sizes) == 0 || len(g.workerGrid) == 0 {
		return g, fmt.Errorf("empty pipeline grid")
	}
	for _, e := range g.engines {
		if e.Dist && g.shards < 2 {
			return g, fmt.Errorf("engine dist needs -shards >= 2 (got %d)", g.shards)
		}
	}
	return g, nil
}

// runJSON executes the benchmark grid and writes the versioned report. Each
// graph is generated once per (n, trial) and shared across the whole
// algo × engine × workers sweep, so wall-clock differences within a point
// measure the solver, not the generator. SIGINT/SIGTERM cancels the run via
// ctx; cancelled runs surface as failed records and the report is not
// written.
func runJSON(ctx context.Context, p jsonParams) error {
	if p.trials < 1 {
		p.trials = 1
	}
	rep := bench.NewReport(p.rev, runtime.Version(), runtime.NumCPU())
	for _, n := range p.grid.sizes {
		pr := dhc.ThresholdP(n, p.cmult, p.delta)
		for trial := 0; trial < p.trials; trial++ {
			// Stop before the next (uncancellable) graph generation: a
			// cancelled grid must not keep burning time, and above all must
			// not overwrite a previous good report with canceled rows.
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("benchmark grid canceled; %s not written: %w", p.out, err)
			}
			graphSeed := p.seed + uint64(trial)*1000003 + uint64(n)
			g := dhc.NewGNP(n, pr, graphSeed)
			for _, algo := range p.grid.algos {
				for _, engine := range p.grid.engines {
					for _, workers := range p.grid.workerGrid {
						rec := bench.Record{
							Algo:           algo.String(),
							Engine:         engine.Name(),
							N:              n,
							M:              int64(g.M()),
							P:              pr,
							Seed:           p.seed + uint64(trial),
							GraphSeed:      graphSeed,
							NumColors:      p.colors,
							BroadcastBound: p.bound,
							Workers:        workers,
						}
						opts := dhc.Options{
							Seed:           rec.Seed,
							Engine:         engine.Engine,
							NumColors:      p.colors,
							Delta:          p.delta,
							Workers:        workers,
							DenseSweep:     engine.Dense,
							BroadcastBound: p.bound,
						}
						applyDist(p.grid, engine, &opts, &rec)
						start := time.Now()
						res, err := dhc.SolveContext(ctx, g, algo, opts)
						rec.WallSeconds = time.Since(start).Seconds()
						if err != nil {
							rec.Error = err.Error()
						} else {
							rec.OK = true
							rec.Rounds = res.Rounds
							rec.Steps = res.Steps
							rec.Phase1Rounds = res.Phase1Rounds
							rec.Phase2Rounds = res.Phase2Rounds
							rec.ShardStats = res.ShardStats
							if res.Counters != nil {
								rec.Messages = res.Counters.Messages
								rec.Bits = res.Counters.Bits
								rec.RoundsSkipped = res.Counters.RoundsSkipped
							}
							if len(res.ShardStats) > 0 {
								// Every exchange fans out to all links, so
								// shard 0's RTT count is the run's.
								rec.RTTs = res.ShardStats[0].RTTs
								for _, st := range res.ShardStats {
									rec.BatchBytesFixed += st.BatchBytesFixed
									rec.BatchBytesDelta += st.BatchBytesDelta
								}
								if executed := rec.Rounds - rec.RoundsSkipped; executed > 0 {
									rec.RTTsPerRound = float64(rec.RTTs) / float64(executed)
								}
							}
						}
						rep.Append(rec)
						fmt.Printf("%s/%s n=%d workers=%d trial=%d: wall=%.3fs ok=%v\n",
							rec.Algo, rec.Engine, n, workers, trial, rec.WallSeconds, rec.OK)
					}
				}
			}
		}
	}
	if p.reuseTrials > 0 {
		if err := appendReuseRecords(ctx, rep, p); err != nil {
			return err
		}
	}
	if p.gen.families != "" {
		if err := appendGenRecords(ctx, rep, p); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("benchmark grid canceled; %s not written: %w", p.out, err)
	}
	pairDistRecords(rep)
	if err := rep.Validate(); err != nil {
		return err
	}
	f, err := os.Create(p.out)
	if err != nil {
		return err
	}
	if err := rep.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	printSpeedups(rep, p.grid)
	printDistSummary(rep)
	fmt.Printf("wrote %s (%d records, schema v%d, host %d-cpu)\n",
		p.out, len(rep.Records), rep.SchemaVersion, rep.NumCPU)
	return nil
}

// pairDistRecords fills each successful dist grid row's DistVsInProc: its
// wall-clock ratio against the in-process exact row of the same
// (algo, n, seed, workers) in the same report. Unpaired rows (no exact
// column in the grid) keep the zero value, which Validate permits.
func pairDistRecords(rep *bench.Report) {
	for i := range rep.Records {
		rec := &rep.Records[i]
		if rec.Engine != "dist" || !rec.OK || rec.Mode != "" {
			continue
		}
		for j := range rep.Records {
			base := &rep.Records[j]
			if base.Engine == "exact" && base.OK && base.Mode == "" &&
				base.Algo == rec.Algo && base.N == rec.N &&
				base.Seed == rec.Seed && base.Workers == rec.Workers &&
				base.WallSeconds > 0 {
				rec.DistVsInProc = rec.WallSeconds / base.WallSeconds
				break
			}
		}
	}
}

// printDistSummary renders the distributed fast-path metrics per dist grid
// row: RTTs per executed round, the delta encoding's wire savings, and the
// dist-vs-in-process wall-clock ratio where an exact row pairs with it.
func printDistSummary(rep *bench.Report) {
	printed := false
	for _, rec := range rep.Records {
		if rec.Engine != "dist" || !rec.OK || rec.Mode != "" {
			continue
		}
		if !printed {
			fmt.Println("dist fast path:")
			printed = true
		}
		saved := 0.0
		if rec.BatchBytesFixed > 0 {
			saved = 100 * (1 - float64(rec.BatchBytesDelta)/float64(rec.BatchBytesFixed))
		}
		line := fmt.Sprintf("  %s n=%d shards=%d %s: %.2f RTTs/round, batch bytes -%.0f%%",
			rec.Algo, rec.N, rec.Shards, rec.Transport, rec.RTTsPerRound, saved)
		if rec.DistVsInProc > 0 {
			line += fmt.Sprintf(", %.2fx in-process wall", rec.DistVsInProc)
		}
		fmt.Println(line)
	}
}

// appendReuseRecords measures the repeated-trial throughput grid: for each
// (algo, engine, n, workers) point it solves reuseTrials distinct same-sized
// instances twice — once through independent Solve calls ("fresh"), once
// through a single reusable Solver session ("reuse") — and appends one Mode
// record per series with its trials/sec. Graphs are pre-generated and seeds
// are identical across the two series, so the pair isolates the solver
// lifecycle; the two series also produce byte-identical results by the
// solver determinism contract (any divergence would show up as a failed
// record).
func appendReuseRecords(ctx context.Context, rep *bench.Report, p jsonParams) error {
	for _, n := range p.grid.sizes {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("reuse grid canceled: %w", err)
		}
		pr := dhc.ThresholdP(n, p.cmult, p.delta)
		graphs := make([]*dhc.Graph, p.reuseTrials)
		graphSeed0 := p.seed + uint64(n)
		for t := range graphs {
			graphs[t] = dhc.NewGNP(n, pr, graphSeed0+uint64(t)*1000003)
		}
		for _, algo := range p.grid.algos {
			for _, engine := range p.grid.engines {
				for _, workers := range p.grid.workerGrid {
					opts := dhc.Options{
						Engine:         engine.Engine,
						DenseSweep:     engine.Dense,
						NumColors:      p.colors,
						Delta:          p.delta,
						Workers:        workers,
						BroadcastBound: p.bound,
					}
					applyDist(p.grid, engine, &opts, nil)
					solver, err := dhc.NewSolver(algo, opts)
					if err != nil {
						return err
					}
					series := []struct {
						mode  string
						solve func(t int) (*dhc.Result, error)
					}{
						{"fresh", func(t int) (*dhc.Result, error) {
							o := opts
							o.Seed = p.seed + uint64(t)
							return dhc.SolveContext(ctx, graphs[t], algo, o)
						}},
						{"reuse", func(t int) (*dhc.Result, error) {
							return solver.SolveSeeded(ctx, graphs[t], p.seed+uint64(t))
						}},
					}
					for _, s := range series {
						rec := bench.Record{
							Algo:           algo.String(),
							Engine:         engine.Name(),
							N:              n,
							M:              int64(graphs[0].M()),
							P:              pr,
							Seed:           p.seed,
							GraphSeed:      graphSeed0,
							NumColors:      p.colors,
							BroadcastBound: p.bound,
							Workers:        workers,
							Mode:           s.mode,
						}
						if engine.Dist {
							rec.Shards = p.grid.shards
							rec.Transport = p.grid.transport
						}
						start := time.Now()
						var res *dhc.Result
						var err error
						attempted := 0
						for t := 0; t < p.reuseTrials && err == nil; t++ {
							attempted++
							res, err = s.solve(t)
						}
						rec.WallSeconds = time.Since(start).Seconds()
						// Record the trials actually run; an aborted series
						// must not claim the full count's throughput.
						rec.Trials = attempted
						if err == nil && rec.WallSeconds > 0 {
							rec.TrialsPerSec = float64(attempted) / rec.WallSeconds
						}
						if err != nil {
							rec.Error = err.Error()
						} else {
							rec.OK = true
							rec.Rounds = res.Rounds
							rec.Steps = res.Steps
							rec.Phase1Rounds = res.Phase1Rounds
							rec.Phase2Rounds = res.Phase2Rounds
							// Last trial's shard accounting stands in for the
							// series (per-trial stats would bloat Mode rows).
							rec.ShardStats = res.ShardStats
							if res.Counters != nil {
								rec.Messages = res.Counters.Messages
								rec.Bits = res.Counters.Bits
								rec.RoundsSkipped = res.Counters.RoundsSkipped
							}
						}
						rep.Append(rec)
						fmt.Printf("%s/%s n=%d workers=%d mode=%s: %d trials in %.3fs (%.1f trials/sec) ok=%v\n",
							rec.Algo, rec.Engine, n, workers, s.mode, rec.Trials,
							rec.WallSeconds, rec.TrialsPerSec, rec.OK)
					}
				}
			}
		}
	}
	return nil
}

// appendGenRecords measures construction throughput for the -gen family
// grid: one GenRecord per (family, size), timing a single BuildInstance call
// end to end (weight setup, sampling, CSR build). Lattice families are
// deterministic and parameter-free, so their sizes round down to the nearest
// valid lattice size (largest 2^d for hypercube, largest r*r for torus) and
// param/seed are recorded as zero.
func appendGenRecords(ctx context.Context, rep *bench.Report, p jsonParams) error {
	fams, err := sweep.ParseFamilies(p.gen.families)
	if err != nil {
		return err
	}
	for _, f := range fams {
		for _, size := range p.gen.sizes {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("generator grid canceled: %w", err)
			}
			n := size
			param := p.gen.param
			seed := p.seed
			if f.Deterministic() {
				param, seed = 0, 0
				switch f {
				case sweep.FamilyHypercube:
					n = 8
					for n*2 <= size {
						n *= 2
					}
				case sweep.FamilyTorus:
					side := 3
					for (side+1)*(side+1) <= size {
						side++
					}
					n = side * side
				}
			}
			start := time.Now()
			g, err := sweep.BuildInstance(f, n, param, p.gen.delta, seed)
			wall := time.Since(start).Seconds()
			if err != nil {
				return fmt.Errorf("gen %s n=%d: %w", f, n, err)
			}
			rec := bench.GenRecord{
				Family:      f.String(),
				N:           n,
				M:           int64(g.M()),
				Param:       param,
				Seed:        seed,
				WallSeconds: wall,
			}
			if wall > 0 {
				rec.EdgesPerSec = float64(g.M()) / wall
			}
			rep.Generators = append(rep.Generators, rec)
			fmt.Printf("gen %s n=%d: m=%d wall=%.3fs (%.2gM edges/sec)\n",
				f, n, g.M(), wall, rec.EdgesPerSec/1e6)
		}
	}
	return nil
}

// printSpeedups summarizes worker scaling per series against the grid's
// smallest worker count (whatever order the grid was given in).
func printSpeedups(rep *bench.Report, grid benchGrid) {
	if len(grid.workerGrid) < 2 {
		return
	}
	base := grid.workerGrid[0]
	for _, w := range grid.workerGrid {
		if w < base {
			base = w
		}
	}
	for _, algo := range grid.algos {
		for _, engine := range grid.engines {
			for _, n := range grid.sizes {
				for _, w := range grid.workerGrid {
					if w == base {
						continue
					}
					if s, ok := rep.Speedup(algo.String(), engine.Name(), n, base, w); ok {
						fmt.Printf("speedup %s/%s n=%d: workers=%d vs %d -> %.2fx\n",
							algo.String(), engine.Name(), n, w, base, s)
					}
				}
			}
		}
	}
}

// runValidate gates CI: non-zero exit on malformed schema or any failed run.
func runValidate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := bench.DecodeReport(data)
	if err != nil {
		return err
	}
	if failed := rep.FailedRecords(); len(failed) > 0 {
		for _, i := range failed {
			rec := rep.Records[i]
			fmt.Fprintf(os.Stderr, "failed run %d: %s/%s n=%d workers=%d: %s\n",
				i, rec.Algo, rec.Engine, rec.N, rec.Workers, rec.Error)
		}
		return fmt.Errorf("%d of %d runs failed", len(failed), len(rep.Records))
	}
	serviceErrors := 0
	for i, s := range rep.Service {
		if s.Errors > 0 {
			fmt.Fprintf(os.Stderr, "service pass %d (%s): %d of %d requests errored\n",
				i, s.Pass, s.Errors, s.Requests)
			serviceErrors += s.Errors
		}
	}
	if serviceErrors > 0 {
		return fmt.Errorf("%d service requests failed", serviceErrors)
	}
	fmt.Printf("%s: schema v%d, rev %s, %d records, %d service passes, all ok\n",
		path, rep.SchemaVersion, rep.Rev, len(rep.Records), len(rep.Service))
	return nil
}

// printFits reports log-log scaling exponents for the experiments where the
// paper predicts one.
func printFits(id string, t *bench.Table) {
	switch id {
	case "E1":
		xs, ys := bench.Columns(t.Rows, bench.XN, bench.YSteps)
		fmt.Printf("E1 fit: steps ~ n^%.3f (Theorem 2 predicts ~1 x log factor)\n\n",
			bench.FitExponent(xs, ys))
	case "E2":
		xs, ys := bench.Columns(t.Rows, bench.XN, bench.YRounds)
		fmt.Printf("E2 fit: rounds ~ n^%.3f (Theorem 1 predicts ~0.5 x polylog)\n\n",
			bench.FitExponent(xs, ys))
	case "E4":
		byDelta := map[string][]bench.Row{}
		for _, r := range t.Rows {
			byDelta[r.Label] = append(byDelta[r.Label], r)
		}
		for label, rows := range byDelta {
			xs, ys := bench.Columns(rows, bench.XN, bench.YRounds)
			fmt.Printf("E4 fit %s: rounds ~ n^%.3f (Theorem 10 predicts ~delta x polylog)\n",
				label, bench.FitExponent(xs, ys))
		}
		fmt.Println()
	case "E6":
		xs, ys := bench.Columns(t.Rows, bench.XN, bench.YRounds)
		fmt.Printf("E6 fit: rounds ~ n^%.3f (Theorem 19 predicts ~1-delta regimes)\n\n",
			bench.FitExponent(xs, ys))
	}
}
