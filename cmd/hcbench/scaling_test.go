package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dhc"
	"dhc/internal/bench"
)

func tinyScalingParams(t *testing.T) scalingParams {
	t.Helper()
	return scalingParams{
		out:    filepath.Join(t.TempDir(), "scaling.json"),
		rev:    "test",
		seed:   1,
		delta:  0.5,
		cmult:  8,
		colors: 1,
		grid: benchGrid{
			algos:      []dhc.Algorithm{dhc.AlgorithmDRA},
			engines:    []bench.EngineMode{{Engine: dhc.EngineExact}},
			sizes:      []int{24},
			workerGrid: []int{1, 2},
		},
	}
}

// TestRunScalingFailsOnErroredCell pins the fix for the silent determinism
// hole: a grid whose every solve errors used to "pass" the cross-worker
// counter-identity check (errored cells were simply skipped). The run must
// now fail and leave no report behind.
func TestRunScalingFailsOnErroredCell(t *testing.T) {
	p := tinyScalingParams(t)
	boom := errors.New("solver exploded")
	p.solve = func(context.Context, *dhc.Graph, dhc.Algorithm, dhc.Options) (*dhc.Result, error) {
		return nil, boom
	}
	err := runScaling(context.Background(), p)
	if err == nil {
		t.Fatal("runScaling succeeded with every cell errored")
	}
	if !strings.Contains(err.Error(), "solver exploded") || !strings.Contains(err.Error(), "2 cell(s)") {
		t.Fatalf("error does not identify the failing cells: %v", err)
	}
	if _, statErr := os.Stat(p.out); !os.IsNotExist(statErr) {
		t.Fatalf("report %s was written despite errored cells (stat err: %v)", p.out, statErr)
	}
}

// TestRunScalingWritesReportWhenGridIsClean: the happy path still writes a
// validating report, so the new failure gate cannot mask a healthy grid.
func TestRunScalingWritesReportWhenGridIsClean(t *testing.T) {
	p := tinyScalingParams(t)
	if err := runScaling(context.Background(), p); err != nil {
		t.Fatalf("runScaling: %v", err)
	}
	data, err := os.ReadFile(p.out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	rep, err := bench.DecodeReport(data)
	if err != nil {
		t.Fatalf("report does not decode: %v", err)
	}
	if len(rep.Records) != 2 {
		t.Fatalf("got %d records, want 2", len(rep.Records))
	}
}
