package main

// The -client load-test mode: drive a running hcserve instance with a
// deterministic request mix and record latency/throughput/cache behaviour as
// bench.ServiceRecord rows.
//
// The mix is the cartesian grid -sizes × -algos × -engines × -clientSeeds of
// generated gnp instances (the same parameterization the solver pipeline
// benches), so the distinct-request count is known up front. Two passes run:
//
//	cold  each distinct request once — every response is computed, which
//	      populates the server's replay cache;
//	warm  -clientRequests requests drawn round-robin from the same mix —
//	      with an adequate cache every response is a replayed hit.
//
// The cold/warm p50 ratio is the cache-hit speedup (Report.CacheSpeedup).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dhc/internal/bench"
)

// clientParams shapes one -client run.
type clientParams struct {
	url          string
	conns        int
	requests     int // warm-pass request count
	seeds        int // seeds per grid point in the mix
	grid         benchGrid
	colors       int
	delta, cmult float64
	timeoutMS    int64
	out, rev     string
}

// clientRequest is one distinct request body of the mix.
type clientRequest struct {
	label string
	body  []byte
}

// buildMix expands the grid into the distinct request bodies. The bodies are
// pure functions of the flags, so a cold pass against a fresh server always
// misses and a warm pass over the same mix always hits.
func buildMix(p clientParams) ([]clientRequest, error) {
	type wire struct {
		Family    string  `json:"family"`
		N         int     `json:"n"`
		Param     float64 `json:"param"`
		GraphSeed uint64  `json:"graph_seed"`
		Algo      string  `json:"algo"`
		Engine    string  `json:"engine"`
		Seed      uint64  `json:"seed"`
		Delta     float64 `json:"delta"`
		NumColors int     `json:"num_colors,omitempty"`
		TimeoutMS int64   `json:"timeout_ms,omitempty"`
	}
	var mix []clientRequest
	for _, n := range p.grid.sizes {
		for _, algo := range p.grid.algos {
			for _, engine := range p.grid.engines {
				for s := 0; s < p.seeds; s++ {
					w := wire{
						Family:    "gnp",
						N:         n,
						Param:     p.cmult,
						GraphSeed: uint64(s)*1000003 + uint64(n),
						Algo:      algo.String(),
						Engine:    engine.Name(),
						Seed:      uint64(s + 1),
						Delta:     p.delta,
						NumColors: p.colors,
						TimeoutMS: p.timeoutMS,
					}
					body, err := json.Marshal(w)
					if err != nil {
						return nil, err
					}
					mix = append(mix, clientRequest{
						label: fmt.Sprintf("%s/%s n=%d seed=%d", w.Algo, w.Engine, n, w.Seed),
						body:  body,
					})
				}
			}
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty client request mix")
	}
	return mix, nil
}

// passResult aggregates one pass's per-request observations.
type passResult struct {
	latencies []time.Duration
	hits      int
	misses    int
	errors    int
	wall      time.Duration
}

// runPass issues requests[i] for every i in order (conns workers pull from a
// shared index feed), classifying each response by status and X-Cache.
func runPass(ctx context.Context, p clientParams, mix []clientRequest, order []int) passResult {
	var (
		mu  sync.Mutex
		res passResult
		wg  sync.WaitGroup
	)
	res.latencies = make([]time.Duration, 0, len(order))
	feed := make(chan int)
	conns := p.conns
	if conns > len(order) {
		conns = len(order)
	}
	// The default transport keeps only 2 idle connections per host; with more
	// workers than that, every third request would redial and the latency
	// quantiles would measure connection churn instead of the server.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = conns
	transport.MaxIdleConnsPerHost = conns
	client := &http.Client{Timeout: 5 * time.Minute, Transport: transport}
	defer transport.CloseIdleConnections()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range feed {
				req := mix[idx]
				start := time.Now()
				resp, err := client.Post(p.url+"/solve", "application/json", bytes.NewReader(req.body))
				lat := time.Since(start)
				var cache string
				ok := false
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					cache = resp.Header.Get("X-Cache")
					// Outcome statuses are fine; transport errors,
					// rejections and server errors are not.
					switch resp.StatusCode {
					case http.StatusOK, http.StatusNotFound, http.StatusUnprocessableEntity:
						ok = true
					}
				}
				mu.Lock()
				res.latencies = append(res.latencies, lat)
				switch {
				case !ok:
					res.errors++
					if err != nil {
						fmt.Fprintf(os.Stderr, "client: %s: %v\n", req.label, err)
					} else {
						fmt.Fprintf(os.Stderr, "client: %s: HTTP %d\n", req.label, resp.StatusCode)
					}
				case cache == "hit":
					res.hits++
				default:
					res.misses++
				}
				mu.Unlock()
			}
		}()
	}
	start := time.Now()
feeding:
	for _, idx := range order {
		select {
		case feed <- idx:
		case <-ctx.Done():
			break feeding
		}
	}
	close(feed)
	wg.Wait()
	res.wall = time.Since(start)
	return res
}

// quantileMS returns the nearest-rank quantile of latencies in milliseconds
// (sorting the slice in place).
func quantileMS(latencies []time.Duration, q float64) float64 {
	if len(latencies) == 0 {
		return 0
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return latencies[int(q*float64(len(latencies)-1))].Seconds() * 1e3
}

// record converts a pass into its report row.
func (p clientParams) record(pass string, mix []clientRequest, r passResult) bench.ServiceRecord {
	rec := bench.ServiceRecord{
		Pass:        pass,
		Conns:       p.conns,
		Requests:    len(r.latencies),
		Distinct:    len(mix),
		Algos:       joinAlgos(p.grid),
		Engines:     joinEngines(p.grid),
		Sizes:       joinInts(p.grid.sizes),
		WallSeconds: r.wall.Seconds(),
		P50MS:       quantileMS(r.latencies, 0.50),
		P99MS:       quantileMS(r.latencies, 0.99),
		Hits:        r.hits,
		Misses:      r.misses,
		Errors:      r.errors,
	}
	if rec.WallSeconds > 0 {
		rec.ReqPerSec = float64(rec.Requests) / rec.WallSeconds
	}
	return rec
}

func joinAlgos(g benchGrid) string {
	parts := make([]string, len(g.algos))
	for i, a := range g.algos {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

func joinEngines(g benchGrid) string {
	parts := make([]string, len(g.engines))
	for i, e := range g.engines {
		parts[i] = e.Name()
	}
	return strings.Join(parts, ",")
}

func joinInts(vals []int) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ",")
}

// runClient executes the load test: health check, cold pass, warm pass,
// report. The warm pass re-draws from the same mix, so against a server with
// cache capacity >= the mix size it must be all hits — a miss there means
// the determinism contract or the cache broke, and shows up as a recorded
// Misses count (and a much slower p50).
func runClient(ctx context.Context, p clientParams) error {
	if p.conns < 1 {
		p.conns = 1
	}
	if p.seeds < 1 {
		p.seeds = 1
	}
	mix, err := buildMix(p)
	if err != nil {
		return err
	}
	if p.requests < len(mix) {
		p.requests = len(mix)
	}

	resp, err := http.Get(p.url + "/healthz")
	if err != nil {
		return fmt.Errorf("hcserve not reachable at %s: %w", p.url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Cold: each distinct request exactly once.
	coldOrder := make([]int, len(mix))
	for i := range coldOrder {
		coldOrder[i] = i
	}
	cold := runPass(ctx, p, mix, coldOrder)
	coldRec := p.record("cold", mix, cold)
	fmt.Printf("cold: %d requests over %d conns in %.3fs (%.1f req/s, p50 %.2fms, p99 %.2fms, %d hits / %d misses / %d errors)\n",
		coldRec.Requests, coldRec.Conns, coldRec.WallSeconds, coldRec.ReqPerSec,
		coldRec.P50MS, coldRec.P99MS, coldRec.Hits, coldRec.Misses, coldRec.Errors)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("client run canceled: %w", err)
	}

	// Warm: p.requests draws round-robin over the now-cached mix.
	warmOrder := make([]int, p.requests)
	for i := range warmOrder {
		warmOrder[i] = i % len(mix)
	}
	warm := runPass(ctx, p, mix, warmOrder)
	warmRec := p.record("warm", mix, warm)
	fmt.Printf("warm: %d requests over %d conns in %.3fs (%.1f req/s, p50 %.2fms, p99 %.2fms, %d hits / %d misses / %d errors)\n",
		warmRec.Requests, warmRec.Conns, warmRec.WallSeconds, warmRec.ReqPerSec,
		warmRec.P50MS, warmRec.P99MS, warmRec.Hits, warmRec.Misses, warmRec.Errors)
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("client run canceled: %w", err)
	}

	rep := bench.NewReport(p.rev, runtime.Version(), runtime.NumCPU())
	rep.Service = []bench.ServiceRecord{coldRec, warmRec}
	if s, ok := rep.CacheSpeedup(); ok {
		fmt.Printf("cache-hit speedup: %.1fx (cold p50 %.2fms / warm p50 %.2fms)\n",
			s, coldRec.P50MS, warmRec.P50MS)
	}
	if err := rep.Validate(); err != nil {
		return err
	}
	if p.out == "" {
		return nil
	}
	f, err := os.Create(p.out)
	if err != nil {
		return err
	}
	if err := rep.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d service records, schema v%d)\n", p.out, len(rep.Service), rep.SchemaVersion)
	return nil
}
