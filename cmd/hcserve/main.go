// Command hcserve runs the HTTP/JSON solver service: pooled solver sessions,
// a bounded admission queue with backpressure, per-request deadlines, a
// deterministic replay cache, and streaming progress — the deployable runtime
// over the repository's algorithms.
//
// Endpoints:
//
//	POST /solve         one solve request -> JSON outcome (cacheable)
//	POST /solve/stream  same request -> ndjson progress events + final result
//	GET  /healthz       liveness probe
//	GET  /stats         queue/cache/pool counters
//
// Example:
//
//	hcserve -addr :8080 -concurrency 4 -queue 128 &
//	curl -s localhost:8080/solve -d '{"family":"gnp","n":256,"param":3,
//	    "delta":0.5,"algo":"dra","engine":"step","seed":7}'
//
// SIGINT/SIGTERM drain gracefully: the listener closes immediately, in-flight
// solves run to completion (bounded by -grace), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dhc/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hcserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		concurrency = flag.Int("concurrency", 2, "max simultaneously executing solves")
		queue       = flag.Int("queue", 64, "max requests waiting for a solve slot; beyond it requests get 429 + Retry-After")
		cache       = flag.Int("cache", 1024, "replay cache entries (0 disables); hits replay byte-identical responses for free")
		workers     = flag.Int("workers", 1, "engine worker pool per solve (byte-identical results at any value)")
		maxTimeout  = flag.Duration("max-timeout", 60*time.Second, "hard cap on any request's solve deadline")
		maxN        = flag.Int("max-n", 1<<20, "reject instances above this vertex count")
		grace       = flag.Duration("grace", 2*time.Minute, "shutdown drain budget for in-flight solves")
	)
	flag.Parse()

	// The serve.Config zero values mean "default"; the CLI spells "disabled"
	// as 0, so translate that to the config's negative form.
	cacheEntries := *cache
	if cacheEntries == 0 {
		cacheEntries = -1
	}
	queueSlots := *queue
	if queueSlots == 0 {
		queueSlots = -1
	}
	svc := serve.New(serve.Config{
		Concurrency:  *concurrency,
		Queue:        queueSlots,
		CacheEntries: cacheEntries,
		Workers:      *workers,
		MaxTimeout:   *maxTimeout,
		MaxN:         *maxN,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("hcserve: listening on %s (concurrency=%d queue=%d cache=%d workers=%d)",
			*addr, *concurrency, *queue, *cache, *workers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight solves finish. Requests
	// still queued inherit the drain budget through their own contexts.
	log.Printf("hcserve: signal received; draining in-flight solves (budget %s)", *grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("hcserve: drained; bye")
	return nil
}
