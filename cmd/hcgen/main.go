// Command hcgen generates random graphs in the repository's edge-list format
// and reports structural statistics (degrees, connectivity, diameter).
//
// Usage:
//
//	hcgen -n 1024 -p 0.05 -seed 3 -o graph.txt
//	hcgen -n 1024 -c 8 -delta 0.5 -stats
//	hcgen -model regular -n 100 -d 6
//	hcgen -model powerlaw -n 4096 -avgdeg 24 -gamma 2.5 -stats
//	hcgen -model geometric -n 4096 -c 2 -stats
//	hcgen -model sbm -n 4096 -c 4 -delta 1 -blocks 4 -ratio 4 -stats
//	hcgen -model torus -n 1024 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"dhc"
	"dhc/internal/graph"
	"dhc/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hcgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		model  = flag.String("model", "gnp", "graph model: gnp, gnm, regular, powerlaw, geometric, sbm, hypercube, torus, ring, complete")
		n      = flag.Int("n", 1024, "vertices")
		p      = flag.Float64("p", 0, "GNP/SBM edge probability (overrides -c/-delta)")
		c      = flag.Float64("c", 8, "density constant of p = c ln(n)/n^delta")
		delta  = flag.Float64("delta", 0.5, "sparsity exponent")
		m      = flag.Int("m", 0, "GNM edge count")
		d      = flag.Int("d", 4, "regular degree")
		gamma  = flag.Float64("gamma", 2.5, "powerlaw tail exponent (> 2)")
		avgDeg = flag.Float64("avgdeg", 0, "powerlaw mean degree (0 derives n*p from -c/-delta)")
		radius = flag.Float64("radius", 0, "geometric connection radius (0 derives c*sqrt(ln n/(pi n)) from -c)")
		blocks = flag.Int("blocks", 4, "sbm block count")
		ratio  = flag.Float64("ratio", 4, "sbm in/out probability ratio pIn/pOut")
		rows   = flag.Int("rows", 0, "torus rows (0 derives a square torus from -n)")
		cols   = flag.Int("cols", 0, "torus cols (0 derives a square torus from -n)")
		seed   = flag.Uint64("seed", 1, "generator seed")
		out    = flag.String("o", "", "write edge list to file (default stdout if not -stats)")
		stats  = flag.Bool("stats", false, "print statistics instead of the edge list")
	)
	flag.Parse()

	var g *dhc.Graph
	switch *model {
	case "gnp":
		prob := *p
		if prob == 0 {
			prob = dhc.ThresholdP(*n, *c, *delta)
		}
		g = dhc.NewGNP(*n, prob, *seed)
	case "gnm":
		if *m <= 0 {
			return fmt.Errorf("gnm needs -m > 0")
		}
		if err := graph.ValidateEdgeCount(*n, int64(*m)); err != nil {
			return err
		}
		g = dhc.NewGNM(*n, *m, *seed)
	case "regular":
		var err error
		g, err = dhc.NewRandomRegular(*n, *d, *seed)
		if err != nil {
			return err
		}
	case "powerlaw":
		if *gamma <= 2 {
			return fmt.Errorf("powerlaw needs -gamma > 2, got %v", *gamma)
		}
		avg := *avgDeg
		if avg == 0 {
			avg = float64(*n) * dhc.ThresholdP(*n, *c, *delta)
		}
		g = dhc.NewChungLu(*n, avg, *gamma, *seed)
	case "geometric":
		r := *radius
		if r == 0 {
			r = graph.GeometricThresholdR(*n, *c)
		}
		g = dhc.NewGeometric(*n, r, *seed)
	case "sbm":
		if *blocks < 1 {
			return fmt.Errorf("sbm needs -blocks >= 1, got %d", *blocks)
		}
		pbar := *p
		if pbar == 0 {
			pbar = dhc.ThresholdP(*n, *c, *delta)
		}
		pOut := float64(*blocks) * pbar / (*ratio + float64(*blocks) - 1)
		g = dhc.NewSBM(*n, *blocks, *ratio*pOut, pOut, *seed)
	case "hypercube":
		if *n < 2 || *n&(*n-1) != 0 {
			return fmt.Errorf("hypercube needs -n a power of two >= 2, got %d", *n)
		}
		dim := 0
		for 1<<dim < *n {
			dim++
		}
		g = dhc.NewHypercube(dim)
	case "torus":
		r, cl := *rows, *cols
		if r == 0 && cl == 0 {
			side := 1
			for (side+1)*(side+1) <= *n {
				side++
			}
			if side*side != *n {
				return fmt.Errorf("torus needs -n a perfect square (or explicit -rows/-cols), got %d", *n)
			}
			r, cl = side, side
		}
		if r < 1 || cl < 1 {
			return fmt.Errorf("torus needs positive -rows and -cols, got %dx%d", r, cl)
		}
		g = dhc.NewTorus(r, cl)
	case "ring":
		g = graph.Ring(*n)
	case "complete":
		g = graph.Complete(*n)
	default:
		// List the valid names deterministically (sorted), matching the
		// ParseAlgorithm / ParseEngineMode error convention.
		return fmt.Errorf("unknown model %q (valid: complete, geometric, gnm, gnp, hypercube, powerlaw, regular, ring, sbm, torus)", *model)
	}

	if *stats {
		fmt.Printf("n=%d m=%d avgDeg=%.2f minDeg=%d maxDeg=%d connected=%v\n",
			g.N(), g.M(), g.AvgDegree(), g.MinDegree(), g.MaxDegree(), g.Connected())
		if g.Connected() {
			fmt.Printf("diameter>=%d (double-sweep estimate)\n",
				g.DiameterSampled(4, rng.New(*seed+7)))
		}
		return nil
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.WriteEdgeList(w)
}
