// Command hcgen generates random graphs in the repository's edge-list format
// and reports structural statistics (degrees, connectivity, diameter).
//
// Usage:
//
//	hcgen -n 1024 -p 0.05 -seed 3 -o graph.txt
//	hcgen -n 1024 -c 8 -delta 0.5 -stats
//	hcgen -model regular -n 100 -d 6
package main

import (
	"flag"
	"fmt"
	"os"

	"dhc"
	"dhc/internal/graph"
	"dhc/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hcgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		model = flag.String("model", "gnp", "graph model: gnp, gnm, regular, ring, complete")
		n     = flag.Int("n", 1024, "vertices")
		p     = flag.Float64("p", 0, "GNP edge probability (overrides -c/-delta)")
		c     = flag.Float64("c", 8, "density constant of p = c ln(n)/n^delta")
		delta = flag.Float64("delta", 0.5, "sparsity exponent")
		m     = flag.Int("m", 0, "GNM edge count")
		d     = flag.Int("d", 4, "regular degree")
		seed  = flag.Uint64("seed", 1, "generator seed")
		out   = flag.String("o", "", "write edge list to file (default stdout if not -stats)")
		stats = flag.Bool("stats", false, "print statistics instead of the edge list")
	)
	flag.Parse()

	var g *dhc.Graph
	switch *model {
	case "gnp":
		prob := *p
		if prob == 0 {
			prob = dhc.ThresholdP(*n, *c, *delta)
		}
		g = dhc.NewGNP(*n, prob, *seed)
	case "gnm":
		if *m <= 0 {
			return fmt.Errorf("gnm needs -m > 0")
		}
		g = dhc.NewGNM(*n, *m, *seed)
	case "regular":
		var err error
		g, err = dhc.NewRandomRegular(*n, *d, *seed)
		if err != nil {
			return err
		}
	case "ring":
		g = graph.Ring(*n)
	case "complete":
		g = graph.Complete(*n)
	default:
		// List the valid names deterministically (sorted), matching the
		// ParseAlgorithm / ParseEngineMode error convention.
		return fmt.Errorf("unknown model %q (valid: complete, gnm, gnp, regular, ring)", *model)
	}

	if *stats {
		fmt.Printf("n=%d m=%d avgDeg=%.2f minDeg=%d maxDeg=%d connected=%v\n",
			g.N(), g.M(), g.AvgDegree(), g.MinDegree(), g.MaxDegree(), g.Connected())
		if g.Connected() {
			fmt.Printf("diameter>=%d (double-sweep estimate)\n",
				g.DiameterSampled(4, rng.New(*seed+7)))
		}
		return nil
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.WriteEdgeList(w)
}
