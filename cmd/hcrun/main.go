// Command hcrun runs one Hamiltonian-cycle algorithm on one generated random
// graph and prints the result and cost metrics.
//
// Usage:
//
//	hcrun -algo dhc2 -n 1024 -c 16 -delta 0.5 -seed 1 -engine step
//	hcrun -algo upcast -n 512 -p 0.3 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dhc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hcrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algoName = flag.String("algo", "dhc2", "algorithm: dra, dhc1, dhc2, upcast")
		n        = flag.Int("n", 1024, "number of vertices")
		p        = flag.Float64("p", 0, "edge probability (overrides -c/-delta)")
		c        = flag.Float64("c", 16, "density constant of p = c ln(n)/n^delta")
		delta    = flag.Float64("delta", 0.5, "sparsity exponent delta")
		seed     = flag.Uint64("seed", 1, "run seed (graph uses seed+1)")
		engine   = flag.String("engine", "exact", "engine: exact (event-driven), exact-dense (dense-sweep oracle) or step")
		bound    = flag.Int64("bound", 0, "broadcast-bound override B for the exact engines (0 = tight default)")
		workers  = flag.Int("workers", 1, "parallel workers (exact-engine executor / step-engine phase-1 shards)")
		colors   = flag.Int("colors", 0, "override partition count K")
		asJSON   = flag.Bool("json", false, "JSON output")
		quiet    = flag.Bool("q", false, "suppress the cycle itself")
	)
	flag.Parse()

	algo, err := dhc.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	prob := *p
	if prob == 0 {
		prob = dhc.ThresholdP(*n, *c, *delta)
	}
	g := dhc.NewGNP(*n, prob, *seed+1)
	opts := dhc.Options{
		Seed:           *seed,
		Delta:          *delta,
		NumColors:      *colors,
		Workers:        *workers,
		BroadcastBound: *bound,
	}
	switch *engine {
	case "exact":
		opts.Engine = dhc.EngineExact
	case "exact-dense":
		opts.Engine = dhc.EngineExact
		opts.DenseSweep = true
	case "step":
		opts.Engine = dhc.EngineStep
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	res, err := dhc.Solve(g, algo, opts)
	if err != nil {
		return err
	}
	if *asJSON {
		out := map[string]any{
			"algo":   algo.String(),
			"n":      *n,
			"m":      g.M(),
			"p":      prob,
			"rounds": res.Rounds,
			"steps":  res.Steps,
			"phase1": res.Phase1Rounds,
			"phase2": res.Phase2Rounds,
		}
		if res.Counters != nil {
			out["messages"] = res.Counters.Messages
			out["bits"] = res.Counters.Bits
			out["maxMemWords"] = res.Counters.MemoryDistribution().Max
		}
		if !*quiet {
			out["cycle"] = res.Cycle.Order()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("%s on G(n=%d, p=%.5f) (m=%d): rounds=%d steps=%d\n",
		algo, *n, prob, g.M(), res.Rounds, res.Steps)
	if res.Phase1Rounds > 0 {
		fmt.Printf("  phase1=%d rounds, phase2=%d rounds\n", res.Phase1Rounds, res.Phase2Rounds)
	}
	if res.Counters != nil {
		mem := res.Counters.MemoryDistribution()
		fmt.Printf("  messages=%d bits=%d maxMsgBits=%d memMax=%d memP50=%d\n",
			res.Counters.Messages, res.Counters.Bits, res.Counters.MaxMessageBits,
			mem.Max, mem.P50)
	}
	if !*quiet {
		fmt.Printf("  cycle: %v\n", res.Cycle)
	}
	return nil
}
