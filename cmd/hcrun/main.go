// Command hcrun runs one Hamiltonian-cycle algorithm on one generated random
// graph and prints the result and cost metrics.
//
// The run is a solver session: Ctrl-C cancels it at the engine's next
// amortized checkpoint (the exit message reports the canceled failure
// class), -timeout bounds its wall-clock, and -progress streams phase
// transitions, restarts, and throttled round progress to stderr.
//
// Usage:
//
//	hcrun -algo dhc2 -n 1024 -c 16 -delta 0.5 -seed 1 -engine step
//	hcrun -algo upcast -n 512 -p 0.3 -json
//	hcrun -algo dhc1 -n 4096 -engine exact -progress -timeout 30s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dhc"
	"dhc/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hcrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algoName  = flag.String("algo", "dhc2", "algorithm: dra, dhc1, dhc2, upcast")
		n         = flag.Int("n", 1024, "number of vertices")
		p         = flag.Float64("p", 0, "edge probability (overrides -c/-delta)")
		c         = flag.Float64("c", 16, "density constant of p = c ln(n)/n^delta")
		delta     = flag.Float64("delta", 0.5, "sparsity exponent delta")
		seed      = flag.Uint64("seed", 1, "run seed (graph uses seed+1)")
		engine    = flag.String("engine", "exact", "engine: exact (event-driven), exact-dense (dense-sweep oracle) or step")
		bound     = flag.Int64("bound", 0, "broadcast-bound override B for the exact engines (0 = tight default)")
		maxR      = flag.Int64("maxrounds", 0, "round-budget override for the exact engines (0 = derived default)")
		timeout   = flag.Duration("timeout", 0, "wall-clock bound on the run (0 = none)")
		progress  = flag.Bool("progress", false, "stream phases, restarts and round progress to stderr")
		workers   = flag.Int("workers", 1, "parallel workers (exact-engine executor / step-engine phase-1 shards)")
		colors    = flag.Int("colors", 0, "override partition count K")
		shards    = flag.Int("shards", 0, "run the exact engine distributed across this many shard workers (0/1 = in-process)")
		transport = flag.String("transport", "", "shard transport when -shards > 1: unix (default), tcp, or proc (real hcshard processes)")
		shardBin  = flag.String("shardbin", "", "hcshard binary for -transport proc (default: resolve hcshard via PATH)")
		asJSON    = flag.Bool("json", false, "JSON output")
		quiet     = flag.Bool("q", false, "suppress the cycle itself")
	)
	flag.Parse()

	algo, err := dhc.ParseAlgorithm(*algoName)
	if err != nil {
		return err
	}
	mode, err := bench.ParseEngineMode(*engine)
	if err != nil {
		return err
	}
	prob := *p
	if prob == 0 {
		prob = dhc.ThresholdP(*n, *c, *delta)
	}
	g := dhc.NewGNP(*n, prob, *seed+1)
	opts := dhc.Options{
		Seed:           *seed,
		Engine:         mode.Engine,
		DenseSweep:     mode.Dense,
		Delta:          *delta,
		NumColors:      *colors,
		Workers:        *workers,
		BroadcastBound: *bound,
		MaxRounds:      *maxR,
		Shards:         *shards,
		Transport:      *transport,
		ShardBinary:    *shardBin,
	}
	if *progress {
		opts.Observer = progressObserver()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := dhc.SolveContext(ctx, g, algo, opts)
	if err != nil {
		if class := dhc.Classify(err); class == dhc.FailureCanceled {
			return fmt.Errorf("run canceled (class %s): %w", class, err)
		}
		return err
	}
	if *asJSON {
		out := map[string]any{
			"algo":   algo.String(),
			"n":      *n,
			"m":      g.M(),
			"p":      prob,
			"rounds": res.Rounds,
			"steps":  res.Steps,
			"phase1": res.Phase1Rounds,
			"phase2": res.Phase2Rounds,
		}
		if res.Counters != nil {
			out["messages"] = res.Counters.Messages
			out["bits"] = res.Counters.Bits
			out["maxMemWords"] = res.Counters.MemoryDistribution().Max
		}
		if res.ShardStats != nil {
			out["shards"] = res.ShardStats
		}
		if !*quiet {
			out["cycle"] = res.Cycle.Order()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("%s on G(n=%d, p=%.5f) (m=%d): rounds=%d steps=%d\n",
		algo, *n, prob, g.M(), res.Rounds, res.Steps)
	if res.Phase1Rounds > 0 {
		fmt.Printf("  phase1=%d rounds, phase2=%d rounds\n", res.Phase1Rounds, res.Phase2Rounds)
	}
	if res.Counters != nil {
		mem := res.Counters.MemoryDistribution()
		fmt.Printf("  messages=%d bits=%d maxMsgBits=%d memMax=%d memP50=%d\n",
			res.Counters.Messages, res.Counters.Bits, res.Counters.MaxMessageBits,
			mem.Max, mem.P50)
	}
	if res.ShardStats != nil {
		for _, st := range res.ShardStats {
			fmt.Printf("  shard %d [%d,%d): sent=%dB recv=%dB busy=%.3fs rtts=%d local=%d cross=%d batch=%dB (fixed %dB)\n",
				st.Shard, st.Lo, st.Hi, st.BytesSent, st.BytesRecv, st.BusySeconds,
				st.RTTs, st.LocalMsgs, st.CrossMsgs, st.BatchBytesDelta, st.BatchBytesFixed)
		}
	}
	if !*quiet {
		fmt.Printf("  cycle: %v\n", res.Cycle)
	}
	return nil
}

// progressObserver streams the run's lifecycle to stderr: every phase
// transition and restart, plus round progress throttled to once per second
// (the exact engine's OnRounds checkpoint fires far more often).
func progressObserver() *dhc.Observer {
	var lastBeat time.Time
	return &dhc.Observer{
		OnPhase: func(phase string) {
			fmt.Fprintf(os.Stderr, "hcrun: entering %s\n", phase)
		},
		OnRestart: func(restarts int) {
			fmt.Fprintf(os.Stderr, "hcrun: restart (%d so far)\n", restarts)
		},
		OnRounds: func(rounds int64) {
			if now := time.Now(); now.Sub(lastBeat) >= time.Second {
				lastBeat = now
				fmt.Fprintf(os.Stderr, "hcrun: %d rounds charged\n", rounds)
			}
		},
	}
}
