package main

// Grid-parsing tests for the sweep CLI: the new atlas family axes must
// survive both the flag form and the JSON -config form, agree after the
// merge, and keep producing the exact cell keys that -resume matches
// finished cells by — a silent key change would make every old checkpoint
// unresumable (or worse, mismatched).

import (
	"os"
	"path/filepath"
	"testing"

	"dhc/internal/sweep"
)

// TestBuildGridFlagsAtlasFamilies drives the pure-flag path with every
// atlas family on one axis.
func TestBuildGridFlagsAtlasFamilies(t *testing.T) {
	grid, err := buildGrid("", "powerlaw,geometric,sbm,hypercube,torus", "64,256", "3",
		1, "dra", "step", 5, 11, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Validate(); err != nil {
		t.Fatalf("flag grid invalid: %v", err)
	}
	if len(grid.Families) != 5 || grid.Families[0] != sweep.FamilyPowerlaw || grid.Families[4] != sweep.FamilyTorus {
		t.Fatalf("families = %v", grid.Families)
	}
	if grid.Trials != 5 || grid.MasterSeed != 11 || grid.Delta != 1 {
		t.Fatalf("scalar axes mangled: %+v", grid)
	}
}

// TestBuildGridConfigOverridesFlags drives the JSON -config path: the file's
// axes override the flag defaults, untouched axes fall through, and the
// merged grid validates.
func TestBuildGridConfigOverridesFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.json")
	cfg := `{"families": ["geometric", "torus"], "sizes": [64, 256],
		"params": [3], "algos": ["dra"], "trials": 7, "master_seed": 99}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	grid, err := buildGrid(path, "gnp", "512", "1.5", 0.5, "upcast", "step", 20, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := grid.Validate(); err != nil {
		t.Fatalf("merged grid invalid: %v", err)
	}
	if len(grid.Families) != 2 || grid.Families[0] != sweep.FamilyGeometric || grid.Families[1] != sweep.FamilyTorus {
		t.Fatalf("config families lost: %v", grid.Families)
	}
	if grid.Trials != 7 || grid.MasterSeed != 99 {
		t.Fatalf("config scalars lost: %+v", grid)
	}
	// The config omitted engines and delta, so the flag values remain.
	if len(grid.Engines) != 1 || grid.Engines[0].Name() != "step" || grid.Delta != 0.5 {
		t.Fatalf("flag fallthrough lost: %+v", grid)
	}
}

// TestBuildGridRejectsBadAxes pins element-wise validation: an unknown
// family (in either form) and a comma-smuggled config entry are rejected
// with the sorted-vocabulary error rather than silently split or accepted.
func TestBuildGridRejectsBadAxes(t *testing.T) {
	if _, err := buildGrid("", "smallworld", "64", "1", 1, "dra", "step", 1, 1, 0, 0); err == nil {
		t.Fatal("unknown flag family accepted")
	}
	path := filepath.Join(t.TempDir(), "grid.json")
	if err := os.WriteFile(path, []byte(`{"families": ["gnp,torus"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildGrid(path, "gnp", "64", "1", 1, "dra", "step", 1, 1, 0, 0); err == nil {
		t.Fatal("comma-smuggled config family accepted")
	}
}

// TestAtlasCellKeyStability pins the cell-key literals the -resume matcher
// and the conformance atlas depend on. A deliberate key-format change must
// update this test (and invalidates old checkpoints — bump consciously);
// note the deterministic lattices collapse their param/delta axes to 0 so
// equal-keyed duplicate cells cannot arise.
func TestAtlasCellKeyStability(t *testing.T) {
	grid, err := buildGrid("", "powerlaw,geometric,sbm,hypercube,torus", "64", "3",
		1, "dra", "step", 5, 11, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cells := grid.Cells()
	want := []string{
		"powerlaw/n=64/param=3/delta=1/dra/step",
		"geometric/n=64/param=3/delta=0/dra/step",
		"sbm/n=64/param=3/delta=1/dra/step",
		"hypercube/n=64/param=0/delta=0/dra/step",
		"torus/n=64/param=0/delta=0/dra/step",
	}
	if len(cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(cells), len(want))
	}
	for i, c := range cells {
		if c.Key() != want[i] {
			t.Errorf("cell %d key = %q, want %q", i, c.Key(), want[i])
		}
		if c.InstanceKey() == "" || c.InstanceKey() == c.Key() {
			t.Errorf("cell %d instance key %q should drop the solver axes", i, c.InstanceKey())
		}
	}
}
