// Command hcsweep is the Monte Carlo conformance pipeline: it runs a
// phase-space sweep over a grid of (graph family, n, density parameter,
// algorithm, engine) cells — Trials independent (graph, solve) runs per
// cell — and writes a schema-v2 JSON report with per-cell success
// statistics, a failure taxonomy, cost quantiles, and log-log scaling fits.
//
// Reports are a pure function of the grid and master seed: no wall-clock
// fields, per-trial RNG streams split from the master seed by cell key, so
// -workers changes throughput only — the output file is byte-identical at
// any worker count. The report is rewritten atomically after every completed
// cell, and -resume reloads such a file and skips its finished cells.
//
// The pipeline is interruptible: SIGINT/SIGTERM cancels in-flight solver
// trials at the engines' amortized checkpoints, abandons the in-flight cell
// (its partial outcomes are wall-clock dependent), and exits 130 leaving the
// checkpoint on disk; a -resume rerun completes the byte-identical report an
// uninterrupted run would have written. -cell-timeout bounds each cell's
// wall-clock; its cut-off trials are recorded as fail_canceled and the cell
// re-runs on -resume.
//
// Usage:
//
//	hcsweep -json sweep.json -families gnp -sizes 256,512 -params 1.5 \
//	    -delta 0.5 -algos dra,upcast -engines step -trials 20 -seed 1
//	hcsweep -json atlas.json -families powerlaw,geometric,sbm -sizes 256,512 \
//	    -params 2,4,8 -delta 0.25 -algos dra -engines step -trials 50
//	hcsweep -json sweep.json -config grid.json -workers 8 -resume
//	hcsweep -validate sweep.json
//
// Families: gnp and gnm sweep p = c*ln(n)/n^delta with param = c; regular
// sweeps degree d = param; powerlaw (Chung–Lu, exponent 2.5) and sbm
// (4 blocks, pIn/pOut = 4) reuse the gnp threshold parameterization for
// their mean degree; geometric sweeps radius r = c*sqrt(ln n/(pi n)) with
// param = c; hypercube and torus are deterministic lattices whose param
// axis collapses to a single cell per size (hypercube sizes must be 2^d or
// the punctured 2^d-1, torus sizes a perfect square).
//
// The -config file is the JSON form of the same grid spec:
//
//	{"families": ["gnp"], "sizes": [256, 512], "params": [1.5],
//	 "delta": 0.5, "algos": ["dra"], "engines": ["step"],
//	 "trials": 20, "master_seed": 1}
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"dhc"
	"dhc/internal/bench"
	"dhc/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hcsweep:", err)
		if errors.Is(err, context.Canceled) {
			// Interrupted (SIGINT/SIGTERM): the checkpointed report holds
			// every finished cell; exit with the conventional 130 so callers
			// can tell "interrupted but resumable" from a hard failure.
			os.Exit(130)
		}
		os.Exit(1)
	}
}

// gridConfig is the JSON grid spec (-config); string axes are resolved into
// a sweep.Grid. Flags fill any axis the file leaves empty.
type gridConfig struct {
	Families    []string  `json:"families"`
	Sizes       []int     `json:"sizes"`
	Params      []float64 `json:"params"`
	Delta       float64   `json:"delta"`
	Algos       []string  `json:"algos"`
	Engines     []string  `json:"engines"`
	Trials      int       `json:"trials"`
	MasterSeed  uint64    `json:"master_seed"`
	NumColors   int       `json:"num_colors"`
	MaxAttempts int       `json:"max_attempts"`
}

func run() error {
	var (
		jsonOut  = flag.String("json", "", "write the sweep report to this path (rewritten after every cell)")
		validate = flag.String("validate", "", "validate an existing report (schema + no config-error cells) and exit")
		config   = flag.String("config", "", "JSON grid spec file; flags below fill axes the file omits")
		rev      = flag.String("rev", "dev", "revision label embedded in the report")
		families = flag.String("families", "gnp", "comma-separated graph families (gnp,gnm,regular,powerlaw,geometric,sbm,hypercube,torus)")
		sizes    = flag.String("sizes", "256,512", "comma-separated vertex counts (hypercube wants 2^d or 2^d-1, torus a perfect square)")
		params   = flag.String("params", "1.5", "comma-separated density parameters: threshold constant c for gnp/gnm/powerlaw/sbm, degree d for regular, radius constant c for geometric (ignored by hypercube/torus)")
		delta    = flag.Float64("delta", 1.0, "threshold exponent of p = c*ln(n)/n^delta (gnp/gnm/powerlaw/sbm)")
		algos    = flag.String("algos", "dra", "comma-separated algorithms (dra,dhc1,dhc2,upcast)")
		engines  = flag.String("engines", "step", "comma-separated engines (step,exact,exact-dense)")
		trials   = flag.Int("trials", 20, "Monte Carlo trials per cell")
		seed     = flag.Uint64("seed", 1, "master seed; the whole report is a pure function of grid + seed")
		colors   = flag.Int("colors", 0, "partition count K override for dhc1/dhc2 (0 = derive)")
		attempts = flag.Int("attempts", 0, "solver restart budget override (0 = engine default)")
		workers  = flag.Int("workers", 1, "trial-level worker pool (byte-identical output at any value)")
		resume   = flag.Bool("resume", false, "reuse finished cells from an existing -json file with the same seed and trial count")
		cellTime = flag.Duration("cell-timeout", 0, "wall-clock cap per cell; cut-off trials count as canceled and the cell re-runs on -resume")
		trace    = flag.Bool("trace", false, "log solver phase transitions and restarts per cell to stderr")
	)
	flag.Parse()

	if *validate != "" {
		return runValidate(*validate)
	}
	if *jsonOut == "" {
		return fmt.Errorf("nothing to do: pass -json OUT or -validate FILE")
	}

	grid, err := buildGrid(*config, *families, *sizes, *params, *delta,
		*algos, *engines, *trials, *seed, *colors, *attempts)
	if err != nil {
		return err
	}
	if err := grid.Validate(); err != nil {
		return err
	}

	opts := sweep.Options{Workers: *workers, CellTimeout: *cellTime}
	if *trace {
		opts.Observer = traceObserver
	}
	if *resume {
		if opts.Resume, err = loadResume(*jsonOut, grid); err != nil {
			return err
		}
	}

	// SIGINT/SIGTERM cancel the sweep cooperatively: in-flight trials stop at
	// the engines' amortized checkpoints, the in-flight cell is abandoned,
	// and the per-cell checkpoint file (written below) stays resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Rewrite the report after every finished cell so an interrupted sweep
	// loses at most one cell of work; fits are recomputed over the cells
	// done so far and the final write includes every cell.
	rep := bench.NewReport(*rev, runtime.Version(), runtime.NumCPU())
	rep.Sweep = &bench.SweepSection{
		MasterSeed: grid.MasterSeed, TrialsPerCell: grid.Trials,
		NumColors: grid.NumColors, MaxAttempts: grid.MaxAttempts,
	}
	start := time.Now()
	opts.Progress = func(cell sweep.Cell, stats bench.CellStats, reused bool) {
		rep.Sweep.Cells = append(rep.Sweep.Cells, stats)
		rep.Sweep.Fits = sweep.Fits(rep.Sweep.Cells)
		if err := writeAtomic(*jsonOut, rep); err != nil {
			fmt.Fprintln(os.Stderr, "hcsweep: checkpoint:", err)
		}
		tag := ""
		if reused {
			tag = " (resumed)"
		}
		fmt.Printf("%s: ok=%d/%d no_hc=%d round_limit=%d error=%d roundsP50=%d%s\n",
			cell.Key(), stats.Successes, stats.Trials,
			stats.FailNoHC, stats.FailRoundLimit, stats.FailError,
			stats.Rounds.P50, tag)
	}

	sec, err := sweep.RunContext(ctx, grid, opts)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "hcsweep: interrupted; %d finished cells checkpointed in %s — rerun with -resume to complete the identical report\n",
			len(sec.Cells), *jsonOut)
		return err
	}
	if err != nil {
		return err
	}
	rep.Sweep = sec
	if err := rep.Validate(); err != nil {
		return err
	}
	if err := writeAtomic(*jsonOut, rep); err != nil {
		return err
	}
	for _, f := range sec.Fits {
		fmt.Printf("fit %s/param=%g/delta=%g/%s/%s: rounds ~ n^%.3f, steps ~ n^%.3f (%d sizes)\n",
			f.Family, f.Param, f.Delta, f.Algo, f.Engine, f.RoundsSlope, f.StepsSlope, f.Points)
	}
	fmt.Printf("wrote %s (%d cells, %d trials each, schema v%d) in %v\n",
		*jsonOut, len(sec.Cells), sec.TrialsPerCell, rep.SchemaVersion, time.Since(start).Round(time.Millisecond))
	return nil
}

// buildGrid merges the -config file (if any) with the flag axes.
func buildGrid(configPath, families, sizes, params string, delta float64,
	algos, engines string, trials int, seed uint64, colors, attempts int) (sweep.Grid, error) {
	cfg := gridConfig{
		Families: bench.SplitList(families),
		Delta:    delta, Algos: bench.SplitList(algos), Engines: bench.SplitList(engines),
		Trials: trials, MasterSeed: seed, NumColors: colors, MaxAttempts: attempts,
	}
	var err error
	if cfg.Sizes, err = bench.ParseInts(sizes); err != nil {
		return sweep.Grid{}, fmt.Errorf("bad -sizes: %w", err)
	}
	if cfg.Params, err = bench.ParseFloats(params); err != nil {
		return sweep.Grid{}, fmt.Errorf("bad -params: %w", err)
	}
	if configPath != "" {
		data, err := os.ReadFile(configPath)
		if err != nil {
			return sweep.Grid{}, err
		}
		var file gridConfig
		if err := json.Unmarshal(data, &file); err != nil {
			return sweep.Grid{}, fmt.Errorf("bad -config %s: %w", configPath, err)
		}
		cfg = mergeConfig(cfg, file)
	}

	if cfg.Trials <= 0 {
		cfg.Trials = 20
	}
	grid := sweep.Grid{
		Sizes: cfg.Sizes, Params: cfg.Params, Delta: cfg.Delta,
		Trials: cfg.Trials, MasterSeed: cfg.MasterSeed,
		NumColors: cfg.NumColors, MaxAttempts: cfg.MaxAttempts,
	}
	// Parse element-wise (not by re-joining on commas) so a malformed
	// config entry like "gnp,gnm" is rejected instead of silently split.
	for _, s := range cfg.Families {
		f, err := sweep.ParseFamily(s)
		if err != nil {
			return grid, err
		}
		grid.Families = append(grid.Families, f)
	}
	for _, s := range cfg.Algos {
		a, err := dhc.ParseAlgorithm(s)
		if err != nil {
			return grid, err
		}
		grid.Algos = append(grid.Algos, a)
	}
	for _, s := range cfg.Engines {
		e, err := bench.ParseEngineMode(s)
		if err != nil {
			return grid, err
		}
		grid.Engines = append(grid.Engines, e)
	}
	return grid, nil
}

// mergeConfig overlays the config file's non-empty fields on the flag
// defaults.
func mergeConfig(base, file gridConfig) gridConfig {
	if len(file.Families) > 0 {
		base.Families = file.Families
	}
	if len(file.Sizes) > 0 {
		base.Sizes = file.Sizes
	}
	if len(file.Params) > 0 {
		base.Params = file.Params
	}
	if file.Delta != 0 {
		base.Delta = file.Delta
	}
	if len(file.Algos) > 0 {
		base.Algos = file.Algos
	}
	if len(file.Engines) > 0 {
		base.Engines = file.Engines
	}
	if file.Trials != 0 {
		base.Trials = file.Trials
	}
	if file.MasterSeed != 0 {
		base.MasterSeed = file.MasterSeed
	}
	if file.NumColors != 0 {
		base.NumColors = file.NumColors
	}
	if file.MaxAttempts != 0 {
		base.MaxAttempts = file.MaxAttempts
	}
	return base
}

// traceObserver builds the -trace observer for one cell: first entry into
// each phase, every restart, and a once-per-second round heartbeat. The
// callbacks fire concurrently under -workers > 1, so all shared state is
// atomic.
func traceObserver(cell sweep.Cell) *dhc.Observer {
	key := cell.Key()
	var seenPhase1, seenPhase2, seenRun atomic.Bool
	var restarts atomic.Int64
	var lastBeat atomic.Int64
	return &dhc.Observer{
		OnPhase: func(phase string) {
			seen := &seenRun
			switch phase {
			case "phase1":
				seen = &seenPhase1
			case "phase2":
				seen = &seenPhase2
			}
			if seen.CompareAndSwap(false, true) {
				fmt.Fprintf(os.Stderr, "hcsweep: %s: entered %s\n", key, phase)
			}
		},
		OnRestart: func(r int) {
			fmt.Fprintf(os.Stderr, "hcsweep: %s: trial restart (attempt %d, %d restarts observed this cell)\n",
				key, r, restarts.Add(1))
		},
		OnRounds: func(rounds int64) {
			now := time.Now().UnixNano()
			last := lastBeat.Load()
			if now-last > int64(time.Second) && lastBeat.CompareAndSwap(last, now) {
				fmt.Fprintf(os.Stderr, "hcsweep: %s: ~%d rounds into a trial\n", key, rounds)
			}
		},
	}
}

// loadResume decodes a prior report at path (absence is not an error) and
// returns its cells keyed for reuse. A master-seed or trial-count mismatch
// is fatal: silently mixing two sweeps would corrupt the determinism
// contract.
func loadResume(path string, grid sweep.Grid) (map[string]bench.CellStats, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	rep, err := bench.DecodeReport(data)
	if err != nil {
		return nil, fmt.Errorf("resume %s: %w", path, err)
	}
	if rep.Sweep == nil {
		return nil, fmt.Errorf("resume %s: no sweep section", path)
	}
	if rep.Sweep.MasterSeed != grid.MasterSeed || rep.Sweep.TrialsPerCell != grid.Trials ||
		rep.Sweep.NumColors != grid.NumColors || rep.Sweep.MaxAttempts != grid.MaxAttempts {
		return nil, fmt.Errorf("resume %s: grid mismatch (file: seed=%d trials=%d colors=%d attempts=%d; grid: seed=%d trials=%d colors=%d attempts=%d)",
			path, rep.Sweep.MasterSeed, rep.Sweep.TrialsPerCell, rep.Sweep.NumColors, rep.Sweep.MaxAttempts,
			grid.MasterSeed, grid.Trials, grid.NumColors, grid.MaxAttempts)
	}
	out := make(map[string]bench.CellStats, len(rep.Sweep.Cells))
	for _, c := range rep.Sweep.Cells {
		out[c.Key()] = c
	}
	fmt.Printf("resuming from %s: %d finished cells\n", path, len(out))
	return out, nil
}

// writeAtomic encodes the report to a temp file in the target directory and
// renames it into place, so readers never observe a torn report.
func writeAtomic(path string, rep *bench.Report) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if err := rep.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// runValidate gates CI: non-zero exit on a malformed report, a missing sweep
// section, or any cell with configuration-error trials (genuine no-cycle and
// round-limit outcomes are legitimate Monte Carlo data and do not fail the
// gate; conformance thresholds live in the test suite).
func runValidate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := bench.DecodeReport(data)
	if err != nil {
		return err
	}
	if rep.Sweep == nil {
		return fmt.Errorf("%s: no sweep section (did you mean hcbench -validate?)", path)
	}
	bad := 0
	for i := range rep.Sweep.Cells {
		c := &rep.Sweep.Cells[i]
		if c.FailError > 0 {
			fmt.Fprintf(os.Stderr, "cell %s: %d config-error trials: %s\n", c.Key(), c.FailError, c.FirstError)
			bad++
		}
		if c.FailCanceled > 0 {
			// A canceled cell is an unfinished (and wall-clock dependent)
			// measurement, not Monte Carlo data; rerun with -resume.
			fmt.Fprintf(os.Stderr, "cell %s: %d canceled trials (timeout/interrupt); rerun with -resume\n",
				c.Key(), c.FailCanceled)
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d cells hit configuration errors or cancellations", bad, len(rep.Sweep.Cells))
	}
	fmt.Printf("%s: schema v%d, rev %s, %d cells x %d trials, %d fits, no config errors\n",
		path, rep.SchemaVersion, rep.Rev, len(rep.Sweep.Cells), rep.Sweep.TrialsPerCell, len(rep.Sweep.Fits))
	return nil
}
