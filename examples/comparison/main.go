// Comparison: run all four algorithms (plus the paper's baselines) on
// identical graphs across a small n sweep and print the round-count table —
// a miniature of experiment E8.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"dhc"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "n\tp\talgo\trounds\tsteps")
	for _, n := range []int{512, 1024, 2048} {
		p := dhc.ThresholdP(n, 3, 0.5)
		g := dhc.NewGNP(n, p, uint64(n))
		for _, algo := range []dhc.Algorithm{
			dhc.AlgorithmDRA, dhc.AlgorithmDHC1, dhc.AlgorithmDHC2, dhc.AlgorithmUpcast,
		} {
			res, err := dhc.Solve(g, algo, dhc.Options{
				Seed:   uint64(n) + 1,
				Engine: dhc.EngineStep,
				Delta:  0.5,
			})
			if err != nil {
				log.Fatalf("%s on n=%d: %v", algo, n, err)
			}
			fmt.Fprintf(w, "%d\t%.4f\t%s\t%d\t%d\n", n, p, algo, res.Rounds, res.Steps)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexpected shape: DHC1/DHC2 ~ sqrt(n)·polylog; DRA ~ n·polylog; Upcast ~ log(n)/p")
}
