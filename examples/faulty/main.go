// Faulty: demonstrate that the end-to-end verification catches corrupted
// executions. The CONGEST simulator's fault hook perturbs a fraction of
// rotation broadcasts; the run either fails outright or any cycle it
// produces is rejected by verification — it never silently returns a wrong
// answer. The pinned regression version of this property (more fault
// patterns, both scheduling modes, DHC1/DHC2 too) lives in fault_test.go at
// the repository root.
package main

import (
	"fmt"
	"log"

	"dhc/internal/congest"
	"dhc/internal/dra"
	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/wire"
)

func main() {
	n := 120
	p := 0.4
	g := graph.GNP(n, p, rng.New(5))

	// Healthy run first.
	res, err := dra.Run(g, 1, dra.NodeOptions{}, congest.Options{})
	if err != nil {
		log.Fatalf("healthy run failed: %v", err)
	}
	fmt.Printf("healthy run: cycle verified, %d rounds\n", res.Counters.Rounds)

	// Corrupt every 50th rotation broadcast's renumbering parameters.
	count := 0
	hook := func(round int64, from, to graph.NodeID, m wire.Message) (wire.Message, bool) {
		if m.Kind == wire.KindRotation {
			count++
			if count%50 == 0 {
				bad := m
				bad.Args[1]++ // shift the rotation point by one
				return bad, true
			}
		}
		return m, true
	}
	_, err = dra.Run(g, 1, dra.NodeOptions{}, congest.Options{FaultHook: hook})
	if err == nil {
		log.Fatal("corrupted run produced a 'valid' cycle: verification gap!")
	}
	fmt.Printf("corrupted run rejected as expected: %v\n", err)
	fmt.Println("conclusion: per-node outputs are end-to-end verified; corruption cannot pass silently")
}
