// Quickstart: generate a random graph at the paper's density, find a
// Hamiltonian cycle with DHC2, and verify it.
package main

import (
	"fmt"
	"log"

	"dhc"
)

func main() {
	const n = 256
	// p = c·ln(n)/n^δ with δ = 1/2: the DHC1/DHC2 regime. Small n needs a
	// generous density constant (see EXPERIMENTS.md on constants).
	p := dhc.ThresholdP(n, 2, 0.5)
	g := dhc.NewGNP(n, p, 1)
	fmt.Printf("G(n=%d, p=%.3f): %d edges, avg degree %.1f\n", n, p, g.M(), g.AvgDegree())

	res, err := dhc.Solve(g, dhc.AlgorithmDHC2, dhc.Options{Seed: 2, Delta: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	if err := dhc.Verify(g, res.Cycle); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found a Hamiltonian cycle in %d CONGEST rounds\n", res.Rounds)
	fmt.Printf("  phase 1 (parallel partition subcycles): %d rounds\n", res.Phase1Rounds)
	fmt.Printf("  phase 2 (merging):                      %d rounds\n", res.Phase2Rounds)
	fmt.Printf("  messages: %d, widest message: %d bits (CONGEST allows O(log n))\n",
		res.Counters.Messages, res.Counters.MaxMessageBits)
	fmt.Printf("  cycle: %v\n", res.Cycle)
}
