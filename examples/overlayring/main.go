// Overlayring: the workload the paper's introduction motivates — building a
// ring overlay on a peer-to-peer network. A Hamiltonian cycle of the
// connectivity graph is exactly a token-passing ring that visits every peer
// once per lap using only existing links. This example finds the ring with
// DHC1, then simulates passing a token around it on the CONGEST network and
// measures lap latency.
package main

import (
	"fmt"
	"log"

	"dhc"
	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/wire"
)

// tokenNode forwards a token along a fixed ring successor; when the origin
// has counted enough laps it floods a shutdown notice and everyone halts.
type tokenNode struct {
	succ     graph.NodeID
	want     int32
	holds    int
	shutdown bool
}

func (t *tokenNode) Init(ctx *congest.Context) {
	if ctx.ID() == 0 {
		ctx.Send(t.succ, wire.Msg(wire.KindToken, 1))
	}
}

func (t *tokenNode) Round(ctx *congest.Context, inbox []congest.Envelope) {
	for _, env := range inbox {
		switch env.Msg.Kind {
		case wire.KindToken:
			t.holds++
			lap := env.Msg.Arg(0)
			if ctx.ID() == 0 {
				lap++
				if lap > t.want {
					// Done: flood shutdown instead of forwarding.
					t.flood(ctx, -1)
					ctx.Halt()
					return
				}
			}
			ctx.Send(t.succ, wire.Msg(wire.KindToken, lap))
		case wire.KindBroadcast:
			if !t.shutdown {
				t.flood(ctx, env.From)
				ctx.Halt()
				return
			}
		}
	}
}

func (t *tokenNode) flood(ctx *congest.Context, except graph.NodeID) {
	t.shutdown = true
	for _, nb := range ctx.Neighbors() {
		if nb != except {
			ctx.Send(nb, wire.Msg(wire.KindBroadcast, 0))
		}
	}
}

func main() {
	const n = 200
	// A modest random P2P topology.
	g := dhc.NewGNP(n, 0.6, 7)
	fmt.Printf("P2P network: %d peers, %d links\n", g.N(), g.M())

	res, err := dhc.Solve(g, dhc.AlgorithmDHC1, dhc.Options{Seed: 3, NumColors: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring overlay built by DHC1 in %d rounds\n", res.Rounds)

	// Drive a token twice around the ring on the same CONGEST substrate.
	succ := res.Cycle.Successors()
	nodes := make([]congest.Node, n)
	progs := make([]*tokenNode, n)
	for v := 0; v < n; v++ {
		progs[v] = &tokenNode{succ: succ[graph.NodeID(v)], want: 2}
		nodes[v] = progs[v]
	}
	net, err := congest.NewNetwork(g, nodes, congest.Options{})
	if err != nil {
		log.Fatal(err)
	}
	counters, err := net.Run(11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("token completed 2 laps in %d rounds (%.1f rounds/lap, ring length %d)\n",
		counters.Rounds, float64(counters.Rounds)/2, n)
	for v, p := range progs {
		if p.holds == 0 && v != 0 {
			log.Fatalf("peer %d never held the token: ring broken", v)
		}
	}
	fmt.Println("every peer held the token: overlay verified in service")
}
