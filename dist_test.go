package dhc

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// checkDistIdentity solves g both ways and requires byte-identical results:
// the distributed engine's whole contract is that sharding is invisible in
// every measured quantity, so any drift — rounds, skipped rounds, messages,
// bits, per-node distributions, or the cycle itself — is a bug.
func checkDistIdentity(t *testing.T, g *Graph, algo Algorithm, base Options, dist Options) {
	t.Helper()
	want, err := Solve(g, algo, base)
	if err != nil {
		t.Fatalf("in-process solve: %v", err)
	}
	got, err := Solve(g, algo, dist)
	if err != nil {
		t.Fatalf("distributed solve: %v", err)
	}
	if got.Rounds != want.Rounds || got.Steps != want.Steps ||
		got.Phase1Rounds != want.Phase1Rounds || got.Phase2Rounds != want.Phase2Rounds {
		t.Fatalf("result drift: dist (rounds=%d steps=%d p1=%d p2=%d) vs oracle (rounds=%d steps=%d p1=%d p2=%d)",
			got.Rounds, got.Steps, got.Phase1Rounds, got.Phase2Rounds,
			want.Rounds, want.Steps, want.Phase1Rounds, want.Phase2Rounds)
	}
	if !reflect.DeepEqual(got.Cycle.Order(), want.Cycle.Order()) {
		t.Fatal("distributed run found a different cycle")
	}
	if !reflect.DeepEqual(got.Counters, want.Counters) {
		t.Fatalf("counter drift:\ndist:   %+v\noracle: %+v", got.Counters, want.Counters)
	}
	if want.ShardStats != nil {
		t.Fatal("in-process run carries shard stats")
	}
	shards := dist.Shards
	if shards > g.N() {
		shards = g.N()
	}
	if len(got.ShardStats) != shards {
		t.Fatalf("%d shard stats for %d shards", len(got.ShardStats), shards)
	}
	// The fused protocol's RTT budget is exact: one init exchange, one fused
	// exchange per executed (non-skipped) round, one FINISH/FINAL collection
	// — on every link, because exchanges fan out to all shards.
	wantRTTs := want.Counters.Rounds - want.Counters.RoundsSkipped + 2
	var routed int64
	for _, st := range got.ShardStats {
		if st.BytesSent <= 0 || st.BytesRecv <= 0 || st.NodeN <= 0 {
			t.Fatalf("shard %d stats not metered: %+v", st.Shard, st)
		}
		if st.RTTs != wantRTTs {
			t.Fatalf("shard %d: %d RTTs for %d executed rounds, want %d",
				st.Shard, st.RTTs, want.Counters.Rounds-want.Counters.RoundsSkipped, wantRTTs)
		}
		if st.BatchBytesFixed <= 0 {
			t.Fatalf("shard %d: fixed-width batch byte accounting missing: %+v", st.Shard, st)
		}
		if st.BatchBytesDelta >= st.BatchBytesFixed {
			t.Fatalf("shard %d: delta encoding (%d bytes) did not beat fixed-width (%d bytes)",
				st.Shard, st.BatchBytesDelta, st.BatchBytesFixed)
		}
		routed += st.LocalMsgs + st.CrossMsgs
	}
	// Local and cross routing are two halves of the same metered stream:
	// together they must account for every counted message.
	if routed != want.Counters.Messages {
		t.Fatalf("local+cross routed messages %d != counted messages %d", routed, want.Counters.Messages)
	}
}

// TestDistMatchesInProcessOracle is the differential harness of the
// distributed engine: n in {64, 256} x {dra, dhc2}, each across two shard
// counts, goroutine workers behind real unix/tcp sockets. Run under -race
// this also proves the coordinator/worker handoff is properly synchronized.
func TestDistMatchesInProcessOracle(t *testing.T) {
	skipIfShort(t)
	cases := []struct {
		algo      Algorithm
		n         int
		p         float64
		graphSeed uint64
		shards    []int
		transport string
	}{
		{AlgorithmDRA, 64, 0.5, 11, []int{2, 5}, ""},
		{AlgorithmDRA, 256, 0.15, 11, []int{3, 4}, ""},
		{AlgorithmDHC2, 64, 0.8, 4, []int{2, 5}, "tcp"},
		{AlgorithmDHC2, 256, 0.7, 4, []int{3, 4}, ""},
	}
	for _, tc := range cases {
		for _, k := range tc.shards {
			t.Run(fmt.Sprintf("%s/n%d/k%d", tc.algo, tc.n, k), func(t *testing.T) {
				g := NewGNP(tc.n, tc.p, tc.graphSeed)
				base := Options{Seed: 3, Delta: 0.5}
				dist := base
				dist.Shards = k
				dist.Transport = tc.transport
				checkDistIdentity(t, g, tc.algo, base, dist)
			})
		}
	}
}

// hcshardBinary builds cmd/hcshard once per test process for the proc
// transport legs.
var hcshardBinary = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "hcshard-test-")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "hcshard")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/hcshard")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("build hcshard: %v\n%s", err, out)
	}
	return bin, nil
})

// TestDistProcMatchesInProcessOracle runs the differential harness against
// real hcshard OS processes: the graph ships over the socket, the programs
// are rebuilt from their portable specs, and the final states are restored
// into the parent — and the results must still be byte-identical.
func TestDistProcMatchesInProcessOracle(t *testing.T) {
	skipIfShort(t)
	bin, err := hcshardBinary()
	if err != nil {
		t.Skipf("cannot build hcshard: %v", err)
	}
	for _, tc := range []struct {
		algo      Algorithm
		n         int
		p         float64
		graphSeed uint64
	}{
		{AlgorithmDRA, 64, 0.5, 11},
		{AlgorithmDHC2, 96, 0.8, 4},
	} {
		t.Run(fmt.Sprintf("%s/n%d", tc.algo, tc.n), func(t *testing.T) {
			g := NewGNP(tc.n, tc.p, tc.graphSeed)
			base := Options{Seed: 3, Delta: 0.5}
			dist := base
			dist.Shards = 3
			dist.Transport = "proc"
			dist.ShardBinary = bin
			checkDistIdentity(t, g, tc.algo, base, dist)
		})
	}
}

// TestDistProcShardDeath kills every worker process mid-run via the fault
// environment (the same knob the CI chaos leg uses) and requires a classified
// error — FailureError, within the deadline, never a hang.
func TestDistProcShardDeath(t *testing.T) {
	skipIfShort(t)
	bin, err := hcshardBinary()
	if err != nil {
		t.Skipf("cannot build hcshard: %v", err)
	}
	t.Setenv("HCSHARD_FAULT_MODE", "crash")
	t.Setenv("HCSHARD_FAULT_ROUND", "2")
	g := NewGNP(64, 0.5, 11)
	_, err = Solve(g, AlgorithmDRA, Options{
		Seed: 3, NumColors: 8, Shards: 3, Transport: "proc", ShardBinary: bin,
	})
	if err == nil {
		t.Fatal("run with crashing shards succeeded")
	}
	if class := Classify(err); class != FailureError {
		t.Fatalf("shard death classified as %s (%v), want %s", class, err, FailureError)
	}
}

// TestDistCancelClassified cancels a distributed run up front and requires
// the canceled classification, mirroring the in-process engine's contract.
func TestDistCancelClassified(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := NewGNP(64, 0.5, 11)
	_, err := SolveContext(ctx, g, AlgorithmDRA, Options{Seed: 3, NumColors: 8, Shards: 2})
	if err == nil {
		t.Fatal("pre-canceled run succeeded")
	}
	if class := Classify(err); class != FailureCanceled {
		t.Fatalf("canceled run classified as %s (%v)", class, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context.Canceled lost from the chain: %v", err)
	}
}

// TestDistOptionValidation pins the solver-level shard option checking.
func TestDistOptionValidation(t *testing.T) {
	g := NewGNP(16, 0.5, 1)
	if _, err := Solve(g, AlgorithmDRA, Options{Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := Solve(g, AlgorithmDRA, Options{Shards: 2, Engine: EngineStep}); err == nil {
		t.Fatal("step engine with shards accepted")
	}
	if _, err := Solve(g, AlgorithmDRA, Options{Transport: "tcp"}); err == nil {
		t.Fatal("transport without shards accepted")
	}
	if _, err := Solve(g, AlgorithmDHC1, Options{Shards: 2, Transport: "proc"}); err == nil {
		t.Fatal("proc transport with non-portable algorithm accepted")
	}
	if _, err := Solve(g, AlgorithmDRA, Options{Shards: 2, Transport: "quantum"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
}
