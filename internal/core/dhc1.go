package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"dhc/internal/arena"
	"dhc/internal/congest"
	"dhc/internal/cycle"
	"dhc/internal/dra"
	"dhc/internal/graph"
	"dhc/internal/rotation"
)

// DHC1Options configures a DHC1 run (paper Algorithm 2, for p = c·ln n/√n).
type DHC1Options struct {
	// NumColors overrides the number of partitions K (default round(√n)).
	NumColors int
	// B bounds broadcast/BFS settling times (0 = defaultB).
	B int64
	// MaxSteps overrides the per-partition DRA step budget.
	MaxSteps int64
	// HyperMaxSteps overrides the Phase 2 hypernode rotation budget
	// (default 4 × the Theorem 2 budget for K, covering probe rejections).
	HyperMaxSteps int64
	// MaxRounds overrides the simulator's round budget when the caller's
	// congest.Options leaves it unset (0 keeps the derived default).
	MaxRounds int64
	// Workers sizes the simulator's parallel executor when the caller's
	// congest.Options leaves it unset; both phases run on the pool. Any
	// value produces identical results; only wall-clock changes.
	Workers int
}

// dhc1Node is the per-node program: shared Phase 1, then the hypernode
// rotation of Phase 2.
type dhc1Node struct {
	cfg      phase1Config
	hyperMax int64
	numK     int32
	p1       phase1
	hp       hyperPhase
	stage    int
}

var _ congest.Node = (*dhc1Node)(nil)

func (d *dhc1Node) Init(ctx *congest.Context) {
	d.stage = 1
	d.p1 = phase1{cfg: d.cfg}
	d.p1.init(ctx)
	d.armWake(ctx)
}

// armWake declares this node's next self-scheduled invocation to the
// event-driven simulator; everything else is driven by deliveries.
func (d *dhc1Node) armWake(ctx *congest.Context) {
	var w int64
	switch {
	case d.stage == 1:
		w = d.p1.nextWake(ctx.Round())
	case d.numK == 1:
		w = ctx.Round() + 1 // one more invocation to halt, as in the dense sweep
	default:
		w = d.hp.nextWake(ctx.Round())
	}
	ctx.WakeAtOrSleep(w)
}

func (d *dhc1Node) Round(ctx *congest.Context, inbox []congest.Envelope) {
	if d.stage == 1 {
		if d.p1.tick(ctx, inbox) {
			d.stage = 2
			if d.numK == 1 {
				// Single partition: Phase 1's cycle is the answer.
				if d.p1.succeeded() {
					ctx.Halt()
					return
				}
			}
			d.hp = hyperPhase{B: d.cfg.B, K: d.numK, maxSteps: d.hyperMax}
			var cycindex int32
			succ, pred := graph.NodeID(-1), graph.NodeID(-1)
			if d.p1.succeeded() {
				cycindex = d.p1.dra.CycleIndex()
				succ, pred = d.p1.dra.Succ(), d.p1.dra.Pred()
			}
			d.hp.start(d.p1.color, cycindex, int32(d.p1.scopeSize), succ, pred,
				d.p1.treeNeighbors(ctx), d.p1.phase2Start)
		}
		d.armWake(ctx)
		return
	}
	if d.numK == 1 {
		ctx.Halt()
		return
	}
	if ctx.Round() >= d.hp.phaseStart {
		if d.hp.tick(ctx, inbox, d.p1.leader, d.p1.scopeNbrs) {
			ctx.Halt()
			return
		}
	}
	d.armWake(ctx)
}

// RunDHC1 executes DHC1 on g and returns the verified Hamiltonian cycle.
func RunDHC1(g *graph.Graph, seed uint64, opts DHC1Options, netOpts congest.Options) (*Result, error) {
	return NewDHC1Session().Run(context.Background(), g, seed, opts, netOpts)
}

// DHC1Session is a reusable DHC1 runner: the per-node program slice, the
// simulator Network, and its run arena survive across Run calls, so repeated
// trials on same-sized graphs skip the engine-side allocations. Not safe for
// concurrent use.
type DHC1Session struct {
	progs []*dhc1Node
	nodes []congest.Node
	net   congest.Runner
}

// NewDHC1Session returns an empty session; the first Run sizes it.
func NewDHC1Session() *DHC1Session { return &DHC1Session{} }

// SetRunner replaces the session's executor — the seam the distributed
// engine injects its shard cluster through. A nil Runner restores the
// default in-process Network on the next Run.
func (sess *DHC1Session) SetRunner(r congest.Runner) { sess.net = r }

// Run executes one DHC1 trial, honoring ctx at the simulator's amortized
// cancellation checkpoint. A cancelled run returns ctx's error and leaves
// the session reusable.
func (sess *DHC1Session) Run(ctx context.Context, g *graph.Graph, seed uint64, opts DHC1Options, netOpts congest.Options) (*Result, error) {
	n := g.N()
	if n < 3 {
		return nil, fmt.Errorf("core: need n >= 3, got %d", n)
	}
	numColors := opts.NumColors
	if numColors <= 0 {
		numColors = int(math.Round(math.Sqrt(float64(n))))
	}
	if numColors > n/3 {
		numColors = n / 3
	}
	if numColors < 1 {
		numColors = 1
	}
	b := opts.B
	if b == 0 {
		b = defaultB(g)
	}
	cfg := phase1Config{NumColors: int32(numColors), B: b, MaxSteps: opts.MaxSteps}
	if netOpts.MaxRounds == 0 {
		netOpts.MaxRounds = opts.MaxRounds
	}
	if netOpts.MaxRounds == 0 {
		scope := 3 * n / numColors
		steps := rotation.DefaultMaxSteps(scope)
		hyperSteps := 4 * rotation.DefaultMaxSteps(numColors)
		netOpts.MaxRounds = 4*b + 8 + steps*(b+3) + hyperSteps*(b+4) + 8*b + 2048
	}
	if netOpts.Workers == 0 {
		netOpts.Workers = opts.Workers
	}
	sess.progs = arena.Resize(sess.progs, n)
	sess.nodes = arena.Resize(sess.nodes, n)
	for i := 0; i < n; i++ {
		if sess.progs[i] == nil {
			sess.progs[i] = &dhc1Node{}
		}
		*sess.progs[i] = dhc1Node{cfg: cfg, numK: int32(numColors), hyperMax: opts.HyperMaxSteps}
		sess.nodes[i] = sess.progs[i]
	}
	if sess.net == nil {
		sess.net = new(congest.Network)
	}
	// Reset handles first bind and rebind alike (NewNetwork is just a Reset
	// on a zero Network), so the sessions cannot drift on bind semantics.
	if err := sess.net.Reset(g, sess.nodes, netOpts); err != nil {
		return nil, err
	}
	counters, err := sess.net.RunContext(ctx, seed)
	if err != nil {
		return nil, fmt.Errorf("dhc1: %w", err)
	}
	res := &Result{
		Counters:       counters,
		PartitionSizes: make([]int, numColors),
	}
	hc, err := extractDHC1(g, sess.progs, numColors, res)
	if err != nil {
		return nil, err
	}
	res.Cycle = hc
	return res, nil
}

// extractDHC1 reassembles the full Hamiltonian cycle from per-node states:
// partition subcycles from Phase 1 plus hypernode (index, orientation, port)
// assignments from Phase 2.
func extractDHC1(g *graph.Graph, progs []*dhc1Node, numColors int, res *Result) (*cycle.Cycle, error) {
	n := g.N()
	type hyp struct {
		idx     int32
		reverse bool
		u, v    graph.NodeID
	}
	hyps := make([]hyp, numColors)
	succ := make([]graph.NodeID, n)
	pred := make([]graph.NodeID, n)
	colorSteps := make([]int64, numColors)
	var hyperSteps int64
	for v, p := range progs {
		if !p.p1.succeeded() {
			return nil, fmt.Errorf("%w: node %d partition DRA failed", ErrNoHC, v)
		}
		res.Phase1Rounds = p.p1.phase2Start
		c := int(p.p1.color)
		if c < 0 || c >= numColors {
			return nil, fmt.Errorf("%w: node %d has invalid color %d", ErrNoHC, v, c)
		}
		res.PartitionSizes[c]++
		if s := p.p1.draSteps(); s > colorSteps[c] {
			colorSteps[c] = s
		}
		succ[v] = p.p1.dra.Succ()
		pred[v] = p.p1.dra.Pred()
		if numColors > 1 {
			if p.hp.status != dra.Succeeded {
				return nil, fmt.Errorf("%w: node %d phase 2 status %d", ErrNoHC, v, p.hp.status)
			}
			if p.hp.steps > hyperSteps {
				hyperSteps = p.hp.steps
			}
			if p.hp.isUPort {
				hyps[c].u = graph.NodeID(v)
				hyps[c].idx = p.hp.hypIdx
				hyps[c].reverse = p.hp.reverse
			}
			if p.hp.isVPort {
				hyps[c].v = graph.NodeID(v)
			}
		}
	}
	for _, s := range colorSteps {
		res.Steps += s
	}
	res.Steps += hyperSteps
	if numColors == 1 {
		hc, err := cycle.FromSuccessors(succMap(succ), 0)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNoHC, err)
		}
		if err := hc.Verify(g); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNoHC, err)
		}
		return hc, nil
	}
	sort.Slice(hyps, func(i, j int) bool { return hyps[i].idx < hyps[j].idx })
	order := make([]graph.NodeID, 0, n)
	for i, hy := range hyps {
		if hy.idx != int32(i+1) {
			return nil, fmt.Errorf("%w: hypernode indices not a permutation (saw %d at rank %d)",
				ErrNoHC, hy.idx, i+1)
		}
		// Walk the partition subcycle from the entry port to the exit port.
		var from, to graph.NodeID
		var next []graph.NodeID
		if !hy.reverse {
			from, to, next = hy.u, hy.v, succ
		} else {
			from, to, next = hy.v, hy.u, pred
		}
		w := from
		for steps := 0; ; steps++ {
			if steps > n {
				return nil, fmt.Errorf("%w: partition walk did not close", ErrNoHC)
			}
			order = append(order, w)
			if w == to {
				break
			}
			w = next[w]
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("%w: spliced %d of %d vertices", ErrNoHC, len(order), n)
	}
	hc := cycle.FromOrder(order)
	if err := hc.Verify(g); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoHC, err)
	}
	return hc, nil
}

func succMap(succ []graph.NodeID) map[graph.NodeID]graph.NodeID {
	m := make(map[graph.NodeID]graph.NodeID, len(succ))
	for v, s := range succ {
		m[graph.NodeID(v)] = s
	}
	return m
}
