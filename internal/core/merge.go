package core

import (
	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/wire"
)

// mergePhase implements DHC2's Phase 2 (paper Algorithm 3, Fig. 3): the
// n^{1-δ} partition subcycles merge pairwise in ⌈log₂ K⌉ parallel levels.
// At each level, consecutive colors pair up (2a with 2a+1); the active
// (even-colored) cycle's nodes probe the partner cycle for a "bridge" — two
// graph edges that connect a cycle edge (v → u) of the active cycle with a
// cycle edge of the partner so that deleting both cycle edges and inserting
// the two graph edges yields one cycle over the union. Each pair commits the
// smallest discovered bridge, patches the four endpoint pointers, reverses
// the partner cycle's orientation when the bridge demands it, and every node
// halves its color for the next level.
//
// Bandwidth adaptation (documented in DESIGN.md): paper line 14-16 has a
// passive node relay every incoming verify(u) to its cycle neighbors, which
// can exceed the CONGEST per-edge budget when many actives probe the same
// passive node in one round. Here a passive node checks only the smallest
// incoming probe per level; the expected number of discovered bridges per
// pair retains the Θ(s_i·s_j·p²) order of Lemma 8.
//
// Unlike Phase 1's DRA, merging needs no position indices — only the
// succ/pred pointers, which is exactly the paper's output format.
type mergePhase struct {
	// B is the broadcast settling bound, K the initial color count.
	B int64
	K int32

	color   int32
	nbColor map[graph.NodeID]int32
	// scopeNbrs/partnerNbrs cache the same-color and partner-color neighbor
	// lists for this level (neighbor-list order), rebuilt from the level's
	// color exchange so the flood hot paths iterate flat slices instead of
	// filtering every neighbor through a map lookup.
	scopeNbrs   []graph.NodeID
	partnerNbrs []graph.NodeID
	succ        graph.NodeID
	pred        graph.NodeID

	level      int32
	levelStart int64

	// alive is false when Phase 1 left this node without cycle pointers
	// (its partition failed); such nodes still exchange colors and forward
	// floods but take no merge actions, and extraction reports the failure.
	alive bool

	// per-level scratch, reset at each level start
	pendingProbe  probe // the probe this passive node is verifying
	confirmedSucc bool
	confirmedPred bool
	bestVerified  verified // best bridge reply at an active node
	bestCand      candidate
	reverseDone   bool // reverse flood forwarded this level
}

type probe struct {
	active graph.NodeID // the probing active node v
	u      graph.NodeID // succ(v), carried by the probe
	valid  bool
}

type verified struct {
	w       graph.NodeID // passive bridge endpoint adjacent to v
	wprime  graph.NodeID // its cycle neighbor adjacent to u
	crossed bool         // true when wprime = pred(w) (orientation kept)
	valid   bool
}

type candidate struct {
	v, w, wprime graph.NodeID
	crossed      bool
	valid        bool
}

// Level round offsets (within a level of length levelRounds):
//
//	+0  color exchange        +4   verified replies to actives
//	+1  actives send probes   +5   candidate floods start
//	+2  passives query cycle  +5+B candidate floods settled
//	    neighbors             +6+B buildBridge commit
//	+3  adjacency replies     +7+B reverse flood starts
//	                          +7+2B reverse settled; halve colors
func (m *mergePhase) levelRounds() int64 { return 2*m.B + 10 }

// levels returns the number of merge levels ⌈log₂ K⌉.
func (m *mergePhase) levels() int32 {
	lv := int32(0)
	for k := m.K; k > 1; k = (k + 1) / 2 {
		lv++
	}
	return lv
}

// totalRounds is the whole Phase 2 budget after its start round.
func (m *mergePhase) totalRounds() int64 { return int64(m.levels()) * m.levelRounds() }

// start initializes the phase from Phase 1 results.
func (m *mergePhase) start(color int32, succ, pred graph.NodeID, startRound int64) {
	m.color = color
	m.succ = succ
	m.pred = pred
	m.alive = succ >= 0 && pred >= 0
	m.level = 0
	m.levelStart = startRound
	m.resetLevel()
}

func (m *mergePhase) resetLevel() {
	m.nbColor = make(map[graph.NodeID]int32)
	m.scopeNbrs = m.scopeNbrs[:0]
	m.partnerNbrs = m.partnerNbrs[:0]
	m.pendingProbe = probe{}
	m.confirmedSucc = false
	m.confirmedPred = false
	m.bestVerified = verified{}
	m.bestCand = candidate{}
	m.reverseDone = false
}

// done reports whether all levels completed by the given round.
func (m *mergePhase) done(round int64) bool {
	return m.level >= m.levels()
}

// active reports whether this node's cycle initiates the merge this level.
func (m *mergePhase) activeThisLevel() bool {
	return m.color%2 == 0 && m.color+1 < m.colorsAtLevel()
}

// passiveThisLevel reports whether this node's cycle is a merge target.
func (m *mergePhase) passiveThisLevel() bool {
	return m.color%2 == 1
}

// colorsAtLevel returns the number of colors remaining at the current level.
func (m *mergePhase) colorsAtLevel() int32 {
	k := m.K
	for l := int32(0); l < m.level; l++ {
		k = (k + 1) / 2
	}
	return k
}

func (m *mergePhase) inScope(nb graph.NodeID) bool {
	c, ok := m.nbColor[nb]
	return ok && c == m.color
}

func (m *mergePhase) partnerScope(nb graph.NodeID) bool {
	c, ok := m.nbColor[nb]
	if !ok {
		return false
	}
	if m.activeThisLevel() {
		return c == m.color+1
	}
	return c == m.color-1
}

// nextWake declares the merge phase's wake-up discipline: within each level
// every node performs empty-inbox work at exactly three offsets — the color
// exchange at +0, the bridge commit at +6+B (the winning active node acts on
// its flooded minimum without necessarily receiving anything that round),
// and the level advance at the final offset (every node halves its color
// and re-arms, messages or not). All other offsets only react to deliveries.
// Returns 0 once all levels completed.
func (m *mergePhase) nextWake(now int64) int64 {
	if m.level >= m.levels() {
		// Already terminal (K = 1 has zero levels): one more tick at or
		// after the phase start reports completion so the embedder halts,
		// exactly when the dense sweep would.
		if now < m.levelStart {
			return m.levelStart
		}
		return now + 1
	}
	if now < m.levelStart {
		return m.levelStart
	}
	off := now - m.levelStart
	for _, o := range [...]int64{0, 6 + m.B, m.levelRounds() - 1} {
		if off < o {
			return m.levelStart + o
		}
	}
	// Past the final offset without having advanced (the caller invoked us
	// before ticking this round); run next round to catch up.
	return now + 1
}

// tick advances the merge phase one round; the caller must only invoke it
// for rounds >= the phase start. It returns true when all levels completed.
func (m *mergePhase) tick(ctx *congest.Context, inbox []congest.Envelope) bool {
	if m.level >= m.levels() {
		return true
	}
	off := ctx.Round() - m.levelStart
	switch {
	case off == 0:
		for _, nb := range ctx.Neighbors() {
			ctx.Send(nb, wire.Msg(wire.KindColor, m.color))
		}
	case off == 1:
		for _, env := range inbox {
			if env.Msg.Kind == wire.KindColor {
				m.nbColor[env.From] = env.Msg.Arg(0)
			}
		}
		for _, nb := range ctx.Neighbors() {
			if m.inScope(nb) {
				m.scopeNbrs = append(m.scopeNbrs, nb)
			} else if m.partnerScope(nb) {
				m.partnerNbrs = append(m.partnerNbrs, nb)
			}
		}
		if m.alive && m.activeThisLevel() {
			// Algorithm 3 line 7: announce the cycle edge (v, succ(v))
			// to every partner-colored neighbor.
			for _, nb := range m.partnerNbrs {
				ctx.Send(nb, wire.Msg(wire.KindVerify, int32(m.succ)))
			}
		}
	case off == 2:
		m.handleProbes(ctx, inbox)
	case off == 3:
		m.handleQueries(ctx, inbox)
	case off == 4:
		m.handleQueryReplies(ctx, inbox)
	case off == 5:
		m.handleVerified(ctx, inbox)
	case off > 5 && off <= 5+m.B:
		m.absorbCandidates(ctx, inbox)
	case off == 6+m.B:
		m.absorbCandidates(ctx, inbox)
		m.commitBridge(ctx)
	case off >= 7+m.B && off < 7+2*m.B:
		m.handleBridgeAndReverse(ctx, inbox)
	case off == m.levelRounds()-1:
		m.handleBridgeAndReverse(ctx, inbox)
		// Level complete: halve colors and advance.
		m.color /= 2
		m.level++
		m.levelStart += m.levelRounds()
		m.resetLevel()
		if m.level >= m.levels() {
			return true
		}
	default:
		// Settling rounds: keep consuming floods.
		m.absorbCandidates(ctx, inbox)
		m.handleBridgeAndReverse(ctx, inbox)
	}
	ctx.ObserveMemory(int64(len(m.nbColor)) + 24)
	return false
}

// handleProbes runs at passive nodes: select the smallest probe and query
// both cycle neighbors about adjacency to u.
func (m *mergePhase) handleProbes(ctx *congest.Context, inbox []congest.Envelope) {
	if !m.alive || !m.passiveThisLevel() {
		return
	}
	for _, env := range inbox {
		if env.Msg.Kind != wire.KindVerify {
			continue
		}
		// Inboxes arrive sorted by sender, so the first is the smallest v.
		m.pendingProbe = probe{active: env.From, u: graph.NodeID(env.Msg.Arg(0)), valid: true}
		break
	}
	if m.pendingProbe.valid {
		ctx.Send(m.succ, wire.Msg(wire.KindQuery, int32(m.pendingProbe.u)))
		ctx.Send(m.pred, wire.Msg(wire.KindQuery, int32(m.pendingProbe.u)))
		ctx.AddWork(1)
	}
}

// handleQueries answers adjacency questions from cycle neighbors
// (Algorithm 3 line 15: "ask succ(v) and pred(v) if they have u as their
// neighbor").
func (m *mergePhase) handleQueries(ctx *congest.Context, inbox []congest.Envelope) {
	for _, env := range inbox {
		if env.Msg.Kind != wire.KindQuery {
			continue
		}
		u := graph.NodeID(env.Msg.Arg(0))
		ans := int32(0)
		if ctx.HasNeighbor(u) {
			ans = 1
		}
		ctx.Send(env.From, wire.Msg(wire.KindQueryReply, int32(u), ans))
		ctx.AddWork(1)
	}
}

// handleQueryReplies collects adjacency answers and reports a verified
// bridge to the probing active node (Algorithm 3 line 16).
func (m *mergePhase) handleQueryReplies(ctx *congest.Context, inbox []congest.Envelope) {
	if !m.pendingProbe.valid {
		return
	}
	for _, env := range inbox {
		if env.Msg.Kind != wire.KindQueryReply {
			continue
		}
		if graph.NodeID(env.Msg.Arg(0)) != m.pendingProbe.u {
			continue
		}
		if env.Msg.Arg(1) == 1 {
			if env.From == m.succ {
				m.confirmedSucc = true
			}
			if env.From == m.pred {
				m.confirmedPred = true
			}
		}
	}
	switch {
	case m.confirmedSucc:
		// Bridge removes partner cycle edge (w -> succ(w)): partner
		// orientation reverses (parallel bridge).
		ctx.Send(m.pendingProbe.active,
			wire.Msg(wire.KindVerified, int32(ctx.ID()), int32(m.succ), 0))
	case m.confirmedPred:
		// Bridge removes (pred(w) -> w): orientation kept (crossed).
		ctx.Send(m.pendingProbe.active,
			wire.Msg(wire.KindVerified, int32(ctx.ID()), int32(m.pred), 1))
	}
}

// handleVerified runs at active nodes: choose the smallest verified bridge
// and flood it within the active cycle for global minimum selection.
func (m *mergePhase) handleVerified(ctx *congest.Context, inbox []congest.Envelope) {
	if !m.activeThisLevel() {
		return
	}
	for _, env := range inbox {
		if env.Msg.Kind != wire.KindVerified {
			continue
		}
		w := graph.NodeID(env.Msg.Arg(0))
		if !m.bestVerified.valid || w < m.bestVerified.w {
			m.bestVerified = verified{
				w:       w,
				wprime:  graph.NodeID(env.Msg.Arg(1)),
				crossed: env.Msg.Arg(2) == 1,
				valid:   true,
			}
		}
	}
	if m.bestVerified.valid {
		cand := wire.Msg(wire.KindBridgeCand,
			int32(ctx.ID()), int32(m.bestVerified.w), int32(m.bestVerified.wprime),
			boolArg(m.bestVerified.crossed))
		if m.noteCandidate(cand) {
			m.floodScope(ctx, cand, -1)
		}
	}
}

func boolArg(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// absorbCandidates participates in the candidate flood with monotone
// min-flooding (Algorithm 3 lines 10-11): a node forwards a candidate only
// when it improves its current minimum, so each edge carries at most one
// candidate message per round and the minimum still reaches every node of
// the cycle within its diameter.
func (m *mergePhase) absorbCandidates(ctx *congest.Context, inbox []congest.Envelope) {
	improved := false
	for _, env := range inbox {
		if env.Msg.Kind != wire.KindBridgeCand {
			continue
		}
		if m.noteCandidate(env.Msg) {
			improved = true
		}
	}
	if improved {
		m.floodScope(ctx, wire.Msg(wire.KindBridgeCand,
			int32(m.bestCand.v), int32(m.bestCand.w), int32(m.bestCand.wprime),
			boolArg(m.bestCand.crossed)), -1)
	}
}

// noteCandidate returns true if the candidate improves the current minimum.
func (m *mergePhase) noteCandidate(msg wire.Message) bool {
	c := candidate{
		v:       graph.NodeID(msg.Arg(0)),
		w:       graph.NodeID(msg.Arg(1)),
		wprime:  graph.NodeID(msg.Arg(2)),
		crossed: msg.Arg(3) == 1,
		valid:   true,
	}
	if !m.bestCand.valid || c.v < m.bestCand.v {
		m.bestCand = c
		return true
	}
	return false
}

// commitBridge runs at the winning active node v*: patch own pointers, tell
// u = succ(v*) its new predecessor, and tell w to build the bridge
// (Algorithm 3 line 12).
func (m *mergePhase) commitBridge(ctx *congest.Context) {
	if !m.activeThisLevel() || !m.bestCand.valid || m.bestCand.v != ctx.ID() {
		return
	}
	u := m.succ
	// Inform u: its predecessor becomes wprime in both bridge shapes.
	ctx.Send(u, wire.Msg(wire.KindBuildBridge, 2, int32(m.bestCand.wprime)))
	// Commit w's side.
	ctx.Send(m.bestCand.w, wire.Msg(wire.KindBuildBridge, 1,
		int32(m.bestCand.wprime), int32(u), boolArg(m.bestCand.crossed)))
	// Own patch: v*'s successor becomes w.
	m.succ = m.bestCand.w
	ctx.AddWork(1)
}

// handleBridgeAndReverse processes buildBridge commits and the partner
// cycle's reversal flood.
func (m *mergePhase) handleBridgeAndReverse(ctx *congest.Context, inbox []congest.Envelope) {
	for _, env := range inbox {
		switch env.Msg.Kind {
		case wire.KindBuildBridge:
			switch env.Msg.Arg(0) {
			case 2:
				// We are u = succ(v*): new predecessor is wprime.
				m.pred = graph.NodeID(env.Msg.Arg(1))
			case 1:
				// We are w.
				wprime := graph.NodeID(env.Msg.Arg(1))
				u := graph.NodeID(env.Msg.Arg(2))
				crossed := env.Msg.Arg(3) == 1
				if crossed {
					// Orientation kept: w's predecessor edge was removed.
					m.pred = env.From // v*
					// wprime (= old pred) must point its succ at u.
					ctx.Send(wprime, wire.Msg(wire.KindReverse, int32(wprime), int32(u), 1))
				} else {
					// Parallel bridge: whole partner cycle reverses.
					rev := wire.Msg(wire.KindReverse, int32(wprime), int32(u), 0)
					m.applyReverse(ctx, rev)
					m.pred = env.From // patch after the swap
					m.floodScope(ctx, rev, -1)
				}
			}
		case wire.KindReverse:
			if env.Msg.Arg(2) == 1 {
				// Direct patch (crossed bridge): we are wprime.
				if graph.NodeID(env.Msg.Arg(0)) == ctx.ID() {
					m.succ = graph.NodeID(env.Msg.Arg(1))
				}
				continue
			}
			if m.reverseDone {
				continue
			}
			m.applyReverse(ctx, env.Msg)
			m.floodScope(ctx, env.Msg, env.From)
		}
	}
}

// applyReverse swaps this node's pred/succ (the whole partner cycle flips
// orientation) and applies wprime's succ patch when this node is wprime.
func (m *mergePhase) applyReverse(ctx *congest.Context, msg wire.Message) {
	m.reverseDone = true
	m.succ, m.pred = m.pred, m.succ
	if graph.NodeID(msg.Arg(0)) == ctx.ID() {
		m.succ = graph.NodeID(msg.Arg(1))
	}
}

func (m *mergePhase) floodScope(ctx *congest.Context, msg wire.Message, except graph.NodeID) {
	for _, nb := range m.scopeNbrs {
		if nb == except {
			continue
		}
		ctx.Send(nb, msg)
	}
}
