// Package core implements the paper's primary contribution: the
// fully-distributed Hamiltonian-cycle algorithms DHC1 (Algorithm 2, for
// p = c·ln n/√n) and DHC2 (Algorithm 3, for p = c·ln n/n^δ).
//
// Both algorithms share Phase 1: every node picks one of K colors uniformly
// at random, the color classes induce ~K partitions of expected size n/K,
// and each partition runs an independent Distributed Rotation Algorithm
// (package dra) in parallel to build its own sub-Hamiltonian-cycle. DHC1
// uses K = round(√n); DHC2 uses K = round(n^{1-δ}).
//
// Phase 1 needs three pieces of scaffolding the paper assumes implicitly:
// the partition must agree on an initial head (scoped min-id election), the
// DRA success test needs the partition size |V_i| (scoped BFS + convergecast
// count), and the network must agree when Phase 2 starts even though
// partitions finish DRA at different times (a global barrier over a BFS tree
// rooted at node 0). All three cost O(diameter) rounds per use and stay
// within the paper's round budgets.
package core

import (
	"dhc/internal/congest"
	"dhc/internal/dra"
	"dhc/internal/graph"
	"dhc/internal/proto"
	"dhc/internal/rotation"
	"dhc/internal/wire"
)

// Tags for concurrent protocol instances.
const (
	tagGlobalTree int32 = 0   // network-wide BFS tree (barrier substrate)
	tagScopeTree  int32 = 1   // per-partition BFS tree (size count)
	tagPhase1DRA  int32 = 100 // DRA sessions of Phase 1 (tag 100+attempt)
	tagPhase2DRA  int32 = 2   // hypernode rotation of DHC1 Phase 2
)

// maxDRAAttempts bounds partition-local DRA restarts. The paper's analysis
// gives per-attempt failure O(1/n'^3), which is negligible asymptotically
// but noticeable at small partition sizes; restarting on the (scope-wide
// visible) failure flood drives the partition failure probability down
// exponentially in the attempt count at O(D) extra rounds per attempt. This
// is an engineering extension documented in DESIGN.md.
const maxDRAAttempts = 6

// phase1Config parameterizes the shared first phase.
type phase1Config struct {
	// NumColors is K, the number of partitions.
	NumColors int32
	// B upper-bounds every broadcast/BFS settling time (global and scope
	// diameters).
	B int64
	// MaxSteps overrides the per-partition DRA step budget (0 = Theorem 2
	// default for the counted partition size).
	MaxSteps int64
}

// phase1 is the per-node state of the shared first phase. The embedding node
// calls init from congest.Node.Init and tick once per round; tick returns
// true once Phase 1 (including the global barrier) is complete at this node.
type phase1 struct {
	cfg phase1Config

	color   int32
	nbColor map[graph.NodeID]int32
	// scopeNbrs caches the in-scope (same-color) neighbor list in
	// neighbor-list order once colors are known; every scoped flood
	// iterates it directly instead of filtering the full neighbor list
	// through a map lookup, which profiling showed dominated flood cost.
	scopeNbrs []graph.NodeID

	electBest graph.NodeID
	leader    bool

	globalBFS *proto.BFSState
	barrier   *proto.Barrier
	scopeBFS  *proto.BFSState
	counter   *proto.Counter

	dra       *dra.State
	scopeSize int
	attempts  int
	restartAt int64
	// stepsPrior accumulates the rotation steps of failed DRA sessions, so
	// the partition's total step count survives the in-place session restart.
	stepsPrior int64

	phase2Start int64 // common start round for Phase 2, set at barrier release
	arrived     bool
}

// Phase boundaries, in absolute rounds (B = cfg.B):
//
//	round 0 (Init): pick color, announce to neighbors, start global BFS
//	rounds 1..B:    global BFS settles; round 1 records neighbor colors and
//	                starts the scoped election
//	rounds 2..B+1:  scoped election settles
//	round B+2:      scope leader starts the partition BFS
//	rounds B+3..2B+2: partition BFS settles
//	round 2B+3:     partition size convergecast begins
//	rounds ..4B+7:  count settles everywhere
//	round 4B+8:     per-partition DRA begins (adaptive length)
//	then:           global barrier 0; Phase 2 starts at barrier.StartRound(0)
func (p *phase1) electStart() int64    { return 1 }
func (p *phase1) electEnd() int64      { return p.cfg.B + 1 }
func (p *phase1) scopeBFSStart() int64 { return p.cfg.B + 2 }
func (p *phase1) countStart() int64    { return 2*p.cfg.B + 3 }
func (p *phase1) draStart() int64      { return 4*p.cfg.B + 8 }

func (p *phase1) init(ctx *congest.Context) {
	p.color = int32(ctx.Rand().Intn(int(p.cfg.NumColors)))
	p.nbColor = make(map[graph.NodeID]int32, ctx.Degree())
	p.electBest = ctx.ID()
	for _, nb := range ctx.Neighbors() {
		ctx.Send(nb, wire.Msg(wire.KindColor, p.color))
	}
	p.globalBFS = proto.NewBFSState(0)
	p.globalBFS.Tag = tagGlobalTree
	p.globalBFS.Start(ctx)
}

// inScope reports whether neighbor nb is in this node's partition.
func (p *phase1) inScope(nb graph.NodeID) bool {
	c, ok := p.nbColor[nb]
	return ok && c == p.color
}

// tick advances Phase 1 by one round; returns true once complete.
func (p *phase1) tick(ctx *congest.Context, inbox []congest.Envelope) bool {
	round := ctx.Round()

	// Color records arrive in round 1 and drive everything scoped.
	for _, env := range inbox {
		if env.Msg.Kind == wire.KindColor {
			p.nbColor[env.From] = env.Msg.Arg(0)
		}
	}
	if round == p.electStart() {
		// All colors are in (announced at Init, delivered round 1): cache
		// the in-scope neighbor list for the scoped flood hot paths.
		for _, nb := range ctx.Neighbors() {
			if c, ok := p.nbColor[nb]; ok && c == p.color {
				p.scopeNbrs = append(p.scopeNbrs, nb)
			}
		}
	}

	// Global tree building and barrier traffic flow on their own kinds and
	// can be absorbed every round.
	p.globalBFS.Absorb(ctx, inbox)
	if p.barrier == nil && round >= p.cfg.B {
		// Tree final: barrier machinery becomes available.
		p.barrier = proto.NewBarrier(p.globalBFS, p.cfg.B+2)
	}
	if p.barrier != nil {
		p.barrier.Absorb(ctx, inbox)
	}

	switch {
	case round == p.electStart():
		p.sendCandidates(ctx)
	case round > p.electStart() && round <= p.electEnd():
		p.absorbCandidates(ctx, inbox)
	case round == p.scopeBFSStart():
		p.absorbCandidates(ctx, inbox) // stragglers from the last send
		p.leader = p.electBest == ctx.ID()
		p.scopeBFS = proto.NewScopedBFSState(p.electBest, p.inScope)
		p.scopeBFS.Tag = tagScopeTree
		if p.leader {
			p.scopeBFS.Start(ctx)
		}
	case round > p.scopeBFSStart() && round < p.countStart():
		p.scopeBFS.Absorb(ctx, inbox)
	case round >= p.countStart() && round < p.draStart():
		if p.counter == nil {
			p.counter = proto.NewCounter(p.scopeBFS, 1, tagScopeTree)
		}
		p.counter.Tick(ctx, inbox)
	case round >= p.draStart():
		return p.tickDRA(ctx, inbox)
	}
	ctx.ObserveMemory(p.memoryWords())
	return false
}

func (p *phase1) tickDRA(ctx *congest.Context, inbox []congest.Envelope) bool {
	if p.dra == nil {
		p.scopeSize = 0
		if p.counter != nil && p.counter.Done() {
			p.scopeSize = int(p.counter.Total)
		}
		p.dra = p.newDRAState(ctx, p.draStart())
	}
	p.dra.Tick(ctx, inbox)
	if p.dra.Status() == dra.Failed && !p.arrived &&
		p.attempts+1 < maxDRAAttempts && p.scopeSize >= 3 {
		// Retry after a quiet period long enough for every stale flood of
		// the failed session to drain (<= B rounds past the terminal
		// flood's origin). All scope nodes compute the same restart round
		// from the flooded terminal round, so the session stays in step.
		if p.restartAt == 0 {
			p.restartAt = p.dra.TerminalRound() + 2*p.cfg.B + 2
		}
		if ctx.Round() >= p.restartAt {
			p.attempts++
			p.restartAt = 0
			p.stepsPrior += p.dra.Steps()
			p.dra = p.newDRAState(ctx, ctx.Round()+1)
		}
		ctx.ObserveMemory(p.memoryWords())
		return false
	}
	if p.dra.Status() != dra.Running && !p.arrived {
		p.arrived = true
		p.barrier.Arrive(ctx, 0)
	}
	ctx.ObserveMemory(p.memoryWords())
	if p.arrived && p.barrier.Released(0) {
		p.phase2Start = p.barrier.StartRound(0)
		return true
	}
	return false
}

// nextWake returns the next round this node must run even without incoming
// messages, declaring Phase 1's wake-up discipline for the event-driven
// simulator: each phase boundary performs empty-inbox work at every node
// (start the scoped election, create the partition BFS, seed the size
// convergecast, construct the DRA state), the DRA head acts on its own
// timer, and a failed partition restarts its session at the commonly
// computed restart round. Everything in between — flood absorption, BFS
// adoption, convergecast propagation, barrier traffic — is message-driven.
// Returns 0 when only messages can advance this node.
func (p *phase1) nextWake(now int64) int64 {
	switch {
	case now < p.electStart():
		return p.electStart()
	case now < p.scopeBFSStart():
		return p.scopeBFSStart()
	case now < p.countStart():
		return p.countStart()
	case now < p.draStart():
		return p.draStart()
	}
	if p.dra == nil {
		return now + 1 // DRA state materializes on the next invocation
	}
	if p.dra.Status() == dra.Failed && !p.arrived {
		// Waiting out the quiet period before a session restart: the
		// restart round is set on the tick after the failure becomes
		// visible, and every scope node must run at restartAt to swap in
		// the fresh session before its first messages arrive.
		if p.restartAt == 0 || p.restartAt <= now {
			return now + 1
		}
		return p.restartAt
	}
	return p.dra.NextWake(now)
}

func (p *phase1) newDRAState(ctx *congest.Context, startRound int64) *dra.State {
	maxSteps := p.cfg.MaxSteps
	if maxSteps == 0 {
		maxSteps = rotation.DefaultMaxSteps(p.scopeSize)
	}
	params := dra.Params{
		ScopeSize:       p.scopeSize,
		IsInitialHead:   p.leader,
		ScopeNeighbors:  p.scopeNbrs,
		BroadcastRounds: p.cfg.B,
		StartRound:      startRound,
		Tag:             tagPhase1DRA + int32(p.attempts),
		MaxSteps:        maxSteps,
	}
	if p.dra != nil {
		// Session restart: recycle the failed machine's allocations. The old
		// session's state is fully dead — stale floods are filtered by the
		// per-attempt tag and the quiet period has drained them.
		p.dra.Reset(ctx, params)
		return p.dra
	}
	return dra.NewState(ctx, params)
}

func (p *phase1) sendCandidates(ctx *congest.Context) {
	for _, nb := range p.scopeNbrs {
		ctx.Send(nb, wire.Msg(wire.KindCandidate, int32(p.electBest)))
	}
}

func (p *phase1) absorbCandidates(ctx *congest.Context, inbox []congest.Envelope) {
	improved := false
	for _, env := range inbox {
		if env.Msg.Kind != wire.KindCandidate {
			continue
		}
		if c := graph.NodeID(env.Msg.Arg(0)); c < p.electBest {
			p.electBest = c
			improved = true
		}
	}
	if improved {
		p.sendCandidates(ctx)
	}
}

// memoryWords estimates retained state: neighbor colors (O(deg)), scope tree
// children, DRA state, and O(1) scalars.
func (p *phase1) memoryWords() int64 {
	words := int64(len(p.nbColor)) + 16
	if p.scopeBFS != nil {
		words += int64(len(p.scopeBFS.Children))
	}
	if p.globalBFS != nil {
		words += int64(len(p.globalBFS.Children))
	}
	if p.barrier != nil {
		words += p.barrier.MemoryWords()
	}
	if p.dra != nil {
		words += p.dra.MemoryWords()
	}
	return words
}

// treeNeighbors returns this node's global-BFS-tree neighbor list (parent,
// then children) for phase-wide flood routing: a tree flood costs O(n)
// messages instead of O(m) and settles within 2·depth <= 2·ecc(root) < B
// rounds. The root (its own parent) and unadopted nodes contribute only
// their children.
func (p *phase1) treeNeighbors(ctx *congest.Context) []graph.NodeID {
	t := p.globalBFS
	nbrs := make([]graph.NodeID, 0, len(t.Children)+1)
	if t.Adopted() && t.Parent != ctx.ID() {
		nbrs = append(nbrs, t.Parent)
	}
	return append(nbrs, t.Children...)
}

// succeeded reports whether this node's partition completed its subcycle.
func (p *phase1) succeeded() bool {
	return p.dra != nil && p.dra.Status() == dra.Succeeded
}

// draSteps returns this node's view of the partition's total rotation-step
// count across every DRA session, including failed attempts — the same
// accounting the step engine charges.
func (p *phase1) draSteps() int64 {
	steps := p.stepsPrior
	if p.dra != nil {
		steps += p.dra.Steps()
	}
	return steps
}
