package core

import (
	"encoding/binary"
	"fmt"

	"dhc/internal/congest"
	"dhc/internal/dra"
	"dhc/internal/graph"
)

// NewDHC2Node constructs one vertex's DHC2 program from a portable spec — the
// reconstruction entry point worker processes use. The spec must carry the
// driver-resolved values (NumColors after clamping, B after the default
// eccentricity bound), which DHC2Session computes before binding.
func NewDHC2Node(spec congest.ProgramSpec) congest.Node {
	return &dhc2Node{cfg: phase1Config{NumColors: spec.NumColors, B: spec.B, MaxSteps: spec.MaxSteps}}
}

var _ congest.PortableProgram = (*dhc2Node)(nil)

// DistSpec implements congest.PortableProgram.
func (d *dhc2Node) DistSpec() congest.ProgramSpec {
	return congest.ProgramSpec{Algo: "dhc2", NumColors: d.cfg.NumColors, B: d.cfg.B, MaxSteps: d.cfg.MaxSteps}
}

// AppendFinal implements congest.PortableProgram: exactly the fields DHC2's
// result extraction reads — the partition DRA's terminal status and total
// step count, the Phase 1 color and barrier-release round, and the merged
// cycle successor.
func (d *dhc2Node) AppendFinal(dst []byte) []byte {
	var status byte // 0 = no DRA session ever started
	var steps int64
	if d.p1.dra != nil {
		status = byte(d.p1.dra.Status())
	}
	steps = d.p1.draSteps()
	dst = append(dst, status)
	dst = binary.BigEndian.AppendUint64(dst, uint64(steps))
	dst = binary.BigEndian.AppendUint32(dst, uint32(d.p1.color))
	dst = binary.BigEndian.AppendUint64(dst, uint64(d.p1.phase2Start))
	dst = binary.BigEndian.AppendUint32(dst, uint32(d.mp.succ))
	return dst
}

// RestoreFinal implements congest.PortableProgram. The restored program
// carries only terminal state: enough for extraction, not for further rounds.
func (d *dhc2Node) RestoreFinal(src []byte) ([]byte, error) {
	if len(src) < 25 {
		return nil, fmt.Errorf("core: truncated dhc2 final state (%d bytes)", len(src))
	}
	status := src[0]
	steps := int64(binary.BigEndian.Uint64(src[1:]))
	d.p1.stepsPrior = 0
	d.p1.dra = nil
	if status != 0 {
		// The total step count rides on the restored session with stepsPrior
		// zeroed, so draSteps() reproduces the worker's value.
		d.p1.dra = dra.NewFinalState(dra.Status(status), steps, -1, -1)
	} else {
		d.p1.stepsPrior = steps
	}
	d.p1.color = int32(binary.BigEndian.Uint32(src[9:]))
	d.p1.phase2Start = int64(binary.BigEndian.Uint64(src[13:]))
	d.mp.succ = graph.NodeID(binary.BigEndian.Uint32(src[21:]))
	return src[25:], nil
}
