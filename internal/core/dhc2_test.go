package core

import (
	"errors"
	"testing"

	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/rng"
)

func TestDHC2OnCompleteGraph(t *testing.T) {
	g := graph.Complete(60)
	res, err := RunDHC2(g, 1, DHC2Options{NumColors: 4, B: 8}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycle.Len() != g.N() {
		t.Fatalf("cycle covers %d of %d", res.Cycle.Len(), g.N())
	}
	if res.MergeLevels != 2 {
		t.Fatalf("merge levels %d, want 2", res.MergeLevels)
	}
	total := 0
	for _, s := range res.PartitionSizes {
		total += s
	}
	if total != g.N() {
		t.Fatalf("partition sizes sum to %d", total)
	}
}

func TestDHC2OnDenseGNP(t *testing.T) {
	// Dense random graph, K = 5 partitions of expected size 64 with
	// in-partition degree ~38 >> ln(64): comfortably above the rotation
	// threshold (the Theorem 2 analysis wants degree >= c*ln(n') with a
	// large constant; see EXPERIMENTS.md on constant sensitivity).
	g := graph.GNP(320, 0.6, rng.New(2))
	res, err := RunDHC2(g, 3, DHC2Options{NumColors: 5, B: 10}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Cycle.Verify(g); err != nil {
		t.Fatal(err)
	}
	if res.Phase1Rounds <= 0 || res.Counters.Rounds <= res.Phase1Rounds {
		t.Fatalf("phase accounting wrong: phase1=%d total=%d",
			res.Phase1Rounds, res.Counters.Rounds)
	}
}

func TestDHC2WithDeltaParameter(t *testing.T) {
	// delta = 0.5 on n = 256 gives K = 16 partitions of ~16 nodes; use a
	// dense graph so every partition is comfortably Hamiltonian.
	g := graph.GNP(256, 0.9, rng.New(4))
	res, err := RunDHC2(g, 5, DHC2Options{Delta: 0.5, B: 10}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PartitionSizes) != 16 {
		t.Fatalf("K=%d, want 16", len(res.PartitionSizes))
	}
}

func TestDHC2SingleColorDegeneratesToDRA(t *testing.T) {
	// K=1: Phase 1 is a single whole-graph DRA and Phase 2 has zero levels.
	g := graph.Complete(30)
	res, err := RunDHC2(g, 7, DHC2Options{NumColors: 1, B: 6}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MergeLevels != 0 {
		t.Fatalf("merge levels %d, want 0", res.MergeLevels)
	}
	if res.Cycle.Len() != 30 {
		t.Fatal("incomplete cycle")
	}
}

func TestDHC2FailsCleanlyBelowThreshold(t *testing.T) {
	// A ring has no partition subcycles: every partition DRA must fail and
	// the run must return an error rather than hang.
	g := graph.Ring(64)
	_, err := RunDHC2(g, 1, DHC2Options{NumColors: 4, B: 70}, congest.Options{})
	if err == nil {
		t.Fatal("ring accepted")
	}
}

func TestDHC2RejectsBadParams(t *testing.T) {
	g := graph.Complete(10)
	if _, err := RunDHC2(g, 1, DHC2Options{Delta: 0}, congest.Options{}); err == nil {
		t.Fatal("delta=0 accepted")
	}
	if _, err := RunDHC2(g, 1, DHC2Options{Delta: 1.5}, congest.Options{}); err == nil {
		t.Fatal("delta=1.5 accepted")
	}
	if _, err := RunDHC2(graph.Complete(2), 1, DHC2Options{NumColors: 1}, congest.Options{}); err == nil {
		t.Fatal("n=2 accepted")
	}
}

func TestDHC2DeterministicAcrossExecutors(t *testing.T) {
	g := graph.GNP(200, 0.8, rng.New(11))
	seq, err := RunDHC2(g, 9, DHC2Options{NumColors: 8, B: 10}, congest.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunDHC2(g, 9, DHC2Options{NumColors: 8, B: 10}, congest.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	so, po := seq.Cycle.Order(), par.Cycle.Order()
	for i := range so {
		if so[i] != po[i] {
			t.Fatal("executors disagree")
		}
	}
}

func TestDHC2MemorySublinear(t *testing.T) {
	g := graph.GNP(300, 0.7, rng.New(13))
	res, err := RunDHC2(g, 2, DHC2Options{NumColors: 6, B: 10}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxMem := res.Counters.MemoryDistribution().Max
	// Memory is O(degree + partition size) words: neighbor colors dominate.
	bound := 3 * int64(g.MaxDegree()+g.N()/6)
	if maxMem > bound {
		t.Fatalf("per-node memory %d words exceeds O(deg) bound %d", maxMem, bound)
	}
}

func TestDHC2SuccessRateAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	ok := 0
	const trials = 5
	for seed := uint64(0); seed < trials; seed++ {
		g := graph.GNP(240, 0.75, rng.New(300+seed))
		if _, err := RunDHC2(g, seed, DHC2Options{NumColors: 6, B: 10}, congest.Options{}); err == nil {
			ok++
		} else if !errors.Is(err, ErrNoHC) {
			t.Fatalf("seed %d: unexpected error class: %v", seed, err)
		}
	}
	if ok < trials-1 {
		t.Fatalf("only %d/%d runs succeeded on dense graphs", ok, trials)
	}
}
