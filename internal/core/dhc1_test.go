package core

import (
	"testing"

	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/rng"
)

func TestDHC1OnCompleteGraph(t *testing.T) {
	g := graph.Complete(64)
	res, err := RunDHC1(g, 1, DHC1Options{B: 8}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycle.Len() != g.N() {
		t.Fatalf("cycle covers %d of %d", res.Cycle.Len(), g.N())
	}
	if len(res.PartitionSizes) != 8 { // round(sqrt(64))
		t.Fatalf("K=%d, want 8", len(res.PartitionSizes))
	}
}

func TestDHC1OnDenseGNP(t *testing.T) {
	// K = round(sqrt(300)) = 17 partitions of ~18 nodes; p=0.9 keeps each
	// partition far above the rotation threshold and gives plenty of
	// hypernode cross edges.
	g := graph.GNP(300, 0.9, rng.New(21))
	res, err := RunDHC1(g, 2, DHC1Options{B: 10}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Cycle.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestDHC1SinglePartition(t *testing.T) {
	g := graph.Complete(24)
	res, err := RunDHC1(g, 3, DHC1Options{NumColors: 1, B: 6}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycle.Len() != 24 {
		t.Fatal("incomplete cycle")
	}
}

func TestDHC1FailsCleanlyOnSparse(t *testing.T) {
	g := graph.Ring(48)
	if _, err := RunDHC1(g, 1, DHC1Options{NumColors: 4, B: 52}, congest.Options{}); err == nil {
		t.Fatal("ring accepted")
	}
}

func TestDHC1Deterministic(t *testing.T) {
	g := graph.GNP(200, 0.9, rng.New(31))
	a, err := RunDHC1(g, 7, DHC1Options{B: 10}, congest.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDHC1(g, 7, DHC1Options{B: 10}, congest.Options{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	ao, bo := a.Cycle.Order(), b.Cycle.Order()
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatal("executors disagree")
		}
	}
}

func TestDHC1SuccessRateAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	ok := 0
	const trials = 4
	for seed := uint64(0); seed < trials; seed++ {
		g := graph.GNP(220, 0.9, rng.New(500+seed))
		if _, err := RunDHC1(g, seed, DHC1Options{B: 10}, congest.Options{}); err == nil {
			ok++
		}
	}
	if ok < trials-1 {
		t.Fatalf("only %d/%d DHC1 runs succeeded", ok, trials)
	}
}
