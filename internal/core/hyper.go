package core

import (
	"dhc/internal/congest"
	"dhc/internal/dra"
	"dhc/internal/graph"
	"dhc/internal/rotation"
	"dhc/internal/wire"
)

// hyperPhase implements DHC1's Phase 2 (paper Algorithm 2, Fig. 1): one
// "hypernode" per partition — a subcycle edge (v_i -> u_i) with u_i the
// incoming and v_i the outgoing port — and a rotation process over the K
// hypernodes that finds a Hamiltonian cycle of the hypernode graph G'.
//
// A correction to the paper (see DESIGN.md): Lemma 6 computes the G'
// adjacency probability as 1-(1-p)², i.e. "at least one of the two cross
// edges (v_i,u_j), (v_j,u_i) exists", but a cycle over such adjacencies only
// lifts to a Hamiltonian cycle of G if every hypernode is entered at one
// port and exited at the other consistently. We therefore run the rotation
// with per-hypernode orientations: each hypernode is traversed forward
// (enter u_i, exit v_i) or reversed (enter v_i, exit u_i); a rotation
// reverses a segment of the hyperpath and flips the orientation of every
// hypernode in it; and a probe landing on a hypernode's entry port (which
// cannot splice) is rejected and retried. This keeps the usable adjacency
// probability at 1-(1-p)⁴ ≥ paper's p' and preserves the round analysis up
// to a constant probe-rejection factor.
//
// Both ports of a hypernode mirror its (index, orientation) state: floods
// reach both ports directly, and the one direct-message event (path
// extension) is relayed to the twin in one round — the ports are subcycle
// neighbors, hence graph-adjacent.
type hyperPhase struct {
	// Static configuration.
	B        int64
	K        int32
	color    int32
	maxSteps int64

	// Subcycle context from Phase 1.
	succ graph.NodeID
	pred graph.NodeID
	// tree lists this node's global-BFS-tree neighbors (parent + children).
	// Rotation and terminal floods are routed over the tree — O(n) messages
	// per flood instead of O(m) for edge-wise flooding — and settle within
	// 2·depth <= 2·ecc(root) < B rounds, so the consistency waits that
	// assume B-bounded settling are unaffected.
	tree []graph.NodeID

	// Hypernode-selection state.
	chosenR   int32 // the broadcast index r choosing u_i = node at position r
	rSeen     bool
	cycindex  int32
	scopeSize int32

	// Port identity (set once selection completes).
	isUPort bool
	isVPort bool
	twin    graph.NodeID // the other port of this hypernode

	// Mirrored hypernode state.
	hypIdx  int32 // 1-based position on the hyperpath, 0 = not yet on it
	reverse bool  // false: enter at u, exit at v; true: flipped
	steps   int64

	// Rotation/terminal flood bookkeeping (every node forwards).
	lastRotStep  int64
	terminalSeen bool
	status       dra.Status

	// Probing state at the acting exit port.
	pool     []graph.NodeID // unused candidate port neighbors
	amActor  bool
	actAfter int64

	phaseStart    int64
	terminalRound int64
	attempts      int
	restartAt     int64
}

// maxHyperAttempts bounds Phase 2 restarts (same rationale as
// maxDRAAttempts: the rotation process is flaky at small K).
const maxHyperAttempts = 6

// Offsets from phaseStart:
//
//	+0..+B   leader floods the chosen index r within each partition
//	+B+1     ports announce themselves to all neighbors
//	+B+2     pools built; the initial head's exit port may act
const hyperSetupSlack = 3

func (h *hyperPhase) selectStart() int64 { return h.phaseStart }
func (h *hyperPhase) announceAt() int64  { return h.phaseStart + h.B + 1 }
func (h *hyperPhase) draStartsAt() int64 { return h.phaseStart + h.B + hyperSetupSlack }
func (h *hyperPhase) enterPort() bool    { return (h.isUPort && !h.reverse) || (h.isVPort && h.reverse) }
func (h *hyperPhase) exitPort() bool     { return (h.isVPort && !h.reverse) || (h.isUPort && h.reverse) }

// resetForRestart clears per-attempt state; the next selection flood starts
// at the new phaseStart.
func (h *hyperPhase) resetForRestart(round int64) {
	h.phaseStart = round + 1
	h.restartAt = 0
	h.rSeen = false
	h.chosenR = 0
	h.isUPort = false
	h.isVPort = false
	h.twin = 0
	h.hypIdx = 0
	h.reverse = false
	h.steps = 0
	h.lastRotStep = 0
	h.terminalSeen = false
	h.terminalRound = 0
	h.pool = nil
	h.amActor = false
	h.actAfter = 0
	h.status = dra.Running
}

// start wires in Phase 1 results. isLeader nodes pick and flood r; tree is
// the node's global-BFS-tree neighbor list carrying phase-wide floods.
func (h *hyperPhase) start(color, cycindex, scopeSize int32, succ, pred graph.NodeID, tree []graph.NodeID, startRound int64) {
	h.color = color
	h.cycindex = cycindex
	h.scopeSize = scopeSize
	h.succ = succ
	h.pred = pred
	h.tree = tree
	h.phaseStart = startRound
	h.status = dra.Running
	if h.maxSteps == 0 {
		h.maxSteps = 4 * rotation.DefaultMaxSteps(int(h.K))
	}
}

// tick advances one round; returns true when the phase has terminated at
// this node. scopeNbrs lists the same-partition neighbors (for the
// selection flood).
func (h *hyperPhase) tick(ctx *congest.Context, inbox []congest.Envelope, isLeader bool, scopeNbrs []graph.NodeID) bool {
	if h.status == dra.Succeeded {
		return true
	}
	round := ctx.Round()
	if h.status == dra.Failed {
		if h.attempts+1 >= maxHyperAttempts {
			return true
		}
		// Restart the whole phase (fresh hypernode selection) once stale
		// floods of the failed session have drained; every node computes
		// the same restart round from the flooded terminal round.
		if h.restartAt == 0 {
			h.restartAt = h.terminalRound + 2*h.B + 2
		}
		if round >= h.restartAt {
			h.attempts++
			h.resetForRestart(round)
		}
		return false
	}

	// Leader floods the hypernode selection at phase start.
	if round == h.selectStart() && isLeader && h.scopeSize >= 3 {
		r := int32(ctx.Rand().Intn(int(h.scopeSize))) + 1
		h.absorbChoice(ctx, r, -1, scopeNbrs)
	}
	h.absorbFloods(ctx, inbox, scopeNbrs)

	if round == h.announceAt() && h.rSeen {
		h.decidePorts()
		if h.isUPort || h.isVPort {
			for _, nb := range ctx.Neighbors() {
				ctx.Send(nb, wire.Msg(wire.KindPort, h.color))
			}
			// The initial head is hypernode color 0, forward orientation.
			if h.color == 0 {
				h.hypIdx = 1
				h.reverse = false
				if h.exitPort() {
					h.amActor = true
					h.actAfter = h.draStartsAt()
				}
			}
		}
	}
	if round == h.announceAt()+1 && (h.isUPort || h.isVPort) {
		for _, env := range inbox {
			if env.Msg.Kind == wire.KindPort && env.Msg.Arg(0) != h.color {
				h.pool = append(h.pool, env.From)
			}
		}
	}
	if round > h.announceAt()+1 {
		h.absorbPortTraffic(ctx, inbox)
	}
	if h.amActor && h.status == dra.Running && round >= h.actAfter && round >= h.draStartsAt() {
		h.act(ctx)
	}
	ctx.ObserveMemory(int64(len(h.pool)) + 24)
	// A fresh failure is not terminal: the next tick enters the restart
	// branch. Only success (or exhausted attempts, handled above) ends the
	// phase.
	return h.status == dra.Succeeded
}

// nextWake declares the hypernode phase's wake-up discipline: the leader
// floods the selection at selectStart, ports announce themselves at
// announceAt, the acting exit port probes on its own timer, and a failed
// session restarts at the commonly computed restart round. Pool building,
// flood forwarding and probe handling are message-driven. Returns 0 when
// only messages (or the embedder's halt) can advance this node.
func (h *hyperPhase) nextWake(now int64) int64 {
	switch h.status {
	case dra.Succeeded:
		return 0
	case dra.Failed:
		// Exhausted attempts still need one more tick to report terminal
		// (and make the embedder halt); a restartable failure needs a tick
		// to compute restartAt and then the restart round itself.
		if h.attempts+1 >= maxHyperAttempts || h.restartAt == 0 || h.restartAt <= now {
			return now + 1
		}
		return h.restartAt
	}
	if now < h.selectStart() {
		return h.selectStart()
	}
	if now < h.announceAt() {
		return h.announceAt()
	}
	if h.amActor {
		w := h.actAfter
		if d := h.draStartsAt(); d > w {
			w = d
		}
		if w <= now {
			w = now + 1
		}
		return w
	}
	return 0
}

// absorbFloods handles the r-selection flood, hyperpath rotations, and
// terminal floods. Rotation and terminal floods are global: every node
// forwards them (watermark dedup) and ports additionally apply them.
func (h *hyperPhase) absorbFloods(ctx *congest.Context, inbox []congest.Envelope, scopeNbrs []graph.NodeID) {
	for _, env := range inbox {
		switch env.Msg.Kind {
		case wire.KindSizeAnnounce:
			if env.Msg.Arg(1) == tagPhase2DRA && !h.rSeen {
				h.absorbChoice(ctx, env.Msg.Arg(0), env.From, scopeNbrs)
			}
		case wire.KindRotation:
			step := int64(env.Msg.Arg(2))
			if step <= h.lastRotStep {
				continue
			}
			h.lastRotStep = step
			h.forwardTree(ctx, env.Msg, env.From)
			h.applyHypRotation(env.Msg.Arg(0), env.Msg.Arg(1), step, int64(env.Msg.Arg(3)))
		case wire.KindSuccess:
			if env.Msg.Arg(1) != tagPhase2DRA || h.terminalSeen {
				continue
			}
			h.terminalSeen = true
			h.terminalRound = int64(env.Msg.Arg(3))
			h.forwardTree(ctx, env.Msg, env.From)
			if env.Msg.Arg(0) == 1 {
				h.status = dra.Succeeded
			} else {
				h.status = dra.Failed
			}
		}
	}
}

func (h *hyperPhase) absorbChoice(ctx *congest.Context, r int32, from graph.NodeID, scopeNbrs []graph.NodeID) {
	h.rSeen = true
	h.chosenR = r
	for _, nb := range scopeNbrs {
		if nb != from {
			ctx.Send(nb, wire.Msg(wire.KindSizeAnnounce, r, tagPhase2DRA))
		}
	}
}

// decidePorts resolves whether this node is u_i (position r) or v_i (its
// subcycle predecessor, position r-1 wrapping to scopeSize).
func (h *hyperPhase) decidePorts() {
	if h.cycindex == 0 || h.scopeSize < 3 {
		return
	}
	vPos := h.chosenR - 1
	if vPos == 0 {
		vPos = h.scopeSize
	}
	if h.cycindex == h.chosenR {
		h.isUPort = true
		h.twin = h.pred
	} else if h.cycindex == vPos {
		h.isVPort = true
		h.twin = h.succ
	}
}

// applyHypRotation renumbers hypIdx and flips orientation for hypernodes in
// the reversed segment (j, h]. The port whose hypernode lands at index h and
// currently is the exit becomes the actor.
func (h *hyperPhase) applyHypRotation(hh, j int32, step, initRound int64) {
	if step > h.steps {
		h.steps = step
	}
	if !(h.isUPort || h.isVPort) {
		return
	}
	if !(j < h.hypIdx && h.hypIdx <= hh) {
		return
	}
	h.hypIdx = hh + j + 1 - h.hypIdx
	h.reverse = !h.reverse
	if h.hypIdx == hh && h.exitPort() {
		h.amActor = true
		h.actAfter = initRound + h.B + 1
	} else {
		h.amActor = false
	}
}

// absorbPortTraffic handles probes, relays and rejects addressed to this
// port.
func (h *hyperPhase) absorbPortTraffic(ctx *congest.Context, inbox []congest.Envelope) {
	for _, env := range inbox {
		switch env.Msg.Kind {
		case wire.KindProgress:
			h.handleProbe(ctx, env.From, env.Msg.Arg(0), int64(env.Msg.Arg(1)))
		case wire.KindRelay:
			// Twin adopted the hyperpath by extension: mirror and act
			// (the relaying port is the entry, so we are the exit).
			h.hypIdx = env.Msg.Arg(0)
			h.reverse = env.Msg.Arg(1) == 1
			if s := int64(env.Msg.Arg(2)); s > h.steps {
				h.steps = s
			}
			h.amActor = true
			h.actAfter = ctx.Round() + 1
		case wire.KindReject:
			if s := int64(env.Msg.Arg(0)); s > h.steps {
				h.steps = s
			}
			h.amActor = true
			h.actAfter = ctx.Round() + 1
		}
	}
}

// handleProbe is the receiving port's decision (the hypernode analogue of
// Algorithm 1's OnReceive progress).
func (h *hyperPhase) handleProbe(ctx *congest.Context, prober graph.NodeID, pos int32, stepsBefore int64) {
	if h.status != dra.Running || !(h.isUPort || h.isVPort) {
		return
	}
	h.removeFromPool(prober)
	switch {
	case h.hypIdx == 1 && h.enterPort() && pos == h.K:
		// Spanning hyperpath reached the tail's free entry: close.
		h.steps = stepsBefore + 1
		h.status = dra.Succeeded
		h.terminalSeen = true
		h.terminalRound = ctx.Round()
		h.forwardTree(ctx, wire.Msg(wire.KindSuccess, 1, tagPhase2DRA,
			int32(h.steps), int32(ctx.Round())), -1)
	case h.hypIdx == 0:
		// Extension: this port becomes the entry; the twin is the exit.
		h.hypIdx = pos + 1
		h.reverse = h.isVPort // entering at v means flipped orientation
		h.steps = stepsBefore + 1
		ctx.Send(h.twin, wire.Msg(wire.KindRelay,
			h.hypIdx, boolArg(h.reverse), int32(h.steps)))
	case h.exitPort():
		// Valid rotation point: reverse the segment after us.
		h.steps = stepsBefore + 1
		h.lastRotStep = h.steps
		rot := wire.Msg(wire.KindRotation, pos, h.hypIdx, int32(h.steps), int32(ctx.Round()))
		h.forwardTree(ctx, rot, -1)
		h.applyHypRotation(pos, h.hypIdx, h.steps, ctx.Round())
	default:
		// Probe landed on an occupied entry port: reject and let the
		// head retry (counts as a consumed step).
		ctx.Send(prober, wire.Msg(wire.KindReject, int32(stepsBefore+1)))
	}
}

// act performs the head's probe from its exit port.
func (h *hyperPhase) act(ctx *congest.Context) {
	h.amActor = false
	if h.steps >= h.maxSteps || len(h.pool) == 0 {
		h.status = dra.Failed
		h.terminalSeen = true
		h.terminalRound = ctx.Round()
		h.forwardTree(ctx, wire.Msg(wire.KindSuccess, 0, tagPhase2DRA,
			int32(h.steps), int32(ctx.Round())), -1)
		return
	}
	i := ctx.Rand().Intn(len(h.pool))
	target := h.pool[i]
	h.pool[i] = h.pool[len(h.pool)-1]
	h.pool = h.pool[:len(h.pool)-1]
	ctx.Send(target, wire.Msg(wire.KindProgress, h.hypIdx, int32(h.steps)))
	ctx.AddWork(1)
}

func (h *hyperPhase) removeFromPool(v graph.NodeID) {
	for i, x := range h.pool {
		if x == v {
			h.pool[i] = h.pool[len(h.pool)-1]
			h.pool = h.pool[:len(h.pool)-1]
			return
		}
	}
}

// forwardTree relays a phase-wide flood along the global BFS tree (skipping
// the edge it arrived on). A tree has no cycles, so every node receives each
// flood exactly once and the watermark dedup is belt and braces only.
func (h *hyperPhase) forwardTree(ctx *congest.Context, m wire.Message, except graph.NodeID) {
	for _, nb := range h.tree {
		if nb != except {
			ctx.Send(nb, m)
		}
	}
}
