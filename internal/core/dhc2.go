package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dhc/internal/arena"
	"dhc/internal/congest"
	"dhc/internal/cycle"
	"dhc/internal/graph"
	"dhc/internal/metrics"
	"dhc/internal/rotation"
)

// ErrNoHC is returned when a run terminates without producing a valid
// Hamiltonian cycle (a low-probability event on graphs above the threshold,
// certain on graphs below it).
var ErrNoHC = errors.New("core: run did not produce a Hamiltonian cycle")

// DHC2Options configures a DHC2 run (Algorithm 3).
type DHC2Options struct {
	// Delta is the sparsity exponent δ of p = c·ln n / n^δ; the number of
	// partitions is K = round(n^{1-δ}). Must be in (0, 1].
	Delta float64
	// NumColors overrides K directly when positive (Delta then unused).
	NumColors int
	// B bounds every broadcast/BFS settling time. Zero selects
	// max(2·ecc(0)+1, 3·⌈log₂ n⌉+6), safe whp for threshold random
	// graphs and their partitions.
	B int64
	// MaxSteps overrides the per-partition DRA step budget.
	MaxSteps int64
	// MaxRounds overrides the simulator's round budget when the caller's
	// congest.Options leaves it unset (0 keeps the derived default).
	MaxRounds int64
	// Workers sizes the simulator's parallel executor when the caller's
	// congest.Options leaves it unset, so one knob drives every phase of the
	// run — the phase-1 partition DRAs and the phase-2 merge levels both
	// execute round by round on that pool. Any value produces identical
	// results; only wall-clock changes.
	Workers int
}

// dhc2Node is the per-node program: Phase 1 (shared) then tree merging.
type dhc2Node struct {
	cfg   phase1Config
	p1    phase1
	mp    mergePhase
	stage int
}

var _ congest.Node = (*dhc2Node)(nil)

func (d *dhc2Node) Init(ctx *congest.Context) {
	d.stage = 1
	d.p1 = phase1{cfg: d.cfg}
	d.p1.init(ctx)
	d.armWake(ctx)
}

// armWake declares this node's next self-scheduled invocation to the
// event-driven simulator; everything else is driven by deliveries.
func (d *dhc2Node) armWake(ctx *congest.Context) {
	var w int64
	if d.stage == 1 {
		w = d.p1.nextWake(ctx.Round())
	} else {
		w = d.mp.nextWake(ctx.Round())
	}
	ctx.WakeAtOrSleep(w)
}

func (d *dhc2Node) Round(ctx *congest.Context, inbox []congest.Envelope) {
	if d.stage == 1 {
		if d.p1.tick(ctx, inbox) {
			d.stage = 2
			d.mp = mergePhase{B: d.cfg.B, K: d.cfg.NumColors}
			succ, pred := graph.NodeID(-1), graph.NodeID(-1)
			if d.p1.dra != nil {
				succ, pred = d.p1.dra.Succ(), d.p1.dra.Pred()
			}
			d.mp.start(d.p1.color, succ, pred, d.p1.phase2Start)
		}
		d.armWake(ctx)
		return
	}
	if ctx.Round() >= d.mp.levelStart {
		if d.mp.tick(ctx, inbox) {
			ctx.Halt()
			return
		}
	}
	d.armWake(ctx)
}

// Result carries a successful run's output and cost.
type Result struct {
	Cycle    *cycle.Cycle
	Counters *metrics.Counters
	// PartitionSizes are the Phase 1 color-class sizes.
	PartitionSizes []int
	// Steps is the rotation-step total across phases: the per-partition DRA
	// step counts (every attempt, summed over partitions — the partitions
	// run concurrently but steps meter work, not time) plus, for DHC1, the
	// phase-2 hypernode rotation steps. It mirrors the step engine's Cost.
	// Steps accounting so the crosscheck suite can pin the two engines
	// against each other.
	Steps int64
	// Phase1Rounds is the common Phase 2 start round, i.e. the cost of
	// Phase 1 including its barrier.
	Phase1Rounds int64
	// MergeLevels is ⌈log₂ K⌉ for DHC2 (0 for DHC1).
	MergeLevels int
}

// defaultB returns the broadcast bound used when the caller does not set one.
func defaultB(g *graph.Graph) int64 {
	ecc := int64(g.BFS(0).Ecc)
	logB := int64(3*intLog2(g.N()) + 6)
	if 2*ecc+1 > logB {
		return 2*ecc + 1
	}
	return logB
}

func intLog2(n int) int {
	l := 0
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}

// RunDHC2 executes DHC2 on g and returns the verified Hamiltonian cycle.
func RunDHC2(g *graph.Graph, seed uint64, opts DHC2Options, netOpts congest.Options) (*Result, error) {
	return NewDHC2Session().Run(context.Background(), g, seed, opts, netOpts)
}

// DHC2Session is a reusable DHC2 runner: the per-node program slice, the
// simulator Network, and its run arena survive across Run calls, so repeated
// trials on same-sized graphs skip the engine-side allocations. Not safe for
// concurrent use.
type DHC2Session struct {
	progs []*dhc2Node
	nodes []congest.Node
	net   congest.Runner
}

// NewDHC2Session returns an empty session; the first Run sizes it.
func NewDHC2Session() *DHC2Session { return &DHC2Session{} }

// SetRunner replaces the session's executor — the seam the distributed
// engine injects its shard cluster through. A nil Runner restores the
// default in-process Network on the next Run.
func (sess *DHC2Session) SetRunner(r congest.Runner) { sess.net = r }

// Run executes one DHC2 trial, honoring ctx at the simulator's amortized
// cancellation checkpoint. A cancelled run returns ctx's error and leaves
// the session reusable.
func (sess *DHC2Session) Run(ctx context.Context, g *graph.Graph, seed uint64, opts DHC2Options, netOpts congest.Options) (*Result, error) {
	n := g.N()
	if n < 3 {
		return nil, fmt.Errorf("core: need n >= 3, got %d", n)
	}
	numColors := opts.NumColors
	if numColors <= 0 {
		if opts.Delta <= 0 || opts.Delta > 1 {
			return nil, fmt.Errorf("core: delta %v outside (0, 1]", opts.Delta)
		}
		numColors = int(math.Round(math.Pow(float64(n), 1-opts.Delta)))
	}
	if numColors < 1 {
		numColors = 1
	}
	if numColors > n/3 {
		numColors = n / 3 // partitions must be able to hold a 3-cycle
	}
	if numColors < 1 {
		numColors = 1
	}
	b := opts.B
	if b == 0 {
		b = defaultB(g)
	}
	cfg := phase1Config{NumColors: int32(numColors), B: b, MaxSteps: opts.MaxSteps}
	if netOpts.MaxRounds == 0 {
		netOpts.MaxRounds = opts.MaxRounds
	}
	if netOpts.MaxRounds == 0 {
		netOpts.MaxRounds = dhc2RoundBudget(n, numColors, b)
	}
	if netOpts.Workers == 0 {
		netOpts.Workers = opts.Workers
	}
	sess.progs = arena.Resize(sess.progs, n)
	sess.nodes = arena.Resize(sess.nodes, n)
	for i := 0; i < n; i++ {
		if sess.progs[i] == nil {
			sess.progs[i] = &dhc2Node{}
		}
		*sess.progs[i] = dhc2Node{cfg: cfg}
		sess.nodes[i] = sess.progs[i]
	}
	if sess.net == nil {
		sess.net = new(congest.Network)
	}
	// Reset handles first bind and rebind alike (NewNetwork is just a Reset
	// on a zero Network), so the sessions cannot drift on bind semantics.
	if err := sess.net.Reset(g, sess.nodes, netOpts); err != nil {
		return nil, err
	}
	counters, err := sess.net.RunContext(ctx, seed)
	if err != nil {
		return nil, fmt.Errorf("dhc2: %w", err)
	}
	res := &Result{
		Counters:       counters,
		PartitionSizes: make([]int, numColors),
		MergeLevels:    int((&mergePhase{K: int32(numColors)}).levels()),
	}
	colorSteps := make([]int64, numColors)
	succ := make(map[graph.NodeID]graph.NodeID, n)
	for v, p := range sess.progs {
		if !p.p1.succeeded() {
			return nil, fmt.Errorf("%w: node %d partition DRA failed", ErrNoHC, v)
		}
		if c := int(p.p1.color); c >= 0 && c < numColors {
			res.PartitionSizes[c]++
			if s := p.p1.draSteps(); s > colorSteps[c] {
				colorSteps[c] = s
			}
		}
		res.Phase1Rounds = p.p1.phase2Start
		succ[graph.NodeID(v)] = p.mp.succ
	}
	for _, s := range colorSteps {
		res.Steps += s
	}
	hc, err := cycle.FromSuccessors(succ, 0)
	if err != nil {
		return nil, fmt.Errorf("%w: merged pointers: %v", ErrNoHC, err)
	}
	if err := hc.Verify(g); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoHC, err)
	}
	res.Cycle = hc
	return res, nil
}

// dhc2RoundBudget upper-bounds a run's rounds for the simulator's watchdog:
// Phase 1 scaffolding + worst-case DRA (every step pays a broadcast) +
// merge levels.
func dhc2RoundBudget(n, numColors int, b int64) int64 {
	scope := 3 * n / numColors // generous partition-size bound
	steps := rotation.DefaultMaxSteps(scope)
	levels := int64((&mergePhase{K: int32(numColors)}).levels())
	return 4*b + 8 + steps*(b+3) + levels*(2*b+10) + 4*b + 1024
}
