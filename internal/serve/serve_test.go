// Service-layer contract tests. The load-bearing properties:
//
//  1. The failure taxonomy survives the wire: each dhc.Classify class maps to
//     its own HTTP status and the body spells the class name (status table).
//  2. Replay-cache hits are byte-identical to computed responses — both
//     within one server (miss then hit) and against an independent fresh
//     server computing the same request.
//  3. A request deadline that expires mid-solve returns the "canceled" class
//     with 504, and the session survives for the next request.
//  4. Backpressure: with the queue full, requests are refused with 429 +
//     Retry-After instead of waiting unboundedly.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dhc"
	"dhc/internal/sweep"
)

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func decodeResponse(t *testing.T, data []byte) SolveResponse {
	t.Helper()
	var sr SolveResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("bad response body %q: %v", data, err)
	}
	return sr
}

// TestStatusMapping drives one real request per failure class through the
// full handler stack and pins the class -> (HTTP status, body status) table.
func TestStatusMapping(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	cases := []struct {
		name       string
		body       string
		wantHTTP   int
		wantStatus string
	}{
		{
			// p clamps to 1 (complete graph): success is deterministic.
			name:       "ok",
			body:       `{"family":"gnp","n":32,"param":40,"seed":1,"algo":"dra","engine":"step"}`,
			wantHTTP:   http.StatusOK,
			wantStatus: "ok",
		},
		{
			// A path graph has no Hamiltonian cycle.
			name:       "no_hc",
			body:       `{"n":4,"edges":[[0,1],[1,2],[2,3]],"seed":1,"algo":"dra","engine":"step"}`,
			wantHTTP:   http.StatusNotFound,
			wantStatus: "no_hc",
		},
		{
			// One round is never enough for the exact engine to terminate.
			name:       "round_limit",
			body:       `{"family":"gnp","n":32,"param":40,"seed":1,"algo":"dra","engine":"exact","max_rounds":1}`,
			wantHTTP:   http.StatusUnprocessableEntity,
			wantStatus: "round_limit",
		},
		{
			name:       "error_unknown_algo",
			body:       `{"family":"gnp","n":32,"param":3,"seed":1,"algo":"nope"}`,
			wantHTTP:   http.StatusBadRequest,
			wantStatus: "error",
		},
		{
			name:       "error_bad_edge",
			body:       `{"n":4,"edges":[[0,9]],"seed":1,"algo":"dra"}`,
			wantHTTP:   http.StatusBadRequest,
			wantStatus: "error",
		},
		{
			name:       "error_family_and_edges",
			body:       `{"family":"gnp","n":4,"param":1,"edges":[[0,1]],"seed":1,"algo":"dra"}`,
			wantHTTP:   http.StatusBadRequest,
			wantStatus: "error",
		},
		{
			name:       "error_malformed_json",
			body:       `{"family":`,
			wantHTTP:   http.StatusBadRequest,
			wantStatus: "error",
		},
		{
			name:       "error_tiny_n",
			body:       `{"family":"gnp","n":2,"param":3,"seed":1,"algo":"dra"}`,
			wantHTTP:   http.StatusBadRequest,
			wantStatus: "error",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/solve", tc.body)
			if resp.StatusCode != tc.wantHTTP {
				t.Fatalf("HTTP status = %d, want %d (body %s)", resp.StatusCode, tc.wantHTTP, data)
			}
			if sr := decodeResponse(t, data); sr.Status != tc.wantStatus {
				t.Fatalf("body status = %q, want %q (body %s)", sr.Status, tc.wantStatus, data)
			}
		})
	}
}

// TestStatusForTable pins the raw mapping function over every class.
func TestStatusForTable(t *testing.T) {
	want := map[dhc.FailureClass]int{
		dhc.FailureNone:       http.StatusOK,
		dhc.FailureNoHC:       http.StatusNotFound,
		dhc.FailureRoundLimit: http.StatusUnprocessableEntity,
		dhc.FailureCanceled:   http.StatusGatewayTimeout,
		dhc.FailureError:      http.StatusBadRequest,
	}
	for class, status := range want {
		if got := statusFor(class); got != status {
			t.Errorf("statusFor(%v) = %d, want %d", class, got, status)
		}
	}
	// Distinctness is the point of the table: collapse would lose taxonomy.
	seen := map[int]dhc.FailureClass{}
	for class, status := range want {
		if prev, dup := seen[status]; dup {
			t.Errorf("classes %v and %v share status %d", prev, class, status)
		}
		seen[status] = class
	}
}

// TestReplayCacheByteIdentity pins the cache contract: a hit replays the
// exact bytes a computation produced — asserted both within one server
// (miss, then hit) and across servers (an independent, cache-cold server
// computing the same request must produce the same bytes the first server
// cached).
func TestReplayCacheByteIdentity(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	ts2 := httptest.NewServer(New(Config{}).Handler())
	defer ts2.Close()

	for _, body := range []string{
		`{"family":"gnp","n":48,"param":40,"seed":7,"algo":"dra","engine":"step","include_cycle":true}`,
		`{"family":"gnp","n":48,"param":40,"seed":7,"algo":"dhc2","engine":"exact","delta":0.5,"num_colors":4}`,
		`{"n":4,"edges":[[0,1],[1,2],[2,3]],"seed":1,"algo":"dra","engine":"step"}`, // a no_hc outcome is cacheable too
	} {
		miss, missBody := postJSON(t, ts.URL+"/solve", body)
		if got := miss.Header.Get("X-Cache"); got != "miss" {
			t.Fatalf("first request X-Cache = %q, want miss", got)
		}
		hit, hitBody := postJSON(t, ts.URL+"/solve", body)
		if got := hit.Header.Get("X-Cache"); got != "hit" {
			t.Fatalf("second request X-Cache = %q, want hit", got)
		}
		if hit.StatusCode != miss.StatusCode {
			t.Fatalf("cached status %d != computed status %d", hit.StatusCode, miss.StatusCode)
		}
		if !bytes.Equal(hitBody, missBody) {
			t.Fatalf("cached body differs from computed body:\n  computed: %s\n  cached:   %s", missBody, hitBody)
		}
		_, freshBody := postJSON(t, ts2.URL+"/solve", body)
		if !bytes.Equal(freshBody, missBody) {
			t.Fatalf("independent server's body differs from cached body:\n  fresh:  %s\n  cached: %s", freshBody, missBody)
		}
	}
}

// TestCacheKeyIgnoresWorkersAndTimeout pins the key's determinism reasoning:
// worker count and deadline do not shape a (non-canceled) outcome, so they
// must not fragment the cache.
func TestCacheKeyIgnoresWorkersAndTimeout(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 1}).Handler())
	defer ts.Close()

	first := `{"family":"gnp","n":48,"param":40,"seed":3,"algo":"dra","engine":"step"}`
	second := `{"family":"gnp","n":48,"param":40,"seed":3,"algo":"dra","engine":"step","timeout_ms":30000}`
	if resp, _ := postJSON(t, ts.URL+"/solve", first); resp.Header.Get("X-Cache") != "miss" {
		t.Fatal("expected a cold miss")
	}
	if resp, _ := postJSON(t, ts.URL+"/solve", second); resp.Header.Get("X-Cache") != "hit" {
		t.Fatal("a differing timeout_ms must not miss the cache")
	}
	// A differing seed is a different solve and must miss.
	third := `{"family":"gnp","n":48,"param":40,"seed":4,"algo":"dra","engine":"step"}`
	if resp, _ := postJSON(t, ts.URL+"/solve", third); resp.Header.Get("X-Cache") != "miss" {
		t.Fatal("a differing seed must miss the cache")
	}
}

// TestDeadlineExpiryReturnsCanceled runs a real exact-engine solve under a
// 1ms deadline: the engine's cooperative cancellation must surface as the
// "canceled" class with HTTP 504, the response must not be cached, and the
// pooled session must remain usable (the follow-up uncapped request
// succeeds).
func TestDeadlineExpiryReturnsCanceled(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	capped := `{"family":"gnp","n":256,"param":3,"delta":0.5,"seed":1,"algo":"dra","engine":"exact","timeout_ms":1}`
	resp, data := postJSON(t, ts.URL+"/solve", capped)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("HTTP status = %d, want 504 (body %s)", resp.StatusCode, data)
	}
	if sr := decodeResponse(t, data); sr.Status != "canceled" {
		t.Fatalf("body status = %q, want canceled", sr.Status)
	}

	// Canceled outcomes are wall-clock evidence, never cache entries: the
	// same request without the deadline must compute (miss) and succeed.
	uncapped := `{"family":"gnp","n":256,"param":3,"delta":0.5,"seed":1,"algo":"dra","engine":"exact"}`
	resp2, data2 := postJSON(t, ts.URL+"/solve", uncapped)
	if resp2.Header.Get("X-Cache") != "miss" {
		t.Fatalf("uncapped request X-Cache = %q, want miss", resp2.Header.Get("X-Cache"))
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel solve HTTP status = %d, want 200 (body %s)", resp2.StatusCode, data2)
	}
}

// blockingServer returns a test server whose solve seam parks until release
// is closed (or the solve context dies), plus a channel that receives one
// value per solve start.
func blockingServer(cfg Config, release <-chan struct{}) (*Server, chan struct{}) {
	s := New(cfg)
	started := make(chan struct{}, 16)
	s.solve = func(ctx context.Context, _ *dhc.Solver, g *dhc.Graph, _ uint64) (*dhc.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return nil, fmt.Errorf("%w: blocked solve", dhc.ErrNoHamiltonianCycle)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s, started
}

// TestBackpressureQueueFull pins the 429 contract: with one solve slot held
// and no waiting room, the next request is refused immediately with 429 and
// a Retry-After header.
func TestBackpressureQueueFull(t *testing.T) {
	release := make(chan struct{})
	s, started := blockingServer(Config{Concurrency: 1, Queue: -1}, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"family":"gnp","n":16,"param":40,"seed":1,"algo":"dra","engine":"step"}`
	type result struct {
		resp *http.Response
		data []byte
	}
	firstDone := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			firstDone <- result{}
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		firstDone <- result{resp, data}
	}()
	<-started // the slot is now held

	// A second, distinct request (the first is not yet cached) must bounce.
	busy := `{"family":"gnp","n":16,"param":40,"seed":2,"algo":"dra","engine":"step"}`
	resp, data := postJSON(t, ts.URL+"/solve", busy)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP status = %d, want 429 (body %s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if sr := decodeResponse(t, data); sr.Status != "error" {
		t.Fatalf("429 body status = %q, want error", sr.Status)
	}

	close(release)
	r := <-firstDone
	if r.resp == nil {
		t.Fatal("first request failed at the transport layer")
	}
	if r.resp.StatusCode != http.StatusNotFound {
		t.Fatalf("released request HTTP status = %d, want 404 (body %s)", r.resp.StatusCode, r.data)
	}
}

// TestQueueAdmitsWaiters pins the other half of admission: with one waiting
// slot, a concurrent request queues (no 429) and completes once the slot
// frees.
func TestQueueAdmitsWaiters(t *testing.T) {
	release := make(chan struct{})
	s, started := blockingServer(Config{Concurrency: 1, Queue: 1}, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := func(seed int) string {
		return fmt.Sprintf(`{"family":"gnp","n":16,"param":40,"seed":%d,"algo":"dra","engine":"step"}`, seed)
	}
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(seed int) {
			resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body(seed)))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}(i + 1)
	}
	<-started // one running; give the second request time to join the queue
	time.Sleep(50 * time.Millisecond)
	close(release) // both solves now return no_hc
	for i := 0; i < 2; i++ {
		select {
		case code := <-codes:
			if code != http.StatusNotFound {
				t.Fatalf("request %d finished with %d, want 404", i, code)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("queued request never completed")
		}
	}
}

// TestSessionPoolReuse pins that repeated same-shape requests are served from
// recycled sessions, not fresh constructions.
func TestSessionPoolReuse(t *testing.T) {
	s := New(Config{Concurrency: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for seed := 1; seed <= 4; seed++ {
		body := fmt.Sprintf(`{"family":"gnp","n":48,"param":40,"seed":%d,"algo":"dra","engine":"step"}`, seed)
		if resp, data := postJSON(t, ts.URL+"/solve", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: HTTP %d (body %s)", seed, resp.StatusCode, data)
		}
	}
	created, reused := s.pool.counts()
	if created != 1 || reused != 3 {
		t.Fatalf("pool counts: created=%d reused=%d, want 1 created / 3 reused", created, reused)
	}
}

// TestStreamSolve drives the ndjson endpoint: at least one phase event, then
// a final result event whose payload matches the non-streaming response for
// the same request.
func TestStreamSolve(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	body := `{"family":"gnp","n":48,"param":40,"seed":5,"algo":"dhc2","engine":"step","delta":0.5}`
	resp, data := postJSON(t, ts.URL+"/solve/stream", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream HTTP status = %d (body %s)", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream produced %d events, want >= 2: %s", len(lines), data)
	}
	var sawPhase bool
	var final StreamEvent
	for i, line := range lines {
		var ev StreamEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %d %q: %v", i, line, err)
		}
		if ev.Event == "phase" {
			sawPhase = true
		}
		if i == len(lines)-1 {
			final = ev
		}
	}
	if !sawPhase {
		t.Fatalf("no phase event in stream: %s", data)
	}
	if final.Event != "result" || final.Result == nil {
		t.Fatalf("last event = %+v, want a result event", final)
	}
	if final.Result.Status != "ok" {
		t.Fatalf("streamed result status = %q, want ok", final.Result.Status)
	}

	// The streamed result payload must agree with the plain endpoint.
	_, plainBody := postJSON(t, ts.URL+"/solve", body)
	plain := decodeResponse(t, plainBody)
	if final.Result.Rounds != plain.Rounds || final.Result.Steps != plain.Steps ||
		final.Result.N != plain.N || final.Result.M != plain.M {
		t.Fatalf("streamed result %+v != plain result %+v", final.Result, plain)
	}
}

// TestRecipeMemoSkipsGeneration pins the lazy-materialization path: once a
// generated instance's digest is memoized, a repeat request is keyed (and on
// a hit answered) without rebuilding the graph.
func TestRecipeMemoSkipsGeneration(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"family":"gnp","n":48,"param":40,"seed":11,"algo":"dra","engine":"step"}`
	postJSON(t, ts.URL+"/solve", body)
	recipe := "gnp/n=48/param=40/delta=1/gs=0"
	digest, ok := s.recipes.get(recipe)
	if !ok {
		t.Fatalf("recipe %q not memoized after a solve", recipe)
	}
	// The memoized digest must equal the instance's content digest — that
	// equality is what makes serving from the memo sound.
	g, err := sweep.BuildInstance(sweep.FamilyGNP, 48, 40, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if digest != hashGraph(g) {
		t.Fatal("memoized digest differs from the instance's content digest")
	}

	// A repeat request must be answered purely from the memo + replay cache:
	// cripple materialization and it still succeeds.
	s.recipes.put(recipe, digest)
	resp, _ := postJSON(t, ts.URL+"/solve", body)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("repeat request X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
}

// TestRecipeCacheLRU pins the memo's bound: the oldest recipe falls out.
func TestRecipeCacheLRU(t *testing.T) {
	c := newRecipeCache(2)
	c.put("a", cacheKey{1})
	c.put("b", cacheKey{2})
	if _, ok := c.get("a"); !ok { // refresh a's recency
		t.Fatal("a missing")
	}
	c.put("c", cacheKey{3})
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	disabled := newRecipeCache(-1)
	disabled.put("x", cacheKey{4})
	if _, ok := disabled.get("x"); ok {
		t.Fatal("disabled memo stored an entry")
	}
}

// TestExplicitEdgesMatchGeneratedInstance pins the content-addressed cache
// key: posting a generated instance's explicit edge list hits the entry its
// generated form created.
func TestExplicitEdgesMatchGeneratedInstance(t *testing.T) {
	g := dhc.NewGNP(24, dhc.ThresholdP(24, 40, 1), 9)
	var sb strings.Builder
	for i, e := range g.Edges() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "[%d,%d]", e.U, e.V)
	}
	generated := `{"family":"gnp","n":24,"param":40,"graph_seed":9,"seed":2,"algo":"dra","engine":"step"}`
	explicit := fmt.Sprintf(`{"n":24,"edges":[%s],"seed":2,"algo":"dra","engine":"step"}`, sb.String())

	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	_, genBody := postJSON(t, ts.URL+"/solve", generated)
	resp, expBody := postJSON(t, ts.URL+"/solve", explicit)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("explicit edge list X-Cache = %q, want hit (content-addressed key)", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(genBody, expBody) {
		t.Fatalf("generated and explicit bodies differ:\n  %s\n  %s", genBody, expBody)
	}
}
