package serve

import (
	"math/bits"
	"sync"

	"dhc"
)

// solverConfig is the comparable subset of dhc.Options a pooled session is
// keyed by: everything that shapes the session's engine arena or its results.
// Seed is excluded (it is a per-trial input via SolveSeeded), and so is the
// Observer (streaming requests attach one per call via dhc.Options on a
// dedicated construction — see handleStream).
type solverConfig struct {
	engine      dhc.Engine
	dense       bool
	delta       float64
	numColors   int
	maxAttempts int
	maxRounds   int64
	workers     int
}

// options expands the config back into dhc.Options.
func (c solverConfig) options() dhc.Options {
	return dhc.Options{
		Engine:      c.engine,
		DenseSweep:  c.dense,
		Delta:       c.delta,
		NumColors:   c.numColors,
		MaxAttempts: c.maxAttempts,
		MaxRounds:   c.maxRounds,
		Workers:     c.workers,
	}
}

// poolKey identifies one free list of interchangeable sessions. Sessions are
// additionally keyed by the n-class of the instances they have run — the
// next power of two of n — because a session's arena grows to its largest
// run: without the class a single huge request would pin every later small
// request to an oversized arena, and mixed sizes would defeat arena reuse.
type poolKey struct {
	algo   dhc.Algorithm
	cfg    solverConfig
	nClass int
}

// nClass buckets an instance size: all n in (2^(k-1), 2^k] share a session
// class, so a pooled arena is never more than 2x oversized for its request.
func nClass(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// solverPool is the server's session pool: bounded per-key free lists of
// reusable dhc.Solver sessions. Checked-out sessions are exclusively owned by
// one request (the solver's own in-use guard backstops that contract);
// returning a session recycles its engine arena for the next same-class
// request — the ~143x bytes/trial reuse win measured in BENCH_pr5.json,
// applied across requests instead of across a sweep cell's trials.
type solverPool struct {
	mu sync.Mutex
	// free holds idle sessions per key, most recently used last (LIFO reuse
	// keeps warm arenas warmer).
	free map[poolKey][]*dhc.Solver
	// perKey bounds each free list; excess sessions are dropped for GC.
	perKey int

	created int64 // sessions constructed
	reused  int64 // checkouts served from a free list
}

func newSolverPool(perKey int) *solverPool {
	if perKey < 1 {
		perKey = 1
	}
	return &solverPool{free: make(map[poolKey][]*dhc.Solver), perKey: perKey}
}

// get checks a session out, constructing one when the free list is empty.
func (p *solverPool) get(key poolKey) (*dhc.Solver, error) {
	p.mu.Lock()
	if list := p.free[key]; len(list) > 0 {
		s := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		p.reused++
		p.mu.Unlock()
		return s, nil
	}
	p.created++
	p.mu.Unlock()
	return dhc.NewSolver(key.algo, key.cfg.options())
}

// put returns a session to its free list, dropping it when the list is full.
func (p *solverPool) put(key poolKey, s *dhc.Solver) {
	if s == nil {
		return
	}
	p.mu.Lock()
	if len(p.free[key]) < p.perKey {
		p.free[key] = append(p.free[key], s)
	}
	p.mu.Unlock()
}

// counts returns (created, reused) for the stats endpoint.
func (p *solverPool) counts() (int64, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.created, p.reused
}
