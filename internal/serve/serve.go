// Package serve is the HTTP/JSON solver service: the deployable runtime over
// the repository's solver sessions. It turns the one-shot CLI surface into a
// long-running server built from four pieces the run-lifecycle layer already
// provides:
//
//   - a pool of reusable dhc.Solver sessions keyed by (algorithm, options,
//     n-class), so engine arenas recycle across requests exactly as they do
//     across a sweep cell's trials;
//   - a bounded admission queue with backpressure: at most Concurrency solves
//     run at once, at most Queue requests wait, and the rest are refused with
//     429 + Retry-After instead of being buffered into memory exhaustion;
//   - per-request deadlines threaded to SolveContext, so an abandoned or
//     over-budget request stops burning CPU at the engine's next checkpoint;
//   - a replay cache keyed by (graph content hash, algorithm, options, seed):
//     solves are byte-deterministic, so a repeated request is answered by
//     replaying the stored response body — guaranteed byte-identical to a
//     fresh computation (pinned by TestReplayCacheByteIdentity).
//
// The failure taxonomy survives the wire: dhc.Classify's classes map to
// distinct HTTP statuses (ok 200, no_hc 404, round_limit 422, canceled 504,
// error 400) and the JSON body carries the class name and message, so a
// client can rebuild the same statistics a local harness would.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"dhc"
	"dhc/internal/bench"
	"dhc/internal/graph"
	"dhc/internal/sweep"
)

// Config shapes a Server.
type Config struct {
	// Concurrency bounds simultaneously executing solves (default 2). Each
	// running solve may itself use Workers pool goroutines.
	Concurrency int
	// Queue bounds requests waiting for a solve slot (default 64; negative
	// means no waiting room at all); beyond it requests are refused with
	// 429 + Retry-After.
	Queue int
	// CacheEntries bounds the replay cache (default 1024; negative disables
	// caching).
	CacheEntries int
	// MaxTimeout caps every request's solve deadline (default 60s); requests
	// may ask for less via timeout_ms but never more.
	MaxTimeout time.Duration
	// Workers is the per-solve engine worker bound handed to every session
	// (results are byte-identical at any value; this is purely a CPU knob).
	Workers int
	// MaxN rejects absurd instance sizes up front (default 1<<20 vertices).
	MaxN int
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.Queue < 0 {
		c.Queue = 0
	} else if c.Queue == 0 {
		c.Queue = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxN <= 0 {
		c.MaxN = 1 << 20
	}
	return c
}

// SolveRequest is the JSON body of POST /solve and POST /solve/stream. The
// instance is either generated (family/n/param/delta/graph_seed, the same
// parameterization as a sweep cell) or explicit (n plus an edge list);
// exactly one of the two forms must be used.
type SolveRequest struct {
	// Family selects a generator ("gnp", "gnm", "regular", "powerlaw",
	// "geometric", "sbm", "hypercube", "torus"); empty means explicit edges.
	Family string `json:"family,omitempty"`
	// N is the vertex count (both forms).
	N int `json:"n"`
	// Param is the family's density knob (threshold constant c, degree, ...).
	Param float64 `json:"param,omitempty"`
	// GraphSeed seeds the generator (ignored by deterministic lattices).
	GraphSeed uint64 `json:"graph_seed,omitempty"`
	// Edges is the explicit instance: undirected edges over [0, n). Self
	// loops, duplicates, and out-of-range endpoints are rejected.
	Edges [][2]int32 `json:"edges,omitempty"`

	// Algo is the algorithm name ("dra", "dhc1", "dhc2", "upcast").
	Algo string `json:"algo"`
	// Engine is "step" (default), "exact", or "exact-dense".
	Engine string `json:"engine,omitempty"`
	// Seed is the solver seed; the response is a pure function of
	// (instance, algo, options, seed).
	Seed uint64 `json:"seed"`
	// Delta is the threshold/partition exponent (generator families that use
	// it, and DHC2); 0 defaults to 1.
	Delta float64 `json:"delta,omitempty"`
	// NumColors / MaxAttempts / MaxRounds are the solver budget overrides,
	// with dhc.Options semantics (0 = derived defaults).
	NumColors   int   `json:"num_colors,omitempty"`
	MaxAttempts int   `json:"max_attempts,omitempty"`
	MaxRounds   int64 `json:"max_rounds,omitempty"`
	// TimeoutMS bounds the solve's wall clock (clamped to the server's
	// MaxTimeout). Expiry returns the "canceled" class with HTTP 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IncludeCycle asks for the cycle's vertex order in the response.
	IncludeCycle bool `json:"include_cycle,omitempty"`
}

// SolveResponse is the JSON body of a solve outcome. It carries no
// wall-clock or host fields: the body is a pure function of the request,
// which is what lets the replay cache serve stored bytes. (Wall-clock surfaces
// in the X-Solve-Wall-MS header, and cache state in X-Cache, outside the
// cached body.)
type SolveResponse struct {
	// Status is the dhc failure-class name: "ok", "no_hc", "round_limit",
	// "canceled", or "error".
	Status string `json:"status"`
	// N and M echo the solved instance's shape.
	N int   `json:"n,omitempty"`
	M int64 `json:"m,omitempty"`
	// Rounds/Steps and the phase split are the run's charged costs (ok only).
	Rounds       int64 `json:"rounds,omitempty"`
	Steps        int64 `json:"steps,omitempty"`
	Phase1Rounds int64 `json:"phase1_rounds,omitempty"`
	Phase2Rounds int64 `json:"phase2_rounds,omitempty"`
	// Messages/Bits are the exact engine's counters (zero for step).
	Messages int64 `json:"messages,omitempty"`
	Bits     int64 `json:"bits,omitempty"`
	// Cycle is the Hamiltonian cycle's visit order (include_cycle only).
	Cycle []graph.NodeID `json:"cycle,omitempty"`
	// Error is the failure message for non-ok statuses.
	Error string `json:"error,omitempty"`
}

// StreamEvent is one line of the POST /solve/stream ndjson response: progress
// events ("phase", "rounds", "restart") as the solve advances, then a final
// "result" event embedding the same SolveResponse a plain solve returns.
type StreamEvent struct {
	Event    string         `json:"event"`
	Phase    string         `json:"phase,omitempty"`
	Rounds   int64          `json:"rounds,omitempty"`
	Restarts int            `json:"restarts,omitempty"`
	Result   *SolveResponse `json:"result,omitempty"`
}

// Stats is the GET /stats payload.
type Stats struct {
	Requests       int64 `json:"requests"`
	InFlight       int64 `json:"in_flight"`
	Queued         int64 `json:"queued"`
	Rejected       int64 `json:"rejected"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	SolversCreated int64 `json:"solvers_created"`
	SolversReused  int64 `json:"solvers_reused"`
}

// statusFor maps the failure taxonomy onto distinct HTTP statuses. The
// mapping is part of the wire contract (pinned by TestStatusMapping):
//
//	ok          200  a verified Hamiltonian cycle
//	no_hc       404  the run completed; no cycle exists/was found
//	round_limit 422  the round budget cut the run off (raise max_rounds)
//	canceled    504  the request deadline expired mid-solve
//	error       400  the request itself is invalid (retrying cannot help)
func statusFor(class dhc.FailureClass) int {
	switch class {
	case dhc.FailureNone:
		return http.StatusOK
	case dhc.FailureNoHC:
		return http.StatusNotFound
	case dhc.FailureRoundLimit:
		return http.StatusUnprocessableEntity
	case dhc.FailureCanceled:
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

// Server is the solver service. Create with New, expose via Handler, and
// shut down by draining the enclosing http.Server (the handlers hold no
// background goroutines: once Shutdown returns, no solve is in flight).
type Server struct {
	cfg     Config
	pool    *solverPool
	cache   *replayCache
	recipes *recipeCache

	// sem holds one token per running solve; admission waits here (bounded
	// by queued) so at most Concurrency solves execute at once.
	sem      chan struct{}
	queued   atomic.Int64
	requests atomic.Int64
	inflight atomic.Int64
	rejected atomic.Int64

	// solve executes one trial on a checked-out session. A test seam: the
	// queue/backpressure contract is pinned with a blocking solve without
	// tying the test to engine timing.
	solve func(ctx context.Context, s *dhc.Solver, g *dhc.Graph, seed uint64) (*dhc.Result, error)
}

// New builds a Server from cfg (zero values take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		pool:    newSolverPool(cfg.Concurrency),
		cache:   newReplayCache(cfg.CacheEntries),
		recipes: newRecipeCache(cfg.CacheEntries),
		sem:     make(chan struct{}, cfg.Concurrency),
		solve: func(ctx context.Context, s *dhc.Solver, g *dhc.Graph, seed uint64) (*dhc.Result, error) {
			return s.SolveSeeded(ctx, g, seed)
		},
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/solve/stream", s.handleStream)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.counts()
	created, reused := s.pool.counts()
	st := Stats{
		Requests:       s.requests.Load(),
		InFlight:       s.inflight.Load(),
		Queued:         s.queued.Load(),
		Rejected:       s.rejected.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		SolversCreated: created,
		SolversReused:  reused,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

// parsedRequest is a validated request. Explicit-edge instances arrive
// materialized (the graph is already in the request body); generated
// instances stay lazy — g is nil until materialize builds it — so a replay
// hit whose recipe digest is memoized never constructs the graph at all.
type parsedRequest struct {
	req    SolveRequest
	g      *dhc.Graph
	fam    sweep.Family
	recipe string // generator recipe key; "" for explicit instances
	algo   dhc.Algorithm
	cfg    solverConfig
}

// parseSolve validates and resolves a request body. Every rejection is a
// FailureError-class outcome (HTTP 400) with a message naming the field.
func (s *Server) parseSolve(r *http.Request) (*parsedRequest, error) {
	if r.Method != http.MethodPost {
		return nil, fmt.Errorf("serve: %s requires POST", r.URL.Path)
	}
	var req SolveRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<28))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("serve: bad request body: %w", err)
	}
	if req.N < 3 {
		return nil, fmt.Errorf("serve: n = %d below the minimum cycle length 3", req.N)
	}
	if req.N > s.cfg.MaxN {
		return nil, fmt.Errorf("serve: n = %d exceeds the server's limit %d", req.N, s.cfg.MaxN)
	}
	algo, err := dhc.ParseAlgorithm(req.Algo)
	if err != nil {
		return nil, err
	}
	engine := bench.EngineMode{Engine: dhc.EngineStep}
	if req.Engine != "" {
		if engine, err = bench.ParseEngineMode(req.Engine); err != nil {
			return nil, err
		}
	}
	if req.MaxRounds < 0 || req.MaxAttempts < 0 || req.NumColors < 0 || req.TimeoutMS < 0 {
		return nil, fmt.Errorf("serve: negative budget field")
	}
	delta := req.Delta
	if delta == 0 {
		delta = 1
	}

	var g *dhc.Graph
	var fam sweep.Family
	var recipe string
	switch {
	case req.Family != "" && len(req.Edges) > 0:
		return nil, fmt.Errorf("serve: family and edges are mutually exclusive")
	case req.Family != "":
		if fam, err = sweep.ParseFamily(req.Family); err != nil {
			return nil, err
		}
		recipe = fmt.Sprintf("%s/n=%d/param=%g/delta=%g/gs=%d",
			fam, req.N, req.Param, delta, req.GraphSeed)
	case len(req.Edges) > 0:
		edges := make([]graph.Edge, len(req.Edges))
		for i, e := range req.Edges {
			u, v := e[0], e[1]
			if u == v || u < 0 || v < 0 || int(u) >= req.N || int(v) >= req.N {
				return nil, fmt.Errorf("serve: invalid edge (%d, %d) for n = %d", u, v, req.N)
			}
			edges[i] = graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)}
		}
		g = graph.FromEdges(req.N, edges)
	default:
		return nil, fmt.Errorf("serve: request needs a family or an edge list")
	}

	return &parsedRequest{
		req:    req,
		g:      g,
		fam:    fam,
		recipe: recipe,
		algo:   algo,
		cfg: solverConfig{
			engine:      engine.Engine,
			dense:       engine.Dense,
			delta:       delta,
			numColors:   req.NumColors,
			maxAttempts: req.MaxAttempts,
			maxRounds:   req.MaxRounds,
			workers:     s.cfg.Workers,
		},
	}, nil
}

// materialize builds a lazy (generated) instance; a no-op when the graph is
// already present. Generation errors are FailureError-class outcomes.
func (s *Server) materialize(p *parsedRequest) error {
	if p.g != nil {
		return nil
	}
	g, err := sweep.BuildInstance(p.fam, p.req.N, p.req.Param, p.cfg.delta, p.req.GraphSeed)
	if err != nil {
		return err
	}
	p.g = g
	return nil
}

// solveKey computes the request's replay-cache key. Explicit instances are
// digested directly; generated instances consult the recipe memo first and
// only build + digest the graph on a recipe miss (generation is
// deterministic, so the memoized digest is exact).
func (s *Server) solveKey(p *parsedRequest) (cacheKey, error) {
	var digest cacheKey
	if p.recipe != "" {
		if d, ok := s.recipes.get(p.recipe); ok {
			digest = d
		} else {
			if err := s.materialize(p); err != nil {
				return cacheKey{}, err
			}
			digest = hashGraph(p.g)
			s.recipes.put(p.recipe, digest)
		}
	} else {
		digest = hashGraph(p.g)
	}
	return hashSolve(digest, p.algo, p.cfg, p.req.Seed, p.req.IncludeCycle), nil
}

// admit acquires a solve slot, waiting in the bounded queue. It returns a
// release func, or an error when the queue is full (backpressure) or the
// request died while queued.
var errQueueFull = errors.New("serve: server busy (queue full)")

func (s *Server) admit(ctx context.Context) (func(), error) {
	select {
	case s.sem <- struct{}{}:
	default:
		// No free slot: join the bounded queue or refuse. The counter check
		// is optimistic (two racing requests may both observe the last free
		// queue slot), which can transiently over-admit a waiter by one —
		// backpressure is a load-shedding bound, not an exact semaphore.
		if s.queued.Add(1) > int64(s.cfg.Queue) {
			s.queued.Add(-1)
			s.rejected.Add(1)
			return nil, errQueueFull
		}
		defer s.queued.Add(-1)
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.inflight.Add(1)
	return func() {
		s.inflight.Add(-1)
		<-s.sem
	}, nil
}

// deadline returns the request's solve context.
func (s *Server) deadline(ctx context.Context, req *SolveRequest) (context.Context, context.CancelFunc) {
	timeout := s.cfg.MaxTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	return context.WithTimeout(ctx, timeout)
}

// runSolve executes one admitted request on a pooled session and renders the
// deterministic response body.
func (s *Server) runSolve(ctx context.Context, p *parsedRequest, obs *dhc.Observer) (int, []byte) {
	key := poolKey{algo: p.algo, cfg: p.cfg, nClass: nClass(p.g.N())}
	var (
		res *dhc.Result
		err error
	)
	if obs != nil {
		// Streaming requests need a per-request Observer, which is per-session
		// state; they use a dedicated session instead of a pooled one so the
		// pooled sessions stay observer-free (and therefore shareable).
		opts := p.cfg.options()
		opts.Observer = obs
		var solver *dhc.Solver
		if solver, err = dhc.NewSolver(p.algo, opts); err == nil {
			res, err = s.solve(ctx, solver, p.g, p.req.Seed)
		}
	} else {
		var solver *dhc.Solver
		if solver, err = s.pool.get(key); err == nil {
			res, err = s.solve(ctx, solver, p.g, p.req.Seed)
			// Return the session even after failed or canceled trials: the
			// session contract keeps it byte-identically reusable.
			s.pool.put(key, solver)
		}
	}

	class := dhc.Classify(err)
	resp := SolveResponse{Status: class.String(), N: p.g.N(), M: int64(p.g.M())}
	if err != nil {
		resp.Error = err.Error()
	}
	if class == dhc.FailureNone {
		resp.Rounds = res.Rounds
		resp.Steps = res.Steps
		resp.Phase1Rounds = res.Phase1Rounds
		resp.Phase2Rounds = res.Phase2Rounds
		if res.Counters != nil {
			resp.Messages = res.Counters.Messages
			resp.Bits = res.Counters.Bits
		}
		if p.req.IncludeCycle {
			resp.Cycle = res.Cycle.Order()
		}
	}
	return statusFor(class), mustJSON(resp)
}

// cacheable reports whether a response may be replayed: only deterministic
// outcomes. Canceled runs are wall-clock evidence and config errors are
// cheap to recompute; neither earns an entry.
func cacheable(status int) bool {
	switch status {
	case http.StatusOK, http.StatusNotFound, http.StatusUnprocessableEntity:
		return true
	}
	return false
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	p, err := s.parseSolve(r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	key, err := s.solveKey(p)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if entry, ok := s.cache.get(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		w.WriteHeader(entry.status)
		w.Write(entry.body)
		return
	}

	release, err := s.admit(r.Context())
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeJSONError(w, http.StatusTooManyRequests, err)
			return
		}
		writeJSONError(w, statusFor(dhc.Classify(err)), err)
		return
	}
	start := time.Now()
	// Generation runs inside the admission slot: instance construction is
	// solver work, and an unbounded burst of cache misses must not build
	// graphs beyond the configured concurrency.
	if err := s.materialize(p); err != nil {
		release()
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.deadline(r.Context(), &p.req)
	status, body := s.runSolve(ctx, p, nil)
	cancel()
	release()

	if cacheable(status) {
		s.cache.put(key, replayEntry{status: status, body: body})
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "miss")
	w.Header().Set("X-Solve-Wall-MS", fmt.Sprintf("%.3f", time.Since(start).Seconds()*1e3))
	w.WriteHeader(status)
	w.Write(body)
}

// handleStream is the chunked-ndjson variant: progress events from the
// Observer hooks as they fire, then the final result event. Streamed solves
// go through the same admission queue and deadline but bypass the replay
// cache — their value is the live progress, and the event timing is not part
// of any determinism contract (the final result event's payload is).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	p, err := s.parseSolve(r)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	release, err := s.admit(r.Context())
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeJSONError(w, http.StatusTooManyRequests, err)
			return
		}
		writeJSONError(w, statusFor(dhc.Classify(err)), err)
		return
	}
	defer release()
	if err := s.materialize(p); err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(ev StreamEvent) {
		// Observer callbacks run on the solving goroutine — this handler's
		// goroutine — so emits never interleave.
		b := mustJSON(ev)
		w.Write(b)
		w.Write([]byte("\n"))
		if flusher != nil {
			flusher.Flush()
		}
	}

	// OnRounds fires at the exact engine's amortized checkpoints; throttle
	// the wire to ~10 events/s so a long solve does not flood the stream.
	var lastRounds time.Time
	obs := &dhc.Observer{
		OnPhase: func(phase string) { emit(StreamEvent{Event: "phase", Phase: phase}) },
		OnRestart: func(restarts int) {
			emit(StreamEvent{Event: "restart", Restarts: restarts})
		},
		OnRounds: func(rounds int64) {
			if time.Since(lastRounds) < 100*time.Millisecond {
				return
			}
			lastRounds = time.Now()
			emit(StreamEvent{Event: "rounds", Rounds: rounds})
		},
	}
	ctx, cancel := s.deadline(r.Context(), &p.req)
	defer cancel()
	_, body := s.runSolve(ctx, p, obs)
	var resp SolveResponse
	json.Unmarshal(body, &resp)
	emit(StreamEvent{Event: "result", Result: &resp})
}

// writeJSONError renders a non-outcome failure in the response shape; the
// body's status field carries the error's failure class so a 504 from a
// request that died while queued still spells "canceled".
func writeJSONError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(mustJSON(SolveResponse{Status: dhc.Classify(err).String(), Error: err.Error()}))
}

// mustJSON marshals a value the package fully controls.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: marshal: %v", err))
	}
	return b
}
