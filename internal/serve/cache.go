package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"dhc"
	"dhc/internal/graph"
)

// cacheKey identifies one deterministic solve: the full graph content, the
// outcome-shaping solver configuration, and the seed. Two requests with equal
// keys are guaranteed byte-identical responses by the repository's
// determinism contract, which is what makes replaying a stored body safe.
//
// Deliberately excluded from the key:
//
//   - Workers: any worker count produces byte-identical results (the
//     determinism contract), so requests differing only in server-side
//     parallelism share cache entries.
//   - TimeoutMS: deadlines shape only *canceled* outcomes, and canceled
//     responses are never cached (they are wall-clock evidence, not instance
//     evidence).
//
// The graph is keyed by content (vertex count plus every CSR adjacency row),
// not by its generator recipe, so an explicit edge list and a generated
// instance that happen to be the same graph share an entry.
type cacheKey [sha256.Size]byte

// hashGraph digests one instance's content: vertex count, edge count, and
// every CSR adjacency row. Hashing is linear in the graph (a few ns per
// half-edge through SHA-256) — the price of making false sharing
// cryptographically negligible; a collision here would replay a wrong answer.
//
// Computing this digest requires the graph, which for generated instances
// means building it. The server therefore memoizes generator-recipe → digest
// (recipeCache), so a repeated generated request is keyed — and on a cache
// hit answered — without reconstructing the instance.
func hashGraph(g *dhc.Graph) cacheKey {
	h := sha256.New()
	buf := make([]byte, 0, 4096)
	u64 := func(v uint64) {
		if len(buf)+8 > cap(buf) {
			h.Write(buf)
			buf = buf[:0]
		}
		buf = binary.LittleEndian.AppendUint64(buf, v)
	}
	u64(uint64(g.N()))
	u64(uint64(g.M()))
	for v := 0; v < g.N(); v++ {
		row := g.Neighbors(graph.NodeID(v))
		u64(uint64(len(row)))
		for _, u := range row {
			u64(uint64(u))
		}
	}
	h.Write(buf)
	var key cacheKey
	h.Sum(key[:0])
	return key
}

// hashSolve combines a graph digest with the outcome-shaping solver fields
// into the replay-cache key. Constant-time: the graph's cost lives entirely
// in its digest.
func hashSolve(digest cacheKey, algo dhc.Algorithm, cfg solverConfig, seed uint64, includeCycle bool) cacheKey {
	h := sha256.New()
	buf := digest[:]
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	u64(uint64(algo))
	u64(uint64(cfg.engine))
	if cfg.dense {
		u64(1)
	} else {
		u64(0)
	}
	u64(math.Float64bits(cfg.delta))
	u64(uint64(int64(cfg.numColors)))
	u64(uint64(int64(cfg.maxAttempts)))
	u64(uint64(cfg.maxRounds))
	u64(seed)
	if includeCycle {
		u64(1)
	} else {
		u64(0)
	}
	h.Write(buf)
	var key cacheKey
	h.Sum(key[:0])
	return key
}

// recipeCache memoizes generator recipe → graph-content digest, bounded LRU.
// It is what keeps replay hits cheap for generated instances: without it
// every request would rebuild and re-hash its graph just to look up the
// cache, and a hit on a large instance would cost nearly as much as a solve.
// The mapping is sound because generation is deterministic — a recipe always
// yields the same graph, hence the same digest.
type recipeCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recent
	cap     int
}

type recipeItem struct {
	recipe string
	digest cacheKey
}

func newRecipeCache(capacity int) *recipeCache {
	return &recipeCache{
		entries: make(map[string]*list.Element),
		order:   list.New(),
		cap:     capacity,
	}
}

func (c *recipeCache) get(recipe string) (cacheKey, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[recipe]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*recipeItem).digest, true
	}
	return cacheKey{}, false
}

func (c *recipeCache) put(recipe string, digest cacheKey) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[recipe]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[recipe] = c.order.PushFront(&recipeItem{recipe: recipe, digest: digest})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*recipeItem).recipe)
	}
}

// replayEntry is one cached response: the HTTP status and the exact body
// bytes that were computed for the key. Replaying the stored bytes (rather
// than re-marshalling a stored struct) is what makes the byte-identity
// contract trivially true — the test in serve_test.go asserts it end to end.
type replayEntry struct {
	status int
	body   []byte
}

// replayCache is a bounded LRU of deterministic solve responses.
type replayCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recent
	cap     int

	hits   int64
	misses int64
}

type lruItem struct {
	key   cacheKey
	entry replayEntry
}

func newReplayCache(capacity int) *replayCache {
	return &replayCache{
		entries: make(map[cacheKey]*list.Element),
		order:   list.New(),
		cap:     capacity,
	}
}

// get returns the cached entry and whether it was present, updating LRU order
// and hit/miss counters. A zero-capacity cache misses everything.
func (c *replayCache) get(key cacheKey) (replayEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*lruItem).entry, true
	}
	c.misses++
	return replayEntry{}, false
}

// put stores an entry, evicting the least recently used one when full.
func (c *replayCache) put(key cacheKey, e replayEntry) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// Determinism makes overwrites value-identical; refresh recency only.
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruItem{key: key, entry: e})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruItem).key)
	}
}

// counts returns (hits, misses) for the stats endpoint.
func (c *replayCache) counts() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
