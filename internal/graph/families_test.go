package graph

// Property and fuzz tests for the atlas generator families (Chung–Lu,
// geometric, SBM, hypercube, torus). The shared contract — simplicity,
// strictly sorted CSR rows, byte-identical output for equal seeds — mirrors
// the random-regular suite; each family then pins the structural invariants
// that define it (power-law skew, distance-exactness, block densities,
// degree regularity, bipartite parity, wrap edges).

import (
	"bytes"
	"math"
	"math/bits"
	"testing"

	"dhc/internal/rng"
)

// checkSimpleSorted asserts the CSR contract every generator shares: the
// vertex count matches, rows are strictly sorted (which rules out duplicate
// edges), no self-loops, and every arc has its reverse.
func checkSimpleSorted(t *testing.T, g *Graph, n int) {
	t.Helper()
	if g.N() != n {
		t.Fatalf("n = %d, want %d", g.N(), n)
	}
	for v := 0; v < n; v++ {
		nb := g.Neighbors(NodeID(v))
		for i, w := range nb {
			if w == NodeID(v) {
				t.Fatalf("self-loop at vertex %d", v)
			}
			if i > 0 && nb[i-1] >= w {
				t.Fatalf("row %d not strictly sorted (duplicate edge?): %v", v, nb)
			}
			if !g.HasEdge(w, NodeID(v)) {
				t.Fatalf("arc (%d,%d) missing its reverse", v, w)
			}
		}
	}
}

// checkSeedDeterminism regenerates through gen twice with equal seeds and
// once with a different seed: the equal-seed pair must serialize to
// byte-identical edge lists, the third must not (for generators with at
// least one random edge decision).
func checkSeedDeterminism(t *testing.T, gen func(seed uint64) *Graph) {
	t.Helper()
	var a, b, c bytes.Buffer
	if err := gen(42).WriteEdgeList(&a); err != nil {
		t.Fatal(err)
	}
	if err := gen(42).WriteEdgeList(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("equal seeds produced different edge lists")
	}
	if err := gen(43).WriteEdgeList(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical edge lists")
	}
}

func TestChungLuInvariants(t *testing.T) {
	const n, avgDeg = 2000, 12.0
	g := ChungLu(n, avgDeg, 2.5, rng.New(7))
	checkSimpleSorted(t, g, n)
	// Mean degree should land near avgDeg (clipping at min(1, ·) only trims
	// the few heaviest pairs).
	if got := g.AvgDegree(); got < avgDeg*0.7 || got > avgDeg*1.3 {
		t.Fatalf("avg degree %.2f, want near %v", got, avgDeg)
	}
	// Weights are non-increasing in the vertex index, so degrees must skew
	// heavily toward low indices: the first 1% of vertices outweighs the
	// uniform share by a wide margin.
	head := 0
	for v := 0; v < n/100; v++ {
		head += g.Degree(NodeID(v))
	}
	if frac := float64(head) / (2 * float64(g.M())); frac < 0.05 {
		t.Fatalf("head-degree fraction %.3f too flat for a power law", frac)
	}
	if g.Degree(0) <= g.Degree(NodeID(n-1)) {
		t.Fatalf("degree skew inverted: deg(0)=%d deg(n-1)=%d", g.Degree(0), g.Degree(NodeID(n-1)))
	}
}

func TestChungLuDeterminism(t *testing.T) {
	checkSeedDeterminism(t, func(seed uint64) *Graph {
		return ChungLu(300, 8, 2.5, rng.New(seed))
	})
}

func TestChungLuEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name   string
		n      int
		avgDeg float64
	}{
		{"n=0", 0, 4}, {"n=1", 1, 4}, {"negative n", -3, 4},
		{"zero degree", 50, 0}, {"NaN degree", 50, math.NaN()},
	} {
		g := ChungLu(tc.n, tc.avgDeg, 2.5, rng.New(1))
		if g.M() != 0 {
			t.Errorf("%s: m = %d, want 0", tc.name, g.M())
		}
	}
	// avgDeg beyond n-1 clamps instead of producing probabilities > 1 edges.
	g := ChungLu(10, 100, 2.5, rng.New(1))
	checkSimpleSorted(t, g, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("exponent <= 2 did not panic")
		}
	}()
	ChungLu(10, 4, 2.0, rng.New(1))
}

// TestGeometricExactEdgeSet re-derives the point set from the same seed and
// brute-forces all pairs: the bucketed generator must produce exactly the
// edges at distance <= radius, no more, no less.
func TestGeometricExactEdgeSet(t *testing.T) {
	for _, tc := range []struct {
		n      int
		radius float64
		seed   uint64
	}{
		{200, 0.08, 3},  // several buckets
		{60, 0.5, 4},    // radius wider than the bucket cap
		{500, 0.01, 5},  // sparse, tiny radius
		{40, 1.5, 6},    // beyond sqrt2 -> complete
		{30, 0.0001, 7}, // likely edgeless
	} {
		g := Geometric(tc.n, tc.radius, rng.New(tc.seed))
		checkSimpleSorted(t, g, tc.n)
		src := rng.New(tc.seed)
		xs := make([]float64, tc.n)
		ys := make([]float64, tc.n)
		for i := 0; i < tc.n; i++ {
			xs[i] = src.Float64()
			ys[i] = src.Float64()
		}
		var want int
		for i := 0; i < tc.n; i++ {
			for j := i + 1; j < tc.n; j++ {
				dx, dy := xs[i]-xs[j], ys[i]-ys[j]
				in := dx*dx+dy*dy <= tc.radius*tc.radius
				if in {
					want++
				}
				if got := g.HasEdge(NodeID(i), NodeID(j)); got != in {
					t.Fatalf("n=%d r=%v: edge (%d,%d) = %v, want %v",
						tc.n, tc.radius, i, j, got, in)
				}
			}
		}
		if g.M() != want {
			t.Fatalf("n=%d r=%v: m = %d, want %d", tc.n, tc.radius, g.M(), want)
		}
	}
}

func TestGeometricDeterminism(t *testing.T) {
	checkSeedDeterminism(t, func(seed uint64) *Graph {
		return Geometric(300, 0.1, rng.New(seed))
	})
}

func TestGeometricThresholdR(t *testing.T) {
	if r := GeometricThresholdR(1, 2); r != 0 {
		t.Fatalf("n=1 threshold = %v, want 0", r)
	}
	want := 2 * math.Sqrt(math.Log(1000)/(math.Pi*1000))
	if r := GeometricThresholdR(1000, 2); math.Abs(r-want) > 1e-12 {
		t.Fatalf("threshold = %v, want %v", r, want)
	}
}

// TestSBMBlockStructure drives the two degenerate corners where the block
// structure is fully determined: pIn=1/pOut=0 yields k disjoint cliques,
// pIn=0/pOut=1 the complete multipartite complement.
func TestSBMBlockStructure(t *testing.T) {
	const n, k = 40, 4
	blockOf := func(v int) int { return v * k / n } // inverse of start(i) = i*n/k for equal blocks

	cliques := SBM(n, k, 1, 0, rng.New(1))
	checkSimpleSorted(t, cliques, n)
	multi := SBM(n, k, 0, 1, rng.New(1))
	checkSimpleSorted(t, multi, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			same := blockOf(i) == blockOf(j)
			if cliques.HasEdge(NodeID(i), NodeID(j)) != same {
				t.Fatalf("pIn=1,pOut=0: edge (%d,%d) = %v, want %v",
					i, j, !same, same)
			}
			if multi.HasEdge(NodeID(i), NodeID(j)) == same {
				t.Fatalf("pIn=0,pOut=1: edge (%d,%d) = %v, want %v",
					i, j, same, !same)
			}
		}
	}
}

func TestSBMDensityContrast(t *testing.T) {
	// With pIn >> pOut the realized within-block density must dominate the
	// cross-block density by a wide margin.
	const n, k = 400, 4
	g := SBM(n, k, 0.4, 0.02, rng.New(9))
	checkSimpleSorted(t, g, n)
	blockOf := func(v NodeID) int { return int(v) * k / n }
	var in, out int64
	for _, e := range g.Edges() {
		if blockOf(e.U) == blockOf(e.V) {
			in++
		} else {
			out++
		}
	}
	// Pair counts: within ~ k*(n/k choose 2) = 19800*k/16, cross ~ rest.
	inPairs := float64(k) * float64(n/k) * float64(n/k-1) / 2
	outPairs := float64(n)*float64(n-1)/2 - inPairs
	if din, dout := float64(in)/inPairs, float64(out)/outPairs; din < 5*dout {
		t.Fatalf("density contrast lost: in=%.3f out=%.3f", din, dout)
	}
}

func TestSBMEdgeCases(t *testing.T) {
	if g := SBM(1, 3, 1, 1, rng.New(1)); g.N() != 1 || g.M() != 0 {
		t.Fatalf("n=1: got n=%d m=%d", g.N(), g.M())
	}
	// k > n clamps to n blocks (all singletons; only cross edges possible).
	g := SBM(5, 99, 1, 1, rng.New(1))
	if g.M() != 10 {
		t.Fatalf("k>n complete: m = %d, want 10", g.M())
	}
	// Out-of-range probabilities clamp rather than corrupt the skipping.
	g = SBM(30, 3, 7.5, -2, rng.New(1))
	checkSimpleSorted(t, g, 30)
	defer func() {
		if recover() == nil {
			t.Fatal("k < 1 did not panic")
		}
	}()
	SBM(10, 0, 0.5, 0.5, rng.New(1))
}

func TestSBMDeterminism(t *testing.T) {
	checkSeedDeterminism(t, func(seed uint64) *Graph {
		return SBM(300, 4, 0.2, 0.02, rng.New(seed))
	})
}

func TestHypercubeStructure(t *testing.T) {
	for dim := 0; dim <= 8; dim++ {
		g := Hypercube(dim)
		n := 1 << dim
		checkSimpleSorted(t, g, n)
		if int(g.M()) != dim*n/2 {
			t.Fatalf("Q_%d: m = %d, want %d", dim, g.M(), dim*n/2)
		}
		for v := 0; v < n; v++ {
			if g.Degree(NodeID(v)) != dim {
				t.Fatalf("Q_%d: deg(%d) = %d, want %d", dim, v, g.Degree(NodeID(v)), dim)
			}
			// Every neighbor differs in exactly one bit, which also gives the
			// bipartition by label parity.
			for _, w := range g.Neighbors(NodeID(v)) {
				if diff := uint(v) ^ uint(w); bits.OnesCount(diff) != 1 {
					t.Fatalf("Q_%d: edge (%d,%d) differs in %d bits", dim, v, w, bits.OnesCount(diff))
				}
				if bits.OnesCount(uint(v))%2 == bits.OnesCount(uint(w))%2 {
					t.Fatalf("Q_%d: edge (%d,%d) within one parity class", dim, v, w)
				}
			}
		}
		if dim >= 1 && !g.Connected() {
			t.Fatalf("Q_%d disconnected", dim)
		}
	}
	for _, dim := range []int{-1, 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Hypercube(%d) did not panic", dim)
				}
			}()
			Hypercube(dim)
		}()
	}
}

func TestTorusStructure(t *testing.T) {
	for _, tc := range []struct{ rows, cols int }{{3, 3}, {3, 7}, {8, 8}, {5, 12}} {
		g := Torus(tc.rows, tc.cols)
		n := tc.rows * tc.cols
		checkSimpleSorted(t, g, n)
		if int(g.M()) != 2*n {
			t.Fatalf("%dx%d: m = %d, want %d", tc.rows, tc.cols, g.M(), 2*n)
		}
		id := func(r, c int) NodeID { return NodeID(r*tc.cols + c) }
		for r := 0; r < tc.rows; r++ {
			for c := 0; c < tc.cols; c++ {
				if g.Degree(id(r, c)) != 4 {
					t.Fatalf("%dx%d: deg(%d,%d) = %d, want 4", tc.rows, tc.cols, r, c, g.Degree(id(r, c)))
				}
			}
		}
		// The wrap edges close each row and column into a cycle.
		for c := 0; c < tc.cols; c++ {
			if !g.HasEdge(id(0, c), id(tc.rows-1, c)) {
				t.Fatalf("%dx%d: missing vertical wrap at col %d", tc.rows, tc.cols, c)
			}
		}
		for r := 0; r < tc.rows; r++ {
			if !g.HasEdge(id(r, 0), id(r, tc.cols-1)) {
				t.Fatalf("%dx%d: missing horizontal wrap at row %d", tc.rows, tc.cols, r)
			}
		}
		if !g.Connected() {
			t.Fatalf("%dx%d torus disconnected", tc.rows, tc.cols)
		}
	}
}

func TestTorusDegenerate(t *testing.T) {
	// Length-1 and length-2 dimensions drop their self-loop / duplicate wrap
	// edges instead of corrupting the CSR.
	for _, tc := range []struct {
		rows, cols int
		wantM      int
	}{
		{1, 1, 0}, // single vertex, all edges are self-loops
		{1, 2, 1}, // K2: wrap duplicates the grid edge
		{2, 2, 4}, // C4: each dimension's wrap is a duplicate
		{1, 5, 5}, // C5 as a 1-row torus
		{2, 3, 9}, // prism: 3-cycle pair plus matching
	} {
		g := Torus(tc.rows, tc.cols)
		checkSimpleSorted(t, g, tc.rows*tc.cols)
		if g.M() != tc.wantM {
			t.Fatalf("%dx%d: m = %d, want %d", tc.rows, tc.cols, g.M(), tc.wantM)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Torus(0, 5) did not panic")
		}
	}()
	Torus(0, 5)
}

// FuzzChungLu throws arbitrary (n, avgDeg, exponent, seed) at the power-law
// generator: no panic for exponents > 2, simplicity, sortedness, and
// equal-seed determinism must all hold.
func FuzzChungLu(f *testing.F) {
	f.Add(uint8(10), uint8(40), uint8(15), uint64(1))
	f.Add(uint8(2), uint8(0), uint8(1), uint64(2))     // minimal n, zero degree
	f.Add(uint8(200), uint8(255), uint8(0), uint64(3)) // degree beyond n-1 clamps
	f.Fuzz(func(t *testing.T, nRaw, degRaw, expRaw uint8, seed uint64) {
		n := int(nRaw)%300 + 2
		avgDeg := float64(degRaw) / 10
		exponent := 2.01 + float64(expRaw)/32
		g := ChungLu(n, avgDeg, exponent, rng.New(seed))
		checkSimpleSorted(t, g, n)
		g2 := ChungLu(n, avgDeg, exponent, rng.New(seed))
		if g.M() != g2.M() {
			t.Fatalf("same seed, different edge counts: %d vs %d", g.M(), g2.M())
		}
	})
}

// FuzzGeometric cross-checks the grid-bucketed generator against the O(n²)
// brute force on arbitrary (n, radius, seed): the edge set must be exactly
// the pairs within the radius, for any bucket-grid shape the radius induces.
func FuzzGeometric(f *testing.F) {
	f.Add(uint8(50), uint16(800), uint64(1))
	f.Add(uint8(3), uint16(0), uint64(2))      // radius 0
	f.Add(uint8(80), uint16(65535), uint64(3)) // beyond sqrt2 -> complete
	f.Fuzz(func(t *testing.T, nRaw uint8, radiusRaw uint16, seed uint64) {
		n := int(nRaw)%120 + 1
		radius := 1.5 * float64(radiusRaw) / 65535
		g := Geometric(n, radius, rng.New(seed))
		checkSimpleSorted(t, g, n)
		src := rng.New(seed)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = src.Float64()
			ys[i] = src.Float64()
		}
		var want int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx, dy := xs[i]-xs[j], ys[i]-ys[j]
				in := dx*dx+dy*dy <= radius*radius
				if in {
					want++
				}
				if g.HasEdge(NodeID(i), NodeID(j)) != in {
					t.Fatalf("n=%d r=%v: edge (%d,%d) = %v, want %v",
						n, radius, i, j, !in, in)
				}
			}
		}
		if g.M() != want {
			t.Fatalf("n=%d r=%v: m = %d, want %d", n, radius, g.M(), want)
		}
	})
}

// FuzzSBM throws arbitrary block counts and (possibly out-of-range)
// probabilities at the block-model generator: edges must stay inside the
// vertex range, respect simplicity/sortedness, and the degenerate
// probability corners must produce exactly the clique/multipartite edges.
func FuzzSBM(f *testing.F) {
	f.Add(uint8(40), uint8(4), uint16(600), uint16(30), uint64(1))
	f.Add(uint8(5), uint8(99), uint16(1000), uint16(1000), uint64(2)) // k > n, p=1
	f.Add(uint8(30), uint8(1), uint16(0), uint16(500), uint64(3))     // single block
	f.Fuzz(func(t *testing.T, nRaw, kRaw uint8, pInRaw, pOutRaw uint16, seed uint64) {
		n := int(nRaw)%200 + 1
		k := int(kRaw)%(n+2) + 1
		pIn := float64(pInRaw) / 1000 // may exceed 1: clamping is part of the contract
		pOut := float64(pOutRaw) / 1000
		g := SBM(n, k, pIn, pOut, rng.New(seed))
		checkSimpleSorted(t, g, n)
		if pIn >= 1 && pOut >= 1 {
			if n*(n-1)/2 != g.M() {
				t.Fatalf("p=1 everywhere: m = %d, want complete %d", g.M(), n*(n-1)/2)
			}
		}
		if pIn == 0 && pOut == 0 && g.M() != 0 {
			t.Fatalf("p=0 everywhere: m = %d, want 0", g.M())
		}
		g2 := SBM(n, k, pIn, pOut, rng.New(seed))
		if g.M() != g2.M() {
			t.Fatalf("same seed, different edge counts: %d vs %d", g.M(), g2.M())
		}
	})
}
