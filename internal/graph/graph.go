// Package graph provides the static undirected graphs on which the
// distributed Hamiltonian-cycle algorithms run: construction, random-graph
// generators (G(n,p), G(n,M), random regular, and deterministic families),
// and the structural queries the algorithms and their analyses need (BFS,
// connectivity, diameter, degree statistics, induced subgraphs).
//
// Graphs are immutable after Build and are stored in compressed-sparse-row
// (CSR) form: one flat neighbor arena of 2m NodeIDs plus n+1 int32 offsets.
// Row i of the arena (arena[off[i]:off[i+1]]) is the strictly sorted neighbor
// list of vertex i, so Neighbors is a slice view, HasEdge is a binary search,
// and the whole graph costs 8m + 4(n+1) bytes regardless of how it was
// built. The layout caps the half-edge count 2m at 2^31-1 (about a billion
// edges), far beyond what fits in memory for the sizes this repository runs.
//
// Two construction paths exist. Builder keeps a hash set of edges and
// supports incremental duplicate detection (HasEdge before Build), which the
// random-regular generator and edge-list decoding need. BuilderCSR is the
// streaming path: it appends edges to a flat list and sorts/deduplicates once
// at Build, never allocating per-edge map entries — this is what the G(n,p)
// and G(n,M) generators use, and what makes graphs with 10^8+ edges
// constructible. All algorithm state lives in the algorithm packages, never
// in the graph.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a vertex. IDs are dense in [0, N).
type NodeID int32

// Edge is an undirected edge between two vertices. Canonical form has U < V.
type Edge struct {
	U, V NodeID
}

// Canonical returns the edge with endpoints ordered U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an immutable undirected simple graph with vertices [0, n), stored
// as a CSR adjacency structure.
type Graph struct {
	n int
	m int
	// off[v]..off[v+1] delimit v's row in arena; len(off) == n+1.
	off []int32
	// arena holds all neighbor lists back to back; len(arena) == 2m and each
	// row is strictly increasing.
	arena []NodeID
}

// newCSR builds a Graph from canonical (U < V) edges that are sorted by
// (U, V) and distinct. Under that precondition every row comes out sorted
// without a per-row sort: row x first receives its smaller neighbors (as the
// V side of edges with V == x, whose U ascend), then its larger neighbors (as
// the U side of edges with U == x, whose V ascend).
func newCSR(n int, edges []Edge) *Graph {
	guardHalfEdges(2 * len(edges))
	off := make([]int32, n+1)
	for _, e := range edges {
		off[e.U+1]++
		off[e.V+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	arena := make([]NodeID, 2*len(edges))
	cur := make([]int32, n)
	copy(cur, off[:n])
	for _, e := range edges {
		arena[cur[e.U]] = e.V
		cur[e.U]++
		arena[cur[e.V]] = e.U
		cur[e.V]++
	}
	return &Graph{n: n, m: len(edges), off: off, arena: arena}
}

// guardHalfEdges panics when a half-edge count would overflow the int32
// offset arrays (2m must stay below 2^31).
func guardHalfEdges(half int) {
	if half > (1<<31)-1 {
		panic(fmt.Sprintf("graph: %d half-edges exceed the int32 CSR offset range", half))
	}
}

// sortDedupEdges canonically sorts the edge list in place and removes
// duplicates, returning the shortened slice.
func sortDedupEdges(edges []Edge) []Edge {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// Builder accumulates edges with online duplicate detection and produces an
// immutable Graph. Use BuilderCSR when duplicates are impossible or may be
// resolved at Build time: it avoids the per-edge hash-set cost.
type Builder struct {
	n     int
	edges map[Edge]struct{}
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[Edge]struct{})}
}

// AddEdge records the undirected edge (u, v). Self-loops and duplicates are
// ignored, keeping the graph simple. It returns true if the edge was new.
func (b *Builder) AddEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return false
	}
	e := Edge{U: u, V: v}.Canonical()
	if _, dup := b.edges[e]; dup {
		return false
	}
	b.edges[e] = struct{}{}
	return true
}

// HasEdge reports whether (u, v) has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	_, ok := b.edges[Edge{U: u, V: v}.Canonical()]
	return ok
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable Graph. The Builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	edges := make([]Edge, 0, len(b.edges))
	for e := range b.edges {
		edges = append(edges, e)
	}
	return newCSR(b.n, sortDedupEdges(edges))
}

// BuilderCSR is the streaming construction path: edges append to a flat list
// (no per-edge hash-set entries) and are sorted and deduplicated once at
// Build. Peak memory is 8 bytes per added edge plus the final CSR arrays,
// which is what makes 10^6-vertex random graphs constructible.
type BuilderCSR struct {
	n     int
	edges []Edge
}

// NewBuilderCSR returns a streaming builder for a graph on n vertices,
// preallocating room for capacityHint edges (0 is fine).
func NewBuilderCSR(n, capacityHint int) *BuilderCSR {
	if capacityHint < 0 {
		capacityHint = 0
	}
	return &BuilderCSR{n: n, edges: make([]Edge, 0, capacityHint)}
}

// Add records the undirected edge (u, v). Self-loops and out-of-range
// endpoints are rejected (returning false); duplicates are accepted here and
// removed at Build.
func (b *BuilderCSR) Add(u, v NodeID) bool {
	if u == v || int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return false
	}
	b.edges = append(b.edges, Edge{U: u, V: v}.Canonical())
	return true
}

// NumAdded returns the number of accepted Add calls (duplicates included).
func (b *BuilderCSR) NumAdded() int { return len(b.edges) }

// Build sorts, deduplicates, and produces the immutable Graph. The builder's
// edge storage is consumed; the builder must not be reused.
func (b *BuilderCSR) Build() *Graph {
	g := newCSR(b.n, sortDedupEdges(b.edges))
	b.edges = nil
	return g
}

// FromEdges constructs a Graph on n vertices from an edge list. Self-loops,
// out-of-range endpoints, and duplicates are dropped.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilderCSR(n, len(edges))
	for _, e := range edges {
		b.Add(e.U, e.V)
	}
	return b.Build()
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v NodeID) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is a
// view into the graph's arena and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.arena[g.off[v]:g.off[v+1]] }

// HasEdge reports whether (u, v) is an edge, by binary search over u's row.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v || int(u) >= g.n || int(v) >= g.n || u < 0 || v < 0 {
		return false
	}
	list := g.arena[g.off[u]:g.off[u+1]]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	return i < len(list) && list[i] == v
}

// Edges returns all edges in canonical (U < V) order, sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				out = append(out, Edge{U: NodeID(u), V: v})
			}
		}
	}
	return out
}

// MinDegree returns the minimum degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(NodeID(v)); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the maximum degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean degree 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.m)
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// along with the mapping from new (dense) ids to original ids. The i-th
// entry of the returned slice is the original id of new vertex i. Vertices
// are relabeled in increasing original-id order.
func (g *Graph) InducedSubgraph(vertices []NodeID) (*Graph, []NodeID) {
	orig := make([]NodeID, len(vertices))
	copy(orig, vertices)
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	orig = dedupe(orig)

	// Membership lookup: a dense table when the class is a sizable fraction
	// of the graph (partition classes), a map for small ad-hoc sets.
	var lookup func(NodeID) (NodeID, bool)
	if 64*len(orig) >= g.n {
		dense := make([]int32, g.n)
		for i := range dense {
			dense[i] = -1
		}
		for i, v := range orig {
			dense[v] = int32(i)
		}
		lookup = func(v NodeID) (NodeID, bool) {
			i := dense[v]
			return NodeID(i), i >= 0
		}
	} else {
		toNew := make(map[NodeID]NodeID, len(orig))
		for i, v := range orig {
			toNew[v] = NodeID(i)
		}
		lookup = func(v NodeID) (NodeID, bool) {
			i, ok := toNew[v]
			return i, ok
		}
	}

	// Because orig is ascending and neighbor rows are sorted, edges are
	// generated in sorted canonical order and feed newCSR directly.
	var edges []Edge
	for i, v := range orig {
		for _, w := range g.Neighbors(v) {
			if nw, ok := lookup(w); ok && NodeID(i) < nw {
				edges = append(edges, Edge{U: NodeID(i), V: nw})
			}
		}
	}
	return newCSR(len(orig), edges), orig
}

func dedupe(s []NodeID) []NodeID {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
