// Package graph provides the static undirected graphs on which the
// distributed Hamiltonian-cycle algorithms run: construction, random-graph
// generators (G(n,p), G(n,M), random regular, and deterministic families),
// and the structural queries the algorithms and their analyses need (BFS,
// connectivity, diameter, degree statistics, induced subgraphs).
//
// Graphs are immutable after Build; all algorithm state lives in the
// algorithm packages, never in the graph.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a vertex. IDs are dense in [0, N).
type NodeID int32

// Edge is an undirected edge between two vertices. Canonical form has U < V.
type Edge struct {
	U, V NodeID
}

// Canonical returns the edge with endpoints ordered U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an immutable undirected simple graph with vertices [0, n).
type Graph struct {
	n   int
	m   int
	adj [][]NodeID // sorted neighbor lists
}

// Builder accumulates edges and produces an immutable Graph.
type Builder struct {
	n     int
	edges map[Edge]struct{}
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[Edge]struct{})}
}

// AddEdge records the undirected edge (u, v). Self-loops and duplicates are
// ignored, keeping the graph simple. It returns true if the edge was new.
func (b *Builder) AddEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return false
	}
	e := Edge{U: u, V: v}.Canonical()
	if _, dup := b.edges[e]; dup {
		return false
	}
	b.edges[e] = struct{}{}
	return true
}

// HasEdge reports whether (u, v) has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	_, ok := b.edges[Edge{U: u, V: v}.Canonical()]
	return ok
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable Graph. The Builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	degs := make([]int, b.n)
	for e := range b.edges {
		degs[e.U]++
		degs[e.V]++
	}
	adj := make([][]NodeID, b.n)
	for i, d := range degs {
		adj[i] = make([]NodeID, 0, d)
	}
	for e := range b.edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	for i := range adj {
		sort.Slice(adj[i], func(a, c int) bool { return adj[i][a] < adj[i][c] })
	}
	return &Graph{n: b.n, m: len(b.edges), adj: adj}
}

// FromEdges constructs a Graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.adj[v] }

// HasEdge reports whether (u, v) is an edge, by binary search.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v || int(u) >= g.n || int(v) >= g.n || u < 0 || v < 0 {
		return false
	}
	list := g.adj[u]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	return i < len(list) && list[i] == v
}

// Edges returns all edges in canonical (U < V) order, sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if NodeID(u) < v {
				out = append(out, Edge{U: NodeID(u), V: v})
			}
		}
	}
	return out
}

// MinDegree returns the minimum degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, a := range g.adj[1:] {
		if len(a) < min {
			min = len(a)
		}
	}
	return min
}

// MaxDegree returns the maximum degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// AvgDegree returns the mean degree 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.m)
}

// InducedSubgraph returns the subgraph induced by the given vertex set,
// along with the mapping from new (dense) ids to original ids. The i-th
// entry of the returned slice is the original id of new vertex i. Vertices
// are relabeled in increasing original-id order.
func (g *Graph) InducedSubgraph(vertices []NodeID) (*Graph, []NodeID) {
	orig := make([]NodeID, len(vertices))
	copy(orig, vertices)
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	// Deduplicate.
	orig = dedupe(orig)
	toNew := make(map[NodeID]NodeID, len(orig))
	for i, v := range orig {
		toNew[v] = NodeID(i)
	}
	b := NewBuilder(len(orig))
	for i, v := range orig {
		for _, w := range g.adj[v] {
			if nw, ok := toNew[w]; ok && NodeID(i) < nw {
				b.AddEdge(NodeID(i), nw)
			}
		}
	}
	return b.Build(), orig
}

func dedupe(s []NodeID) []NodeID {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
