// Package graph provides the static undirected graphs on which the
// distributed Hamiltonian-cycle algorithms run: construction, random-graph
// generators (G(n,p), G(n,M), random regular, and deterministic families),
// and the structural queries the algorithms and their analyses need (BFS,
// connectivity, diameter, degree statistics, induced subgraphs).
//
// Graphs are immutable after Build and are stored in compressed-sparse-row
// (CSR) form: one flat neighbor arena of 2m NodeIDs plus n+1 int32 offsets.
// Row i of the arena (arena[off[i]:off[i+1]]) is the strictly sorted neighbor
// list of vertex i, so Neighbors is a slice view, HasEdge is a binary search,
// and the whole graph costs 8m + 4(n+1) bytes regardless of how it was
// built. The layout caps the half-edge count 2m at 2^31-1 (about a billion
// edges), far beyond what fits in memory for the sizes this repository runs.
//
// Two construction paths exist. Builder keeps a hash set of edges and
// supports incremental duplicate detection (HasEdge before Build), which the
// random-regular generator and edge-list decoding need. BuilderCSR is the
// streaming path: it appends edges to a flat list and sorts/deduplicates once
// at Build, never allocating per-edge map entries — this is what the G(n,p)
// and G(n,M) generators use, and what makes graphs with 10^8+ edges
// constructible. All algorithm state lives in the algorithm packages, never
// in the graph.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a vertex. IDs are dense in [0, N).
type NodeID int32

// Edge is an undirected edge between two vertices. Canonical form has U < V.
type Edge struct {
	U, V NodeID
}

// Canonical returns the edge with endpoints ordered U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is an immutable undirected simple graph with vertices [0, n), stored
// as a CSR adjacency structure.
type Graph struct {
	n int
	m int
	// off[v]..off[v+1] delimit v's row in arena; len(off) == n+1.
	off []int32
	// arena holds all neighbor lists back to back; len(arena) == 2m and each
	// row is strictly increasing.
	arena []NodeID
}

// newCSR builds a Graph from canonical (U < V) edges that are sorted by
// (U, V) and distinct. Under that precondition every row comes out sorted
// without a per-row sort: row x first receives its smaller neighbors (as the
// V side of edges with V == x, whose U ascend), then its larger neighbors (as
// the U side of edges with U == x, whose V ascend).
//
// This is the reference construction: the streaming paths (csrFromPackedPairs
// and the generator fills in generate.go) must produce byte-identical arrays,
// and the differential tests pin them against this function.
func newCSR(n int, edges []Edge) *Graph {
	guardHalfEdges(2 * int64(len(edges)))
	off := make([]int32, n+1)
	for _, e := range edges {
		off[e.U+1]++
		off[e.V+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	arena := make([]NodeID, 2*len(edges))
	cur := make([]int32, n)
	copy(cur, off[:n])
	for _, e := range edges {
		arena[cur[e.U]] = e.V
		cur[e.U]++
		arena[cur[e.V]] = e.U
		cur[e.V]++
	}
	return &Graph{n: n, m: len(edges), off: off, arena: arena}
}

// guardHalfEdges panics when a half-edge count would overflow the int32
// offset arrays (2m must stay below 2^31). It takes int64 so callers can pass
// pair counts that themselves exceed the int range on 32-bit platforms.
func guardHalfEdges(half int64) {
	if half > (1<<31)-1 {
		panic(fmt.Sprintf("graph: %d half-edges exceed the int32 CSR offset range", half))
	}
}

// sortDedupEdges canonically sorts the edge list in place and removes
// duplicates, returning the shortened slice.
func sortDedupEdges(edges []Edge) []Edge {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// Builder accumulates edges with online duplicate detection and produces an
// immutable Graph. Use BuilderCSR when duplicates are impossible or may be
// resolved at Build time: it avoids the per-edge hash-set cost.
type Builder struct {
	n     int
	edges map[Edge]struct{}
}

// NewBuilder returns a Builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[Edge]struct{})}
}

// AddEdge records the undirected edge (u, v). Self-loops and duplicates are
// ignored, keeping the graph simple. It returns true if the edge was new.
func (b *Builder) AddEdge(u, v NodeID) bool {
	if u == v {
		return false
	}
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return false
	}
	e := Edge{U: u, V: v}.Canonical()
	if _, dup := b.edges[e]; dup {
		return false
	}
	b.edges[e] = struct{}{}
	return true
}

// HasEdge reports whether (u, v) has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	_, ok := b.edges[Edge{U: u, V: v}.Canonical()]
	return ok
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable Graph. The Builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	pairs := make([]uint64, 0, len(b.edges))
	for e := range b.edges {
		pairs = append(pairs, packPair(e.U, e.V))
	}
	return csrFromPackedPairs(b.n, sortDedupPacked(pairs))
}

// BuilderCSR is the streaming construction path: edges append as packed
// 8-byte pair keys (no per-edge hash-set entries, half the footprint of an
// []Edge) and are sorted and deduplicated once at Build. Peak memory is 8
// bytes per added edge plus the final CSR arrays, which is what makes
// 10^6-vertex random graphs constructible.
type BuilderCSR struct {
	n     int
	pairs []uint64
}

// NewBuilderCSR returns a streaming builder for a graph on n vertices,
// preallocating room for capacityHint edges (0 is fine). Hints are clamped to
// the largest edge count the CSR layout can represent, so generators may pass
// unvalidated density estimates without risking a wild allocation.
func NewBuilderCSR(n, capacityHint int) *BuilderCSR {
	if capacityHint < 0 {
		capacityHint = 0
	}
	limit := int64((1<<31 - 1) / 2)
	if max := MaxEdges(n); max < limit {
		limit = max
	}
	if int64(capacityHint) > limit {
		capacityHint = int(limit)
	}
	return &BuilderCSR{n: n, pairs: make([]uint64, 0, capacityHint)}
}

// Add records the undirected edge (u, v). Self-loops and out-of-range
// endpoints are rejected (returning false); duplicates are accepted here and
// removed at Build.
func (b *BuilderCSR) Add(u, v NodeID) bool {
	if u == v || int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return false
	}
	b.pairs = append(b.pairs, packPair(u, v))
	return true
}

// NumAdded returns the number of accepted Add calls (duplicates included).
func (b *BuilderCSR) NumAdded() int { return len(b.pairs) }

// Build sorts, deduplicates, and produces the immutable Graph. The builder's
// edge storage is consumed; the builder must not be reused.
func (b *BuilderCSR) Build() *Graph {
	g := csrFromPackedPairs(b.n, sortDedupPacked(b.pairs))
	b.pairs = nil
	return g
}

// FromEdges constructs a Graph on n vertices from an edge list. Self-loops,
// out-of-range endpoints, and duplicates are dropped.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilderCSR(n, len(edges))
	for _, e := range edges {
		b.Add(e.U, e.V)
	}
	return b.Build()
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v NodeID) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is a
// view into the graph's arena and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.arena[g.off[v]:g.off[v+1]] }

// HasEdge reports whether (u, v) is an edge, by binary search over u's row.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u == v || int(u) >= g.n || int(v) >= g.n || u < 0 || v < 0 {
		return false
	}
	list := g.arena[g.off[u]:g.off[u+1]]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= v })
	return i < len(list) && list[i] == v
}

// Edges returns all edges in canonical (U < V) order, sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				out = append(out, Edge{U: NodeID(u), V: v})
			}
		}
	}
	return out
}

// MinDegree returns the minimum degree, or 0 for an empty graph.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < g.n; v++ {
		if d := g.Degree(NodeID(v)); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the maximum degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean degree 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.m)
}

// MemBytes returns the resident size of the CSR arrays in bytes
// (8m for the arena plus 4(n+1) for the offsets). Benchmarks report this as
// the construction-memory denominator.
func (g *Graph) MemBytes() int64 {
	return int64(len(g.arena))*4 + int64(len(g.off))*4
}

// Adjacency exposes the raw CSR arrays — offsets and the neighbor arena — as
// read-only views, for engines that mirror per-edge state in a flat arena of
// their own (e.g. the rotation machine's unused-edge tracking). Neither slice
// may be modified.
func (g *Graph) Adjacency() (off []int32, arena []NodeID) { return g.off, g.arena }

// InducedSubgraph returns the subgraph induced by the given vertex set,
// along with the mapping from new (dense) ids to original ids. The i-th
// entry of the returned slice is the original id of new vertex i. Vertices
// are relabeled in increasing original-id order.
//
// The subgraph's rows are written directly: because orig is ascending and
// the parent's rows are sorted, relabeled neighbors arrive in row order, so
// two passes (count, fill) build the CSR arrays with purely sequential
// writes — no intermediate edge list, no growth reallocation. This is the
// per-partition hot path of the sharded step engine.
func (g *Graph) InducedSubgraph(vertices []NodeID) (*Graph, []NodeID) {
	orig := make([]NodeID, len(vertices))
	copy(orig, vertices)
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	orig = dedupe(orig)

	sub := len(orig)
	off := make([]int32, sub+1)

	// Membership lookup: a dense table when the class is a sizable fraction
	// of the graph (partition classes), a map for small ad-hoc sets. The
	// dense branch keeps the table access inline — no closure in the per-edge
	// loops.
	if 64*sub >= g.n {
		dense := make([]int32, g.n)
		for i := range dense {
			dense[i] = -1
		}
		for i, v := range orig {
			dense[v] = int32(i)
		}
		for i, v := range orig {
			d := int32(0)
			for _, w := range g.Neighbors(v) {
				if dense[w] >= 0 {
					d++
				}
			}
			off[i+1] = d
		}
		for i := 0; i < sub; i++ {
			off[i+1] += off[i]
		}
		arena := make([]NodeID, off[sub])
		pos := 0
		for _, v := range orig {
			for _, w := range g.Neighbors(v) {
				if j := dense[w]; j >= 0 {
					arena[pos] = NodeID(j)
					pos++
				}
			}
		}
		return &Graph{n: sub, m: int(off[sub]) / 2, off: off, arena: arena}, orig
	}

	toNew := make(map[NodeID]NodeID, sub)
	for i, v := range orig {
		toNew[v] = NodeID(i)
	}
	for i, v := range orig {
		d := int32(0)
		for _, w := range g.Neighbors(v) {
			if _, ok := toNew[w]; ok {
				d++
			}
		}
		off[i+1] = d
	}
	for i := 0; i < sub; i++ {
		off[i+1] += off[i]
	}
	arena := make([]NodeID, off[sub])
	pos := 0
	for _, v := range orig {
		for _, w := range g.Neighbors(v) {
			if j, ok := toNew[w]; ok {
				arena[pos] = j
				pos++
			}
		}
	}
	return &Graph{n: sub, m: int(off[sub]) / 2, off: off, arena: arena}, orig
}

func dedupe(s []NodeID) []NodeID {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
