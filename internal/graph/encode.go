package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in a simple text format:
//
//	n m
//	u v     (one line per edge, canonical order)
//
// The format round-trips through ReadEdgeList.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.n, g.m); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty edge-list input")
	}
	var n, m int
	if _, err := fmt.Sscanf(sc.Text(), "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", sc.Text(), err)
	}
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("graph: expected %d edges, got %d", m, i)
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: bad edge line %q", sc.Text())
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q: %w", fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q: %w", fields[1], err)
		}
		if !b.AddEdge(NodeID(u), NodeID(v)) {
			return nil, fmt.Errorf("graph: invalid or duplicate edge (%d,%d)", u, v)
		}
	}
	return b.Build(), sc.Err()
}

// WriteDOT writes the graph in GraphViz DOT format, optionally highlighting a
// set of edges (e.g. a Hamiltonian cycle) in bold red.
func (g *Graph) WriteDOT(w io.Writer, highlight map[Edge]bool) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "graph G {"); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		attr := ""
		if highlight[e.Canonical()] {
			attr = " [color=red, penwidth=2]"
		}
		if _, err := fmt.Fprintf(bw, "  %d -- %d%s;\n", e.U, e.V, attr); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
