package graph

import (
	"errors"
	"fmt"
	"math"

	"dhc/internal/rng"
)

// ErrGeneration is returned when a randomized generator exhausts its retry
// budget (only possible for the random-regular configuration model).
var ErrGeneration = errors.New("graph: generation failed")

// iterateGNP enumerates the G(n, p) edge set of src by Batagelj–Brandes
// geometric skipping: pairs (v, w) with w < v are visited in row-major order,
// jumping over absent edges, so the cost is O(n + m) instead of O(n^2). The
// visit order is what lets GNP fill CSR rows pre-sorted: vertex x first sees
// all smaller neighbors (while v == x, w ascending) and then all larger ones
// (as w for ascending v > x).
func iterateGNP(n int, p float64, src *rng.Source, visit func(v, w NodeID)) {
	v, w := 1, -1
	for v < n {
		w += 1 + src.Geometric(p)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			visit(NodeID(v), NodeID(w))
		}
	}
}

// GNP samples an Erdős–Rényi G(n, p) random graph: every unordered pair is an
// edge independently with probability p. It builds the CSR arrays directly in
// two generator passes over the same RNG state (count degrees, rewind, fill
// rows), so peak memory is the final graph plus O(n) staging — no edge list
// and no hash set ever exist. The fill keeps the geometric-skip loop inline
// (no per-edge callback) and routes the random-access half of the writes
// through the chunked counting-sort scatter.
func GNP(n int, p float64, src *rng.Source) *Graph {
	return gnpTuned(n, p, src, scatterTuning{})
}

func gnpTuned(n int, p float64, src *rng.Source, tune scatterTuning) *Graph {
	if p <= 0 || n < 2 {
		return newCSR(max(n, 0), nil)
	}
	if p >= 1 {
		return Complete(n)
	}
	saved := *src // snapshot for the second, identical pass
	off := make([]int32, n+1)
	fwd := make([]int32, n) // per-row count of smaller neighbors (v-side visits)
	var m int
	{
		v, w := 1, -1
		for v < n {
			w += 1 + src.Geometric(p)
			for w >= v && v < n {
				w -= v
				v++
			}
			if v < n {
				off[v+1]++
				off[w+1]++
				fwd[v]++
				m++
			}
		}
	}
	guardHalfEdges(2 * int64(m))
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	arena := make([]NodeID, 2*m)
	// Row x's smaller neighbors stream in while v == x (sequential writes at
	// curF); its larger neighbors arrive as the w side of later rows (random
	// writes at curB, batched by the scatter). Same final layout as the old
	// single-cursor fill: [smaller ascending][larger ascending].
	curF := fwd // reuse: consumed left to right as the cursor initializer
	curB := make([]int32, n)
	for x := 0; x < n; x++ {
		f := off[x]
		curB[x] = f + fwd[x]
		curF[x] = f
	}
	sc := newDeferredScatter(arena, curB, n, tune)
	*src = saved
	{
		v, w := 1, -1
		for v < n {
			w += 1 + src.Geometric(p)
			for w >= v && v < n {
				w -= v
				v++
			}
			if v < n {
				arena[curF[v]] = NodeID(w)
				curF[v]++
				sc.add(NodeID(w), NodeID(v))
			}
		}
	}
	sc.finish()
	return &Graph{n: n, m: m, off: off, arena: arena}
}

// samplePackedPairs draws uniformly random vertex pairs (rejecting
// self-loops) until exactly m distinct canonical pairs have been collected,
// deduplicating by sort between batches rather than with a hash set. The
// returned slice is sorted. The resulting edge set is uniform over m-subsets,
// like plain rejection sampling, and the RNG is consumed in exactly the order
// of the historical []Edge sampler.
func samplePackedPairs(n, m int, src *rng.Source) []uint64 {
	pairs := make([]uint64, 0, m)
	for {
		for need := m - len(pairs); need > 0; need-- {
			u := NodeID(src.Intn(n))
			v := NodeID(src.Intn(n))
			for u == v {
				u = NodeID(src.Intn(n))
				v = NodeID(src.Intn(n))
			}
			pairs = append(pairs, packPair(u, v))
		}
		pairs = sortDedupPacked(pairs)
		if len(pairs) == m {
			return pairs
		}
	}
}

// GNM samples a uniform graph with exactly m distinct edges among n vertices
// (the G(n, M) model). It panics if m exceeds the number of possible edges or
// the CSR half-edge range; use sweep/CLI-level validation (MaxEdges) to turn
// infeasible parameters into config errors before reaching this point.
func GNM(n, m int, src *rng.Source) *Graph {
	maxM := MaxEdges(n)
	if int64(m) > maxM {
		panic(fmt.Sprintf("graph: GNM m=%d exceeds max %d for n=%d", m, maxM, n))
	}
	if m <= 0 {
		return newCSR(n, nil)
	}
	guardHalfEdges(2 * int64(m))
	// Rejection sampling is fast while m << maxM; above half the density,
	// sample the complement instead.
	if int64(m) <= maxM/2 {
		return csrFromPackedPairs(n, samplePackedPairs(n, m, src))
	}
	// Dense regime: pick the maxM-m excluded edges as a graph, then stream
	// its complement row by row straight into the CSR arena.
	excl := int(maxM - int64(m))
	var exclG *Graph
	if excl > 0 {
		exclG = csrFromPackedPairs(n, samplePackedPairs(n, excl, src))
	} else {
		exclG = newCSR(n, nil)
	}
	return complement(exclG)
}

// RandomRegular samples a d-regular graph on n vertices using the
// Steger–Wormald pairing procedure: repeatedly pair two uniformly random
// remaining stubs, skipping pairs that would create a loop or multi-edge, and
// restart the whole construction only if no valid pair remains. For
// d = o(n^{1/3}) the output is asymptotically uniform and restarts are rare.
// Above half density (d > (n-1)/2), where the pairing jams almost surely, it
// samples the complement (n-1-d)-regular graph instead and complements it —
// complementation is a bijection on d-regular graphs, so uniformity carries
// over, and feasibility is unchanged (n·(n-1-d) has the parity of n·d).
// n*d must be even and d < n. The pairing needs online duplicate detection,
// so this generator keeps the hash-set Builder (n*d stays small).
func RandomRegular(n, d int, src *rng.Source) (*Graph, error) {
	if d >= n || d < 0 {
		return nil, fmt.Errorf("%w: degree %d invalid for n=%d", ErrGeneration, d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("%w: n*d must be even (n=%d, d=%d)", ErrGeneration, n, d)
	}
	if d > (n-1)/2 {
		gc, err := RandomRegular(n, n-1-d, src)
		if err != nil {
			return nil, err
		}
		return complement(gc), nil
	}
	const maxRestarts = 100
	for attempt := 0; attempt < maxRestarts; attempt++ {
		if g, ok := tryStegerWormald(n, d, src); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("%w: pairing exhausted %d restarts (n=%d, d=%d)",
		ErrGeneration, maxRestarts, n, d)
}

// complement returns the loop-free complement graph: (u, v) is an edge iff
// u != v and (u, v) is not an edge of g. Each row of the complement is the
// sorted sequence [0, n) minus the vertex itself minus g's (sorted) row, so
// one pointer walk per row streams every row directly into the CSR arena —
// all writes sequential, no edge list.
func complement(g *Graph) *Graph {
	n := g.N()
	guardHalfEdges(2 * (MaxEdges(n) - int64(g.M())))
	off := make([]int32, n+1)
	for x := 0; x < n; x++ {
		off[x+1] = off[x] + int32(n-1-g.Degree(NodeID(x)))
	}
	arena := make([]NodeID, off[n])
	pos := 0
	for x := 0; x < n; x++ {
		nb := g.Neighbors(NodeID(x))
		i := 0
		for y := 0; y < n; y++ {
			if y == x {
				continue
			}
			for i < len(nb) && int(nb[i]) < y {
				i++
			}
			if i < len(nb) && int(nb[i]) == y {
				continue
			}
			arena[pos] = NodeID(y)
			pos++
		}
	}
	return &Graph{n: n, m: int(off[n]) / 2, off: off, arena: arena}
}

func tryStegerWormald(n, d int, src *rng.Source) (*Graph, bool) {
	stubs := make([]NodeID, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, NodeID(v))
		}
	}
	b := NewBuilder(n)
	for len(stubs) > 0 {
		paired := false
		// A bounded number of re-draws per pair keeps the loop O(nd) in
		// expectation; if we cannot find a valid pair we scan exhaustively
		// before declaring the attempt stuck.
		for try := 0; try < 50; try++ {
			i := src.Intn(len(stubs))
			j := src.Intn(len(stubs))
			if i == j {
				continue
			}
			u, v := stubs[i], stubs[j]
			if u == v || b.HasEdge(u, v) {
				continue
			}
			b.AddEdge(u, v)
			removeStubPair(&stubs, i, j)
			paired = true
			break
		}
		if paired {
			continue
		}
		if i, j, ok := findValidPair(stubs, b); ok {
			b.AddEdge(stubs[i], stubs[j])
			removeStubPair(&stubs, i, j)
			continue
		}
		return nil, false // genuinely stuck; restart
	}
	return b.Build(), true
}

// removeStubPair deletes positions i and j (i != j) from the stub slice by
// swapping with the tail.
func removeStubPair(stubs *[]NodeID, i, j int) {
	s := *stubs
	if i < j {
		i, j = j, i
	}
	// Remove the larger index first so the smaller stays valid.
	s[i] = s[len(s)-1]
	s = s[:len(s)-1]
	s[j] = s[len(s)-1]
	s = s[:len(s)-1]
	*stubs = s
}

func findValidPair(stubs []NodeID, b *Builder) (int, int, bool) {
	for i := 0; i < len(stubs); i++ {
		for j := i + 1; j < len(stubs); j++ {
			if stubs[i] != stubs[j] && !b.HasEdge(stubs[i], stubs[j]) {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// Ring returns the n-cycle 0-1-...-(n-1)-0.
func Ring(n int) *Graph {
	b := NewBuilderCSR(n, n)
	for v := 0; v < n; v++ {
		b.Add(NodeID(v), NodeID((v+1)%n))
	}
	return b.Build()
}

// Path returns the n-vertex path 0-1-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilderCSR(n, n)
	for v := 0; v+1 < n; v++ {
		b.Add(NodeID(v), NodeID(v+1))
	}
	return b.Build()
}

// Complete returns the complete graph K_n, streaming each row (all vertices
// but the row's own) directly into the CSR arena.
func Complete(n int) *Graph {
	if n < 0 {
		n = 0
	}
	guardHalfEdges(2 * MaxEdges(n))
	off := make([]int32, n+1)
	for x := 0; x < n; x++ {
		off[x+1] = off[x] + int32(n-1)
	}
	arena := make([]NodeID, off[n])
	pos := 0
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if y != x {
				arena[pos] = NodeID(y)
				pos++
			}
		}
	}
	return &Graph{n: n, m: int(MaxEdges(n)), off: off, arena: arena}
}

// Grid returns the rows x cols grid graph (no Hamiltonian cycle when both
// dimensions are odd; used for negative tests).
func Grid(rows, cols int) *Graph {
	b := NewBuilderCSR(rows*cols, 2*rows*cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.Add(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.Add(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// HCThresholdP returns the paper's edge probability p = c ln(n) / n^delta for
// the G(n, p) model (Section II-B). delta = 1 is the connectivity threshold
// regime; delta = 1/2 is the DHC1 regime. The result is clamped to [0, 1].
func HCThresholdP(n int, c, delta float64) float64 {
	if n < 2 {
		return 0
	}
	p := c * math.Log(float64(n)) / math.Pow(float64(n), delta)
	if p > 1 {
		return 1
	}
	return p
}
