package graph

import (
	"errors"
	"fmt"
	"math"

	"dhc/internal/rng"
)

// ErrGeneration is returned when a randomized generator exhausts its retry
// budget (only possible for the random-regular configuration model).
var ErrGeneration = errors.New("graph: generation failed")

// GNP samples an Erdős–Rényi G(n, p) random graph: every unordered pair is an
// edge independently with probability p. Generation runs in expected
// O(n + m) time by geometric skipping over the implicit pair enumeration
// (Batagelj–Brandes), not O(n^2).
func GNP(n int, p float64, src *rng.Source) *Graph {
	b := NewBuilder(n)
	if p <= 0 || n < 2 {
		return b.Build()
	}
	if p >= 1 {
		return Complete(n)
	}
	// Enumerate pairs (v, w) with w < v in row-major order and skip ahead by
	// geometric gaps.
	v, w := 1, -1
	for v < n {
		w += 1 + src.Geometric(p)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(NodeID(v), NodeID(w))
		}
	}
	return b.Build()
}

// GNM samples a uniform graph with exactly m distinct edges among n vertices
// (the G(n, M) model). It panics if m exceeds the number of possible edges.
func GNM(n, m int, src *rng.Source) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: GNM m=%d exceeds max %d for n=%d", m, maxM, n))
	}
	b := NewBuilder(n)
	// Rejection sampling is fast while m << maxM; above half the density,
	// sample the complement instead.
	if m <= maxM/2 {
		for b.NumEdges() < m {
			u := NodeID(src.Intn(n))
			v := NodeID(src.Intn(n))
			b.AddEdge(u, v)
		}
		return b.Build()
	}
	// Dense regime: pick the maxM-m excluded edges, then add all others.
	excluded := NewBuilder(n)
	for excluded.NumEdges() < maxM-m {
		u := NodeID(src.Intn(n))
		v := NodeID(src.Intn(n))
		excluded.AddEdge(u, v)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !excluded.HasEdge(NodeID(u), NodeID(v)) {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.Build()
}

// RandomRegular samples a d-regular graph on n vertices using the
// Steger–Wormald pairing procedure: repeatedly pair two uniformly random
// remaining stubs, skipping pairs that would create a loop or multi-edge, and
// restart the whole construction only if no valid pair remains. For
// d = o(n^{1/3}) the output is asymptotically uniform and restarts are rare.
// n*d must be even and d < n.
func RandomRegular(n, d int, src *rng.Source) (*Graph, error) {
	if d >= n || d < 0 {
		return nil, fmt.Errorf("%w: degree %d invalid for n=%d", ErrGeneration, d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("%w: n*d must be even (n=%d, d=%d)", ErrGeneration, n, d)
	}
	const maxRestarts = 100
	for attempt := 0; attempt < maxRestarts; attempt++ {
		if g, ok := tryStegerWormald(n, d, src); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("%w: pairing exhausted %d restarts (n=%d, d=%d)",
		ErrGeneration, maxRestarts, n, d)
}

func tryStegerWormald(n, d int, src *rng.Source) (*Graph, bool) {
	stubs := make([]NodeID, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, NodeID(v))
		}
	}
	b := NewBuilder(n)
	for len(stubs) > 0 {
		paired := false
		// A bounded number of re-draws per pair keeps the loop O(nd) in
		// expectation; if we cannot find a valid pair we scan exhaustively
		// before declaring the attempt stuck.
		for try := 0; try < 50; try++ {
			i := src.Intn(len(stubs))
			j := src.Intn(len(stubs))
			if i == j {
				continue
			}
			u, v := stubs[i], stubs[j]
			if u == v || b.HasEdge(u, v) {
				continue
			}
			b.AddEdge(u, v)
			removeStubPair(&stubs, i, j)
			paired = true
			break
		}
		if paired {
			continue
		}
		if i, j, ok := findValidPair(stubs, b); ok {
			b.AddEdge(stubs[i], stubs[j])
			removeStubPair(&stubs, i, j)
			continue
		}
		return nil, false // genuinely stuck; restart
	}
	return b.Build(), true
}

// removeStubPair deletes positions i and j (i != j) from the stub slice by
// swapping with the tail.
func removeStubPair(stubs *[]NodeID, i, j int) {
	s := *stubs
	if i < j {
		i, j = j, i
	}
	// Remove the larger index first so the smaller stays valid.
	s[i] = s[len(s)-1]
	s = s[:len(s)-1]
	s[j] = s[len(s)-1]
	s = s[:len(s)-1]
	*stubs = s
}

func findValidPair(stubs []NodeID, b *Builder) (int, int, bool) {
	for i := 0; i < len(stubs); i++ {
		for j := i + 1; j < len(stubs); j++ {
			if stubs[i] != stubs[j] && !b.HasEdge(stubs[i], stubs[j]) {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// Ring returns the n-cycle 0-1-...-(n-1)-0.
func Ring(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(NodeID(v), NodeID((v+1)%n))
	}
	return b.Build()
}

// Path returns the n-vertex path 0-1-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(NodeID(v), NodeID(v+1))
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	return b.Build()
}

// Grid returns the rows x cols grid graph (no Hamiltonian cycle when both
// dimensions are odd; used for negative tests).
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// HCThresholdP returns the paper's edge probability p = c ln(n) / n^delta for
// the G(n, p) model (Section II-B). delta = 1 is the connectivity threshold
// regime; delta = 1/2 is the DHC1 regime. The result is clamped to [0, 1].
func HCThresholdP(n int, c, delta float64) float64 {
	if n < 2 {
		return 0
	}
	p := c * math.Log(float64(n)) / math.Pow(float64(n), delta)
	if p > 1 {
		return 1
	}
	return p
}
