package graph

import (
	"errors"
	"fmt"
	"math"

	"dhc/internal/rng"
)

// ErrGeneration is returned when a randomized generator exhausts its retry
// budget (only possible for the random-regular configuration model).
var ErrGeneration = errors.New("graph: generation failed")

// iterateGNP enumerates the G(n, p) edge set of src by Batagelj–Brandes
// geometric skipping: pairs (v, w) with w < v are visited in row-major order,
// jumping over absent edges, so the cost is O(n + m) instead of O(n^2). The
// visit order is what lets GNP fill CSR rows pre-sorted: vertex x first sees
// all smaller neighbors (while v == x, w ascending) and then all larger ones
// (as w for ascending v > x).
func iterateGNP(n int, p float64, src *rng.Source, visit func(v, w NodeID)) {
	v, w := 1, -1
	for v < n {
		w += 1 + src.Geometric(p)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			visit(NodeID(v), NodeID(w))
		}
	}
}

// GNP samples an Erdős–Rényi G(n, p) random graph: every unordered pair is an
// edge independently with probability p. It builds the CSR arrays directly in
// two generator passes over the same RNG state (count degrees, rewind, fill
// rows), so peak memory is the final graph plus O(n) — no edge list and no
// hash set ever exist.
func GNP(n int, p float64, src *rng.Source) *Graph {
	if p <= 0 || n < 2 {
		return newCSR(max(n, 0), nil)
	}
	if p >= 1 {
		return Complete(n)
	}
	saved := *src // snapshot for the second, identical pass
	off := make([]int32, n+1)
	var m int
	iterateGNP(n, p, src, func(v, w NodeID) {
		off[v+1]++
		off[w+1]++
		m++
	})
	guardHalfEdges(2 * m)
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	arena := make([]NodeID, 2*m)
	cur := make([]int32, n)
	copy(cur, off[:n])
	*src = saved
	iterateGNP(n, p, src, func(v, w NodeID) {
		arena[cur[v]] = w
		cur[v]++
		arena[cur[w]] = v
		cur[w]++
	})
	return &Graph{n: n, m: m, off: off, arena: arena}
}

// sampleDistinctEdges draws uniformly random vertex pairs (rejecting
// self-loops) until exactly m distinct canonical edges have been collected,
// deduplicating by sort between batches rather than with a hash set. The
// returned slice is sorted. The resulting edge set is uniform over m-subsets,
// like plain rejection sampling.
func sampleDistinctEdges(n, m int, src *rng.Source) []Edge {
	edges := make([]Edge, 0, m)
	for {
		for need := m - len(edges); need > 0; need-- {
			u := NodeID(src.Intn(n))
			v := NodeID(src.Intn(n))
			for u == v {
				u = NodeID(src.Intn(n))
				v = NodeID(src.Intn(n))
			}
			edges = append(edges, Edge{U: u, V: v}.Canonical())
		}
		edges = sortDedupEdges(edges)
		if len(edges) == m {
			return edges
		}
	}
}

// GNM samples a uniform graph with exactly m distinct edges among n vertices
// (the G(n, M) model). It panics if m exceeds the number of possible edges.
func GNM(n, m int, src *rng.Source) *Graph {
	maxM := n * (n - 1) / 2
	if m > maxM {
		panic(fmt.Sprintf("graph: GNM m=%d exceeds max %d for n=%d", m, maxM, n))
	}
	if m <= 0 {
		return newCSR(n, nil)
	}
	// Rejection sampling is fast while m << maxM; above half the density,
	// sample the complement instead.
	if m <= maxM/2 {
		return newCSR(n, sampleDistinctEdges(n, m, src))
	}
	// Dense regime: pick the maxM-m excluded edges, then stream the
	// complement (both lists are in sorted canonical order, so one pointer
	// walk suffices and rows again arrive pre-sorted).
	var excluded []Edge
	if maxM-m > 0 {
		excluded = sampleDistinctEdges(n, maxM-m, src)
	}
	edges := make([]Edge, 0, m)
	idx := 0
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			e := Edge{U: NodeID(u), V: NodeID(v)}
			if idx < len(excluded) && excluded[idx] == e {
				idx++
				continue
			}
			edges = append(edges, e)
		}
	}
	return newCSR(n, edges)
}

// RandomRegular samples a d-regular graph on n vertices using the
// Steger–Wormald pairing procedure: repeatedly pair two uniformly random
// remaining stubs, skipping pairs that would create a loop or multi-edge, and
// restart the whole construction only if no valid pair remains. For
// d = o(n^{1/3}) the output is asymptotically uniform and restarts are rare.
// Above half density (d > (n-1)/2), where the pairing jams almost surely, it
// samples the complement (n-1-d)-regular graph instead and complements it —
// complementation is a bijection on d-regular graphs, so uniformity carries
// over, and feasibility is unchanged (n·(n-1-d) has the parity of n·d).
// n*d must be even and d < n. The pairing needs online duplicate detection,
// so this generator keeps the hash-set Builder (n*d stays small).
func RandomRegular(n, d int, src *rng.Source) (*Graph, error) {
	if d >= n || d < 0 {
		return nil, fmt.Errorf("%w: degree %d invalid for n=%d", ErrGeneration, d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("%w: n*d must be even (n=%d, d=%d)", ErrGeneration, n, d)
	}
	if d > (n-1)/2 {
		gc, err := RandomRegular(n, n-1-d, src)
		if err != nil {
			return nil, err
		}
		return complement(gc), nil
	}
	const maxRestarts = 100
	for attempt := 0; attempt < maxRestarts; attempt++ {
		if g, ok := tryStegerWormald(n, d, src); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("%w: pairing exhausted %d restarts (n=%d, d=%d)",
		ErrGeneration, maxRestarts, n, d)
}

// complement returns the loop-free complement graph: (u, v) is an edge iff
// u != v and (u, v) is not an edge of g. Rows are sorted, so one pointer
// walk per row streams the complement's edge list in canonical order.
func complement(g *Graph) *Graph {
	n := g.N()
	edges := make([]Edge, 0, n*(n-1)/2-int(g.M()))
	for u := 0; u < n; u++ {
		nb := g.Neighbors(NodeID(u))
		i := 0
		for v := u + 1; v < n; v++ {
			for i < len(nb) && int(nb[i]) < v {
				i++
			}
			if i < len(nb) && int(nb[i]) == v {
				continue
			}
			edges = append(edges, Edge{U: NodeID(u), V: NodeID(v)})
		}
	}
	return newCSR(n, edges)
}

func tryStegerWormald(n, d int, src *rng.Source) (*Graph, bool) {
	stubs := make([]NodeID, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, NodeID(v))
		}
	}
	b := NewBuilder(n)
	for len(stubs) > 0 {
		paired := false
		// A bounded number of re-draws per pair keeps the loop O(nd) in
		// expectation; if we cannot find a valid pair we scan exhaustively
		// before declaring the attempt stuck.
		for try := 0; try < 50; try++ {
			i := src.Intn(len(stubs))
			j := src.Intn(len(stubs))
			if i == j {
				continue
			}
			u, v := stubs[i], stubs[j]
			if u == v || b.HasEdge(u, v) {
				continue
			}
			b.AddEdge(u, v)
			removeStubPair(&stubs, i, j)
			paired = true
			break
		}
		if paired {
			continue
		}
		if i, j, ok := findValidPair(stubs, b); ok {
			b.AddEdge(stubs[i], stubs[j])
			removeStubPair(&stubs, i, j)
			continue
		}
		return nil, false // genuinely stuck; restart
	}
	return b.Build(), true
}

// removeStubPair deletes positions i and j (i != j) from the stub slice by
// swapping with the tail.
func removeStubPair(stubs *[]NodeID, i, j int) {
	s := *stubs
	if i < j {
		i, j = j, i
	}
	// Remove the larger index first so the smaller stays valid.
	s[i] = s[len(s)-1]
	s = s[:len(s)-1]
	s[j] = s[len(s)-1]
	s = s[:len(s)-1]
	*stubs = s
}

func findValidPair(stubs []NodeID, b *Builder) (int, int, bool) {
	for i := 0; i < len(stubs); i++ {
		for j := i + 1; j < len(stubs); j++ {
			if stubs[i] != stubs[j] && !b.HasEdge(stubs[i], stubs[j]) {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

// Ring returns the n-cycle 0-1-...-(n-1)-0.
func Ring(n int) *Graph {
	b := NewBuilderCSR(n, n)
	for v := 0; v < n; v++ {
		b.Add(NodeID(v), NodeID((v+1)%n))
	}
	return b.Build()
}

// Path returns the n-vertex path 0-1-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilderCSR(n, n)
	for v := 0; v+1 < n; v++ {
		b.Add(NodeID(v), NodeID(v+1))
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{U: NodeID(u), V: NodeID(v)})
		}
	}
	return newCSR(n, edges)
}

// Grid returns the rows x cols grid graph (no Hamiltonian cycle when both
// dimensions are odd; used for negative tests).
func Grid(rows, cols int) *Graph {
	b := NewBuilderCSR(rows*cols, 2*rows*cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.Add(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.Add(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// HCThresholdP returns the paper's edge probability p = c ln(n) / n^delta for
// the G(n, p) model (Section II-B). delta = 1 is the connectivity threshold
// regime; delta = 1/2 is the DHC1 regime. The result is clamped to [0, 1].
func HCThresholdP(n int, c, delta float64) float64 {
	if n < 2 {
		return 0
	}
	p := c * math.Log(float64(n)) / math.Pow(float64(n), delta)
	if p > 1 {
		return 1
	}
	return p
}
