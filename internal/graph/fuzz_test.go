package graph

// Property and fuzz tests for the random-regular generator. The
// Steger–Wormald pairing is the one generator that can fail at runtime
// (restart exhaustion) and the one construction path still using the
// hash-set Builder, so its invariants — exact d-regularity, simplicity,
// determinism, infeasibility errors — get their own adversarial coverage.

import (
	"errors"
	"testing"

	"dhc/internal/rng"
)

// checkRegularInvariants asserts the full contract of a d-regular sample:
// every vertex has degree exactly d, the graph is simple (no self-loops —
// and no duplicate edges, which CSR rows being strictly sorted implies),
// and the edge count is n·d/2.
func checkRegularInvariants(t *testing.T, g *Graph, n, d int) {
	t.Helper()
	if g.N() != n {
		t.Fatalf("n = %d, want %d", g.N(), n)
	}
	if int(g.M()) != n*d/2 {
		t.Fatalf("m = %d, want n*d/2 = %d", g.M(), n*d/2)
	}
	for v := 0; v < n; v++ {
		if g.Degree(NodeID(v)) != d {
			t.Fatalf("vertex %d degree %d, want %d", v, g.Degree(NodeID(v)), d)
		}
		nb := g.Neighbors(NodeID(v))
		for i, w := range nb {
			if w == NodeID(v) {
				t.Fatalf("self-loop at vertex %d", v)
			}
			if i > 0 && nb[i-1] >= w {
				t.Fatalf("row %d not strictly sorted (duplicate edge?): %v", v, nb)
			}
		}
	}
}

func TestRandomRegularSimpleGraphInvariants(t *testing.T) {
	for _, tc := range []struct{ n, d int }{
		{4, 3}, {10, 3}, {31, 4}, {64, 7}, {100, 2}, {20, 0}, {200, 9},
		// Above half density the generator switches to the complement path
		// (the direct pairing jams a.s. there — found by FuzzRandomRegular).
		{18, 15}, {12, 11}, {50, 40},
	} {
		g, err := RandomRegular(tc.n, tc.d, rng.New(uint64(tc.n*100+tc.d)))
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		checkRegularInvariants(t, g, tc.n, tc.d)
	}
}

func TestRandomRegularDeterminism(t *testing.T) {
	g1, err1 := RandomRegular(60, 5, rng.New(42))
	g2, err2 := RandomRegular(60, 5, rng.New(42))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
	g3, err := RandomRegular(60, 5, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	same := g3.M() == g1.M()
	if same {
		for i, e := range g3.Edges() {
			if e != e1[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRandomRegularInfeasible(t *testing.T) {
	cases := []struct {
		name string
		n, d int
	}{
		{"odd n*d", 5, 3},
		{"odd n*d large", 101, 7},
		{"d == n", 4, 4},
		{"d > n", 3, 7},
		{"negative d", 10, -1},
	}
	for _, tc := range cases {
		if _, err := RandomRegular(tc.n, tc.d, rng.New(1)); !errors.Is(err, ErrGeneration) {
			t.Errorf("%s (n=%d, d=%d): err = %v, want ErrGeneration", tc.name, tc.n, tc.d, err)
		}
	}
}

// FuzzRandomRegular throws arbitrary (n, d, seed) triples at the generator:
// infeasible configurations must error with ErrGeneration, feasible ones
// must produce a simple, exactly d-regular graph — and nothing may panic.
func FuzzRandomRegular(f *testing.F) {
	f.Add(uint8(10), uint8(3), uint64(1))
	f.Add(uint8(5), uint8(3), uint64(2))   // odd n·d
	f.Add(uint8(4), uint8(4), uint64(3))   // d == n
	f.Add(uint8(3), uint8(0), uint64(4))   // edgeless
	f.Add(uint8(12), uint8(11), uint64(5)) // complete graph
	f.Fuzz(func(t *testing.T, nRaw, dRaw uint8, seed uint64) {
		n := int(nRaw)%48 + 3
		d := int(dRaw) % 16
		g, err := RandomRegular(n, d, rng.New(seed))
		if d >= n || n*d%2 != 0 {
			if !errors.Is(err, ErrGeneration) {
				t.Fatalf("infeasible (n=%d, d=%d) accepted: %v", n, d, err)
			}
			return
		}
		if err != nil {
			// Restart exhaustion is allowed by contract, but must be the
			// tagged sentinel; at d < 16, n <= 50 it should be essentially
			// impossible, so flag it for inspection.
			t.Fatalf("feasible (n=%d, d=%d) failed: %v", n, d, err)
		}
		checkRegularInvariants(t, g, n, d)
	})
}
