package graph

import (
	"bytes"
	"strings"
	"testing"

	"dhc/internal/rng"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := GNP(80, 0.1, rng.New(9))
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)", g.N(), g.M(), g2.N(), g2.M())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "x y\n",
		"missing edges":  "3 2\n0 1\n",
		"bad edge line":  "3 1\n0\n",
		"non-numeric":    "3 1\na b\n",
		"self loop":      "3 1\n1 1\n",
		"duplicate edge": "3 2\n0 1\n1 0\n",
		"out of range":   "3 1\n0 7\n",
	}
	for name, input := range cases {
		if _, err := ReadEdgeList(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := Ring(4)
	hl := map[Edge]bool{{U: 0, V: 1}: true}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, hl); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph G {") || !strings.Contains(out, "0 -- 1 [color=red") {
		t.Fatalf("unexpected DOT output:\n%s", out)
	}
	if !strings.Contains(out, "1 -- 2;") {
		t.Fatalf("plain edge missing:\n%s", out)
	}
}
