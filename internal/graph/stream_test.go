package graph

// Differential tests pinning the streaming CSR constructions — the fused
// G(n,p) fill, the packed-pair builder tail, the G(n,M) sampler and its dense
// complement — byte-identical to the reference newCSR layout, plus property
// coverage that forces the chunked counting-sort scatter onto graphs small
// enough to cross-check exhaustively.

import (
	"bytes"
	"math"
	"slices"
	"testing"

	"dhc/internal/rng"
)

// forcedChunked pushes every arena through the deferred-scatter chunked path
// regardless of size (directBytes=1), with stage and region sizes small
// enough that moderate test graphs cross several flush and region
// boundaries. The stageCap floor of 1024 still applies, so multi-flush
// coverage needs > 1024 deferred writes.
var forcedChunked = scatterTuning{directBytes: 1, stageCap: 1024, regionBytes: 256}

// assertSameCSR asserts two graphs share byte-identical CSR arrays — the
// strongest form of the "same Encode bytes" contract, since every encoding
// (edge list, DOT, Neighbors) is a pure function of (off, arena).
func assertSameCSR(t *testing.T, label string, want, got *Graph) {
	t.Helper()
	if want.N() != got.N() || want.M() != got.M() {
		t.Fatalf("%s: shape (n=%d, m=%d), want (n=%d, m=%d)",
			label, got.N(), got.M(), want.N(), want.M())
	}
	wantOff, wantArena := want.Adjacency()
	gotOff, gotArena := got.Adjacency()
	if !slices.Equal(wantOff, gotOff) {
		t.Fatalf("%s: offset arrays differ", label)
	}
	if !slices.Equal(wantArena, gotArena) {
		t.Fatalf("%s: arena arrays differ", label)
	}
}

func TestStreamingGNPMatchesReference(t *testing.T) {
	sizes := []int{1000}
	if !testing.Short() {
		sizes = append(sizes, 100000)
	}
	for _, n := range sizes {
		p := 8 * math.Log(float64(n)) / float64(n)
		g := GNP(n, p, rng.New(uint64(n)+7))
		// Reference: the same realized edge set through the historical
		// sort-then-pack construction.
		ref := newCSR(n, g.Edges())
		assertSameCSR(t, "gnp vs newCSR", ref, g)
		// The chunked scatter must not change a single byte either.
		forced := gnpTuned(n, p, rng.New(uint64(n)+7), forcedChunked)
		assertSameCSR(t, "gnp forced-chunked vs default", g, forced)
		checkWellFormed(t, g)
	}
}

func TestStreamingGNMMatchesReference(t *testing.T) {
	n := 1000
	// Below and above the dense-regime switch, so both the direct sampler and
	// the complement path are cross-checked.
	for _, m := range []int{0, 1, 5000, 200000, 450000, 499500} {
		g := GNM(n, m, rng.New(uint64(m)*3 + 1))
		if g.M() != m {
			t.Fatalf("GNM(n=%d, m=%d) realized %d edges", n, m, g.M())
		}
		ref := newCSR(n, g.Edges())
		assertSameCSR(t, "gnm vs newCSR", ref, g)
		checkWellFormed(t, g)
	}
	if !testing.Short() {
		n = 100000
		m := 2000000
		g := GNM(n, m, rng.New(99))
		ref := newCSR(n, g.Edges())
		assertSameCSR(t, "gnm large vs newCSR", ref, g)
	}
}

// TestStreamingEncodeBytesIdentical locks the user-visible encoding: the
// streaming builder and the reference construction serialize to identical
// edge-list bytes.
func TestStreamingEncodeBytesIdentical(t *testing.T) {
	n := 500
	g := GNP(n, 0.02, rng.New(5))
	ref := newCSR(n, g.Edges())
	var a, b bytes.Buffer
	if err := g.WriteEdgeList(&a); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteEdgeList(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("streaming and reference edge-list encodings differ")
	}
}

// TestChunkedScatterFlushBoundaries drives the packed-pair tail through
// multiple stage flushes and region boundaries and cross-checks against both
// the direct path and newCSR.
func TestChunkedScatterFlushBoundaries(t *testing.T) {
	src := rng.New(42)
	n := 700
	var pairs []uint64
	for i := 0; i < 9000; i++ {
		u := NodeID(src.Intn(n))
		v := NodeID(src.Intn(n))
		if u == v {
			continue
		}
		pairs = append(pairs, packPair(u, v))
	}
	pairs = sortDedupPacked(pairs)
	if len(pairs) <= 4*forcedChunked.stageCap {
		t.Fatalf("want > %d pairs for multi-flush coverage, got %d",
			4*forcedChunked.stageCap, len(pairs))
	}
	direct := csrFromPackedPairs(n, pairs)
	chunked := csrFromPackedPairsTuned(n, pairs, forcedChunked)
	assertSameCSR(t, "chunked vs direct", direct, chunked)

	edges := make([]Edge, len(pairs))
	for i, e := range pairs {
		u, v := unpackPair(e)
		edges[i] = Edge{U: u, V: v}
	}
	assertSameCSR(t, "chunked vs newCSR", newCSR(n, edges), chunked)
	checkWellFormed(t, chunked)
}

// FuzzChunkedPacking cross-checks the chunked scatter against newCSR on
// arbitrary pair multisets (duplicates and self-pairs filtered the same way
// the builders do).
func FuzzChunkedPacking(f *testing.F) {
	f.Add(uint64(1), 16, 40)
	f.Add(uint64(2), 64, 2000)
	f.Add(uint64(3), 2, 1)
	f.Add(uint64(4), 300, 5000)
	f.Fuzz(func(t *testing.T, seed uint64, n, draws int) {
		if n < 2 || n > 512 {
			n = 2 + int(uint(n)%511)
		}
		if draws < 0 || draws > 10000 {
			draws = int(uint(draws) % 10001)
		}
		src := rng.New(seed)
		var pairs []uint64
		for i := 0; i < draws; i++ {
			u := NodeID(src.Intn(n))
			v := NodeID(src.Intn(n))
			if u == v {
				continue
			}
			pairs = append(pairs, packPair(u, v))
		}
		pairs = sortDedupPacked(pairs)
		got := csrFromPackedPairsTuned(n, pairs, forcedChunked)
		edges := make([]Edge, len(pairs))
		for i, e := range pairs {
			u, v := unpackPair(e)
			edges[i] = Edge{U: u, V: v}
		}
		assertSameCSR(t, "fuzz chunked vs newCSR", newCSR(n, edges), got)
	})
}

func TestMaxEdgesNoOverflow(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{0, 0}, {1, 0}, {2, 1}, {1000, 499500},
		// 10^7 vertices: n(n-1)/2 would wrap a 32-bit product.
		{10_000_000, 49_999_995_000_000},
	}
	for _, c := range cases {
		if got := MaxEdges(c.n); got != c.want {
			t.Fatalf("MaxEdges(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestValidateEdgeCount(t *testing.T) {
	cases := []struct {
		n      int
		m      int64
		wantOK bool
	}{
		{1000, 0, true},
		{1000, 499500, true},
		{1000, 499501, false},   // beyond MaxEdges
		{1000, -1, false},       // negative
		{10_000_000, 1_000_000_000, true},  // 2m just fits int32
		{10_000_000, 1_100_000_000, false}, // 2m beyond int32
		{100_000, MaxEdges(100_000), false}, // representable pairs, 2m overflows
	}
	for _, c := range cases {
		err := ValidateEdgeCount(c.n, c.m)
		if c.wantOK && err != nil {
			t.Fatalf("ValidateEdgeCount(%d, %d): unexpected error %v", c.n, c.m, err)
		}
		if !c.wantOK && err == nil {
			t.Fatalf("ValidateEdgeCount(%d, %d): error expected", c.n, c.m)
		}
	}
}

// TestSBMLargePairIndexNoWrap regresses the n ≥ 10^5 block-pair indexing:
// two 50000-vertex blocks span 2.5·10^9 cross pairs, beyond int32, so any
// 32-bit wrap in the geometric-skip accumulator would lose or duplicate
// edges. Densities are tiny to keep the realized graph small.
func TestSBMLargePairIndexNoWrap(t *testing.T) {
	if testing.Short() {
		t.Skip("-short set")
	}
	n, k := 100000, 2
	g := SBM(n, k, 2e-6, 4e-7, rng.New(11))
	checkWellFormed(t, g)
	h := SBM(n, k, 2e-6, 4e-7, rng.New(11))
	assertSameCSR(t, "sbm determinism", g, h)
	if g.M() == 0 {
		t.Fatal("expected some edges at these densities")
	}
}
