package graph

import (
	"testing"
	"testing/quick"

	"dhc/internal/rng"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	if !b.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) rejected")
	}
	if b.AddEdge(1, 0) {
		t.Fatal("duplicate (reversed) edge accepted")
	}
	if b.AddEdge(2, 2) {
		t.Fatal("self-loop accepted")
	}
	if b.AddEdge(0, 5) {
		t.Fatal("out-of-range edge accepted")
	}
	if b.AddEdge(-1, 0) {
		t.Fatal("negative endpoint accepted")
	}
	b.AddEdge(1, 2)
	g := b.Build()
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 4, 2", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge symmetric lookup failed")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d, %d", g.Degree(1), g.Degree(3))
	}
}

func TestNeighborsSorted(t *testing.T) {
	src := rng.New(1)
	g := GNP(200, 0.1, src)
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(NodeID(v))
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("neighbors of %d not strictly sorted: %v", v, nb)
			}
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	src := rng.New(2)
	g := GNP(100, 0.05, src)
	g2 := FromEdges(g.N(), g.Edges())
	if g2.M() != g.M() {
		t.Fatalf("edge count changed: %d -> %d", g.M(), g2.M())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestCompleteAndRing(t *testing.T) {
	k := Complete(6)
	if k.M() != 15 {
		t.Fatalf("K6 has %d edges, want 15", k.M())
	}
	if k.MinDegree() != 5 || k.MaxDegree() != 5 {
		t.Fatal("K6 not 5-regular")
	}
	r := Ring(10)
	if r.M() != 10 || r.MinDegree() != 2 || r.MaxDegree() != 2 {
		t.Fatalf("Ring(10): m=%d min=%d max=%d", r.M(), r.MinDegree(), r.MaxDegree())
	}
	p := Path(5)
	if p.M() != 4 || p.MinDegree() != 1 {
		t.Fatalf("Path(5): m=%d min=%d", p.M(), p.MinDegree())
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid n=%d", g.N())
	}
	// 3x4 grid: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
	if g.M() != 17 {
		t.Fatalf("grid m=%d, want 17", g.M())
	}
	if !g.Connected() {
		t.Fatal("grid should be connected")
	}
}

func TestGNPDeterminism(t *testing.T) {
	g1 := GNP(500, 0.02, rng.New(7))
	g2 := GNP(500, 0.02, rng.New(7))
	if g1.M() != g2.M() {
		t.Fatalf("same seed produced different graphs: m=%d vs %d", g1.M(), g2.M())
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestGNPEdgeCount(t *testing.T) {
	// E[m] = p * n(n-1)/2; check within 5 standard deviations.
	n, p := 1000, 0.01
	g := GNP(n, p, rng.New(3))
	mean := p * float64(n*(n-1)) / 2
	sd := mean * (1 - p)
	sd = sqrtf(sd)
	if diff := absf(float64(g.M()) - mean); diff > 5*sd {
		t.Fatalf("GNP edge count %d deviates from mean %.0f by %.0f (>5sd=%.0f)",
			g.M(), mean, diff, 5*sd)
	}
}

func TestGNPExtremes(t *testing.T) {
	if g := GNP(100, 0, rng.New(1)); g.M() != 0 {
		t.Fatal("GNP(p=0) has edges")
	}
	if g := GNP(20, 1, rng.New(1)); g.M() != 190 {
		t.Fatalf("GNP(p=1) m=%d, want 190", g.M())
	}
	if g := GNP(1, 0.5, rng.New(1)); g.N() != 1 || g.M() != 0 {
		t.Fatal("GNP(n=1) wrong")
	}
	if g := GNP(0, 0.5, rng.New(1)); g.N() != 0 {
		t.Fatal("GNP(n=0) wrong")
	}
}

func TestGNMExactCount(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{10, 0}, {10, 5}, {10, 45}, {10, 40}, {50, 300},
	} {
		g := GNM(tc.n, tc.m, rng.New(uint64(tc.n*1000+tc.m)))
		if g.M() != tc.m {
			t.Errorf("GNM(%d,%d) produced %d edges", tc.n, tc.m, g.M())
		}
	}
}

func TestGNMPanicsWhenOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GNM with too many edges did not panic")
		}
	}()
	GNM(4, 7, rng.New(1))
}

func TestRandomRegular(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{10, 3}, {50, 4}, {100, 6}} {
		g, err := RandomRegular(tc.n, tc.d, rng.New(uint64(tc.n)))
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(NodeID(v)) != tc.d {
				t.Fatalf("vertex %d degree %d, want %d", v, g.Degree(NodeID(v)), tc.d)
			}
		}
	}
}

func TestRandomRegularRejectsBadParams(t *testing.T) {
	if _, err := RandomRegular(5, 3, rng.New(1)); err == nil {
		t.Fatal("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, rng.New(1)); err == nil {
		t.Fatal("d >= n accepted")
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	res := g.BFS(0)
	for v := 0; v < 5; v++ {
		if res.Dist[v] != v {
			t.Fatalf("path dist[%d]=%d", v, res.Dist[v])
		}
	}
	if res.Ecc != 4 {
		t.Fatalf("ecc=%d", res.Ecc)
	}
	if res.Parent[0] != -1 || res.Parent[3] != 2 {
		t.Fatalf("parents wrong: %v", res.Parent)
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	res := g.BFS(0)
	if res.Dist[2] != -1 || res.Dist[3] != -1 {
		t.Fatal("unreachable vertices should have dist -1")
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if comps := g.Components(); len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
}

func TestDiameterSmall(t *testing.T) {
	if d := Ring(10).Diameter(); d != 5 {
		t.Fatalf("Ring(10) diameter %d, want 5", d)
	}
	if d := Path(7).Diameter(); d != 6 {
		t.Fatalf("Path(7) diameter %d, want 6", d)
	}
	if d := Complete(8).Diameter(); d != 1 {
		t.Fatalf("K8 diameter %d, want 1", d)
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	if d := b.Build().Diameter(); d != -1 {
		t.Fatalf("disconnected diameter %d, want -1", d)
	}
}

func TestDiameterSampledLowerBoundsExact(t *testing.T) {
	src := rng.New(5)
	g := GNP(300, 0.03, src)
	if !g.Connected() {
		t.Skip("sample graph disconnected")
	}
	exact := g.Diameter()
	sampled := g.DiameterSampled(5, rng.New(6))
	if sampled > exact {
		t.Fatalf("sampled diameter %d exceeds exact %d", sampled, exact)
	}
	if sampled < exact-1 {
		t.Fatalf("double sweep too weak: sampled %d vs exact %d", sampled, exact)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(6)
	sub, orig := g.InducedSubgraph([]NodeID{5, 1, 3, 3})
	if sub.N() != 3 {
		t.Fatalf("induced n=%d, want 3 (dedup)", sub.N())
	}
	if sub.M() != 3 {
		t.Fatalf("induced m=%d, want 3", sub.M())
	}
	want := []NodeID{1, 3, 5}
	for i, v := range orig {
		if v != want[i] {
			t.Fatalf("orig mapping %v, want %v", orig, want)
		}
	}
}

func TestInducedSubgraphPreservesEdges(t *testing.T) {
	check := func(seed uint64) bool {
		g := GNP(60, 0.2, rng.New(seed))
		vs := []NodeID{}
		pick := rng.New(seed + 1)
		for v := 0; v < g.N(); v++ {
			if pick.Bernoulli(0.5) {
				vs = append(vs, NodeID(v))
			}
		}
		sub, orig := g.InducedSubgraph(vs)
		for u := 0; u < sub.N(); u++ {
			for v := u + 1; v < sub.N(); v++ {
				if sub.HasEdge(NodeID(u), NodeID(v)) != g.HasEdge(orig[u], orig[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphEdgeCases(t *testing.T) {
	g := Complete(6)

	// Empty vertex set: an empty (not nil-panicking) subgraph.
	sub, orig := g.InducedSubgraph(nil)
	if sub.N() != 0 || sub.M() != 0 || len(orig) != 0 {
		t.Fatalf("empty set: n=%d m=%d orig=%v", sub.N(), sub.M(), orig)
	}
	sub, orig = g.InducedSubgraph([]NodeID{})
	if sub.N() != 0 || sub.M() != 0 || len(orig) != 0 {
		t.Fatalf("empty slice: n=%d m=%d orig=%v", sub.N(), sub.M(), orig)
	}

	// A set that is all duplicates of one vertex: single isolated vertex.
	sub, orig = g.InducedSubgraph([]NodeID{4, 4, 4})
	if sub.N() != 1 || sub.M() != 0 || len(orig) != 1 || orig[0] != 4 {
		t.Fatalf("all-duplicates set: n=%d m=%d orig=%v", sub.N(), sub.M(), orig)
	}

	// Full set: an exact round trip, identity mapping, every edge kept.
	all := make([]NodeID, g.N())
	for v := range all {
		all[v] = NodeID(v)
	}
	sub, orig = g.InducedSubgraph(all)
	if sub.N() != g.N() || sub.M() != g.M() {
		t.Fatalf("full set: n=%d m=%d, want %d, %d", sub.N(), sub.M(), g.N(), g.M())
	}
	for i, v := range orig {
		if int(v) != i {
			t.Fatalf("full set mapping not identity: %v", orig)
		}
	}
	for _, e := range g.Edges() {
		if !sub.HasEdge(e.U, e.V) {
			t.Fatalf("full-set round trip lost edge %v", e)
		}
	}

	// Full set given in reverse plus duplicates: same graph after dedup,
	// mapping still sorted ascending.
	rev := append(append([]NodeID{}, all...), all...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	sub, orig = g.InducedSubgraph(rev)
	if sub.N() != g.N() || sub.M() != g.M() {
		t.Fatalf("reversed full set: n=%d m=%d", sub.N(), sub.M())
	}
	for i := 1; i < len(orig); i++ {
		if orig[i-1] >= orig[i] {
			t.Fatalf("mapping not strictly ascending: %v", orig)
		}
	}
}

// TestHCThresholdPMonotone pins the shape of the threshold function: for
// fixed (n, delta) it grows with c, for fixed (c, delta) it shrinks with n,
// and for fixed (n, c) it shrinks as delta grows (denser regimes at smaller
// exponents).
func TestHCThresholdPMonotone(t *testing.T) {
	n := 10_000
	prev := 0.0
	for _, c := range []float64{0.5, 1, 1.5, 2, 4, 8, 16} {
		p := HCThresholdP(n, c, 0.5)
		if p <= prev {
			t.Fatalf("not monotone in c: p(%v)=%v <= p(prev)=%v", c, p, prev)
		}
		prev = p
	}
	if HCThresholdP(n, 2, 0.3) <= HCThresholdP(n, 2, 0.5) {
		t.Fatal("not anti-monotone in delta")
	}
	if HCThresholdP(n, 2, 0.5) <= HCThresholdP(4*n, 2, 0.5) {
		t.Fatal("not anti-monotone in n")
	}
}

func TestHCThresholdPClampAndSmallN(t *testing.T) {
	// n < 2 has no meaningful threshold at all.
	for _, n := range []int{-1, 0, 1} {
		if p := HCThresholdP(n, 86, 0.5); p != 0 {
			t.Fatalf("n=%d threshold %v, want 0", n, p)
		}
	}
	// n = 2 is the smallest n with a defined value; huge c must clamp.
	if p := HCThresholdP(2, 100, 1); p != 1 {
		t.Fatalf("n=2 huge c: %v, want clamp to 1", p)
	}
	// c = 0 collapses to 0 at every n and delta.
	if p := HCThresholdP(1000, 0, 0.5); p != 0 {
		t.Fatalf("c=0: %v, want 0", p)
	}
	// The clamp boundary: delta = 0 makes p = c·ln n, always clamped for
	// c·ln n >= 1.
	if p := HCThresholdP(1000, 1, 0); p != 1 {
		t.Fatalf("delta=0: %v, want 1", p)
	}
	// Every output lies in [0, 1] across a parameter sweep.
	for _, n := range []int{2, 3, 10, 1000} {
		for _, c := range []float64{0, 0.1, 1, 86} {
			for _, delta := range []float64{0, 0.25, 0.5, 1} {
				if p := HCThresholdP(n, c, delta); p < 0 || p > 1 {
					t.Fatalf("HCThresholdP(%d, %v, %v) = %v out of [0, 1]", n, c, delta, p)
				}
			}
		}
	}
}

func TestHCThresholdP(t *testing.T) {
	if p := HCThresholdP(1, 86, 0.5); p != 0 {
		t.Fatalf("n=1 threshold %v, want 0", p)
	}
	// Small n with large c must clamp to 1.
	if p := HCThresholdP(4, 86, 1); p != 1 {
		t.Fatalf("clamp failed: %v", p)
	}
	// The paper's analysis constant c=86 needs astronomically large n before
	// p < 1; practical experiments use small c. Check an un-clamped case.
	p := HCThresholdP(100_000, 2, 0.5)
	if p <= 0 || p >= 1 {
		t.Fatalf("threshold out of range: %v", p)
	}
	// Monotone in n (for fixed c, delta) once un-clamped.
	if HCThresholdP(1_000_000, 2, 0.5) >= p {
		t.Fatal("threshold should decrease with n")
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sqrtf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method is plenty for test tolerances.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
