package graph

// Generator families beyond the paper's G(n, p) universe: the phase-transition
// atlas workloads. Each generator derives every random choice from the given
// rng.Source (a pure function of the caller's seed), emits edges through the
// streaming BuilderCSR path, and produces the same CSR layout as the core
// generators, so the sweep harness and engines treat all families uniformly.
//
//   - ChungLu: the expected-degree power-law model — heavy-tailed degrees,
//     the paper's i.i.d. edge assumption broken by weight skew.
//   - Geometric: the random geometric graph on the unit square — edges from
//     spatial proximity, heavily clustered, the opposite of an expander.
//   - SBM: the stochastic block model — community structure with dense
//     blocks and sparse cuts.
//   - Hypercube / Torus: deterministic structured lattices, the atlas's
//     ground-truth controls (their Hamiltonicity is known by construction).

import (
	"fmt"
	"math"

	"dhc/internal/rng"
)

// ChungLu samples the Chung–Lu expected-degree power-law graph: vertex i
// carries weight w_i proportional to (i+1)^(-1/(exponent-1)), scaled so the
// mean weight is avgDeg, and each pair (i, j) is an edge independently with
// probability min(1, w_i·w_j/Σw). The resulting degree sequence follows a
// power law with the given exponent (tail P[deg > d] ~ d^(1-exponent));
// exponent must exceed 2 so the weight sum stays linear in n.
//
// Sampling uses the Miller–Hagberg skipping procedure: weights are
// non-increasing in the vertex index by construction, so for each row u the
// candidate column v advances by geometric jumps at the current upper-bound
// probability and lands are accepted with the exact ratio — expected
// O(n + m) work, never O(n²).
func ChungLu(n int, avgDeg, exponent float64, src *rng.Source) *Graph {
	if exponent <= 2 {
		panic(fmt.Sprintf("graph: ChungLu exponent %v must exceed 2", exponent))
	}
	if n < 2 || avgDeg <= 0 || math.IsNaN(avgDeg) {
		return newCSR(max(n, 0), nil)
	}
	if avgDeg > float64(n-1) {
		avgDeg = float64(n - 1)
	}
	alpha := 1 / (exponent - 1)
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
		sum += w[i]
	}
	// Scale so Σw = n·avgDeg; the pair probability divisor is that same sum.
	scale := avgDeg * float64(n) / sum
	total := avgDeg * float64(n)
	for i := range w {
		w[i] *= scale
	}
	b := NewBuilderCSR(n, int(total/2)+n)
	for u := 0; u < n-1; u++ {
		v := u + 1
		p := math.Min(1, w[u]*w[v]/total)
		for v < n && p > 0 {
			if p < 1 {
				v += src.Geometric(p)
			}
			if v >= n {
				break
			}
			// Weights are non-increasing, so the true probability q for the
			// landed column never exceeds the jump probability p; accepting
			// with ratio q/p makes the pair's overall probability exactly q.
			q := math.Min(1, w[u]*w[v]/total)
			if q >= p || src.Float64() < q/p {
				b.Add(NodeID(u), NodeID(v))
			}
			p = q
			v++
		}
	}
	return b.Build()
}

// Geometric samples a random geometric graph: n points uniform on the unit
// square, an edge wherever two points lie within the given radius. Neighbor
// search is grid-bucketed — the square is cut into cells no narrower than the
// radius, so each point only compares against its 3×3 cell neighborhood —
// keeping construction near-linear in n + m instead of O(n²).
func Geometric(n int, radius float64, src *rng.Source) *Graph {
	if n <= 0 {
		return newCSR(0, nil)
	}
	// Draw the point set first (x then y per point, in vertex order) so the
	// layout of the instance is independent of the radius branch taken below.
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = src.Float64()
		ys[i] = src.Float64()
	}
	if radius <= 0 || math.IsNaN(radius) {
		return newCSR(n, nil)
	}
	if radius >= math.Sqrt2 {
		// Every pair of unit-square points is within √2.
		return Complete(n)
	}
	// Cell width 1/side must stay ≥ radius for the 3×3 neighborhood to cover
	// the disc; capping side near √n bounds the bucket table at O(n) cells
	// when the radius is tiny.
	side := int(1 / radius)
	if side < 1 {
		side = 1
	}
	if maxSide := int(math.Sqrt(float64(n))) + 1; side > maxSide {
		side = maxSide
	}
	cellOf := func(x float64) int {
		c := int(x * float64(side))
		if c >= side {
			c = side - 1
		}
		return c
	}
	buckets := make([][]int32, side*side)
	for i := 0; i < n; i++ {
		c := cellOf(ys[i])*side + cellOf(xs[i])
		buckets[c] = append(buckets[c], int32(i))
	}
	r2 := radius * radius
	expected := math.Pi * r2 * float64(n) / 2 * float64(n)
	hintF := math.Min(expected, float64(n)*float64(n-1)/2)
	hint := n * 8
	if hintF < float64(hint) {
		hint = int(hintF)
	}
	b := NewBuilderCSR(n, hint)
	for i := 0; i < n; i++ {
		ci, cj := cellOf(xs[i]), cellOf(ys[i])
		for dj := -1; dj <= 1; dj++ {
			for di := -1; di <= 1; di++ {
				nx, ny := ci+di, cj+dj
				if nx < 0 || ny < 0 || nx >= side || ny >= side {
					continue
				}
				for _, j := range buckets[ny*side+nx] {
					if int(j) <= i {
						continue
					}
					dx, dy := xs[i]-xs[j], ys[i]-ys[j]
					if dx*dx+dy*dy <= r2 {
						b.Add(NodeID(i), NodeID(j))
					}
				}
			}
		}
	}
	return b.Build()
}

// GeometricThresholdR returns the random geometric graph's connectivity-
// threshold radius scaled by c: r = c·sqrt(ln n / (π·n)). At c = 1 the
// expected neighborhood size is ln n, the classic connectivity knee; the
// sweep's geometric family uses c as its density parameter the way gnp uses
// the threshold constant of p = c·ln n/n^δ.
func GeometricThresholdR(n int, c float64) float64 {
	if n < 2 {
		return 0
	}
	return c * math.Sqrt(math.Log(float64(n))/(math.Pi*float64(n)))
}

// SBM samples a stochastic block model: vertices are cut into k contiguous
// near-equal blocks, and each pair is an edge independently with probability
// pIn (same block) or pOut (different blocks). Both probabilities are clamped
// to [0, 1]. Within-block edges reuse the G(n, p) geometric skipping; cross-
// block pairs stream through the same skipping over the bipartite index grid,
// so construction is O(n + m) regardless of k.
func SBM(n, k int, pIn, pOut float64, src *rng.Source) *Graph {
	if k < 1 {
		panic(fmt.Sprintf("graph: SBM needs k >= 1 blocks, got %d", k))
	}
	if n < 2 {
		return newCSR(max(n, 0), nil)
	}
	if k > n {
		k = n
	}
	pIn = clampProb(pIn)
	pOut = clampProb(pOut)
	start := func(i int) int { return i * n / k }
	// Estimate the edge count in float and clamp before converting: at
	// n >= 10^7 the raw pair-count products overflow 32-bit ints, and a
	// float-to-int conversion out of range is undefined.
	hintF := pIn*float64(n)*float64(n)/float64(k)/2 +
		pOut*float64(n)*float64(n)/2
	hint := n * 8
	if hintF < float64(hint) {
		hint = int(hintF)
	}
	b := NewBuilderCSR(n, hint)
	for a := 0; a < k; a++ {
		base, size := start(a), start(a+1)-start(a)
		iterateGNP(size, pIn, src, func(v, w NodeID) {
			b.Add(NodeID(base)+v, NodeID(base)+w)
		})
		for c := a + 1; c < k; c++ {
			baseC, sizeC := start(c), start(c+1)-start(c)
			iterateBipartite(size, sizeC, pOut, src, func(i, j int) {
				b.Add(NodeID(base+i), NodeID(baseC+j))
			})
		}
	}
	return b.Build()
}

// iterateBipartite enumerates the edges of a random bipartite Bernoulli(p)
// block with na left and nb right vertices by geometric skipping over the
// row-major pair index, in expected O(1 + p·na·nb) time. The pair index runs
// in int64: na·nb exceeds 32 bits well before the block sizes that 10^7-vertex
// SBM grids produce, and wrapping it would silently truncate the block.
func iterateBipartite(na, nb int, p float64, src *rng.Source, visit func(i, j int)) {
	if na <= 0 || nb <= 0 || p <= 0 {
		return
	}
	total := int64(na) * int64(nb)
	if p >= 1 {
		for t := int64(0); t < total; t++ {
			visit(int(t/int64(nb)), int(t%int64(nb)))
		}
		return
	}
	t := int64(src.Geometric(p))
	for t < total {
		visit(int(t/int64(nb)), int(t%int64(nb)))
		t += 1 + int64(src.Geometric(p))
	}
}

// clampProb clamps a probability to [0, 1] (NaN maps to 0).
func clampProb(p float64) float64 {
	if !(p > 0) {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Hypercube returns the dim-dimensional hypercube Q_dim on 2^dim vertices:
// two vertices are adjacent iff their binary labels differ in exactly one
// bit. Q_dim is dim-regular, bipartite by label parity, and Hamiltonian for
// dim >= 2 (any Gray code is a Hamiltonian cycle). dim must be in [0, 30]
// so the vertex count fits the CSR layout.
func Hypercube(dim int) *Graph {
	if dim < 0 || dim > 30 {
		panic(fmt.Sprintf("graph: Hypercube dimension %d outside [0, 30]", dim))
	}
	n := 1 << dim
	b := NewBuilderCSR(n, n*dim/2)
	for v := 0; v < n; v++ {
		for k := 0; k < dim; k++ {
			if w := v | 1<<k; w != v {
				b.Add(NodeID(v), NodeID(w))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows×cols torus: the grid graph with wraparound edges in
// both dimensions. For rows, cols >= 3 it is 4-regular and Hamiltonian (a
// boustrophedon walk closes through the wrap edges). Degenerate dimensions
// collapse gracefully: a wrap edge that duplicates a grid edge (length-2
// dimension) or forms a self-loop (length-1 dimension) is dropped by the
// builder.
func Torus(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("graph: Torus dimensions %dx%d must be positive", rows, cols))
	}
	b := NewBuilderCSR(rows*cols, 2*rows*cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.Add(id(r, c), id((r+1)%rows, c))
			b.Add(id(r, c), id(r, (c+1)%cols))
		}
	}
	return b.Build()
}
