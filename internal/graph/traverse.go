package graph

import "dhc/internal/rng"

// BFSResult holds single-source breadth-first-search output.
type BFSResult struct {
	Source NodeID
	// Dist[v] is the hop distance from Source, or -1 if unreachable.
	Dist []int
	// Parent[v] is the BFS-tree parent of v, or -1 for the source and
	// unreachable vertices.
	Parent []NodeID
	// Order lists reached vertices in visit order (source first).
	Order []NodeID
	// Ecc is the eccentricity of the source within its component.
	Ecc int
}

// BFS runs breadth-first search from src.
func (g *Graph) BFS(src NodeID) *BFSResult {
	res := &BFSResult{
		Source: src,
		Dist:   make([]int, g.n),
		Parent: make([]NodeID, g.n),
		Order:  make([]NodeID, 0, g.n),
	}
	for i := range res.Dist {
		res.Dist[i] = -1
		res.Parent[i] = -1
	}
	res.Dist[src] = 0
	queue := make([]NodeID, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		res.Order = append(res.Order, v)
		if res.Dist[v] > res.Ecc {
			res.Ecc = res.Dist[v]
		}
		for _, w := range g.Neighbors(v) {
			if res.Dist[w] < 0 {
				res.Dist[w] = res.Dist[v] + 1
				res.Parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return res
}

// Ecc computes the eccentricity of src within its component and the number
// of vertices reached, using int32 distances and no parent/order arrays —
// 8 bytes per vertex of transient state against BFS's 20. This is the lean
// core behind connectivity checks and broadcast bounds on the step engine's
// per-partition hot path, where a full BFSResult is pure overhead.
func (g *Graph) Ecc(src NodeID) (ecc, reached int) {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 1, g.n)
	queue[0] = src
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		d := dist[v]
		if int(d) > ecc {
			ecc = int(d)
		}
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
	return ecc, len(queue)
}

// Connected reports whether the graph is connected (vacuously true for n<=1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	_, reached := g.Ecc(0)
	return reached == g.n
}

// Components returns the connected components as vertex lists.
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, g.n)
	var comps [][]NodeID
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		res := g.BFS(NodeID(v))
		comp := make([]NodeID, len(res.Order))
		copy(comp, res.Order)
		for _, w := range comp {
			seen[w] = true
		}
		comps = append(comps, comp)
	}
	return comps
}

// Diameter computes the exact diameter by running BFS from every vertex.
// It returns -1 for a disconnected graph. Cost is O(n(n+m)); use
// DiameterSampled for large graphs.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return 0
	}
	diam := 0
	for v := 0; v < g.n; v++ {
		res := g.BFS(NodeID(v))
		if len(res.Order) != g.n {
			return -1
		}
		if res.Ecc > diam {
			diam = res.Ecc
		}
	}
	return diam
}

// DiameterSampled lower-bounds the diameter by running BFS from `samples`
// random vertices plus, for each, the farthest vertex found (a standard
// double-sweep heuristic that is exact on trees and near-exact on random
// graphs). Returns -1 if the graph is disconnected.
func (g *Graph) DiameterSampled(samples int, src *rng.Source) int {
	if g.n == 0 {
		return 0
	}
	if samples < 1 {
		samples = 1
	}
	best := 0
	for i := 0; i < samples; i++ {
		start := NodeID(src.Intn(g.n))
		res := g.BFS(start)
		if len(res.Order) != g.n {
			return -1
		}
		// Double sweep: BFS again from the farthest vertex.
		far := res.Order[len(res.Order)-1]
		res2 := g.BFS(far)
		if res2.Ecc > best {
			best = res2.Ecc
		}
	}
	return best
}
