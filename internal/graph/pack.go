package graph

// Streaming CSR packing. Everything here exists so a graph can be built
// without ever materializing an []Edge: canonical vertex pairs travel either
// as packed uint64 keys (8 bytes instead of Edge's 16, sortable with
// slices.Sort and no comparator closure) or straight out of a generator
// replay, and land in the CSR arena through a two-cursor fill whose
// cache-hostile half goes through a chunked counting sort.
//
// The fill exploits the same ordering contract as newCSR: when canonical
// (u < v) pairs arrive sorted by (u, v), row x receives its smaller
// neighbors (the v side, whose u ascend across the stream) before its larger
// ones (the u side block at u == x), and each group arrives ascending — so
// rows come out sorted with no per-row sort. Splitting the two groups onto
// separate cursors (the smaller-neighbor section starts at off[x], the
// larger-neighbor section at off[x]+smaller[x]) decouples their write
// timing, which is what lets the random-access half be deferred and batched
// while the sequential half streams directly.

import (
	"fmt"
	"math/bits"
	"slices"
)

// MaxEdges returns the number of unordered vertex pairs n·(n−1)/2, computed
// in int64 so vertex counts at and beyond 10^7 — where the product overflows
// 32-bit and, at ~3·10^9, even squares uncomfortably against int on 32-bit
// platforms — can never silently wrap. Callers validating generator
// parameters must compare against this, not against an int expression.
func MaxEdges(n int) int64 {
	if n < 2 {
		return 0
	}
	nn := int64(n)
	return nn * (nn - 1) / 2
}

// ValidateEdgeCount reports whether a graph with n vertices and m edges is
// representable: m within [0, MaxEdges(n)] and 2m within the int32 CSR
// offset range. CLI and sweep parameter validation call this to turn
// infeasible requests into config errors; the generators themselves panic,
// treating violations that reach them as programmer error.
func ValidateEdgeCount(n int, m int64) error {
	if m < 0 {
		return fmt.Errorf("graph: negative edge count %d", m)
	}
	if max := MaxEdges(n); m > max {
		return fmt.Errorf("graph: m=%d exceeds the %d possible edges for n=%d", m, max, n)
	}
	if 2*m > (1<<31)-1 {
		return fmt.Errorf("graph: m=%d needs %d half-edges, beyond the int32 CSR range", m, 2*m)
	}
	return nil
}

// packPair encodes the canonical form of the pair {u, v} as u<<32|v with
// u < v. uint64 ordering of packed pairs equals lexicographic (U, V) edge
// ordering, so a packed slice sorts into exactly the order newCSR requires.
func packPair(u, v NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// unpackPair inverts packPair.
func unpackPair(p uint64) (u, v NodeID) {
	return NodeID(p >> 32), NodeID(uint32(p))
}

// sortDedupPacked canonically sorts packed pairs in place and removes
// duplicates, returning the shortened slice.
func sortDedupPacked(pairs []uint64) []uint64 {
	slices.Sort(pairs)
	return slices.Compact(pairs)
}

// scatterTuning controls the chunked counting sort in deferredScatter. The
// zero value selects production defaults; tests override the fields to force
// the chunked path onto graphs small enough to cross-check exhaustively.
type scatterTuning struct {
	// directBytes: arenas at or below this size scatter writes in place
	// (they fit cache well enough that batching only adds overhead).
	directBytes int
	// stageCap: deferred entries buffered per chunk. 0 derives m/4, which
	// keeps the extra memory at half the arena (16 bytes per staged entry
	// against 8 arena bytes per edge) and revisits every arena cache line
	// about twice per flush instead of once per graph.
	stageCap int
	// regionBytes: target arena bytes per counting-sort region. Regions are
	// what turn a full-arena random stride into a cache-window stride.
	regionBytes int
}

const (
	defaultDirectBytes = 32 << 20
	defaultRegionBytes = 512 << 10
	// maxStageEntries caps the two staging buffers at 1 GiB total so the
	// 10^7-vertex runs don't trade arena locality for staging residency.
	maxStageEntries = 1 << 26
)

// deferredScatter batches the random-access half of CSR filling. A direct
// fill executes arena[cur[w]++] = v immediately, striding randomly across
// the whole arena — at 10^6+ vertices every such write is a TLB and cache
// miss. Instead, add buffers the writes, and each flush counting-sorts the
// batch by arena region (a contiguous row range covering ~regionBytes of
// arena) before applying it, so the misses concentrate into one
// cache-resident window at a time.
//
// Rows receive their deferred values in add order; callers must add each
// row's values in ascending order (generator stream order guarantees this),
// and the counting sort is stable, so row contents stay sorted.
type deferredScatter struct {
	arena  []NodeID
	cur    []int32
	direct bool
	rshift uint
	counts []int32
	stage  []uint64
	slot   []uint64
}

func newDeferredScatter(arena []NodeID, cur []int32, n int, tune scatterTuning) *deferredScatter {
	s := &deferredScatter{arena: arena, cur: cur}
	directBytes := tune.directBytes
	if directBytes == 0 {
		directBytes = defaultDirectBytes
	}
	arenaBytes := 4 * len(arena)
	if arenaBytes <= directBytes || n == 0 {
		s.direct = true
		return s
	}
	regionBytes := tune.regionBytes
	if regionBytes == 0 {
		regionBytes = defaultRegionBytes
	}
	numRegions := (arenaBytes + regionBytes - 1) / regionBytes
	rowsPerRegion := n / numRegions
	if rowsPerRegion < 1 {
		rowsPerRegion = 1
	}
	s.rshift = uint(bits.Len(uint(rowsPerRegion))) - 1 // floor log2
	s.counts = make([]int32, ((n-1)>>s.rshift)+2)
	stageCap := tune.stageCap
	if stageCap == 0 {
		stageCap = len(arena) / 2 / 4 // m/4 entries
		if stageCap > maxStageEntries {
			stageCap = maxStageEntries
		}
	}
	if stageCap < 1024 {
		stageCap = 1024
	}
	s.stage = make([]uint64, 0, stageCap)
	s.slot = make([]uint64, stageCap)
	return s
}

// add records the deferred write arena[cur[w]++] = v.
func (s *deferredScatter) add(w, v NodeID) {
	if s.direct {
		s.arena[s.cur[w]] = v
		s.cur[w]++
		return
	}
	s.stage = append(s.stage, uint64(uint32(w))<<32|uint64(uint32(v)))
	if len(s.stage) == cap(s.stage) {
		s.flush()
	}
}

func (s *deferredScatter) flush() {
	if len(s.stage) == 0 {
		return
	}
	counts := s.counts
	for i := range counts {
		counts[i] = 0
	}
	for _, e := range s.stage {
		counts[uint((e>>32))>>s.rshift+1]++
	}
	for r := 1; r < len(counts); r++ {
		counts[r] += counts[r-1]
	}
	slot := s.slot[:len(s.stage)]
	for _, e := range s.stage {
		r := uint(e>>32) >> s.rshift
		slot[counts[r]] = e
		counts[r]++
	}
	for _, e := range slot {
		w := NodeID(e >> 32)
		s.arena[s.cur[w]] = NodeID(uint32(e))
		s.cur[w]++
	}
	s.stage = s.stage[:0]
}

// finish applies any still-buffered writes. Required before the arena is
// complete; safe to call on the direct path too.
func (s *deferredScatter) finish() {
	if !s.direct {
		s.flush()
	}
}

// csrFromPackedPairs builds a Graph from packed canonical pairs that are
// sorted and distinct — the shared streaming tail of the builders and the
// G(n, M) sampler. It produces byte-identical arrays to newCSR over the
// equivalent []Edge, without that slice ever existing.
func csrFromPackedPairs(n int, pairs []uint64) *Graph {
	return csrFromPackedPairsTuned(n, pairs, scatterTuning{})
}

func csrFromPackedPairsTuned(n int, pairs []uint64, tune scatterTuning) *Graph {
	guardHalfEdges(2 * int64(len(pairs)))
	off := make([]int32, n+1)
	smaller := make([]int32, n) // per-row count of smaller neighbors (v side)
	for _, e := range pairs {
		u, v := unpackPair(e)
		off[u+1]++
		off[v+1]++
		smaller[v]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	arena := make([]NodeID, 2*len(pairs))
	curU := smaller // reuse: after the loop below it becomes the u-side cursor
	curV := make([]int32, n)
	for x := 0; x < n; x++ {
		curV[x] = off[x]
		curU[x] = off[x] + smaller[x]
	}
	sc := newDeferredScatter(arena, curV, n, tune)
	for _, e := range pairs {
		u, v := unpackPair(e)
		arena[curU[u]] = v // u ascends: sequential
		curU[u]++
		sc.add(v, u) // v is random-access: batched
	}
	sc.finish()
	return &Graph{n: n, m: len(pairs), off: off, arena: arena}
}
