package graph

import (
	"math"
	"testing"

	"dhc/internal/rng"
)

// checkWellFormed asserts the CSR invariants every generator must uphold:
// rows strictly increasing (sorted, no duplicates), no self-loops, symmetric
// adjacency, and half-edge count consistent with M().
func checkWellFormed(t *testing.T, g *Graph) {
	t.Helper()
	half := 0
	for v := 0; v < g.N(); v++ {
		row := g.Neighbors(NodeID(v))
		half += len(row)
		for i, w := range row {
			if int(w) < 0 || int(w) >= g.N() {
				t.Fatalf("vertex %d has out-of-range neighbor %d", v, w)
			}
			if w == NodeID(v) {
				t.Fatalf("vertex %d has a self-loop", v)
			}
			if i > 0 && row[i-1] >= w {
				t.Fatalf("row of %d not strictly sorted: %v", v, row)
			}
			if !g.HasEdge(w, NodeID(v)) {
				t.Fatalf("edge (%d,%d) present but (%d,%d) missing", v, w, w, v)
			}
		}
	}
	if half != 2*g.M() {
		t.Fatalf("half-edge count %d inconsistent with m=%d", half, g.M())
	}
}

func TestGeneratorsWellFormed(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		n := 400
		p := 0.05 * float64(seed)
		g := GNP(n, p, rng.New(seed))
		checkWellFormed(t, g)
		// Degree bound: Binomial(n-1, p) stays within mean + 10 sd + 10 whp.
		mean := p * float64(n-1)
		sd := math.Sqrt(mean * (1 - p))
		if float64(g.MaxDegree()) > mean+10*sd+10 {
			t.Fatalf("GNP(seed=%d) max degree %d far above mean %.1f", seed, g.MaxDegree(), mean)
		}

		m := 1500 * int(seed)
		h := GNM(n, m, rng.New(seed))
		checkWellFormed(t, h)
		if h.M() != m {
			t.Fatalf("GNM produced %d edges, want %d", h.M(), m)
		}

		r, err := RandomRegular(n, 2*int(seed)+1, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		checkWellFormed(t, r)
		if r.MinDegree() != 2*int(seed)+1 || r.MaxDegree() != 2*int(seed)+1 {
			t.Fatalf("RandomRegular degrees [%d,%d], want exactly %d",
				r.MinDegree(), r.MaxDegree(), 2*int(seed)+1)
		}
	}
}

func TestGNMDenseRegimeWellFormed(t *testing.T) {
	// Above half density GNM switches to complement sampling.
	n, m := 60, 1500 // maxM = 1770
	g := GNM(n, m, rng.New(5))
	checkWellFormed(t, g)
	if g.M() != m {
		t.Fatalf("dense GNM produced %d edges, want %d", g.M(), m)
	}
}

func TestBuilderCSRDeduplicates(t *testing.T) {
	b := NewBuilderCSR(5, 0)
	if !b.Add(0, 1) || !b.Add(1, 0) || !b.Add(0, 1) {
		t.Fatal("valid adds rejected")
	}
	if b.Add(2, 2) {
		t.Fatal("self-loop accepted")
	}
	if b.Add(0, 5) || b.Add(-1, 3) {
		t.Fatal("out-of-range endpoint accepted")
	}
	b.Add(3, 2)
	if b.NumAdded() != 4 {
		t.Fatalf("NumAdded=%d, want 4 (dups counted until Build)", b.NumAdded())
	}
	g := b.Build()
	checkWellFormed(t, g)
	if g.M() != 2 {
		t.Fatalf("m=%d, want 2 after dedup", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatal("expected edges missing")
	}
}

// TestBuilderCSRMatchesBuilder feeds the same random edge stream to both
// construction paths and requires identical graphs.
func TestBuilderCSRMatchesBuilder(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		src := rng.New(seed)
		n := 50
		hash := NewBuilder(n)
		csr := NewBuilderCSR(n, 0)
		for i := 0; i < 400; i++ {
			u := NodeID(src.Intn(n))
			v := NodeID(src.Intn(n))
			hash.AddEdge(u, v)
			csr.Add(u, v)
		}
		g1, g2 := hash.Build(), csr.Build()
		checkWellFormed(t, g1)
		checkWellFormed(t, g2)
		if g1.M() != g2.M() {
			t.Fatalf("edge counts differ: %d vs %d", g1.M(), g2.M())
		}
		e1, e2 := g1.Edges(), g2.Edges()
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
			}
		}
	}
}

// TestInducedSubgraphMembershipPaths exercises both the dense-table and the
// map membership branches against a naive reference.
func TestInducedSubgraphMembershipPaths(t *testing.T) {
	g := GNP(300, 0.05, rng.New(9))
	small := []NodeID{1, 2, 3} // < n/64: map branch
	large := make([]NodeID, 0, 150)
	for v := 0; v < 300; v += 2 { // >= n/64: dense branch
		large = append(large, NodeID(v))
	}
	for _, vs := range [][]NodeID{small, large} {
		sub, orig := g.InducedSubgraph(vs)
		checkWellFormed(t, sub)
		if sub.N() != len(vs) {
			t.Fatalf("induced n=%d, want %d", sub.N(), len(vs))
		}
		for u := 0; u < sub.N(); u++ {
			for v := u + 1; v < sub.N(); v++ {
				if sub.HasEdge(NodeID(u), NodeID(v)) != g.HasEdge(orig[u], orig[v]) {
					t.Fatalf("induced edge (%d,%d) disagrees with original (%d,%d)",
						u, v, orig[u], orig[v])
				}
			}
		}
	}
}

func TestCSROffsetOverflowGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("newCSR accepted an edge count past the int32 offset range")
		}
	}()
	// Fabricate an impossible edge count without allocating: a fake slice
	// header is not constructible safely, so call the guard through a tiny
	// wrapper instead.
	guardHalfEdges(1 << 31)
}
