package stepsim

import (
	"errors"

	"dhc/internal/cycle"
	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/rotation"
)

// hyperRotation runs the orientation-aware hypernode rotation of DHC1
// Phase 2 at step granularity (the sequential twin of
// internal/core/hyper.go): each partition contributes a hypernode with an
// incoming port u_i and outgoing port v_i; the rotation process runs over
// hypernodes, flipping per-hypernode orientation on segment reversals and
// rejecting probes that land on an occupied entry port. It returns the full
// lifted Hamiltonian cycle and the number of steps (probes) consumed.
func hyperRotation(g *graph.Graph, subcycles []*cycle.Cycle, src *rng.Source) (*cycle.Cycle, int64, error) {
	k := len(subcycles)
	type portInfo struct {
		hyp int
		isU bool
	}
	ports := make(map[graph.NodeID]portInfo, 2*k)
	uOf := make([]graph.NodeID, k)
	vOf := make([]graph.NodeID, k)
	for i, sc := range subcycles {
		r := src.Intn(sc.Len())
		uOf[i] = sc.At(r)
		vOf[i] = sc.At(r - 1)
		ports[uOf[i]] = portInfo{hyp: i, isU: true}
		ports[vOf[i]] = portInfo{hyp: i, isU: false}
	}
	// Pools: candidate neighbor ports of other hypernodes, per port.
	pool := make(map[graph.NodeID][]graph.NodeID, 2*k)
	for p, info := range ports {
		for _, nb := range g.Neighbors(p) {
			if o, ok := ports[nb]; ok && o.hyp != info.hyp {
				pool[p] = append(pool[p], nb)
			}
		}
	}
	idx := make([]int32, k) // hyperpath position, 0 = off-path
	rev := make([]bool, k)  // orientation: false = enter u exit v
	idx[0] = 1
	head := 0
	pathLen := int32(1)
	maxSteps := 4 * rotation.DefaultMaxSteps(k)
	var steps int64

	exitPortOf := func(h int) graph.NodeID {
		if rev[h] {
			return uOf[h]
		}
		return vOf[h]
	}
	enterPortOf := func(h int) graph.NodeID {
		if rev[h] {
			return vOf[h]
		}
		return uOf[h]
	}
	popRandom := func(p graph.NodeID) (graph.NodeID, bool) {
		list := pool[p]
		if len(list) == 0 {
			return 0, false
		}
		i := src.Intn(len(list))
		t := list[i]
		list[i] = list[len(list)-1]
		pool[p] = list[:len(list)-1]
		return t, true
	}
	removeFrom := func(p, q graph.NodeID) {
		list := pool[p]
		for i, x := range list {
			if x == q {
				list[i] = list[len(list)-1]
				pool[p] = list[:len(list)-1]
				return
			}
		}
	}

	for {
		if steps >= maxSteps {
			return nil, steps, errors.New("hypernode rotation exceeded step budget")
		}
		x := exitPortOf(head)
		target, ok := popRandom(x)
		if !ok {
			return nil, steps, errors.New("hypernode head out of candidate edges")
		}
		steps++
		removeFrom(target, x)
		info := ports[target]
		kk := info.hyp
		switch {
		case idx[kk] == 1 && target == enterPortOf(kk) && pathLen == int32(k):
			// Closed: splice the lifted cycle.
			hc, err := liftHyperCycle(subcycles, uOf, vOf, idx, rev)
			return hc, steps, err
		case idx[kk] == 0:
			idx[kk] = pathLen + 1
			rev[kk] = !info.isU // entering at v means flipped orientation
			head = kk
			pathLen++
		case target == exitPortOf(kk):
			// Rotation at j = idx[kk]: reverse segment (j, h].
			j, h := idx[kk], pathLen
			newHead := -1
			for c := 0; c < k; c++ {
				if j < idx[c] && idx[c] <= h {
					idx[c] = h + j + 1 - idx[c]
					rev[c] = !rev[c]
					if idx[c] == h {
						newHead = c
					}
				}
			}
			if newHead < 0 {
				return nil, steps, errors.New("rotation produced no head")
			}
			head = newHead
		default:
			// Rejected probe: entry port occupied; head retries.
		}
	}
}

// liftHyperCycle splices partition subcycles into the full Hamiltonian cycle
// following hypernode indices and orientations.
func liftHyperCycle(subcycles []*cycle.Cycle, uOf, vOf []graph.NodeID, idx []int32, rev []bool) (*cycle.Cycle, error) {
	k := len(subcycles)
	byIdx := make([]int, k)
	for c := 0; c < k; c++ {
		if idx[c] < 1 || int(idx[c]) > k {
			return nil, errors.New("hypernode indices not a permutation")
		}
		byIdx[idx[c]-1] = c
	}
	var order []graph.NodeID
	for _, c := range byIdx {
		sc := subcycles[c]
		// Forward arc u..v in subcycle orientation (v is u's predecessor,
		// so the arc covers the whole partition).
		start := 0
		for i := 0; i < sc.Len(); i++ {
			if sc.At(i) == uOf[c] {
				start = i
				break
			}
		}
		arc := make([]graph.NodeID, 0, sc.Len())
		for i := 0; i < sc.Len(); i++ {
			arc = append(arc, sc.At(start+i))
		}
		if rev[c] {
			for i, j := 0, len(arc)-1; i < j; i, j = i+1, j-1 {
				arc[i], arc[j] = arc[j], arc[i]
			}
		}
		order = append(order, arc...)
	}
	return cycle.FromOrder(order), nil
}
