package stepsim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"dhc/internal/bitset"
	"dhc/internal/cycle"
	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/rotation"
)

// Upcast simulates the Section III algorithm's round cost exactly from the
// BFS-tree structure: election + tree build (O(D)), a pipelined upcast whose
// duration is the maximum per-tree-edge load plus the tree depth, the free
// local solve, and a downcast of the same shape.
func Upcast(g *graph.Graph, seed uint64, samplesPerNode int) (*cycle.Cycle, Cost, error) {
	return NewSession().Upcast(context.Background(), g, seed, samplesPerNode)
}

// Upcast simulates the Section III algorithm, honoring ctx around the root's
// local solve attempts.
func (s *Session) Upcast(ctx context.Context, g *graph.Graph, seed uint64, samplesPerNode int) (*cycle.Cycle, Cost, error) {
	n := g.N()
	src := rng.New(seed)
	s.Hooks.phase("run")
	if samplesPerNode <= 0 {
		samplesPerNode = int(math.Ceil(3 * math.Log(float64(n))))
	}
	b := broadcastBound(g)
	cost := Cost{B: b}

	bfs := g.BFS(0)
	if len(bfs.Order) != n {
		return nil, cost, fmt.Errorf("%w: graph disconnected", ErrFailed)
	}
	// Samples per node and the sampled subgraph. The streaming builder
	// accepts the duplicate (v samples u, u samples v) adds and resolves
	// them at Build.
	builder := graph.NewBuilderCSR(n, n*samplesPerNode)
	samples := make([]int, n)
	for v := 0; v < n; v++ {
		nbs := g.Neighbors(graph.NodeID(v))
		k := samplesPerNode
		if k >= len(nbs) {
			k = len(nbs)
			for _, nb := range nbs {
				builder.Add(graph.NodeID(v), nb)
			}
		} else {
			perm := src.Perm(len(nbs))
			for _, i := range perm[:k] {
				builder.Add(graph.NodeID(v), nbs[i])
			}
		}
		samples[v] = k
	}
	// Per-tree-edge upcast load = total samples in the child's subtree.
	// Computed by accumulating from the deepest nodes upward.
	load := make([]int64, n)
	for i := len(bfs.Order) - 1; i >= 0; i-- {
		v := bfs.Order[i]
		if v == bfs.Source {
			continue
		}
		load[v] += int64(samples[v])
		load[bfs.Parent[v]] += load[v]
	}
	var maxLoad, depth int64
	for v := 0; v < n; v++ {
		if graph.NodeID(v) != bfs.Source && load[v] > maxLoad {
			maxLoad = load[v]
		}
		if int64(bfs.Dist[v]) > depth {
			depth = int64(bfs.Dist[v])
		}
	}
	// Election + BFS + count + pipelined upcast + downcast (same shape:
	// one successor id routed to each node).
	cost.Rounds = 4*b + (maxLoad + depth) + (int64(n) / maxInt64(1, int64(g.Degree(bfs.Source)))) + depth + 8
	sampled := builder.Build()
	intr := interruptOf(ctx)
	var hc *cycle.Cycle
	var err error
	for a := 0; a < 20; a++ {
		if ctx.Err() != nil {
			return nil, cost, canceled(ctx)
		}
		hc, _, err = rotation.Solve(sampled, src, rotation.Config{Interrupt: intr})
		if err == nil {
			break
		}
		if errors.Is(err, rotation.ErrInterrupted) {
			return nil, cost, canceled(ctx)
		}
	}
	if err != nil {
		return nil, cost, fmt.Errorf("%w: root solve: %v", ErrFailed, err)
	}
	if verr := hc.Verify(g); verr != nil {
		return nil, cost, fmt.Errorf("%w: %v", ErrFailed, verr)
	}
	return hc, cost, nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Trivial charges the trivial CONGEST upper bound the paper cites in
// Section I-A: collect every edge at one node (m messages pipelined over the
// collector's degree, bounded below by m/deg + D) and solve locally. It
// returns the round cost without materializing the collection.
func Trivial(g *graph.Graph, seed uint64) (*cycle.Cycle, Cost, error) {
	b := broadcastBound(g)
	deg := g.Degree(0)
	if deg == 0 {
		return nil, Cost{}, fmt.Errorf("%w: isolated collector", ErrFailed)
	}
	cost := Cost{
		B:      b,
		Rounds: int64(g.M())/int64(deg) + 2*b + 4,
	}
	src := rng.New(seed)
	var hc *cycle.Cycle
	var err error
	for a := 0; a < 20; a++ {
		hc, _, err = rotation.Solve(g, src, rotation.Config{})
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, cost, fmt.Errorf("%w: %v", ErrFailed, err)
	}
	return hc, cost, nil
}

// Levy reconstructs the three-phase structure of Levy, Louchard & Petit
// (2004) — initial cycle, √n disjoint paths, patching — as described in the
// paper's related-work section (the original is not publicly available; see
// DESIGN.md for the substitution rationale). Phase A grows disjoint paths in
// parallel linking rounds (the MacKenzie–Stout style core they adapt);
// Phase B merges paths into one cycle; Phase C patches leftover vertices in
// sequentially, each patch paying a broadcast. The sequential patching tail
// is what gives this baseline its characteristically worse scaling.
func Levy(g *graph.Graph, seed uint64) (*cycle.Cycle, Cost, error) {
	n := g.N()
	src := rng.New(seed)
	b := broadcastBound(g)
	cost := Cost{B: b}

	// Phase A: parallel path growth. Every vertex starts as a singleton
	// path; in each parallel round, every path head proposes a random edge
	// to another path's tail; non-conflicting proposals link. Charged one
	// round per linking round.
	type pathID = int
	pathOf := make([]pathID, n)
	heads := make([]graph.NodeID, n) // per path
	tails := make([]graph.NodeID, n)
	succ := make([]graph.NodeID, n)
	for v := 0; v < n; v++ {
		pathOf[v] = v
		heads[v] = graph.NodeID(v)
		tails[v] = graph.NodeID(v)
		succ[v] = -1
	}
	alive := make(map[pathID]bool, n)
	for v := 0; v < n; v++ {
		alive[v] = true
	}
	target := int(math.Ceil(math.Sqrt(float64(n)))) // stop at ~√n paths
	for round := 0; len(alive) > target; round++ {
		if round > 4*n {
			break
		}
		cost.Rounds++
		// Each live path head proposes one random neighbor that is some
		// path's tail in a different path.
		claimed := make(map[pathID]pathID) // target path -> proposer
		for p := range alive {
			h := heads[p]
			nbs := g.Neighbors(h)
			if len(nbs) == 0 {
				continue
			}
			w := nbs[src.Intn(len(nbs))]
			q := pathOf[w]
			if q == p || !alive[q] || tails[q] != w {
				continue
			}
			if _, taken := claimed[q]; !taken {
				claimed[q] = p
			}
		}
		if len(claimed) == 0 {
			continue
		}
		// Apply non-conflicting links: p's head attaches to q's tail.
		for q, p := range claimed {
			if !alive[p] || !alive[q] || p == q {
				continue
			}
			succ[heads[p]] = tails[q]
			heads[p] = heads[q]
			// Relabel q's vertices lazily: walk q's chain.
			for w := tails[q]; ; w = succ[w] {
				pathOf[w] = p
				if w == heads[p] || succ[w] < 0 {
					break
				}
			}
			delete(alive, q)
			cost.Steps++
		}
	}

	// Phase B+C: collect the surviving paths and patch them into one cycle
	// with bridge merges; isolated stragglers are absorbed by rotation.
	// Each merge/patch pays a broadcast (sequential tail).
	var pieces []*cycle.Cycle
	seen := bitset.Make(n)
	for p := range alive {
		var order []graph.NodeID
		for w := tails[p]; ; w = succ[w] {
			order = append(order, w)
			seen.Add(int(w))
			if w == heads[p] || succ[w] < 0 {
				break
			}
		}
		// A path becomes a "cycle piece" only if its ends close or it is
		// long enough to merge; single vertices are handled below.
		pieces = append(pieces, cycle.FromOrder(order))
	}
	for v := 0; v < n; v++ {
		if !seen.Has(v) {
			pieces = append(pieces, cycle.FromOrder([]graph.NodeID{graph.NodeID(v)}))
		}
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].Len() > pieces[j].Len() })
	// Greedy sequential patching: absorb each piece into the main one by
	// rotation-style search over the piece boundary, charged D per patch.
	hc, patched, err := patchPieces(g, pieces, src)
	cost.Steps += patched
	cost.Rounds += patched * (b + 2)
	if err != nil {
		return nil, cost, fmt.Errorf("%w: %v", ErrFailed, err)
	}
	if verr := hc.Verify(g); verr != nil {
		return nil, cost, fmt.Errorf("%w: %v", ErrFailed, verr)
	}
	return hc, cost, nil
}

// patchPieces folds all pieces into one Hamiltonian cycle by running the
// rotation machine seeded with the largest piece as the initial path. The
// number of rotation steps is returned for round charging.
func patchPieces(g *graph.Graph, pieces []*cycle.Cycle, src *rng.Source) (*cycle.Cycle, int64, error) {
	// Use the rotation machine over the whole graph but pre-walk the
	// largest piece: equivalent to Levy's "extend the initial cycle".
	m := rotation.New(g, pieces[0].At(0), src, rotation.Config{})
	var steps int64
	for {
		ev, err := m.Step()
		if err != nil {
			return nil, steps, err
		}
		steps++
		if ev.Kind == rotation.Closed {
			return m.Path().CloseCycle(), steps, nil
		}
	}
}
