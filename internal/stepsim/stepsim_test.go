package stepsim

import (
	"context"
	"math"
	"testing"

	"dhc/internal/cycle"
	"dhc/internal/graph"
	"dhc/internal/rng"
)

func denseGNP(n int, p float64, seed uint64) *graph.Graph {
	return graph.GNP(n, p, rng.New(seed))
}

func TestDRASim(t *testing.T) {
	n := 500
	p := 10 * math.Log(float64(n)) / float64(n)
	g := denseGNP(n, p, 1)
	hc, cost, err := DRA(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Verify(g); err != nil {
		t.Fatal(err)
	}
	if cost.Rounds <= cost.Steps {
		t.Fatalf("rounds %d should exceed steps %d (rotations pay D)", cost.Rounds, cost.Steps)
	}
}

func TestDHC1Sim(t *testing.T) {
	g := denseGNP(600, 0.7, 3)
	hc, cost, err := DHC1(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Verify(g); err != nil {
		t.Fatal(err)
	}
	if cost.Phase1Rounds == 0 || cost.Phase2Rounds == 0 {
		t.Fatalf("phase split missing: %+v", cost)
	}
}

func TestDHC2Sim(t *testing.T) {
	g := denseGNP(800, 0.5, 5)
	hc, cost, err := DHC2(g, 6, Options{NumColors: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Verify(g); err != nil {
		t.Fatal(err)
	}
	if cost.Rounds != cost.Phase1Rounds+cost.Phase2Rounds {
		t.Fatalf("phase accounting inconsistent: %+v", cost)
	}
}

func TestDHC2SimWithDelta(t *testing.T) {
	n := 1000
	p := graph.HCThresholdP(n, 16, 0.5)
	g := denseGNP(n, p, 7)
	hc, _, err := DHC2(g, 8, Options{Delta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestUpcastSim(t *testing.T) {
	n := 1000
	p := 3 * math.Log(float64(n)) / math.Sqrt(float64(n))
	g := denseGNP(n, p, 9)
	hc, cost, err := Upcast(g, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Verify(g); err != nil {
		t.Fatal(err)
	}
	if cost.Rounds <= 0 {
		t.Fatal("no rounds charged")
	}
}

func TestTrivialSim(t *testing.T) {
	g := denseGNP(300, 0.2, 11)
	hc, cost, err := Trivial(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Verify(g); err != nil {
		t.Fatal(err)
	}
	if cost.Rounds < int64(g.M())/int64(g.Degree(0)) {
		t.Fatalf("trivial baseline must pay ~m/deg rounds, got %d", cost.Rounds)
	}
}

func TestLevySim(t *testing.T) {
	n := 400
	p := 12 * math.Log(float64(n)) / float64(n)
	g := denseGNP(n, p, 13)
	hc, cost, err := Levy(g, 14)
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Verify(g); err != nil {
		t.Fatal(err)
	}
	if cost.Rounds == 0 {
		t.Fatal("no rounds charged")
	}
}

func TestDRAFailsOnPath(t *testing.T) {
	if _, _, err := DRA(graph.Path(20), 1, 2); err == nil {
		t.Fatal("path accepted")
	}
}

func TestDHC2DenserIsFaster(t *testing.T) {
	// The paper's headline: the denser the graph, the smaller the running
	// time. Compare rounds at delta=0.3 vs delta=0.6 (same n, suitable p).
	n := 2000
	fast, slow := int64(0), int64(0)
	for seed := uint64(0); seed < 2; seed++ {
		gDense := denseGNP(n, graph.HCThresholdP(n, 20, 0.3), 100+seed)
		gSparse := denseGNP(n, graph.HCThresholdP(n, 20, 0.6), 200+seed)
		_, cd, err := DHC2(gDense, seed, Options{Delta: 0.3})
		if err != nil {
			t.Fatalf("dense seed %d: %v", seed, err)
		}
		_, cs, err := DHC2(gSparse, seed, Options{Delta: 0.6})
		if err != nil {
			t.Fatalf("sparse seed %d: %v", seed, err)
		}
		fast += cd.Rounds
		slow += cs.Rounds
	}
	if fast >= slow {
		t.Fatalf("denser graph not faster: delta=0.3 %d rounds vs delta=0.6 %d", fast, slow)
	}
}

func TestDHCWorkerEdgeCases(t *testing.T) {
	g := denseGNP(60, 0.9, 1)
	// More workers than partitions, and the degenerate K=1 shortcut, must
	// behave exactly like the sequential path.
	hc1, c1, err := DHC2(g, 1, Options{NumColors: 1, Workers: 8})
	if err != nil {
		t.Fatalf("K=1 workers=8: %v", err)
	}
	hc2, c2, err := DHC2(g, 1, Options{NumColors: 1})
	if err != nil {
		t.Fatalf("K=1 sequential: %v", err)
	}
	if c1 != c2 {
		t.Fatalf("K=1 costs diverge: %+v vs %+v", c1, c2)
	}
	o1, o2 := hc1.Order(), hc2.Order()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("K=1 cycles diverge")
		}
	}
	if _, _, err := DHC1(g, 2, Options{Workers: 16}); err != nil {
		t.Fatalf("DHC1 workers=16 on n=60: %v", err)
	}
}

// TestMergeTreeWorkerDeterminism pins runMergeTree in isolation: the same
// subcycles and seed must produce an identical merged cycle and level count
// at every workers value. Because different worker counts route different
// pair sequences through each reusable scratch buffer, agreement here also
// proves mergePair's scratch wipe leaves no state behind between pairs.
func TestMergeTreeWorkerDeterminism(t *testing.T) {
	g := denseGNP(600, 0.7, 3)
	src := rng.New(9)
	const k = 16
	classes := partition(g.N(), k, src)
	cycles := make([]*cycle.Cycle, k)
	for c := 0; c < k; c++ {
		out := solvePartition(context.Background(), g, c, classes[c], src.Split(uint64(c)+1), 6)
		if out.err != nil {
			t.Fatalf("partition %d: %v", c, out.err)
		}
		cycles[c] = out.cyc
	}
	var wantOrder []graph.NodeID
	var wantLevels int64
	for _, workers := range []int{0, 1, 3, 8, 100} {
		in := append([]*cycle.Cycle(nil), cycles...)
		hc, levels, err := NewSession().runMergeTree(context.Background(), g, in, rng.New(77), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := hc.Verify(g); err != nil {
			t.Fatalf("workers=%d: merged cycle invalid: %v", workers, err)
		}
		if wantOrder == nil {
			wantOrder = hc.Order()
			wantLevels = levels
			if levels != 4 {
				t.Fatalf("16 subcycles should merge in 4 levels, got %d", levels)
			}
			continue
		}
		if levels != wantLevels {
			t.Fatalf("workers=%d: levels %d, want %d", workers, levels, wantLevels)
		}
		got := hc.Order()
		for i := range wantOrder {
			if got[i] != wantOrder[i] {
				t.Fatalf("workers=%d: cycle diverges at position %d", workers, i)
			}
		}
	}
}
