// Package stepsim executes the paper's algorithms at rotation-step
// granularity and charges synchronous-round costs the same way the exact
// CONGEST engine does (one round per extension, BroadcastRounds+2 per
// rotation, O(B) per phase of scaffolding). It exists because an exact
// per-edge simulation of G(n, c·ln n/√n) has Θ(n^1.5·ln n) edges and is too
// slow beyond n ≈ a few thousand, while the theorems are about asymptotic
// shape: stepsim reproduces the round/step counts for n up to 10^6 in
// seconds. Agreement with the exact engine on overlapping sizes is checked
// by crosscheck tests (see crosscheck_test.go at the repository root).
//
// Phase 1 of DHC1/DHC2 — one independent DRA run per color class — is
// embarrassingly parallel, and Options.Workers shards it across a bounded
// worker pool. The sharded engine follows the same deterministic-merge
// discipline as internal/congest's parallel executor: every partition draws
// from a private RNG stream split off the run seed, and results are merged
// in partition-id order, so any Workers value (including 0 and 1) produces
// byte-identical cycles and costs.
package stepsim

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"dhc/internal/cycle"
	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/rotation"
)

// ErrFailed is returned when a simulated run fails to build a Hamiltonian
// cycle.
var ErrFailed = errors.New("stepsim: run failed")

// Options configures the DHC simulations.
type Options struct {
	// NumColors overrides the partition count K (0 derives it from n and,
	// for DHC2, Delta).
	NumColors int
	// Delta is DHC2's sparsity exponent (0 < δ ≤ 1); ignored by DHC1.
	Delta float64
	// MaxAttempts bounds restart retries (0 = 6).
	MaxAttempts int
	// Workers bounds the phase-1 worker pool; values <= 1 run partitions
	// sequentially. Results are identical for every value.
	Workers int
}

func (o Options) attempts() int {
	if o.MaxAttempts < 1 {
		return 6
	}
	return o.MaxAttempts
}

// Cost is the round/step accounting of a simulated run.
type Cost struct {
	Rounds     int64
	Steps      int64
	Extensions int64
	Rotations  int64
	// B is the broadcast bound used to price rotations.
	B int64
	// Phase1Rounds / Phase2Rounds split the total for the DHC algorithms.
	Phase1Rounds int64
	Phase2Rounds int64
	// Restarts counts partition-level retries.
	Restarts int64
}

// broadcastBound mirrors the exact engine's choice: one BFS gives
// 2·ecc+1 >= diameter.
func broadcastBound(g *graph.Graph) int64 {
	if g.N() == 0 {
		return 1
	}
	return int64(2*g.BFS(0).Ecc + 1)
}

// chargeRotationRounds prices a machine run like the adaptive exact engine:
// extensions cost one round, rotations cost B+2 (broadcast settle plus the
// probe/response exchange).
func chargeRotationRounds(st rotation.Stats, b int64) int64 {
	return st.Extensions + st.Rotations*(b+2) + 2
}

// DRA simulates the standalone Distributed Rotation Algorithm on g.
func DRA(g *graph.Graph, seed uint64, maxAttempts int) (*cycle.Cycle, Cost, error) {
	src := rng.New(seed)
	b := broadcastBound(g)
	cost := Cost{B: b}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr error
	for a := 0; a < maxAttempts; a++ {
		m := rotation.New(g, graph.NodeID(src.Intn(g.N())), src, rotation.Config{})
		hc, st, err := m.Run()
		cost.Steps += st.Steps
		cost.Extensions += st.Extensions
		cost.Rotations += st.Rotations
		cost.Rounds += chargeRotationRounds(st, b)
		if err == nil {
			return hc, cost, nil
		}
		lastErr = err
		cost.Restarts++
		cost.Rounds += 2*b + 2 // failure flood + quiet period
	}
	return nil, cost, fmt.Errorf("%w: %v", ErrFailed, lastErr)
}

// partition assigns each vertex one of k colors uniformly, mirroring DHC
// Phase 1.
func partition(n, k int, src *rng.Source) [][]graph.NodeID {
	classes := make([][]graph.NodeID, k)
	for v := 0; v < n; v++ {
		c := src.Intn(k)
		classes[c] = append(classes[c], graph.NodeID(v))
	}
	return classes
}

// phase1Result carries per-partition subcycles in original vertex ids.
type phase1Result struct {
	cycles []*cycle.Cycle // per color
	// maxRounds is the slowest partition's DRA cost (they run in parallel).
	maxRounds int64
	steps     int64
	restarts  int64
	sizes     []int
	scopeB    int64 // max partition broadcast bound
}

// partOutcome is one partition's fully independent result, produced by
// solvePartition from the partition's private RNG stream. Outcomes are
// merged in partition-id order, never in completion order.
type partOutcome struct {
	cyc      *cycle.Cycle
	steps    int64
	rounds   int64
	restarts int64
	b        int64
	err      error
}

// solvePartition runs DRA (with restarts) on the subgraph induced by class,
// drawing all randomness from the partition's private stream.
func solvePartition(g *graph.Graph, c int, class []graph.NodeID, src *rng.Source, maxAttempts int) partOutcome {
	out := partOutcome{b: 1}
	if len(class) < 3 {
		out.err = fmt.Errorf("%w: partition %d has %d nodes", ErrFailed, c, len(class))
		return out
	}
	sub, orig := g.InducedSubgraph(class)
	if !sub.Connected() {
		out.err = fmt.Errorf("%w: partition %d disconnected", ErrFailed, c)
		return out
	}
	out.b = broadcastBound(sub)
	for a := 0; a < maxAttempts; a++ {
		m := rotation.New(sub, graph.NodeID(src.Intn(sub.N())), src, rotation.Config{})
		hc, st, err := m.Run()
		out.steps += st.Steps
		out.rounds += chargeRotationRounds(st, out.b)
		if err == nil {
			out.cyc = hc.Relabel(orig)
			return out
		}
		out.restarts++
		out.rounds += 2*out.b + 2
	}
	out.err = fmt.Errorf("%w: partition %d exhausted %d attempts", ErrFailed, c, maxAttempts)
	return out
}

// runPhase1 builds per-partition Hamiltonian subcycles with restarts. A
// coloring that produces an unusably small or disconnected partition is
// redrawn entirely (the distributed analogue: a failure flood triggers a
// global recolor), up to maxAttempts times.
func runPhase1(g *graph.Graph, k int, src *rng.Source, maxAttempts, workers int) (*phase1Result, error) {
	var err error
	for a := 0; a < maxAttempts; a++ {
		var res *phase1Result
		res, err = runPhase1Once(g, k, src, maxAttempts, workers)
		if err == nil {
			return res, nil
		}
	}
	return nil, err
}

// runPhase1Once colors the graph from the main stream, then solves the K
// color classes — sequentially or on a bounded worker pool. Each class only
// ever touches its own split stream and its own outcome slot, and outcomes
// are folded in partition-id order, so the result is a pure function of the
// seed for every workers value.
func runPhase1Once(g *graph.Graph, k int, src *rng.Source, maxAttempts, workers int) (*phase1Result, error) {
	classes := partition(g.N(), k, src)
	streams := make([]*rng.Source, k)
	for c := 0; c < k; c++ {
		streams[c] = src.Split(uint64(c) + 1)
	}
	outs := make([]partOutcome, k)
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		for c := 0; c < k; c++ {
			outs[c] = solvePartition(g, c, classes[c], streams[c], maxAttempts)
			if outs[c].err != nil {
				// The id-order merge below stops at the first error anyway,
				// so skipping the remaining partitions changes nothing.
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := range work {
					outs[c] = solvePartition(g, c, classes[c], streams[c], maxAttempts)
				}
			}()
		}
		for c := 0; c < k; c++ {
			work <- c
		}
		close(work)
		wg.Wait()
	}

	res := &phase1Result{
		cycles: make([]*cycle.Cycle, k),
		sizes:  make([]int, k),
		scopeB: 1,
	}
	for c := 0; c < k; c++ {
		out := outs[c]
		if out.err != nil {
			return nil, out.err
		}
		res.cycles[c] = out.cyc
		res.sizes[c] = len(classes[c])
		res.steps += out.steps
		res.restarts += out.restarts
		if out.rounds > res.maxRounds {
			res.maxRounds = out.rounds
		}
		if out.b > res.scopeB {
			res.scopeB = out.b
		}
	}
	return res, nil
}

// scaffolding is the Phase 1 setup cost in rounds (color exchange, scoped
// election, scope BFS, size count, barrier), matching internal/core's
// schedule.
func scaffolding(b int64) int64 { return 4*b + 8 + 2*b + 2 }

// DHC1 simulates Algorithm 2: Phase 1 partitioning plus the hypernode
// rotation of Phase 2 (with port orientations; see internal/core/hyper.go).
func DHC1(g *graph.Graph, seed uint64, opts Options) (*cycle.Cycle, Cost, error) {
	n := g.N()
	numColors := opts.NumColors
	if numColors <= 0 {
		numColors = int(math.Round(math.Sqrt(float64(n))))
	}
	if numColors > n/3 {
		numColors = n / 3
	}
	if numColors < 1 {
		numColors = 1
	}
	src := rng.New(seed)
	maxAttempts := opts.attempts()
	p1, err := runPhase1(g, numColors, src, maxAttempts, opts.Workers)
	if err != nil {
		return nil, Cost{}, err
	}
	gb := broadcastBound(g)
	cost := Cost{
		B:            p1.scopeB,
		Steps:        p1.steps,
		Restarts:     p1.restarts,
		Phase1Rounds: scaffolding(p1.scopeB) + p1.maxRounds,
	}
	if numColors == 1 {
		cost.Rounds = cost.Phase1Rounds
		hc := p1.cycles[0]
		if err := hc.Verify(g); err != nil {
			return nil, cost, fmt.Errorf("%w: %v", ErrFailed, err)
		}
		return hc, cost, nil
	}
	var hc *cycle.Cycle
	var p2rounds int64
	ok := false
	for a := 0; a < maxAttempts; a++ {
		var steps int64
		hc, steps, err = hyperRotation(g, p1.cycles, src)
		// Selection flood + port announcement + rotation steps priced at
		// the global broadcast bound (hyper floods are global).
		p2rounds += gb + 2 + steps*(gb+2)
		cost.Steps += steps
		if err == nil {
			ok = true
			break
		}
		cost.Restarts++
		p2rounds += 2*gb + 2
	}
	cost.Phase2Rounds = p2rounds
	cost.Rounds = cost.Phase1Rounds + cost.Phase2Rounds
	if !ok {
		return nil, cost, fmt.Errorf("%w: phase 2: %v", ErrFailed, err)
	}
	if err := hc.Verify(g); err != nil {
		return nil, cost, fmt.Errorf("%w: %v", ErrFailed, err)
	}
	return hc, cost, nil
}

// DHC2 simulates Algorithm 3: Phase 1 partitioning plus ⌈log₂ K⌉ parallel
// pairwise merge levels.
func DHC2(g *graph.Graph, seed uint64, opts Options) (*cycle.Cycle, Cost, error) {
	n := g.N()
	numColors := opts.NumColors
	if numColors <= 0 {
		if opts.Delta <= 0 || opts.Delta > 1 {
			return nil, Cost{}, fmt.Errorf("stepsim: delta %v outside (0, 1]", opts.Delta)
		}
		numColors = int(math.Round(math.Pow(float64(n), 1-opts.Delta)))
	}
	if numColors > n/3 {
		numColors = n / 3
	}
	if numColors < 1 {
		numColors = 1
	}
	src := rng.New(seed)
	maxAttempts := opts.attempts()
	p1, err := runPhase1(g, numColors, src, maxAttempts, opts.Workers)
	if err != nil {
		return nil, Cost{}, err
	}
	cost := Cost{
		B:            p1.scopeB,
		Steps:        p1.steps,
		Restarts:     p1.restarts,
		Phase1Rounds: scaffolding(p1.scopeB) + p1.maxRounds,
	}
	cycles := make([]*cycle.Cycle, 0, numColors)
	cycles = append(cycles, p1.cycles...)
	levels := int64(0)
	for len(cycles) > 1 {
		levels++
		next := make([]*cycle.Cycle, 0, (len(cycles)+1)/2)
		for i := 0; i+1 < len(cycles); i += 2 {
			merged, err := mergePair(g, cycles[i], cycles[i+1], src)
			if err != nil {
				return nil, cost, fmt.Errorf("%w: merge level %d: %v", ErrFailed, levels, err)
			}
			next = append(next, merged)
		}
		if len(cycles)%2 == 1 {
			next = append(next, cycles[len(cycles)-1])
		}
		cycles = next
	}
	// Each level costs 2B+10 rounds (probe exchanges plus two scoped
	// broadcasts), mirroring internal/core/merge.go.
	cost.Phase2Rounds = levels * (2*p1.scopeB + 10)
	cost.Rounds = cost.Phase1Rounds + cost.Phase2Rounds
	hc := cycles[0]
	if err := hc.Verify(g); err != nil {
		return nil, cost, fmt.Errorf("%w: %v", ErrFailed, err)
	}
	return hc, cost, nil
}

// mergePair finds a bridge between two cycles (paper Fig. 3) and merges
// them. It mirrors the distributed bridge search: for each cycle edge
// (v -> u) of the first cycle, a neighbor w on the second cycle bridges if
// (v, w) and (u, succ(w)) — or (u, pred(w)) — are graph edges.
func mergePair(g *graph.Graph, c1, c2 *cycle.Cycle, src *rng.Source) (*cycle.Cycle, error) {
	on2 := make(map[graph.NodeID]int, c2.Len())
	for i := 0; i < c2.Len(); i++ {
		on2[c2.At(i)] = i
	}
	// Scan first-cycle edges in random rotation order so merges do not
	// systematically favor low ids.
	offset := src.Intn(c1.Len())
	for i := 0; i < c1.Len(); i++ {
		v := c1.At(offset + i)
		u := c1.At(offset + i + 1)
		for _, w := range g.Neighbors(v) {
			wi, ok := on2[w]
			if !ok {
				continue
			}
			wSucc := c2.At(wi + 1)
			wPred := c2.At(wi - 1)
			if g.HasEdge(u, wSucc) {
				b := cycle.Bridge{
					E1: cycle.OrientedEdge{V: v, U: u},
					E2: cycle.OrientedEdge{V: w, U: wSucc},
				}
				return cycle.MergeTwo(c1, c2, b)
			}
			if g.HasEdge(u, wPred) {
				b := cycle.Bridge{
					E1:      cycle.OrientedEdge{V: v, U: u},
					E2:      cycle.OrientedEdge{V: wPred, U: w},
					Crossed: true,
				}
				return cycle.MergeTwo(c1, c2, b)
			}
		}
	}
	return nil, errors.New("no bridge found")
}
