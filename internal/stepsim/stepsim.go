// Package stepsim executes the paper's algorithms at rotation-step
// granularity and charges synchronous-round costs the same way the exact
// CONGEST engine does (one round per extension, BroadcastRounds+2 per
// rotation, O(B) per phase of scaffolding). It exists because an exact
// per-edge simulation of G(n, c·ln n/√n) has Θ(n^1.5·ln n) edges and is too
// slow beyond n ≈ a few thousand, while the theorems are about asymptotic
// shape: stepsim reproduces the round/step counts for n up to 10^6 in
// seconds. Agreement with the exact engine on overlapping sizes is checked
// by crosscheck tests.
package stepsim

import (
	"errors"
	"fmt"
	"math"

	"dhc/internal/cycle"
	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/rotation"
)

// ErrFailed is returned when a simulated run fails to build a Hamiltonian
// cycle.
var ErrFailed = errors.New("stepsim: run failed")

// Cost is the round/step accounting of a simulated run.
type Cost struct {
	Rounds     int64
	Steps      int64
	Extensions int64
	Rotations  int64
	// B is the broadcast bound used to price rotations.
	B int64
	// Phase1Rounds / Phase2Rounds split the total for the DHC algorithms.
	Phase1Rounds int64
	Phase2Rounds int64
	// Restarts counts partition-level retries.
	Restarts int64
}

// broadcastBound mirrors the exact engine's choice: one BFS gives
// 2·ecc+1 >= diameter.
func broadcastBound(g *graph.Graph) int64 {
	if g.N() == 0 {
		return 1
	}
	return int64(2*g.BFS(0).Ecc + 1)
}

// chargeRotationRounds prices a machine run like the adaptive exact engine:
// extensions cost one round, rotations cost B+2 (broadcast settle plus the
// probe/response exchange).
func chargeRotationRounds(st rotation.Stats, b int64) int64 {
	return st.Extensions + st.Rotations*(b+2) + 2
}

// DRA simulates the standalone Distributed Rotation Algorithm on g.
func DRA(g *graph.Graph, seed uint64, maxAttempts int) (*cycle.Cycle, Cost, error) {
	src := rng.New(seed)
	b := broadcastBound(g)
	cost := Cost{B: b}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr error
	for a := 0; a < maxAttempts; a++ {
		m := rotation.New(g, graph.NodeID(src.Intn(g.N())), src, rotation.Config{})
		hc, st, err := m.Run()
		cost.Steps += st.Steps
		cost.Extensions += st.Extensions
		cost.Rotations += st.Rotations
		cost.Rounds += chargeRotationRounds(st, b)
		if err == nil {
			return hc, cost, nil
		}
		lastErr = err
		cost.Restarts++
		cost.Rounds += 2*b + 2 // failure flood + quiet period
	}
	return nil, cost, fmt.Errorf("%w: %v", ErrFailed, lastErr)
}

// partition assigns each vertex one of k colors uniformly, mirroring DHC
// Phase 1.
func partition(n, k int, src *rng.Source) [][]graph.NodeID {
	classes := make([][]graph.NodeID, k)
	for v := 0; v < n; v++ {
		c := src.Intn(k)
		classes[c] = append(classes[c], graph.NodeID(v))
	}
	return classes
}

// phase1Result carries one partition's subcycle in original vertex ids.
type phase1Result struct {
	cycles []*cycle.Cycle // per color, nil on failure
	// maxRounds is the slowest partition's DRA cost (they run in parallel).
	maxRounds int64
	steps     int64
	restarts  int64
	sizes     []int
	scopeB    int64 // max partition broadcast bound
}

// runPhase1 builds per-partition Hamiltonian subcycles with restarts. A
// coloring that produces an unusably small or disconnected partition is
// redrawn entirely (the distributed analogue: a failure flood triggers a
// global recolor), up to maxAttempts times.
func runPhase1(g *graph.Graph, k int, src *rng.Source, maxAttempts int) (*phase1Result, error) {
	var err error
	for a := 0; a < maxAttempts; a++ {
		var res *phase1Result
		res, err = runPhase1Once(g, k, src, maxAttempts)
		if err == nil {
			return res, nil
		}
	}
	return nil, err
}

func runPhase1Once(g *graph.Graph, k int, src *rng.Source, maxAttempts int) (*phase1Result, error) {
	classes := partition(g.N(), k, src)
	res := &phase1Result{
		cycles: make([]*cycle.Cycle, k),
		sizes:  make([]int, k),
		scopeB: 1,
	}
	for c, class := range classes {
		res.sizes[c] = len(class)
		if len(class) < 3 {
			return nil, fmt.Errorf("%w: partition %d has %d nodes", ErrFailed, c, len(class))
		}
		sub, orig := g.InducedSubgraph(class)
		if !sub.Connected() {
			return nil, fmt.Errorf("%w: partition %d disconnected", ErrFailed, c)
		}
		b := broadcastBound(sub)
		if b > res.scopeB {
			res.scopeB = b
		}
		var rounds int64
		var got *cycle.Cycle
		for a := 0; a < maxAttempts; a++ {
			m := rotation.New(sub, graph.NodeID(src.Intn(sub.N())), src, rotation.Config{})
			hc, st, err := m.Run()
			res.steps += st.Steps
			rounds += chargeRotationRounds(st, b)
			if err == nil {
				got = hc.Relabel(orig)
				break
			}
			res.restarts++
			rounds += 2*b + 2
		}
		if got == nil {
			return nil, fmt.Errorf("%w: partition %d exhausted %d attempts", ErrFailed, c, maxAttempts)
		}
		res.cycles[c] = got
		if rounds > res.maxRounds {
			res.maxRounds = rounds
		}
	}
	return res, nil
}

// scaffolding is the Phase 1 setup cost in rounds (color exchange, scoped
// election, scope BFS, size count, barrier), matching internal/core's
// schedule.
func scaffolding(b int64) int64 { return 4*b + 8 + 2*b + 2 }

// DHC1 simulates Algorithm 2: Phase 1 partitioning plus the hypernode
// rotation of Phase 2 (with port orientations; see internal/core/hyper.go).
func DHC1(g *graph.Graph, seed uint64, numColors int, maxAttempts int) (*cycle.Cycle, Cost, error) {
	n := g.N()
	if numColors <= 0 {
		numColors = int(math.Round(math.Sqrt(float64(n))))
	}
	if numColors > n/3 {
		numColors = n / 3
	}
	if numColors < 1 {
		numColors = 1
	}
	src := rng.New(seed)
	if maxAttempts < 1 {
		maxAttempts = 6
	}
	p1, err := runPhase1(g, numColors, src, maxAttempts)
	if err != nil {
		return nil, Cost{}, err
	}
	gb := broadcastBound(g)
	cost := Cost{
		B:            p1.scopeB,
		Steps:        p1.steps,
		Restarts:     p1.restarts,
		Phase1Rounds: scaffolding(p1.scopeB) + p1.maxRounds,
	}
	if numColors == 1 {
		cost.Rounds = cost.Phase1Rounds
		hc := p1.cycles[0]
		if err := hc.Verify(g); err != nil {
			return nil, cost, fmt.Errorf("%w: %v", ErrFailed, err)
		}
		return hc, cost, nil
	}
	var hc *cycle.Cycle
	var p2rounds int64
	ok := false
	for a := 0; a < maxAttempts; a++ {
		var steps int64
		hc, steps, err = hyperRotation(g, p1.cycles, src)
		// Selection flood + port announcement + rotation steps priced at
		// the global broadcast bound (hyper floods are global).
		p2rounds += gb + 2 + steps*(gb+2)
		cost.Steps += steps
		if err == nil {
			ok = true
			break
		}
		cost.Restarts++
		p2rounds += 2*gb + 2
	}
	cost.Phase2Rounds = p2rounds
	cost.Rounds = cost.Phase1Rounds + cost.Phase2Rounds
	if !ok {
		return nil, cost, fmt.Errorf("%w: phase 2: %v", ErrFailed, err)
	}
	if err := hc.Verify(g); err != nil {
		return nil, cost, fmt.Errorf("%w: %v", ErrFailed, err)
	}
	return hc, cost, nil
}

// DHC2 simulates Algorithm 3: Phase 1 partitioning plus ⌈log₂ K⌉ parallel
// pairwise merge levels.
func DHC2(g *graph.Graph, seed uint64, delta float64, numColors int, maxAttempts int) (*cycle.Cycle, Cost, error) {
	n := g.N()
	if numColors <= 0 {
		if delta <= 0 || delta > 1 {
			return nil, Cost{}, fmt.Errorf("stepsim: delta %v outside (0, 1]", delta)
		}
		numColors = int(math.Round(math.Pow(float64(n), 1-delta)))
	}
	if numColors > n/3 {
		numColors = n / 3
	}
	if numColors < 1 {
		numColors = 1
	}
	src := rng.New(seed)
	if maxAttempts < 1 {
		maxAttempts = 6
	}
	p1, err := runPhase1(g, numColors, src, maxAttempts)
	if err != nil {
		return nil, Cost{}, err
	}
	cost := Cost{
		B:            p1.scopeB,
		Steps:        p1.steps,
		Restarts:     p1.restarts,
		Phase1Rounds: scaffolding(p1.scopeB) + p1.maxRounds,
	}
	cycles := make([]*cycle.Cycle, 0, numColors)
	cycles = append(cycles, p1.cycles...)
	levels := int64(0)
	for len(cycles) > 1 {
		levels++
		next := make([]*cycle.Cycle, 0, (len(cycles)+1)/2)
		for i := 0; i+1 < len(cycles); i += 2 {
			merged, err := mergePair(g, cycles[i], cycles[i+1], src)
			if err != nil {
				return nil, cost, fmt.Errorf("%w: merge level %d: %v", ErrFailed, levels, err)
			}
			next = append(next, merged)
		}
		if len(cycles)%2 == 1 {
			next = append(next, cycles[len(cycles)-1])
		}
		cycles = next
	}
	// Each level costs 2B+10 rounds (probe exchanges plus two scoped
	// broadcasts), mirroring internal/core/merge.go.
	cost.Phase2Rounds = levels * (2*p1.scopeB + 10)
	cost.Rounds = cost.Phase1Rounds + cost.Phase2Rounds
	hc := cycles[0]
	if err := hc.Verify(g); err != nil {
		return nil, cost, fmt.Errorf("%w: %v", ErrFailed, err)
	}
	return hc, cost, nil
}

// mergePair finds a bridge between two cycles (paper Fig. 3) and merges
// them. It mirrors the distributed bridge search: for each cycle edge
// (v -> u) of the first cycle, a neighbor w on the second cycle bridges if
// (v, w) and (u, succ(w)) — or (u, pred(w)) — are graph edges.
func mergePair(g *graph.Graph, c1, c2 *cycle.Cycle, src *rng.Source) (*cycle.Cycle, error) {
	on2 := make(map[graph.NodeID]int, c2.Len())
	for i := 0; i < c2.Len(); i++ {
		on2[c2.At(i)] = i
	}
	// Scan first-cycle edges in random rotation order so merges do not
	// systematically favor low ids.
	offset := src.Intn(c1.Len())
	for i := 0; i < c1.Len(); i++ {
		v := c1.At(offset + i)
		u := c1.At(offset + i + 1)
		for _, w := range g.Neighbors(v) {
			wi, ok := on2[w]
			if !ok {
				continue
			}
			wSucc := c2.At(wi + 1)
			wPred := c2.At(wi - 1)
			if g.HasEdge(u, wSucc) {
				b := cycle.Bridge{
					E1: cycle.OrientedEdge{V: v, U: u},
					E2: cycle.OrientedEdge{V: w, U: wSucc},
				}
				return cycle.MergeTwo(c1, c2, b)
			}
			if g.HasEdge(u, wPred) {
				b := cycle.Bridge{
					E1:      cycle.OrientedEdge{V: v, U: u},
					E2:      cycle.OrientedEdge{V: wPred, U: w},
					Crossed: true,
				}
				return cycle.MergeTwo(c1, c2, b)
			}
		}
	}
	return nil, errors.New("no bridge found")
}
