// Package stepsim executes the paper's algorithms at rotation-step
// granularity and charges synchronous-round costs the same way the exact
// CONGEST engine does (one round per extension, BroadcastRounds+2 per
// rotation, O(B) per phase of scaffolding). It exists because an exact
// per-edge simulation of G(n, c·ln n/√n) has Θ(n^1.5·ln n) edges and is too
// slow beyond n ≈ a few thousand, while the theorems are about asymptotic
// shape: stepsim reproduces the round/step counts for n up to 10^6 in
// seconds. Agreement with the exact engine on overlapping sizes is checked
// by crosscheck tests (see crosscheck_test.go at the repository root).
//
// Options.Workers parallelizes the phases with per-class independence.
// Phase 1 of DHC1/DHC2 — one independent DRA run per color class — shards
// across a bounded worker pool. Phase 2 of DHC2 — the ⌈log₂ K⌉ pairwise
// merge levels of the merge tree — runs each level's independent pair
// merges on the same pool (the levels themselves are inherently sequential:
// level l+1 consumes level l's outputs). DHC1's phase 2, a single hypernode
// rotation over all K partitions, has no such independent units and stays
// sequential. All sharded paths follow the same deterministic-merge
// discipline as
// internal/congest's parallel executor: every unit of work draws from a
// private RNG stream split off the run seed (per partition in phase 1, per
// pair from the level stream in phase 2), and results are merged in
// partition-id / pair-index order, so any Workers value (including 0 and 1)
// produces byte-identical cycles and costs.
package stepsim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dhc/internal/arena"
	"dhc/internal/cycle"
	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/rotation"
)

// ErrFailed is returned when a simulated run fails to build a Hamiltonian
// cycle.
var ErrFailed = errors.New("stepsim: run failed")

// Hooks are optional observer callbacks for a run's lifecycle. All callbacks
// are best-effort and observe only: a run is byte-identical with or without
// them. They are invoked from the goroutine driving the run (never from pool
// workers).
type Hooks struct {
	// OnPhase fires when a run enters a named phase ("run", "phase1",
	// "phase2").
	OnPhase func(phase string)
	// OnRestart fires when the run burns a run-level restart attempt — a
	// failed standalone rotation attempt, a phase-1 recolor, or a phase-2
	// retry — with the cumulative count of reported restarts, which is
	// strictly increasing within one run. Per-partition internal restarts
	// happen on pool workers and are aggregated into Cost.Restarts instead
	// of being reported individually.
	OnRestart func(restarts int)
}

func (h Hooks) phase(name string) {
	if h.OnPhase != nil {
		h.OnPhase(name)
	}
}

func (h Hooks) restart(restarts int64) {
	if h.OnRestart != nil {
		h.OnRestart(int(restarts))
	}
}

// restartReporter keeps one strictly increasing cumulative restart count per
// run, shared by every phase that reports run-level restarts, so the
// OnRestart stream never regresses across phase boundaries.
type restartReporter struct {
	hooks Hooks
	n     int64
}

func (r *restartReporter) bump() {
	r.n++
	r.hooks.restart(r.n)
}

// Session is a reusable step-engine runner: the phase-2 merge scratch
// buffers (per-worker position-stamp arrays sized to the graph) survive
// across runs on same-sized graphs. The Hooks field may be set between runs.
// Not safe for concurrent use.
type Session struct {
	// Hooks receives the session's lifecycle callbacks.
	Hooks Hooks

	scratchN  int
	scratches []*mergeScratch
}

// NewSession returns an empty session; the first run sizes it.
func NewSession() *Session { return &Session{} }

// mergeScratches returns poolSize reusable scratch buffers for graphs of n
// vertices, reallocating only when the graph size changed.
func (s *Session) mergeScratches(n, poolSize int) []*mergeScratch {
	if s.scratchN != n {
		s.scratches, s.scratchN = nil, n
	}
	for len(s.scratches) < poolSize {
		s.scratches = append(s.scratches, newMergeScratch(n))
	}
	return s.scratches[:poolSize]
}

// canceled wraps a context's error once cancellation was observed, keeping
// context.Canceled / context.DeadlineExceeded matchable with errors.Is.
func canceled(ctx context.Context) error {
	return fmt.Errorf("stepsim: run canceled: %w", ctx.Err())
}

// interruptOf returns the amortized cancellation poll wired into rotation
// machines, or nil when ctx can never be cancelled.
func interruptOf(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// Options configures the DHC simulations.
type Options struct {
	// NumColors overrides the partition count K (0 derives it from n and,
	// for DHC2, Delta).
	NumColors int
	// Delta is DHC2's sparsity exponent (0 < δ ≤ 1); ignored by DHC1.
	Delta float64
	// MaxAttempts bounds restart retries (0 = 6).
	MaxAttempts int
	// Workers bounds the worker pool shared by phase 1 (partition DRA runs)
	// and DHC2's phase-2 merge tree (pair merges within a level); values
	// <= 1 run sequentially. Results are identical for every value.
	Workers int
}

func (o Options) attempts() int {
	if o.MaxAttempts < 1 {
		return 6
	}
	return o.MaxAttempts
}

// Cost is the round/step accounting of a simulated run.
type Cost struct {
	Rounds     int64
	Steps      int64
	Extensions int64
	Rotations  int64
	// B is the broadcast bound used to price rotations.
	B int64
	// Phase1Rounds / Phase2Rounds split the total for the DHC algorithms.
	Phase1Rounds int64
	Phase2Rounds int64
	// Restarts counts partition-level retries.
	Restarts int64
}

// broadcastBound mirrors the exact engine's choice: one BFS gives
// 2·ecc+1 >= diameter. It uses the allocation-lean eccentricity scan — this
// runs once per partition, where a full BFSResult's parent/order arrays are
// dead weight.
func broadcastBound(g *graph.Graph) int64 {
	if g.N() == 0 {
		return 1
	}
	ecc, _ := g.Ecc(0)
	return int64(2*ecc + 1)
}

// chargeRotationRounds prices a machine run like the adaptive exact engine:
// extensions cost one round, rotations cost B+2 (broadcast settle plus the
// probe/response exchange).
func chargeRotationRounds(st rotation.Stats, b int64) int64 {
	return st.Extensions + st.Rotations*(b+2) + 2
}

// DRA simulates the standalone Distributed Rotation Algorithm on g.
func DRA(g *graph.Graph, seed uint64, maxAttempts int) (*cycle.Cycle, Cost, error) {
	return NewSession().DRA(context.Background(), g, seed, maxAttempts)
}

// DRA simulates the standalone Distributed Rotation Algorithm on g, honoring
// ctx between rotation-step batches.
func (s *Session) DRA(ctx context.Context, g *graph.Graph, seed uint64, maxAttempts int) (*cycle.Cycle, Cost, error) {
	src := rng.New(seed)
	b := broadcastBound(g)
	cost := Cost{B: b}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	s.Hooks.phase("run")
	intr := interruptOf(ctx)
	rep := &restartReporter{hooks: s.Hooks}
	var lastErr error
	for a := 0; a < maxAttempts; a++ {
		if ctx.Err() != nil {
			return nil, cost, canceled(ctx)
		}
		m := rotation.New(g, graph.NodeID(src.Intn(g.N())), src, rotation.Config{Interrupt: intr})
		hc, st, err := m.Run()
		cost.Steps += st.Steps
		cost.Extensions += st.Extensions
		cost.Rotations += st.Rotations
		cost.Rounds += chargeRotationRounds(st, b)
		if err == nil {
			return hc, cost, nil
		}
		if errors.Is(err, rotation.ErrInterrupted) {
			return nil, cost, canceled(ctx)
		}
		lastErr = err
		cost.Restarts++
		rep.bump()
		cost.Rounds += 2*b + 2 // failure flood + quiet period
	}
	return nil, cost, fmt.Errorf("%w: %v", ErrFailed, lastErr)
}

// partition assigns each vertex one of k colors uniformly, mirroring DHC
// Phase 1. The classes are views into one flat arena: colors are drawn once
// (in the same RNG order as ever), counted, and scattered, so the whole
// partition costs two exact-size allocations instead of K append-grown
// slices — class contents are identical (ascending vertex ids per class).
func partition(n, k int, src *rng.Source) [][]graph.NodeID {
	colors := make([]uint32, n)
	counts := make([]int32, k+1)
	for v := 0; v < n; v++ {
		c := src.Intn(k)
		colors[v] = uint32(c)
		counts[c+1]++
	}
	for c := 0; c < k; c++ {
		counts[c+1] += counts[c]
	}
	flat := make([]graph.NodeID, n)
	cur := make([]int32, k)
	copy(cur, counts[:k])
	for v := 0; v < n; v++ {
		c := colors[v]
		flat[cur[c]] = graph.NodeID(v)
		cur[c]++
	}
	classes := make([][]graph.NodeID, k)
	for c := 0; c < k; c++ {
		classes[c] = flat[counts[c]:counts[c+1]:counts[c+1]]
	}
	return classes
}

// phase1Result carries per-partition subcycles in original vertex ids.
type phase1Result struct {
	cycles []*cycle.Cycle // per color
	// maxRounds is the slowest partition's DRA cost (they run in parallel).
	maxRounds int64
	steps     int64
	restarts  int64
	sizes     []int
	scopeB    int64 // max partition broadcast bound
}

// partOutcome is one partition's fully independent result, produced by
// solvePartition from the partition's private RNG stream. Outcomes are
// merged in partition-id order, never in completion order.
type partOutcome struct {
	cyc      *cycle.Cycle
	steps    int64
	rounds   int64
	restarts int64
	b        int64
	err      error
}

// solvePartition runs DRA (with restarts) on the subgraph induced by class,
// drawing all randomness from the partition's private stream. ctx is polled
// between attempts and inside the rotation machine's step batches.
func solvePartition(ctx context.Context, g *graph.Graph, c int, class []graph.NodeID, src *rng.Source, maxAttempts int) partOutcome {
	out := partOutcome{b: 1}
	if len(class) < 3 {
		out.err = fmt.Errorf("%w: partition %d has %d nodes", ErrFailed, c, len(class))
		return out
	}
	sub, orig := g.InducedSubgraph(class)
	if !sub.Connected() {
		out.err = fmt.Errorf("%w: partition %d disconnected", ErrFailed, c)
		return out
	}
	out.b = broadcastBound(sub)
	intr := interruptOf(ctx)
	for a := 0; a < maxAttempts; a++ {
		if ctx.Err() != nil {
			out.err = canceled(ctx)
			return out
		}
		m := rotation.New(sub, graph.NodeID(src.Intn(sub.N())), src, rotation.Config{Interrupt: intr})
		hc, st, err := m.Run()
		out.steps += st.Steps
		out.rounds += chargeRotationRounds(st, out.b)
		if err == nil {
			out.cyc = hc.Relabel(orig)
			return out
		}
		if errors.Is(err, rotation.ErrInterrupted) {
			out.err = canceled(ctx)
			return out
		}
		out.restarts++
		out.rounds += 2*out.b + 2
	}
	out.err = fmt.Errorf("%w: partition %d exhausted %d attempts", ErrFailed, c, maxAttempts)
	return out
}

// runPhase1 builds per-partition Hamiltonian subcycles with restarts. A
// coloring that produces an unusably small or disconnected partition is
// redrawn entirely (the distributed analogue: a failure flood triggers a
// global recolor), up to maxAttempts times. Cancellation is never retried.
func runPhase1(ctx context.Context, g *graph.Graph, k int, src *rng.Source, maxAttempts, workers int, rep *restartReporter) (*phase1Result, error) {
	var err error
	for a := 0; a < maxAttempts; a++ {
		if ctx.Err() != nil {
			return nil, canceled(ctx)
		}
		if a > 0 {
			rep.bump()
		}
		var res *phase1Result
		res, err = runPhase1Once(ctx, g, k, src, maxAttempts, workers)
		if err == nil {
			return res, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
	}
	return nil, err
}

// runPhase1Once colors the graph from the main stream, then solves the K
// color classes — sequentially or on a bounded worker pool. Each class only
// ever touches its own split stream and its own outcome slot, and outcomes
// are folded in partition-id order, so the result is a pure function of the
// seed for every workers value.
func runPhase1Once(ctx context.Context, g *graph.Graph, k int, src *rng.Source, maxAttempts, workers int) (*phase1Result, error) {
	classes := partition(g.N(), k, src)
	streams := make([]*rng.Source, k)
	for c := 0; c < k; c++ {
		streams[c] = src.Split(uint64(c) + 1)
	}
	outs := make([]partOutcome, k)
	arena.RunPool(workers, k, func(_, c int) {
		outs[c] = solvePartition(ctx, g, c, classes[c], streams[c], maxAttempts)
	})

	res := &phase1Result{
		cycles: make([]*cycle.Cycle, k),
		sizes:  make([]int, k),
		scopeB: 1,
	}
	for c := 0; c < k; c++ {
		out := outs[c]
		if out.err != nil {
			return nil, out.err
		}
		res.cycles[c] = out.cyc
		res.sizes[c] = len(classes[c])
		res.steps += out.steps
		res.restarts += out.restarts
		if out.rounds > res.maxRounds {
			res.maxRounds = out.rounds
		}
		if out.b > res.scopeB {
			res.scopeB = out.b
		}
	}
	return res, nil
}

// scaffolding is the Phase 1 setup cost in rounds (color exchange, scoped
// election, scope BFS, size count, barrier), matching internal/core's
// schedule.
func scaffolding(b int64) int64 { return 4*b + 8 + 2*b + 2 }

// DHC1 simulates Algorithm 2: Phase 1 partitioning plus the hypernode
// rotation of Phase 2 (with port orientations; see internal/core/hyper.go).
func DHC1(g *graph.Graph, seed uint64, opts Options) (*cycle.Cycle, Cost, error) {
	return NewSession().DHC1(context.Background(), g, seed, opts)
}

// DHC1 simulates Algorithm 2, honoring ctx between partitions, attempts and
// rotation-step batches.
func (s *Session) DHC1(ctx context.Context, g *graph.Graph, seed uint64, opts Options) (*cycle.Cycle, Cost, error) {
	n := g.N()
	numColors := opts.NumColors
	if numColors <= 0 {
		numColors = int(math.Round(math.Sqrt(float64(n))))
	}
	if numColors > n/3 {
		numColors = n / 3
	}
	if numColors < 1 {
		numColors = 1
	}
	src := rng.New(seed)
	maxAttempts := opts.attempts()
	rep := &restartReporter{hooks: s.Hooks}
	s.Hooks.phase("phase1")
	p1, err := runPhase1(ctx, g, numColors, src, maxAttempts, opts.Workers, rep)
	if err != nil {
		return nil, Cost{}, err
	}
	gb := broadcastBound(g)
	cost := Cost{
		B:            p1.scopeB,
		Steps:        p1.steps,
		Restarts:     p1.restarts,
		Phase1Rounds: scaffolding(p1.scopeB) + p1.maxRounds,
	}
	if numColors == 1 {
		cost.Rounds = cost.Phase1Rounds
		hc := p1.cycles[0]
		if err := hc.Verify(g); err != nil {
			return nil, cost, fmt.Errorf("%w: %v", ErrFailed, err)
		}
		return hc, cost, nil
	}
	var hc *cycle.Cycle
	var p2rounds int64
	ok := false
	s.Hooks.phase("phase2")
	for a := 0; a < maxAttempts; a++ {
		if ctx.Err() != nil {
			return nil, cost, canceled(ctx)
		}
		var steps int64
		hc, steps, err = hyperRotation(g, p1.cycles, src)
		// Selection flood + port announcement + rotation steps priced at
		// the global broadcast bound (hyper floods are global).
		p2rounds += gb + 2 + steps*(gb+2)
		cost.Steps += steps
		if err == nil {
			ok = true
			break
		}
		cost.Restarts++
		rep.bump()
		p2rounds += 2*gb + 2
	}
	cost.Phase2Rounds = p2rounds
	cost.Rounds = cost.Phase1Rounds + cost.Phase2Rounds
	if !ok {
		return nil, cost, fmt.Errorf("%w: phase 2: %v", ErrFailed, err)
	}
	if err := hc.Verify(g); err != nil {
		return nil, cost, fmt.Errorf("%w: %v", ErrFailed, err)
	}
	return hc, cost, nil
}

// DHC2 simulates Algorithm 3: Phase 1 partitioning plus ⌈log₂ K⌉ parallel
// pairwise merge levels.
func DHC2(g *graph.Graph, seed uint64, opts Options) (*cycle.Cycle, Cost, error) {
	return NewSession().DHC2(context.Background(), g, seed, opts)
}

// DHC2 simulates Algorithm 3, honoring ctx between partitions, merge levels
// and rotation-step batches.
func (s *Session) DHC2(ctx context.Context, g *graph.Graph, seed uint64, opts Options) (*cycle.Cycle, Cost, error) {
	n := g.N()
	numColors := opts.NumColors
	if numColors <= 0 {
		if opts.Delta <= 0 || opts.Delta > 1 {
			return nil, Cost{}, fmt.Errorf("stepsim: delta %v outside (0, 1]", opts.Delta)
		}
		numColors = int(math.Round(math.Pow(float64(n), 1-opts.Delta)))
	}
	if numColors > n/3 {
		numColors = n / 3
	}
	if numColors < 1 {
		numColors = 1
	}
	src := rng.New(seed)
	maxAttempts := opts.attempts()
	rep := &restartReporter{hooks: s.Hooks}
	s.Hooks.phase("phase1")
	p1, err := runPhase1(ctx, g, numColors, src, maxAttempts, opts.Workers, rep)
	if err != nil {
		return nil, Cost{}, err
	}
	cost := Cost{
		B:            p1.scopeB,
		Steps:        p1.steps,
		Restarts:     p1.restarts,
		Phase1Rounds: scaffolding(p1.scopeB) + p1.maxRounds,
	}
	s.Hooks.phase("phase2")
	hc, levels, err := s.runMergeTree(ctx, g, p1.cycles, src, opts.Workers)
	if err != nil {
		return nil, cost, err
	}
	// Each level costs 2B+10 rounds (probe exchanges plus two scoped
	// broadcasts), mirroring internal/core/merge.go.
	cost.Phase2Rounds = levels * (2*p1.scopeB + 10)
	cost.Rounds = cost.Phase1Rounds + cost.Phase2Rounds
	if err := hc.Verify(g); err != nil {
		return nil, cost, fmt.Errorf("%w: %v", ErrFailed, err)
	}
	return hc, cost, nil
}

// mergeTreeTag namespaces the phase-2 level streams within the run's split
// space, away from the phase-1 partition indices.
const mergeTreeTag = uint64(0xD4C2) << 32

// mergeOutcome is one pair's result slot, written only by the worker that
// owns the pair and read only after the level's pool drains.
type mergeOutcome struct {
	cyc *cycle.Cycle
	err error
}

// runMergeTree collapses the per-partition subcycles into one cycle through
// ⌈log₂ K⌉ pairwise merge levels (paper Algorithm 3, Phase 2). The levels
// are inherently sequential, but within a level every pair merge is
// independent — exactly the parallelism the paper's round bound counts on —
// so with workers > 1 the pairs of a level run on a bounded worker pool.
//
// Determinism: pair i of level l draws all randomness from
// src.Split(mergeTreeTag+l).Split(i+1), a pure function of the run seed, and
// outcomes land in a pre-sized slot array folded in pair-index order (first
// error in pair order wins), so every workers value produces byte-identical
// results. Each worker owns one reusable scratch buffer across all levels,
// keeping the bridge scan allocation-free per pair.
func (s *Session) runMergeTree(ctx context.Context, g *graph.Graph, cycles []*cycle.Cycle, src *rng.Source, workers int) (*cycle.Cycle, int64, error) {
	if len(cycles) == 1 {
		return cycles[0], 0, nil
	}
	poolSize := workers
	if poolSize > len(cycles)/2 {
		poolSize = len(cycles) / 2
	}
	if poolSize < 1 {
		poolSize = 1
	}
	scratches := s.mergeScratches(g.N(), poolSize)
	levels := int64(0)
	for len(cycles) > 1 {
		if ctx.Err() != nil {
			return nil, levels, canceled(ctx)
		}
		levels++
		levelSrc := src.Split(mergeTreeTag + uint64(levels))
		pairs := len(cycles) / 2
		outs := make([]mergeOutcome, pairs)
		arena.RunPool(poolSize, pairs, func(w, i int) {
			outs[i].cyc, outs[i].err = mergePair(
				g, cycles[2*i], cycles[2*i+1], levelSrc.Split(uint64(i)+1), scratches[w])
		})
		next := make([]*cycle.Cycle, 0, (len(cycles)+1)/2)
		for i := 0; i < pairs; i++ {
			if outs[i].err != nil {
				return nil, levels, fmt.Errorf("%w: merge level %d pair %d: %v",
					ErrFailed, levels, i, outs[i].err)
			}
			next = append(next, outs[i].cyc)
		}
		if len(cycles)%2 == 1 {
			next = append(next, cycles[len(cycles)-1])
		}
		cycles = next
	}
	return cycles[0], levels, nil
}

// mergeScratch is one worker's reusable state for mergePair's bridge scan:
// pos[v] is v's index on the second cycle plus one (0 = not on it). It is
// sized to the full graph once per run; mergePair wipes only the entries it
// stamped, so repeated scans allocate nothing.
type mergeScratch struct {
	pos []int32
}

func newMergeScratch(n int) *mergeScratch { return &mergeScratch{pos: make([]int32, n)} }

// mergePair finds a bridge between two cycles (paper Fig. 3) and merges
// them. It mirrors the distributed bridge search: for each cycle edge
// (v -> u) of the first cycle, a neighbor w on the second cycle bridges if
// (v, w) and (u, succ(w)) — or (u, pred(w)) — are graph edges.
func mergePair(g *graph.Graph, c1, c2 *cycle.Cycle, src *rng.Source, sc *mergeScratch) (*cycle.Cycle, error) {
	for i := 0; i < c2.Len(); i++ {
		sc.pos[c2.At(i)] = int32(i) + 1
	}
	defer func() {
		for i := 0; i < c2.Len(); i++ {
			sc.pos[c2.At(i)] = 0
		}
	}()
	// Scan first-cycle edges in random rotation order so merges do not
	// systematically favor low ids.
	offset := src.Intn(c1.Len())
	for i := 0; i < c1.Len(); i++ {
		v := c1.At(offset + i)
		u := c1.At(offset + i + 1)
		for _, w := range g.Neighbors(v) {
			pw := sc.pos[w]
			if pw == 0 {
				continue
			}
			wi := int(pw - 1)
			wSucc := c2.At(wi + 1)
			wPred := c2.At(wi - 1)
			if g.HasEdge(u, wSucc) {
				b := cycle.Bridge{
					E1: cycle.OrientedEdge{V: v, U: u},
					E2: cycle.OrientedEdge{V: w, U: wSucc},
				}
				return cycle.MergeTwo(c1, c2, b)
			}
			if g.HasEdge(u, wPred) {
				b := cycle.Bridge{
					E1:      cycle.OrientedEdge{V: v, U: u},
					E2:      cycle.OrientedEdge{V: wPred, U: w},
					Crossed: true,
				}
				return cycle.MergeTwo(c1, c2, b)
			}
		}
	}
	return nil, errors.New("no bridge found")
}
