// Package sweep runs bounded-parallel Monte Carlo phase-space sweeps over a
// grid of (graph family, n, density parameter, algorithm, engine) cells and
// aggregates per-cell success statistics — the harness that turns the
// paper's statistical claims ("above p = c·ln n/n^δ the algorithms find a
// Hamiltonian cycle w.h.p. within the stated budgets") into measurable,
// regression-testable numbers.
//
// Every cell runs Trials fully independent trials: a fresh graph and a fresh
// solver seed per trial, because the paper's success probability is over
// both the random instance and the algorithm's coin flips. Each trial draws
// its two seeds from a private RNG stream split off the master seed (the
// same discipline as the stepsim and congest worker pools):
//
//	instStream  = rng.New(master).Split(fnv1a(cell.InstanceKey()))
//	trialStream = instStream.Split(trial + 1)
//	graphSeed, solveSeed = trialStream.Uint64(), trialStream.Uint64()
//
// The derivation hangs off the cell's instance key — family, n, parameter,
// delta, but NOT algorithm or engine — so every (algo, engine) column of a
// grid point solves the same instance set with the same solver seeds. That
// makes cross-algorithm comparisons paired, and it turns the engine identity
// contract into sweep-checkable data: the "exact" and "exact-dense" cells of
// one grid point must agree byte for byte on their rounds/messages/bits
// quantiles. Because the key is content-derived (never a grid position),
// adding or removing cells does not change another cell's trials, which is
// what makes per-cell resume sound. Trial outcomes land in pre-sized slots
// and are folded in trial order, and the report schema carries no wall-clock
// fields, so a sweep's output is byte-identical at any worker count.
package sweep

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"time"

	"dhc"
	"dhc/internal/arena"
	"dhc/internal/bench"
	"dhc/internal/graph"
	"dhc/internal/rng"
)

// Family selects the random-graph workload of a cell.
type Family int

const (
	// FamilyGNP is G(n, p) at the paper's threshold p = c·ln n / n^δ.
	FamilyGNP Family = iota + 1
	// FamilyGNM is the uniform fixed-edge-count model G(n, m) with
	// m = round(p·n(n-1)/2) at the same threshold p.
	FamilyGNM
	// FamilyRegular is the random d-regular model; the cell parameter is
	// the degree d.
	FamilyRegular
	// FamilyPowerlaw is the Chung–Lu expected-degree power-law model at
	// tail exponent PowerlawExponent; the cell parameter is the density
	// constant c of mean degree n·p = n·c·ln n / n^δ.
	FamilyPowerlaw
	// FamilyGeometric is the random geometric graph on the unit square;
	// the cell parameter scales the connectivity-threshold radius
	// r = c·sqrt(ln n / (π·n)).
	FamilyGeometric
	// FamilySBM is the stochastic block model with SBMBlocks contiguous
	// blocks and in/out probability ratio SBMRatio; the cell parameter is
	// the density constant c of the mean pair probability c·ln n / n^δ.
	FamilySBM
	// FamilyHypercube is the deterministic hypercube lattice control:
	// size 2^d is the full (Hamiltonian) cube Q_d, size 2^d - 1 the
	// vertex-deleted cube, non-Hamiltonian by bipartite parity. The param
	// axis is ignored (cells record param 0).
	FamilyHypercube
	// FamilyTorus is the deterministic √n×√n wraparound torus control
	// (Hamiltonian by construction; sizes must be perfect squares). The
	// param axis is ignored (cells record param 0).
	FamilyTorus
)

// Fixed shape parameters of the parameterized families: the sweep's param
// axis is one-dimensional (the density knob), so the remaining family shape
// is pinned here and recorded in the atlas documentation.
const (
	// PowerlawExponent is the Chung–Lu tail exponent of FamilyPowerlaw.
	PowerlawExponent = 2.5
	// SBMBlocks is FamilySBM's block count.
	SBMBlocks = 4
	// SBMRatio is FamilySBM's in/out probability ratio pIn/pOut.
	SBMRatio = 4.0
)

var familyNames = map[Family]string{
	FamilyGNP:       "gnp",
	FamilyGNM:       "gnm",
	FamilyRegular:   "regular",
	FamilyPowerlaw:  "powerlaw",
	FamilyGeometric: "geometric",
	FamilySBM:       "sbm",
	FamilyHypercube: "hypercube",
	FamilyTorus:     "torus",
}

// String returns the family's report spelling ("gnp", "powerlaw", ...).
func (f Family) String() string {
	if s, ok := familyNames[f]; ok {
		return s
	}
	return fmt.Sprintf("family(%d)", int(f))
}

// FamilyNames returns every family's report spelling in sorted order — the
// vocabulary ParseFamily accepts, spelled the way its error reports it. It
// must stay in lockstep with bench.FamilyNames, the report schema's
// vocabulary (pinned by a test).
func FamilyNames() []string {
	names := make([]string, 0, len(familyNames))
	for _, name := range familyNames {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParseFamily resolves a family name. The error of an unknown name lists the
// valid names deterministically (sorted), so CLI messages are stable across
// runs — the same contract as dhc.ParseAlgorithm and bench.ParseEngineMode.
func ParseFamily(s string) (Family, error) {
	for f, name := range familyNames {
		if name == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown graph family %q (valid: %s)",
		s, strings.Join(FamilyNames(), ", "))
}

// ParseFamilies resolves a comma-separated family list.
func ParseFamilies(s string) ([]Family, error) {
	var out []Family
	for _, part := range bench.SplitList(s) {
		f, err := ParseFamily(part)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Grid is a sweep specification: the cartesian product of its axes, run for
// Trials Monte Carlo trials per cell from MasterSeed.
type Grid struct {
	Families []Family  `json:"families"`
	Sizes    []int     `json:"sizes"`
	Params   []float64 `json:"params"`
	// Delta is the gnp/gnm threshold exponent (p = c·ln n / n^Delta) and is
	// also passed to DHC2 as its partition exponent. Zero defaults to 1,
	// the connectivity-threshold regime.
	Delta float64 `json:"delta,omitempty"`
	// Algos and Engines are parsed from the bench vocabulary ("dra", ... /
	// "step", "exact", "exact-dense").
	Algos   []dhc.Algorithm    `json:"-"`
	Engines []bench.EngineMode `json:"-"`
	// Trials is the Monte Carlo sample size per cell (default 20).
	Trials int `json:"trials,omitempty"`
	// MasterSeed roots every cell's RNG stream.
	MasterSeed uint64 `json:"master_seed"`
	// NumColors overrides the partition count K for DHC1/DHC2 (0 derives).
	NumColors int `json:"num_colors,omitempty"`
	// MaxAttempts bounds solver restart retries (0 = engine default).
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// Cell is one grid point.
type Cell struct {
	Family Family
	N      int
	Param  float64
	Delta  float64 // 0 for regular (the degree needs no exponent)
	Algo   dhc.Algorithm
	Engine bench.EngineMode
}

// Key identifies the cell, matching bench.CellStats.Key; it is the resume
// key.
func (c Cell) Key() string {
	return fmt.Sprintf("%s/n=%d/param=%g/delta=%g/%s/%s",
		c.Family, c.N, c.Param, c.Delta, c.Algo, c.Engine.Name())
}

// InstanceKey identifies the cell's random-instance distribution — the grid
// point without the solver columns. It seeds the trial streams, so every
// (algo, engine) cell of one grid point draws identical graphs and solver
// seeds; its format is part of the reproducibility contract.
func (c Cell) InstanceKey() string {
	return fmt.Sprintf("%s/n=%d/param=%g/delta=%g", c.Family, c.N, c.Param, c.Delta)
}

// delta returns the grid's effective threshold exponent.
func (g *Grid) delta() float64 {
	if g.Delta == 0 {
		return 1
	}
	return g.Delta
}

// trials returns the grid's effective per-cell sample size.
func (g *Grid) trials() int {
	if g.Trials <= 0 {
		return 20
	}
	return g.Trials
}

// Validate checks the grid's axes.
func (g *Grid) Validate() error {
	if len(g.Families) == 0 || len(g.Sizes) == 0 || len(g.Params) == 0 ||
		len(g.Algos) == 0 || len(g.Engines) == 0 {
		return fmt.Errorf("sweep: empty grid axis (families/sizes/params/algos/engines all required)")
	}
	for _, n := range g.Sizes {
		if n < 3 {
			return fmt.Errorf("sweep: size %d below the minimum cycle length 3", n)
		}
	}
	if d := g.delta(); d <= 0 || d > 1 {
		return fmt.Errorf("sweep: delta %v outside (0, 1]", d)
	}
	for _, f := range g.Families {
		if _, ok := familyNames[f]; !ok {
			return fmt.Errorf("sweep: unknown family %d", int(f))
		}
		switch f {
		case FamilyRegular:
			for _, p := range g.Params {
				if p != math.Trunc(p) || p < 1 {
					return fmt.Errorf("sweep: regular family needs integer degree params, got %v", p)
				}
			}
		case FamilyHypercube:
			// A size is either the full cube 2^d (Hamiltonian) or the
			// vertex-deleted cube 2^d - 1 (the family's in-grid negative
			// control: bipartite with unequal sides, hence no Hamiltonian
			// cycle).
			for _, n := range g.Sizes {
				if n < 8 || (!isPow2(n) && !isPow2(n+1)) {
					return fmt.Errorf("sweep: hypercube sizes must be 2^d or 2^d-1 with d >= 3, got %d", n)
				}
			}
		case FamilyTorus:
			for _, n := range g.Sizes {
				if r := intSqrt(n); r < 3 || r*r != n {
					return fmt.Errorf("sweep: torus sizes must be perfect squares >= 9, got %d", n)
				}
			}
		}
	}
	return nil
}

// isPow2 reports whether n is a positive power of two.
func isPow2(n int) bool { return n > 0 && bits.OnesCount(uint(n)) == 1 }

// intSqrt returns the floor of √n for n >= 0.
func intSqrt(n int) int {
	r := int(math.Sqrt(float64(n)))
	for r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// usesDelta reports whether the family's density is parameterized by the
// threshold exponent δ of p = c·ln n / n^δ. Families with their own density
// scaling (regular's degree, geometric's radius) and the deterministic
// lattices record delta 0 in their cells.
func (f Family) usesDelta() bool {
	switch f {
	case FamilyGNP, FamilyGNM, FamilyPowerlaw, FamilySBM:
		return true
	}
	return false
}

// Deterministic reports whether the family ignores both the param axis and
// the graph seed: one size fully determines the instance. Cells of a
// deterministic family are emitted once per size with param recorded as 0.
func (f Family) Deterministic() bool {
	return f == FamilyHypercube || f == FamilyTorus
}

// BuildInstance samples one instance of the family at the given size,
// density parameter, threshold exponent and seed, using exactly the mapping
// the sweep's cells use (so bench and calibration tooling measure the same
// graphs the Monte Carlo trials solve). Families that do not use delta or
// the param axis ignore those arguments the same way their cells do.
func BuildInstance(f Family, n int, param, delta float64, seed uint64) (*dhc.Graph, error) {
	if !f.usesDelta() {
		delta = 0
	}
	if f.Deterministic() {
		param = 0
	}
	return buildGraph(Cell{Family: f, N: n, Param: param, Delta: delta}, seed)
}

// Cells enumerates the grid in its canonical order: family, n, param, algo,
// engine. The order determines report layout only — never trial seeds.
func (g *Grid) Cells() []Cell {
	var cells []Cell
	for _, f := range g.Families {
		delta := g.delta()
		if !f.usesDelta() {
			delta = 0
		}
		params := g.Params
		if f.Deterministic() {
			// The lattice controls have no density knob: collapse the param
			// axis so one size yields one cell (param recorded as 0), keeping
			// cell keys unique in grids that sweep params for other families.
			params = []float64{0}
		}
		for _, n := range g.Sizes {
			for _, param := range params {
				for _, algo := range g.Algos {
					for _, engine := range g.Engines {
						cells = append(cells, Cell{
							Family: f, N: n, Param: param, Delta: delta,
							Algo: algo, Engine: engine,
						})
					}
				}
			}
		}
	}
	return cells
}

// Options configures a Run.
type Options struct {
	// Workers bounds the trial-level worker pool within each cell (values
	// <= 1 run sequentially). Any value produces byte-identical reports.
	Workers int
	// CellTimeout, when positive, bounds each cell's wall-clock time: when
	// it expires the cell's remaining trials are cut off and counted as
	// FailCanceled. A timed-out cell is wall-clock dependent and therefore
	// excluded from the byte-identical contract; the resume path re-runs it.
	CellTimeout time.Duration
	// Progress, if non-nil, is called after each cell completes, in cell
	// order (reused == true when the cell came from Resume).
	Progress func(cell Cell, stats bench.CellStats, reused bool)
	// Observer, if non-nil, supplies a dhc.Observer per cell, wired into the
	// cell's solver sessions for liveness reporting on long cells. One
	// observer serves every trial of the cell, and with Workers > 1 its
	// callbacks fire concurrently — implementations must be safe for that.
	Observer func(cell Cell) *dhc.Observer
	// Resume maps cell keys to previously computed stats (from a prior
	// report with the same master seed and trial count); matching cells
	// are reused instead of re-run. Entries whose Trials differ from the
	// grid's, or that carry canceled trials, are ignored.
	Resume map[string]bench.CellStats
}

// Run executes the sweep and returns the v2 report section: per-cell
// statistics in grid order plus scaling fits across cells.
func Run(grid Grid, opts Options) (*bench.SweepSection, error) {
	return RunContext(context.Background(), grid, opts)
}

// RunContext is Run with cooperative cancellation: between cells (and, via
// the solver layer, inside them) ctx is honored, and a cancelled sweep
// returns the section of every cell completed so far together with ctx's
// error. The in-flight cell is abandoned rather than recorded, because its
// partial outcomes depend on wall-clock timing — which is exactly what makes
// an interrupted sweep resumable: the finished cells are deterministic, so a
// resumed sweep reproduces the report an uninterrupted run would have
// written, byte for byte.
func RunContext(ctx context.Context, grid Grid, opts Options) (*bench.SweepSection, error) {
	if err := grid.Validate(); err != nil {
		return nil, err
	}
	sec := &bench.SweepSection{
		MasterSeed:    grid.MasterSeed,
		TrialsPerCell: grid.trials(),
		NumColors:     grid.NumColors,
		MaxAttempts:   grid.MaxAttempts,
	}
	master := rng.New(grid.MasterSeed)
	for _, cell := range grid.Cells() {
		if err := ctx.Err(); err != nil {
			sec.Fits = Fits(sec.Cells)
			return sec, err
		}
		stats, reused := bench.CellStats{}, false
		if prev, ok := opts.Resume[cell.Key()]; ok && prev.Trials == grid.trials() && prev.FailCanceled == 0 {
			stats, reused = prev, true
		} else {
			stats = runCell(ctx, &grid, cell, master, &opts)
			if ctx.Err() != nil {
				// The master context died mid-cell: the cell's outcomes are
				// partial; abandon them so the checkpoint stays resumable.
				sec.Fits = Fits(sec.Cells)
				return sec, ctx.Err()
			}
		}
		sec.Cells = append(sec.Cells, stats)
		if opts.Progress != nil {
			opts.Progress(cell, stats, reused)
		}
	}
	sec.Fits = Fits(sec.Cells)
	return sec, nil
}

// trialOutcome is one trial's result slot, written only by the worker that
// owns the trial and folded in trial order.
type trialOutcome struct {
	class  dhc.FailureClass
	err    error
	rounds int64
	steps  int64
	msgs   int64
	bits   int64
}

// runCell executes one cell's Trials independent trials on a bounded pool.
// Each pool worker owns one reusable dhc.Solver session for the cell: every
// trial of a cell runs on a same-sized instance, so the solver's engine
// arena is recycled trial over trial (the repeated-trial throughput path).
// Determinism is unaffected — a solver trial is byte-identical to a fresh
// Solve — so reports stay byte-identical at any worker count.
func runCell(ctx context.Context, grid *Grid, cell Cell, master *rng.Source, opts *Options) bench.CellStats {
	trials := grid.trials()
	cellCtx := ctx
	if opts.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, opts.CellTimeout)
		defer cancel()
	}
	var obs *dhc.Observer
	if opts.Observer != nil {
		obs = opts.Observer(cell)
	}
	solverOpts := dhc.Options{
		Engine:      cell.Engine.Engine,
		DenseSweep:  cell.Engine.Dense,
		Delta:       grid.delta(),
		NumColors:   grid.NumColors,
		MaxAttempts: grid.MaxAttempts,
		Observer:    obs,
	}
	poolSize := opts.Workers
	if poolSize > trials {
		poolSize = trials
	}
	if poolSize < 1 {
		poolSize = 1
	}
	solvers := make([]*dhc.Solver, poolSize)
	ctorErrs := make([]error, poolSize)
	instStream := master.Split(fnv1a(cell.InstanceKey()))
	outs := make([]trialOutcome, trials)
	arena.RunPool(opts.Workers, trials, func(worker, trial int) {
		if solvers[worker] == nil && ctorErrs[worker] == nil {
			solvers[worker], ctorErrs[worker] = newSolver(cell.Algo, solverOpts)
		}
		if err := ctorErrs[worker]; err != nil {
			// A constructor failure is a configuration verdict for the whole
			// cell: record it as the trial's fail_error outcome with the real
			// message. (Every worker constructs from identical arguments, so
			// the outcome is worker-count independent.)
			outs[trial] = trialOutcome{class: dhc.FailureError, err: err}
			return
		}
		outs[trial] = runTrial(cellCtx, grid, cell, solvers[worker], instStream.Split(uint64(trial)+1))
	})
	return foldOutcomes(cell, trials, outs)
}

// newSolver is the solver constructor runCell uses — a seam so the
// constructor-failure contract (fail_error with the real message, never a
// nil-pointer panic) stays testable even while every validated grid produces
// constructible options.
var newSolver = dhc.NewSolver

// firstErrorPriority orders the failure classes FirstError samples from:
// a configuration error always wins the slot — it is the message
// `hcsweep -validate` prints for fail_error cells, and a routine no_hc
// sentinel string arriving first must not mask it — then the budget verdicts,
// then ordinary negatives. Within a class the first trial in trial order
// wins, keeping the field worker-count independent.
var firstErrorPriority = []dhc.FailureClass{
	dhc.FailureError,
	dhc.FailureRoundLimit,
	dhc.FailureCanceled,
	dhc.FailureNoHC,
}

// foldOutcomes aggregates a cell's trial outcomes in trial order into its
// report row.
func foldOutcomes(cell Cell, trials int, outs []trialOutcome) bench.CellStats {
	stats := bench.CellStats{
		Family: cell.Family.String(),
		N:      cell.N,
		Param:  cell.Param,
		Delta:  cell.Delta,
		Algo:   cell.Algo.String(),
		Engine: cell.Engine.Name(),
		Trials: trials,
	}
	if cell.Family.usesDelta() {
		stats.P = graph.HCThresholdP(cell.N, cell.Param, cell.Delta)
	}
	var rounds, steps, msgs, bits []int64
	for _, out := range outs {
		switch out.class {
		case dhc.FailureNone:
			stats.Successes++
			rounds = append(rounds, out.rounds)
			steps = append(steps, out.steps)
			msgs = append(msgs, out.msgs)
			bits = append(bits, out.bits)
		case dhc.FailureNoHC:
			stats.FailNoHC++
		case dhc.FailureRoundLimit:
			stats.FailRoundLimit++
		case dhc.FailureCanceled:
			stats.FailCanceled++
		default:
			stats.FailError++
		}
	}
	for _, class := range firstErrorPriority {
		if stats.FirstError != "" {
			break
		}
		for _, out := range outs {
			if out.class == class && out.err != nil {
				stats.FirstError = out.err.Error()
				break
			}
		}
	}
	stats.SuccessRate = float64(stats.Successes) / float64(trials)
	stats.Rounds = bench.NewQuantiles(rounds)
	stats.Steps = bench.NewQuantiles(steps)
	if cell.Engine.Engine == dhc.EngineExact {
		m, b := bench.NewQuantiles(msgs), bench.NewQuantiles(bits)
		stats.Messages, stats.Bits = &m, &b
	}
	return stats
}

// runTrial generates the trial's instance and solves it on the worker's
// reusable solver session, drawing both seeds from the trial's private
// stream. A nil solver (constructor failure) falls back to one-shot solving
// so the configuration error still surfaces as a trial outcome.
func runTrial(ctx context.Context, grid *Grid, cell Cell, solver *dhc.Solver, stream *rng.Source) trialOutcome {
	graphSeed := stream.Uint64()
	solveSeed := stream.Uint64()
	g, err := buildGraph(cell, graphSeed)
	if err != nil {
		// An infeasible generator request is a configuration problem, not
		// a solver negative.
		return trialOutcome{class: dhc.FailureError, err: err}
	}
	var res *dhc.Result
	if solver != nil {
		res, err = solver.SolveSeeded(ctx, g, solveSeed)
	} else {
		res, err = dhc.SolveContext(ctx, g, cell.Algo, dhc.Options{
			Seed:        solveSeed,
			Engine:      cell.Engine.Engine,
			DenseSweep:  cell.Engine.Dense,
			Delta:       grid.delta(),
			NumColors:   grid.NumColors,
			MaxAttempts: grid.MaxAttempts,
		})
	}
	out := trialOutcome{class: dhc.Classify(err), err: err}
	if out.class == dhc.FailureNone {
		out.rounds, out.steps = res.Rounds, res.Steps
		if res.Counters != nil {
			out.msgs, out.bits = res.Counters.Messages, res.Counters.Bits
		}
	}
	return out
}

// buildGraph samples the cell's instance from the graph seed. Deterministic
// families ignore the seed: their instance is a pure function of the size.
func buildGraph(cell Cell, seed uint64) (*dhc.Graph, error) {
	switch cell.Family {
	case FamilyGNP:
		return dhc.NewGNP(cell.N, graph.HCThresholdP(cell.N, cell.Param, cell.Delta), seed), nil
	case FamilyGNM:
		p := graph.HCThresholdP(cell.N, cell.Param, cell.Delta)
		// Pair counts in int64: at n >= 10^7, n(n-1)/2 wraps 32-bit arithmetic
		// and would silently shrink the requested density.
		maxM := graph.MaxEdges(cell.N)
		m := int64(math.Round(p * float64(maxM)))
		if m > maxM {
			m = maxM
		}
		if err := graph.ValidateEdgeCount(cell.N, m); err != nil {
			return nil, fmt.Errorf("sweep: gnm cell n=%d param=%v: %w", cell.N, cell.Param, err)
		}
		return dhc.NewGNM(cell.N, int(m), seed), nil
	case FamilyRegular:
		return dhc.NewRandomRegular(cell.N, int(cell.Param), seed)
	case FamilyPowerlaw:
		avg := float64(cell.N) * graph.HCThresholdP(cell.N, cell.Param, cell.Delta)
		return dhc.NewChungLu(cell.N, avg, PowerlawExponent, seed), nil
	case FamilyGeometric:
		return dhc.NewGeometric(cell.N, graph.GeometricThresholdR(cell.N, cell.Param), seed), nil
	case FamilySBM:
		// The param scales the mean pair probability p̄ = c·ln n / n^δ; the
		// fixed in/out ratio R and block count k then pin
		// pOut = k·p̄/(R+k-1), pIn = R·pOut (equal-block mixture mean p̄).
		pbar := graph.HCThresholdP(cell.N, cell.Param, cell.Delta)
		pOut := float64(SBMBlocks) * pbar / (SBMRatio + float64(SBMBlocks) - 1)
		return dhc.NewSBM(cell.N, SBMBlocks, SBMRatio*pOut, pOut, seed), nil
	case FamilyHypercube:
		dim := bits.Len(uint(cell.N)) - 1
		if isPow2(cell.N + 1) {
			// The vertex-deleted cube: Q_dim minus its all-ones corner,
			// bipartite with unequal sides — the family's negative control.
			dim = bits.Len(uint(cell.N+1)) - 1
			keep := make([]graph.NodeID, cell.N)
			for i := range keep {
				keep[i] = graph.NodeID(i)
			}
			g, _ := dhc.NewHypercube(dim).InducedSubgraph(keep)
			return g, nil
		}
		if !isPow2(cell.N) {
			return nil, fmt.Errorf("sweep: hypercube size %d is neither 2^d nor 2^d-1", cell.N)
		}
		return dhc.NewHypercube(dim), nil
	case FamilyTorus:
		r := intSqrt(cell.N)
		if r*r != cell.N {
			return nil, fmt.Errorf("sweep: torus size %d is not a perfect square", cell.N)
		}
		return dhc.NewTorus(r, r), nil
	default:
		return nil, fmt.Errorf("sweep: unknown family %d", int(cell.Family))
	}
}

// Fits computes scaling fits along every (family, param, delta, algo,
// engine) series of the cells that spans at least two sizes with successes,
// in first-appearance order. The fitted statistic is the per-cell median
// (P50) of rounds and steps, which is robust to the occasional straggler
// trial that a mean would smear.
func Fits(cells []bench.CellStats) []bench.ScalingFit {
	type seriesKey struct {
		family string
		param  float64
		delta  float64
		algo   string
		engine string
	}
	type point struct{ n, rounds, steps float64 }
	series := map[seriesKey][]point{}
	var order []seriesKey
	for i := range cells {
		c := &cells[i]
		if c.Successes == 0 {
			continue
		}
		k := seriesKey{c.Family, c.Param, c.Delta, c.Algo, c.Engine}
		if _, ok := series[k]; !ok {
			order = append(order, k)
		}
		series[k] = append(series[k], point{
			n:      float64(c.N),
			rounds: float64(c.Rounds.P50),
			steps:  float64(c.Steps.P50),
		})
	}
	var fits []bench.ScalingFit
	for _, k := range order {
		pts := series[k]
		distinct := map[float64]bool{}
		for _, p := range pts {
			distinct[p.n] = true
		}
		if len(distinct) < 2 {
			continue
		}
		var ns, rounds, steps []float64
		for _, p := range pts {
			ns = append(ns, p.n)
			rounds = append(rounds, p.rounds)
			steps = append(steps, p.steps)
		}
		fits = append(fits, bench.ScalingFit{
			Family: k.family, Param: k.param, Delta: k.delta,
			Algo: k.algo, Engine: k.engine,
			Points:      len(distinct),
			RoundsSlope: finiteOrZero(bench.FitExponent(ns, rounds)),
			StepsSlope:  finiteOrZero(bench.FitExponent(ns, steps)),
		})
	}
	return fits
}

// finiteOrZero maps the FitExponent "no usable points" NaN (a series whose
// statistic is all zeros, e.g. steps for algorithms that never rotate) to
// the schema's "no data" zero, which JSON can encode.
func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// fnv1a hashes a cell key into the 64-bit index of its RNG stream (FNV-1a).
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
