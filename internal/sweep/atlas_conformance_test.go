package sweep

// Phase-transition-atlas conformance: the empirical Hamiltonicity thresholds
// of the non-GNP generator families, pinned as tier-1 regressions. Each
// random family (powerlaw, geometric, sbm) was calibrated on conformanceSeed
// by sweeping its density parameter with DRA at n ∈ {256, 512}: the pinned
// above-threshold cells solved 24/24 and the pinned below-threshold controls
// solved 0/24 with every failure a genuine no-cycle classification. The
// deterministic lattices (hypercube, torus) sit outside the paper's random
// sweet spot — the rotation process reliably jams on them — so they serve as
// off-distribution controls: zero successes, zero config errors, and the
// punctured hypercube adds a provably non-Hamiltonian instance (2^d − 1
// vertices unbalances the bipartition, so no Hamiltonian cycle exists).
//
// Calibration map on conformanceSeed (DRA, step engine, 24 trials/cell,
// success counts at n=256 / n=512):
//
//	powerlaw  (δ=1):  c=4: 0/0    c=8: 1/0    c=12: 19/10  c=16: 24/24  c=24: 24/24
//	geometric (δ≡0):  c=1: 0/0    c=2: 1/1    c=3: 24/24
//	sbm       (δ=1):  c=1: 0/0    c=2: 0/0    c=4: 24/24   c=8: 24/24
//	hypercube/torus:  0 successes at every probed size (63..256), all no_hc

import (
	"testing"

	"dhc"
	"dhc/internal/bench"
)

// stepDRA is the atlas's reference solver configuration: the lattice
// families jam Upcast's per-edge bandwidth accounting, so DRA on the step
// engine is the one (algo, engine) pair every family can run.
var stepDRA = struct {
	algos   []dhc.Algorithm
	engines []bench.EngineMode
}{
	algos:   []dhc.Algorithm{dhc.AlgorithmDRA},
	engines: []bench.EngineMode{{Engine: dhc.EngineStep}},
}

// TestConformanceAtlasPowerlaw pins the Chung–Lu family above its calibrated
// threshold: at mean degree c·ln n with c ∈ {16, 24} (exponent 2.5) the
// heavy tail still leaves enough minimum degree for the rotation process,
// and DRA must solve ≥ 95% per cell. The threshold is far above GNP's c = 1
// — the price of the power-law tail's low-degree vertices. Calibrated
// slopes: 1.195 (c=16), 1.284 (c=24).
func TestConformanceAtlasPowerlaw(t *testing.T) {
	grid := Grid{
		Families:   []Family{FamilyPowerlaw},
		Sizes:      []int{256, 512},
		Params:     []float64{16, 24},
		Delta:      1,
		Algos:      stepDRA.algos,
		Engines:    stepDRA.engines,
		Trials:     24,
		MasterSeed: conformanceSeed,
	}
	runConformance(t, grid, 0.95, map[string]slopeBand{
		"dra": {lo: 0.9, hi: 1.6},
	})
}

// TestConformanceAtlasGeometric pins the random geometric family above its
// calibrated threshold: at radius 3·sqrt(ln n/(π·n)) — three times the
// connectivity knee — the clustered disc graph is Hamiltonian-solvable in
// every trial. Calibrated slope 1.598: rounds grow superlinearly because the
// rotation process fights the graph's locality (no expander shortcuts).
func TestConformanceAtlasGeometric(t *testing.T) {
	grid := Grid{
		Families:   []Family{FamilyGeometric},
		Sizes:      []int{256, 512},
		Params:     []float64{3},
		Algos:      stepDRA.algos,
		Engines:    stepDRA.engines,
		Trials:     24,
		MasterSeed: conformanceSeed,
	}
	runConformance(t, grid, 0.95, map[string]slopeBand{
		"dra": {lo: 1.2, hi: 2.0},
	})
}

// TestConformanceAtlasSBM pins the block-model family above its calibrated
// threshold: with 4 blocks at pIn/pOut = 4 and mean edge probability
// c·ln n/n, c ∈ {4, 8}, the sparse cuts still carry enough cross edges for
// a cycle through all blocks. Calibrated slopes: 1.732 (c=4), 1.350 (c=8)
// — the sparser the cut, the harder the rotation works to cross it.
func TestConformanceAtlasSBM(t *testing.T) {
	grid := Grid{
		Families:   []Family{FamilySBM},
		Sizes:      []int{256, 512},
		Params:     []float64{4, 8},
		Delta:      1,
		Algos:      stepDRA.algos,
		Engines:    stepDRA.engines,
		Trials:     24,
		MasterSeed: conformanceSeed,
	}
	runConformance(t, grid, 0.95, map[string]slopeBand{
		"dra": {lo: 1.0, hi: 2.1},
	})
}

// TestConformanceAtlasBelowThreshold is the per-family negative control:
// below each random family's calibrated threshold the instances are mostly
// non-Hamiltonian (isolated or degree-1 vertices appear w.h.p.), so success
// must collapse and every failure must classify as a genuine no-cycle
// outcome — never a round-limit or configuration error.
func TestConformanceAtlasBelowThreshold(t *testing.T) {
	for _, tc := range []struct {
		family Family
		param  float64
		delta  float64
	}{
		{FamilyPowerlaw, 4, 1},
		{FamilyGeometric, 1, 0},
		{FamilySBM, 1, 1},
	} {
		grid := Grid{
			Families:   []Family{tc.family},
			Sizes:      []int{256},
			Params:     []float64{tc.param},
			Delta:      tc.delta,
			Algos:      stepDRA.algos,
			Engines:    stepDRA.engines,
			Trials:     12,
			MasterSeed: conformanceSeed,
		}
		sec, err := Run(grid, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		c := sec.Cells[0]
		if c.SuccessRate > 0.5 {
			t.Errorf("%s: success rate %.2f below threshold — the harness is not measuring what it claims",
				c.Key(), c.SuccessRate)
		}
		if c.FailError > 0 || c.FailRoundLimit > 0 {
			t.Errorf("%s: below-threshold failures must be genuine no-cycle outcomes: %+v", c.Key(), c)
		}
	}
}

// TestConformanceAtlasLatticeControls pins the deterministic lattices as
// off-distribution controls: DRA's rotation process jams on the hypercube
// and torus at every probed size (their geodesic structure starves the head
// of unused edges long before a cycle closes), and the harness must report
// that as a clean 0% success with every trial classified no_hc — the
// generators and taxonomy stay sound on inputs the paper's analysis never
// promised to cover.
func TestConformanceAtlasLatticeControls(t *testing.T) {
	grid := Grid{
		Families:   []Family{FamilyHypercube, FamilyTorus},
		Sizes:      []int{64, 256},
		Params:     []float64{1}, // collapsed to param=0 for deterministic families
		Algos:      stepDRA.algos,
		Engines:    stepDRA.engines,
		Trials:     6,
		MasterSeed: conformanceSeed,
	}
	if err := grid.Validate(); err != nil {
		t.Fatal(err)
	}
	sec, err := Run(grid, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sec.Cells) != 4 {
		t.Fatalf("param axis did not collapse: %d cells, want 4", len(sec.Cells))
	}
	for _, c := range sec.Cells {
		if c.Successes != 0 {
			t.Errorf("%s: %d successes on a lattice DRA cannot solve — solver or generator changed shape", c.Key(), c.Successes)
		}
		if c.FailNoHC != c.Trials {
			t.Errorf("%s: want all %d trials classified no_hc, got no_hc=%d round_limit=%d error=%d (%s)",
				c.Key(), c.Trials, c.FailNoHC, c.FailRoundLimit, c.FailError, c.FirstError)
		}
	}
}

// TestConformanceAtlasPuncturedHypercube pins the provably negative control:
// Q_d minus a vertex has 2^d − 1 vertices, and deleting one corner
// unbalances the bipartition (hypercube labels split by parity), so no
// Hamiltonian cycle exists — any success here is a verifier bug, not luck.
func TestConformanceAtlasPuncturedHypercube(t *testing.T) {
	grid := Grid{
		Families:   []Family{FamilyHypercube},
		Sizes:      []int{63, 127}, // 2^6 − 1, 2^7 − 1
		Params:     []float64{1},
		Algos:      stepDRA.algos,
		Engines:    stepDRA.engines,
		Trials:     6,
		MasterSeed: conformanceSeed,
	}
	if err := grid.Validate(); err != nil {
		t.Fatal(err)
	}
	sec, err := Run(grid, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sec.Cells {
		if c.Successes != 0 {
			t.Errorf("%s: claimed a Hamiltonian cycle in a graph that provably has none", c.Key())
		}
		if c.FailNoHC != c.Trials {
			t.Errorf("%s: want all %d trials no_hc, got %+v", c.Key(), c.Trials, c)
		}
	}
}
