package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"

	"dhc"
	"dhc/internal/bench"
)

func step() []bench.EngineMode { return []bench.EngineMode{{Engine: dhc.EngineStep}} }

// encodeSection renders a sweep section the way the report file does, so
// byte comparisons test exactly what hcsweep promises.
func encodeSection(t *testing.T, sec *bench.SweepSection) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWorkerDeterminism pins the pipeline's core promise: the report is a
// pure function of (grid, master seed) — any worker count produces
// byte-identical output.
func TestWorkerDeterminism(t *testing.T) {
	grid := Grid{
		Families: []Family{FamilyGNP, FamilyGNM},
		Sizes:    []int{64, 96},
		Params:   []float64{1.5},
		Delta:    0.5,
		Algos:    []dhc.Algorithm{dhc.AlgorithmDRA, dhc.AlgorithmUpcast},
		Engines:  step(),
		Trials:   6, MasterSeed: 11,
	}
	var want []byte
	for _, workers := range []int{0, 1, 4, 8} {
		sec, err := Run(grid, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := encodeSection(t, sec)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("workers=%d produced a different report", workers)
		}
	}
}

// TestInstanceSharingAcrossSolverColumns pins the paired-trial design: all
// (algo, engine) cells of one grid point draw the same instances and solver
// seeds, so the exact engine's event-driven and dense-sweep cells must agree
// byte for byte on every cost quantile — the engine identity contract as
// sweep data.
func TestInstanceSharingAcrossSolverColumns(t *testing.T) {
	grid := Grid{
		Families: []Family{FamilyGNP},
		Sizes:    []int{48},
		Params:   []float64{1.5},
		Delta:    0.5,
		Algos:    []dhc.Algorithm{dhc.AlgorithmDRA},
		Engines: []bench.EngineMode{
			{Engine: dhc.EngineExact},
			{Engine: dhc.EngineExact, Dense: true},
		},
		Trials: 4, MasterSeed: 3,
	}
	sec, err := Run(grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sec.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(sec.Cells))
	}
	ev, dn := sec.Cells[0], sec.Cells[1]
	if ev.Engine != "exact" || dn.Engine != "exact-dense" {
		t.Fatalf("unexpected cell order: %s, %s", ev.Engine, dn.Engine)
	}
	if ev.Successes != dn.Successes || ev.Rounds != dn.Rounds {
		t.Fatalf("event-driven and dense cells disagree: %+v vs %+v", ev, dn)
	}
	if ev.Messages == nil || dn.Messages == nil {
		t.Fatal("exact cells missing message quantiles")
	}
	if *ev.Messages != *dn.Messages || *ev.Bits != *dn.Bits {
		t.Fatalf("message/bit quantiles differ: %+v/%+v vs %+v/%+v",
			ev.Messages, ev.Bits, dn.Messages, dn.Bits)
	}
}

// TestFailureTaxonomy drives each failure class through a cell engineered
// to produce it: far-below-threshold GNP yields genuine no-cycle outcomes,
// an infeasible regular configuration (odd n·d) yields configuration
// errors — and the two must never be conflated.
func TestFailureTaxonomy(t *testing.T) {
	noHC := Grid{
		Families: []Family{FamilyGNP},
		Sizes:    []int{64},
		Params:   []float64{0.3}, // far below the Hamiltonicity threshold
		Delta:    1,
		Algos:    []dhc.Algorithm{dhc.AlgorithmDRA},
		Engines:  step(),
		Trials:   6, MasterSeed: 5,
	}
	sec, err := Run(noHC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := sec.Cells[0]
	if c.FailNoHC == 0 || c.FailError != 0 || c.FailRoundLimit != 0 {
		t.Fatalf("sub-threshold cell should fail as no_hc only: %+v", c)
	}
	if c.Successes+c.FailNoHC != c.Trials {
		t.Fatalf("outcomes do not partition trials: %+v", c)
	}
	if c.FirstError == "" {
		t.Fatal("failing cell should sample an error message")
	}

	infeasible := Grid{
		Families: []Family{FamilyRegular},
		Sizes:    []int{15}, // 15 * 3 odd: no 3-regular graph exists
		Params:   []float64{3},
		Algos:    []dhc.Algorithm{dhc.AlgorithmDRA},
		Engines:  step(),
		Trials:   3, MasterSeed: 5,
	}
	sec, err = Run(infeasible, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c = sec.Cells[0]
	if c.FailError != c.Trials {
		t.Fatalf("infeasible generator should classify all trials as errors: %+v", c)
	}
	if c.FailNoHC != 0 {
		t.Fatalf("config errors must not be counted as no-cycle outcomes: %+v", c)
	}
}

// TestRegularFamilySolves sanity-checks the third workload end to end: a
// random 8-regular graph at modest n is Hamiltonian-dense enough for DRA.
func TestRegularFamilySolves(t *testing.T) {
	grid := Grid{
		Families: []Family{FamilyRegular},
		Sizes:    []int{64},
		Params:   []float64{8},
		Algos:    []dhc.Algorithm{dhc.AlgorithmDRA},
		Engines:  step(),
		Trials:   6, MasterSeed: 9,
	}
	sec, err := Run(grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := sec.Cells[0]
	if c.Successes == 0 {
		t.Fatalf("8-regular n=64 should mostly solve: %+v", c)
	}
	if c.P != 0 || c.Delta != 0 {
		t.Fatalf("regular cells must not carry gnp fields: %+v", c)
	}
}

// TestResumeReusesCells pins resume soundness: reused cells short-circuit
// computation, fresh cells still run, and the combined report is identical
// to a from-scratch run of the larger grid.
func TestResumeReusesCells(t *testing.T) {
	small := Grid{
		Families: []Family{FamilyGNP},
		Sizes:    []int{64},
		Params:   []float64{1.5},
		Delta:    0.5,
		Algos:    []dhc.Algorithm{dhc.AlgorithmDRA},
		Engines:  step(),
		Trials:   5, MasterSeed: 13,
	}
	big := small
	big.Sizes = []int{64, 96}

	first, err := Run(small, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resume := map[string]bench.CellStats{}
	for _, c := range first.Cells {
		resume[c.Key()] = c
	}
	reusedByKey := map[string]bool{}
	combined, err := Run(big, Options{
		Resume: resume,
		Progress: func(cell Cell, _ bench.CellStats, reused bool) {
			reusedByKey[cell.Key()] = reused
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reusedByKey[first.Cells[0].Key()] {
		t.Fatal("previously computed cell was re-run")
	}
	fresh, err := Run(big, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeSection(t, combined), encodeSection(t, fresh)) {
		t.Fatal("resumed run differs from a from-scratch run")
	}
}

// TestFitsRecoversKnownSlope feeds synthetic cells with rounds = n^1.5 and
// checks the log-log fit recovers the exponent; a series present at only
// one size must produce no fit, and a zero-valued statistic must report the
// "no data" zero rather than NaN.
func TestFitsRecoversKnownSlope(t *testing.T) {
	mk := func(n int, rounds int64) bench.CellStats {
		return bench.CellStats{
			Family: "gnp", N: n, Param: 2, Delta: 1, Algo: "dra", Engine: "step",
			Trials: 4, Successes: 4, SuccessRate: 1,
			Rounds: bench.Quantiles{P50: rounds, P90: rounds, Max: rounds},
		}
	}
	cells := []bench.CellStats{
		mk(100, 1000), mk(400, 8000), mk(1600, 64000), // rounds = n^1.5
		{Family: "gnm", N: 64, Param: 2, Algo: "dra", Engine: "step",
			Trials: 4, Successes: 4, SuccessRate: 1}, // single size: no fit
	}
	fits := Fits(cells)
	if len(fits) != 1 {
		t.Fatalf("got %d fits, want 1: %+v", len(fits), fits)
	}
	if got := fits[0].RoundsSlope; math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("rounds slope %v, want 1.5", got)
	}
	if fits[0].StepsSlope != 0 {
		t.Fatalf("all-zero steps series should fit the no-data zero, got %v", fits[0].StepsSlope)
	}
	if fits[0].Points != 3 {
		t.Fatalf("points %d, want 3", fits[0].Points)
	}
}

// TestGridValidate rejects malformed axes.
func TestGridValidate(t *testing.T) {
	good := Grid{
		Families: []Family{FamilyGNP}, Sizes: []int{64}, Params: []float64{1.5},
		Algos: []dhc.Algorithm{dhc.AlgorithmDRA}, Engines: step(),
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	for name, mut := range map[string]func(*Grid){
		"no families":        func(g *Grid) { g.Families = nil },
		"no sizes":           func(g *Grid) { g.Sizes = nil },
		"tiny size":          func(g *Grid) { g.Sizes = []int{2} },
		"no params":          func(g *Grid) { g.Params = nil },
		"no algos":           func(g *Grid) { g.Algos = nil },
		"no engines":         func(g *Grid) { g.Engines = nil },
		"delta out of range": func(g *Grid) { g.Delta = 1.5 },
		"fractional degree": func(g *Grid) {
			g.Families = []Family{FamilyRegular}
			g.Params = []float64{2.5}
		},
	} {
		g := good
		mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestParseFamily round-trips the family vocabulary and pins the
// deterministic (sorted) vocabulary listing of the parse error, matching
// the ParseAlgorithm / ParseEngineMode contract.
func TestParseFamily(t *testing.T) {
	for _, f := range []Family{
		FamilyGNP, FamilyGNM, FamilyRegular,
		FamilyPowerlaw, FamilyGeometric, FamilySBM, FamilyHypercube, FamilyTorus,
	} {
		got, err := ParseFamily(f.String())
		if err != nil || got != f {
			t.Fatalf("round trip %v: got %v, %v", f, got, err)
		}
	}
	_, err := ParseFamily("smallworld")
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	want := `sweep: unknown graph family "smallworld" (valid: geometric, gnm, gnp, hypercube, powerlaw, regular, sbm, torus)`
	if err.Error() != want {
		t.Fatalf("ParseFamily error = %q, want %q", err.Error(), want)
	}
	fams, err := ParseFamilies("gnp, regular")
	if err != nil || len(fams) != 2 {
		t.Fatalf("ParseFamilies: %v, %v", fams, err)
	}
}

// TestFamilyNamesLockstep pins the two family vocabularies to each other:
// sweep.FamilyNames derives from the parse map that drives the CLIs, and
// bench.FamilyNames is the report schema's hand-maintained copy (the bench
// package cannot import sweep). A family added to one side only fails here.
func TestFamilyNamesLockstep(t *testing.T) {
	got, want := FamilyNames(), bench.FamilyNames()
	if len(got) != len(want) {
		t.Fatalf("sweep.FamilyNames = %v, bench.FamilyNames = %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("vocabulary diverged at %d: sweep=%v bench=%v", i, got, want)
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("FamilyNames not sorted: %v", got)
		}
	}
	for _, name := range got {
		if !bench.ValidFamily(name) {
			t.Fatalf("bench.ValidFamily(%q) = false for a listed family", name)
		}
		if _, err := ParseFamily(name); err != nil {
			t.Fatalf("ParseFamily(%q) failed for a listed family: %v", name, err)
		}
	}
}

// TestGridValidateLatticeSizes pins the structured-family size rules:
// hypercube cells need 2^d or the punctured 2^d−1 vertices, torus cells a
// perfect square with side >= 3.
func TestGridValidateLatticeSizes(t *testing.T) {
	base := Grid{
		Params:  []float64{1},
		Algos:   []dhc.Algorithm{dhc.AlgorithmDRA},
		Engines: []bench.EngineMode{{Engine: dhc.EngineStep}},
		Trials:  1, MasterSeed: 1,
	}
	for _, tc := range []struct {
		family Family
		size   int
		ok     bool
	}{
		{FamilyHypercube, 64, true},
		{FamilyHypercube, 63, true}, // punctured 2^6 − 1
		{FamilyHypercube, 65, false},
		{FamilyHypercube, 4, false}, // below the solver's minimum scale
		{FamilyTorus, 64, true},
		{FamilyTorus, 9, true},
		{FamilyTorus, 60, false},
		{FamilyTorus, 4, false}, // side 2 degenerates to duplicate wraps
	} {
		g := base
		g.Families = []Family{tc.family}
		g.Sizes = []int{tc.size}
		err := g.Validate()
		if tc.ok && err != nil {
			t.Errorf("%v n=%d rejected: %v", tc.family, tc.size, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%v n=%d accepted", tc.family, tc.size)
		}
	}
}

// TestCellTimeoutRecordsCanceled pins the per-cell timeout path: an
// already-expired cell budget cuts every trial off, the outcomes land in
// FailCanceled (not in the error or no-hc statistics), and the resulting
// section still satisfies the report schema's partition invariant.
func TestCellTimeoutRecordsCanceled(t *testing.T) {
	grid := Grid{
		Families: []Family{FamilyGNP},
		Sizes:    []int{64},
		Params:   []float64{1.5},
		Delta:    0.5,
		Algos:    []dhc.Algorithm{dhc.AlgorithmDRA},
		Engines:  []bench.EngineMode{{Engine: dhc.EngineExact}},
		Trials:   4, MasterSeed: 5,
	}
	sec, err := Run(grid, Options{CellTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(sec.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(sec.Cells))
	}
	c := sec.Cells[0]
	if c.FailCanceled != c.Trials {
		t.Fatalf("expired cell budget: %d of %d trials canceled (%+v)", c.FailCanceled, c.Trials, c)
	}
	if c.Successes != 0 || c.FailError != 0 || c.FailNoHC != 0 || c.FailRoundLimit != 0 {
		t.Fatalf("canceled trials bled into other statistics: %+v", c)
	}
	rep := bench.NewReport("test", "go", 1)
	rep.Sweep = sec
	if err := rep.Validate(); err != nil {
		t.Fatalf("canceled cell breaks the schema partition: %v", err)
	}
}

// TestRunContextCancellation pins the interrupt path: a sweep cancelled
// after its first cell returns exactly the finished cells plus ctx's error,
// and the in-flight cell is abandoned rather than recorded — which is what
// keeps an interrupted checkpoint resumable to a byte-identical report.
func TestRunContextCancellation(t *testing.T) {
	grid := Grid{
		Families: []Family{FamilyGNP},
		Sizes:    []int{48, 64, 96},
		Params:   []float64{1.5},
		Delta:    0.5,
		Algos:    []dhc.Algorithm{dhc.AlgorithmDRA},
		Engines:  step(),
		Trials:   4, MasterSeed: 7,
	}
	full, err := Run(grid, Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{Progress: func(cell Cell, stats bench.CellStats, reused bool) {
		cancel() // interrupt after the first completed cell
	}}
	partial, err := RunContext(ctx, grid, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	if len(partial.Cells) != 1 {
		t.Fatalf("cancelled sweep recorded %d cells, want exactly the 1 finished before cancel", len(partial.Cells))
	}
	if got, want := encodeCell(t, partial.Cells[0]), encodeCell(t, full.Cells[0]); !bytes.Equal(got, want) {
		t.Fatal("finished cell of the interrupted sweep differs from the uninterrupted run")
	}

	// Resuming from the partial section must complete the identical report.
	resume := map[string]bench.CellStats{}
	for _, c := range partial.Cells {
		resume[c.Key()] = c
	}
	reusedCount := 0
	resumed, err := Run(grid, Options{
		Resume: resume,
		Progress: func(cell Cell, stats bench.CellStats, reused bool) {
			if reused {
				reusedCount++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reusedCount != 1 {
		t.Fatalf("resume reused %d cells, want 1", reusedCount)
	}
	if !bytes.Equal(encodeSection(t, resumed), encodeSection(t, full)) {
		t.Fatal("resumed sweep differs from the uninterrupted run")
	}
}

// TestResumeSkipsCanceledCells pins the rule that a cell carrying canceled
// trials is never reused: it is wall-clock dependent, so resume must re-run
// it to restore determinism.
func TestResumeSkipsCanceledCells(t *testing.T) {
	grid := Grid{
		Families: []Family{FamilyGNP},
		Sizes:    []int{48},
		Params:   []float64{1.5},
		Delta:    0.5,
		Algos:    []dhc.Algorithm{dhc.AlgorithmDRA},
		Engines:  step(),
		Trials:   4, MasterSeed: 9,
	}
	full, err := Run(grid, Options{})
	if err != nil {
		t.Fatal(err)
	}
	poisoned := full.Cells[0]
	poisoned.Successes = 0
	poisoned.FailCanceled = poisoned.Trials
	poisoned.SuccessRate = 0
	reused := false
	resumed, err := Run(grid, Options{
		Resume:   map[string]bench.CellStats{poisoned.Key(): poisoned},
		Progress: func(cell Cell, stats bench.CellStats, r bool) { reused = reused || r },
	})
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("canceled cell was reused on resume")
	}
	if !bytes.Equal(encodeSection(t, resumed), encodeSection(t, full)) {
		t.Fatal("re-run after skipping the canceled cell differs from the clean run")
	}
}

// encodeCell renders one cell for byte comparison.
func encodeCell(t *testing.T, c bench.CellStats) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
