package sweep

// Regression tests for the per-cell diagnostics contract: FirstError samples
// failure messages by class severity (a config error is never masked by a
// routine no_hc string that happened to land in an earlier trial), and a
// solver-constructor failure surfaces as fail_error trials with the real
// message — never a nil-pointer panic.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"dhc"
	"dhc/internal/rng"
)

// TestFirstErrorPrefersConfigErrors pins the FirstError priority on a
// mixed-outcome cell: a no_hc sentinel in trial 0 must not occupy the slot
// when a later trial hit a genuine configuration error — that message is the
// one hcsweep -validate prints for the cell.
func TestFirstErrorPrefersConfigErrors(t *testing.T) {
	cell := Cell{Family: FamilyGNP, N: 64, Param: 1.5, Delta: 1,
		Algo: dhc.AlgorithmDRA, Engine: step()[0]}
	noHC := trialOutcome{class: dhc.FailureNoHC, err: errors.New("dhc: no Hamiltonian cycle found")}
	cfg := trialOutcome{class: dhc.FailureError, err: errors.New("dhc: delta 7 outside (0, 1]")}
	limit := trialOutcome{class: dhc.FailureRoundLimit, err: errors.New("congest: round limit reached")}
	canceled := trialOutcome{class: dhc.FailureCanceled, err: context.Canceled}

	cases := []struct {
		name string
		outs []trialOutcome
		want string
	}{
		{"config error beats earlier no_hc", []trialOutcome{noHC, limit, cfg}, cfg.err.Error()},
		{"round limit beats earlier no_hc", []trialOutcome{noHC, limit}, limit.err.Error()},
		{"canceled beats earlier no_hc", []trialOutcome{noHC, canceled}, canceled.err.Error()},
		{"no_hc fallback", []trialOutcome{noHC}, noHC.err.Error()},
		{"first in trial order within a class",
			[]trialOutcome{{class: dhc.FailureError, err: errors.New("first")},
				{class: dhc.FailureError, err: errors.New("second")}}, "first"},
		{"all ok leaves the slot empty", []trialOutcome{{class: dhc.FailureNone}}, ""},
	}
	for _, tc := range cases {
		stats := foldOutcomes(cell, len(tc.outs), tc.outs)
		if stats.FirstError != tc.want {
			t.Errorf("%s: FirstError = %q, want %q", tc.name, stats.FirstError, tc.want)
		}
	}

	// The outcome counters still partition the trials regardless of which
	// message was sampled.
	stats := foldOutcomes(cell, 3, []trialOutcome{noHC, limit, cfg})
	if stats.FailNoHC != 1 || stats.FailRoundLimit != 1 || stats.FailError != 1 {
		t.Fatalf("mixed cell counters: no_hc=%d round_limit=%d error=%d, want 1/1/1",
			stats.FailNoHC, stats.FailRoundLimit, stats.FailError)
	}
}

// TestConstructorErrorSurfacesAsFailError pins the runCell contract through
// the constructor seam: when dhc.NewSolver fails, every trial of the cell
// must be recorded as fail_error carrying the constructor's real message —
// not panic on a nil solver, and not silently fall back to a different error.
func TestConstructorErrorSurfacesAsFailError(t *testing.T) {
	ctorErr := errors.New("dhc: broadcast bound -1 must be >= 0")
	old := newSolver
	newSolver = func(dhc.Algorithm, dhc.Options) (*dhc.Solver, error) { return nil, ctorErr }
	defer func() { newSolver = old }()

	grid := Grid{
		Families:   []Family{FamilyGNP},
		Sizes:      []int{16},
		Params:     []float64{1.5},
		Algos:      []dhc.Algorithm{dhc.AlgorithmDRA},
		Engines:    step(),
		Trials:     4,
		MasterSeed: 1,
	}
	for _, workers := range []int{1, 4} {
		sec, err := Run(grid, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: Run: %v", workers, err)
		}
		if len(sec.Cells) != 1 {
			t.Fatalf("workers=%d: %d cells, want 1", workers, len(sec.Cells))
		}
		c := sec.Cells[0]
		if c.FailError != grid.Trials || c.Successes != 0 {
			t.Fatalf("workers=%d: fail_error=%d successes=%d, want %d/0",
				workers, c.FailError, c.Successes, grid.Trials)
		}
		if c.FirstError != ctorErr.Error() {
			t.Fatalf("workers=%d: FirstError = %q, want the constructor message %q",
				workers, c.FirstError, ctorErr.Error())
		}
	}
}

// TestRunTrialNilSolver exercises the nil-solver fallback path directly: a
// trial handed no session must fall back to one-shot solving and produce the
// same outcome a session trial does (the solver determinism contract), never
// dereference the nil pointer.
func TestRunTrialNilSolver(t *testing.T) {
	grid := Grid{Delta: 1}
	cell := Cell{Family: FamilyGNP, N: 48, Param: 1.5, Delta: 1,
		Algo: dhc.AlgorithmDRA, Engine: step()[0]}

	solver, err := dhc.NewSolver(cell.Algo, dhc.Options{Engine: dhc.EngineStep, Delta: 1})
	if err != nil {
		t.Fatal(err)
	}
	withSession := runTrial(context.Background(), &grid, cell, solver, rng.New(9))
	fallback := runTrial(context.Background(), &grid, cell, nil, rng.New(9))

	if fallback.class != withSession.class {
		t.Fatalf("fallback class %v != session class %v", fallback.class, withSession.class)
	}
	if fallback.rounds != withSession.rounds || fallback.steps != withSession.steps {
		t.Fatalf("fallback costs (%d rounds, %d steps) != session costs (%d, %d)",
			fallback.rounds, fallback.steps, withSession.rounds, withSession.steps)
	}
	if fallback.err != nil && withSession.err != nil &&
		fallback.err.Error() != withSession.err.Error() {
		t.Fatalf("fallback error %q != session error %q", fallback.err, withSession.err)
	}
	if fallback.err != nil && !strings.Contains(fallback.err.Error(), "dhc") &&
		fallback.class == dhc.FailureError {
		t.Fatalf("unexpected fallback config error: %v", fallback.err)
	}
}
