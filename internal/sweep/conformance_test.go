package sweep

// Paper-conformance regression tests: the statistical claims of
// ChatterjeeFPP18 pinned as assertions over a Monte Carlo grid. The paper
// says that above the threshold p = c·ln n / n^δ its algorithms find a
// Hamiltonian cycle w.h.p. within the stated round budgets; these tests run
// a deterministic sweep (fixed master seed, so every trial is reproducible)
// and require (a) a ≥ 95% success rate above threshold and (b) the log-log
// scaling slope of median rounds vs n to stay inside a pinned tolerance
// band. A code change that silently degrades the success probability or the
// asymptotic shape of the round cost now fails the build instead of only
// shifting a benchmark number.

import (
	"testing"

	"dhc"
	"dhc/internal/bench"
)

// conformanceSeed fixes the Monte Carlo sample used by the regression
// assertions. The bands below were calibrated on this seed; changing it
// requires re-calibrating them.
const conformanceSeed = 2018

// slopeBand is the pinned tolerance band for a series' rounds slope.
type slopeBand struct{ lo, hi float64 }

// runConformance executes the grid and checks every cell's success rate and
// every expected series' scaling slope.
func runConformance(t *testing.T, grid Grid, minRate float64, bands map[string]slopeBand) {
	t.Helper()
	sec, err := Run(grid, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sec.Cells {
		if c.FailError > 0 {
			t.Errorf("%s: %d configuration-error trials: %s", c.Key(), c.FailError, c.FirstError)
		}
		if c.SuccessRate < minRate {
			t.Errorf("%s: success rate %.2f below the conformance threshold %.2f (%d/%d, no_hc=%d round_limit=%d): %s",
				c.Key(), c.SuccessRate, minRate, c.Successes, c.Trials,
				c.FailNoHC, c.FailRoundLimit, c.FirstError)
		}
	}
	seen := map[string]bool{}
	for _, f := range sec.Fits {
		band, ok := bands[f.Algo]
		if !ok {
			continue
		}
		seen[f.Algo] = true
		if f.RoundsSlope < band.lo || f.RoundsSlope > band.hi {
			t.Errorf("%s rounds scaling slope %.3f outside the pinned band [%.2f, %.2f]",
				f.Algo, f.RoundsSlope, band.lo, band.hi)
		}
	}
	for algo := range bands {
		if !seen[algo] {
			t.Errorf("no scaling fit produced for %s (all cells failed?)", algo)
		}
	}
}

// TestConformanceAboveThresholdDHC1Regime pins the w.h.p. claim in the
// paper's DHC1 density regime: GNP at p = c·ln n / √n with c = 1 + δ = 1.5
// must solve ≥ 95% of 24 trials per cell at n ∈ {256, 512} for both the
// rotation building block and the Upcast baseline, and median rounds must
// scale within the pinned bands (DRA ~ n·polylog ⇒ slope ≈ 1.3 at these
// sizes; Upcast ~ n·log n / deg ⇒ slope ≈ 1.1).
func TestConformanceAboveThresholdDHC1Regime(t *testing.T) {
	grid := Grid{
		Families:   []Family{FamilyGNP},
		Sizes:      []int{256, 512},
		Params:     []float64{1.5},
		Delta:      0.5,
		Algos:      []dhc.Algorithm{dhc.AlgorithmDRA, dhc.AlgorithmUpcast},
		Engines:    []bench.EngineMode{{Engine: dhc.EngineStep}},
		Trials:     24,
		MasterSeed: conformanceSeed,
	}
	runConformance(t, grid, 0.95, map[string]slopeBand{
		// Calibrated slopes on conformanceSeed: dra 1.310, upcast 1.058.
		"dra":    {lo: 1.0, hi: 1.6},
		"upcast": {lo: 0.8, hi: 1.35},
	})
}

// TestConformanceConnectivityRegimeDHC2 pins the same claim in the sparse
// δ = 1 regime DHC2 is designed for: GNP at p = 4·ln n / n (safely above
// the Hamiltonicity threshold c = 1) must solve ≥ 95% per cell, with the
// median-rounds slope inside the pinned band (calibrated 0.713 — phase 2's
// merge tree keeps the growth sublinear at these sizes).
func TestConformanceConnectivityRegimeDHC2(t *testing.T) {
	grid := Grid{
		Families:   []Family{FamilyGNP},
		Sizes:      []int{256, 512},
		Params:     []float64{4},
		Delta:      1,
		Algos:      []dhc.Algorithm{dhc.AlgorithmDHC2},
		Engines:    []bench.EngineMode{{Engine: dhc.EngineStep}},
		Trials:     24,
		MasterSeed: conformanceSeed,
	}
	runConformance(t, grid, 0.95, map[string]slopeBand{
		"dhc2": {lo: 0.4, hi: 1.0},
	})
}

// TestConformanceBelowThreshold is the negative control: far below the
// threshold the instances are mostly not Hamiltonian, so a high success
// rate would mean the harness (or the verifier) is broken. Every failure
// must classify as a genuine no-cycle outcome, never a config error.
func TestConformanceBelowThreshold(t *testing.T) {
	grid := Grid{
		Families:   []Family{FamilyGNP},
		Sizes:      []int{256},
		Params:     []float64{0.3},
		Delta:      1,
		Algos:      []dhc.Algorithm{dhc.AlgorithmDRA},
		Engines:    []bench.EngineMode{{Engine: dhc.EngineStep}},
		Trials:     12,
		MasterSeed: conformanceSeed,
	}
	sec, err := Run(grid, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := sec.Cells[0]
	if c.SuccessRate > 0.5 {
		t.Fatalf("success rate %.2f far below threshold — the harness is not measuring what it claims", c.SuccessRate)
	}
	if c.FailError > 0 || c.FailRoundLimit > 0 {
		t.Fatalf("below-threshold failures must be genuine no-cycle outcomes: %+v", c)
	}
}
