// Package rng provides a small, fast, deterministic pseudo-random number
// generator with support for splitting into independent streams.
//
// The distributed algorithms in this repository are randomized, and their
// simulations may execute nodes concurrently. To keep every run a pure
// function of its seed regardless of goroutine scheduling, each node derives
// its own stream from the run seed with Split. Splitting uses splitmix64 to
// whiten the (seed, index) pair into the 256-bit state of a xoshiro256**
// generator, following the recommendation of Blackman & Vigna.
package rng

import "math"

// splitmix64 advances a 64-bit state and returns the next output. It is used
// only for seeding: its outputs are well distributed even for adjacent
// inputs, which makes (seed, i) -> stream derivation safe.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** pseudo-random generator. The zero value is not a
// valid source; construct with New or Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// New returns a Source seeded from the given 64-bit seed.
func New(seed uint64) *Source {
	var src Source
	src.reseed(seed)
	return &src
}

func (r *Source) reseed(seed uint64) {
	state := seed
	r.s0 = splitmix64(&state)
	r.s1 = splitmix64(&state)
	r.s2 = splitmix64(&state)
	r.s3 = splitmix64(&state)
	// xoshiro must not be seeded with the all-zero state; splitmix64 of any
	// seed never produces four zero outputs in a row, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
}

// Split derives an independent child stream identified by index. Two children
// with different indices, or children of different parents, behave as
// statistically independent generators.
func (r *Source) Split(index uint64) *Source {
	var child Source
	r.SplitInto(&child, index)
	return &child
}

// SplitInto reseeds child in place with the stream Split(index) would return,
// so run arenas can rederive per-node streams across runs without allocating
// a new Source per node per run.
func (r *Source) SplitInto(child *Source, index uint64) {
	// Mix the parent's current state with the index through splitmix64.
	state := r.s0 ^ (r.s2 << 1) ^ (index * 0x9e3779b97f4a7c15)
	child.reseed(splitmix64(&state))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform pseudo-random integer in [0, n). It panics if n <= 0,
// mirroring math/rand; callers always pass positive bounds.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and avoids division
	// in the common case.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask32
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= t << 32
	hi = aHi*bHi + hiPart + (t >> 32)
	return hi, lo
}

// Float64 returns a uniform pseudo-random float in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, via Fisher-Yates.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric samples the number of failures before the first success of a
// Bernoulli(p) sequence, i.e. a geometric distribution on {0, 1, 2, ...}.
// It is used to skip over absent edges when generating G(n,p) graphs in
// expected O(np) time instead of O(n^2).
func (r *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt32
	}
	u := r.Float64()
	// Guard against log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	k := math.Floor(math.Log(u) / math.Log1p(-p))
	if k > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(k)
}
