package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams from different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)
	for i := 0; i < 100; i++ {
		v1, v2, v3 := c1.Uint64(), c2.Uint64(), c1again.Uint64()
		if v1 != v3 {
			t.Fatalf("Split(1) not deterministic at step %d", i)
		}
		if v1 == v2 {
			t.Fatalf("Split(1) and Split(2) collided at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(13)
	const p, trials = 0.3, 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	mean := float64(hits) / trials
	if math.Abs(mean-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) empirical mean %v", p, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(21)
	const p, trials = 0.2, 200000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / trials
	want := (1 - p) / p // mean of geometric on {0,1,...}
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) empirical mean %v, want ~%v", p, mean, want)
	}
}

func TestGeometricEdges(t *testing.T) {
	r := New(22)
	if got := r.Geometric(1); got != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", got)
	}
	if got := r.Geometric(0); got != math.MaxInt32 {
		t.Fatalf("Geometric(0) = %d, want MaxInt32", got)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
