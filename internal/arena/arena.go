// Package arena holds the small scaffolding helpers shared by the reusable
// run-session layers: bounded worker pools with the deterministic-merge
// discipline, and slice sizing that recovers shrunken capacity. It sits
// below every driver package so the session types cannot drift apart on
// these semantics.
package arena

import "sync"

// RunPool runs fn(worker, item) for every item in [0, items): inline (as
// worker 0) when workers <= 1, else on a bounded pool of min(workers, items)
// goroutines. fn must only write state owned by its item or its worker
// index; callers get determinism by folding per-item results in item order
// afterwards.
func RunPool(workers, items int, fn func(worker, item int)) {
	if workers > items {
		workers = items
	}
	if workers <= 1 {
		for i := 0; i < items; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				fn(w, i)
			}
		}(w)
	}
	for i := 0; i < items; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Resize returns s with length n, recovering shrunken capacity (and the
// pointer values it holds) before allocating, so session program slices keep
// their reusable elements across runs of varying size.
func Resize[T any](s []T, n int) []T {
	if n <= cap(s) {
		return s[:n]
	}
	next := make([]T, n)
	copy(next, s[:cap(s)])
	return next
}
