// Package metrics collects the quantities the paper's theorems are about:
// rounds, algorithm steps, messages, bits on the wire, and per-node memory
// high-water marks. DHC1/DHC2 claim fully-distributed execution (o(n) memory
// per node, balanced computation); the Upcast algorithm concentrates Ω(n)
// memory at the root. These counters make both claims measurable.
package metrics

import (
	"fmt"
	"sort"
)

// Counters aggregates the cost of a single algorithm run. It is not safe for
// concurrent use; the parallel executor merges per-worker counters at round
// barriers.
type Counters struct {
	// Rounds is the number of synchronous CONGEST rounds consumed. The
	// event-driven exact engine charges skipped quiet rounds here too, so
	// Rounds is identical between the event-driven schedule and the dense
	// sweep.
	Rounds int64
	// RoundsSkipped is the subset of Rounds the event-driven engine charged
	// without executing (no messages in flight, no wake-up due). Zero under
	// the dense sweep; it meters how much of a run's round budget is quiet
	// time.
	RoundsSkipped int64
	// Invocations counts node program calls (Init + Round). The dense sweep
	// pays ~Rounds*n of these; the event-driven engine pays only for active
	// nodes, which is the O(active + messages) claim made measurable.
	Invocations int64
	// Steps counts algorithm-level steps: one rotation or one path
	// extension of a rotation algorithm (the unit of Theorem 2), or one
	// merge operation in DHC2 Phase 2.
	Steps int64
	// Messages is the total count of point-to-point messages delivered.
	Messages int64
	// Bits is the total message payload size delivered, in bits.
	Bits int64
	// MaxMessageBits is the widest single message observed, to check the
	// CONGEST O(log n)-bit constraint.
	MaxMessageBits int64

	// perNodeMem[v] is the high-water retained state of node v, in words.
	perNodeMem []int64
	// perNodeWork[v] counts local computation operations of node v, used
	// for the load-balance claim.
	perNodeWork []int64
}

// NewCounters returns counters for an n-node run.
func NewCounters(n int) *Counters {
	return &Counters{
		perNodeMem:  make([]int64, n),
		perNodeWork: make([]int64, n),
	}
}

// AddMessage records one delivered message of the given payload width.
func (c *Counters) AddMessage(bits int64) {
	c.Messages++
	c.Bits += bits
	if bits > c.MaxMessageBits {
		c.MaxMessageBits = bits
	}
}

// ObserveMemory records the current retained-state size (words) of node v,
// keeping the maximum.
func (c *Counters) ObserveMemory(v int, words int64) {
	if v >= 0 && v < len(c.perNodeMem) && words > c.perNodeMem[v] {
		c.perNodeMem[v] = words
	}
}

// AddWork charges ops units of local computation to node v.
func (c *Counters) AddWork(v int, ops int64) {
	if v >= 0 && v < len(c.perNodeWork) {
		c.perNodeWork[v] += ops
	}
}

// Merge folds other into c (used at round barriers by the parallel executor).
// Per-node slices must have equal length.
func (c *Counters) Merge(other *Counters) {
	c.Rounds += other.Rounds
	c.RoundsSkipped += other.RoundsSkipped
	c.Invocations += other.Invocations
	c.Steps += other.Steps
	c.Messages += other.Messages
	c.Bits += other.Bits
	if other.MaxMessageBits > c.MaxMessageBits {
		c.MaxMessageBits = other.MaxMessageBits
	}
	for i := range other.perNodeMem {
		if other.perNodeMem[i] > c.perNodeMem[i] {
			c.perNodeMem[i] = other.perNodeMem[i]
		}
		c.perNodeWork[i] += other.perNodeWork[i]
	}
}

// PerNodeRange returns the [lo, hi) subslices of the per-node memory and
// work counters. The distributed engine uses it to serialize a shard's
// per-node metering; the slices alias c and must not be retained.
func (c *Counters) PerNodeRange(lo, hi int) (mem, work []int64) {
	return c.perNodeMem[lo:hi], c.perNodeWork[lo:hi]
}

// SetPerNodeRange copies mem and work into the per-node counters starting at
// node lo — the restore half of PerNodeRange, used by the coordinator to
// fold a shard's per-node metering into the run totals.
func (c *Counters) SetPerNodeRange(lo int, mem, work []int64) {
	copy(c.perNodeMem[lo:], mem)
	copy(c.perNodeWork[lo:], work)
}

// Distribution summarizes a per-node quantity.
type Distribution struct {
	Min, Max, Total int64
	Mean            float64
	// P50 and P99 are order statistics (nearest-rank).
	P50, P99 int64
}

// BalanceRatio is Max / Mean; ~1 means perfectly balanced, >> 1 means one
// node does disproportionate work (the Upcast root).
func (d Distribution) BalanceRatio() float64 {
	if d.Mean == 0 {
		return 0
	}
	return float64(d.Max) / d.Mean
}

func summarize(values []int64) Distribution {
	if len(values) == 0 {
		return Distribution{}
	}
	sorted := make([]int64, len(values))
	copy(sorted, values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total int64
	for _, v := range sorted {
		total += v
	}
	rank := func(p float64) int64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return Distribution{
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Total: total,
		Mean:  float64(total) / float64(len(sorted)),
		P50:   rank(0.50),
		P99:   rank(0.99),
	}
}

// MemoryDistribution summarizes per-node memory high-water marks.
func (c *Counters) MemoryDistribution() Distribution { return summarize(c.perNodeMem) }

// WorkDistribution summarizes per-node local computation.
func (c *Counters) WorkDistribution() Distribution { return summarize(c.perNodeWork) }

// String renders a one-line summary.
func (c *Counters) String() string {
	mem := c.MemoryDistribution()
	return fmt.Sprintf("rounds=%d steps=%d msgs=%d bits=%d maxMsgBits=%d maxMemWords=%d",
		c.Rounds, c.Steps, c.Messages, c.Bits, c.MaxMessageBits, mem.Max)
}
