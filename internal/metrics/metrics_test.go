package metrics

import (
	"strings"
	"testing"
)

func TestAddMessage(t *testing.T) {
	c := NewCounters(3)
	c.AddMessage(10)
	c.AddMessage(32)
	c.AddMessage(8)
	if c.Messages != 3 || c.Bits != 50 || c.MaxMessageBits != 32 {
		t.Fatalf("got msgs=%d bits=%d max=%d", c.Messages, c.Bits, c.MaxMessageBits)
	}
}

func TestObserveMemoryKeepsMax(t *testing.T) {
	c := NewCounters(2)
	c.ObserveMemory(0, 10)
	c.ObserveMemory(0, 5)
	c.ObserveMemory(0, 20)
	c.ObserveMemory(5, 99) // out of range: ignored
	d := c.MemoryDistribution()
	if d.Max != 20 || d.Min != 0 {
		t.Fatalf("distribution %+v", d)
	}
}

func TestWorkAndBalance(t *testing.T) {
	c := NewCounters(4)
	for v := 0; v < 4; v++ {
		c.AddWork(v, 10)
	}
	c.AddWork(0, 30) // node 0 does 4x the mean-ish work
	d := c.WorkDistribution()
	if d.Total != 70 || d.Max != 40 {
		t.Fatalf("distribution %+v", d)
	}
	if r := d.BalanceRatio(); r < 2.0 || r > 2.5 {
		t.Fatalf("balance ratio %v, want ~2.29", r)
	}
}

func TestMerge(t *testing.T) {
	a := NewCounters(2)
	b := NewCounters(2)
	a.Rounds, b.Rounds = 3, 4
	a.Steps, b.Steps = 1, 2
	a.AddMessage(8)
	b.AddMessage(16)
	a.ObserveMemory(0, 5)
	b.ObserveMemory(0, 9)
	b.ObserveMemory(1, 2)
	a.AddWork(1, 7)
	b.AddWork(1, 3)
	a.Merge(b)
	if a.Rounds != 7 || a.Steps != 3 || a.Messages != 2 || a.Bits != 24 {
		t.Fatalf("merged scalars wrong: %+v", a)
	}
	if a.MaxMessageBits != 16 {
		t.Fatalf("max bits %d", a.MaxMessageBits)
	}
	mem := a.MemoryDistribution()
	if mem.Max != 9 {
		t.Fatalf("merged memory max %d", mem.Max)
	}
	work := a.WorkDistribution()
	if work.Total != 10 {
		t.Fatalf("merged work total %d", work.Total)
	}
}

func TestDistributionOrderStats(t *testing.T) {
	c := NewCounters(100)
	for v := 0; v < 100; v++ {
		c.AddWork(v, int64(v+1))
	}
	d := c.WorkDistribution()
	if d.Min != 1 || d.Max != 100 || d.P50 != 50 {
		t.Fatalf("order stats wrong: %+v", d)
	}
	if d.P99 < 99 {
		t.Fatalf("P99 = %d", d.P99)
	}
}

func TestEmptyDistribution(t *testing.T) {
	c := NewCounters(0)
	d := c.MemoryDistribution()
	if d.Max != 0 || d.BalanceRatio() != 0 {
		t.Fatalf("empty distribution %+v", d)
	}
}

func TestString(t *testing.T) {
	c := NewCounters(1)
	c.Rounds = 5
	if s := c.String(); !strings.Contains(s, "rounds=5") {
		t.Fatalf("summary %q", s)
	}
}
