package upcast

import (
	"math"
	"testing"

	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/rng"
)

func TestRunOnDenseGNP(t *testing.T) {
	n := 200
	p := 0.3
	g := graph.GNP(n, p, rng.New(1))
	res, err := Run(g, 2, Options{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycle.Len() != n {
		t.Fatalf("cycle covers %d of %d", res.Cycle.Len(), n)
	}
}

func TestRunOnThresholdGNP(t *testing.T) {
	// p at the sqrt(n) regime of Theorem 17.
	n := 400
	p := 3 * math.Log(float64(n)) / math.Sqrt(float64(n))
	g := graph.GNP(n, p, rng.New(3))
	res, err := Run(g, 4, Options{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Cycle.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryConcentratesAtRoot(t *testing.T) {
	g := graph.GNP(300, 0.2, rng.New(5))
	res, err := Run(g, 6, Options{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem := res.Counters.MemoryDistribution()
	// The root stores all ~n*samples edges; the median node stores O(log n)
	// samples plus queues. The imbalance ratio must be large.
	if ratio := float64(mem.Max) / float64(mem.P50+1); ratio < 10 {
		t.Fatalf("memory balance ratio %.1f too small for a centralized algorithm (max=%d p50=%d)",
			ratio, mem.Max, mem.P50)
	}
	if res.RootMemoryWords < int64(g.N()) {
		t.Fatalf("root memory %d words below n=%d: not storing the sampled graph?",
			res.RootMemoryWords, g.N())
	}
}

func TestFailsOnSparseGraph(t *testing.T) {
	// Sampling from a path cannot produce a Hamiltonian-cycle-bearing
	// subgraph; the run must fail cleanly.
	g := graph.Path(40)
	if _, err := Run(g, 1, Options{}, congest.Options{}); err == nil {
		t.Fatal("path accepted")
	}
}

func TestDeterministicAcrossExecutors(t *testing.T) {
	g := graph.GNP(150, 0.25, rng.New(7))
	a, err := Run(g, 8, Options{}, congest.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, 8, Options{}, congest.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ao, bo := a.Cycle.Order(), b.Cycle.Order()
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatal("executors disagree")
		}
	}
}

func TestSampleCapRespectsDegree(t *testing.T) {
	// On a ring every node has degree 2 < 3 ln n: samples are capped, the
	// sampled graph equals the ring, and the ring IS its own HC.
	g := graph.Ring(50)
	res, err := Run(g, 9, Options{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Cycle.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsTinyGraph(t *testing.T) {
	if _, err := Run(graph.Complete(2), 1, Options{}, congest.Options{}); err == nil {
		t.Fatal("n=2 accepted")
	}
}
