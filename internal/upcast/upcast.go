// Package upcast implements the centralized algorithm of paper Section III:
// elect a leader, build a BFS tree, have every node sample Θ(log n) of its
// incident edges and upcast them to the root through the tree (pipelined,
// one message per tree edge per round), let the root compute a Hamiltonian
// cycle locally on the sampled subgraph, and downcast each node's cycle
// successor back along the tree.
//
// The algorithm works in the CONGEST model but is deliberately NOT fully
// distributed: the root stores Θ(n log n) words (every sampled edge) and
// internal tree nodes keep routing tables proportional to their subtree
// size. The memory metering exposes exactly this imbalance — experiment E7
// contrasts it with DHC1/DHC2.
package upcast

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dhc/internal/arena"
	"dhc/internal/congest"
	"dhc/internal/cycle"
	"dhc/internal/graph"
	"dhc/internal/metrics"
	"dhc/internal/proto"
	"dhc/internal/rotation"
	"dhc/internal/wire"
)

// ErrNoHC is returned when the root cannot find a Hamiltonian cycle in the
// sampled subgraph.
var ErrNoHC = errors.New("upcast: sampled subgraph has no Hamiltonian cycle")

const treeTag int32 = 3

// Options configures a run.
type Options struct {
	// SamplesPerNode is c'·log n, the number of incident edges each node
	// samples (capped by its degree). Zero selects ceil(3·ln n).
	SamplesPerNode int
	// B bounds the election/BFS settling time (0 = 2·ecc(0)+1).
	B int64
	// RootAttempts is how many times the root retries the local rotation
	// algorithm on the sampled subgraph (local computation is free in
	// CONGEST). Zero selects 20.
	RootAttempts int
}

// node is the per-node program.
type node struct {
	opts Options

	flood *proto.Flooder
	tree  *proto.BFSState
	count *proto.Counter

	samples []graph.Edge // own sampled incident edges
	queue   []wire.Message
	// route[v] is the child whose subtree contains v (root + internal).
	route map[graph.NodeID]graph.NodeID
	// root-only state
	collected []graph.Edge
	expect    int64
	solved    bool
	failed    bool

	// downcast output
	succ     graph.NodeID
	haveSucc bool
	doneSent bool
	childQ   map[graph.NodeID][]wire.Message
}

var _ congest.Node = (*node)(nil)

func (u *node) electEnd() int64   { return u.opts.B + 1 }
func (u *node) bfsEnd() int64     { return 2*u.opts.B + 1 }
func (u *node) countStart() int64 { return 2*u.opts.B + 2 }
func (u *node) upcastAt() int64   { return 4*u.opts.B + 8 }

func (u *node) Init(ctx *congest.Context) {
	u.flood = proto.NewFlooder(ctx.ID())
	u.flood.Start(ctx)
	u.succ = -1
	u.route = make(map[graph.NodeID]graph.NodeID)
	u.childQ = make(map[graph.NodeID][]wire.Message)
	u.armWake(ctx)
}

func (u *node) Round(ctx *congest.Context, inbox []congest.Envelope) {
	round := ctx.Round()
	switch {
	case round <= u.electEnd():
		u.flood.Absorb(ctx, inbox)
		if round == u.electEnd() {
			u.tree = proto.NewBFSState(u.flood.Best)
			u.tree.Tag = treeTag
			u.tree.Start(ctx)
		}
	case round <= u.bfsEnd():
		u.tree.Absorb(ctx, inbox)
	case round == u.countStart():
		u.pickSamples(ctx)
		own := int64(len(u.samples))
		if u.isRoot(ctx) {
			own = 0 // the root keeps its samples local
		}
		u.count = proto.NewCounter(u.tree, own, treeTag)
		u.count.Tick(ctx, inbox)
	case round < u.upcastAt():
		u.count.Tick(ctx, inbox)
	default:
		u.tickUpcast(ctx, inbox)
	}
	u.observeMemory(ctx)
	if !ctx.Halted() {
		u.armWake(ctx)
	}
}

// armWake declares the wake-up discipline: the three phase boundaries
// (tree construction, sample pick + convergecast seed, upcast start)
// perform empty-inbox work at every node, and the pipeline phase keeps a
// node live while it has queued traffic to forward — or, at the root, a
// solve still pending — since pipelined sends happen one per round without
// any triggering delivery. Between those points the node is message-driven.
func (u *node) armWake(ctx *congest.Context) {
	round := ctx.Round()
	switch {
	case round < u.electEnd():
		ctx.WakeAt(u.electEnd())
	case round < u.countStart():
		ctx.WakeAt(u.countStart())
	case round < u.upcastAt():
		ctx.WakeAt(u.upcastAt())
	default:
		busy := len(u.queue) > 0 || (u.isRoot(ctx) && !u.solved)
		if !busy {
			for _, q := range u.childQ {
				if len(q) > 0 {
					busy = true
					break
				}
			}
		}
		if busy {
			ctx.WakeAt(round + 1)
		} else {
			ctx.WakeEvery(0) // waiting on deliveries only
		}
	}
}

func (u *node) isRoot(ctx *congest.Context) bool {
	return u.tree != nil && u.tree.IsRoot(ctx.ID())
}

// pickSamples draws SamplesPerNode distinct incident edges uniformly.
func (u *node) pickSamples(ctx *congest.Context) {
	nbs := ctx.Neighbors()
	k := u.opts.SamplesPerNode
	if k >= len(nbs) {
		for _, nb := range nbs {
			u.samples = append(u.samples, graph.Edge{U: ctx.ID(), V: nb})
		}
		return
	}
	perm := ctx.Rand().Perm(len(nbs))
	for _, i := range perm[:k] {
		u.samples = append(u.samples, graph.Edge{U: ctx.ID(), V: nbs[i]})
	}
}

// tickUpcast runs the pipelined upcast, root solve, and downcast.
func (u *node) tickUpcast(ctx *congest.Context, inbox []congest.Envelope) {
	round := ctx.Round()
	if round == u.upcastAt() {
		// Enqueue own samples (origin = self) for the parent.
		if !u.isRoot(ctx) {
			for _, e := range u.samples {
				u.queue = append(u.queue, wire.Msg(wire.KindEdgeSample,
					int32(e.U), int32(e.V), int32(ctx.ID())))
			}
		} else {
			u.expect = u.count.Total
			u.collected = append(u.collected, u.samples...)
			u.route[ctx.ID()] = ctx.ID()
		}
	}
	for _, env := range inbox {
		switch env.Msg.Kind {
		case wire.KindEdgeSample:
			origin := graph.NodeID(env.Msg.Arg(2))
			u.route[origin] = env.From
			if u.isRoot(ctx) {
				u.collected = append(u.collected,
					graph.Edge{U: graph.NodeID(env.Msg.Arg(0)), V: graph.NodeID(env.Msg.Arg(1))})
				u.expect--
			} else {
				u.queue = append(u.queue, env.Msg)
			}
		case wire.KindHCEdge:
			v := graph.NodeID(env.Msg.Arg(0))
			if v == ctx.ID() {
				u.succ = graph.NodeID(env.Msg.Arg(1))
				u.haveSucc = true
			} else if child, ok := u.route[v]; ok {
				u.childQ[child] = append(u.childQ[child], env.Msg)
			}
		case wire.KindBroadcast:
			// Done marker: enqueue behind routed traffic on every child.
			for _, child := range u.tree.Children {
				u.childQ[child] = append(u.childQ[child], env.Msg)
			}
			u.doneSent = true
		case wire.KindSuccess:
			// Failure flood from the root.
			u.failed = true
			forward(ctx, env.Msg, env.From)
		}
	}
	if u.failed {
		ctx.Halt()
		return
	}
	// Root: solve once everything arrived.
	if u.isRoot(ctx) && !u.solved && u.expect <= 0 && round > u.upcastAt() {
		u.solveAtRoot(ctx)
	}
	// Pipelined forwarding: one message per edge per round.
	if len(u.queue) > 0 && !u.isRoot(ctx) {
		ctx.Send(u.tree.Parent, u.queue[0])
		u.queue = u.queue[1:]
	}
	doneAllChildren := true
	for _, child := range u.tree.Children {
		q := u.childQ[child]
		if len(q) == 0 {
			continue
		}
		ctx.Send(child, q[0])
		u.childQ[child] = q[1:]
		if len(q) > 1 || q[0].Kind != wire.KindBroadcast {
			doneAllChildren = false
		}
	}
	// Halt when our successor arrived, the done marker passed through, and
	// all queues drained.
	if u.haveSucc && u.doneSent && doneAllChildren && len(u.queue) == 0 {
		ctx.Halt()
	}
}

// solveAtRoot builds the sampled subgraph, runs the sequential rotation
// algorithm (with retries — local computation is free in the model), and
// starts the downcast.
func (u *node) solveAtRoot(ctx *congest.Context) {
	u.solved = true
	b := graph.NewBuilder(ctx.N())
	for _, e := range u.collected {
		b.AddEdge(e.U, e.V)
	}
	sampled := b.Build()
	attempts := u.opts.RootAttempts
	if attempts == 0 {
		attempts = 20
	}
	var hc *cycle.Cycle
	for a := 0; a < attempts; a++ {
		c, _, err := rotation.Solve(sampled, ctx.Rand(), rotation.Config{})
		if err == nil {
			hc = c
			break
		}
	}
	if hc == nil {
		u.failed = true
		forward(ctx, wire.Msg(wire.KindSuccess, 0, treeTag), -1)
		return
	}
	succ := hc.Successors()
	u.succ = succ[ctx.ID()]
	u.haveSucc = true
	for v, s := range succ {
		if v == ctx.ID() {
			continue
		}
		child, ok := u.route[v]
		if !ok {
			// A node whose samples never reached us (possible only if it
			// had none); without a route the downcast cannot complete.
			u.failed = true
			forward(ctx, wire.Msg(wire.KindSuccess, 0, treeTag), -1)
			return
		}
		u.childQ[child] = append(u.childQ[child], wire.Msg(wire.KindHCEdge, int32(v), int32(s)))
	}
	for _, child := range u.tree.Children {
		u.childQ[child] = append(u.childQ[child], wire.Msg(wire.KindBroadcast, 1, treeTag))
	}
	u.doneSent = true
}

func (u *node) observeMemory(ctx *congest.Context) {
	words := int64(len(u.samples)*2+len(u.queue)*3+len(u.route)) + 16
	words += int64(len(u.collected) * 2)
	for _, q := range u.childQ {
		words += int64(len(q)) * 2
	}
	ctx.ObserveMemory(words)
}

func forward(ctx *congest.Context, m wire.Message, except graph.NodeID) {
	for _, nb := range ctx.Neighbors() {
		if nb != except {
			ctx.Send(nb, m)
		}
	}
}

// Result is a successful run's output.
type Result struct {
	Cycle    *cycle.Cycle
	Counters *metrics.Counters
	// RootMemoryWords is the root's memory high-water, demonstrating the
	// Ω(n) concentration.
	RootMemoryWords int64
}

// Run executes the Upcast algorithm on g.
func Run(g *graph.Graph, seed uint64, opts Options, netOpts congest.Options) (*Result, error) {
	return NewSession().Run(context.Background(), g, seed, opts, netOpts)
}

// Session is a reusable Upcast runner: the per-node program slice, the
// simulator Network, and its run arena survive across Run calls, so repeated
// trials on same-sized graphs skip the engine-side allocations. Not safe for
// concurrent use.
type Session struct {
	progs []*node
	nodes []congest.Node
	net   congest.Runner
}

// NewSession returns an empty session; the first Run sizes it.
func NewSession() *Session { return &Session{} }

// SetRunner replaces the session's executor — the seam the distributed
// engine injects its shard cluster through. A nil Runner restores the
// default in-process Network on the next Run.
func (sess *Session) SetRunner(r congest.Runner) { sess.net = r }

// Run executes one Upcast trial, honoring ctx at the simulator's amortized
// cancellation checkpoint. A cancelled run returns ctx's error and leaves
// the session reusable.
func (sess *Session) Run(ctx context.Context, g *graph.Graph, seed uint64, opts Options, netOpts congest.Options) (*Result, error) {
	n := g.N()
	if n < 3 {
		return nil, fmt.Errorf("upcast: need n >= 3, got %d", n)
	}
	if opts.B == 0 {
		opts.B = int64(2*g.BFS(0).Ecc + 1)
	}
	if opts.SamplesPerNode == 0 {
		opts.SamplesPerNode = int(math.Ceil(3 * math.Log(float64(n))))
	}
	if netOpts.MaxRounds == 0 {
		// Upcast/downcast move O(n log n) messages over the root edges in
		// the worst (star) case.
		netOpts.MaxRounds = 8*opts.B + int64(n)*int64(opts.SamplesPerNode+2) + 4096
	}
	sess.progs = arena.Resize(sess.progs, n)
	sess.nodes = arena.Resize(sess.nodes, n)
	for i := 0; i < n; i++ {
		// The program's routing maps and queues are rebuilt by Init; a fresh
		// value drops the previous trial's state.
		if sess.progs[i] == nil {
			sess.progs[i] = &node{}
		}
		*sess.progs[i] = node{opts: opts}
		sess.nodes[i] = sess.progs[i]
	}
	if sess.net == nil {
		sess.net = new(congest.Network)
	}
	// Reset handles first bind and rebind alike (NewNetwork is just a Reset
	// on a zero Network), so the sessions cannot drift on bind semantics.
	if err := sess.net.Reset(g, sess.nodes, netOpts); err != nil {
		return nil, err
	}
	counters, err := sess.net.RunContext(ctx, seed)
	if err != nil {
		return nil, fmt.Errorf("upcast: %w", err)
	}
	succ := make(map[graph.NodeID]graph.NodeID, n)
	for v, p := range sess.progs {
		if p.failed {
			return nil, fmt.Errorf("%w (node %d saw failure flood)", ErrNoHC, v)
		}
		if !p.haveSucc {
			return nil, fmt.Errorf("upcast: node %d never received its successor", v)
		}
		succ[graph.NodeID(v)] = p.succ
	}
	hc, err := cycle.FromSuccessors(succ, 0)
	if err != nil {
		return nil, fmt.Errorf("upcast: bad successor structure: %w", err)
	}
	if err := hc.Verify(g); err != nil {
		return nil, fmt.Errorf("upcast: invalid cycle: %w", err)
	}
	return &Result{
		Cycle:           hc,
		Counters:        counters,
		RootMemoryWords: counters.MemoryDistribution().Max,
	}, nil
}
