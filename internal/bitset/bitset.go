// Package bitset provides a dense fixed-capacity bit vector for packing
// per-node boolean state into cache-friendly words: one bit per vertex
// instead of the byte a []bool spends, an 8x cut in footprint and memory
// traffic for the visited/halted/seen flags the engines keep at 10^6–10^7
// vertices.
package bitset

// Set is a fixed-capacity bit vector over indices [0, 64·len(s)). Create
// with Make; index bounds are the caller's contract, exactly as with []bool.
type Set []uint64

// Make returns a Set able to hold bits [0, n).
func Make(n int) Set { return make(Set, (n+63)>>6) }

// Has reports whether bit i is set.
func (s Set) Has(i int) bool { return s[i>>6]>>(uint(i)&63)&1 != 0 }

// Add sets bit i.
func (s Set) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Remove clears bit i.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Reset clears every bit, keeping the capacity.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}
