package bitset

import "testing"

func TestSetBasics(t *testing.T) {
	s := Make(130) // crosses two word boundaries
	if len(s) != 3 {
		t.Fatalf("Make(130) allocated %d words, want 3", len(s))
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("bit %d missing after Add", i)
		}
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("bit 64 still set after Remove")
	}
	if !s.Has(63) || !s.Has(65) {
		t.Fatal("Remove(64) disturbed neighboring bits")
	}
	s.Reset()
	for _, w := range s {
		if w != 0 {
			t.Fatal("Reset left bits set")
		}
	}
}

func TestMakeRounding(t *testing.T) {
	cases := []struct{ n, words int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		if got := len(Make(c.n)); got != c.words {
			t.Fatalf("Make(%d) = %d words, want %d", c.n, got, c.words)
		}
	}
}

// TestAgainstBoolReference exercises a random operation mix against a []bool
// model.
func TestAgainstBoolReference(t *testing.T) {
	const n = 300
	s := Make(n)
	ref := make([]bool, n)
	x := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	for step := 0; step < 20000; step++ {
		i := int(next() % n)
		switch next() % 3 {
		case 0:
			s.Add(i)
			ref[i] = true
		case 1:
			s.Remove(i)
			ref[i] = false
		case 2:
			if s.Has(i) != ref[i] {
				t.Fatalf("step %d: Has(%d) = %v, model says %v", step, i, s.Has(i), ref[i])
			}
		}
	}
	for i := 0; i < n; i++ {
		if s.Has(i) != ref[i] {
			t.Fatalf("final: Has(%d) = %v, model says %v", i, s.Has(i), ref[i])
		}
	}
}
