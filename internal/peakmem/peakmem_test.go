package peakmem

import (
	"runtime"
	"testing"
	"time"
)

// TestPeakSamplerSeesAllocation: a large allocation held across the sampling
// window must raise the reported high-water by roughly its size.
func TestPeakSamplerSeesAllocation(t *testing.T) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := int64(ms.HeapAlloc)

	const block = 64 << 20
	s := Start(time.Millisecond)
	buf := make([]byte, block)
	for i := 0; i < len(buf); i += 4096 {
		buf[i] = 1
	}
	time.Sleep(20 * time.Millisecond)
	peak := s.Stop()
	runtime.KeepAlive(buf)

	if peak < base+block/2 {
		t.Fatalf("peak %d did not register a %d-byte allocation over baseline %d", peak, block, base)
	}
}

// TestPeakSamplerStopIsFinal: Stop returns promptly and includes a final
// synchronous sample, so even a region shorter than the interval meters its
// exit heap.
func TestPeakSamplerStopIsFinal(t *testing.T) {
	s := Start(time.Hour) // ticker will never fire
	buf := make([]byte, 32<<20)
	for i := 0; i < len(buf); i += 4096 {
		buf[i] = 1
	}
	peak := s.Stop()
	runtime.KeepAlive(buf)
	if peak < 32<<20 {
		t.Fatalf("final Stop sample missed a live %d-byte buffer (peak %d)", 32<<20, peak)
	}
}
