package peakmem

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestPeakSamplerSeesAllocation: a large allocation held across the sampling
// window must raise the reported high-water by roughly its size.
func TestPeakSamplerSeesAllocation(t *testing.T) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := int64(ms.HeapAlloc)

	const block = 64 << 20
	s := Start(time.Millisecond)
	buf := make([]byte, block)
	for i := 0; i < len(buf); i += 4096 {
		buf[i] = 1
	}
	time.Sleep(20 * time.Millisecond)
	peak := s.Stop()
	runtime.KeepAlive(buf)

	if peak < base+block/2 {
		t.Fatalf("peak %d did not register a %d-byte allocation over baseline %d", peak, block, base)
	}
}

// TestPeakSamplerStopIsFinal: Stop returns promptly and includes a final
// synchronous sample, so even a region shorter than the interval meters its
// exit heap.
func TestPeakSamplerStopIsFinal(t *testing.T) {
	s := Start(time.Hour) // ticker will never fire
	buf := make([]byte, 32<<20)
	for i := 0; i < len(buf); i += 4096 {
		buf[i] = 1
	}
	peak := s.Stop()
	runtime.KeepAlive(buf)
	if peak < 32<<20 {
		t.Fatalf("final Stop sample missed a live %d-byte buffer (peak %d)", 32<<20, peak)
	}
}

// TestPeakSamplerStopIsIdempotent: a second Stop must not panic (it used to
// close an already-closed channel) and must return the same peak as the
// first, so metering code may both defer Stop and call it explicitly.
func TestPeakSamplerStopIsIdempotent(t *testing.T) {
	s := Start(time.Millisecond)
	first := s.Stop()
	second := s.Stop()
	if first != second {
		t.Fatalf("second Stop returned %d, first returned %d", second, first)
	}
}

// TestPeakSamplerStopIsConcurrencySafe: racing Stops (e.g. a deferred Stop
// colliding with a timeout path) must all return the same settled peak.
func TestPeakSamplerStopIsConcurrencySafe(t *testing.T) {
	s := Start(time.Millisecond)
	const callers = 8
	peaks := make([]int64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			peaks[i] = s.Stop()
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if peaks[i] != peaks[0] {
			t.Fatalf("caller %d saw peak %d, caller 0 saw %d", i, peaks[i], peaks[0])
		}
	}
}
