package peakmem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Sampler meters the heap high-water mark of a measured region by
// sampling runtime.ReadMemStats' HeapAlloc on a background goroutine. It is
// the source of the scaling rows' mem_peak_bytes: a sampled high-water, not
// an exact bound — allocations shorter than the sampling interval can slip
// between samples, so treat the number as a floor on the true peak. One
// sample is taken synchronously at Start and one at Stop, so even a region
// shorter than the interval contributes its entry and exit heap sizes.
type Sampler struct {
	peak     atomic.Uint64
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	result   int64
}

// Start begins sampling at the given interval (<= 0 selects the
// 5ms default, fine-grained enough for multi-second solves while keeping the
// stop-the-world cost of ReadMemStats negligible).
func Start(interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	s := &Sampler{stop: make(chan struct{}), done: make(chan struct{})}
	s.sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sample()
			}
		}
	}()
	return s
}

func (s *Sampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		cur := s.peak.Load()
		if ms.HeapAlloc <= cur || s.peak.CompareAndSwap(cur, ms.HeapAlloc) {
			return
		}
	}
}

// Stop halts sampling, takes a final synchronous sample, and returns the
// observed high-water mark in bytes. Stop is idempotent: the sampler shuts
// down on the first call and every later call returns the same peak, so
// callers layering metering regions (or deferring a Stop they may also reach
// explicitly) cannot panic on a closed channel.
func (s *Sampler) Stop() int64 {
	s.stopOnce.Do(func() {
		close(s.stop)
		<-s.done
		s.sample()
		s.result = int64(s.peak.Load())
	})
	return s.result
}
