package cycle

// Model and fuzz tests for MergeTwo + bridge selection, mirroring
// path_model_test.go's approach for the rotation Path: generate random
// instances of the operation's precondition (two vertex-disjoint cycles and
// a bridge whose two graph edges exist), run the real implementation, and
// check the full postcondition — the result is one cycle covering the union
// that uses only edges the graph actually has. This is the Fig. 3 invariant
// DHC2's whole merge tree rests on: if any single pairwise merge could
// corrupt a cycle, the corruption would propagate up every level.

import (
	"testing"

	"dhc/internal/graph"
	"dhc/internal/rng"
)

// randomDisjointCyclePair builds two vertex-disjoint cycles with shuffled
// vertex orders (sizes in [3, 3+maxExtra]) plus the graph containing exactly
// their cycle edges and one random bridge's two graph edges.
func randomDisjointCyclePair(src *rng.Source, maxExtra int) (*graph.Graph, *Cycle, *Cycle, Bridge) {
	a := 3 + src.Intn(maxExtra+1)
	b := 3 + src.Intn(maxExtra+1)
	perm := func(lo, n int) []graph.NodeID {
		out := make([]graph.NodeID, n)
		for i := range out {
			out[i] = graph.NodeID(lo + i)
		}
		for i := n - 1; i > 0; i-- {
			j := src.Intn(i + 1)
			out[i], out[j] = out[j], out[i]
		}
		return out
	}
	c1 := FromOrder(perm(0, a))
	c2 := FromOrder(perm(a, b))
	br := Bridge{
		E1:      OrientedEdge{V: c1.At(src.Intn(a)), U: graph.NodeID(0)},
		E2:      OrientedEdge{V: c2.At(src.Intn(b)), U: graph.NodeID(0)},
		Crossed: src.Bernoulli(0.5),
	}
	// Complete the oriented cycle edges: U is V's successor.
	for i := 0; i < a; i++ {
		if c1.At(i) == br.E1.V {
			br.E1.U = c1.At(i + 1)
		}
	}
	for i := 0; i < b; i++ {
		if c2.At(i) == br.E2.V {
			br.E2.U = c2.At(i + 1)
		}
	}
	var edges []graph.Edge
	for i := 0; i < a; i++ {
		edges = append(edges, graph.Edge{U: c1.At(i), V: c1.At(i + 1)}.Canonical())
	}
	for i := 0; i < b; i++ {
		edges = append(edges, graph.Edge{U: c2.At(i), V: c2.At(i + 1)}.Canonical())
	}
	for _, e := range br.BridgeEdges() {
		edges = append(edges, e.Canonical())
	}
	return graph.FromEdges(a+b, edges), c1, c2, br
}

// checkMerged verifies the full postcondition: merged is a single cycle over
// the union of the two input vertex sets using only edges of g. Verify
// covers all three facts because g has exactly a+b vertices and no edges
// beyond the two cycles and the bridge.
func checkMerged(t *testing.T, g *graph.Graph, c1, c2, merged *Cycle) {
	t.Helper()
	if merged.Len() != c1.Len()+c2.Len() {
		t.Fatalf("merged length %d, want %d+%d", merged.Len(), c1.Len(), c2.Len())
	}
	if err := merged.Verify(g); err != nil {
		t.Fatalf("merged cycle invalid: %v", err)
	}
}

// TestMergeTwoRandomBridges drives many random instances through both
// bridge orientations.
func TestMergeTwoRandomBridges(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		src := rng.New(seed)
		for trial := 0; trial < 20; trial++ {
			g, c1, c2, br := randomDisjointCyclePair(src, 37)
			if !ValidBridge(g, c1, c2, br) {
				t.Fatalf("seed %d trial %d: constructed bridge %+v not valid", seed, trial, br)
			}
			merged, err := MergeTwo(c1, c2, br)
			if err != nil {
				t.Fatalf("seed %d trial %d: MergeTwo: %v", seed, trial, err)
			}
			checkMerged(t, g, c1, c2, merged)
		}
	}
}

// TestMergeTwoRejectsNonCycleEdge pins the error path: a bridge whose E1 is
// not a successor pair of c1 must be refused, not silently produce garbage.
func TestMergeTwoRejectsNonCycleEdge(t *testing.T) {
	src := rng.New(42)
	_, c1, c2, br := randomDisjointCyclePair(src, 10)
	// Break E1: (V, U) with U = V's *second* successor is never a cycle edge
	// on cycles of length >= 3.
	for i := 0; i < c1.Len(); i++ {
		if c1.At(i) == br.E1.V {
			br.E1.U = c1.At(i + 2)
		}
	}
	if _, err := MergeTwo(c1, c2, br); err == nil {
		t.Fatal("MergeTwo accepted a non-cycle-edge bridge")
	}
}

// FuzzMergeTwo explores the same property from arbitrary seeds; `go test`
// runs the corpus, `go test -fuzz=FuzzMergeTwo ./internal/cycle` explores.
func FuzzMergeTwo(f *testing.F) {
	for _, seed := range []uint64{0, 1, 2, 0xdead, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		src := rng.New(seed)
		g, c1, c2, br := randomDisjointCyclePair(src, 61)
		if !ValidBridge(g, c1, c2, br) {
			t.Fatalf("constructed bridge %+v not valid", br)
		}
		merged, err := MergeTwo(c1, c2, br)
		if err != nil {
			t.Fatalf("MergeTwo: %v", err)
		}
		checkMerged(t, g, c1, c2, merged)
	})
}
