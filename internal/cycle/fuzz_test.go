package cycle

import (
	"testing"

	"dhc/internal/graph"
	"dhc/internal/rng"
)

// naiveVerify is an independent oracle for Cycle.Verify: straight-line
// checks with linear neighbor scans (no binary search, no shared helpers
// beyond the graph accessors), so a bug in either implementation shows up as
// a disagreement.
func naiveVerify(g *graph.Graph, order []graph.NodeID) bool {
	n := g.N()
	if len(order) != n || n < 3 {
		return false
	}
	seen := make(map[graph.NodeID]bool, n)
	for _, v := range order {
		if int(v) < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	adjacent := func(u, v graph.NodeID) bool {
		for _, w := range g.Neighbors(u) {
			if w == v {
				return true
			}
		}
		return false
	}
	for i, v := range order {
		if !adjacent(v, order[(i+1)%n]) {
			return false
		}
	}
	return true
}

// FuzzVerify feeds arbitrary vertex sequences (including out-of-range ids,
// repeats, and wrong lengths) to Cycle.Verify on random graphs and requires
// exact agreement with the naive oracle — and no panics on any input.
func FuzzVerify(f *testing.F) {
	f.Add(uint8(8), uint16(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(5), uint16(2), []byte{4, 3, 2, 1, 0})
	f.Add(uint8(3), uint16(3), []byte{})
	f.Add(uint8(6), uint16(4), []byte{0, 0, 1, 2, 3, 4})
	f.Add(uint8(4), uint16(5), []byte{250, 251, 252, 253})
	// Known-tricky shapes: the minimum cycle (n = 3, where every length
	// mistake is off-by-one), a full-length order whose only flaw is one
	// duplicated vertex (covers the "all present" vs "each once" split), a
	// correct-length order with exactly one out-of-range id, an
	// almost-cycle missing only the wrap-around edge check (path order on
	// a path-shaped byte range), and a one-vertex-short order.
	f.Add(uint8(0), uint16(6), []byte{0, 1, 2})
	f.Add(uint8(7), uint16(7), []byte{0, 1, 2, 3, 4, 5, 6, 6, 8, 9})
	f.Add(uint8(5), uint16(8), []byte{0, 1, 2, 3, 9})
	f.Add(uint8(6), uint16(9), []byte{1, 2, 3, 4, 5, 6, 7, 8, 0})
	f.Add(uint8(9), uint16(10), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Fuzz(func(t *testing.T, nRaw uint8, seed uint16, raw []byte) {
		n := int(nRaw)%64 + 3
		g := graph.GNP(n, 0.5, rng.New(uint64(seed)))
		// Map bytes to ids in [-1, n+1] so out-of-range values are exercised.
		order := make([]graph.NodeID, len(raw))
		for i, b := range raw {
			order[i] = graph.NodeID(int(b)%(n+3) - 1)
		}
		c := FromOrder(order)
		got := c.Verify(g) == nil
		want := naiveVerify(g, order)
		if got != want {
			t.Fatalf("Verify=%v oracle=%v for n=%d order=%v", got, want, n, order)
		}
	})
}

// FuzzVerifyAcceptsRealCycles drives the positive path: a ring graph's
// identity order is always a Hamiltonian cycle, and any rotation or
// reflection of it must also verify.
func FuzzVerifyAcceptsRealCycles(f *testing.F) {
	f.Add(uint8(5), uint8(0), false)
	f.Add(uint8(12), uint8(7), true)
	f.Fuzz(func(t *testing.T, nRaw, shift uint8, reflect bool) {
		n := int(nRaw)%64 + 3
		g := graph.Ring(n)
		order := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			j := (i + int(shift)) % n
			if reflect {
				j = (n - i + int(shift)) % n
			}
			order[i] = graph.NodeID(j)
		}
		if err := FromOrder(order).Verify(g); err != nil {
			t.Fatalf("valid ring traversal rejected (n=%d shift=%d reflect=%v): %v",
				n, shift, reflect, err)
		}
	})
}
