package cycle

import (
	"testing"

	"dhc/internal/graph"
)

// twoTriangleGraph builds two disjoint triangles {0,1,2} and {3,4,5} plus
// the given extra edges.
func twoTriangleGraph(extra ...graph.Edge) *graph.Graph {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	for _, e := range extra {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

func TestMergeTwoParallelBridge(t *testing.T) {
	// Bridge over cycle edges (0->1) and (3->4) using graph edges
	// (v_i,v_j)=(0,3) and (u_i,u_j)=(1,4): the non-crossed case.
	g := twoTriangleGraph(graph.Edge{U: 0, V: 3}, graph.Edge{U: 1, V: 4})
	c1 := FromOrder([]graph.NodeID{0, 1, 2})
	c2 := FromOrder([]graph.NodeID{3, 4, 5})
	b := Bridge{E1: OrientedEdge{V: 0, U: 1}, E2: OrientedEdge{V: 3, U: 4}}
	if !ValidBridge(g, c1, c2, b) {
		t.Fatal("bridge should be valid")
	}
	merged, err := MergeTwo(c1, c2, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Verify(g); err != nil {
		t.Fatalf("merged cycle invalid: %v", err)
	}
}

func TestMergeTwoCrossedBridge(t *testing.T) {
	// Crossed case: graph edges (v_i,u_j)=(0,4) and (u_i,v_j)=(1,3).
	g := twoTriangleGraph(graph.Edge{U: 0, V: 4}, graph.Edge{U: 1, V: 3})
	c1 := FromOrder([]graph.NodeID{0, 1, 2})
	c2 := FromOrder([]graph.NodeID{3, 4, 5})
	b := Bridge{E1: OrientedEdge{V: 0, U: 1}, E2: OrientedEdge{V: 3, U: 4}, Crossed: true}
	if !ValidBridge(g, c1, c2, b) {
		t.Fatal("crossed bridge should be valid")
	}
	merged, err := MergeTwo(c1, c2, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Verify(g); err != nil {
		t.Fatalf("merged cycle invalid: %v", err)
	}
}

func TestValidBridgeRejectsMissingEdges(t *testing.T) {
	g := twoTriangleGraph() // no cross edges at all
	c1 := FromOrder([]graph.NodeID{0, 1, 2})
	c2 := FromOrder([]graph.NodeID{3, 4, 5})
	b := Bridge{E1: OrientedEdge{V: 0, U: 1}, E2: OrientedEdge{V: 3, U: 4}}
	if ValidBridge(g, c1, c2, b) {
		t.Fatal("bridge with missing graph edges accepted")
	}
	// Not a cycle edge: (0 -> 2) is the wrong orientation on c1 (0's succ is 1).
	g2 := twoTriangleGraph(graph.Edge{U: 0, V: 3}, graph.Edge{U: 2, V: 4})
	b2 := Bridge{E1: OrientedEdge{V: 0, U: 2}, E2: OrientedEdge{V: 3, U: 4}}
	if ValidBridge(g2, c1, c2, b2) {
		t.Fatal("non-cycle-edge bridge accepted")
	}
}

func TestMergeTwoBadBridgeErrors(t *testing.T) {
	c1 := FromOrder([]graph.NodeID{0, 1, 2})
	c2 := FromOrder([]graph.NodeID{3, 4, 5})
	// (1 -> 0) is not a cycle edge of c1 (wrong direction).
	b := Bridge{E1: OrientedEdge{V: 1, U: 0}, E2: OrientedEdge{V: 3, U: 4}}
	if _, err := MergeTwo(c1, c2, b); err == nil {
		t.Fatal("expected error for reversed cycle edge")
	}
	// Vertex not on cycle.
	b = Bridge{E1: OrientedEdge{V: 9, U: 1}, E2: OrientedEdge{V: 3, U: 4}}
	if _, err := MergeTwo(c1, c2, b); err == nil {
		t.Fatal("expected error for absent vertex")
	}
}

func TestSpliceHypernodes(t *testing.T) {
	// Three triangles 0-2, 3-5, 6-8 arranged so hypernode ports connect:
	// hypernode_i = (v_i -> u_i) with u as incoming port, v as outgoing.
	b := graph.NewBuilder(9)
	for base := 0; base < 9; base += 3 {
		b.AddEdge(graph.NodeID(base), graph.NodeID(base+1))
		b.AddEdge(graph.NodeID(base+1), graph.NodeID(base+2))
		b.AddEdge(graph.NodeID(base+2), graph.NodeID(base))
	}
	// Outgoing port of partition k is vertex 3k (v), incoming is 3k+1 (u).
	// Hyperedges: v_0 -> u_1 (0,4), v_1 -> u_2 (3,7), v_2 -> u_0 (6,1).
	b.AddEdge(0, 4)
	b.AddEdge(3, 7)
	b.AddEdge(6, 1)
	g := b.Build()

	subcycles := []*Cycle{
		FromOrder([]graph.NodeID{0, 1, 2}),
		FromOrder([]graph.NodeID{3, 4, 5}),
		FromOrder([]graph.NodeID{6, 7, 8}),
	}
	hyper := []OrientedEdge{
		{V: 0, U: 1},
		{V: 3, U: 4},
		{V: 6, U: 7},
	}
	partitionOf := func(e OrientedEdge) int { return int(e.V) / 3 }
	hc, err := SpliceHypernodes(subcycles, hyper, partitionOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Verify(g); err != nil {
		t.Fatalf("spliced cycle invalid: %v", err)
	}
}

func TestSpliceHypernodesErrors(t *testing.T) {
	subcycles := []*Cycle{FromOrder([]graph.NodeID{0, 1, 2})}
	if _, err := SpliceHypernodes(subcycles, nil, nil); err == nil {
		t.Fatal("count mismatch accepted")
	}
	// Hypernode whose (V -> U) is not a cycle edge.
	hyper := []OrientedEdge{{V: 1, U: 0}}
	partitionOf := func(OrientedEdge) int { return 0 }
	if _, err := SpliceHypernodes(subcycles, hyper, partitionOf); err == nil {
		t.Fatal("reversed hypernode accepted")
	}
	// partitionOf out of range.
	hyper = []OrientedEdge{{V: 0, U: 1}}
	bad := func(OrientedEdge) int { return 5 }
	if _, err := SpliceHypernodes(subcycles, hyper, bad); err == nil {
		t.Fatal("invalid partition index accepted")
	}
}

func TestBridgeEdges(t *testing.T) {
	b := Bridge{E1: OrientedEdge{V: 0, U: 1}, E2: OrientedEdge{V: 3, U: 4}}
	e := b.BridgeEdges()
	if e[0] != (graph.Edge{U: 0, V: 3}) || e[1] != (graph.Edge{U: 1, V: 4}) {
		t.Fatalf("parallel bridge edges %v", e)
	}
	b.Crossed = true
	e = b.BridgeEdges()
	if e[0] != (graph.Edge{U: 0, V: 4}) || e[1] != (graph.Edge{U: 1, V: 3}) {
		t.Fatalf("crossed bridge edges %v", e)
	}
}
