package cycle

import (
	"testing"

	"dhc/internal/graph"
	"dhc/internal/rng"
)

// arrayPath is the straightforward reference model for Path: an ordered
// slice plus inverse position map, with eager O(h) suffix reversal. The
// treap implementation must match it state-for-state on any op sequence.
type arrayPath struct {
	verts []graph.NodeID
	pos   map[graph.NodeID]int
}

func newArrayPath(start graph.NodeID) *arrayPath {
	return &arrayPath{verts: []graph.NodeID{start}, pos: map[graph.NodeID]int{start: 1}}
}

func (p *arrayPath) extend(u graph.NodeID) {
	p.verts = append(p.verts, u)
	p.pos[u] = len(p.verts)
}

func (p *arrayPath) rotate(j int) {
	h := len(p.verts)
	for lo, hi := j, h-1; lo < hi; lo, hi = lo+1, hi-1 {
		p.verts[lo], p.verts[hi] = p.verts[hi], p.verts[lo]
	}
	for i := j; i < h; i++ {
		p.pos[p.verts[i]] = i + 1
	}
}

// TestPathMatchesArrayModel drives random Extend/Rotate sequences through
// both implementations and compares every observable after every op.
func TestPathMatchesArrayModel(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		src := rng.New(seed)
		n := 200
		treap := NewPath(0)
		model := newArrayPath(0)
		next := graph.NodeID(1)
		for op := 0; op < 2000; op++ {
			if int(next) < n && (model.pos == nil || len(model.verts) < 2 || src.Bernoulli(0.4)) {
				treap.Extend(next)
				model.extend(next)
				next++
			} else {
				j := 1 + src.Intn(len(model.verts)-1)
				treap.Rotate(j)
				model.rotate(j)
			}
			if treap.Len() != len(model.verts) {
				t.Fatalf("seed %d op %d: Len %d vs model %d", seed, op, treap.Len(), len(model.verts))
			}
			if treap.Head() != model.verts[len(model.verts)-1] {
				t.Fatalf("seed %d op %d: Head %d vs model %d",
					seed, op, treap.Head(), model.verts[len(model.verts)-1])
			}
			if treap.Tail() != model.verts[0] {
				t.Fatalf("seed %d op %d: Tail mismatch", seed, op)
			}
			// Spot-check positions and At on a few random vertices.
			for probe := 0; probe < 4; probe++ {
				v := graph.NodeID(src.Intn(n))
				if treap.Position(v) != model.pos[v] {
					t.Fatalf("seed %d op %d: Position(%d) = %d, model %d",
						seed, op, v, treap.Position(v), model.pos[v])
				}
				i := 1 + src.Intn(len(model.verts))
				if treap.At(i) != model.verts[i-1] {
					t.Fatalf("seed %d op %d: At(%d) = %d, model %d",
						seed, op, i, treap.At(i), model.verts[i-1])
				}
			}
		}
		// Full-order comparison at the end of each sequence.
		got := treap.Order()
		for i, v := range model.verts {
			if got[i] != v {
				t.Fatalf("seed %d: final order differs at %d: %v vs %v", seed, i, got, model.verts)
			}
		}
	}
}
