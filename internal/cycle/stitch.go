package cycle

import (
	"fmt"

	"dhc/internal/graph"
)

// OrientedEdge is a directed cycle edge (V -> U) where U is V's successor on
// its cycle. The paper's hypernode [u_i, v_i] (Algorithm 2, Phase 2) is an
// OrientedEdge with incoming port U and outgoing port V.
type OrientedEdge struct {
	V, U graph.NodeID
}

// SpliceHypernodes combines the per-partition subcycles of DHC1 into a single
// Hamiltonian cycle, given the hypernode ordering found in Phase 2.
//
// subcycles[i] is the cycle of partition i. hyper[k] is the hypernode of the
// partition visited k-th by the Phase-2 cycle: an oriented edge (V -> U) of
// that partition's subcycle. partitionOf maps a hypernode to its subcycle
// index. The resulting cycle enters partition k at hyper[k].U, walks the
// subcycle forward all the way around to hyper[k].V (covering every vertex of
// the partition, omitting the internal edge V->U), then jumps to
// hyper[k+1].U.
//
// It validates that each hypernode is a successor pair on its subcycle.
func SpliceHypernodes(subcycles []*Cycle, hyper []OrientedEdge, partitionOf func(OrientedEdge) int) (*Cycle, error) {
	if len(hyper) != len(subcycles) {
		return nil, fmt.Errorf("cycle: %d hypernodes for %d subcycles", len(hyper), len(subcycles))
	}
	total := 0
	for _, sc := range subcycles {
		total += sc.Len()
	}
	out := make([]graph.NodeID, 0, total)
	for _, h := range hyper {
		idx := partitionOf(h)
		if idx < 0 || idx >= len(subcycles) {
			return nil, fmt.Errorf("cycle: hypernode %v maps to invalid partition %d", h, idx)
		}
		sc := subcycles[idx]
		segment, err := arcFrom(sc, h.U, h.V)
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", idx, err)
		}
		out = append(out, segment...)
	}
	if len(out) != total {
		return nil, fmt.Errorf("%w: spliced %d of %d vertices", ErrNotSpanning, len(out), total)
	}
	return FromOrder(out), nil
}

// arcFrom returns the vertices of c from u forward (in cycle orientation)
// around to v inclusive. If v is u's predecessor the arc covers the whole
// cycle. It errors if u or v is absent or v->u is not a cycle edge.
func arcFrom(c *Cycle, u, v graph.NodeID) ([]graph.NodeID, error) {
	n := c.Len()
	start := -1
	for i := 0; i < n; i++ {
		if c.At(i) == u {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, fmt.Errorf("%w: vertex %d not on subcycle", ErrNotSpanning, u)
	}
	if c.At(start-1) != v {
		return nil, fmt.Errorf("%w: (%d -> %d) is not a subcycle edge", ErrNotCycle, v, u)
	}
	arc := make([]graph.NodeID, 0, n)
	for i := 0; i < n; i++ {
		arc = append(arc, c.At(start+i))
	}
	return arc, nil
}

// Bridge describes how two disjoint cycles merge in DHC2 Phase 2 (paper
// Fig. 3). E1 = (v_i -> u_i) is a cycle edge of the first cycle,
// E2 = (v_j -> u_j) of the second. If Crossed is false, the graph edges
// (v_i, v_j) and (u_i, u_j) realize the bridge; if Crossed is true, the graph
// edges (v_i, u_j) and (u_i, v_j) do.
type Bridge struct {
	E1, E2  OrientedEdge
	Crossed bool
}

// MergeTwo merges cycles c1 and c2 over the given bridge into one cycle
// covering the union of their vertices: the cycle edges E1 and E2 are
// removed and replaced by the two bridge edges.
func MergeTwo(c1, c2 *Cycle, b Bridge) (*Cycle, error) {
	// Walk c1 from u_i forward around to v_i.
	seg1, err := arcFrom(c1, b.E1.U, b.E1.V)
	if err != nil {
		return nil, fmt.Errorf("cycle: bad bridge edge on first cycle: %w", err)
	}
	var seg2 []graph.NodeID
	if b.Crossed {
		// v_i -> u_j: walk c2 forward from u_j to v_j, then v_j -> u_i.
		seg2, err = arcFrom(c2, b.E2.U, b.E2.V)
		if err != nil {
			return nil, fmt.Errorf("cycle: bad bridge edge on second cycle: %w", err)
		}
	} else {
		// v_i -> v_j: walk c2 *backward* from v_j to u_j, then u_j -> u_i.
		seg2, err = arcFrom(c2, b.E2.U, b.E2.V)
		if err != nil {
			return nil, fmt.Errorf("cycle: bad bridge edge on second cycle: %w", err)
		}
		reverse(seg2)
	}
	return FromOrder(append(seg1, seg2...)), nil
}

// BridgeEdges returns the two graph edges a bridge requires.
func (b Bridge) BridgeEdges() [2]graph.Edge {
	if b.Crossed {
		return [2]graph.Edge{
			{U: b.E1.V, V: b.E2.U},
			{U: b.E1.U, V: b.E2.V},
		}
	}
	return [2]graph.Edge{
		{U: b.E1.V, V: b.E2.V},
		{U: b.E1.U, V: b.E2.U},
	}
}

// ValidBridge reports whether the bridge's two required edges exist in g and
// whether E1, E2 are cycle edges of c1, c2 respectively.
func ValidBridge(g *graph.Graph, c1, c2 *Cycle, b Bridge) bool {
	if !isCycleEdge(c1, b.E1) || !isCycleEdge(c2, b.E2) {
		return false
	}
	for _, e := range b.BridgeEdges() {
		if !g.HasEdge(e.U, e.V) {
			return false
		}
	}
	return true
}

func isCycleEdge(c *Cycle, e OrientedEdge) bool {
	for i := 0; i < c.Len(); i++ {
		if c.At(i) == e.V && c.At(i+1) == e.U {
			return true
		}
	}
	return false
}

func reverse(s []graph.NodeID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
