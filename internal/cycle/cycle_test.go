package cycle

import (
	"errors"
	"testing"

	"dhc/internal/graph"
	"dhc/internal/rng"
)

func TestFromOrderAndAccessors(t *testing.T) {
	c := FromOrder([]graph.NodeID{3, 1, 4, 0})
	if c.Len() != 4 {
		t.Fatalf("len=%d", c.Len())
	}
	if c.At(0) != 3 || c.At(4) != 3 || c.At(-1) != 0 || c.At(5) != 1 {
		t.Fatal("At modular indexing wrong")
	}
	ord := c.Order()
	ord[0] = 99
	if c.At(0) != 3 {
		t.Fatal("Order() must return a copy")
	}
}

func TestSuccessors(t *testing.T) {
	c := FromOrder([]graph.NodeID{0, 1, 2})
	succ := c.Successors()
	want := map[graph.NodeID]graph.NodeID{0: 1, 1: 2, 2: 0}
	for k, v := range want {
		if succ[k] != v {
			t.Fatalf("succ[%d]=%d, want %d", k, succ[k], v)
		}
	}
}

func TestFromSuccessorsRoundTrip(t *testing.T) {
	orig := FromOrder([]graph.NodeID{5, 2, 7, 1, 0})
	c, err := FromSuccessors(orig.Successors(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 5 {
		t.Fatalf("len=%d", c.Len())
	}
	for i := 0; i < 5; i++ {
		if c.At(i) != orig.At(i) {
			t.Fatalf("order differs at %d", i)
		}
	}
}

func TestFromSuccessorsErrors(t *testing.T) {
	if _, err := FromSuccessors(nil, 0); !errors.Is(err, ErrNotCycle) {
		t.Fatal("empty map should fail")
	}
	// Two disjoint 2-cycles: walk closes early.
	succ := map[graph.NodeID]graph.NodeID{0: 1, 1: 0, 2: 3, 3: 2}
	if _, err := FromSuccessors(succ, 0); !errors.Is(err, ErrNotCycle) {
		t.Fatal("disjoint cycles should fail")
	}
	// Walk leaves the map.
	succ = map[graph.NodeID]graph.NodeID{0: 1, 1: 2}
	if _, err := FromSuccessors(succ, 0); !errors.Is(err, ErrNotCycle) {
		t.Fatal("dangling successor should fail")
	}
	// Rho shape: 0->1->2->1 revisits before closing.
	succ = map[graph.NodeID]graph.NodeID{0: 1, 1: 2, 2: 1}
	if _, err := FromSuccessors(succ, 0); !errors.Is(err, ErrNotCycle) {
		t.Fatal("rho walk should fail")
	}
}

func TestVerifyAcceptsRing(t *testing.T) {
	g := graph.Ring(10)
	order := make([]graph.NodeID, 10)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	if err := FromOrder(order).Verify(g); err != nil {
		t.Fatalf("ring traversal rejected: %v", err)
	}
}

func TestVerifyRejections(t *testing.T) {
	g := graph.Complete(5)
	tests := []struct {
		name  string
		order []graph.NodeID
		want  error
	}{
		{"too short", []graph.NodeID{0, 1, 2, 3}, ErrNotSpanning},
		{"repeat", []graph.NodeID{0, 1, 2, 3, 3}, ErrNotSpanning},
		{"out of range", []graph.NodeID{0, 1, 2, 3, 9}, ErrNotSpanning},
	}
	for _, tc := range tests {
		if err := FromOrder(tc.order).Verify(g); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// Non-edge: path graph misses the closing edge 4-0.
	pg := graph.Path(5)
	if err := FromOrder([]graph.NodeID{0, 1, 2, 3, 4}).Verify(pg); !errors.Is(err, ErrNotSubgraph) {
		t.Error("closing non-edge accepted")
	}
	// n < 3.
	if err := FromOrder([]graph.NodeID{0, 1}).Verify(graph.Complete(2)); !errors.Is(err, ErrNotSpanning) {
		t.Error("2-cycle accepted")
	}
}

func TestRelabel(t *testing.T) {
	c := FromOrder([]graph.NodeID{0, 1, 2})
	table := []graph.NodeID{10, 20, 30}
	r := c.Relabel(table)
	if r.At(0) != 10 || r.At(1) != 20 || r.At(2) != 30 {
		t.Fatalf("relabel wrong: %v", r.Order())
	}
}

func TestEdgeSetCanonical(t *testing.T) {
	c := FromOrder([]graph.NodeID{2, 0, 1})
	set := c.EdgeSet()
	if len(set) != 3 {
		t.Fatalf("edge set size %d", len(set))
	}
	for e := range set {
		if e.U > e.V {
			t.Fatalf("non-canonical edge %v", e)
		}
	}
}

func TestPathExtendAndPositions(t *testing.T) {
	p := NewPath(7)
	if p.Len() != 1 || p.Head() != 7 || p.Tail() != 7 || p.Position(7) != 1 {
		t.Fatal("NewPath wrong")
	}
	p.Extend(3)
	p.Extend(9)
	if p.Head() != 9 || p.Len() != 3 {
		t.Fatal("Extend wrong")
	}
	if p.Position(3) != 2 || p.Position(9) != 3 || p.Position(42) != 0 {
		t.Fatal("positions wrong")
	}
	if p.At(1) != 7 || p.At(3) != 9 {
		t.Fatal("At wrong")
	}
	if !p.Contains(3) || p.Contains(4) {
		t.Fatal("Contains wrong")
	}
}

func TestPathExtendPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Extend did not panic")
		}
	}()
	p := NewPath(1)
	p.Extend(1)
}

func TestRotateMatchesPaperExample(t *testing.T) {
	// Paper Fig. 2: v1..vj vj+1..vh  ->  v1..vj vh vh-1..vj+1.
	p := NewPath(0)
	for v := graph.NodeID(1); v <= 5; v++ {
		p.Extend(v) // path 0 1 2 3 4 5, h = 6
	}
	p.Rotate(3) // j = 3 (vertex 2): suffix 3 4 5 reverses to 5 4 3
	want := []graph.NodeID{0, 1, 2, 5, 4, 3}
	got := p.Order()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after rotate: %v, want %v", got, want)
		}
	}
	if p.Head() != 3 {
		t.Fatalf("new head %d, want 3 (old v_{j+1})", p.Head())
	}
	// Renumbering rule i <- h + j + 1 - i must hold for the moved vertices.
	// Old positions 4,5,6 (vertices 3,4,5) map to 6,5,4.
	if p.Position(3) != 6 || p.Position(4) != 5 || p.Position(5) != 4 {
		t.Fatal("renumbering rule violated")
	}
}

func TestRotatePanicsOutOfRange(t *testing.T) {
	p := NewPath(0)
	p.Extend(1)
	for _, j := range []int{0, 2, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Rotate(%d) did not panic", j)
				}
			}()
			p.Rotate(j)
		}()
	}
}

func TestRotatePreservesPathProperty(t *testing.T) {
	// Property: after any rotation at a position j where (head, v_j) is an
	// edge, the result is still a simple path in the graph.
	g := graph.Complete(20)
	src := rng.New(17)
	p := NewPath(0)
	for v := graph.NodeID(1); v < 20; v++ {
		p.Extend(v)
	}
	for iter := 0; iter < 200; iter++ {
		j := 1 + src.Intn(p.Len()-1)
		p.Rotate(j)
		if err := p.VerifyPath(g); err != nil {
			t.Fatalf("iteration %d: %v", iter, err)
		}
		if p.Len() != 20 {
			t.Fatalf("rotation changed length to %d", p.Len())
		}
		// Position map must stay consistent with order.
		for i := 1; i <= p.Len(); i++ {
			if p.Position(p.At(i)) != i {
				t.Fatalf("position map inconsistent at %d", i)
			}
		}
	}
}

func TestVerifyPathDetectsNonEdge(t *testing.T) {
	g := graph.Path(4) // edges 0-1,1-2,2-3
	p := NewPath(0)
	p.Extend(2)
	if err := p.VerifyPath(g); !errors.Is(err, ErrNotSubgraph) {
		t.Fatal("non-edge path accepted")
	}
}

func TestCloseCycle(t *testing.T) {
	p := NewPath(0)
	p.Extend(1)
	p.Extend(2)
	c := p.CloseCycle()
	if c.Len() != 3 {
		t.Fatalf("len=%d", c.Len())
	}
	if err := c.Verify(graph.Complete(3)); err != nil {
		t.Fatal(err)
	}
}
