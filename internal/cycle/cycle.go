// Package cycle provides the path and cycle representations shared by all
// Hamiltonian-cycle algorithms in this repository, the rotation primitive of
// Angluin–Valiant (paper Fig. 2), hierarchical cycles (the subcyc/hypcyc
// indexing of DHC1, paper Section II-A.1), cycle stitching, and verification.
package cycle

import (
	"errors"
	"fmt"

	"dhc/internal/bitset"
	"dhc/internal/graph"
)

// Sentinel errors returned by verification. Callers match with errors.Is.
var (
	ErrNotCycle    = errors.New("cycle: successor structure is not a single cycle")
	ErrNotSpanning = errors.New("cycle: cycle does not visit every vertex exactly once")
	ErrNotSubgraph = errors.New("cycle: cycle uses a non-edge of the graph")
)

// Cycle is a directed traversal v_0 -> v_1 -> ... -> v_{k-1} -> v_0 over
// vertices of a graph, stored as the visiting order. A Hamiltonian cycle has
// k = n.
type Cycle struct {
	order []graph.NodeID
}

// FromOrder builds a Cycle visiting the given vertices in order. The slice is
// copied.
func FromOrder(order []graph.NodeID) *Cycle {
	c := &Cycle{order: make([]graph.NodeID, len(order))}
	copy(c.order, order)
	return c
}

// FromSuccessors builds a Cycle from a successor map, starting at start and
// following successors until returning to start. It returns ErrNotCycle if
// the walk revisits a vertex before closing or leaves the map.
func FromSuccessors(succ map[graph.NodeID]graph.NodeID, start graph.NodeID) (*Cycle, error) {
	if len(succ) == 0 {
		return nil, fmt.Errorf("%w: empty successor map", ErrNotCycle)
	}
	order := make([]graph.NodeID, 0, len(succ))
	seen := make(map[graph.NodeID]bool, len(succ))
	v := start
	for {
		if seen[v] {
			return nil, fmt.Errorf("%w: revisited %d before closing", ErrNotCycle, v)
		}
		seen[v] = true
		order = append(order, v)
		next, ok := succ[v]
		if !ok {
			return nil, fmt.Errorf("%w: no successor for %d", ErrNotCycle, v)
		}
		if next == start {
			break
		}
		v = next
	}
	if len(order) != len(succ) {
		return nil, fmt.Errorf("%w: walk closed after %d of %d vertices",
			ErrNotCycle, len(order), len(succ))
	}
	return FromOrder(order), nil
}

// Len returns the number of vertices on the cycle.
func (c *Cycle) Len() int { return len(c.order) }

// Order returns the visit order. The returned slice is a copy.
func (c *Cycle) Order() []graph.NodeID {
	out := make([]graph.NodeID, len(c.order))
	copy(out, c.order)
	return out
}

// At returns the i-th vertex in visiting order (0-based, modulo length).
func (c *Cycle) At(i int) graph.NodeID {
	n := len(c.order)
	i %= n
	if i < 0 {
		i += n
	}
	return c.order[i]
}

// Successors returns the successor map of the cycle.
func (c *Cycle) Successors() map[graph.NodeID]graph.NodeID {
	succ := make(map[graph.NodeID]graph.NodeID, len(c.order))
	for i, v := range c.order {
		succ[v] = c.order[(i+1)%len(c.order)]
	}
	return succ
}

// EdgeSet returns the set of undirected edges used by the cycle, in canonical
// form, e.g. for DOT highlighting.
func (c *Cycle) EdgeSet() map[graph.Edge]bool {
	set := make(map[graph.Edge]bool, len(c.order))
	for i, v := range c.order {
		w := c.order[(i+1)%len(c.order)]
		set[graph.Edge{U: v, V: w}.Canonical()] = true
	}
	return set
}

// Verify checks that c is a Hamiltonian cycle of g: it must visit each of the
// n vertices exactly once and every consecutive pair (including the closing
// pair) must be an edge of g. A nil error means c is a valid HC.
func (c *Cycle) Verify(g *graph.Graph) error {
	n := g.N()
	if len(c.order) != n {
		return fmt.Errorf("%w: cycle length %d, graph has %d vertices",
			ErrNotSpanning, len(c.order), n)
	}
	if n < 3 {
		return fmt.Errorf("%w: Hamiltonian cycle needs n >= 3", ErrNotSpanning)
	}
	seen := bitset.Make(n)
	for _, v := range c.order {
		if int(v) < 0 || int(v) >= n {
			return fmt.Errorf("%w: vertex %d out of range", ErrNotSpanning, v)
		}
		if seen.Has(int(v)) {
			return fmt.Errorf("%w: vertex %d visited twice", ErrNotSpanning, v)
		}
		seen.Add(int(v))
	}
	for i, v := range c.order {
		w := c.order[(i+1)%n]
		if !g.HasEdge(v, w) {
			return fmt.Errorf("%w: (%d,%d) missing", ErrNotSubgraph, v, w)
		}
	}
	return nil
}

// Relabel maps every vertex through the given table (new id = table[old id]),
// used to lift a cycle found in an induced subgraph back to original ids.
func (c *Cycle) Relabel(table []graph.NodeID) *Cycle {
	out := make([]graph.NodeID, len(c.order))
	for i, v := range c.order {
		out[i] = table[v]
	}
	return &Cycle{order: out}
}

// String renders a short preview like "cycle[0 5 2 ... 9] len=12".
func (c *Cycle) String() string {
	if len(c.order) <= 8 {
		return fmt.Sprintf("cycle%v len=%d", c.order, len(c.order))
	}
	return fmt.Sprintf("cycle[%d %d %d ... %d] len=%d",
		c.order[0], c.order[1], c.order[2], c.order[len(c.order)-1], len(c.order))
}
