package cycle

import (
	"fmt"

	"dhc/internal/graph"
)

// Path is a mutable simple path v_1, ..., v_h used by the rotation
// algorithms. Positions are 1-based to match the paper's pseudocode
// (Algorithm 1 keeps cycindex = 0 for unvisited vertices and assigns the
// initial head cycindex = 1).
//
// Internally Path is an implicit treap with lazy suffix reversal: Extend,
// Rotate, Position, At, and Head are all O(log h). This matters because a
// rotation reverses the whole path suffix after position j — on an array
// that is Θ(h) per rotation and makes the rotation process Θ(n²) overall,
// which is exactly the wall that kept the step engine from 10^5+-vertex
// partitions. Treap priorities come from a private deterministic stream
// (they never touch the caller's RNG), so the sequence of observable states
// is identical to the array implementation's.
type Path struct {
	nodes []pathNode
	root  int32
	// vnode[v] is the arena index of v's node, -1 while v is off the path.
	// Vertex ids are dense, so a growable slice beats a map by an order of
	// magnitude on the per-step Position lookups.
	vnode []int32
	// prioState seeds the deterministic treap priorities (splitmix64 of the
	// insertion counter).
	prioState uint64
	// scratch holds the root-to-node chain reused by Position.
	scratch []int32
}

const nilNode = int32(-1)

type pathNode struct {
	l, r, p int32
	size    int32
	prio    uint64
	rev     bool
	v       graph.NodeID
}

// NewPath returns a path containing just the start vertex (the initial head).
func NewPath(start graph.NodeID) *Path {
	p := &Path{root: nilNode, prioState: 0x9e3779b97f4a7c15}
	p.root = p.newNode(start)
	return p
}

func (p *Path) newNode(v graph.NodeID) int32 {
	// splitmix64: deterministic, well-distributed priorities per insertion.
	p.prioState += 0x9e3779b97f4a7c15
	z := p.prioState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	idx := int32(len(p.nodes))
	p.nodes = append(p.nodes, pathNode{
		l: nilNode, r: nilNode, p: nilNode,
		size: 1, prio: z ^ (z >> 31), v: v,
	})
	for int(v) >= len(p.vnode) {
		p.vnode = append(p.vnode, nilNode)
	}
	p.vnode[v] = idx
	return idx
}

func (p *Path) size(x int32) int32 {
	if x < 0 {
		return 0
	}
	return p.nodes[x].size
}

// push resolves x's pending reversal by swapping its children and deferring
// the flag to them.
func (p *Path) push(x int32) {
	n := &p.nodes[x]
	if !n.rev {
		return
	}
	n.l, n.r = n.r, n.l
	if n.l >= 0 {
		p.nodes[n.l].rev = !p.nodes[n.l].rev
	}
	if n.r >= 0 {
		p.nodes[n.r].rev = !p.nodes[n.r].rev
	}
	n.rev = false
}

// pull recomputes x's size and claims its children's parent pointers.
func (p *Path) pull(x int32) {
	n := &p.nodes[x]
	n.size = 1 + p.size(n.l) + p.size(n.r)
	if n.l >= 0 {
		p.nodes[n.l].p = x
	}
	if n.r >= 0 {
		p.nodes[n.r].p = x
	}
}

func (p *Path) merge(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if p.nodes[a].prio >= p.nodes[b].prio {
		p.push(a)
		p.nodes[a].r = p.merge(p.nodes[a].r, b)
		p.pull(a)
		return a
	}
	p.push(b)
	p.nodes[b].l = p.merge(a, p.nodes[b].l)
	p.pull(b)
	return b
}

// split divides x's subtree into its first k elements and the rest.
func (p *Path) split(x, k int32) (int32, int32) {
	if x < 0 {
		return nilNode, nilNode
	}
	p.push(x)
	if ls := p.size(p.nodes[x].l); ls+1 <= k {
		a, b := p.split(p.nodes[x].r, k-ls-1)
		p.nodes[x].r = a
		p.pull(x)
		if b >= 0 {
			p.nodes[b].p = nilNode
		}
		return x, b
	}
	a, b := p.split(p.nodes[x].l, k)
	p.nodes[x].l = b
	p.pull(x)
	if a >= 0 {
		p.nodes[a].p = nilNode
	}
	return a, x
}

// kth returns the node at 1-based position i, pushing flags on the way down.
func (p *Path) kth(i int32) int32 {
	x := p.root
	for {
		p.push(x)
		ls := p.size(p.nodes[x].l)
		switch {
		case i <= ls:
			x = p.nodes[x].l
		case i == ls+1:
			return x
		default:
			i -= ls + 1
			x = p.nodes[x].r
		}
	}
}

// Len returns the number of vertices h on the path.
func (p *Path) Len() int { return int(p.size(p.root)) }

// Head returns the current head v_h.
func (p *Path) Head() graph.NodeID { return p.nodes[p.kth(p.size(p.root))].v }

// Tail returns v_1.
func (p *Path) Tail() graph.NodeID { return p.nodes[p.kth(1)].v }

// Position returns the 1-based position of v on the path, or 0 if absent.
func (p *Path) Position(v graph.NodeID) int {
	if int(v) < 0 || int(v) >= len(p.vnode) {
		return 0
	}
	x := p.vnode[v]
	if x < 0 {
		return 0
	}
	// Settle pending reversals along the root-to-x chain (top down), then
	// read the position off the settled tree bottom up.
	chain := p.scratch[:0]
	for y := x; y >= 0; y = p.nodes[y].p {
		chain = append(chain, y)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		p.push(chain[i])
	}
	p.scratch = chain
	pos := int(p.size(p.nodes[x].l)) + 1
	for y := x; ; {
		par := p.nodes[y].p
		if par < 0 {
			break
		}
		if p.nodes[par].r == y {
			pos += int(p.size(p.nodes[par].l)) + 1
		}
		y = par
	}
	return pos
}

// Contains reports whether v lies on the path.
func (p *Path) Contains(v graph.NodeID) bool {
	return int(v) >= 0 && int(v) < len(p.vnode) && p.vnode[v] >= 0
}

// At returns the vertex at 1-based position i.
func (p *Path) At(i int) graph.NodeID { return p.nodes[p.kth(int32(i))].v }

// Extend appends u as the new head. It panics if u is already on the path;
// callers decide between Extend and Rotate by checking Contains first, which
// mirrors the algorithm's branch on cycindex = 0.
func (p *Path) Extend(u graph.NodeID) {
	if p.Contains(u) {
		panic(fmt.Sprintf("cycle: Extend(%d) but vertex already at position %d", u, p.Position(u)))
	}
	p.root = p.merge(p.root, p.newNode(u))
	p.nodes[p.root].p = nilNode
}

// Rotate performs the rotation of paper Fig. 2 at the vertex with 1-based
// position j: the path v_1..v_j v_{j+1}..v_h becomes
// v_1..v_j v_h v_{h-1}..v_{j+1}, i.e. the suffix after v_j is reversed, and
// the old v_{j+1} becomes the new head. The renumbering i <- h + j + 1 - i
// of the paper is what the lazy reversal flag represents. It panics if j is
// out of [1, h-1].
func (p *Path) Rotate(j int) {
	h := p.Len()
	if j < 1 || j >= h {
		panic(fmt.Sprintf("cycle: Rotate(j=%d) out of range for path length %d", j, h))
	}
	a, b := p.split(p.root, int32(j))
	p.nodes[b].rev = !p.nodes[b].rev
	p.root = p.merge(a, b)
	p.nodes[p.root].p = nilNode
}

// Order returns the vertices in path order. The returned slice is a copy.
func (p *Path) Order() []graph.NodeID {
	out := make([]graph.NodeID, 0, p.Len())
	var walk func(int32)
	walk = func(x int32) {
		if x < 0 {
			return
		}
		p.push(x)
		walk(p.nodes[x].l)
		out = append(out, p.nodes[x].v)
		walk(p.nodes[x].r)
	}
	walk(p.root)
	return out
}

// CloseCycle converts the path into a Cycle. It does not check the closing
// edge; use Verify on the result.
func (p *Path) CloseCycle() *Cycle {
	return &Cycle{order: p.Order()}
}

// VerifyPath checks that consecutive path vertices are adjacent in g and
// no vertex repeats.
func (p *Path) VerifyPath(g *graph.Graph) error {
	order := p.Order()
	seen := make(map[graph.NodeID]bool, len(order))
	for i, v := range order {
		if seen[v] {
			return fmt.Errorf("%w: path revisits %d", ErrNotCycle, v)
		}
		seen[v] = true
		if i > 0 && !g.HasEdge(order[i-1], v) {
			return fmt.Errorf("%w: path uses non-edge (%d,%d)", ErrNotSubgraph, order[i-1], v)
		}
	}
	return nil
}
