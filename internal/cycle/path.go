package cycle

import (
	"fmt"

	"dhc/internal/graph"
)

// Path is a mutable simple path v_1, ..., v_h used by the rotation
// algorithms. Positions are 1-based to match the paper's pseudocode
// (Algorithm 1 keeps cycindex = 0 for unvisited vertices and assigns the
// initial head cycindex = 1).
//
// Internally Path is an implicit treap with lazy suffix reversal: Extend,
// Rotate, Position, At, and Head are all O(log h). This matters because a
// rotation reverses the whole path suffix after position j — on an array
// that is Θ(h) per rotation and makes the rotation process Θ(n²) overall,
// which is exactly the wall that kept the step engine from 10^5+-vertex
// partitions. Treap priorities come from a private deterministic stream
// (they never touch the caller's RNG), so the sequence of observable states
// is identical to the array implementation's.
type Path struct {
	nodes []pathNode
	root  int32
	// vnode[v] is the arena index of v's node, -1 while v is off the path.
	// Vertex ids are dense, so a growable slice beats a map by an order of
	// magnitude on the per-step Position lookups.
	vnode []int32
	// prioState seeds the deterministic treap priorities (splitmix64 of the
	// insertion counter).
	prioState uint64
	// scratch holds the root-to-node chain reused by Position.
	scratch []int32
}

const nilNode = int32(-1)

// sizeMask extracts the subtree size from pathNode.szrev; bit 31 is the lazy
// reversal flag. Path length is bounded far below 2^31 by the graph layout's
// own vertex cap, so 31 bits of size lose nothing.
const sizeMask = 1<<31 - 1

// pathNode is packed to 24 bytes (down from 32): the reversal flag rides in
// the top bit of the size word and priorities are 32-bit. With millions of
// nodes live during a big run this is a quarter of the treap's footprint and
// measurably fewer cache lines per descent. Priority ties (possible at 32
// bits) only skew treap shape, which is unobservable.
type pathNode struct {
	l, r, p int32
	// szrev: subtree size in the low 31 bits, lazy reversal flag in bit 31.
	szrev uint32
	prio  uint32
	v     graph.NodeID
}

func (n *pathNode) size() int32 { return int32(n.szrev & sizeMask) }

// NewPath returns a path containing just the start vertex (the initial head).
func NewPath(start graph.NodeID) *Path {
	p := &Path{root: nilNode, prioState: 0x9e3779b97f4a7c15}
	p.root = p.newNode(start)
	return p
}

func (p *Path) newNode(v graph.NodeID) int32 {
	// splitmix64: deterministic, well-distributed priorities per insertion.
	p.prioState += 0x9e3779b97f4a7c15
	z := p.prioState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	idx := int32(len(p.nodes))
	p.nodes = append(p.nodes, pathNode{
		l: nilNode, r: nilNode, p: nilNode,
		szrev: 1, prio: uint32((z ^ (z >> 31)) >> 32), v: v,
	})
	for int(v) >= len(p.vnode) {
		p.vnode = append(p.vnode, nilNode)
	}
	p.vnode[v] = idx
	return idx
}

func (p *Path) size(x int32) int32 {
	if x < 0 {
		return 0
	}
	return p.nodes[x].size()
}

// push resolves x's pending reversal by swapping its children and deferring
// the flag to them.
func (p *Path) push(x int32) {
	n := &p.nodes[x]
	if n.szrev>>31 == 0 {
		return
	}
	n.l, n.r = n.r, n.l
	if n.l >= 0 {
		p.nodes[n.l].szrev ^= 1 << 31
	}
	if n.r >= 0 {
		p.nodes[n.r].szrev ^= 1 << 31
	}
	n.szrev &= sizeMask
}

// pull recomputes x's size and claims its children's parent pointers.
func (p *Path) pull(x int32) {
	n := &p.nodes[x]
	n.szrev = n.szrev&^sizeMask | uint32(1+p.size(n.l)+p.size(n.r))
	if n.l >= 0 {
		p.nodes[n.l].p = x
	}
	if n.r >= 0 {
		p.nodes[n.r].p = x
	}
}

func (p *Path) merge(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if p.nodes[a].prio >= p.nodes[b].prio {
		p.push(a)
		p.nodes[a].r = p.merge(p.nodes[a].r, b)
		p.pull(a)
		return a
	}
	p.push(b)
	p.nodes[b].l = p.merge(a, p.nodes[b].l)
	p.pull(b)
	return b
}

// split divides x's subtree into its first k elements and the rest.
func (p *Path) split(x, k int32) (int32, int32) {
	if x < 0 {
		return nilNode, nilNode
	}
	p.push(x)
	if ls := p.size(p.nodes[x].l); ls+1 <= k {
		a, b := p.split(p.nodes[x].r, k-ls-1)
		p.nodes[x].r = a
		p.pull(x)
		if b >= 0 {
			p.nodes[b].p = nilNode
		}
		return x, b
	}
	a, b := p.split(p.nodes[x].l, k)
	p.nodes[x].l = b
	p.pull(x)
	if a >= 0 {
		p.nodes[a].p = nilNode
	}
	return a, x
}

// kth returns the node at 1-based position i, pushing flags on the way down.
func (p *Path) kth(i int32) int32 {
	x := p.root
	for {
		p.push(x)
		ls := p.size(p.nodes[x].l)
		switch {
		case i <= ls:
			x = p.nodes[x].l
		case i == ls+1:
			return x
		default:
			i -= ls + 1
			x = p.nodes[x].r
		}
	}
}

// Len returns the number of vertices h on the path.
func (p *Path) Len() int { return int(p.size(p.root)) }

// Head returns the current head v_h.
func (p *Path) Head() graph.NodeID { return p.nodes[p.kth(p.size(p.root))].v }

// Tail returns v_1.
func (p *Path) Tail() graph.NodeID { return p.nodes[p.kth(1)].v }

// Position returns the 1-based position of v on the path, or 0 if absent.
func (p *Path) Position(v graph.NodeID) int {
	if int(v) < 0 || int(v) >= len(p.vnode) {
		return 0
	}
	x := p.vnode[v]
	if x < 0 {
		return 0
	}
	// Settle pending reversals along the root-to-x chain top down, summing
	// each node's left-subtree contribution during the same descent (the
	// comparison against the next chain node must follow its parent's push,
	// which may swap the children).
	chain := p.scratch[:0]
	for y := x; y >= 0; y = p.nodes[y].p {
		chain = append(chain, y)
	}
	pos := 1
	for i := len(chain) - 1; i > 0; i-- {
		y := chain[i]
		p.push(y)
		if p.nodes[y].r == chain[i-1] {
			pos += int(p.size(p.nodes[y].l)) + 1
		}
	}
	p.push(x)
	pos += int(p.size(p.nodes[x].l))
	p.scratch = chain
	return pos
}

// Contains reports whether v lies on the path.
func (p *Path) Contains(v graph.NodeID) bool {
	return int(v) >= 0 && int(v) < len(p.vnode) && p.vnode[v] >= 0
}

// At returns the vertex at 1-based position i.
func (p *Path) At(i int) graph.NodeID { return p.nodes[p.kth(int32(i))].v }

// Extend appends u as the new head. It panics if u is already on the path;
// callers decide between Extend and Rotate by checking Contains first, which
// mirrors the algorithm's branch on cycindex = 0.
func (p *Path) Extend(u graph.NodeID) {
	if p.Contains(u) {
		panic(fmt.Sprintf("cycle: Extend(%d) but vertex already at position %d", u, p.Position(u)))
	}
	p.root = p.merge(p.root, p.newNode(u))
	p.nodes[p.root].p = nilNode
}

// Rotate performs the rotation of paper Fig. 2 at the vertex with 1-based
// position j: the path v_1..v_j v_{j+1}..v_h becomes
// v_1..v_j v_h v_{h-1}..v_{j+1}, i.e. the suffix after v_j is reversed, and
// the old v_{j+1} becomes the new head. The renumbering i <- h + j + 1 - i
// of the paper is what the lazy reversal flag represents. It panics if j is
// out of [1, h-1].
func (p *Path) Rotate(j int) {
	p.RotateHead(j)
}

// RotateHead performs Rotate(j) and returns the new head (the old v_{j+1}).
// The head is read off the detached suffix during the rotation itself —
// its leftmost node, reached in O(log(h-j)) — so hot loops that need the
// head after every rotation skip the full-length root descent that a
// Rotate-then-Head pair would pay.
func (p *Path) RotateHead(j int) graph.NodeID {
	h := p.Len()
	if j < 1 || j >= h {
		panic(fmt.Sprintf("cycle: Rotate(j=%d) out of range for path length %d", j, h))
	}
	a, b := p.split(p.root, int32(j))
	x := b
	for {
		p.push(x)
		l := p.nodes[x].l
		if l < 0 {
			break
		}
		x = l
	}
	head := p.nodes[x].v
	p.nodes[b].szrev ^= 1 << 31
	p.root = p.merge(a, b)
	p.nodes[p.root].p = nilNode
	return head
}

// Order returns the vertices in path order. The returned slice is a copy.
func (p *Path) Order() []graph.NodeID {
	out := make([]graph.NodeID, 0, p.Len())
	var walk func(int32)
	walk = func(x int32) {
		if x < 0 {
			return
		}
		p.push(x)
		walk(p.nodes[x].l)
		out = append(out, p.nodes[x].v)
		walk(p.nodes[x].r)
	}
	walk(p.root)
	return out
}

// CloseCycle converts the path into a Cycle. It does not check the closing
// edge; use Verify on the result.
func (p *Path) CloseCycle() *Cycle {
	return &Cycle{order: p.Order()}
}

// VerifyPath checks that consecutive path vertices are adjacent in g and
// no vertex repeats.
func (p *Path) VerifyPath(g *graph.Graph) error {
	order := p.Order()
	seen := make(map[graph.NodeID]bool, len(order))
	for i, v := range order {
		if seen[v] {
			return fmt.Errorf("%w: path revisits %d", ErrNotCycle, v)
		}
		seen[v] = true
		if i > 0 && !g.HasEdge(order[i-1], v) {
			return fmt.Errorf("%w: path uses non-edge (%d,%d)", ErrNotSubgraph, order[i-1], v)
		}
	}
	return nil
}
