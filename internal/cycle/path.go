package cycle

import (
	"fmt"

	"dhc/internal/graph"
)

// Path is a mutable simple path v_1, ..., v_h used by the rotation
// algorithms. Positions are 1-based to match the paper's pseudocode
// (Algorithm 1 keeps cycindex = 0 for unvisited vertices and assigns the
// initial head cycindex = 1).
//
// Internally Path maintains both the ordered vertex slice and the inverse
// position map, so that Rotate is O(1) bookkeeping plus the renumbering range
// and membership queries are O(1).
type Path struct {
	verts []graph.NodeID       // verts[i] is the vertex at position i+1
	pos   map[graph.NodeID]int // pos[v] is the 1-based position of v, 0 if absent
}

// NewPath returns a path containing just the start vertex (the initial head).
func NewPath(start graph.NodeID) *Path {
	return &Path{
		verts: []graph.NodeID{start},
		pos:   map[graph.NodeID]int{start: 1},
	}
}

// Len returns the number of vertices h on the path.
func (p *Path) Len() int { return len(p.verts) }

// Head returns the current head v_h.
func (p *Path) Head() graph.NodeID { return p.verts[len(p.verts)-1] }

// Tail returns v_1.
func (p *Path) Tail() graph.NodeID { return p.verts[0] }

// Position returns the 1-based position of v on the path, or 0 if absent.
func (p *Path) Position(v graph.NodeID) int { return p.pos[v] }

// Contains reports whether v lies on the path.
func (p *Path) Contains(v graph.NodeID) bool { return p.pos[v] != 0 }

// At returns the vertex at 1-based position i.
func (p *Path) At(i int) graph.NodeID { return p.verts[i-1] }

// Extend appends u as the new head. It panics if u is already on the path;
// callers decide between Extend and Rotate by checking Contains first, which
// mirrors the algorithm's branch on cycindex = 0.
func (p *Path) Extend(u graph.NodeID) {
	if p.pos[u] != 0 {
		panic(fmt.Sprintf("cycle: Extend(%d) but vertex already at position %d", u, p.pos[u]))
	}
	p.verts = append(p.verts, u)
	p.pos[u] = len(p.verts)
}

// Rotate performs the rotation of paper Fig. 2 at the vertex with 1-based
// position j: the path v_1..v_j v_{j+1}..v_h becomes
// v_1..v_j v_h v_{h-1}..v_{j+1}, i.e. the suffix after v_j is reversed, and
// the old v_{j+1} becomes the new head. Each affected vertex's position is
// renumbered by i <- h + j + 1 - i, exactly the renumbering rule the
// distributed algorithm broadcasts. It panics if j is out of [1, h-1].
func (p *Path) Rotate(j int) {
	h := len(p.verts)
	if j < 1 || j >= h {
		panic(fmt.Sprintf("cycle: Rotate(j=%d) out of range for path length %d", j, h))
	}
	// Reverse verts[j..h-1] (0-based indices for positions j+1..h).
	for lo, hi := j, h-1; lo < hi; lo, hi = lo+1, hi-1 {
		p.verts[lo], p.verts[hi] = p.verts[hi], p.verts[lo]
	}
	for i := j; i < h; i++ {
		p.pos[p.verts[i]] = i + 1
	}
}

// Order returns the vertices in path order. The returned slice is a copy.
func (p *Path) Order() []graph.NodeID {
	out := make([]graph.NodeID, len(p.verts))
	copy(out, p.verts)
	return out
}

// CloseCycle converts the path into a Cycle. It does not check the closing
// edge; use Verify on the result.
func (p *Path) CloseCycle() *Cycle {
	return FromOrder(p.verts)
}

// VerifyPath checks that consecutive path vertices are adjacent in g and
// no vertex repeats.
func (p *Path) VerifyPath(g *graph.Graph) error {
	seen := make(map[graph.NodeID]bool, len(p.verts))
	for i, v := range p.verts {
		if seen[v] {
			return fmt.Errorf("%w: path revisits %d", ErrNotCycle, v)
		}
		seen[v] = true
		if i > 0 && !g.HasEdge(p.verts[i-1], v) {
			return fmt.Errorf("%w: path uses non-edge (%d,%d)", ErrNotSubgraph, p.verts[i-1], v)
		}
	}
	return nil
}
