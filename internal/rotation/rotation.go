// Package rotation implements the randomized rotation algorithm of Angluin &
// Valiant for finding Hamiltonian cycles in random graphs, as a step-level
// state machine (paper Section II-A.2, Algorithm 1; Fig. 2).
//
// One step is either a path extension or a rotation — the unit in which
// Theorem 2 states its 7·n·ln(n) bound. The state machine is engine-neutral:
// the sequential baseline runs it directly, the DRA CONGEST nodes mirror its
// transitions with messages, and the step simulator drives it while charging
// the paper's per-step broadcast cost.
package rotation

import (
	"errors"
	"fmt"
	"math"

	"dhc/internal/cycle"
	"dhc/internal/graph"
	"dhc/internal/rng"
)

// Failure modes of the rotation process, matching the events of the paper's
// Theorem 2 analysis.
var (
	// ErrStepBudget corresponds to event E1: the step budget elapsed
	// without closing the cycle.
	ErrStepBudget = errors.New("rotation: step budget exhausted before cycle closed")
	// ErrOutOfEdges corresponds to event E2: the head ran out of unused
	// edges.
	ErrOutOfEdges = errors.New("rotation: head has no unused edges")
	// ErrInterrupted means Config.Interrupt reported cancellation before the
	// cycle closed; callers translate it back to their context's error.
	ErrInterrupted = errors.New("rotation: run interrupted")
)

// EventKind describes what a single Step did.
type EventKind uint8

const (
	// Extended means the path grew by one vertex.
	Extended EventKind = iota + 1
	// Rotated means a rotation at position J occurred (requires a
	// renumbering broadcast in the distributed implementation).
	Rotated
	// Closed means the cycle closed: the head reached the tail with the
	// path spanning all vertices.
	Closed
)

// Event reports one step of the process.
type Event struct {
	Kind EventKind
	// Head is the head before the step; Chosen is the neighbor it picked.
	Head, Chosen graph.NodeID
	// H and J are the broadcast parameters of a rotation (path length and
	// rotation position); H is also set for Closed (== n).
	H, J int
}

// Config tunes the state machine.
type Config struct {
	// MaxSteps bounds the number of steps; 0 selects ceil(7 n ln n) + 16,
	// the budget of Theorem 2 (the +16 keeps tiny graphs from rounding to
	// budgets smaller than n).
	MaxSteps int64
	// ThinningP, if positive, activates the analysis coupling of Theorem 2:
	// each node's initial unused list keeps each incident edge
	// independently with probability q/p where q = 1 - sqrt(1-p), so the
	// retained pair probability is exactly q. Zero keeps every edge (the
	// practical algorithm, which only does better).
	ThinningP float64
	// Interrupt, if non-nil, is polled by Run every interruptCheckEvery
	// steps; returning true aborts the run with ErrInterrupted. It must not
	// consume randomness, so an uninterrupted run is byte-identical with or
	// without the hook — the step simulator wires a context check here.
	Interrupt func() bool
	// TrackRemovals allocates and maintains Stats.RemovalsPerNode. Off by
	// default: the per-node counters cost 8 bytes per vertex per machine and
	// are only read by the Theorem 2 analysis tests, not by any engine.
	TrackRemovals bool
}

// interruptCheckEvery is Run's amortized cancellation-poll cadence in steps.
const interruptCheckEvery = 1024

// DefaultMaxSteps returns the Theorem 2 step budget for an n-vertex graph.
func DefaultMaxSteps(n int) int64 {
	if n < 2 {
		return 16
	}
	return int64(math.Ceil(7*float64(n)*math.Log(float64(n)))) + 16
}

// Stats meters a run at step granularity.
type Stats struct {
	Steps      int64
	Extensions int64
	Rotations  int64
	// RemovalsPerNode[v] counts unused-edge removals charged to v
	// (event E2.1 of the analysis bounds these by 21 ln n whp). Nil unless
	// Config.TrackRemovals is set.
	RemovalsPerNode []int64
}

// Machine is the rotation process state. Create with New, then call Step
// until it returns a Closed event or an error, or use Run.
type Machine struct {
	g    *graph.Graph
	src  *rng.Source
	cfg  Config
	path *cycle.Path
	// head caches the path head: Extend sets it directly and RotateHead
	// returns the new head as a byproduct of the rotation, so Step never
	// pays a root-to-leaf treap descent just to learn where it is.
	head graph.NodeID
	// Unused-edge state, flat: row v of uarena occupies the graph's own CSR
	// row span (uoff is the graph's offset array, shared read-only) and its
	// first ucnt[v] slots hold v's remaining unused incident edges. Replaces
	// the old [][]NodeID — one allocation instead of n, no 24-byte slice
	// headers, and rows inherit the arena's cache layout.
	uoff   []int32
	ucnt   []int32
	uarena []graph.NodeID
	stats  Stats
	done   bool
}

// New initializes the process with the given start vertex as initial head.
func New(g *graph.Graph, start graph.NodeID, src *rng.Source, cfg Config) *Machine {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps(g.N())
	}
	m := &Machine{
		g:    g,
		src:  src,
		cfg:  cfg,
		path: cycle.NewPath(start),
		head: start,
	}
	if cfg.TrackRemovals {
		m.stats.RemovalsPerNode = make([]int64, g.N())
	}
	off, arena := g.Adjacency()
	m.uoff = off
	m.uarena = make([]graph.NodeID, len(arena))
	m.ucnt = make([]int32, g.N())
	keep := 1.0
	if cfg.ThinningP > 0 {
		q := 1 - math.Sqrt(1-cfg.ThinningP)
		keep = q / cfg.ThinningP
	}
	if keep >= 1 {
		copy(m.uarena, arena)
		for v := 0; v < g.N(); v++ {
			m.ucnt[v] = off[v+1] - off[v]
		}
	} else {
		// Thinning draws one Bernoulli per incident edge in neighbor order,
		// exactly as the per-node list version did.
		for v := 0; v < g.N(); v++ {
			pos := off[v]
			for _, nb := range arena[off[v]:off[v+1]] {
				if src.Bernoulli(keep) {
					m.uarena[pos] = nb
					pos++
				}
			}
			m.ucnt[v] = pos - off[v]
		}
	}
	return m
}

// Path exposes the current path (read-only use intended).
func (m *Machine) Path() *cycle.Path { return m.path }

// Stats returns the current step statistics.
func (m *Machine) Stats() Stats { return m.stats }

// UnusedCount returns the number of unused edges remaining at v, for memory
// accounting in the distributed wrappers.
func (m *Machine) UnusedCount(v graph.NodeID) int { return int(m.ucnt[v]) }

// Done reports whether the machine has produced a Closed event.
func (m *Machine) Done() bool { return m.done }

// Step performs one extension or rotation. After the cycle closes, further
// calls return an error.
func (m *Machine) Step() (Event, error) {
	if m.done {
		return Event{}, errors.New("rotation: machine already closed the cycle")
	}
	if m.stats.Steps >= m.cfg.MaxSteps {
		return Event{}, fmt.Errorf("%w: %d steps", ErrStepBudget, m.stats.Steps)
	}
	head := m.head
	u, ok := m.popRandomUnused(head)
	if !ok {
		return Event{}, fmt.Errorf("%w: node %d after %d steps", ErrOutOfEdges, head, m.stats.Steps)
	}
	m.stats.Steps++
	h := m.path.Len()

	// Algorithm 1, OnReceive progress(pos): the receiver u also discards
	// the used edge from its own list.
	m.removeUnused(u, head)

	pos := m.path.Position(u)
	switch {
	case pos == 0:
		// First visit: extend.
		m.path.Extend(u)
		m.head = u
		m.stats.Extensions++
		return Event{Kind: Extended, Head: head, Chosen: u, H: h + 1}, nil
	case h == m.g.N() && pos == 1:
		// progress(pos = |V|) arriving at the tail: success.
		m.done = true
		return Event{Kind: Closed, Head: head, Chosen: u, H: h}, nil
	default:
		// Rotation at j = pos (the head is at position h; renumbering
		// i <- h + j + 1 - i is applied by Path.Rotate).
		m.head = m.path.RotateHead(pos)
		m.stats.Rotations++
		return Event{Kind: Rotated, Head: head, Chosen: u, H: h, J: pos}, nil
	}
}

// Run steps the machine to completion and returns the Hamiltonian cycle.
func (m *Machine) Run() (*cycle.Cycle, Stats, error) {
	sinceCheck := 0
	for {
		if m.cfg.Interrupt != nil {
			if sinceCheck++; sinceCheck >= interruptCheckEvery {
				sinceCheck = 0
				if m.cfg.Interrupt() {
					return nil, m.stats, fmt.Errorf("%w after %d steps", ErrInterrupted, m.stats.Steps)
				}
			}
		}
		ev, err := m.Step()
		if err != nil {
			return nil, m.stats, err
		}
		if ev.Kind == Closed {
			return m.path.CloseCycle(), m.stats, nil
		}
	}
}

// popRandomUnused removes and returns a uniformly random entry of v's unused
// list.
func (m *Machine) popRandomUnused(v graph.NodeID) (graph.NodeID, bool) {
	cnt := m.ucnt[v]
	if cnt == 0 {
		return 0, false
	}
	base := m.uoff[v]
	i := base + int32(m.src.Intn(int(cnt)))
	u := m.uarena[i]
	m.uarena[i] = m.uarena[base+cnt-1]
	m.ucnt[v] = cnt - 1
	if m.stats.RemovalsPerNode != nil {
		m.stats.RemovalsPerNode[v]++
	}
	return u, true
}

// removeUnused removes w from v's unused list if present.
func (m *Machine) removeUnused(v, w graph.NodeID) {
	base, cnt := m.uoff[v], m.ucnt[v]
	list := m.uarena[base : base+cnt]
	for i, x := range list {
		if x == w {
			list[i] = list[cnt-1]
			m.ucnt[v] = cnt - 1
			if m.stats.RemovalsPerNode != nil {
				m.stats.RemovalsPerNode[v]++
			}
			return
		}
	}
}

// Solve runs the full sequential Angluin–Valiant algorithm on g: it starts
// from a random vertex and returns the Hamiltonian cycle, or the failure of
// the single attempt (the paper's algorithms do not restart; whp analysis
// covers one attempt).
func Solve(g *graph.Graph, src *rng.Source, cfg Config) (*cycle.Cycle, Stats, error) {
	if g.N() < 3 {
		return nil, Stats{}, fmt.Errorf("rotation: need n >= 3, got %d", g.N())
	}
	start := graph.NodeID(src.Intn(g.N()))
	return New(g, start, src, cfg).Run()
}
