package rotation

import (
	"errors"
	"math"
	"testing"

	"dhc/internal/graph"
	"dhc/internal/rng"
)

func TestSolveOnCompleteGraph(t *testing.T) {
	g := graph.Complete(50)
	hc, stats, err := Solve(g, rng.New(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Verify(g); err != nil {
		t.Fatal(err)
	}
	if stats.Steps < int64(g.N()-1) {
		t.Fatalf("closed in %d steps, impossible below n-1", stats.Steps)
	}
}

func TestSolveOnDenseGNP(t *testing.T) {
	n := 300
	p := 6 * math.Log(float64(n)) / float64(n)
	g := graph.GNP(n, p, rng.New(2))
	hc, stats, err := Solve(g, rng.New(3), Config{})
	if err != nil {
		t.Fatalf("solve failed after %d steps: %v", stats.Steps, err)
	}
	if err := hc.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRespectsTheorem2Budget(t *testing.T) {
	// On G(n, p) at the paper's density the process must close within the
	// 7 n ln n budget with overwhelming probability. Run several seeds.
	n := 200
	p := 8 * math.Log(float64(n)) / float64(n)
	budget := DefaultMaxSteps(n)
	for seed := uint64(0); seed < 10; seed++ {
		g := graph.GNP(n, p, rng.New(1000+seed))
		_, stats, err := Solve(g, rng.New(seed), Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if stats.Steps > budget {
			t.Fatalf("seed %d: %d steps exceeds budget %d", seed, stats.Steps, budget)
		}
	}
}

func TestSolveTooSmall(t *testing.T) {
	if _, _, err := Solve(graph.Complete(2), rng.New(1), Config{}); err == nil {
		t.Fatal("n=2 accepted")
	}
}

func TestStepBudgetError(t *testing.T) {
	g := graph.Complete(30)
	m := New(g, 0, rng.New(1), Config{MaxSteps: 3})
	var err error
	for i := 0; i < 10; i++ {
		if _, err = m.Step(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("got %v, want ErrStepBudget", err)
	}
}

func TestOutOfEdgesOnSparseGraph(t *testing.T) {
	// A path graph strands the head quickly: from an endpoint the head
	// walks forward; every edge gets consumed and no cycle exists.
	g := graph.Path(6)
	m := New(g, 0, rng.New(1), Config{})
	var err error
	for {
		if _, err = m.Step(); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrOutOfEdges) {
		t.Fatalf("got %v, want ErrOutOfEdges", err)
	}
}

func TestMachineStepEvents(t *testing.T) {
	g := graph.Complete(20)
	m := New(g, 0, rng.New(7), Config{})
	ext, rot := int64(0), int64(0)
	for {
		ev, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case Extended:
			ext++
		case Rotated:
			rot++
			if ev.J < 1 || ev.J >= ev.H {
				t.Fatalf("rotation event out of range: %+v", ev)
			}
		case Closed:
			if ev.H != g.N() {
				t.Fatalf("closed with H=%d, want %d", ev.H, g.N())
			}
			stats := m.Stats()
			if stats.Extensions != ext || stats.Rotations != rot {
				t.Fatalf("stats mismatch: %+v vs counted %d/%d", stats, ext, rot)
			}
			if ext != int64(g.N()-1) {
				t.Fatalf("%d extensions, want n-1=%d", ext, g.N()-1)
			}
			if !m.Done() {
				t.Fatal("Done() false after close")
			}
			if _, err := m.Step(); err == nil {
				t.Fatal("Step after close succeeded")
			}
			return
		}
		if err := m.Path().VerifyPath(g); err != nil {
			t.Fatalf("path invalid mid-run: %v", err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.Complete(40)
	c1, s1, err1 := New(g, 0, rng.New(5), Config{}).Run()
	c2, s2, err2 := New(g, 0, rng.New(5), Config{}).Run()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if s1.Steps != s2.Steps {
		t.Fatalf("step counts differ: %d vs %d", s1.Steps, s2.Steps)
	}
	o1, o2 := c1.Order(), c2.Order()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("cycles differ across identical seeds")
		}
	}
}

func TestThinningReducesUnusedLists(t *testing.T) {
	n := 400
	p := 0.5
	g := graph.GNP(n, p, rng.New(11))
	full := New(g, 0, rng.New(12), Config{})
	thin := New(g, 0, rng.New(12), Config{ThinningP: p})
	fullTotal, thinTotal := 0, 0
	for v := 0; v < n; v++ {
		fullTotal += full.UnusedCount(graph.NodeID(v))
		thinTotal += thin.UnusedCount(graph.NodeID(v))
	}
	if thinTotal >= fullTotal {
		t.Fatalf("thinned lists (%d) not smaller than full (%d)", thinTotal, fullTotal)
	}
	// q = 1 - sqrt(1-p) ≈ 0.293 for p=0.5, so the retained fraction of
	// entries should be about q/p ≈ 0.586. Allow wide slack.
	frac := float64(thinTotal) / float64(fullTotal)
	if frac < 0.5 || frac > 0.67 {
		t.Fatalf("retained fraction %.3f outside [0.5, 0.67]", frac)
	}
}

func TestThinnedSolveStillSucceeds(t *testing.T) {
	// With the analysis thinning active, the process still closes on a
	// sufficiently dense graph (this is exactly what Theorem 2's coupling
	// argues).
	n := 300
	p := 12 * math.Log(float64(n)) / float64(n)
	g := graph.GNP(n, p, rng.New(21))
	hc, _, err := Solve(g, rng.New(22), Config{ThinningP: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestRemovalsBoundedPerNode(t *testing.T) {
	// Event E2.1 of the analysis: no node should lose more than ~21 ln n
	// unused edges during a successful run (we check a looser 30 ln n).
	n := 500
	p := 8 * math.Log(float64(n)) / float64(n)
	g := graph.GNP(n, p, rng.New(31))
	_, stats, err := Solve(g, rng.New(32), Config{TrackRemovals: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RemovalsPerNode == nil {
		t.Fatal("TrackRemovals did not allocate RemovalsPerNode")
	}
	bound := int64(30 * math.Log(float64(n)))
	for v, r := range stats.RemovalsPerNode {
		if r > bound {
			t.Fatalf("node %d lost %d unused edges, bound %d", v, r, bound)
		}
	}
}

func TestDefaultMaxSteps(t *testing.T) {
	if b := DefaultMaxSteps(1); b != 16 {
		t.Fatalf("tiny budget %d", b)
	}
	n := 1000
	want := int64(math.Ceil(7*float64(n)*math.Log(float64(n)))) + 16
	if b := DefaultMaxSteps(n); b != want {
		t.Fatalf("budget %d, want %d", b, want)
	}
}
