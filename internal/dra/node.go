package dra

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"dhc/internal/arena"
	"dhc/internal/congest"
	"dhc/internal/cycle"
	"dhc/internal/graph"
	"dhc/internal/metrics"
	"dhc/internal/rotation"
	"dhc/internal/wire"
)

// ErrFailed is returned by Run when the rotation process fails (out of
// unused edges or step budget exceeded) — the low-probability events E1/E2
// of Theorem 2.
var ErrFailed = errors.New("dra: rotation process failed")

// Node runs a standalone DRA instance over the whole graph: node 0 is the
// initial head (the paper initializes "any one node"), the scope is every
// vertex, and the instance ends with a success or failure broadcast.
type Node struct {
	state *State
	opts  NodeOptions
}

// NodeOptions configures the standalone instance.
type NodeOptions struct {
	// BroadcastRounds bounds the graph diameter for rotation consistency
	// waits. Zero selects n (always safe for a connected graph).
	BroadcastRounds int64
	// MaxSteps overrides the Theorem 2 budget (0 = default).
	MaxSteps int64
}

var _ congest.Node = (*Node)(nil)

// Init implements congest.Node.
func (d *Node) Init(ctx *congest.Context) {
	b := d.opts.BroadcastRounds
	if b == 0 {
		b = int64(ctx.N())
	}
	p := Params{
		ScopeSize:       ctx.N(),
		IsInitialHead:   ctx.ID() == 0,
		ScopeNeighbors:  ctx.Neighbors(),
		BroadcastRounds: b,
		StartRound:      1,
		Tag:             1,
		MaxSteps:        d.opts.MaxSteps,
	}
	if d.state == nil {
		d.state = NewState(ctx, p)
	} else {
		// Session reuse: the retained state machine from a prior trial is
		// reinitialized in place, keeping its allocations.
		d.state.Reset(ctx, p)
	}
	d.armWake(ctx)
}

// armWake declares the event-driven wake-up discipline: DRA nodes are
// message-driven except for the head, which must act at its own initiative
// once its consistency wait elapses.
func (d *Node) armWake(ctx *congest.Context) {
	ctx.WakeAtOrSleep(d.state.NextWake(ctx.Round()))
}

// Round implements congest.Node.
func (d *Node) Round(ctx *congest.Context, inbox []congest.Envelope) {
	d.state.Tick(ctx, inbox)
	if d.state.Status() != Running {
		// Keep forwarding the terminal broadcast for one round; the
		// scoped broadcaster already forwarded on receipt, so halt now.
		ctx.Halt()
		return
	}
	d.armWake(ctx)
}

// Result is the outcome of a standalone run.
type Result struct {
	Cycle    *cycle.Cycle
	Counters *metrics.Counters
	Steps    int64
}

// Run executes DRA on g with the given seed and returns the Hamiltonian
// cycle assembled from the per-node successor pointers. The cycle is
// verified against g before returning.
func Run(g *graph.Graph, seed uint64, opts NodeOptions, netOpts congest.Options) (*Result, error) {
	return NewSession().Run(context.Background(), g, seed, opts, netOpts)
}

// Session is a reusable standalone-DRA runner: the node programs (with their
// per-node state machines), the simulator Network, and its run arena survive
// across Run calls, so repeated trials on same-sized graphs allocate only
// what a single trial's execution needs. Not safe for concurrent use.
type Session struct {
	progs []*Node
	nodes []congest.Node
	net   congest.Runner
}

// NewSession returns an empty session; the first Run sizes it.
func NewSession() *Session { return &Session{} }

// SetRunner replaces the session's executor — the seam the distributed
// engine injects its shard cluster through. A nil Runner restores the
// default in-process Network on the next Run.
func (sess *Session) SetRunner(r congest.Runner) { sess.net = r }

// Run executes one DRA trial, honoring ctx at the simulator's amortized
// cancellation checkpoint. A cancelled run returns ctx's error and leaves
// the session reusable.
func (sess *Session) Run(ctx context.Context, g *graph.Graph, seed uint64, opts NodeOptions, netOpts congest.Options) (*Result, error) {
	if g.N() < 3 {
		return nil, fmt.Errorf("dra: need n >= 3, got %d", g.N())
	}
	if opts.BroadcastRounds == 0 {
		// 2*ecc(v) >= diameter for any v, so one BFS yields a safe
		// consistency-wait bound far below the trivial n.
		opts.BroadcastRounds = int64(2*g.BFS(0).Ecc + 1)
	}
	if netOpts.MaxRounds == 0 {
		maxSteps := opts.MaxSteps
		if maxSteps == 0 {
			maxSteps = rotation.DefaultMaxSteps(g.N())
		}
		// Every step costs at most BroadcastRounds+2 rounds, plus slack
		// for the terminal broadcast.
		netOpts.MaxRounds = maxSteps*(opts.BroadcastRounds+3) + 1024
	}
	sess.bind(g, opts)
	if err := sess.resetNet(g, netOpts); err != nil {
		return nil, err
	}
	counters, err := sess.net.RunContext(ctx, seed)
	if err != nil {
		return nil, fmt.Errorf("dra: %w", err)
	}
	states := make([]*State, g.N())
	for i, p := range sess.progs {
		states[i] = p.state
	}
	hc, steps, err := ExtractCycle(g, states)
	if err != nil {
		return nil, err
	}
	return &Result{Cycle: hc, Counters: counters, Steps: steps}, nil
}

// bind sizes the program slices to g and refreshes per-run options, keeping
// prior Node values (and their retained state machines) for reuse.
func (sess *Session) bind(g *graph.Graph, opts NodeOptions) {
	n := g.N()
	sess.progs = arena.Resize(sess.progs, n)
	sess.nodes = arena.Resize(sess.nodes, n)
	for i := 0; i < n; i++ {
		if sess.progs[i] == nil {
			sess.progs[i] = &Node{}
		}
		sess.progs[i].opts = opts
		sess.nodes[i] = sess.progs[i]
	}
}

// resetNet rebinds the session's simulator; Reset handles first bind and
// rebind alike (NewNetwork is just a Reset on a zero Network).
func (sess *Session) resetNet(g *graph.Graph, netOpts congest.Options) error {
	if sess.net == nil {
		sess.net = new(congest.Network)
	}
	return sess.net.Reset(g, sess.nodes, netOpts)
}

// NewNode constructs a standalone program for one vertex — the reconstruction
// entry point worker processes use to rebuild a session's programs from a
// ProgramSpec. opts must carry a resolved BroadcastRounds (the driver session
// computes it from an eccentricity BFS before binding).
func NewNode(opts NodeOptions) *Node { return &Node{opts: opts} }

var _ congest.PortableProgram = (*Node)(nil)

// DistSpec implements congest.PortableProgram.
func (d *Node) DistSpec() congest.ProgramSpec {
	return congest.ProgramSpec{Algo: "dra", B: d.opts.BroadcastRounds, MaxSteps: d.opts.MaxSteps}
}

// AppendFinal implements congest.PortableProgram: status, step count, and the
// two cycle pointers — exactly what ExtractCycle consumes.
func (d *Node) AppendFinal(dst []byte) []byte {
	st := d.state
	if st == nil {
		st = &State{}
	}
	dst = append(dst, byte(st.Status()))
	dst = binary.BigEndian.AppendUint64(dst, uint64(st.Steps()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(st.Succ()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(st.Pred()))
	return dst
}

// RestoreFinal implements congest.PortableProgram.
func (d *Node) RestoreFinal(src []byte) ([]byte, error) {
	if len(src) < 17 {
		return nil, fmt.Errorf("dra: truncated final state (%d bytes)", len(src))
	}
	status := Status(src[0])
	steps := int64(binary.BigEndian.Uint64(src[1:]))
	succ := graph.NodeID(binary.BigEndian.Uint32(src[9:]))
	pred := graph.NodeID(binary.BigEndian.Uint32(src[13:]))
	d.state = NewFinalState(status, steps, succ, pred)
	return src[17:], nil
}

// ExtractCycle reconstructs and verifies the Hamiltonian cycle from per-node
// DRA states (each node knows its cycle successor, which is the paper's
// output condition: every node knows its two incident HC edges).
func ExtractCycle(g *graph.Graph, states []*State) (*cycle.Cycle, int64, error) {
	var steps int64
	succ := make(map[graph.NodeID]graph.NodeID, len(states))
	for v, st := range states {
		if st.Status() != Succeeded {
			return nil, st.Steps(), fmt.Errorf("%w: node %d status %d after %d steps",
				ErrFailed, v, st.Status(), st.Steps())
		}
		if st.Steps() > steps {
			steps = st.Steps()
		}
		succ[graph.NodeID(v)] = st.Succ()
	}
	hc, err := cycle.FromSuccessors(succ, 0)
	if err != nil {
		return nil, steps, fmt.Errorf("dra: bad successor structure: %w", err)
	}
	if err := hc.Verify(g); err != nil {
		return nil, steps, fmt.Errorf("dra: extracted cycle invalid: %w", err)
	}
	return hc, steps, nil
}

// wireCheck documents that all DRA messages fit the CONGEST budget; the
// compiler keeps this in sync with wire.Msg arity limits.
var _ = wire.Msg(wire.KindRotation, 0, 0, 0, 0)
