// Package dra implements the Distributed Rotation Algorithm (paper
// Algorithm 1) in the CONGEST model: the distributed form of the
// Angluin–Valiant rotation process in which the current path head picks a
// random unused incident edge, sends progress(pos) along it, and the receiver
// either extends the path, closes the cycle, or triggers a rotation that is
// renumbered by a scope-wide broadcast of rotation(h, j).
//
// The State type is a per-node state machine embedded both by the standalone
// Node in this package and by the DHC1/DHC2 phase machines in internal/core,
// which run one DRA instance per partition. A "scope" is the vertex subset
// the instance runs on (the whole graph for standalone use, one color class
// for DHC).
//
// Timing: extensions cost one round. A rotation is followed by a
// consistency wait of BroadcastRounds (an upper bound on the scope diameter)
// so that every node has applied the renumbering before the new head acts —
// the paper charges the same O(D) per step in its round bounds (proof of
// Theorem 1).
package dra

import (
	"fmt"

	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/rotation"
	"dhc/internal/wire"
)

// Status is the lifecycle of one DRA instance at one node.
type Status uint8

const (
	// Running means the instance has not yet terminated.
	Running Status = iota + 1
	// Succeeded means the success broadcast arrived: the scope has a
	// Hamiltonian cycle and this node knows its position and neighbors.
	Succeeded
	// Failed means the failure broadcast arrived (head ran out of unused
	// edges or exceeded the step budget).
	Failed
)

// Params configures one node's participation in a DRA instance.
type Params struct {
	// ScopeSize is the number of vertices in this instance's scope (the
	// |V| of Algorithm 1's success test).
	ScopeSize int
	// IsInitialHead designates the single starting node.
	IsInitialHead bool
	// ScopeNeighbors lists this node's in-scope neighbors in neighbor-list
	// order; the slice is retained (read-only) for flood forwarding, so one
	// precomputed list serves every session.
	ScopeNeighbors []graph.NodeID
	// BroadcastRounds is the consistency wait after a rotation; it must be
	// an upper bound on the scope diameter.
	BroadcastRounds int64
	// StartRound is the first round the initial head may act.
	StartRound int64
	// Tag distinguishes broadcast sessions of different DRA instances that
	// could share nodes over time (DHC phase 1 vs phase 2).
	Tag int32
	// MaxSteps overrides the Theorem 2 step budget; 0 selects
	// rotation.DefaultMaxSteps(ScopeSize).
	MaxSteps int64
}

// State is the per-node DRA state machine.
//
// Broadcast handling uses O(1) control state instead of a per-payload
// dedup set: rotation broadcasts carry a strictly increasing step number and
// never overlap in flight (the new head waits BroadcastRounds before acting),
// so "new payload" is simply "step number above my watermark". This is what
// keeps per-node memory at O(deg) words — the fully-distributed o(n) claim
// of the paper.
type State struct {
	p Params

	cycindex int32        // 1-based path position; 0 = not on path
	pred     graph.NodeID // cycle predecessor id, -1 unknown
	succ     graph.NodeID // cycle successor id, -1 unknown
	isHead   bool
	actAfter int64        // head may act in rounds >= actAfter
	lastSent graph.NodeID // the neighbor last sent progress, -1 none

	lastRotStep   int64 // watermark of rotation broadcasts forwarded
	terminalSeen  bool  // success/failure flood already forwarded
	terminalRound int64 // round stamped into the terminal flood

	scope  []graph.NodeID // in-scope neighbors (shared, read-only)
	unused []graph.NodeID
	steps  int64
	status Status
}

// NewState initializes the machine for one node. ctx is the Init (or current
// round) context; the unused list is the node's in-scope neighbors.
func NewState(ctx *congest.Context, p Params) *State {
	s := &State{}
	s.Reset(ctx, p)
	return s
}

// NewFinalState builds a terminal-only State carrying exactly the fields
// result extraction reads (status, step count, cycle pointers). The
// distributed engine uses it to replay a worker process's outcome into the
// driver's program structs; the returned State must not Tick.
func NewFinalState(status Status, steps int64, succ, pred graph.NodeID) *State {
	return &State{status: status, steps: steps, succ: succ, pred: pred}
}

// Reset reinitializes the machine in place for a fresh session, reusing the
// unused-list allocation — the restart and solver-session reuse path that
// keeps repeated instances from reallocating per-node state.
func (s *State) Reset(ctx *congest.Context, p Params) {
	if p.MaxSteps == 0 {
		p.MaxSteps = rotation.DefaultMaxSteps(p.ScopeSize)
	}
	unused := s.unused[:0]
	*s = State{
		p:        p,
		pred:     -1,
		succ:     -1,
		lastSent: -1,
		status:   Running,
		scope:    p.ScopeNeighbors,
	}
	s.unused = append(unused, s.scope...)
	if p.IsInitialHead {
		s.cycindex = 1
		s.isHead = true
		s.actAfter = p.StartRound
	}
}

// Status returns the node's view of the instance lifecycle.
func (s *State) Status() Status { return s.status }

// CycleIndex returns the node's 1-based position on the (sub)cycle, 0 if the
// node never joined a path.
func (s *State) CycleIndex() int32 { return s.cycindex }

// Succ returns the cycle successor id, -1 if unknown.
func (s *State) Succ() graph.NodeID { return s.succ }

// Pred returns the cycle predecessor id, -1 if unknown.
func (s *State) Pred() graph.NodeID { return s.pred }

// Steps returns this node's view of the instance step count.
func (s *State) Steps() int64 { return s.steps }

// NextWake returns the next round this node must be invoked even if no
// message arrives — the head's action round — or 0 when the node is purely
// message-driven (non-heads only react to progress messages and floods, and
// terminal states never act again). Embedders call it after Tick to declare
// the wake-up discipline of the event-driven simulator; a head's actAfter
// always lies in the future at the end of a Tick, because acting clears
// headship and a rotation's consistency wait outlasts the flood that
// announces it.
func (s *State) NextWake(now int64) int64 {
	if s.status != Running || !s.isHead {
		return 0
	}
	if s.actAfter > now {
		return s.actAfter
	}
	return now + 1
}

// TerminalRound returns the round at which the terminal (success or failure)
// flood was originated; every node of the scope sees the same value, so
// restart logic can agree on a common restart round. Zero until terminal.
func (s *State) TerminalRound() int64 { return s.terminalRound }

// MemoryWords estimates the retained state in words for metering: the unused
// list plus O(1) scalars.
func (s *State) MemoryWords() int64 {
	return int64(len(s.unused)) + 12
}

// Tick advances the machine by one round. The embedding congest.Node must
// call it exactly once per round while the instance runs, passing the full
// inbox (non-DRA messages are ignored; DRA messages of other scopes cannot
// arrive because all traffic stays inside the scope).
func (s *State) Tick(ctx *congest.Context, inbox []congest.Envelope) {
	if s.status != Running {
		return
	}
	s.absorbBroadcasts(ctx, inbox)
	s.absorbProgress(ctx, inbox)
	if s.status == Running && s.isHead && ctx.Round() >= s.actAfter {
		s.act(ctx)
	}
	ctx.ObserveMemory(s.MemoryWords())
}

// absorbBroadcasts handles rotation and success/failure floods with O(1)
// dedup state (step watermark / terminal flag).
func (s *State) absorbBroadcasts(ctx *congest.Context, inbox []congest.Envelope) {
	for _, env := range inbox {
		switch env.Msg.Kind {
		case wire.KindRotation:
			step := int64(env.Msg.Arg(2))
			if step <= s.lastRotStep {
				continue // already applied and forwarded
			}
			s.lastRotStep = step
			s.forwardScope(ctx, env.Msg, env.From)
			s.applyRotation(env.Msg.Arg(0), env.Msg.Arg(1), step, int64(env.Msg.Arg(3)))
		case wire.KindSuccess:
			if env.Msg.Arg(1) != s.p.Tag || s.terminalSeen {
				continue
			}
			s.terminalSeen = true
			s.terminalRound = int64(env.Msg.Arg(3))
			s.forwardScope(ctx, env.Msg, env.From)
			if env.Msg.Arg(0) == 1 {
				s.status = Succeeded
			} else {
				s.status = Failed
			}
		}
	}
}

// originate starts a scope flood of m from this node.
func (s *State) originate(ctx *congest.Context, m wire.Message) {
	if m.Kind == wire.KindRotation {
		s.lastRotStep = int64(m.Arg(2))
	}
	if m.Kind == wire.KindSuccess {
		s.terminalSeen = true
	}
	s.forwardScope(ctx, m, -1)
}

func (s *State) forwardScope(ctx *congest.Context, m wire.Message, except graph.NodeID) {
	for _, nb := range s.scope {
		if nb == except {
			continue
		}
		ctx.Send(nb, m)
	}
}

// applyRotation applies the renumbering i <- h + j + 1 - i for positions in
// (j, h] (Algorithm 1, OnReceive rotation) and maintains the cycle-neighbor
// pointers: mid-segment nodes swap pred/succ; the old head (position h)
// additionally learns its new predecessor (the rotation point it messaged);
// the node renumbered to h becomes the new head.
func (s *State) applyRotation(h, j int32, step, initRound int64) {
	if step > s.steps {
		s.steps = step
	}
	if !(j < s.cycindex && s.cycindex <= h) {
		return
	}
	old := s.cycindex
	s.cycindex = h + j + 1 - old
	oldPred, oldSucc := s.pred, s.succ
	s.pred, s.succ = oldSucc, oldPred
	if old == h {
		// Old head: new path neighbor on the tail side is the rotation
		// point it sent progress to.
		s.pred = s.lastSent
		s.succ = oldPred
	}
	if s.cycindex == h {
		s.isHead = true
		s.actAfter = initRound + s.p.BroadcastRounds + 1
	}
}

// absorbProgress handles progress(pos, steps) messages addressed directly to
// this node (Algorithm 1, OnReceive progress).
func (s *State) absorbProgress(ctx *congest.Context, inbox []congest.Envelope) {
	for _, env := range inbox {
		if env.Msg.Kind != wire.KindProgress || s.status != Running {
			continue
		}
		pos := env.Msg.Arg(0)
		stepsBefore := int64(env.Msg.Arg(1))
		s.removeUnused(env.From)
		ctx.AddWork(1)
		switch {
		case pos == int32(s.p.ScopeSize) && s.cycindex == 1:
			// The head reached the tail with a spanning path: success.
			s.pred = env.From
			s.steps = stepsBefore + 1
			s.status = Succeeded
			s.terminalRound = ctx.Round()
			s.originate(ctx, wire.Msg(wire.KindSuccess, 1, s.p.Tag,
				int32(s.steps), int32(ctx.Round())))
		case s.cycindex == 0:
			// First visit: extend; this node becomes head immediately.
			s.cycindex = pos + 1
			s.pred = env.From
			s.steps = stepsBefore + 1
			s.isHead = true
			s.actAfter = ctx.Round() // may act this same round
		default:
			// Rotation at j = our position; broadcast the renumbering.
			s.steps = stepsBefore + 1
			s.succ = env.From
			s.originate(ctx, wire.Msg(wire.KindRotation,
				pos, s.cycindex, int32(s.steps), int32(ctx.Round())))
			// Apply locally for everyone else via applyRotation's range
			// check (our own index j is outside (j, h], so only the
			// pointer patch above matters).
		}
	}
}

// act performs the head's step: pick a random unused edge and send progress.
func (s *State) act(ctx *congest.Context) {
	if s.steps >= s.p.MaxSteps {
		s.fail(ctx)
		return
	}
	u, ok := s.popRandomUnused(ctx)
	if !ok {
		s.fail(ctx)
		return
	}
	// Optimistically record u as successor; a rotation overwrites this via
	// the old-head patch in applyRotation.
	s.succ = u
	s.lastSent = u
	s.isHead = false // exactly one node becomes head as a consequence
	ctx.Send(u, wire.Msg(wire.KindProgress, s.cycindex, int32(s.steps)))
	ctx.AddWork(1)
}

func (s *State) fail(ctx *congest.Context) {
	s.status = Failed
	s.terminalRound = ctx.Round()
	s.originate(ctx, wire.Msg(wire.KindSuccess, 0, s.p.Tag,
		int32(s.steps), int32(ctx.Round())))
}

func (s *State) popRandomUnused(ctx *congest.Context) (graph.NodeID, bool) {
	if len(s.unused) == 0 {
		return 0, false
	}
	i := ctx.Rand().Intn(len(s.unused))
	u := s.unused[i]
	s.unused[i] = s.unused[len(s.unused)-1]
	s.unused = s.unused[:len(s.unused)-1]
	return u, true
}

func (s *State) removeUnused(v graph.NodeID) {
	for i, x := range s.unused {
		if x == v {
			s.unused[i] = s.unused[len(s.unused)-1]
			s.unused = s.unused[:len(s.unused)-1]
			return
		}
	}
}

// String aids debugging.
func (s *State) String() string {
	return fmt.Sprintf("dra{idx=%d head=%v pred=%d succ=%d steps=%d status=%d}",
		s.cycindex, s.isHead, s.pred, s.succ, s.steps, s.status)
}
