package dra

import (
	"math"
	"testing"

	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/rotation"
)

func TestRunOnCompleteGraph(t *testing.T) {
	g := graph.Complete(24)
	res, err := Run(g, 1, NodeOptions{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycle.Len() != g.N() {
		t.Fatalf("cycle length %d", res.Cycle.Len())
	}
	if res.Counters.Rounds == 0 || res.Steps < int64(g.N()-1) {
		t.Fatalf("implausible metrics: rounds=%d steps=%d", res.Counters.Rounds, res.Steps)
	}
}

func TestRunOnThresholdGNP(t *testing.T) {
	n := 150
	p := 8 * math.Log(float64(n)) / float64(n)
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.GNP(n, p, rng.New(100+seed))
		res, err := Run(g, seed, NodeOptions{}, congest.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Run verifies internally; double-check here for the test's sake.
		if err := res.Cycle.Verify(g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestStepBudgetMatchesTheorem2(t *testing.T) {
	n := 120
	p := 10 * math.Log(float64(n)) / float64(n)
	g := graph.GNP(n, p, rng.New(7))
	res, err := Run(g, 3, NodeOptions{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	budget := rotation.DefaultMaxSteps(n)
	if res.Steps > budget {
		t.Fatalf("steps %d exceed Theorem 2 budget %d", res.Steps, budget)
	}
}

func TestRunFailsOnSparseGraph(t *testing.T) {
	// A path graph has no HC; the head strands and the failure broadcast
	// must terminate every node.
	g := graph.Path(12)
	if _, err := Run(g, 1, NodeOptions{}, congest.Options{}); err == nil {
		t.Fatal("path graph run succeeded")
	}
}

func TestRunFailsOnStepBudget(t *testing.T) {
	g := graph.Complete(20)
	if _, err := Run(g, 1, NodeOptions{MaxSteps: 2}, congest.Options{}); err == nil {
		t.Fatal("tiny step budget run succeeded")
	}
}

func TestRunRejectsTinyGraph(t *testing.T) {
	if _, err := Run(graph.Complete(2), 1, NodeOptions{}, congest.Options{}); err == nil {
		t.Fatal("n=2 accepted")
	}
}

func TestDeterministicAcrossExecutors(t *testing.T) {
	n := 100
	p := 10 * math.Log(float64(n)) / float64(n)
	g := graph.GNP(n, p, rng.New(9))
	seq, err := Run(g, 5, NodeOptions{}, congest.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(g, 5, NodeOptions{}, congest.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	so, po := seq.Cycle.Order(), par.Cycle.Order()
	for i := range so {
		if so[i] != po[i] {
			t.Fatal("cycles differ between sequential and parallel executors")
		}
	}
	if seq.Counters.Rounds != par.Counters.Rounds ||
		seq.Counters.Messages != par.Counters.Messages {
		t.Fatalf("metrics differ: seq=%v par=%v", seq.Counters, par.Counters)
	}
}

func TestCongestCompliance(t *testing.T) {
	// The default network options enforce O(log n) bits per edge per round;
	// a full run passing means every DRA message respected the budget.
	n := 80
	p := 12 * math.Log(float64(n)) / float64(n)
	g := graph.GNP(n, p, rng.New(13))
	res, err := Run(g, 2, NodeOptions{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	codec := wireCodecBits(n)
	if res.Counters.MaxMessageBits > 8*codec {
		t.Fatalf("message of %d bits exceeds 8*log(n)=%d", res.Counters.MaxMessageBits, 8*codec)
	}
}

func wireCodecBits(n int) int64 {
	bits := int64(1)
	for v := n - 1; v > 1; v >>= 1 {
		bits++
	}
	return bits
}

func TestMemoryIsSublinear(t *testing.T) {
	// Fully-distributed claim: each node's memory is O(np) = O(polylog)
	// words at threshold density, far below n.
	n := 200
	p := 8 * math.Log(float64(n)) / float64(n)
	g := graph.GNP(n, p, rng.New(17))
	res, err := Run(g, 4, NodeOptions{}, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	maxMem := res.Counters.MemoryDistribution().Max
	if maxMem == 0 {
		t.Fatal("memory not metered")
	}
	if maxMem > int64(n)/2 {
		t.Fatalf("per-node memory %d words is not o(n) for n=%d", maxMem, n)
	}
}

func TestExtractCycleRejectsIncompleteRun(t *testing.T) {
	g := graph.Complete(5)
	states := make([]*State, 5)
	for i := range states {
		states[i] = &State{status: Running}
	}
	if _, _, err := ExtractCycle(g, states); err == nil {
		t.Fatal("running states accepted")
	}
}

// TestPointerConsistency cross-checks pred/succ agreement: succ(pred(v)) == v
// for every node after a successful run.
func TestPointerConsistency(t *testing.T) {
	g := graph.Complete(30)
	nodes := make([]congest.Node, g.N())
	progs := make([]*Node, g.N())
	for i := range nodes {
		progs[i] = &Node{}
		nodes[i] = progs[i]
	}
	net, err := congest.NewNetwork(g, nodes, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(11); err != nil {
		t.Fatal(err)
	}
	for v, p := range progs {
		succ := p.state.Succ()
		if succ < 0 {
			t.Fatalf("node %d has no successor", v)
		}
		if progs[succ].state.Pred() != graph.NodeID(v) {
			t.Fatalf("pred(succ(%d)) = %d, want %d", v, progs[succ].state.Pred(), v)
		}
	}
}
