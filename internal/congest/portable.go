package congest

// ProgramSpec is the transport-portable description of a node program: enough
// for a worker process that shares no memory with the driver to reconstruct
// an equivalent program for any vertex. Fields beyond Algo are interpreted
// per algorithm (B is DRA's broadcast bound and DHC2's settling bound;
// NumColors is the partition count; MaxSteps the rotation budget).
type ProgramSpec struct {
	Algo      string
	NumColors int32
	B         int64
	MaxSteps  int64
}

// PortableProgram is implemented by node programs that can run in a separate
// OS process: the program describes its configuration (DistSpec, shipped to
// the worker at startup) and its terminal state (AppendFinal, shipped back
// after the run and replayed into the driver's own program structs via
// RestoreFinal, so normal result extraction works unchanged). Programs whose
// extraction needs more than their serialized terminal state — DHC1's
// hypernode bookkeeping, Upcast's root-held solution — do not implement this
// and are restricted to shared-memory shard workers.
type PortableProgram interface {
	Node
	// DistSpec returns the program's reconstruction recipe.
	DistSpec() ProgramSpec
	// AppendFinal appends the program's terminal state to dst.
	AppendFinal(dst []byte) []byte
	// RestoreFinal consumes this program's terminal state from src (as
	// written by AppendFinal) and returns the remaining bytes.
	RestoreFinal(src []byte) ([]byte, error)
}
