package congest

import (
	"sync"

	"dhc/internal/metrics"
)

// executor advances all live nodes by one round, either sequentially or with
// a worker pool. Both produce identical executions: nodes use private RNG
// streams, outboxes are concatenated in node-id order, and metric merging is
// order-insensitive. Contexts and the concatenation buffer live in runState
// and are reused round over round, so a round's allocations are bounded by
// the messages it delivers, not by n.
type executor struct {
	net      *Network
	state    *runState
	counters *metrics.Counters
}

func newExecutor(net *Network, state *runState, counters *metrics.Counters) *executor {
	return &executor{net: net, state: state, counters: counters}
}

// step runs round `round` (or the Init phase when isInit). It invokes every
// live node, merges metrics, and delivers outboxes.
func (e *executor) step(round int64, isInit bool) error {
	n := e.net.g.N()

	invoke := func(v int) {
		if e.state.halted[v] {
			return
		}
		ctx := e.state.ctxs[v]
		ctx.reset(round)
		if isInit {
			e.net.nodes[v].Init(ctx)
		} else {
			inbox := e.state.inboxes[v]
			e.state.inboxes[v] = nil
			e.net.nodes[v].Round(ctx, inbox)
		}
	}

	if e.net.opts.Workers <= 1 {
		for v := 0; v < n; v++ {
			invoke(v)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < e.net.opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := range work {
					invoke(v)
				}
			}()
		}
		for v := 0; v < n; v++ {
			work <- v
		}
		close(work)
		wg.Wait()
	}

	// Merge results in node-id order (single-threaded) so outbox
	// concatenation and error selection are deterministic. halted[v] is
	// still the pre-round value when node v is reached (it only flips
	// below, at v itself), so it identifies exactly the skipped nodes.
	out := e.state.out[:0]
	for v := 0; v < n; v++ {
		if e.state.halted[v] {
			continue
		}
		ctx := e.state.ctxs[v]
		if ctx.err != nil {
			return ctx.err
		}
		if ctx.halted {
			e.state.halted[v] = true
		}
		if ctx.memWords > 0 {
			e.counters.ObserveMemory(v, ctx.memWords)
		}
		if ctx.workOps > 0 {
			e.counters.AddWork(v, ctx.workOps)
		}
		out = append(out, ctx.outbox...)
	}
	e.state.out = out
	return e.net.deliver(round, out, e.state, e.counters)
}
