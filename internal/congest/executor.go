package congest

import (
	"sync"

	"dhc/internal/graph"
	"dhc/internal/metrics"
)

// executor advances all live nodes by one round, either sequentially or with
// a worker pool. Both produce identical executions: nodes use private RNG
// streams, outboxes are concatenated in node-id order, and metric merging is
// order-insensitive.
type executor struct {
	net      *Network
	state    *runState
	counters *metrics.Counters
}

func newExecutor(net *Network, state *runState, counters *metrics.Counters) *executor {
	return &executor{net: net, state: state, counters: counters}
}

// step runs round `round` (or the Init phase when isInit). It invokes every
// live node, merges metrics, and delivers outboxes.
func (e *executor) step(round int64, isInit bool) error {
	n := e.net.g.N()
	ctxs := make([]*Context, n)

	invoke := func(v int) {
		if e.state.halted[v] {
			return
		}
		ctx := &Context{
			net:   e.net,
			id:    graph.NodeID(v),
			round: round,
			rng:   e.state.rngs[v],
		}
		if isInit {
			e.net.nodes[v].Init(ctx)
		} else {
			inbox := e.state.inboxes[v]
			e.state.inboxes[v] = nil
			e.net.nodes[v].Round(ctx, inbox)
		}
		ctxs[v] = ctx
	}

	if e.net.opts.Workers <= 1 {
		for v := 0; v < n; v++ {
			invoke(v)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < e.net.opts.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := range work {
					invoke(v)
				}
			}()
		}
		for v := 0; v < n; v++ {
			work <- v
		}
		close(work)
		wg.Wait()
	}

	// Merge results in node-id order (single-threaded) so outbox
	// concatenation and error selection are deterministic.
	var out []routedMsg
	for v := 0; v < n; v++ {
		ctx := ctxs[v]
		if ctx == nil {
			continue
		}
		if ctx.err != nil {
			return ctx.err
		}
		if ctx.halted {
			e.state.halted[v] = true
		}
		if ctx.memWords > 0 {
			e.counters.ObserveMemory(v, ctx.memWords)
		}
		if ctx.workOps > 0 {
			e.counters.AddWork(v, ctx.workOps)
		}
		out = append(out, ctx.outbox...)
	}
	return e.net.deliver(round, out, e.state, e.counters)
}
