package congest

import (
	"slices"
	"sync"

	"dhc/internal/metrics"
)

// executor advances the active set of nodes by one round, either
// sequentially or with a worker pool. Both produce identical executions:
// the active set is assembled single-threaded before invocation, nodes use
// private RNG streams, outboxes are concatenated in node-id order, and
// metric merging is order-insensitive. Contexts, inbox buckets and the
// concatenation buffer live in runState and are reused round over round, so
// a round's cost is O(active nodes + delivered messages).
type executor struct {
	net      *Network
	state    *runState
	counters *metrics.Counters
}

func newExecutor(net *Network, state *runState, counters *metrics.Counters) *executor {
	return &executor{net: net, state: state, counters: counters}
}

// buildActive assembles this round's active set, ascending by node id:
// every live node on the Init round or in dense mode; otherwise the nodes
// with deliveries, due wake-ups, and (while any exist) legacy-dense nodes.
func (e *executor) buildActive(round int64, isInit bool) []int32 {
	s := e.state
	active := s.active[:0]
	if isInit || e.net.opts.DenseSweep || s.sched.legacyLive > 0 {
		// Dense sweep (or mixed legacy network): every live node runs. Due
		// wake entries are still consumed so the heap stays bounded.
		for v := 0; v < len(s.halted); v++ {
			if !s.halted[v] {
				active = append(active, int32(v))
			}
		}
		if !isInit && !e.net.opts.DenseSweep {
			due := s.sched.popDue(round, s.halted, s.inActive, s.dueScratch[:0])
			for _, v := range due {
				s.inActive[v] = false
			}
			s.dueScratch = due[:0]
		}
		s.msgActive = s.msgActive[:0]
		s.active = active
		return active
	}
	for _, v := range s.msgActive {
		// Receivers are recorded at delivery time, after all halts of the
		// sending round were merged, so they are live and unique.
		s.inActive[v] = true
		active = append(active, v)
	}
	s.msgActive = s.msgActive[:0]
	active = s.sched.popDue(round, s.halted, s.inActive, active)
	for _, v := range active {
		s.inActive[v] = false
	}
	// Sort ascending so outbox concatenation (and thus delivery order and
	// inbox sender order) is deterministic and sender-grouped. slices.Sort
	// does not allocate, keeping the steady-state round allocation-free.
	slices.Sort(active)
	s.active = active
	return active
}

// invoke runs one node's Init or Round call; safe to call concurrently for
// distinct v (it touches only per-node state).
func (e *executor) invoke(v int32, round int64, isInit bool) {
	s := e.state
	if s.halted[v] {
		return // dense mode lists only live nodes; guard stays for safety
	}
	ctx := s.ctxs[v]
	ctx.reset(round)
	if isInit {
		e.net.nodes[v].Init(ctx)
		return
	}
	inbox := s.inboxes[v]
	e.net.nodes[v].Round(ctx, inbox)
	// Recycle the bucket: the inbox is documented as valid only during the
	// Round call, so next round's deliveries may reuse the backing array.
	s.inboxes[v] = inbox[:0]
}

// step runs round `round` (or the Init phase when isInit). It invokes the
// active nodes, merges metrics and wake requests, and delivers outboxes.
func (e *executor) step(round int64, isInit bool) error {
	s := e.state
	active := e.buildActive(round, isInit)

	if e.net.opts.Workers <= 1 || len(active) < 2 {
		for _, v := range active {
			e.invoke(v, round, isInit)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int32)
		workers := e.net.opts.Workers
		if workers > len(active) {
			workers = len(active)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for v := range work {
					e.invoke(v, round, isInit)
				}
			}()
		}
		for _, v := range active {
			work <- v
		}
		close(work)
		wg.Wait()
	}

	// Merge results in node-id order (single-threaded) so outbox
	// concatenation and error selection are deterministic. Every listed
	// node was invoked this round, so its context fields are fresh.
	out := s.out[:0]
	eventDriven := !e.net.opts.DenseSweep
	for _, v := range active {
		ctx := s.ctxs[v]
		if ctx.err != nil {
			return ctx.err
		}
		e.counters.Invocations++
		if ctx.halted {
			s.halted[v] = true
			s.live--
			s.sched.noteHalt(v)
		} else if eventDriven {
			s.sched.noteInvocation(v, round, ctx)
		}
		if ctx.memWords > 0 {
			e.counters.ObserveMemory(int(v), ctx.memWords)
		}
		if ctx.workOps > 0 {
			e.counters.AddWork(int(v), ctx.workOps)
		}
		out = append(out, ctx.outbox...)
	}
	s.out = out
	return e.net.deliver(round, out, s, e.counters)
}
