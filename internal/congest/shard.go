package congest

import (
	"fmt"
	"slices"

	"dhc/internal/graph"
	"dhc/internal/metrics"
	"dhc/internal/rng"
	"dhc/internal/wire"
)

// Routed is one routed message with explicit endpoints — the unit the
// distributed engine moves between shards. It mirrors the engine-internal
// routedMsg so transports can carry outbox concatenations without reaching
// into the package.
type Routed struct {
	From, To graph.NodeID
	Msg      wire.Message
}

// StepReport is a shard's post-step summary, the coordinator's input for
// global liveness and scheduling decisions. Halts are step-time-only and
// terminal, and Deliver never touches the wake schedule, so everything the
// coordinator needs to schedule the next round — including the fields that
// logically describe the (not yet performed) delivery of this round's
// messages — is already final when Step returns.
type StepReport struct {
	// Live is the shard's non-halted node count after the step.
	Live int
	// LegacyLive counts live nodes that never called a wake API. While any
	// shard reports a nonzero LegacyLive the whole network must run dense —
	// the same global rule Network applies via its single scheduler.
	LegacyLive int
	// NewlyHalted lists the local indices (vertex - Lo) of nodes that halted
	// during this step, ascending. The coordinator folds them into its
	// global halted view so it can decide, for every routed cross-shard
	// message, whether delivery would activate the destination — the same
	// has-active rule the in-process deliver computes via msgActive. The
	// slice is reused by the next Step.
	NewlyHalted []int32
	// LocalActive reports whether any locally-retained message targets a
	// non-halted local node: the shard's contribution to the global
	// has-active decision for traffic the coordinator never sees.
	LocalActive bool
	// EarliestWake/WakeOK mirror the scheduler's earliest pending wake-up
	// among live local nodes after this step's bookkeeping (WakeOK false
	// when none exists).
	EarliestWake int64
	WakeOK       bool
}

// Shard executes a contiguous vertex range [Lo, Hi) of a network, reusing
// the exact per-round machinery of the in-process engine — the same active
// set assembly, scheduler, merge loop and bucketed delivery — restricted to
// local indices. The distributed engine composes K Shards behind transports;
// because each piece of the round pipeline is the in-process code operating
// on a partition of the same state, a distributed run is byte-identical to
// an in-process run by construction, and the differential tests hold it
// there.
//
// The split of one round across the coordinator protocol:
//
//	Step(r)    — build the local active set, invoke nodes, merge wake/halt
//	             bookkeeping, retain messages whose destination is also
//	             local, and return only the cross-shard outbox
//	             (sender-ascending).
//	Deliver(r) — accept the round's inbound cross-shard messages (the
//	             coordinator concatenates the other shards' batches in
//	             shard order) and splice the retained local messages into
//	             their sender position, reconstructing exactly the global
//	             sender-ascending order Network.deliver consumes, then
//	             meter bandwidth and fill inboxes. Local messages never
//	             cross the wire but are metered identically.
//
// Deliver must run before the next Step (the fused coordinator frame does
// both in order), since Step assumes the previous round's retained local
// messages have been drained.
//
// A Shard is not safe for concurrent use.
type Shard struct {
	net    *Network // carrier for Contexts: graph, codec, normalized opts
	lo, hi int
	nodes  []Node // local programs, indexed v-lo

	halted    []bool
	live      int
	rngs      []*rng.Source
	ctxs      []*Context
	inboxes   [][]Envelope
	msgActive []int32 // local indices
	active    []int32
	dueScr    []int32
	inActive  []bool
	sched     scheduler
	counters  *metrics.Counters // full-length; only [lo,hi) per-node entries used
	out       []Routed
	bwStamp   []int64 // indexed by local receiver
	bwBits    []int64
	bwGen     int64

	// localPending holds this round's src/dst-local messages between Step
	// (which retains them) and Deliver (which splices them back into the
	// global sender order); newlyHalted is the reused StepReport buffer.
	localPending []Routed
	newlyHalted  []int32
	// localRouted/crossRouted are cumulative message counts by routing
	// class, the shard's half of the ShardStats local-vs-cross split.
	localRouted int64
	crossRouted int64
}

// NewShard builds the executor for nodes [lo, hi) of an n-vertex network.
// local must hold exactly hi-lo programs; opts is normalized here, so the
// caller may pass the same raw Options it would hand Network.Reset. Deliver
// rejects FaultHook-bearing options up front: a delivery hook is a function
// value the distributed engine cannot ship across a process boundary, and
// silently dropping it would fake fault-free runs.
func NewShard(g *graph.Graph, local []Node, opts Options, lo, hi int) (*Shard, error) {
	n := g.N()
	if lo < 0 || hi > n || lo >= hi {
		return nil, fmt.Errorf("congest: shard range [%d,%d) invalid for %d vertices", lo, hi, n)
	}
	if len(local) != hi-lo {
		return nil, fmt.Errorf("congest: %d node programs for shard range [%d,%d)", len(local), lo, hi)
	}
	if opts.FaultHook != nil {
		return nil, fmt.Errorf("congest: FaultHook is not supported by sharded execution")
	}
	opts.Workers = 1 // shards are the parallelism; keep the per-shard loop sequential
	carrier := &Network{g: g, codec: wire.NewCodec(n), opts: NormalizeOptions(opts, n)}
	k := hi - lo
	s := &Shard{
		net:      carrier,
		lo:       lo,
		hi:       hi,
		nodes:    local,
		halted:   make([]bool, k),
		live:     k,
		rngs:     make([]*rng.Source, k),
		ctxs:     make([]*Context, k),
		inboxes:  make([][]Envelope, k),
		inActive: make([]bool, k),
		sched:    newScheduler(k),
		counters: metrics.NewCounters(n),
		bwStamp:  make([]int64, k),
		bwBits:   make([]int64, k),
	}
	for v := 0; v < k; v++ {
		s.rngs[v] = &rng.Source{}
		s.ctxs[v] = &Context{net: carrier, id: graph.NodeID(lo + v), rng: s.rngs[v]}
	}
	return s, nil
}

// Seed derives the local nodes' RNG streams from the run seed. SplitInto
// never advances the root source, so a shard deriving only its own range
// produces streams identical to the in-process engine deriving all n.
func (s *Shard) Seed(seed uint64) {
	root := rng.New(seed)
	for v := range s.rngs {
		root.SplitInto(s.rngs[v], uint64(s.lo+v))
	}
}

// Codec returns the codec sizing and encoding this network's messages.
func (s *Shard) Codec() wire.Codec { return s.net.codec }

// N returns the full network's vertex count.
func (s *Shard) N() int { return s.net.g.N() }

// Lo returns the first vertex of the shard's range.
func (s *Shard) Lo() int { return s.lo }

// Hi returns one past the last vertex of the shard's range.
func (s *Shard) Hi() int { return s.hi }

// Counters returns the shard's metering: the scalar message/invocation
// totals it contributed plus the per-node entries of its range. The
// coordinator merges shard counters into the run totals.
func (s *Shard) Counters() *metrics.Counters { return s.counters }

// Step executes round `round` (Init when isInit) for the shard's nodes and
// returns the cross-shard outbound messages in sender-ascending order;
// messages whose destination is also in [Lo, Hi) are retained for the next
// Deliver instead of being shipped. dense selects the every-live-node sweep;
// it is a global property (Init round, DenseSweep, or a legacy-dense node
// live anywhere in the network) that only the coordinator can compute,
// mirroring Network's single-scheduler decision. The returned slice is
// reused by the next Step.
func (s *Shard) Step(round int64, isInit, dense bool) ([]Routed, StepReport, error) {
	active := s.active[:0]
	if isInit || dense {
		for v := range s.nodes {
			if !s.halted[v] {
				active = append(active, int32(v))
			}
		}
		if !isInit && !s.net.opts.DenseSweep {
			due := s.sched.popDue(round, s.halted, s.inActive, s.dueScr[:0])
			for _, v := range due {
				s.inActive[v] = false
			}
			s.dueScr = due[:0]
		}
		s.msgActive = s.msgActive[:0]
	} else {
		for _, v := range s.msgActive {
			s.inActive[v] = true
			active = append(active, v)
		}
		s.msgActive = s.msgActive[:0]
		active = s.sched.popDue(round, s.halted, s.inActive, active)
		for _, v := range active {
			s.inActive[v] = false
		}
		slices.Sort(active)
	}
	s.active = active

	for _, v := range active {
		ctx := s.ctxs[v]
		ctx.reset(round)
		if isInit {
			s.nodes[v].Init(ctx)
			continue
		}
		inbox := s.inboxes[v]
		s.nodes[v].Round(ctx, inbox)
		s.inboxes[v] = inbox[:0]
	}

	// Merge in local-id order — the same order the in-process merge loop
	// visits this range, so error selection, halt bookkeeping and outbox
	// concatenation are position-identical. Splitting the outbox by
	// destination preserves sender order within each class: the local and
	// cross streams are both subsequences of the sender-ascending whole.
	out := s.out[:0]
	local := s.localPending[:0]
	nh := s.newlyHalted[:0]
	eventDriven := !s.net.opts.DenseSweep
	rep := StepReport{}
	for _, v := range active {
		ctx := s.ctxs[v]
		if ctx.err != nil {
			s.out, s.localPending, s.newlyHalted = out, local, nh
			rep.Live, rep.LegacyLive = s.live, s.sched.legacyLive
			return nil, rep, ctx.err
		}
		s.counters.Invocations++
		if ctx.halted {
			s.halted[v] = true
			s.live--
			s.sched.noteHalt(v)
			nh = append(nh, v)
		} else if eventDriven {
			s.sched.noteInvocation(v, round, ctx)
		}
		if ctx.memWords > 0 {
			s.counters.ObserveMemory(s.lo+int(v), ctx.memWords)
		}
		if ctx.workOps > 0 {
			s.counters.AddWork(s.lo+int(v), ctx.workOps)
		}
		for i := range ctx.outbox {
			rm := &ctx.outbox[i]
			if t := int(rm.to); t >= s.lo && t < s.hi {
				local = append(local, Routed{From: rm.from, To: rm.to, Msg: rm.msg})
			} else {
				out = append(out, Routed{From: rm.from, To: rm.to, Msg: rm.msg})
			}
		}
	}
	s.out, s.localPending, s.newlyHalted = out, local, nh
	s.localRouted += int64(len(local))
	s.crossRouted += int64(len(out))
	rep.Live, rep.LegacyLive = s.live, s.sched.legacyLive
	rep.NewlyHalted = nh
	// Halts are final for the round here, so whether a retained local
	// message will activate its destination is already decided — the same
	// judgment the in-process deliver makes via msgActive.
	for i := range local {
		if !s.halted[int(local[i].To)-s.lo] {
			rep.LocalActive = true
			break
		}
	}
	rep.EarliestWake, rep.WakeOK = s.sched.earliestWake(s.halted)
	return out, rep, nil
}

// Deliver routes this round's inbound messages into next-round inbox
// buckets, enforcing per-edge bandwidth with the same generation-stamped
// accounting as Network.deliver. inbound must be the concatenation of the
// OTHER shards' cross-shard messages destined here, in shard order; the
// messages Step retained locally are spliced back in at their sender
// position (inbound senders below Lo, then local, then the rest), which
// reconstructs the global sender-ascending order Network.deliver consumes —
// runs of equal From stay contiguous, so each run is one bandwidth
// generation exactly as in-process delivery sees it.
func (s *Shard) Deliver(round int64, inbound []Routed) error {
	curFrom := graph.NodeID(-1)
	i := 0
	for ; i < len(inbound) && int(inbound[i].From) < s.lo; i++ {
		if err := s.deliverOne(round, &inbound[i], &curFrom); err != nil {
			return err
		}
	}
	for j := range s.localPending {
		if err := s.deliverOne(round, &s.localPending[j], &curFrom); err != nil {
			return err
		}
	}
	s.localPending = s.localPending[:0]
	for ; i < len(inbound); i++ {
		if err := s.deliverOne(round, &inbound[i], &curFrom); err != nil {
			return err
		}
	}
	return nil
}

// deliverOne meters and buckets a single message: one position of the
// in-process deliver loop.
func (s *Shard) deliverOne(round int64, rm *Routed, curFrom *graph.NodeID) error {
	lv := int(rm.To) - s.lo
	if lv < 0 || lv >= s.hi-s.lo {
		return fmt.Errorf("congest: shard [%d,%d) received message for node %d", s.lo, s.hi, rm.To)
	}
	sz := s.net.codec.Bits(rm.Msg)
	if rm.From != *curFrom {
		*curFrom = rm.From
		s.bwGen++
	}
	if s.bwStamp[lv] != s.bwGen {
		s.bwStamp[lv] = s.bwGen
		s.bwBits[lv] = 0
	}
	s.bwBits[lv] += sz
	if s.bwBits[lv] > s.net.opts.BandwidthBits {
		return fmt.Errorf("%w: edge %d->%d carried %d bits in round %d (budget %d)",
			ErrBandwidth, rm.From, rm.To, s.bwBits[lv], round, s.net.opts.BandwidthBits)
	}
	s.counters.AddMessage(sz)
	if s.halted[lv] {
		return nil // metered, but a halted node consumes nothing
	}
	if len(s.inboxes[lv]) == 0 {
		s.msgActive = append(s.msgActive, int32(lv))
	}
	s.inboxes[lv] = append(s.inboxes[lv], Envelope{From: rm.From, Msg: rm.Msg})
	return nil
}

// RoutedSplit returns the shard's cumulative message counts by routing
// class: messages retained and delivered locally versus messages shipped
// through the coordinator.
func (s *Shard) RoutedSplit() (local, cross int64) { return s.localRouted, s.crossRouted }
