package congest

import (
	"errors"
	"testing"

	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/wire"
)

// floodNode floods a value: node 0 starts with its own id as the value; every
// node adopts the minimum value it hears and forwards it once, then halts
// after quietRounds rounds of silence. This exercises send/receive, rounds
// and halting.
type floodNode struct {
	value   int32
	sent    bool
	quiet   int
	adopted bool
}

func (f *floodNode) Init(ctx *Context) {
	f.value = int32(ctx.ID())
	if ctx.ID() == 0 {
		f.adopted = true
		for _, nb := range ctx.Neighbors() {
			ctx.Send(nb, wire.Msg(wire.KindBroadcast, f.value))
		}
		f.sent = true
	}
}

func (f *floodNode) Round(ctx *Context, inbox []Envelope) {
	heard := false
	for _, env := range inbox {
		if env.Msg.Kind == wire.KindBroadcast && (!f.adopted || env.Msg.Arg(0) < f.value) {
			f.value = env.Msg.Arg(0)
			f.adopted = true
			heard = true
		}
	}
	if heard && !f.sent {
		for _, nb := range ctx.Neighbors() {
			ctx.Send(nb, wire.Msg(wire.KindBroadcast, f.value))
		}
		f.sent = true
	}
	if !heard {
		f.quiet++
	} else {
		f.quiet = 0
	}
	ctx.ObserveMemory(4)
	ctx.AddWork(int64(len(inbox) + 1))
	if f.quiet >= ctx.N() { // conservative: diameter <= n
		ctx.Halt()
	}
}

func newFloodNet(t *testing.T, g *graph.Graph, opts Options) (*Network, []*floodNode) {
	t.Helper()
	progs := make([]*floodNode, g.N())
	nodes := make([]Node, g.N())
	for i := range progs {
		progs[i] = &floodNode{}
		nodes[i] = progs[i]
	}
	net, err := NewNetwork(g, nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	return net, progs
}

func TestFloodReachesEveryone(t *testing.T) {
	g := graph.Ring(12)
	net, progs := newFloodNet(t, g, Options{})
	counters, err := net.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		if p.value != 0 {
			t.Fatalf("node %d ended with value %d", i, p.value)
		}
	}
	if counters.Rounds == 0 || counters.Messages == 0 {
		t.Fatalf("counters empty: %v", counters)
	}
	// Flood on a ring sends 2 messages per node except duplicates at the
	// antipode; at least n messages total.
	if counters.Messages < int64(g.N()) {
		t.Fatalf("too few messages: %d", counters.Messages)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := graph.GNP(200, 0.05, rng.New(7))
	netSeq, progsSeq := newFloodNet(t, g, Options{Workers: 1})
	cSeq, err := netSeq.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	netPar, progsPar := newFloodNet(t, g, Options{Workers: 8})
	cPar, err := netPar.Run(42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range progsSeq {
		if progsSeq[i].value != progsPar[i].value {
			t.Fatalf("node %d differs: seq=%d par=%d", i, progsSeq[i].value, progsPar[i].value)
		}
	}
	if cSeq.Rounds != cPar.Rounds || cSeq.Messages != cPar.Messages || cSeq.Bits != cPar.Bits {
		t.Fatalf("counters differ: seq=%v par=%v", cSeq, cPar)
	}
}

// senderNode sends a configurable burst to neighbor 0 every round.
type senderNode struct {
	burst  int
	target graph.NodeID
	rounds int
}

func (s *senderNode) Init(ctx *Context) {}

func (s *senderNode) Round(ctx *Context, inbox []Envelope) {
	s.rounds++
	if ctx.ID() == 1 && s.rounds == 1 {
		for i := 0; i < s.burst; i++ {
			ctx.Send(s.target, wire.Msg(wire.KindBroadcast, 1, 2, 3, 4))
		}
	}
	if s.rounds >= 3 {
		ctx.Halt()
	}
}

func TestBandwidthEnforced(t *testing.T) {
	g := graph.Path(3)
	nodes := []Node{
		&senderNode{burst: 0},
		&senderNode{burst: 100, target: 0},
		&senderNode{burst: 0},
	}
	net, err := NewNetwork(g, nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(1); !errors.Is(err, ErrBandwidth) {
		t.Fatalf("got %v, want ErrBandwidth", err)
	}
}

func TestSendToNonNeighborFails(t *testing.T) {
	g := graph.Path(3) // 0-1-2; 0 and 2 not adjacent
	nodes := []Node{
		&senderNode{burst: 1, target: 2}, // node 0 won't send (only node 1 sends)
		&senderNode{burst: 1, target: 0},
		&senderNode{burst: 0},
	}
	// Make node 0 the misbehaving sender by targeting node 2 directly.
	bad := &badSender{}
	nodes[0] = bad
	net, err := NewNetwork(g, nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(1); !errors.Is(err, ErrNotNeighbor) {
		t.Fatalf("got %v, want ErrNotNeighbor", err)
	}
}

type badSender struct{}

func (b *badSender) Init(ctx *Context) {
	ctx.Send(2, wire.Msg(wire.KindBroadcast, 0)) // 2 is not a neighbor of 0 on Path(3)
}
func (b *badSender) Round(ctx *Context, inbox []Envelope) { ctx.Halt() }

// spinner never halts.
type spinner struct{}

func (s *spinner) Init(ctx *Context)                    {}
func (s *spinner) Round(ctx *Context, inbox []Envelope) {}

func TestRoundLimit(t *testing.T) {
	g := graph.Ring(4)
	nodes := []Node{&spinner{}, &spinner{}, &spinner{}, &spinner{}}
	net, err := NewNetwork(g, nodes, Options{MaxRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	counters, err := net.Run(1)
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("got %v, want ErrRoundLimit", err)
	}
	if counters.Rounds != 10 {
		t.Fatalf("rounds=%d, want 10", counters.Rounds)
	}
}

func TestNodeCountMismatch(t *testing.T) {
	g := graph.Ring(4)
	if _, err := NewNetwork(g, []Node{&spinner{}}, Options{}); err == nil {
		t.Fatal("mismatched node count accepted")
	}
}

func TestFaultHookDropsMessages(t *testing.T) {
	g := graph.Ring(8)
	progs := make([]*floodNode, g.N())
	nodes := make([]Node, g.N())
	for i := range progs {
		progs[i] = &floodNode{}
		nodes[i] = progs[i]
	}
	// Drop everything: the flood never spreads and all nodes keep their id.
	opts := Options{
		FaultHook: func(round int64, from, to graph.NodeID, m wire.Message) (wire.Message, bool) {
			return m, false
		},
	}
	net, err := NewNetwork(g, nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	counters, err := net.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if counters.Messages != 0 {
		t.Fatalf("dropped messages were counted: %d", counters.Messages)
	}
	for i := 1; i < len(progs); i++ {
		if progs[i].value != int32(i) {
			t.Fatalf("node %d received a flood despite drops", i)
		}
	}
}

func TestMemoryAndWorkMetered(t *testing.T) {
	g := graph.Ring(6)
	net, _ := newFloodNet(t, g, Options{})
	counters, err := net.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if counters.MemoryDistribution().Max != 4 {
		t.Fatalf("memory high-water %d, want 4", counters.MemoryDistribution().Max)
	}
	if counters.WorkDistribution().Total == 0 {
		t.Fatal("work not metered")
	}
}

func TestInboxSortedBySender(t *testing.T) {
	// Star center receives from all leaves in one round; inbox must arrive
	// sorted by sender id.
	b := graph.NewBuilder(5)
	for v := 1; v < 5; v++ {
		b.AddEdge(0, graph.NodeID(v))
	}
	g := b.Build()
	center := &inboxRecorder{}
	nodes := []Node{center, &leafSender{}, &leafSender{}, &leafSender{}, &leafSender{}}
	net, err := NewNetwork(g, nodes, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(center.senders) != 4 {
		t.Fatalf("center heard %d senders, want 4", len(center.senders))
	}
	for i := 1; i < len(center.senders); i++ {
		if center.senders[i-1] >= center.senders[i] {
			t.Fatalf("inbox not sorted: %v", center.senders)
		}
	}
}

type leafSender struct{}

func (l *leafSender) Init(ctx *Context) {
	ctx.Send(0, wire.Msg(wire.KindBroadcast, int32(ctx.ID())))
}
func (l *leafSender) Round(ctx *Context, inbox []Envelope) { ctx.Halt() }

type inboxRecorder struct {
	senders []graph.NodeID
}

func (r *inboxRecorder) Init(ctx *Context) {}
func (r *inboxRecorder) Round(ctx *Context, inbox []Envelope) {
	for _, env := range inbox {
		r.senders = append(r.senders, env.From)
	}
	ctx.Halt()
}

func TestRandIsPerNodeDeterministic(t *testing.T) {
	g := graph.Ring(4)
	collect := func() [][]uint64 {
		recs := make([]*randRecorder, 4)
		nodes := make([]Node, 4)
		for i := range recs {
			recs[i] = &randRecorder{}
			nodes[i] = recs[i]
		}
		net, err := NewNetwork(g, nodes, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := net.Run(99); err != nil {
			t.Fatal(err)
		}
		out := make([][]uint64, 4)
		for i, r := range recs {
			out[i] = r.draws
		}
		return out
	}
	a, b := collect(), collect()
	for v := range a {
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				t.Fatalf("node %d draw %d differs across identical runs", v, i)
			}
		}
	}
	if a[0][0] == a[1][0] {
		t.Fatal("different nodes produced identical first draws (streams not split)")
	}
}

type randRecorder struct {
	draws []uint64
}

func (r *randRecorder) Init(ctx *Context) {}
func (r *randRecorder) Round(ctx *Context, inbox []Envelope) {
	r.draws = append(r.draws, ctx.Rand().Uint64())
	if len(r.draws) >= 5 {
		ctx.Halt()
	}
}

// tickerNode wakes itself every `every` rounds, records the rounds it ran,
// and halts after `stops` invocations. It never receives messages, so its
// execution is driven purely by the wake schedule.
type tickerNode struct {
	every int64
	stops int
	runs  []int64
}

func (tk *tickerNode) Init(ctx *Context) { ctx.WakeEvery(tk.every) }
func (tk *tickerNode) Round(ctx *Context, inbox []Envelope) {
	tk.runs = append(tk.runs, ctx.Round())
	if len(tk.runs) >= tk.stops {
		ctx.Halt()
	}
}

func TestWakeEverySchedulesAndSkips(t *testing.T) {
	g := graph.Ring(4)
	progs := []*tickerNode{
		{every: 7, stops: 5},
		{every: 7, stops: 5},
		{every: 7, stops: 5},
		{every: 7, stops: 5},
	}
	nodes := make([]Node, len(progs))
	for i := range progs {
		nodes[i] = progs[i]
	}
	net, err := NewNetwork(g, nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counters, err := net.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		want := []int64{7, 14, 21, 28, 35}
		if len(p.runs) != len(want) {
			t.Fatalf("node %d ran at %v, want %v", i, p.runs, want)
		}
		for j := range want {
			if p.runs[j] != want[j] {
				t.Fatalf("node %d ran at %v, want %v", i, p.runs, want)
			}
		}
	}
	if counters.Rounds != 35 {
		t.Fatalf("rounds=%d, want 35 (skipped rounds must still be charged)", counters.Rounds)
	}
	if counters.RoundsSkipped != 30 {
		t.Fatalf("skipped=%d, want 30", counters.RoundsSkipped)
	}
	// Init (4) + 5 invocations per node.
	if counters.Invocations != 4+4*5 {
		t.Fatalf("invocations=%d, want 24", counters.Invocations)
	}
}

// wakeAtNode asks for a single future wake from Init and halts there.
type wakeAtNode struct {
	at  int64
	ran int64
}

func (w *wakeAtNode) Init(ctx *Context) { ctx.WakeAt(w.at) }
func (w *wakeAtNode) Round(ctx *Context, inbox []Envelope) {
	w.ran = ctx.Round()
	ctx.Halt()
}

func TestWakeAtIsExact(t *testing.T) {
	g := graph.Ring(3)
	progs := []*wakeAtNode{{at: 5}, {at: 900}, {at: 17}}
	nodes := []Node{progs[0], progs[1], progs[2]}
	net, err := NewNetwork(g, nodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counters, err := net.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range progs {
		if p.ran != p.at {
			t.Fatalf("node %d ran at %d, want %d", i, p.ran, p.at)
		}
	}
	if counters.Rounds != 900 {
		t.Fatalf("rounds=%d, want 900", counters.Rounds)
	}
	if counters.Invocations != 3+3 {
		t.Fatalf("invocations=%d, want 6", counters.Invocations)
	}
}

// sleeperNode opts into event-driven scheduling with no wake at all; it can
// only be advanced by deliveries.
type sleeperNode struct{ got int }

func (s *sleeperNode) Init(ctx *Context) { ctx.WakeEvery(0) }
func (s *sleeperNode) Round(ctx *Context, inbox []Envelope) {
	s.got += len(inbox)
	ctx.Halt()
}

func TestSleepingNetworkHitsRoundLimitLikeDenseSweep(t *testing.T) {
	// A network where nobody will ever act again must charge the full
	// budget and fail exactly like the dense sweep does with spinners.
	g := graph.Ring(4)
	for _, dense := range []bool{false, true} {
		nodes := make([]Node, 4)
		for i := range nodes {
			if dense {
				nodes[i] = &spinner{}
			} else {
				nodes[i] = &sleeperNode{}
			}
		}
		net, err := NewNetwork(g, nodes, Options{MaxRounds: 10, DenseSweep: dense})
		if err != nil {
			t.Fatal(err)
		}
		counters, err := net.Run(1)
		if !errors.Is(err, ErrRoundLimit) {
			t.Fatalf("dense=%v: got %v, want ErrRoundLimit", dense, err)
		}
		if counters.Rounds != 10 {
			t.Fatalf("dense=%v: rounds=%d, want 10", dense, counters.Rounds)
		}
	}
}

func TestMessageWakesSleeper(t *testing.T) {
	// Node 1 sleeps (event-driven, no wake); node 0 messages it at round 4.
	g := graph.Path(2)
	sl := &sleeperNode{}
	wk := &delayedSender{at: 4, target: 1}
	net, err := NewNetwork(g, []Node{wk, sl}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(1); err != nil {
		t.Fatal(err)
	}
	if sl.got != 1 {
		t.Fatalf("sleeper received %d messages, want 1", sl.got)
	}
}

type delayedSender struct {
	at     int64
	target graph.NodeID
}

func (d *delayedSender) Init(ctx *Context) { ctx.WakeAt(d.at) }
func (d *delayedSender) Round(ctx *Context, inbox []Envelope) {
	ctx.Send(d.target, wire.Msg(wire.KindToken))
	ctx.Halt()
}

// TestLegacyNodesStayDense pins the compatibility contract: a node that
// never calls a wake API is invoked every round and suppresses skipping.
func TestLegacyNodesStayDense(t *testing.T) {
	g := graph.Ring(4)
	legacy := &countingLegacy{}
	nodes := []Node{legacy, &tickerNode{every: 50, stops: 1}, &spinnerHalting{at: 20}, &spinnerHalting{at: 20}}
	net, err := NewNetwork(g, nodes, Options{MaxRounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	counters, err := net.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if counters.RoundsSkipped != 0 {
		t.Fatalf("skipped %d rounds with a legacy node live", counters.RoundsSkipped)
	}
	if legacy.rounds < 20 {
		t.Fatalf("legacy node ran only %d rounds", legacy.rounds)
	}
}

type countingLegacy struct{ rounds int }

func (c *countingLegacy) Init(ctx *Context) {}
func (c *countingLegacy) Round(ctx *Context, inbox []Envelope) {
	c.rounds++
	if c.rounds >= 30 {
		ctx.Halt()
	}
}

type spinnerHalting struct{ at int64 }

func (s *spinnerHalting) Init(ctx *Context) {}
func (s *spinnerHalting) Round(ctx *Context, inbox []Envelope) {
	if ctx.Round() >= s.at {
		ctx.Halt()
	}
}

// pingPongNode bounces a token to its peer forever: pure message-driven
// steady-state traffic for the allocation test.
type pingPongNode struct{ peer graph.NodeID }

func (p *pingPongNode) Init(ctx *Context) {
	ctx.WakeEvery(0)
	if ctx.ID()%2 == 0 {
		ctx.Send(p.peer, wire.Msg(wire.KindToken, 1))
	}
}
func (p *pingPongNode) Round(ctx *Context, inbox []Envelope) {
	for range inbox {
		ctx.Send(p.peer, wire.Msg(wire.KindToken, 1))
	}
}

// TestPerRoundDeliveryZeroAllocs pins the engine's steady state at exactly
// zero allocations per round: inbox buckets, outbox buffers, the bandwidth
// stamps and the wake heap are all recycled.
func TestPerRoundDeliveryZeroAllocs(t *testing.T) {
	g := graph.Ring(64)
	nodes := make([]Node, g.N())
	for v := 0; v < g.N(); v++ {
		peer := graph.NodeID((v + 1) % g.N())
		if v%2 == 1 {
			peer = graph.NodeID((v - 1 + g.N()) % g.N())
		}
		nodes[v] = &pingPongNode{peer: peer}
	}
	net, err := NewNetwork(g, nodes, Options{MaxRounds: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	state, exec, _ := net.newRun(1)
	if err := exec.step(0, true); err != nil {
		t.Fatal(err)
	}
	round := int64(0)
	stepOnce := func() {
		round++
		if err := exec.step(round, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ { // warm up buffers to steady state
		stepOnce()
	}
	if avg := testing.AllocsPerRun(200, stepOnce); avg != 0 {
		t.Fatalf("per-round delivery allocates %.2f times per round", avg)
	}
	if state.live == 0 {
		t.Fatal("ping-pong network unexpectedly halted")
	}
}
