package congest

// scheduler tracks per-node wake-ups for the event-driven executor. It is
// only touched single-threaded (active-set assembly and the post-round merge
// loop), so it needs no locking, and its decisions depend only on the
// execution itself — never on worker count — which keeps the parallel and
// sequential executors identical.
type scheduler struct {
	// nextWake[v] is the earliest pending wake round of node v, -1 none.
	nextWake []int64
	// every[v] is node v's standing wake interval (0 = none).
	every []int64
	// legacy[v] is true until node v first calls a wake API; legacy nodes
	// are invoked every round and suppress round skipping while live.
	legacy     []bool
	legacyLive int
	// heap is a binary min-heap of (round, node) wake entries, lazily
	// invalidated: an entry is live iff nextWake[entry.v] == entry.round.
	heap []wakeEntry
}

type wakeEntry struct {
	round int64
	v     int32
}

func newScheduler(n int) scheduler {
	s := scheduler{
		nextWake: make([]int64, n),
		every:    make([]int64, n),
		legacy:   make([]bool, n),
	}
	s.reset()
	return s
}

// reset restores the schedule to its initial all-legacy state, keeping the
// heap's backing array for reuse across runs.
func (s *scheduler) reset() {
	for v := range s.nextWake {
		s.nextWake[v] = -1
		s.every[v] = 0
		s.legacy[v] = true
	}
	s.legacyLive = len(s.legacy)
	s.heap = s.heap[:0]
}

// arm guarantees node v is woken no later than round w ("no later": an
// earlier pending wake is kept; a later one is superseded by pushing the
// earlier entry, leaving the old one to lazy invalidation).
func (s *scheduler) arm(v int32, w int64) {
	if cur := s.nextWake[v]; cur >= 0 && cur <= w {
		return
	}
	s.nextWake[v] = w
	s.push(wakeEntry{round: w, v: v})
}

// noteInvocation records the wake requests node v's context accumulated
// during its invocation at `round` and re-arms its standing interval.
// Called from the single-threaded merge loop.
func (s *scheduler) noteInvocation(v int32, round int64, ctx *Context) {
	if ctx.wakeDeclared && s.legacy[v] {
		s.legacy[v] = false
		s.legacyLive--
	}
	if ctx.wakeEverySet {
		s.every[v] = ctx.wakeEvery
	}
	if ctx.wakeAt > 0 {
		s.arm(v, ctx.wakeAt)
	}
	if e := s.every[v]; e > 0 {
		s.arm(v, round+e)
	}
}

// noteHalt removes a halting node from the schedule's live accounting (its
// heap entries die by lazy invalidation).
func (s *scheduler) noteHalt(v int32) {
	if s.legacy[v] {
		s.legacy[v] = false
		s.legacyLive--
	}
	s.nextWake[v] = -1
}

// popDue consumes every live wake entry due at or before `round`. Nodes not
// already marked in inActive are marked and appended to dst; the extended
// slice is returned. Stale entries encountered on the way are discarded.
func (s *scheduler) popDue(round int64, halted, inActive []bool, dst []int32) []int32 {
	for len(s.heap) > 0 && s.heap[0].round <= round {
		e := s.pop()
		if s.nextWake[e.v] != e.round || halted[e.v] {
			continue // stale (superseded, consumed, or node halted)
		}
		s.nextWake[e.v] = -1
		if inActive[e.v] {
			continue // already active via delivery
		}
		inActive[e.v] = true
		dst = append(dst, e.v)
	}
	return dst
}

// earliestWake peeks the earliest live wake round without consuming it.
func (s *scheduler) earliestWake(halted []bool) (int64, bool) {
	for len(s.heap) > 0 {
		e := s.heap[0]
		if s.nextWake[e.v] != e.round || halted[e.v] {
			s.pop()
			continue
		}
		return e.round, true
	}
	return 0, false
}

func (s *scheduler) push(e wakeEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !wakeLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *scheduler) pop() wakeEntry {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s.heap) && wakeLess(s.heap[l], s.heap[min]) {
			min = l
		}
		if r < len(s.heap) && wakeLess(s.heap[r], s.heap[min]) {
			min = r
		}
		if min == i {
			break
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
	return top
}

// wakeLess orders entries by round, then node id, so heap contents are a
// pure function of the execution (the tiebreak is never observable — due
// entries are re-sorted into the active set — but keeps traversal stable).
func wakeLess(a, b wakeEntry) bool {
	if a.round != b.round {
		return a.round < b.round
	}
	return a.v < b.v
}
