// Package congest simulates the synchronous CONGEST model of distributed
// computing (Peleg 2000), the model of the paper. An n-node network runs in
// lock-step rounds; in each round every node may send one small message
// (O(log n) bits) along each incident edge, and messages sent in round r are
// delivered at the start of round r+1.
//
// The simulator enforces the model's constraints — messages may only travel
// along graph edges and may not exceed the per-edge bandwidth — and meters
// rounds, messages, bits, per-node memory and per-node computation via
// package metrics.
//
// Determinism: a run is a pure function of (graph, node programs, seed).
// Each node receives its own RNG stream split from the run seed, and inboxes
// are assembled in sender-id order, so the sequential and the parallel
// executor produce identical executions.
package congest

import (
	"errors"
	"fmt"
	"sort"

	"dhc/internal/graph"
	"dhc/internal/metrics"
	"dhc/internal/rng"
	"dhc/internal/wire"
)

// Errors returned by Run. Callers match with errors.Is.
var (
	// ErrRoundLimit means the algorithm did not terminate within MaxRounds.
	ErrRoundLimit = errors.New("congest: round limit exceeded")
	// ErrBandwidth means a node tried to push more bits over one edge in
	// one round than the model allows.
	ErrBandwidth = errors.New("congest: per-edge bandwidth exceeded")
	// ErrNotNeighbor means a node tried to message a non-neighbor.
	ErrNotNeighbor = errors.New("congest: send to non-neighbor")
)

// Envelope is a delivered message together with its sender.
type Envelope struct {
	From graph.NodeID
	Msg  wire.Message
}

// Node is one processor's program. Implementations keep all their state in
// the struct; the simulator calls Init once before round 1 and then Round
// once per round until the node halts.
type Node interface {
	// Init runs before the first round; the node may send initial messages.
	Init(ctx *Context)
	// Round processes the messages delivered this round and may send more.
	Round(ctx *Context, inbox []Envelope)
}

// Context is a node's per-round handle to the simulator. It is only valid
// during the Init or Round call that received it.
type Context struct {
	net    *Network
	id     graph.NodeID
	round  int64
	rng    *rng.Source
	outbox []routedMsg
	halted bool
	err    error

	// per-call metric deltas, merged by the executor
	memWords int64
	workOps  int64
}

type routedMsg struct {
	from, to graph.NodeID
	msg      wire.Message
}

// ID returns this node's identifier.
func (c *Context) ID() graph.NodeID { return c.id }

// Round returns the current round number (0 during Init).
func (c *Context) Round() int64 { return c.round }

// N returns the network size, which the paper assumes is global knowledge.
func (c *Context) N() int { return c.net.g.N() }

// Degree returns this node's degree.
func (c *Context) Degree() int { return c.net.g.Degree(c.id) }

// Neighbors returns this node's neighbor list (shared; do not modify).
func (c *Context) Neighbors() []graph.NodeID { return c.net.g.Neighbors(c.id) }

// HasNeighbor reports whether v is adjacent.
func (c *Context) HasNeighbor(v graph.NodeID) bool { return c.net.g.HasEdge(c.id, v) }

// Rand returns this node's private deterministic RNG stream.
func (c *Context) Rand() *rng.Source { return c.rng }

// Send queues a message to neighbor `to` for delivery next round. Sending to
// a non-neighbor records ErrNotNeighbor and aborts the run after this round.
func (c *Context) Send(to graph.NodeID, m wire.Message) {
	if !c.net.g.HasEdge(c.id, to) {
		if c.err == nil {
			c.err = fmt.Errorf("%w: %d -> %d (%s)", ErrNotNeighbor, c.id, to, m)
		}
		return
	}
	c.outbox = append(c.outbox, routedMsg{from: c.id, to: to, msg: m})
}

// Halt marks this node finished; it will receive no further Round calls.
// The run ends when every node has halted.
func (c *Context) Halt() { c.halted = true }

// reset prepares a persistent context for this round's Init/Round call,
// keeping the outbox's backing array.
func (c *Context) reset(round int64) {
	c.round = round
	c.outbox = c.outbox[:0]
	c.halted = false
	c.err = nil
	c.memWords = 0
	c.workOps = 0
}

// ObserveMemory reports the node's current retained state size in words; the
// simulator keeps the high-water mark per node.
func (c *Context) ObserveMemory(words int64) {
	if words > c.memWords {
		c.memWords = words
	}
}

// AddWork charges local computation to this node, for load-balance metrics.
func (c *Context) AddWork(ops int64) { c.workOps += ops }

// Options configures a Network.
type Options struct {
	// BandwidthBits is the per-edge per-direction per-round budget.
	// Zero selects the default 8 * ceil(log2 n) bits, a constant number of
	// node ids — the standard CONGEST allowance.
	BandwidthBits int64
	// MaxRounds aborts runs that fail to terminate. Zero selects
	// 64 * n * ceil(log2 n) + 1024, comfortably above every algorithm's
	// bound on its intended inputs.
	MaxRounds int64
	// Workers > 1 enables the parallel executor with that many goroutines.
	Workers int
	// FaultHook, if non-nil, intercepts every delivery: return false to
	// drop the message, or return a mutated copy. Used by robustness tests.
	FaultHook func(round int64, from, to graph.NodeID, m wire.Message) (wire.Message, bool)
}

// Network binds node programs to a graph and executes rounds.
type Network struct {
	g     *graph.Graph
	nodes []Node
	codec wire.Codec
	opts  Options
}

// NewNetwork creates a network over g with one Node program per vertex.
// len(nodes) must equal g.N().
func NewNetwork(g *graph.Graph, nodes []Node, opts Options) (*Network, error) {
	if len(nodes) != g.N() {
		return nil, fmt.Errorf("congest: %d node programs for %d vertices", len(nodes), g.N())
	}
	codec := wire.NewCodec(g.N())
	if opts.BandwidthBits == 0 {
		opts.BandwidthBits = int64(8 * codec.IDBits)
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 64*int64(g.N())*int64(codec.IDBits) + 1024
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	return &Network{g: g, nodes: nodes, codec: codec, opts: opts}, nil
}

// Codec returns the codec sizing messages for this network.
func (n *Network) Codec() wire.Codec { return n.codec }

// Run executes the network until every node halts. It returns the metered
// counters; on failure the counters reflect the partial run.
func (n *Network) Run(seed uint64) (*metrics.Counters, error) {
	counters := metrics.NewCounters(n.g.N())
	root := rng.New(seed)

	numNodes := n.g.N()
	state := &runState{
		halted:  make([]bool, numNodes),
		rngs:    make([]*rng.Source, numNodes),
		inboxes: make([][]Envelope, numNodes),
		ctxs:    make([]*Context, numNodes),
	}
	for v := 0; v < numNodes; v++ {
		state.rngs[v] = root.Split(uint64(v))
		state.ctxs[v] = &Context{net: n, id: graph.NodeID(v), rng: state.rngs[v]}
	}

	exec := newExecutor(n, state, counters)

	// Init phase (round 0).
	if err := exec.step(0, true); err != nil {
		return counters, err
	}
	for round := int64(1); ; round++ {
		if state.allHalted() {
			return counters, nil
		}
		if round > n.opts.MaxRounds {
			return counters, fmt.Errorf("%w: %d rounds", ErrRoundLimit, n.opts.MaxRounds)
		}
		counters.Rounds++
		if err := exec.step(round, false); err != nil {
			return counters, err
		}
	}
}

type runState struct {
	halted  []bool
	rngs    []*rng.Source
	inboxes [][]Envelope
	// ctxs are the persistent per-node contexts: each is reset and reused
	// every round so outbox capacity survives, keeping the per-round
	// allocation count independent of n. A Context is documented as valid
	// only during the Init/Round call, which is what makes reuse safe.
	ctxs []*Context
	// out is the reused node-id-ordered outbox concatenation buffer.
	out []routedMsg
}

func (s *runState) allHalted() bool {
	for _, h := range s.halted {
		if !h {
			return false
		}
	}
	return true
}

// deliver routes outboxes into next-round inboxes, applying fault hooks,
// bandwidth accounting and enforcement. Called single-threaded.
func (n *Network) deliver(round int64, out []routedMsg, state *runState, counters *metrics.Counters) error {
	// Per directed edge budget tracking.
	type dirEdge struct{ from, to graph.NodeID }
	used := make(map[dirEdge]int64)
	next := make([][]Envelope, n.g.N())
	for _, rm := range out {
		msg := rm.msg
		if n.opts.FaultHook != nil {
			var deliverIt bool
			msg, deliverIt = n.opts.FaultHook(round, rm.from, rm.to, msg)
			if !deliverIt {
				continue
			}
		}
		sz := n.codec.Bits(msg)
		key := dirEdge{from: rm.from, to: rm.to}
		used[key] += sz
		if used[key] > n.opts.BandwidthBits {
			return fmt.Errorf("%w: edge %d->%d carried %d bits in round %d (budget %d)",
				ErrBandwidth, rm.from, rm.to, used[key], round, n.opts.BandwidthBits)
		}
		counters.AddMessage(sz)
		next[rm.to] = append(next[rm.to], Envelope{From: rm.from, Msg: msg})
	}
	// Deterministic inbox order: sort by sender id (stable within sender by
	// send order, which sort.SliceStable preserves).
	for v := range next {
		sort.SliceStable(next[v], func(i, j int) bool { return next[v][i].From < next[v][j].From })
		state.inboxes[v] = next[v]
	}
	return nil
}
