// Package congest simulates the synchronous CONGEST model of distributed
// computing (Peleg 2000), the model of the paper. An n-node network runs in
// lock-step rounds; in each round every node may send one small message
// (O(log n) bits) along each incident edge, and messages sent in round r are
// delivered at the start of round r+1.
//
// The simulator enforces the model's constraints — messages may only travel
// along graph edges and may not exceed the per-edge bandwidth — and meters
// rounds, messages, bits, per-node memory and per-node computation via
// package metrics.
//
// # Activity contract (event-driven execution)
//
// The default executor is event-driven: a node's Round method is invoked in
// round r only if (a) at least one message was delivered to it this round,
// (b) it scheduled a wake-up covering r via Context.WakeAt/WakeEvery, or
// (c) r is the Init round (round 0, where every node runs). When the whole
// network is quiet — no messages in flight and no wake-up due — the engine
// skips directly to the next scheduled wake-up, charging the skipped rounds
// to metrics.Counters so round accounting is identical to a dense sweep.
// A round's cost is therefore O(active nodes + delivered messages) instead
// of O(n).
//
// A node program that never calls a wake API is treated as legacy-dense: it
// is invoked every round (and, while any such node is live, the engine
// never skips rounds). Calling WakeAt or WakeEvery — including WakeEvery(0),
// the explicit "message-driven only" declaration — permanently opts the node
// into event-driven scheduling: from then on it is invoked only on delivery
// or at its scheduled wake-ups, so each invocation must arrange the next
// wake-up it needs. Options.DenseSweep restores the dense sweep for every
// node; it is the differential-testing oracle, and a correct program behaves
// byte-identically under both modes because an invocation with an empty
// inbox outside its scheduled wake-ups must be a no-op.
//
// Determinism: a run is a pure function of (graph, node programs, seed).
// Each node receives its own RNG stream split from the run seed, inboxes
// are assembled in sender-id order, and the active set is derived
// single-threaded from deliveries and the wake schedule, so the sequential
// executor, the parallel executor, the event-driven schedule and the dense
// sweep all produce identical executions.
package congest

import (
	"context"
	"errors"
	"fmt"

	"dhc/internal/graph"
	"dhc/internal/metrics"
	"dhc/internal/rng"
	"dhc/internal/wire"
)

// Errors returned by Run. Callers match with errors.Is.
var (
	// ErrRoundLimit means the algorithm did not terminate within MaxRounds.
	ErrRoundLimit = errors.New("congest: round limit exceeded")
	// ErrBandwidth means a node tried to push more bits over one edge in
	// one round than the model allows.
	ErrBandwidth = errors.New("congest: per-edge bandwidth exceeded")
	// ErrNotNeighbor means a node tried to message a non-neighbor.
	ErrNotNeighbor = errors.New("congest: send to non-neighbor")
)

// Envelope is a delivered message together with its sender.
type Envelope struct {
	From graph.NodeID
	Msg  wire.Message
}

// Node is one processor's program. Implementations keep all their state in
// the struct; the simulator calls Init once before round 1 and then Round
// per active round (see the package-level activity contract) until the node
// halts.
type Node interface {
	// Init runs before the first round; the node may send initial messages
	// and declare its wake-up discipline.
	Init(ctx *Context)
	// Round processes the messages delivered this round and may send more.
	// Under event-driven execution it runs only on delivery or at a
	// scheduled wake-up.
	Round(ctx *Context, inbox []Envelope)
}

// Context is a node's per-round handle to the simulator. It is only valid
// during the Init or Round call that received it.
type Context struct {
	net    *Network
	id     graph.NodeID
	round  int64
	rng    *rng.Source
	outbox []routedMsg
	halted bool
	err    error

	// per-call wake-up requests, consumed by the scheduler
	wakeAt       int64 // earliest requested wake round (0 = none this call)
	wakeEvery    int64 // requested standing interval (meaningful iff wakeEverySet)
	wakeEverySet bool
	wakeDeclared bool // any wake API call this invocation

	// per-call metric deltas, merged by the executor
	memWords int64
	workOps  int64
}

type routedMsg struct {
	from, to graph.NodeID
	msg      wire.Message
}

// ID returns this node's identifier.
func (c *Context) ID() graph.NodeID { return c.id }

// Round returns the current round number (0 during Init).
func (c *Context) Round() int64 { return c.round }

// N returns the network size, which the paper assumes is global knowledge.
func (c *Context) N() int { return c.net.g.N() }

// Degree returns this node's degree.
func (c *Context) Degree() int { return c.net.g.Degree(c.id) }

// Neighbors returns this node's neighbor list (shared; do not modify).
func (c *Context) Neighbors() []graph.NodeID { return c.net.g.Neighbors(c.id) }

// HasNeighbor reports whether v is adjacent.
func (c *Context) HasNeighbor(v graph.NodeID) bool { return c.net.g.HasEdge(c.id, v) }

// Rand returns this node's private deterministic RNG stream.
func (c *Context) Rand() *rng.Source { return c.rng }

// Send queues a message to neighbor `to` for delivery next round. Sending to
// a non-neighbor records ErrNotNeighbor and aborts the run after this round.
func (c *Context) Send(to graph.NodeID, m wire.Message) {
	if !c.net.g.HasEdge(c.id, to) {
		if c.err == nil {
			c.err = fmt.Errorf("%w: %d -> %d (%s)", ErrNotNeighbor, c.id, to, m)
		}
		return
	}
	c.outbox = append(c.outbox, routedMsg{from: c.id, to: to, msg: m})
}

// Halt marks this node finished; it will receive no further Round calls.
// The run ends when every node has halted.
func (c *Context) Halt() { c.halted = true }

// Halted reports whether Halt was called during this invocation, so shared
// wake-arming helpers can skip scheduling for a finished node.
func (c *Context) Halted() bool { return c.halted }

// WakeAt guarantees this node is invoked no later than the given absolute
// round, even if no message is delivered to it. Requests for the current
// round or earlier mean "next round". Multiple calls keep the earliest
// round; an earlier wake-up already pending is never postponed. The first
// wake-API call permanently opts the node into event-driven scheduling (see
// the package doc).
func (c *Context) WakeAt(round int64) {
	c.wakeDeclared = true
	if round <= c.round {
		round = c.round + 1
	}
	if c.wakeAt == 0 || round < c.wakeAt {
		c.wakeAt = round
	}
}

// WakeEvery installs a standing wake-up: at most `interval` rounds pass
// between invocations of this node (WakeEvery(1) keeps the node dense).
// interval <= 0 clears the standing wake-up — WakeEvery(0) is the explicit
// "message-driven only" declaration, opting the node into event-driven
// scheduling without scheduling any wake-up. The interval persists until
// changed by a later call.
func (c *Context) WakeEvery(interval int64) {
	c.wakeDeclared = true
	if interval < 0 {
		interval = 0
	}
	c.wakeEverySet = true
	c.wakeEvery = interval
}

// WakeAtOrSleep arms a wake-up at round w when w > 0 and otherwise declares
// the node message-driven (WakeEvery(0)) — the canonical re-arm idiom for
// programs whose nextWake helpers return 0 to mean "no self-scheduled work".
func (c *Context) WakeAtOrSleep(w int64) {
	if w > 0 {
		c.WakeAt(w)
	} else {
		c.WakeEvery(0)
	}
}

// reset prepares a persistent context for this round's Init/Round call,
// keeping the outbox's backing array.
func (c *Context) reset(round int64) {
	c.round = round
	c.outbox = c.outbox[:0]
	c.halted = false
	c.err = nil
	c.wakeAt = 0
	c.wakeEvery = 0
	c.wakeEverySet = false
	c.wakeDeclared = false
	c.memWords = 0
	c.workOps = 0
}

// ObserveMemory reports the node's current retained state size in words; the
// simulator keeps the high-water mark per node.
func (c *Context) ObserveMemory(words int64) {
	if words > c.memWords {
		c.memWords = words
	}
}

// AddWork charges local computation to this node, for load-balance metrics.
func (c *Context) AddWork(ops int64) { c.workOps += ops }

// Runner executes a bound network: Reset binds a graph and one program per
// vertex, RunContext runs the execution to completion. *Network is the
// in-process implementation; the distributed engine (internal/dist) provides
// one that partitions the vertex set across shard workers behind real
// transports. Drivers program against this seam so a session can swap
// execution engines without touching algorithm code — and the two
// implementations are held byte-identical by differential tests.
type Runner interface {
	Reset(g *graph.Graph, nodes []Node, opts Options) error
	RunContext(ctx context.Context, seed uint64) (*metrics.Counters, error)
}

// Options configures a Network.
type Options struct {
	// BandwidthBits is the per-edge per-direction per-round budget.
	// Zero selects the default 8 * ceil(log2 n) bits, a constant number of
	// node ids — the standard CONGEST allowance.
	BandwidthBits int64
	// MaxRounds aborts runs that fail to terminate. Zero selects
	// 64 * n * ceil(log2 n) + 1024, comfortably above every algorithm's
	// bound on its intended inputs.
	MaxRounds int64
	// Workers > 1 enables the parallel executor with that many goroutines.
	Workers int
	// DenseSweep disables event-driven scheduling: every live node is
	// invoked every round and no rounds are skipped, exactly the historical
	// O(n)-per-round sweep. It is the differential-testing oracle for the
	// event-driven engine — both modes must produce byte-identical cycles,
	// rounds, and message/bit counters.
	DenseSweep bool
	// FaultHook, if non-nil, intercepts every delivery: return false to
	// drop the message, or return a mutated copy. Used by robustness tests.
	FaultHook func(round int64, from, to graph.NodeID, m wire.Message) (wire.Message, bool)
	// Progress, if non-nil, is called with the charged round total at the
	// engine's amortized checkpoint (every ctxCheckEvery executed rounds,
	// the same cadence cancellation is polled at). It observes only — a run
	// is byte-identical with or without it — and must be fast: it runs on
	// the engine's round loop.
	Progress func(rounds int64)
}

// Network binds node programs to a graph and executes rounds. A Network is
// reusable: Reset rebinds it to a new graph and program set, and runs on a
// same-sized graph recycle the per-run arena (persistent node Contexts, inbox
// buckets, the wake-schedule heap, the outbox concatenation buffer, the
// bandwidth stamps) instead of reallocating it, which is what makes repeated
// solver trials cheap. A Network is not safe for concurrent runs.
type Network struct {
	g     *graph.Graph
	nodes []Node
	codec wire.Codec
	opts  Options
	// arena is the reusable per-run storage; nil until the first run, and
	// dropped when Reset changes the network size.
	arena *runState
}

var _ Runner = (*Network)(nil)

// ctxCheckEvery is the engine's amortized checkpoint cadence: cancellation is
// polled and Progress fired once per this many executed rounds, so the hot
// loop pays one context poll per batch instead of per round and a run that is
// never cancelled stays byte-identical to one run without a context.
const ctxCheckEvery = 64

// NewNetwork creates a network over g with one Node program per vertex.
// len(nodes) must equal g.N().
func NewNetwork(g *graph.Graph, nodes []Node, opts Options) (*Network, error) {
	n := &Network{}
	if err := n.Reset(g, nodes, opts); err != nil {
		return nil, err
	}
	return n, nil
}

// Reset rebinds the network to a new graph and program set, normalizing opts
// exactly like NewNetwork. When the vertex count is unchanged the codec and
// the per-run arena are kept, so the next run reuses every engine-side
// allocation; a size change drops both.
func (n *Network) Reset(g *graph.Graph, nodes []Node, opts Options) error {
	if len(nodes) != g.N() {
		return fmt.Errorf("congest: %d node programs for %d vertices", len(nodes), g.N())
	}
	if n.g == nil || n.g.N() != g.N() {
		n.codec = wire.NewCodec(g.N())
		n.arena = nil
	}
	n.g, n.nodes, n.opts = g, nodes, NormalizeOptions(opts, g.N())
	return nil
}

// NormalizeOptions fills the size-derived defaults of opts for an n-vertex
// network: the CONGEST bandwidth budget, the round watchdog, and the worker
// floor. Network.Reset applies it; the distributed engine's coordinator and
// shard workers call it too, so every execution engine derives identical
// budgets from identical inputs — a precondition for byte-identical runs.
func NormalizeOptions(opts Options, n int) Options {
	codec := wire.NewCodec(n)
	if opts.BandwidthBits == 0 {
		opts.BandwidthBits = int64(8 * codec.IDBits)
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 64*int64(n)*int64(codec.IDBits) + 1024
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	return opts
}

// Codec returns the codec sizing messages for this network.
func (n *Network) Codec() wire.Codec { return n.codec }

// Run executes the network until every node halts. It returns the metered
// counters; on failure the counters reflect the partial run.
func (n *Network) Run(seed uint64) (*metrics.Counters, error) {
	return n.RunContext(context.Background(), seed)
}

// RunContext is Run with cooperative cancellation: ctx is polled at the
// amortized checkpoint (every ctxCheckEvery executed rounds), and a cancelled
// run stops between rounds and returns ctx's error (matchable with errors.Is
// against context.Canceled / context.DeadlineExceeded) with the counters of
// the partial run. Cancellation never corrupts the network: the next run
// resets the arena, so an uncancelled rerun of the same seed is byte-identical
// to a run that was never cancelled.
func (n *Network) RunContext(ctx context.Context, seed uint64) (*metrics.Counters, error) {
	state, exec, counters := n.newRun(seed)
	if err := ctx.Err(); err != nil {
		return counters, fmt.Errorf("congest: run canceled before round 0: %w", err)
	}

	// Init phase (round 0).
	if err := exec.step(0, true); err != nil {
		return counters, err
	}
	sinceCheck := 0
	for round := int64(1); ; round++ {
		if state.live == 0 {
			return counters, nil
		}
		if round > n.opts.MaxRounds {
			return counters, fmt.Errorf("%w: %d rounds", ErrRoundLimit, n.opts.MaxRounds)
		}
		if !n.opts.DenseSweep {
			next, ok := state.nextActiveRound(round)
			if !ok || next > n.opts.MaxRounds {
				// No activity before the budget: the dense sweep would spin
				// through no-op rounds to the limit; charge them and stop.
				counters.Rounds += n.opts.MaxRounds - round + 1
				counters.RoundsSkipped += n.opts.MaxRounds - round + 1
				return counters, fmt.Errorf("%w: %d rounds", ErrRoundLimit, n.opts.MaxRounds)
			}
			// Skip directly to the next active round, charging the quiet
			// rounds so accounting matches the dense sweep bit for bit.
			counters.Rounds += next - round + 1
			counters.RoundsSkipped += next - round
			round = next
		} else {
			counters.Rounds++
		}
		if sinceCheck++; sinceCheck >= ctxCheckEvery {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return counters, fmt.Errorf("congest: run canceled in round %d: %w", round, err)
			}
			if n.opts.Progress != nil {
				n.opts.Progress(counters.Rounds)
			}
		}
		if err := exec.step(round, false); err != nil {
			return counters, err
		}
	}
}

// newRun readies the per-run storage and executor driving one execution,
// recycling the arena of a previous same-sized run; split from Run so
// white-box tests can step rounds individually.
func (n *Network) newRun(seed uint64) (*runState, *executor, *metrics.Counters) {
	N := n.g.N()
	counters := metrics.NewCounters(N)
	if n.arena == nil {
		n.arena = newRunState(N)
		for v := 0; v < N; v++ {
			n.arena.rngs[v] = &rng.Source{}
			n.arena.ctxs[v] = &Context{net: n, id: graph.NodeID(v), rng: n.arena.rngs[v]}
		}
	}
	state := n.arena
	state.reset()
	root := rng.New(seed)
	for v := 0; v < N; v++ {
		root.SplitInto(state.rngs[v], uint64(v))
	}
	return state, newExecutor(n, state, counters), counters
}

// runState is the engine's mutable per-run storage. Everything here is
// reused round over round — contexts keep their outbox capacity, inbox
// buckets recycle their backing arrays, and the bandwidth stamps are flat
// arrays — so a round's allocations are bounded by growth in message volume,
// not by n or by round count.
type runState struct {
	halted []bool
	live   int // number of non-halted nodes
	rngs   []*rng.Source
	// inboxes[v] is node v's current inbox bucket. deliver appends envelopes
	// in sender-id order (the outbox concatenation is already sender-sorted)
	// and the executor truncates the bucket back to length 0 after the node
	// consumed it, recycling the backing array.
	inboxes [][]Envelope
	// ctxs are the persistent per-node contexts: each is reset and reused
	// every invocation so outbox capacity survives. A Context is documented
	// as valid only during the Init/Round call, which makes reuse safe.
	ctxs []*Context
	// out is the reused node-id-ordered outbox concatenation buffer.
	out []routedMsg
	// msgActive lists the receivers of the messages delivered for the next
	// round (appended on first delivery to an empty bucket; never contains
	// halted nodes or duplicates).
	msgActive []int32
	// active is the reused active-set buffer built by the executor.
	active []int32
	// dueScratch is a reused buffer for draining due wakes in dense rounds.
	dueScratch []int32
	// inActive marks membership while the active set is assembled.
	inActive []bool
	// sched is the wake-up schedule of the event-driven executor.
	sched scheduler
	// Bandwidth accounting scratch: bwBits[to] accumulates the bits the
	// current sender pushed to `to` this round, valid while bwStamp[to]
	// equals the current sender generation. Generations never repeat, so
	// the arrays need no clearing between senders or rounds.
	bwStamp []int64
	bwBits  []int64
	bwGen   int64
}

func newRunState(n int) *runState {
	return &runState{
		halted:   make([]bool, n),
		live:     n,
		rngs:     make([]*rng.Source, n),
		inboxes:  make([][]Envelope, n),
		ctxs:     make([]*Context, n),
		inActive: make([]bool, n),
		sched:    newScheduler(n),
		bwStamp:  make([]int64, n),
		bwBits:   make([]int64, n),
	}
}

// reset restores the arena to its pre-run state while keeping every backing
// array (inbox buckets, outbox concatenation buffer, heap storage, context
// outboxes), so a rerun on a same-sized graph allocates nothing up front.
// The bandwidth stamps are left as-is: generations are monotonically
// increasing across runs, so stale stamps can never match a fresh generation.
func (s *runState) reset() {
	n := len(s.halted)
	for v := 0; v < n; v++ {
		s.halted[v] = false
		s.inActive[v] = false
		s.inboxes[v] = s.inboxes[v][:0]
	}
	s.live = n
	s.out = s.out[:0]
	s.msgActive = s.msgActive[:0]
	s.active = s.active[:0]
	s.dueScratch = s.dueScratch[:0]
	s.sched.reset()
}

// nextActiveRound returns the earliest round >= round in which any node must
// be invoked: `round` itself when messages are in flight or a legacy-dense
// node is live, else the earliest scheduled wake-up. ok is false when no
// activity can ever occur again (every live node is asleep with no wake-up).
func (s *runState) nextActiveRound(round int64) (int64, bool) {
	if len(s.msgActive) > 0 || s.sched.legacyLive > 0 {
		return round, true
	}
	w, ok := s.sched.earliestWake(s.halted)
	if !ok {
		return 0, false
	}
	if w < round {
		w = round
	}
	return w, true
}

// deliver routes the sender-ordered outbox concatenation into next-round
// inbox buckets, applying fault hooks and bandwidth enforcement. Called
// single-threaded. It performs no comparison sort and, at steady state, no
// allocations: `out` is grouped by sender in ascending id order (the merge
// loop concatenates outboxes in active-set order), so appending each
// envelope to its receiver's recycled bucket yields sender-sorted inboxes
// for free, and per-edge budgets are tracked with generation-stamped flat
// arrays instead of a per-round map.
func (n *Network) deliver(round int64, out []routedMsg, state *runState, counters *metrics.Counters) error {
	curFrom := graph.NodeID(-1)
	for i := range out {
		rm := &out[i]
		msg := rm.msg
		if n.opts.FaultHook != nil {
			var deliverIt bool
			msg, deliverIt = n.opts.FaultHook(round, rm.from, rm.to, msg)
			if !deliverIt {
				continue
			}
		}
		sz := n.codec.Bits(msg)
		if rm.from != curFrom {
			curFrom = rm.from
			state.bwGen++
		}
		if state.bwStamp[rm.to] != state.bwGen {
			state.bwStamp[rm.to] = state.bwGen
			state.bwBits[rm.to] = 0
		}
		state.bwBits[rm.to] += sz
		if state.bwBits[rm.to] > n.opts.BandwidthBits {
			return fmt.Errorf("%w: edge %d->%d carried %d bits in round %d (budget %d)",
				ErrBandwidth, rm.from, rm.to, state.bwBits[rm.to], round, n.opts.BandwidthBits)
		}
		counters.AddMessage(sz)
		if state.halted[rm.to] {
			continue // metered, but a halted node consumes nothing
		}
		if len(state.inboxes[rm.to]) == 0 {
			state.msgActive = append(state.msgActive, int32(rm.to))
		}
		state.inboxes[rm.to] = append(state.inboxes[rm.to], Envelope{From: rm.from, Msg: msg})
	}
	return nil
}
