package dist

import (
	"errors"
	"net"
	"strings"
	"testing"

	"dhc/internal/congest"
)

// pipeCoordinator wires a coordinator to k scripted workers over in-memory
// net.Pipe connections: the real link ioLoops and frame codec run, but the
// worker side is a test script instead of a shard — the cheapest way to
// exercise the coordinator's error aggregation exactly.
func pipeCoordinator(t *testing.T, n, k int) (*coordinator, []*frameConn) {
	t.Helper()
	links := make([]*link, k)
	workers := make([]*frameConn, k)
	conns := make([]net.Conn, 0, 2*k)
	for i := 0; i < k; i++ {
		a, b := net.Pipe()
		conns = append(conns, a, b)
		lo, hi := shardRange(n, k, i)
		links[i] = &link{shard: i, lo: lo, hi: hi, fc: newFrameConn(a)}
		workers[i] = newFrameConn(b)
	}
	coord := newCoordinator(links, n, congest.Options{BandwidthBits: 64}, nil)
	coord.start()
	t.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
		coord.stop()
	})
	return coord, workers
}

// respond consumes frames until a FUSE arrives, answers it with the scripted
// reply, and exits. Connection errors end the script (the test's cleanup
// closes the pipes).
func respond(fc *frameConn, reply []byte) {
	for {
		payload, err := fc.recv()
		if err != nil {
			return
		}
		if len(payload) > 0 && payload[0] == frameFuse {
			_ = fc.send(reply)
			return
		}
	}
}

// fuseReply crafts a complete FUSE reply frame with the given error stage,
// code and message, no halts, no wake, and an empty outbound batch.
func fuseReply(stage, code byte, msg string, live uint32) []byte {
	var e enc
	e.u8(frameFuseRes)
	e.u8(stage)
	e.u8(code)
	e.str(msg)
	e.u32(live)
	e.u32(0) // legacyLive
	e.u32(0) // newly halted count
	e.bool(false)
	e.bool(false)
	e.i64(0)
	e.b = appendBatchDelta(e.b, nil)
	return e.b
}

// TestFuseStepErrorLowestShardWins: when several shards report step-stage
// errors in the same fused exchange, the lowest shard's error is the
// globally first one (shard ranges are ascending and each shard reports its
// first error in local node order), so it must be the one returned.
func TestFuseStepErrorLowestShardWins(t *testing.T) {
	coord, workers := pipeCoordinator(t, 30, 3)
	replies := [][]byte{
		fuseReply(stageNone, errCodeNone, "", 10),
		fuseReply(stageStep, errCodeOther, "shard1 exploded", 0),
		fuseReply(stageStep, errCodeOther, "shard2 exploded", 0),
	}
	for i, fc := range workers {
		go respond(fc, replies[i])
	}
	err := coord.fuseRound(-1, 0, true, true)
	if err == nil || err.Error() != "shard1 exploded" {
		t.Fatalf("fuseRound = %v, want shard 1's step error", err)
	}
}

// TestFuseDeliverErrorBeatsStep: a deliver-stage error from any shard
// precedes every step-stage error, regardless of shard order, because round
// r's deliver runs before round r+1's step in the in-process engine. The
// sentinel identity must survive the wire.
func TestFuseDeliverErrorBeatsStep(t *testing.T) {
	coord, workers := pipeCoordinator(t, 20, 2)
	replies := [][]byte{
		fuseReply(stageStep, errCodeOther, "step boom", 0),
		fuseReply(stageDeliver, errCodeBandwidth, "congest: bandwidth exceeded: edge 3->12", 0),
	}
	for i, fc := range workers {
		go respond(fc, replies[i])
	}
	err := coord.fuseRound(0, 1, false, true)
	if err == nil || !errors.Is(err, congest.ErrBandwidth) {
		t.Fatalf("fuseRound = %v, want shard 1's deliver-stage bandwidth error", err)
	}
	if strings.Contains(err.Error(), "step boom") {
		t.Fatalf("step-stage error won over deliver-stage: %v", err)
	}
}

// TestFuseTruncatedReplyIsShardDown: a reply frame that ends mid-field is a
// transport fault, not an algorithm error — it must surface as ErrShardDown
// carrying the exchange's stage label and the shard index.
func TestFuseTruncatedReplyIsShardDown(t *testing.T) {
	coord, workers := pipeCoordinator(t, 20, 2)
	replies := [][]byte{
		fuseReply(stageNone, errCodeNone, "", 10),
		{frameFuseRes, stageNone}, // ends before the error code
	}
	for i, fc := range workers {
		go respond(fc, replies[i])
	}
	err := coord.fuseRound(-1, 0, true, true)
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("truncated reply returned %v, want ErrShardDown", err)
	}
	if !strings.Contains(err.Error(), "fuse reply") || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("truncated reply lost its stage/shard label: %v", err)
	}
}

// TestShardTableMatchesPartition is the property test for the precomputed
// routing table: for adversarial (n, k) including k > n, every vertex must
// map to the shard whose lo(i) = i*n/k range contains it.
func TestShardTableMatchesPartition(t *testing.T) {
	cases := [][2]int{
		{1, 1}, {2, 5}, {3, 8}, {5, 2}, {10, 10}, {16, 3},
		{17, 4}, {64, 5}, {97, 7}, {100, 101}, {1000, 13},
	}
	for _, c := range cases {
		n, k := c[0], c[1]
		table := buildShardTable(n, k)
		if len(table) != n {
			t.Fatalf("(n=%d,k=%d): table has %d entries", n, k, len(table))
		}
		for v := 0; v < n; v++ {
			i := int(table[v])
			if i < 0 || i >= k {
				t.Fatalf("(n=%d,k=%d): vertex %d mapped to shard %d of %d", n, k, v, i, k)
			}
			lo, hi := shardRange(n, k, i)
			if v < lo || v >= hi {
				t.Fatalf("(n=%d,k=%d): vertex %d mapped to shard %d with range [%d,%d)", n, k, v, i, lo, hi)
			}
			if v > 0 && int(table[v-1]) > i {
				t.Fatalf("(n=%d,k=%d): table not monotone at vertex %d", n, k, v)
			}
		}
	}
}
