package dist

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"strconv"

	"dhc/internal/congest"
	"dhc/internal/core"
	"dhc/internal/dra"
	"dhc/internal/graph"
)

// sendConfig ships a proc worker everything it needs to reconstruct its
// shard: the graph (edge-list text), the shard range, the network options
// that cross a process boundary, and the program spec. Program specs are
// uniform across a run's nodes (sessions bind every vertex with the same
// options), so one spec — taken from the shard's first vertex — reconstructs
// the whole range.
func (c *Cluster) sendConfig(l *link) error {
	spec := c.nodes[l.lo].(congest.PortableProgram).DistSpec()
	var gbuf bytes.Buffer
	if err := c.g.WriteEdgeList(&gbuf); err != nil {
		return fmt.Errorf("dist: encode graph: %w", err)
	}
	l.enc.b = l.enc.b[:0]
	l.enc.u8(frameConfig)
	l.enc.u32(uint32(l.lo))
	l.enc.u32(uint32(l.hi))
	l.enc.i64(c.net.BandwidthBits)
	l.enc.i64(c.net.MaxRounds)
	l.enc.bool(c.net.DenseSweep)
	l.enc.str(spec.Algo)
	l.enc.i32(spec.NumColors)
	l.enc.i64(spec.B)
	l.enc.i64(spec.MaxSteps)
	l.enc.bytes(gbuf.Bytes())
	if err := l.fc.send(l.enc.b); err != nil {
		return l.down("config", err)
	}
	return nil
}

// restoreFinals replays each worker process's terminal program states into
// the driver's own program structs, so result extraction runs on the parent
// side exactly as it does after an in-process run.
func (c *Cluster) restoreFinals(links []*link) error {
	for _, l := range links {
		rest := l.final
		for v := l.lo; v < l.hi; v++ {
			var err error
			rest, err = c.nodes[v].(congest.PortableProgram).RestoreFinal(rest)
			if err != nil {
				return fmt.Errorf("dist: shard %d final state, node %d: %w", l.shard, v, err)
			}
		}
		if len(rest) != 0 {
			return fmt.Errorf("dist: shard %d final state has %d trailing bytes", l.shard, len(rest))
		}
	}
	return nil
}

// BuildPrograms reconstructs the node programs of vertices [lo, hi) from a
// portable spec — the worker-process half of sendConfig. Only algorithms
// whose programs implement congest.PortableProgram are reachable here.
func BuildPrograms(spec congest.ProgramSpec, lo, hi int) ([]congest.Node, error) {
	nodes := make([]congest.Node, hi-lo)
	switch spec.Algo {
	case "dra":
		for i := range nodes {
			nodes[i] = dra.NewNode(dra.NodeOptions{BroadcastRounds: spec.B, MaxSteps: spec.MaxSteps})
		}
	case "dhc2":
		for i := range nodes {
			nodes[i] = core.NewDHC2Node(spec)
		}
	default:
		return nil, fmt.Errorf("dist: no portable program for algorithm %q", spec.Algo)
	}
	return nodes, nil
}

// FaultFromEnv reads the HCSHARD_FAULT_ROUND / HCSHARD_FAULT_MODE injection
// a test harness plants in a worker process's environment (nil when absent).
func FaultFromEnv() *FaultPlan {
	mode := os.Getenv("HCSHARD_FAULT_MODE")
	if mode == "" {
		return nil
	}
	round, err := strconv.ParseInt(os.Getenv("HCSHARD_FAULT_ROUND"), 10, 64)
	if err != nil {
		round = 0
	}
	return &FaultPlan{Round: round, Mode: mode}
}

// RunWorker is the hcshard process body: dial already done by the caller, it
// performs the hello/config handshake, rebuilds the shard, and serves frames
// until the coordinator finishes or the connection dies.
func RunWorker(conn net.Conn, shardIdx int, fault *FaultPlan) error {
	fc := newFrameConn(conn)
	var e enc
	e.u8(frameHello)
	e.u32(uint32(shardIdx))
	if err := fc.send(e.b); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	payload, err := fc.recv()
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	d := dec{b: payload}
	if tag := d.u8(); tag != frameConfig {
		return fmt.Errorf("config: unexpected frame %d", tag)
	}
	lo := int(d.u32())
	hi := int(d.u32())
	opts := congest.Options{
		BandwidthBits: d.i64(),
		MaxRounds:     d.i64(),
		DenseSweep:    d.bool(),
	}
	spec := congest.ProgramSpec{
		Algo:      d.str(),
		NumColors: d.i32(),
		B:         d.i64(),
		MaxSteps:  d.i64(),
	}
	gtext := d.lenPrefixed()
	if d.err != nil {
		return fmt.Errorf("config: %w", d.err)
	}
	g, err := graph.ReadEdgeList(bytes.NewReader(gtext))
	if err != nil {
		return fmt.Errorf("config graph: %w", err)
	}
	if lo < 0 || hi > g.N() || lo >= hi {
		return fmt.Errorf("config range [%d,%d) invalid for %d vertices", lo, hi, g.N())
	}
	progs, err := BuildPrograms(spec, lo, hi)
	if err != nil {
		return err
	}
	shard, err := congest.NewShard(g, progs, opts, lo, hi)
	if err != nil {
		return err
	}
	return serveFrames(fc, shard, ServeOptions{
		Fault: fault,
		FinalState: func() []byte {
			var out []byte
			for _, p := range progs {
				out = p.(congest.PortableProgram).AppendFinal(out)
			}
			return out
		},
	})
}
