package dist

import (
	"errors"
	"fmt"
	"io"
	"time"

	"dhc/internal/congest"
	"dhc/internal/metrics"
)

// FaultPlan injects a shard failure for chaos and classification tests: at
// the fused frame whose step half executes round Round, the selected shard
// either crashes (drops its connection) or hangs (stops replying until torn
// down). The coordinator
// must turn either into a classified error within its deadline — never a
// hang, never a corrupt partial round.
type FaultPlan struct {
	Shard int
	Round int64
	// Mode is "crash" or "hang".
	Mode string
}

// errFaultCrash is the worker-local error a planned crash returns; the
// coordinator only ever observes the closed connection.
var errFaultCrash = errors.New("dist: fault injection: crash")

// ServeOptions configures one worker's serve loop.
type ServeOptions struct {
	// FinalState, if non-nil, serializes the shard's program states for the
	// FINAL frame (proc transport; goroutine workers share memory and leave
	// it nil).
	FinalState func() []byte
	// Fault, if non-nil, is this worker's injected failure (the caller has
	// already matched the shard index).
	Fault *FaultPlan
	// Unblock, if non-nil, releases a hanging worker at teardown so
	// goroutine-mode tests do not leak a goroutine per injected hang.
	Unblock <-chan struct{}
}

// ServeShard drives one shard over a frame connection until FINISH or ABORT:
// the worker half of the coordinator protocol, shared by goroutine workers
// and the hcshard process. It reports the shard's busy time (time spent
// inside Step/Deliver, as opposed to blocked on the barrier) in the FINAL
// frame.
func ServeShard(rw io.ReadWriter, shard *congest.Shard, opts ServeOptions) error {
	return serveFrames(newFrameConn(rw), shard, opts)
}

// serveFrames is ServeShard over an existing frame connection, for workers
// that already consumed handshake frames through it (a fresh frameConn would
// miss payloads sitting in the old one's read buffer).
func serveFrames(fc *frameConn, shard *congest.Shard, opts ServeOptions) error {
	var (
		e        enc
		batch    []congest.Routed
		busy     time.Duration
		stepErr  error // sticky: a step/deliver error is reported, then the loop idles until teardown
		errStage byte  // which half of a fused exchange stepErr came from
	)
	for {
		payload, err := fc.recv()
		if err != nil {
			return err
		}
		d := dec{b: payload}
		switch tag := d.u8(); tag {
		case frameBegin:
			seed := d.u64()
			if d.err != nil {
				return d.err
			}
			shard.Seed(seed)
		case frameFuse:
			deliverRound := d.i64()
			stepRound := d.i64()
			flags := d.u8()
			if d.err != nil {
				return d.err
			}
			// Faults key on the step round so a "round r" fault plan still
			// means "while executing round r", exactly as under the
			// unfused protocol.
			if f := opts.Fault; f != nil && stepRound >= f.Round {
				switch f.Mode {
				case "hang":
					if opts.Unblock != nil {
						<-opts.Unblock
					} else {
						select {}
					}
					return errFaultCrash
				default:
					return errFaultCrash // the deferred conn close is the crash
				}
			}
			if stepErr == nil && deliverRound >= 0 {
				var derr error
				batch, derr = decodeBatchDelta(&d, shard.N(), batch)
				if derr != nil {
					return derr
				}
				start := time.Now()
				stepErr = shard.Deliver(deliverRound, batch)
				busy += time.Since(start)
				if stepErr != nil {
					errStage = stageDeliver
				}
			}
			var (
				out []congest.Routed
				rep congest.StepReport
			)
			if stepErr == nil {
				start := time.Now()
				out, rep, stepErr = shard.Step(stepRound, flags&stepFlagInit != 0, flags&stepFlagDense != 0)
				busy += time.Since(start)
				if stepErr != nil {
					errStage = stageStep
				}
			}
			e.b = e.b[:0]
			e.u8(frameFuseRes)
			e.u8(errStage)
			code, msg := errToCode(stepErr)
			e.u8(code)
			e.str(msg)
			e.u32(uint32(rep.Live))
			e.u32(uint32(rep.LegacyLive))
			e.u32(uint32(len(rep.NewlyHalted)))
			for _, lv := range rep.NewlyHalted {
				e.u32(uint32(lv))
			}
			e.bool(rep.LocalActive)
			e.bool(rep.WakeOK)
			e.i64(rep.EarliestWake)
			e.b = appendBatchDelta(e.b, out)
			if err := fc.send(e.b); err != nil {
				return err
			}
		case frameFinish:
			deliverRound := d.i64()
			if d.err != nil {
				return d.err
			}
			// The final flush: the in-process engine delivers the last
			// executed round's messages even when every node has halted, so
			// they are metered. Route them here for the same counters.
			if stepErr == nil && deliverRound >= 0 {
				var derr error
				batch, derr = decodeBatchDelta(&d, shard.N(), batch)
				if derr != nil {
					return derr
				}
				start := time.Now()
				stepErr = shard.Deliver(deliverRound, batch)
				busy += time.Since(start)
			}
			e.b = e.b[:0]
			e.u8(frameFinal)
			code, msg := errToCode(stepErr)
			e.u8(code)
			e.str(msg)
			appendCounters(&e, shard.Counters(), shard.Lo(), shard.Hi())
			e.i64(int64(busy))
			local, _ := shard.RoutedSplit()
			e.u64(uint64(local))
			var final []byte
			if opts.FinalState != nil {
				final = opts.FinalState()
			}
			e.bytes(final)
			if err := fc.send(e.b); err != nil {
				return err
			}
			return nil
		case frameAbort:
			return nil
		default:
			return fmt.Errorf("dist: worker received unexpected frame %d", tag)
		}
	}
}

// appendCounters serializes a shard's metering: the scalar totals plus the
// per-node slices of its range.
func appendCounters(e *enc, c *metrics.Counters, lo, hi int) {
	e.i64(c.Invocations)
	e.i64(c.Steps)
	e.i64(c.Messages)
	e.i64(c.Bits)
	e.i64(c.MaxMessageBits)
	mem, work := c.PerNodeRange(lo, hi)
	e.u32(uint32(hi - lo))
	for _, v := range mem {
		e.i64(v)
	}
	for _, v := range work {
		e.i64(v)
	}
}

// decodeCounters merges a FINAL frame's counter section into dst.
func decodeCounters(d *dec, dst *metrics.Counters, lo, hi int) error {
	dst.Invocations += d.i64()
	dst.Steps += d.i64()
	dst.Messages += d.i64()
	dst.Bits += d.i64()
	if mb := d.i64(); mb > dst.MaxMessageBits {
		dst.MaxMessageBits = mb
	}
	k := int(d.u32())
	if d.err != nil {
		return d.err
	}
	if k != hi-lo {
		return fmt.Errorf("dist: shard reported %d per-node entries for range [%d,%d)", k, lo, hi)
	}
	mem := make([]int64, k)
	work := make([]int64, k)
	for i := range mem {
		mem[i] = d.i64()
	}
	for i := range work {
		work[i] = d.i64()
	}
	if d.err != nil {
		return d.err
	}
	dst.SetPerNodeRange(lo, mem, work)
	return nil
}
