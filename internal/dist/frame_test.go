package dist

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/wire"
)

// readOnlyStream adapts a byte slice to io.ReadWriter for decode-side tests.
type readOnlyStream struct{ *bytes.Reader }

func (readOnlyStream) Write(p []byte) (int, error) { return len(p), nil }

func streamOf(raw []byte) readOnlyStream { return readOnlyStream{bytes.NewReader(raw)} }

// TestFrameConnRoundTrip pushes several frames through a frameConn pair over
// one byte stream and checks payloads and traffic metering.
func TestFrameConnRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fc := newFrameConn(&buf)
	payloads := [][]byte{{1}, {2, 3, 4}, bytes.Repeat([]byte{7}, 70000)}
	var want int64
	for _, p := range payloads {
		if err := fc.send(p); err != nil {
			t.Fatalf("send: %v", err)
		}
		want += int64(4 + len(p))
	}
	if fc.bytesOut != want {
		t.Fatalf("bytesOut = %d, want %d", fc.bytesOut, want)
	}
	for i, p := range payloads {
		got, err := fc.recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("recv %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
	if fc.bytesIn != want {
		t.Fatalf("bytesIn = %d, want %d", fc.bytesIn, want)
	}
}

// TestFrameConnRejectsCorruptLengths covers the three corrupt-prefix cases:
// an empty frame, an oversized length, and a truncated payload. None may
// allocate proportionally to the claimed length or succeed.
func TestFrameConnRejectsCorruptLengths(t *testing.T) {
	cases := []struct {
		name    string
		raw     []byte
		wantSub string
	}{
		{"empty", []byte{0, 0, 0, 0}, "empty frame"},
		{"oversized", []byte{0xFF, 0xFF, 0xFF, 0xFF}, "exceeds limit"},
		{"truncated-header", []byte{0, 0}, "EOF"},
		{"truncated-payload", []byte{0, 0, 0, 10, 1, 2, 3}, "EOF"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fc := newFrameConn(streamOf(tc.raw))
			if _, err := fc.recv(); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("recv = %v, want error containing %q", err, tc.wantSub)
			}
		})
	}
}

// randomBatch builds a deterministic pseudo-random routed batch with valid
// kinds, arg counts and endpoints for an n-vertex network.
func randomBatch(r *rand.Rand, n, size int) []congest.Routed {
	kinds := []wire.Kind{
		wire.KindProgress, wire.KindRotation, wire.KindSuccess,
		wire.KindBroadcast, wire.KindToken, wire.KindColor,
	}
	batch := make([]congest.Routed, size)
	for i := range batch {
		args := make([]int32, r.Intn(5))
		for j := range args {
			args[j] = int32(r.Intn(n))
		}
		batch[i] = congest.Routed{
			From: graph.NodeID(r.Intn(n)),
			To:   graph.NodeID(r.Intn(n)),
			Msg:  wire.Msg(kinds[r.Intn(len(kinds))], args...),
		}
	}
	return batch
}

// TestBatchRoundTrip encodes random batches and decodes them back verbatim.
func TestBatchRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	codec := wire.NewCodec(512)
	for trial := 0; trial < 50; trial++ {
		batch := randomBatch(r, 512, r.Intn(40))
		enc := appendBatch(nil, codec, batch)
		d := dec{b: enc}
		got, err := decodeBatch(&d, codec, 512, nil)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(got) != len(batch) {
			t.Fatalf("trial %d: %d records, want %d", trial, len(got), len(batch))
		}
		for i := range got {
			if got[i] != batch[i] {
				t.Fatalf("trial %d record %d: %+v != %+v", trial, i, got[i], batch[i])
			}
		}
		if len(d.b) != 0 {
			t.Fatalf("trial %d: %d trailing bytes", trial, len(d.b))
		}
	}
}

// TestBatchTruncationAlwaysErrors is the truncation property: every strict
// prefix of a valid batch encoding must decode to an error — never a panic,
// never a silently shortened batch.
func TestBatchTruncationAlwaysErrors(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	codec := wire.NewCodec(128)
	full := appendBatch(nil, codec, randomBatch(r, 128, 12))
	for cut := 0; cut < len(full); cut++ {
		d := dec{b: full[:cut]}
		if _, err := decodeBatch(&d, codec, 128, nil); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

// TestBatchInterleaved decodes several shards' batch sections written
// back-to-back in one payload — the coordinator's DELIVER layout — and checks
// that each section decodes to exactly its own records and that shard-order
// concatenation preserves the global sender-ascending order the in-process
// deliver consumes.
func TestBatchInterleaved(t *testing.T) {
	const n, shards = 120, 4
	codec := wire.NewCodec(n)
	r := rand.New(rand.NewSource(99))
	var payload []byte
	var want []congest.Routed
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		batch := randomBatch(r, n, 10)
		// Senders confined to the shard's range, ascending, as Step emits.
		for i := range batch {
			batch[i].From = graph.NodeID(lo + i*(hi-lo)/len(batch))
		}
		payload = appendBatch(payload, codec, batch)
		want = append(want, batch...)
	}
	d := dec{b: payload}
	var got []congest.Routed
	for s := 0; s < shards; s++ {
		part, err := decodeBatch(&d, codec, n, nil)
		if err != nil {
			t.Fatalf("section %d: %v", s, err)
		}
		got = append(got, part...)
	}
	if len(d.b) != 0 {
		t.Fatalf("%d trailing bytes after %d sections", len(d.b), shards)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].From < got[i-1].From {
			t.Fatalf("sender order violated at %d: %d after %d", i, got[i].From, got[i-1].From)
		}
	}
}

// TestDecodeBatchRejectsCorruptRecords covers the decoder's validation: a
// lying count, an impossible arg count, an unknown message kind, and
// out-of-range endpoints.
func TestDecodeBatchRejectsCorruptRecords(t *testing.T) {
	codec := wire.NewCodec(16)
	valid := func() []byte {
		return appendBatch(nil, codec, []congest.Routed{
			{From: 1, To: 2, Msg: wire.Msg(wire.KindToken, 3)},
		})
	}
	t.Run("count-beyond-capacity", func(t *testing.T) {
		enc := valid()
		enc[0], enc[1], enc[2], enc[3] = 0x7F, 0xFF, 0xFF, 0xFF
		d := dec{b: enc}
		if _, err := decodeBatch(&d, codec, 16, nil); err == nil || !strings.Contains(err.Error(), "exceeds frame capacity") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("nargs-too-large", func(t *testing.T) {
		enc := valid()
		enc[4+4+4+1] = 9 // arg-count byte of the first record
		d := dec{b: enc}
		if _, err := decodeBatch(&d, codec, 16, nil); err == nil || !strings.Contains(err.Error(), "corrupt message record") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("unknown-kind", func(t *testing.T) {
		enc := valid()
		enc[4+4+4] = 0xEE // kind byte of the first record
		d := dec{b: enc}
		if _, err := decodeBatch(&d, codec, 16, nil); err == nil || !strings.Contains(err.Error(), "unknown kind") {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("endpoint-out-of-range", func(t *testing.T) {
		enc := appendBatch(nil, codec, []congest.Routed{
			{From: 1, To: 15, Msg: wire.Msg(wire.KindToken, 3)},
		})
		d := dec{b: enc}
		if _, err := decodeBatch(&d, codec, 8, nil); err == nil || !strings.Contains(err.Error(), "outside") {
			t.Fatalf("got %v", err)
		}
	})
}

// FuzzDecodeBatch feeds arbitrary bytes to the batch decoder. The invariants:
// no panic, and any successful decode yields only in-range endpoints and
// messages the codec itself validates.
func FuzzDecodeBatch(f *testing.F) {
	codec := wire.NewCodec(64)
	r := rand.New(rand.NewSource(3))
	f.Add([]byte{})
	f.Add(appendBatch(nil, codec, randomBatch(r, 64, 5)))
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 2, 3, 1, 0, 0, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := dec{b: data}
		batch, err := decodeBatch(&d, codec, 64, nil)
		if err != nil {
			return
		}
		for i, rec := range batch {
			if rec.From < 0 || int(rec.From) >= 64 || rec.To < 0 || int(rec.To) >= 64 {
				t.Fatalf("record %d has out-of-range endpoints %d->%d", i, rec.From, rec.To)
			}
			if rec.Msg.NArgs > 4 {
				t.Fatalf("record %d has %d args", i, rec.Msg.NArgs)
			}
		}
	})
}

// sortedBatch is randomBatch with senders made non-decreasing — the
// precondition the delta encoder inherits from Step's sender-ascending
// outboxes.
func sortedBatch(r *rand.Rand, n, size int) []congest.Routed {
	batch := randomBatch(r, n, size)
	sort.Slice(batch, func(i, j int) bool { return batch[i].From < batch[j].From })
	return batch
}

// TestBatchDeltaRoundTrip encodes sender-ascending random batches with the
// delta-varint codec and decodes them back verbatim, and pins the point of
// the encoding: it is never larger than the fixed-width reference.
func TestBatchDeltaRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		batch := sortedBatch(r, 512, r.Intn(40))
		enc := appendBatchDelta(nil, batch)
		if int64(len(enc)) > fixedBatchLen(batch) {
			t.Fatalf("trial %d: delta form %d bytes exceeds fixed form %d", trial, len(enc), fixedBatchLen(batch))
		}
		d := dec{b: enc}
		got, err := decodeBatchDelta(&d, 512, nil)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(got) != len(batch) {
			t.Fatalf("trial %d: %d records, want %d", trial, len(got), len(batch))
		}
		for i := range got {
			if got[i] != batch[i] {
				t.Fatalf("trial %d record %d: %+v != %+v", trial, i, got[i], batch[i])
			}
		}
		if len(d.b) != 0 {
			t.Fatalf("trial %d: %d trailing bytes", trial, len(d.b))
		}
	}
}

// TestBatchDeltaTruncationAlwaysErrors is the truncation property for the
// delta codec: every strict prefix of a valid encoding must decode to an
// error — truncated varints keep their continuation bit, and a truncated
// record runs out of payload before the count is satisfied.
func TestBatchDeltaTruncationAlwaysErrors(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	full := appendBatchDelta(nil, sortedBatch(r, 128, 12))
	for cut := 0; cut < len(full); cut++ {
		d := dec{b: full[:cut]}
		if _, err := decodeBatchDelta(&d, 128, nil); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

// TestDecodeBatchDeltaRejectsCorrupt covers the delta decoder's validation:
// a lying count, an unknown kind, an impossible arg count, an out-of-range
// endpoint, and an argument outside int32.
func TestDecodeBatchDeltaRejectsCorrupt(t *testing.T) {
	valid := func() []byte {
		return appendBatchDelta(nil, []congest.Routed{
			{From: 1, To: 2, Msg: wire.Msg(wire.KindToken, 3)},
		})
	}
	check := func(t *testing.T, enc []byte, n int, wantSub string) {
		t.Helper()
		d := dec{b: enc}
		if _, err := decodeBatchDelta(&d, n, nil); err == nil || !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("got %v, want error containing %q", err, wantSub)
		}
	}
	t.Run("count-beyond-capacity", func(t *testing.T) {
		enc := valid()
		enc[0] = 0xFF // uvarint count far beyond the payload
		check(t, append([]byte{0xFF, 0xFF, 0x7F}, enc[1:]...), 16, "exceeds frame capacity")
	})
	t.Run("unknown-kind", func(t *testing.T) {
		enc := valid()
		enc[3] = 0xEE // kind byte: count, dFrom, to precede it
		check(t, enc, 16, "unknown kind")
	})
	t.Run("nargs-too-large", func(t *testing.T) {
		enc := valid()
		enc[4] = 9 // arg-count byte
		check(t, enc, 16, "corrupt message record")
	})
	t.Run("endpoint-out-of-range", func(t *testing.T) {
		enc := appendBatchDelta(nil, []congest.Routed{
			{From: 1, To: 15, Msg: wire.Msg(wire.KindToken, 3)},
		})
		check(t, enc, 8, "outside")
	})
	t.Run("arg-outside-int32", func(t *testing.T) {
		enc := valid()[:5] // keep count, dFrom, to, kind, nargs=1
		enc = binary.AppendVarint(enc, int64(1)<<40)
		check(t, enc, 16, "outside int32 range")
	})
}

// corpusBatches runs a real 4-shard DRA round over the actual shard engine
// and returns the delta-encoded wire batches it produces: the fuzz corpus is
// seeded with genuine protocol traffic, not just synthetic records.
func corpusBatches(tb testing.TB) [][]byte {
	const n, k = 32, 4
	g := graph.GNP(n, 0.5, rng.New(9))
	shards := make([]*congest.Shard, k)
	for i := 0; i < k; i++ {
		lo, hi := shardRange(n, k, i)
		progs, err := BuildPrograms(congest.ProgramSpec{Algo: "dra", B: 8}, lo, hi)
		if err != nil {
			tb.Fatal(err)
		}
		sh, err := congest.NewShard(g, progs, congest.Options{BandwidthBits: 64}, lo, hi)
		if err != nil {
			tb.Fatal(err)
		}
		sh.Seed(11)
		shards[i] = sh
	}
	var corpus [][]byte
	step := func(round int64, isInit bool) {
		outs := make([][]congest.Routed, k)
		for i, sh := range shards {
			out, _, err := sh.Step(round, isInit, true)
			if err != nil {
				tb.Fatal(err)
			}
			outs[i] = out
			corpus = append(corpus, appendBatchDelta(nil, out))
		}
		// Route cross-shard traffic and deliver, so the next step produces
		// genuine second-round batches.
		for i, sh := range shards {
			lo, hi := shardRange(n, k, i)
			var inbound []congest.Routed
			for s := 0; s < k; s++ {
				for _, m := range outs[s] {
					if int(m.To) >= lo && int(m.To) < hi {
						inbound = append(inbound, m)
					}
				}
			}
			if err := sh.Deliver(round, inbound); err != nil {
				tb.Fatal(err)
			}
		}
	}
	step(0, true)
	step(1, false)
	return corpus
}

// FuzzDecodeBatchDelta feeds arbitrary bytes to the delta batch decoder,
// seeded with real 4-shard run traffic. The invariants: no panic, and any
// successful decode yields only in-range endpoints, valid kinds, and a
// sender-ascending record order (the structural property routing relies on).
func FuzzDecodeBatchDelta(f *testing.F) {
	r := rand.New(rand.NewSource(3))
	f.Add([]byte{})
	f.Add(appendBatchDelta(nil, sortedBatch(r, 32, 5)))
	for _, b := range corpusBatches(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := dec{b: data}
		batch, err := decodeBatchDelta(&d, 32, nil)
		if err != nil {
			return
		}
		for i, rec := range batch {
			if rec.From < 0 || int(rec.From) >= 32 || rec.To < 0 || int(rec.To) >= 32 {
				t.Fatalf("record %d has out-of-range endpoints %d->%d", i, rec.From, rec.To)
			}
			if !rec.Msg.Kind.Valid() {
				t.Fatalf("record %d has invalid kind %d", i, rec.Msg.Kind)
			}
			if rec.Msg.NArgs > 4 {
				t.Fatalf("record %d has %d args", i, rec.Msg.NArgs)
			}
			if i > 0 && rec.From < batch[i-1].From {
				t.Fatalf("sender order violated at %d: %d after %d", i, rec.From, batch[i-1].From)
			}
		}
	})
}

// FuzzFrameRecv feeds an arbitrary byte stream to the frame reader: it must
// terminate (no hang on a finite stream), never panic, and never hand back a
// payload beyond the frame bound.
func FuzzFrameRecv(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 42})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fc := newFrameConn(streamOf(data))
		for {
			payload, err := fc.recv()
			if err != nil {
				return
			}
			if len(payload) == 0 || len(payload) > maxFramePayload {
				t.Fatalf("recv returned %d-byte payload", len(payload))
			}
		}
	})
}
