// Package dist runs the exact CONGEST engine across real transport
// boundaries: the vertex set is partitioned into K contiguous shards, each
// executed by its own worker — a goroutine behind a unix-domain or TCP
// loopback socket, or a separate OS process running cmd/hcshard — while a
// hub coordinator drives the synchronous round loop over length-prefixed
// frames.
//
// The design goal is byte-identity with the in-process engine, and the
// mechanism is structural: each shard runs congest.Shard — the in-process
// round machinery restricted to a vertex range — and the coordinator
// replicates congest.Network's round loop (round skipping, budget charging,
// the dense/legacy global rule) over ONE fused exchange per executed round:
//
//	FUSE(d, r): every shard first delivers round d's inbound cross-shard
//	            messages (splicing back the messages it retained locally at
//	            step time, reconstructing the global sender-ascending order
//	            the in-process deliver consumes), then builds its local
//	            active set for round r, invokes its nodes, and returns its
//	            cross-shard outbound messages plus the scheduling facts the
//	            coordinator needs (newly-halted nodes, local pending
//	            activity, earliest wake).
//
// Fusing is sound because delivery never touches the scheduler: the
// liveness/wake aggregation the coordinator performs between rounds only
// gates the NEXT fused frame, so a shard can route round d and step round
// r = d+1 in one visit. A final FINISH frame carries the last round's
// deliver so its messages are metered exactly as in-process (the oracle
// delivers even when every node has halted).
//
// The round-barrier handshake is the frame protocol itself: round r+1's
// FUSE frames are sent only after every shard's round-r reply arrived, so no
// shard can observe round r+1 before round r is globally complete. Each link
// runs a dedicated I/O goroutine, so fan-out and reply collection overlap
// across shards; replies are aggregated in shard order for determinism.
//
// Cross-shard batches are delta-varint coded: outboxes are sender-ascending,
// so From is delta-coded and ids/args are varint-coded, shrinking the wire
// form well below the fixed-width reference encoding (appendBatch), which is
// retained as the codec oracle in tests.
//
// The in-process engine remains the oracle: differential tests solve the
// same instances both ways and assert byte-identical results and counters.
package dist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"

	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/wire"
)

// Frame types. Every frame on the wire is a 4-byte big-endian payload length
// followed by the payload, whose first byte is one of these tags.
const (
	frameHello   byte = 1 // worker -> coordinator: u32 shard index
	frameConfig  byte = 2 // coordinator -> proc worker: run configuration + graph
	frameBegin   byte = 3 // coordinator -> worker: u64 seed
	frameFuse    byte = 4 // coordinator -> worker: i64 deliver round (-1 = none), i64 step round, u8 flags, delta batch
	frameFuseRes byte = 5 // worker -> coordinator: stage, err, live, legacyLive, newly halted, local activity, wake, delta batch
	frameFinish  byte = 6 // coordinator -> worker: i64 deliver round (-1 = none), delta batch (final flush)
	frameFinal   byte = 7 // worker -> coordinator: err, counters, busy, local-routed count, final program states
	frameAbort   byte = 8 // coordinator -> worker: tear down
)

// Step flag bits.
const (
	stepFlagInit  byte = 1 << 0
	stepFlagDense byte = 1 << 1
)

// Fused-reply stage labels: which half of a fused exchange an error came
// from. The coordinator aggregates deliver-stage errors ahead of step-stage
// errors to match the in-process engine's observation order (round r's
// deliver fails before round r+1's step runs).
const (
	stageNone    byte = 0
	stageDeliver byte = 1
	stageStep    byte = 2
)

// maxFramePayload bounds a single frame. A round's batch for one shard is at
// most n * bandwidth messages in theory; 64 MiB is far above anything a
// sane instance produces and small enough that a corrupt length prefix
// cannot drive a multi-gigabyte allocation.
const maxFramePayload = 64 << 20

// Wire error codes: congest sentinels must survive the process boundary so
// errors.Is keeps working on the coordinator side.
const (
	errCodeNone        byte = 0
	errCodeNotNeighbor byte = 1
	errCodeBandwidth   byte = 2
	errCodeOther       byte = 3
)

func errToCode(err error) (byte, string) {
	switch {
	case err == nil:
		return errCodeNone, ""
	case errors.Is(err, congest.ErrNotNeighbor):
		return errCodeNotNeighbor, err.Error()
	case errors.Is(err, congest.ErrBandwidth):
		return errCodeBandwidth, err.Error()
	default:
		return errCodeOther, err.Error()
	}
}

// errFromCode reconstructs a shard-side error. The sentinel identity is
// restored exactly; the message text is carried verbatim.
func errFromCode(code byte, msg string) error {
	switch code {
	case errCodeNone:
		return nil
	case errCodeNotNeighbor:
		return fmt.Errorf("%w%s", congest.ErrNotNeighbor, trimSentinel(msg, congest.ErrNotNeighbor.Error()))
	case errCodeBandwidth:
		return fmt.Errorf("%w%s", congest.ErrBandwidth, trimSentinel(msg, congest.ErrBandwidth.Error()))
	default:
		return errors.New(msg)
	}
}

// trimSentinel drops the sentinel prefix from a carried message so the
// reconstructed error renders identically to the original instead of
// repeating the prefix.
func trimSentinel(msg, prefix string) string {
	if len(msg) >= len(prefix) && msg[:len(prefix)] == prefix {
		return msg[len(prefix):]
	}
	return ": " + msg
}

// frameConn frames payloads over a byte stream and meters traffic in both
// directions. Reads go through a bufio.Reader; the receive buffer is reused,
// so a received payload is valid only until the next recv.
type frameConn struct {
	rw       io.ReadWriter
	nc       net.Conn // non-nil when deadlines are available
	br       *bufio.Reader
	rbuf     []byte
	wbuf     []byte
	hdr      [4]byte
	bytesIn  int64
	bytesOut int64
	timeout  time.Duration // per-recv read deadline; 0 = none
}

func newFrameConn(rw io.ReadWriter) *frameConn {
	fc := &frameConn{rw: rw, br: bufio.NewReaderSize(rw, 1<<16)}
	if nc, ok := rw.(net.Conn); ok {
		fc.nc = nc
	}
	return fc
}

// send writes one length-prefixed frame.
func (c *frameConn) send(payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("dist: frame payload %d exceeds limit %d", len(payload), maxFramePayload)
	}
	binary.BigEndian.PutUint32(c.hdr[:], uint32(len(payload)))
	if _, err := c.rw.Write(c.hdr[:]); err != nil {
		return err
	}
	if _, err := c.rw.Write(payload); err != nil {
		return err
	}
	c.bytesOut += int64(4 + len(payload))
	return nil
}

// recv reads one frame into the reused receive buffer. A zero-length or
// oversized frame is a protocol error, never a hang or a giant allocation.
func (c *frameConn) recv() ([]byte, error) {
	if c.nc != nil && c.timeout > 0 {
		if err := c.nc.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
	}
	if _, err := io.ReadFull(c.br, c.hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(c.hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("dist: empty frame")
	}
	if n > maxFramePayload {
		return nil, fmt.Errorf("dist: frame payload %d exceeds limit %d", n, maxFramePayload)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	buf := c.rbuf[:n]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, err
	}
	c.bytesIn += int64(4 + n)
	return buf, nil
}

// enc builds frame payloads in a reusable buffer.
type enc struct{ b []byte }

func (e *enc) u8(v byte)      { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)   { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)   { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)    { e.u64(uint64(v)) }
func (e *enc) i32(v int32)    { e.u32(uint32(v)) }
func (e *enc) bytes(p []byte) { e.u32(uint32(len(p))); e.b = append(e.b, p...) }
func (e *enc) str(s string)   { e.u32(uint32(len(s))); e.b = append(e.b, s...) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// dec consumes a frame payload with sticky error handling: the first short
// read poisons the decoder, so call sites chain reads and check err once.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("dist: truncated frame")
	}
}

func (d *dec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }
func (d *dec) i32() int32 { return int32(d.u32()) }

func (d *dec) bool() bool { return d.u8() != 0 }

// lenPrefixed reads a u32 length-prefixed byte section, bounding it by the
// remaining payload so a corrupt length cannot allocate beyond the frame.
func (d *dec) lenPrefixed() []byte {
	n := d.u32()
	if d.err != nil || uint64(n) > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string { return string(d.lenPrefixed()) }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// appendBatchDelta appends a batch in the delta-varint wire form: a uvarint
// count, then per record a uvarint From delta (From minus the previous
// record's From; the implicit predecessor is 0), a uvarint To, the kind and
// arg-count bytes, and each argument as a zigzag varint. batch must be
// sender-ascending (non-decreasing From), which both Shard.Step outboxes and
// the coordinator's shard-order routing guarantee; the encoding exploits it
// so runs of one sender cost a single delta byte each.
func appendBatchDelta(dst []byte, batch []congest.Routed) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	prev := uint64(0)
	for i := range batch {
		r := &batch[i]
		from := uint64(uint32(r.From))
		dst = binary.AppendUvarint(dst, from-prev)
		prev = from
		dst = binary.AppendUvarint(dst, uint64(uint32(r.To)))
		dst = append(dst, byte(r.Msg.Kind), r.Msg.NArgs)
		for j := 0; j < int(r.Msg.NArgs); j++ {
			dst = binary.AppendVarint(dst, int64(r.Msg.Args[j]))
		}
	}
	return dst
}

// decodeBatchDelta parses an appendBatchDelta section, validating every kind,
// arg count, and endpoint exactly as the fixed-width decoder does. From is
// reconstructed by prefix sum, so the output is sender-ascending by
// construction. dst is reused; the returned slice is valid until the
// caller's next decode. Any strict prefix of a valid encoding fails: a
// truncated varint keeps its continuation bit, and a truncated record runs
// out of payload before the count is satisfied.
func decodeBatchDelta(d *dec, n int, dst []congest.Routed) ([]congest.Routed, error) {
	count := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	// Each record is at least 1+1+1+1 bytes (delta, to, kind, nargs); a
	// count beyond that bound is a corrupt frame, rejected before any
	// allocation proportional to it.
	if count*4 > uint64(len(d.b)) {
		return nil, fmt.Errorf("dist: batch count %d exceeds frame capacity", count)
	}
	dst = dst[:0]
	from := uint64(0)
	for i := uint64(0); i < count; i++ {
		from += d.uvarint()
		to := d.uvarint()
		kind := wire.Kind(d.u8())
		nargs := d.u8()
		if d.err != nil {
			return nil, d.err
		}
		if !kind.Valid() {
			return nil, fmt.Errorf("dist: unknown kind %d", kind)
		}
		msg := wire.Message{Kind: kind, NArgs: nargs}
		if int(nargs) > len(msg.Args) {
			return nil, fmt.Errorf("dist: corrupt message record (nargs %d)", nargs)
		}
		for j := 0; j < int(nargs); j++ {
			a := d.varint()
			if a < math.MinInt32 || a > math.MaxInt32 {
				return nil, fmt.Errorf("dist: message arg %d outside int32 range", a)
			}
			msg.Args[j] = int32(a)
		}
		if d.err != nil {
			return nil, d.err
		}
		if from >= uint64(n) || to >= uint64(n) {
			return nil, fmt.Errorf("dist: message endpoints %d->%d outside %d-vertex graph", from, to, n)
		}
		dst = append(dst, congest.Routed{From: graph.NodeID(from), To: graph.NodeID(to), Msg: msg})
	}
	return dst, nil
}

// fixedBatchLen returns the byte length appendBatch would produce for batch:
// the PR 9 fixed-width reference cost, kept for before/after wire-byte
// accounting in ShardStats.
func fixedBatchLen(batch []congest.Routed) int64 {
	n := int64(4)
	for i := range batch {
		n += 10 + 4*int64(batch[i].Msg.NArgs)
	}
	return n
}

// appendRouted appends one routed message record: sender, receiver, then the
// message in the internal/wire codec's byte form (kind, arg count, 4-byte
// big-endian args). Together with appendBatch/decodeBatch it is the
// fixed-width reference encoding: no longer on the wire, but kept as the
// oracle the delta codec's tests compare against.
func appendRouted(dst []byte, codec wire.Codec, r congest.Routed) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.From))
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.To))
	return codec.AppendEncode(dst, r.Msg)
}

// appendBatch appends a u32 count followed by the routed records.
func appendBatch(dst []byte, codec wire.Codec, batch []congest.Routed) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(batch)))
	for i := range batch {
		dst = appendRouted(dst, codec, batch[i])
	}
	return dst
}

// decodeBatch parses an appendBatch section, validating every message with
// the wire codec and every endpoint against the vertex count. dst is reused;
// the returned slice is valid until the caller's next decode.
func decodeBatch(d *dec, codec wire.Codec, n int, dst []congest.Routed) ([]congest.Routed, error) {
	count := d.u32()
	if d.err != nil {
		return nil, d.err
	}
	// Each record is at least 4+4+2 bytes; a count beyond that bound is a
	// corrupt frame, rejected before any allocation proportional to it.
	if uint64(count)*10 > uint64(len(d.b)) {
		return nil, fmt.Errorf("dist: batch count %d exceeds frame capacity", count)
	}
	dst = dst[:0]
	for i := uint32(0); i < count; i++ {
		from := graph.NodeID(d.u32())
		to := graph.NodeID(d.u32())
		kindOff := d.b
		if d.err != nil || len(kindOff) < 2 {
			d.fail()
			return nil, d.err
		}
		nargs := int(kindOff[1])
		recLen := 2 + 4*nargs
		if nargs > 4 || len(kindOff) < recLen {
			return nil, fmt.Errorf("dist: corrupt message record (nargs %d, %d bytes left)", nargs, len(kindOff))
		}
		msg, err := codec.Decode(kindOff[:recLen])
		if err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		d.b = d.b[recLen:]
		if int(from) < 0 || int(from) >= n || int(to) < 0 || int(to) >= n {
			return nil, fmt.Errorf("dist: message endpoints %d->%d outside %d-vertex graph", from, to, n)
		}
		dst = append(dst, congest.Routed{From: from, To: to, Msg: msg})
	}
	return dst, nil
}
