package dist

import (
	"context"
	"errors"
	"fmt"

	"dhc/internal/congest"
	"dhc/internal/metrics"
	"dhc/internal/wire"
)

// ErrShardDown marks a transport-level failure: a shard died, its connection
// broke, or it missed the per-exchange deadline. It matches no algorithm
// sentinel, so dhc.Classify maps it to FailureError — a dead worker is an
// infrastructure fault, not evidence about the instance.
var ErrShardDown = errors.New("dist: shard connection lost")

// link is the coordinator's handle to one shard worker.
type link struct {
	shard  int
	lo, hi int
	fc     *frameConn
	enc    enc
	// batch and inbound are reused per-round decode/route buffers.
	batch   []congest.Routed
	inbound []congest.Routed
	// busyNanos arrives with the FINAL frame.
	busyNanos int64
	final     []byte
}

func (l *link) down(stage string, err error) error {
	return fmt.Errorf("%w: shard %d (%s): %v", ErrShardDown, l.shard, stage, err)
}

// stepResult is one shard's decoded STEP reply.
type stepResult struct {
	err        error
	live       int
	legacyLive int
	out        []congest.Routed
}

// coordinator drives the round loop over the shard links, replicating
// congest.Network.RunContext's control flow — liveness check, round budget,
// quiet-round skipping with charged accounting, amortized cancellation
// polling — with the per-round work farmed out over the STEP/DELIVER
// exchanges.
type coordinator struct {
	links    []*link
	n        int
	codec    wire.Codec
	opts     congest.Options // normalized
	counters *metrics.Counters
	progress func(int64)

	// aggregated state from the last completed round
	totalLive  int
	legacyLive int
	hasActive  bool
	wakeRound  int64
	wakeOK     bool
}

func newCoordinator(links []*link, n int, opts congest.Options, progress func(int64)) *coordinator {
	return &coordinator{
		links:    links,
		n:        n,
		codec:    wire.NewCodec(n),
		opts:     congest.NormalizeOptions(opts, n),
		counters: metrics.NewCounters(n),
		progress: progress,
	}
}

// run executes the full protocol: BEGIN, the round loop, FINISH collection.
// The returned counters always reflect at least the charged rounds; on a
// clean run they are the complete merged metering.
func (c *coordinator) run(ctx context.Context, seed uint64) (*metrics.Counters, error) {
	for _, l := range c.links {
		l.enc.b = l.enc.b[:0]
		l.enc.u8(frameBegin)
		l.enc.u64(seed)
		if err := l.fc.send(l.enc.b); err != nil {
			return c.counters, l.down("begin", err)
		}
	}
	if err := ctx.Err(); err != nil {
		return c.counters, fmt.Errorf("congest: run canceled before round 0: %w", err)
	}
	// Init phase (round 0) runs dense by definition.
	if err := c.stepRound(0, true, true); err != nil {
		return c.counters, err
	}
	sinceCheck := 0
	for round := int64(1); ; round++ {
		if c.totalLive == 0 {
			return c.counters, c.finish()
		}
		if round > c.opts.MaxRounds {
			return c.counters, fmt.Errorf("%w: %d rounds", congest.ErrRoundLimit, c.opts.MaxRounds)
		}
		if !c.opts.DenseSweep {
			next, ok := c.nextActiveRound(round)
			if !ok || next > c.opts.MaxRounds {
				// Charge the quiet tail exactly like the in-process engine:
				// the dense sweep would spin to the limit, so accounting does.
				c.counters.Rounds += c.opts.MaxRounds - round + 1
				c.counters.RoundsSkipped += c.opts.MaxRounds - round + 1
				return c.counters, fmt.Errorf("%w: %d rounds", congest.ErrRoundLimit, c.opts.MaxRounds)
			}
			c.counters.Rounds += next - round + 1
			c.counters.RoundsSkipped += next - round
			round = next
		} else {
			c.counters.Rounds++
		}
		if sinceCheck++; sinceCheck >= 64 {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return c.counters, fmt.Errorf("congest: run canceled in round %d: %w", round, err)
			}
			if c.progress != nil {
				c.progress(c.counters.Rounds)
			}
		}
		dense := c.opts.DenseSweep || c.legacyLive > 0
		if err := c.stepRound(round, false, dense); err != nil {
			return c.counters, err
		}
	}
}

// nextActiveRound mirrors runState.nextActiveRound over the aggregated shard
// reports: the round itself while messages are in flight or a legacy-dense
// node is live anywhere, else the earliest wake-up across every shard's
// schedule.
func (c *coordinator) nextActiveRound(round int64) (int64, bool) {
	if c.hasActive || c.legacyLive > 0 {
		return round, true
	}
	if !c.wakeOK {
		return 0, false
	}
	w := c.wakeRound
	if w < round {
		w = round
	}
	return w, true
}

// stepRound executes one round across every shard: STEP fan-out, reply
// aggregation, destination routing, DELIVER fan-out, report aggregation.
func (c *coordinator) stepRound(round int64, isInit, dense bool) error {
	var flags byte
	if isInit {
		flags |= stepFlagInit
	}
	if dense {
		flags |= stepFlagDense
	}
	for _, l := range c.links {
		l.enc.b = l.enc.b[:0]
		l.enc.u8(frameStep)
		l.enc.i64(round)
		l.enc.u8(flags)
		if err := l.fc.send(l.enc.b); err != nil {
			return l.down("step send", err)
		}
	}
	results := make([]stepResult, len(c.links))
	c.totalLive, c.legacyLive = 0, 0
	for i, l := range c.links {
		payload, err := l.fc.recv()
		if err != nil {
			return l.down("step reply", err)
		}
		d := dec{b: payload}
		if tag := d.u8(); tag != frameStepRes {
			return l.down("step reply", fmt.Errorf("unexpected frame %d", tag))
		}
		code := d.u8()
		msg := d.str()
		results[i].err = errFromCode(code, msg)
		results[i].live = int(d.u32())
		results[i].legacyLive = int(d.u32())
		l.batch, err = decodeBatch(&d, c.codec, c.n, l.batch)
		if err != nil {
			return l.down("step reply", err)
		}
		results[i].out = l.batch
		c.totalLive += results[i].live
		c.legacyLive += results[i].legacyLive
	}
	// A step error aborts before delivery, exactly like the in-process merge
	// loop. Shard ranges are contiguous and ascending and each shard reports
	// its first error in local node order, so the lowest erroring shard's
	// error IS the globally first one.
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
	}

	// Route: split each source batch by destination shard and concatenate
	// per destination in source-shard order. Each source batch is
	// sender-ascending and the shard ranges partition the id space in order,
	// so every destination sees its messages globally sender-ascending —
	// the exact order congest.deliver consumes in process.
	for _, dst := range c.links {
		dst.inbound = dst.inbound[:0]
	}
	for _, r := range results {
		for _, m := range r.out {
			dst := c.links[c.shardOf(int(m.To))]
			dst.inbound = append(dst.inbound, m)
		}
	}
	for _, l := range c.links {
		l.enc.b = l.enc.b[:0]
		l.enc.u8(frameDeliver)
		l.enc.i64(round)
		l.enc.b = appendBatch(l.enc.b, c.codec, l.inbound)
		if err := l.fc.send(l.enc.b); err != nil {
			return l.down("deliver send", err)
		}
	}
	c.hasActive, c.wakeOK = false, false
	c.wakeRound = 0
	var deliverErr error
	for _, l := range c.links {
		payload, err := l.fc.recv()
		if err != nil {
			return l.down("deliver reply", err)
		}
		d := dec{b: payload}
		if tag := d.u8(); tag != frameDeliverRes {
			return l.down("deliver reply", fmt.Errorf("unexpected frame %d", tag))
		}
		code := d.u8()
		msg := d.str()
		if err := errFromCode(code, msg); err != nil && deliverErr == nil {
			deliverErr = err
		}
		hasActive := d.bool()
		wakeOK := d.bool()
		wake := d.i64()
		if d.err != nil {
			return l.down("deliver reply", d.err)
		}
		if hasActive {
			c.hasActive = true
		}
		if wakeOK && (!c.wakeOK || wake < c.wakeRound) {
			c.wakeOK = true
			c.wakeRound = wake
		}
	}
	return deliverErr
}

// shardOf maps a vertex to its shard index. Ranges are the contiguous
// near-equal partition lo(i) = i*n/K.
func (c *coordinator) shardOf(v int) int {
	k := len(c.links)
	i := v * k / c.n
	// i*n/K rounds down, so the estimate can be off by one in either
	// direction near a boundary; correct locally.
	for i < k-1 && v >= c.links[i+1].lo {
		i++
	}
	for i > 0 && v < c.links[i].lo {
		i--
	}
	return i
}

// finish collects every shard's FINAL frame and merges the metering into the
// coordinator's counters.
func (c *coordinator) finish() error {
	for _, l := range c.links {
		l.enc.b = l.enc.b[:0]
		l.enc.u8(frameFinish)
		if err := l.fc.send(l.enc.b); err != nil {
			return l.down("finish", err)
		}
	}
	for _, l := range c.links {
		payload, err := l.fc.recv()
		if err != nil {
			return l.down("final", err)
		}
		d := dec{b: payload}
		if tag := d.u8(); tag != frameFinal {
			return l.down("final", fmt.Errorf("unexpected frame %d", tag))
		}
		if err := decodeCounters(&d, c.counters, l.lo, l.hi); err != nil {
			return l.down("final", err)
		}
		l.busyNanos = d.i64()
		final := d.lenPrefixed()
		if d.err != nil {
			return l.down("final", d.err)
		}
		// Copy: the frame buffer is reused by the next recv.
		l.final = append([]byte(nil), final...)
	}
	return nil
}
