package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"dhc/internal/congest"
	"dhc/internal/metrics"
)

// ErrShardDown marks a transport-level failure: a shard died, its connection
// broke, or it missed the per-exchange deadline. It matches no algorithm
// sentinel, so dhc.Classify maps it to FailureError — a dead worker is an
// infrastructure fault, not evidence about the instance.
var ErrShardDown = errors.New("dist: shard connection lost")

// linkReq is one unit of work for a link's I/O goroutine: write this frame,
// and if reply is set, read one frame back.
type linkReq struct {
	payload []byte
	reply   bool
}

// linkRes is the I/O goroutine's answer to a reply-expecting request.
type linkRes struct {
	payload []byte
	err     error
}

// link is the coordinator's handle to one shard worker.
type link struct {
	shard  int
	lo, hi int
	fc     *frameConn
	enc    enc
	// batch and inbound are reused per-round decode/route buffers.
	batch   []congest.Routed
	inbound []congest.Routed

	// Pipelined I/O: reqCh feeds the link's ioLoop goroutine, resCh carries
	// one in-flight reply back. Capacities are sized so the coordinator
	// never blocks posting (at most BEGIN plus one fused exchange queued)
	// and the ioLoop never blocks replying (at most one reply outstanding).
	reqCh chan linkReq
	resCh chan linkRes
	ioErr error // sticky transport error; owned by ioLoop

	// Transport accounting, incremented by the coordinator goroutine.
	rtts            int64
	localMsgs       int64
	crossMsgs       int64
	batchBytesDelta int64
	batchBytesFixed int64

	// busyNanos and final arrive with the FINAL frame.
	busyNanos int64
	final     []byte
}

func (l *link) down(stage string, err error) error {
	return fmt.Errorf("%w: shard %d (%s): %v", ErrShardDown, l.shard, stage, err)
}

// ioLoop is the link's dedicated I/O goroutine: it serializes writes and
// reads on the connection so the coordinator can fan frames out to every
// shard and collect replies concurrently instead of visiting links one at a
// time. A transport error is sticky — every later reply-expecting request
// reports it immediately instead of touching the dead connection.
func (l *link) ioLoop() {
	for req := range l.reqCh {
		if l.ioErr == nil {
			l.ioErr = l.fc.send(req.payload)
		}
		if !req.reply {
			continue
		}
		if l.ioErr != nil {
			l.resCh <- linkRes{err: l.ioErr}
			continue
		}
		payload, err := l.fc.recv()
		if err != nil {
			l.ioErr = err
			l.resCh <- linkRes{err: err}
			continue
		}
		l.resCh <- linkRes{payload: payload}
	}
}

// post enqueues a frame for the link's ioLoop. The payload must stay
// untouched until the request is fenced: for reply-expecting requests the
// fence is collecting the reply, for fire-and-forget frames the caller must
// use a buffer it never reuses.
func (l *link) post(payload []byte, reply bool) {
	l.reqCh <- linkReq{payload: payload, reply: reply}
}

// tryPost enqueues a frame only if the ioLoop has queue space: best-effort
// delivery for teardown-path frames (ABORT) that must never block the
// coordinator behind a dead worker.
func (l *link) tryPost(payload []byte) {
	select {
	case l.reqCh <- linkReq{payload: payload}:
	default:
	}
}

// coordinator drives the round loop over the shard links, replicating
// congest.Network.RunContext's control flow — liveness check, round budget,
// quiet-round skipping with charged accounting, amortized cancellation
// polling — with the per-round work farmed out over fused 1-RTT exchanges:
// each visit to a shard delivers the previous round's cross-shard messages
// and steps the current round.
//
// Fusing moves the liveness decision to the coordinator: it keeps a global
// halted bitmap (folded from each step reply's newly-halted list) and
// declares message activity when any routed cross-shard message targets a
// non-halted node or any shard retained a locally-deliverable message for a
// non-halted node — exactly the condition under which the in-process deliver
// would have put a message into a live node's inbox.
type coordinator struct {
	links    []*link
	n        int
	opts     congest.Options // normalized
	counters *metrics.Counters
	progress func(int64)

	// shardTable maps every vertex to its shard index: the lo(i) = i*n/K
	// partition, precomputed so routing is one load per message.
	shardTable []int32
	// halted is the global halted bitmap, monotone (halts are terminal).
	halted []bool

	ioWG sync.WaitGroup

	// aggregated state from the last completed fused exchange
	totalLive  int
	legacyLive int
	hasActive  bool
	wakeRound  int64
	wakeOK     bool
}

func newCoordinator(links []*link, n int, opts congest.Options, progress func(int64)) *coordinator {
	for _, l := range links {
		l.reqCh = make(chan linkReq, 2)
		l.resCh = make(chan linkRes, 1)
	}
	return &coordinator{
		links:      links,
		n:          n,
		opts:       congest.NormalizeOptions(opts, n),
		counters:   metrics.NewCounters(n),
		progress:   progress,
		shardTable: buildShardTable(n, len(links)),
		halted:     make([]bool, n),
	}
}

// buildShardTable precomputes the vertex-to-shard map for the contiguous
// near-equal partition lo(i) = i*n/K. Filling by shard range is O(n + k) and
// correct for every (n, k) including k > n, where trailing shards are empty.
func buildShardTable(n, k int) []int32 {
	t := make([]int32, n)
	for i := 0; i < k; i++ {
		lo, hi := shardRange(n, k, i)
		for v := lo; v < hi; v++ {
			t[v] = int32(i)
		}
	}
	return t
}

// start launches one ioLoop per link. stop closes the request channels and
// joins the goroutines; after stop returns, the links' frameConn byte
// counters are safe to read from the caller's goroutine.
func (c *coordinator) start() {
	for _, l := range c.links {
		c.ioWG.Add(1)
		go func(l *link) {
			defer c.ioWG.Done()
			l.ioLoop()
		}(l)
	}
}

func (c *coordinator) stop() {
	for _, l := range c.links {
		close(l.reqCh)
	}
	c.ioWG.Wait()
}

// run executes the full protocol: BEGIN, the fused round loop, FINISH
// collection. The returned counters always reflect at least the charged
// rounds; on a clean run they are the complete merged metering.
func (c *coordinator) run(ctx context.Context, seed uint64) (*metrics.Counters, error) {
	for _, l := range c.links {
		// A fresh buffer per BEGIN: the frame is fire-and-forget, so the
		// link's reusable encoder (fenced by reply collection) cannot carry
		// it.
		var e enc
		e.b = make([]byte, 0, 16)
		e.u8(frameBegin)
		e.u64(seed)
		l.post(e.b, false)
	}
	if err := ctx.Err(); err != nil {
		return c.counters, fmt.Errorf("congest: run canceled before round 0: %w", err)
	}
	// Init phase (round 0) runs dense by definition; there is no prior round
	// to deliver.
	if err := c.fuseRound(-1, 0, true, true); err != nil {
		return c.counters, err
	}
	// pending is the executed round whose deliver is owed to the shards: its
	// messages ride on the next fused frame, or on FINISH when the run ends.
	pending := int64(0)
	sinceCheck := 0
	for round := int64(1); ; round++ {
		if c.totalLive == 0 {
			return c.counters, c.finish(pending)
		}
		if round > c.opts.MaxRounds {
			return c.counters, fmt.Errorf("%w: %d rounds", congest.ErrRoundLimit, c.opts.MaxRounds)
		}
		if !c.opts.DenseSweep {
			next, ok := c.nextActiveRound(round)
			if !ok || next > c.opts.MaxRounds {
				// Charge the quiet tail exactly like the in-process engine:
				// the dense sweep would spin to the limit, so accounting does.
				c.counters.Rounds += c.opts.MaxRounds - round + 1
				c.counters.RoundsSkipped += c.opts.MaxRounds - round + 1
				return c.counters, fmt.Errorf("%w: %d rounds", congest.ErrRoundLimit, c.opts.MaxRounds)
			}
			c.counters.Rounds += next - round + 1
			c.counters.RoundsSkipped += next - round
			round = next
		} else {
			c.counters.Rounds++
		}
		if sinceCheck++; sinceCheck >= 64 {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return c.counters, fmt.Errorf("congest: run canceled in round %d: %w", round, err)
			}
			if c.progress != nil {
				c.progress(c.counters.Rounds)
			}
		}
		dense := c.opts.DenseSweep || c.legacyLive > 0
		if err := c.fuseRound(pending, round, false, dense); err != nil {
			return c.counters, err
		}
		pending = round
	}
}

// nextActiveRound mirrors runState.nextActiveRound over the aggregated shard
// reports: the round itself while messages are in flight or a legacy-dense
// node is live anywhere, else the earliest wake-up across every shard's
// schedule.
func (c *coordinator) nextActiveRound(round int64) (int64, bool) {
	if c.hasActive || c.legacyLive > 0 {
		return round, true
	}
	if !c.wakeOK {
		return 0, false
	}
	w := c.wakeRound
	if w < round {
		w = round
	}
	return w, true
}

// collect blocks for the link's next reply. A transport error becomes an
// ErrShardDown with the exchange's stage label.
func (c *coordinator) collect(l *link, stage string) ([]byte, error) {
	res := <-l.resCh
	if res.err != nil {
		return nil, l.down(stage, res.err)
	}
	return res.payload, nil
}

// fuseRound executes one fused exchange across every shard: fan out
// FUSE(deliverRound, stepRound) carrying each shard's inbound cross-shard
// batch, collect replies in shard order, fold halts and liveness, and route
// the new outbound batches by destination.
func (c *coordinator) fuseRound(deliverRound, stepRound int64, isInit, dense bool) error {
	var flags byte
	if isInit {
		flags |= stepFlagInit
	}
	if dense {
		flags |= stepFlagDense
	}
	for _, l := range c.links {
		e := &l.enc
		e.b = e.b[:0]
		e.u8(frameFuse)
		e.i64(deliverRound)
		e.i64(stepRound)
		e.u8(flags)
		if deliverRound >= 0 {
			mark := len(e.b)
			e.b = appendBatchDelta(e.b, l.inbound)
			l.batchBytesDelta += int64(len(e.b) - mark)
			l.batchBytesFixed += fixedBatchLen(l.inbound)
		}
		l.post(e.b, true)
		l.rtts++
	}

	// Collect in shard order. Shard ranges are contiguous and ascending and
	// each shard reports its first error in local node order, so within a
	// stage the lowest erroring shard's error IS the globally first one; the
	// deliver stage precedes the step stage because round r's deliver runs
	// before round r+1's step in the in-process engine.
	c.totalLive, c.legacyLive = 0, 0
	c.hasActive, c.wakeOK = false, false
	c.wakeRound = 0
	anyLocalActive := false
	var deliverErr, stepErr error
	for _, l := range c.links {
		payload, err := c.collect(l, "fuse reply")
		if err != nil {
			return err
		}
		d := dec{b: payload}
		if tag := d.u8(); tag != frameFuseRes {
			return l.down("fuse reply", fmt.Errorf("unexpected frame %d", tag))
		}
		stage := d.u8()
		code := d.u8()
		msg := d.str()
		if err := errFromCode(code, msg); err != nil {
			if stage == stageDeliver {
				if deliverErr == nil {
					deliverErr = err
				}
			} else if stepErr == nil {
				stepErr = err
			}
		}
		c.totalLive += int(d.u32())
		c.legacyLive += int(d.u32())
		nh := int(d.u32())
		if d.err != nil {
			return l.down("fuse reply", d.err)
		}
		if nh < 0 || nh > l.hi-l.lo {
			return l.down("fuse reply", fmt.Errorf("%d newly halted nodes in a %d-node shard", nh, l.hi-l.lo))
		}
		for j := 0; j < nh; j++ {
			lv := int(d.u32())
			if lv < 0 || lv >= l.hi-l.lo {
				return l.down("fuse reply", fmt.Errorf("halted node %d outside shard range", lv))
			}
			c.halted[l.lo+lv] = true
		}
		localActive := d.bool()
		wakeOK := d.bool()
		wake := d.i64()
		if d.err != nil {
			return l.down("fuse reply", d.err)
		}
		l.batch, err = decodeBatchDelta(&d, c.n, l.batch)
		if err != nil {
			return l.down("fuse reply", err)
		}
		if localActive {
			anyLocalActive = true
		}
		if wakeOK && (!c.wakeOK || wake < c.wakeRound) {
			c.wakeOK = true
			c.wakeRound = wake
		}
	}
	if deliverErr != nil {
		return deliverErr
	}
	if stepErr != nil {
		return stepErr
	}

	// Route: split each source batch by destination shard and concatenate
	// per destination in source-shard order. Each source batch is
	// sender-ascending and the shard ranges partition the id space in order,
	// so every destination sees its cross-shard messages in a shape
	// Shard.Deliver can splice its retained local messages into,
	// reconstructing the global sender-ascending order congest.deliver
	// consumes. Message activity is decided here against the halted bitmap:
	// the in-process deliver drops (but meters) messages to halted nodes, so
	// only a message to a live node makes the next round non-quiet.
	for _, dst := range c.links {
		dst.inbound = dst.inbound[:0]
	}
	for _, src := range c.links {
		src.crossMsgs += int64(len(src.batch))
		for i := range src.batch {
			m := src.batch[i]
			c.links[c.shardTable[m.To]].inbound = append(c.links[c.shardTable[m.To]].inbound, m)
			if !c.halted[m.To] {
				c.hasActive = true
			}
		}
	}
	if anyLocalActive {
		c.hasActive = true
	}
	return nil
}

// finish flushes the last executed round's deliver to every shard via
// FINISH — so its messages are metered exactly as the in-process engine
// meters them — and collects every FINAL frame, merging the metering into
// the coordinator's counters.
func (c *coordinator) finish(deliverRound int64) error {
	for _, l := range c.links {
		e := &l.enc
		e.b = e.b[:0]
		e.u8(frameFinish)
		e.i64(deliverRound)
		if deliverRound >= 0 {
			mark := len(e.b)
			e.b = appendBatchDelta(e.b, l.inbound)
			l.batchBytesDelta += int64(len(e.b) - mark)
			l.batchBytesFixed += fixedBatchLen(l.inbound)
		}
		l.post(e.b, true)
		l.rtts++
	}
	var flushErr error
	for _, l := range c.links {
		payload, err := c.collect(l, "final")
		if err != nil {
			return err
		}
		d := dec{b: payload}
		if tag := d.u8(); tag != frameFinal {
			return l.down("final", fmt.Errorf("unexpected frame %d", tag))
		}
		code := d.u8()
		msg := d.str()
		if err := errFromCode(code, msg); err != nil && flushErr == nil {
			flushErr = err
		}
		if err := decodeCounters(&d, c.counters, l.lo, l.hi); err != nil {
			return l.down("final", err)
		}
		l.busyNanos = d.i64()
		l.localMsgs = int64(d.u64())
		final := d.lenPrefixed()
		if d.err != nil {
			return l.down("final", d.err)
		}
		// Copy: the frame buffer is reused by the next recv.
		l.final = append([]byte(nil), final...)
	}
	return flushErr
}
