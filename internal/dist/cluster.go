package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/metrics"
)

// Transport names. Unix and TCP run each shard as a goroutine worker behind a
// real socket (the frames cross the kernel, the memory does not); Proc forks
// one hcshard OS process per shard and ships the graph and program specs over
// the socket too.
const (
	TransportUnix = "unix"
	TransportTCP  = "tcp"
	TransportProc = "proc"
)

// Transports lists the valid transport names in the order they escalate
// isolation.
func Transports() []string { return []string{TransportUnix, TransportTCP, TransportProc} }

// defaultStepTimeout bounds every coordinator-side receive. A healthy shard
// answers a STEP in milliseconds; a minute means the worker is gone.
const defaultStepTimeout = 60 * time.Second

// Options configures a Cluster.
type Options struct {
	// Shards is the worker count K >= 1 (clamped to the vertex count).
	Shards int
	// Transport is one of TransportUnix (default), TransportTCP,
	// TransportProc.
	Transport string
	// StepTimeout bounds each protocol exchange; a shard that does not
	// answer within it is declared down (0 selects a 60s default). This is
	// what turns a hung worker into a classified error instead of a stalled
	// run.
	StepTimeout time.Duration
	// ShardBinary is the hcshard executable for TransportProc
	// ("hcshard" via PATH when empty).
	ShardBinary string
	// Fault, if non-nil, injects a worker failure (tests only).
	Fault *FaultPlan
}

// ShardStat is one worker's transport-level accounting for a completed run.
type ShardStat struct {
	Shard int `json:"shard"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	NodeN int `json:"nodes"`
	// BytesSent/BytesRecv count frame bytes from the coordinator's
	// perspective, headers included.
	BytesSent int64 `json:"bytes_sent"`
	BytesRecv int64 `json:"bytes_recv"`
	// BusySeconds is time the worker spent inside Step/Deliver rather than
	// blocked on the round barrier (0 when the run ended before FINISH).
	BusySeconds float64 `json:"busy_seconds"`
	// RTTs counts coordinator->worker round trips on this link: one per
	// fused exchange plus one for the FINISH/FINAL collection.
	RTTs int64 `json:"rtts"`
	// LocalMsgs/CrossMsgs split the shard's routed messages: retained and
	// delivered inside the shard versus shipped through the coordinator.
	// Both are metered identically in the run's Counters.
	LocalMsgs int64 `json:"local_msgs"`
	CrossMsgs int64 `json:"cross_msgs"`
	// BatchBytesFixed/BatchBytesDelta compare batch encodings for the
	// coordinator->worker deliver payloads: what the PR 9 fixed-width
	// encoding would have cost versus what the delta-varint encoding
	// actually put on the wire.
	BatchBytesFixed int64 `json:"batch_bytes_fixed"`
	BatchBytesDelta int64 `json:"batch_bytes_delta"`
}

// Cluster runs a bound network across shard workers. It implements
// congest.Runner, so algorithm sessions drive it exactly like the in-process
// Network — Reset then RunContext — and the distributed run inherits the
// sessions' binding, extraction and error wrapping unchanged. Not safe for
// concurrent use.
type Cluster struct {
	opts  Options
	g     *graph.Graph
	nodes []congest.Node
	net   congest.Options
	stats []ShardStat
}

var _ congest.Runner = (*Cluster)(nil)

// NewCluster validates the transport configuration once up front.
func NewCluster(opts Options) (*Cluster, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("dist: shard count %d must be >= 1", opts.Shards)
	}
	switch opts.Transport {
	case "", TransportUnix:
		opts.Transport = TransportUnix
	case TransportTCP, TransportProc:
	default:
		return nil, fmt.Errorf("dist: unknown transport %q (valid: unix, tcp, proc)", opts.Transport)
	}
	if opts.StepTimeout == 0 {
		opts.StepTimeout = defaultStepTimeout
	}
	if opts.StepTimeout < 0 {
		return nil, fmt.Errorf("dist: step timeout %v must be >= 0", opts.StepTimeout)
	}
	return &Cluster{opts: opts}, nil
}

// Reset implements congest.Runner: it binds the cluster to a graph and
// program set. Workers are launched per run (RunContext), not per bind, so a
// failed run cannot leak its topology into the next one.
func (c *Cluster) Reset(g *graph.Graph, nodes []congest.Node, opts congest.Options) error {
	if len(nodes) != g.N() {
		return fmt.Errorf("dist: %d node programs for %d vertices", len(nodes), g.N())
	}
	if opts.FaultHook != nil {
		return fmt.Errorf("congest: FaultHook is not supported by sharded execution")
	}
	if c.opts.Transport == TransportProc {
		for v, nd := range nodes {
			if _, ok := nd.(congest.PortableProgram); !ok {
				return fmt.Errorf("dist: node %d program %T is not portable; transport %q requires congest.PortableProgram (use unix or tcp)",
					v, nd, TransportProc)
			}
		}
	}
	c.g, c.nodes, c.net = g, nodes, opts
	c.stats = nil
	return nil
}

// shardRange returns the contiguous near-equal partition bounds of shard i.
func shardRange(n, k, i int) (lo, hi int) { return i * n / k, (i + 1) * n / k }

// RunContext implements congest.Runner: launch the workers, drive the round
// loop, collect results, tear everything down. Any worker death, timeout or
// protocol violation surfaces as an ErrShardDown-wrapped error; ctx
// cancellation surfaces as ctx's error — never a hang, never a partial round
// observed by any node program.
func (c *Cluster) RunContext(ctx context.Context, seed uint64) (*metrics.Counters, error) {
	if c.g == nil {
		return nil, fmt.Errorf("dist: RunContext before Reset")
	}
	k := c.opts.Shards
	if k > c.g.N() {
		k = c.g.N()
	}

	ln, addr, cleanup, err := c.listen()
	if err != nil {
		return nil, err
	}
	defer cleanup()

	var (
		wg      sync.WaitGroup
		unblock = make(chan struct{})
		procs   []*exec.Cmd
		conns   []net.Conn
	)
	if c.opts.Transport == TransportProc {
		procs, err = c.spawnProcs(k, addr)
	} else {
		conns, err = c.spawnWorkers(&wg, k, addr, unblock)
	}
	if err != nil {
		for _, conn := range conns {
			conn.Close()
		}
		close(unblock)
		wg.Wait()
		reapProcs(procs)
		return nil, err
	}

	links, err := c.accept(ln, k)

	// Teardown must run whatever happens next, exactly once: close every
	// conn (which unblocks any worker — or link ioLoop — stuck in a read or
	// a full-buffer write), join the per-link I/O goroutines, release
	// injected hangs, then join workers — goroutines via the WaitGroup (the
	// happens-before edge extraction relies on), processes via wait-or-kill.
	// It runs explicitly before stats assembly (the frameConn byte counters
	// are ioLoop-owned until the join) and deferred as a backstop.
	var coord *coordinator
	teardown := sync.OnceFunc(func() {
		for _, l := range links {
			if nc, ok := l.fc.rw.(net.Conn); ok {
				nc.Close()
			}
		}
		if coord != nil {
			coord.stop()
		}
		close(unblock)
		wg.Wait()
		reapProcs(procs)
	})
	defer teardown()

	if err != nil {
		return nil, err
	}

	// Watchdog: a canceled context must interrupt a coordinator blocked in a
	// receive, not wait out the step timeout.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			for _, l := range links {
				if nc, ok := l.fc.rw.(net.Conn); ok {
					nc.Close()
				}
			}
		case <-watchDone:
		}
	}()

	coord = newCoordinator(links, c.g.N(), c.net, c.net.Progress)
	coord.start()
	counters, runErr := coord.run(ctx, seed)
	if runErr != nil {
		// Prefer the context's verdict when the transport error is just the
		// watchdog tearing down connections.
		if cerr := ctx.Err(); cerr != nil && errors.Is(runErr, ErrShardDown) {
			runErr = fmt.Errorf("congest: run canceled in round %d: %w", counters.Rounds, cerr)
		}
		// Best-effort abort so live workers exit their serve loops cleanly
		// before the close. The buffer is fresh because the link encoder may
		// still be pinned by an in-flight frame.
		for _, l := range links {
			l.tryPost([]byte{frameAbort})
		}
	}

	teardown()
	c.stats = make([]ShardStat, len(links))
	for i, l := range links {
		c.stats[i] = ShardStat{
			Shard: l.shard, Lo: l.lo, Hi: l.hi, NodeN: l.hi - l.lo,
			BytesSent: l.fc.bytesOut, BytesRecv: l.fc.bytesIn,
			BusySeconds:     time.Duration(l.busyNanos).Seconds(),
			RTTs:            l.rtts,
			LocalMsgs:       l.localMsgs,
			CrossMsgs:       l.crossMsgs,
			BatchBytesFixed: l.batchBytesFixed,
			BatchBytesDelta: l.batchBytesDelta,
		}
	}
	if runErr != nil {
		return counters, runErr
	}
	if c.opts.Transport == TransportProc {
		if err := c.restoreFinals(links); err != nil {
			return counters, err
		}
	}
	return counters, nil
}

// Stats returns the per-shard transport accounting of the last RunContext
// (nil before the first run).
func (c *Cluster) Stats() []ShardStat { return c.stats }

// listen opens the coordinator's listener for the configured transport.
func (c *Cluster) listen() (net.Listener, string, func(), error) {
	if c.opts.Transport == TransportTCP {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", nil, fmt.Errorf("dist: %w", err)
		}
		return ln, ln.Addr().String(), func() { ln.Close() }, nil
	}
	dir, err := os.MkdirTemp("", "dhc-dist-")
	if err != nil {
		return nil, "", nil, fmt.Errorf("dist: %w", err)
	}
	path := filepath.Join(dir, "coord.sock")
	ln, err := net.Listen("unix", path)
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", nil, fmt.Errorf("dist: %w", err)
	}
	return ln, path, func() { ln.Close(); os.RemoveAll(dir) }, nil
}

// dialNetwork maps the transport to the dialer's network argument.
func (c *Cluster) dialNetwork() string {
	if c.opts.Transport == TransportTCP {
		return "tcp"
	}
	return "unix"
}

// spawnWorkers starts one goroutine worker per shard. Each dials the
// coordinator, identifies itself, builds its congest.Shard over the shared
// node slice, and serves frames until FINISH/ABORT or connection loss.
func (c *Cluster) spawnWorkers(wg *sync.WaitGroup, k int, addr string, unblock <-chan struct{}) ([]net.Conn, error) {
	n := c.g.N()
	network := c.dialNetwork()
	conns := make([]net.Conn, 0, k)
	for i := 0; i < k; i++ {
		lo, hi := shardRange(n, k, i)
		shard, err := congest.NewShard(c.g, c.nodes[lo:hi], c.net, lo, hi)
		if err != nil {
			return conns, err
		}
		conn, err := net.DialTimeout(network, addr, c.opts.StepTimeout)
		if err != nil {
			return conns, fmt.Errorf("dist: shard %d dial: %w", i, err)
		}
		conns = append(conns, conn)
		var fault *FaultPlan
		if f := c.opts.Fault; f != nil && f.Shard == i {
			fault = f
		}
		wg.Add(1)
		go func(i int, conn net.Conn, shard *congest.Shard, fault *FaultPlan) {
			defer wg.Done()
			defer conn.Close()
			fc := newFrameConn(conn)
			var e enc
			e.u8(frameHello)
			e.u32(uint32(i))
			if err := fc.send(e.b); err != nil {
				return
			}
			_ = serveFrames(fc, shard, ServeOptions{Fault: fault, Unblock: unblock})
		}(i, conn, shard, fault)
	}
	return conns, nil
}

// spawnProcs forks one hcshard process per shard. Fault injection rides on
// the environment so the parent's test harness can point a worker at a crash
// or hang without any code path in the child knowing about tests.
func (c *Cluster) spawnProcs(k int, addr string) ([]*exec.Cmd, error) {
	bin := c.opts.ShardBinary
	if bin == "" {
		bin = "hcshard"
	}
	procs := make([]*exec.Cmd, 0, k)
	for i := 0; i < k; i++ {
		cmd := exec.Command(bin,
			"-socket", addr,
			"-network", c.dialNetwork(),
			"-shard", strconv.Itoa(i),
		)
		cmd.Stderr = os.Stderr
		if f := c.opts.Fault; f != nil && f.Shard == i {
			cmd.Env = append(os.Environ(),
				"HCSHARD_FAULT_ROUND="+strconv.FormatInt(f.Round, 10),
				"HCSHARD_FAULT_MODE="+f.Mode,
			)
		}
		if err := cmd.Start(); err != nil {
			reapProcs(procs)
			return procs, fmt.Errorf("dist: start %s: %w", bin, err)
		}
		procs = append(procs, cmd)
	}
	return procs, nil
}

// reapProcs joins worker processes, killing any that outlive a short grace
// period (a hang-injected worker never exits on its own).
func reapProcs(procs []*exec.Cmd) {
	for _, cmd := range procs {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		done := make(chan struct{})
		go func(cmd *exec.Cmd) { _ = cmd.Wait(); close(done) }(cmd)
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}
}

// accept collects k worker connections, reads each hello, and (for proc
// workers) ships the run configuration. It is all-or-nothing: on any error
// every accepted connection is closed and links is nil, so callers never see
// a half-connected cluster.
func (c *Cluster) accept(ln net.Listener, k int) (links []*link, err error) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if dl, ok := ln.(deadliner); ok {
		_ = dl.SetDeadline(time.Now().Add(c.opts.StepTimeout))
	}
	defer func() {
		if err == nil {
			return
		}
		for _, l := range links {
			if l != nil {
				if nc, ok := l.fc.rw.(net.Conn); ok {
					nc.Close()
				}
			}
		}
		links = nil
	}()
	n := c.g.N()
	links = make([]*link, k)
	for got := 0; got < k; got++ {
		conn, aerr := ln.Accept()
		if aerr != nil {
			return links, fmt.Errorf("%w: accept (%d/%d workers connected): %v", ErrShardDown, got, k, aerr)
		}
		fc := newFrameConn(conn)
		fc.timeout = c.opts.StepTimeout
		payload, rerr := fc.recv()
		if rerr != nil {
			conn.Close()
			return links, fmt.Errorf("%w: hello: %v", ErrShardDown, rerr)
		}
		d := dec{b: payload}
		tag := d.u8()
		idx := int(d.u32())
		if d.err != nil || tag != frameHello || idx < 0 || idx >= k || links[idx] != nil {
			conn.Close()
			return links, fmt.Errorf("%w: bad hello (tag %d shard %d)", ErrShardDown, tag, idx)
		}
		lo, hi := shardRange(n, k, idx)
		links[idx] = &link{shard: idx, lo: lo, hi: hi, fc: fc}
	}
	if c.opts.Transport == TransportProc {
		for _, l := range links {
			if cerr := c.sendConfig(l); cerr != nil {
				return links, cerr
			}
		}
	}
	return links, nil
}
