package dist

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"dhc/internal/congest"
	"dhc/internal/dra"
	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/wire"
)

// runDRA drives one DRA trial through the cluster, exactly as the solver
// injects it: the session binds the programs, the cluster executes them.
func runDRA(ctx context.Context, cl *Cluster, n int) error {
	g := graph.GNP(n, 0.5, rng.New(7))
	sess := dra.NewSession()
	sess.SetRunner(cl)
	_, err := sess.Run(ctx, g, 1, dra.NodeOptions{}, congest.Options{BandwidthBits: 64})
	return err
}

// TestCrashFaultClassified kills one worker mid-run and requires a classified
// ErrShardDown within the step deadline — never a hang, never a nil error.
func TestCrashFaultClassified(t *testing.T) {
	for _, transport := range []string{TransportUnix, TransportTCP} {
		t.Run(transport, func(t *testing.T) {
			cl, err := NewCluster(Options{
				Shards:      3,
				Transport:   transport,
				StepTimeout: 20 * time.Second,
				Fault:       &FaultPlan{Shard: 1, Round: 2, Mode: "crash"},
			})
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			err = runDRA(context.Background(), cl, 24)
			if !errors.Is(err, ErrShardDown) {
				t.Fatalf("crashed shard returned %v, want ErrShardDown", err)
			}
			if elapsed := time.Since(start); elapsed > 30*time.Second {
				t.Fatalf("classification took %v", elapsed)
			}
		})
	}
}

// TestHangFaultClassified stalls one worker instead of killing it: the step
// timeout must convert the silence into ErrShardDown instead of waiting
// forever on the round barrier.
func TestHangFaultClassified(t *testing.T) {
	cl, err := NewCluster(Options{
		Shards:      3,
		StepTimeout: 2 * time.Second,
		Fault:       &FaultPlan{Shard: 2, Round: 1, Mode: "hang"},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err = runDRA(context.Background(), cl, 24)
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("hung shard returned %v, want ErrShardDown", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("classification took %v, want ~the 2s step timeout", elapsed)
	}
}

// TestCancelBeatsHungShard cancels the run's context while a worker hangs
// with a long step timeout still pending: the watchdog must surface the
// context's verdict ("run canceled"), not the transport's.
func TestCancelBeatsHungShard(t *testing.T) {
	cl, err := NewCluster(Options{
		Shards:      2,
		StepTimeout: 60 * time.Second,
		Fault:       &FaultPlan{Shard: 0, Round: 1, Mode: "hang"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	err = runDRA(ctx, cl, 24)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled run returned %v, want DeadlineExceeded in the chain", err)
	}
	if !strings.Contains(err.Error(), "run canceled") {
		t.Fatalf("canceled run rendered %q", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("cancellation took %v, want ~the 1s context deadline", elapsed)
	}
}

// TestFaultsLeakNoGoroutines runs a crash fault and a hang fault back to
// back and requires the goroutine count to return to its baseline: with a
// per-link I/O goroutine in the coordinator, a leaked ioLoop (or a worker
// stuck on an unreleased hang) would show up here even when the runs
// themselves classify correctly.
func TestFaultsLeakNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for _, fault := range []*FaultPlan{
		{Shard: 1, Round: 2, Mode: "crash"},
		{Shard: 0, Round: 1, Mode: "hang"},
	} {
		cl, err := NewCluster(Options{Shards: 3, StepTimeout: 2 * time.Second, Fault: fault})
		if err != nil {
			t.Fatal(err)
		}
		if err := runDRA(context.Background(), cl, 24); !errors.Is(err, ErrShardDown) {
			t.Fatalf("fault %+v returned %v, want ErrShardDown", fault, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("%d goroutines alive after fault runs, baseline %d", n, baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestProcBadBinary exercises the spawn-failure path of the process
// transport: a missing hcshard binary must fail the run cleanly.
func TestProcBadBinary(t *testing.T) {
	cl, err := NewCluster(Options{
		Shards:      2,
		Transport:   TransportProc,
		ShardBinary: "/nonexistent/hcshard-missing",
		StepTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := runDRA(context.Background(), cl, 24); err == nil || !strings.Contains(err.Error(), "start") {
		t.Fatalf("missing binary returned %v", err)
	}
}

// TestClusterOptionValidation pins the constructor's input checking.
func TestClusterOptionValidation(t *testing.T) {
	if _, err := NewCluster(Options{Shards: 0}); err == nil {
		t.Fatal("shard count 0 accepted")
	}
	if _, err := NewCluster(Options{Shards: 2, Transport: "carrier-pigeon"}); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if _, err := NewCluster(Options{Shards: 2, StepTimeout: -time.Second}); err == nil {
		t.Fatal("negative timeout accepted")
	}
	cl, err := NewCluster(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cl.opts.Transport != TransportUnix || cl.opts.StepTimeout != defaultStepTimeout {
		t.Fatalf("defaults not applied: %+v", cl.opts)
	}
}

// TestResetRejectsFaultHook: the in-process chaos hook cannot cross shard
// boundaries, so sharded execution must refuse it rather than silently run
// without faults.
func TestResetRejectsFaultHook(t *testing.T) {
	cl, err := NewCluster(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GNP(8, 0.5, rng.New(1))
	nodes := make([]congest.Node, g.N())
	progs, err := BuildPrograms(congest.ProgramSpec{Algo: "dra", B: 4}, 0, g.N())
	if err != nil {
		t.Fatal(err)
	}
	copy(nodes, progs)
	opts := congest.Options{
		FaultHook: func(round int64, from, to graph.NodeID, m wire.Message) (wire.Message, bool) {
			return m, true
		},
	}
	if err := cl.Reset(g, nodes, opts); err == nil || !strings.Contains(err.Error(), "FaultHook") {
		t.Fatalf("Reset with FaultHook returned %v", err)
	}
}
