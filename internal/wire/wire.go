// Package wire defines the message vocabulary of every distributed algorithm
// in this repository and its binary encoding, with exact bit-size accounting.
//
// The CONGEST model allows O(log n) bits per edge per round. All algorithm
// messages carry a small constant number of node identifiers or path indices,
// each of which needs ceil(log2 n) bits, so every message fits the model. The
// Codec computes the exact width of a message for a given network size, and
// the network simulator rejects messages wider than its per-edge bandwidth.
package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Kind discriminates message types across all algorithms.
type Kind uint8

const (
	// KindProgress is DRA's progress(pos) from the head to the chosen
	// neighbor (Algorithm 1 line 10).
	KindProgress Kind = iota + 1
	// KindRotation is DRA's rotation(h, j) broadcast (Algorithm 1 line 17).
	KindRotation
	// KindSuccess announces the cycle closed (Algorithm 1 line 12).
	KindSuccess
	// KindVerify is DHC2's verify(succ(v)) probe to nodes of the partner
	// color (Algorithm 3 line 7).
	KindVerify
	// KindVerified is DHC2's verified(u, u') reply (Algorithm 3 line 16).
	KindVerified
	// KindBuildBridge commits a chosen bridge (Algorithm 3 line 12).
	KindBuildBridge
	// KindCandidate carries a leader-election candidate id.
	KindCandidate
	// KindBFSExplore expands a BFS tree (parent -> children).
	KindBFSExplore
	// KindBFSAck acknowledges BFS adoption (child -> parent).
	KindBFSAck
	// KindBroadcast is a generic subgraph-scoped broadcast payload.
	KindBroadcast
	// KindEdgeSample carries one sampled edge up the BFS tree (Upcast
	// step 3).
	KindEdgeSample
	// KindHCEdge carries one Hamiltonian-cycle edge down the BFS tree
	// (Upcast step 4).
	KindHCEdge
	// KindToken is an application payload (examples/overlayring).
	KindToken
	// KindCount carries a subtree count up a BFS tree (convergecast).
	KindCount
	// KindSizeAnnounce broadcasts a computed size (e.g. partition size)
	// back down.
	KindSizeAnnounce
	// KindBarrierUp reports "my whole subtree reached barrier seq".
	KindBarrierUp
	// KindBarrierGo releases barrier seq from the root downward.
	KindBarrierGo
	// KindColor announces a node's partition color to its neighbors.
	KindColor
	// KindPort announces that a node is a hypernode port (DHC1 Phase 2).
	KindPort
	// KindRelay carries state between the two ports of a hypernode.
	KindRelay
	// KindQuery asks a cycle neighbor whether it is adjacent to a given
	// node (DHC2 bridge verification, Algorithm 3 line 15).
	KindQuery
	// KindQueryReply answers a KindQuery.
	KindQueryReply
	// KindReject tells a probing hypernode head its probe was invalid.
	KindReject
	// KindBridgeCand floods a bridge candidate within a partition for
	// minimum selection (Algorithm 3 line 10).
	KindBridgeCand
	// KindReverse tells a merged partner cycle to reverse its orientation.
	KindReverse

	kindMax
)

var kindNames = map[Kind]string{
	KindProgress:     "progress",
	KindRotation:     "rotation",
	KindSuccess:      "success",
	KindVerify:       "verify",
	KindVerified:     "verified",
	KindBuildBridge:  "buildBridge",
	KindCandidate:    "candidate",
	KindBFSExplore:   "bfsExplore",
	KindBFSAck:       "bfsAck",
	KindBroadcast:    "broadcast",
	KindEdgeSample:   "edgeSample",
	KindHCEdge:       "hcEdge",
	KindToken:        "token",
	KindCount:        "count",
	KindSizeAnnounce: "sizeAnnounce",
	KindBarrierUp:    "barrierUp",
	KindBarrierGo:    "barrierGo",
	KindColor:        "color",
	KindPort:         "port",
	KindRelay:        "relay",
	KindQuery:        "query",
	KindQueryReply:   "queryReply",
	KindReject:       "reject",
	KindBridgeCand:   "bridgeCand",
	KindReverse:      "reverse",
}

// String returns the message-kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// maxArgs is the largest number of id-sized arguments any message carries.
const maxArgs = 4

// Message is one CONGEST message. Args[0:NArgs] are node ids or path indices,
// each of which costs ceil(log2 n) bits on the wire.
type Message struct {
	Kind  Kind
	NArgs uint8
	Args  [maxArgs]int32
}

// Msg constructs a message; convenience for the algorithm packages.
func Msg(k Kind, args ...int32) Message {
	if len(args) > maxArgs {
		panic(fmt.Sprintf("wire: message with %d args exceeds max %d", len(args), maxArgs))
	}
	m := Message{Kind: k, NArgs: uint8(len(args))}
	copy(m.Args[:], args)
	return m
}

// Arg returns the i-th argument; zero if out of range, so malformed messages
// degrade predictably in tests.
func (m Message) Arg(i int) int32 {
	if i < 0 || i >= int(m.NArgs) {
		return 0
	}
	return m.Args[i]
}

// String renders e.g. "rotation(7,3)".
func (m Message) String() string {
	s := m.Kind.String() + "("
	for i := 0; i < int(m.NArgs); i++ {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", m.Args[i])
	}
	return s + ")"
}

// Codec computes message widths and encodes messages for an n-node network.
type Codec struct {
	// IDBits is the width of one node id / index field: ceil(log2 n),
	// minimum 1.
	IDBits int
}

// NewCodec returns the codec for an n-node network.
func NewCodec(n int) Codec {
	if n < 2 {
		return Codec{IDBits: 1}
	}
	return Codec{IDBits: bits.Len(uint(n - 1))}
}

// Valid reports whether k is a defined message kind. Decoders that rebuild
// messages field by field (rather than through Codec.Decode's byte form) use
// it to apply the same kind validation.
func (k Kind) Valid() bool { return k > 0 && k < kindMax }

// kindBits is the width of the kind field. 8 bits covers all kinds with room
// for application extensions.
const kindBits = 8

// Bits returns the exact payload width of m in bits: the kind tag plus one
// id-sized field per argument. Path indices (positions, sizes) are bounded by
// n so they also fit in IDBits; fields that can reach n itself (e.g. a cycle
// length) need one extra value, which IDBits+1 would cover — we charge IDBits
// and allow indices up to 2^IDBits - 1, which holds for all our messages
// because positions are at most n and IDBits = ceil(log2 n) gives
// 2^IDBits >= n.
func (c Codec) Bits(m Message) int64 {
	return kindBits + int64(m.NArgs)*int64(c.IDBits)
}

// MaxEncodedLen is the largest wire form of any message: kind + arg count +
// maxArgs 4-byte arguments. Size reusable buffers for AppendEncode with it.
const MaxEncodedLen = 2 + 4*maxArgs

// EncodedLen returns the byte length of m's wire form.
func (m Message) EncodedLen() int { return 2 + 4*int(m.NArgs) }

// AppendEncode appends m's wire form — kind, arg count, then each argument
// as a 4-byte big-endian value — to dst and returns the extended slice. It
// is the zero-allocation fast path: when dst has spare capacity (at least
// MaxEncodedLen), no allocation occurs, so a transcript writer reusing one
// buffer encodes at steady state without garbage.
func (c Codec) AppendEncode(dst []byte, m Message) []byte {
	dst = append(dst, byte(m.Kind), m.NArgs)
	for i := 0; i < int(m.NArgs); i++ {
		a := uint32(m.Args[i])
		dst = append(dst, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return dst
}

// Encode serializes m to a fresh buffer (see AppendEncode for the
// allocation-free form). The byte form is used for transcript dumps and
// fidelity tests; the simulator itself accounts sizes with Bits, which
// reflects the information-theoretic width rather than byte padding.
func (c Codec) Encode(m Message) []byte {
	return c.AppendEncode(make([]byte, 0, m.EncodedLen()), m)
}

// Decode parses the Encode format.
func (c Codec) Decode(buf []byte) (Message, error) {
	if len(buf) < 2 {
		return Message{}, fmt.Errorf("wire: short message (%d bytes)", len(buf))
	}
	k := Kind(buf[0])
	if k == 0 || k >= kindMax {
		return Message{}, fmt.Errorf("wire: unknown kind %d", buf[0])
	}
	nargs := buf[1]
	if nargs > maxArgs {
		return Message{}, fmt.Errorf("wire: %d args exceeds max %d", nargs, maxArgs)
	}
	if len(buf) != 2+4*int(nargs) {
		return Message{}, fmt.Errorf("wire: length %d inconsistent with %d args", len(buf), nargs)
	}
	m := Message{Kind: k, NArgs: nargs}
	for i := 0; i < int(nargs); i++ {
		m.Args[i] = int32(binary.BigEndian.Uint32(buf[2+4*i:]))
	}
	return m, nil
}
