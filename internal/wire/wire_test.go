package wire

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMsgConstruction(t *testing.T) {
	m := Msg(KindRotation, 7, 3)
	if m.Kind != KindRotation || m.NArgs != 2 {
		t.Fatalf("msg %+v", m)
	}
	if m.Arg(0) != 7 || m.Arg(1) != 3 {
		t.Fatal("args wrong")
	}
	if m.Arg(2) != 0 || m.Arg(-1) != 0 {
		t.Fatal("out-of-range Arg should be 0")
	}
}

func TestMsgPanicsOnTooManyArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Msg(KindProgress, 1, 2, 3, 4, 5)
}

func TestString(t *testing.T) {
	if s := Msg(KindRotation, 7, 3).String(); s != "rotation(7,3)" {
		t.Fatalf("got %q", s)
	}
	if s := Msg(KindSuccess).String(); s != "success()" {
		t.Fatalf("got %q", s)
	}
	if s := Kind(200).String(); !strings.Contains(s, "200") {
		t.Fatalf("got %q", s)
	}
}

func TestCodecIDBits(t *testing.T) {
	cases := []struct{ n, bits int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := NewCodec(c.n).IDBits; got != c.bits {
			t.Errorf("NewCodec(%d).IDBits = %d, want %d", c.n, got, c.bits)
		}
	}
}

func TestBitsAccounting(t *testing.T) {
	c := NewCodec(1024) // 10 id bits
	if got := c.Bits(Msg(KindSuccess)); got != 8 {
		t.Fatalf("zero-arg bits %d", got)
	}
	if got := c.Bits(Msg(KindRotation, 1, 2)); got != 8+20 {
		t.Fatalf("two-arg bits %d", got)
	}
	if got := c.Bits(Msg(KindVerified, 1, 2, 3, 4)); got != 8+40 {
		t.Fatalf("four-arg bits %d", got)
	}
}

func TestAllMessagesFitCONGEST(t *testing.T) {
	// Every kind with the max number of args must fit in O(log n) bits;
	// the simulator default bandwidth is 8*IDBits. Check the paper's
	// requirement with a generous constant.
	for _, n := range []int{16, 1024, 1 << 20} {
		c := NewCodec(n)
		budget := int64(8 * c.IDBits)
		m := Msg(KindVerified, 1, 2, 3, 4)
		if c.Bits(m) > budget {
			t.Fatalf("n=%d: widest message %d bits exceeds budget %d", n, c.Bits(m), budget)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := NewCodec(1000)
	check := func(kindRaw uint8, a, b int32, nargsRaw uint8) bool {
		kind := Kind(kindRaw%uint8(kindMax-1)) + 1
		nargs := nargsRaw % (maxArgs + 1)
		m := Message{Kind: kind, NArgs: nargs}
		m.Args[0], m.Args[1] = a, b
		got, err := c.Decode(c.Encode(m))
		if err != nil {
			return false
		}
		if got.Kind != m.Kind || got.NArgs != m.NArgs {
			return false
		}
		for i := 0; i < int(nargs); i++ {
			if got.Args[i] != m.Args[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	c := NewCodec(100)
	cases := map[string][]byte{
		"short":            {},
		"one byte":         {1},
		"unknown kind":     {0, 0},
		"kind too big":     {250, 0},
		"too many args":    {1, 9},
		"length mismatch":  {1, 2, 0, 0, 0, 1},
		"trailing garbage": append(c.Encode(Msg(KindSuccess)), 0xff),
	}
	for name, buf := range cases {
		if _, err := c.Decode(buf); err == nil {
			t.Errorf("%s: decode accepted %v", name, buf)
		}
	}
}

// TestAppendEncodeMatchesEncode pins the fast path to the allocating form.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	c := NewCodec(1024)
	buf := make([]byte, 0, MaxEncodedLen)
	for _, m := range []Message{
		Msg(KindSuccess),
		Msg(KindProgress, 7),
		Msg(KindRotation, 1, 2, 3, 4),
		Msg(KindVerified, -1, 1<<30, 0),
	} {
		want := c.Encode(m)
		got := c.AppendEncode(buf[:0], m)
		if string(got) != string(want) {
			t.Fatalf("AppendEncode(%v) = %v, Encode = %v", m, got, want)
		}
		if m.EncodedLen() != len(want) {
			t.Fatalf("EncodedLen(%v) = %d, encoded %d bytes", m, m.EncodedLen(), len(want))
		}
	}
}

// TestCodecFastPathZeroAllocs pins the steady-state allocation count of the
// encode/decode fast path at exactly zero.
func TestCodecFastPathZeroAllocs(t *testing.T) {
	c := NewCodec(1 << 20)
	m := Msg(KindRotation, 9, 4, 123, 77)
	buf := make([]byte, 0, MaxEncodedLen)
	encoded := c.Encode(m)
	if avg := testing.AllocsPerRun(1000, func() {
		buf = c.AppendEncode(buf[:0], m)
	}); avg != 0 {
		t.Fatalf("AppendEncode allocates %.1f times per op", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		got, err := c.Decode(encoded)
		if err != nil || got.Kind != m.Kind {
			t.Fatal("bad decode")
		}
	}); avg != 0 {
		t.Fatalf("Decode allocates %.1f times per op", avg)
	}
}

func BenchmarkAppendEncode(b *testing.B) {
	c := NewCodec(1 << 20)
	m := Msg(KindRotation, 9, 4, 123, 77)
	buf := make([]byte, 0, MaxEncodedLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = c.AppendEncode(buf[:0], m)
	}
}

func BenchmarkDecode(b *testing.B) {
	c := NewCodec(1 << 20)
	encoded := c.Encode(Msg(KindRotation, 9, 4, 123, 77))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(encoded); err != nil {
			b.Fatal(err)
		}
	}
}
