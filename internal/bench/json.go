package bench

// Versioned machine-readable benchmark reports. Every PR that touches a hot
// path records a BENCH_<rev>.json at the repository root via
// `hcbench -json`, so the perf trajectory of the codebase is comparable
// across revisions without re-running old binaries. The schema is
// intentionally flat: one Record per (algo, engine, n, workers, seed) run,
// wrapped in a Report that pins the schema version and the host shape the
// numbers were measured on.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion identifies the BENCH_<rev>.json layout. Bump it when a field
// changes meaning or disappears; pure additions are backward compatible and
// do not require a bump.
const SchemaVersion = 1

// Record is one measured run.
type Record struct {
	// Algo is the short algorithm name ("dra", "dhc1", "dhc2", "upcast").
	Algo string `json:"algo"`
	// Engine is "exact" (event-driven), "exact-dense" (the dense-sweep
	// oracle) or "step".
	Engine string `json:"engine"`
	// N and M are the instance's vertex and edge counts; P its density.
	N int     `json:"n"`
	M int64   `json:"m"`
	P float64 `json:"p"`
	// Seed is the Solve seed; GraphSeed the generator seed.
	Seed      uint64 `json:"seed"`
	GraphSeed uint64 `json:"graph_seed"`
	// NumColors is the partition count K passed to the run (0 = derived).
	NumColors int `json:"num_colors,omitempty"`
	// BroadcastBound is the B override passed to the run (0 = the
	// algorithm's default tight bound).
	BroadcastBound int64 `json:"broadcast_bound,omitempty"`
	// Workers is the worker-pool bound the run was measured at.
	Workers int `json:"workers"`
	// WallSeconds is the Solve call's wall-clock time (graph generation
	// excluded — graphs are built once and shared across the worker grid).
	WallSeconds float64 `json:"wall_seconds"`
	// Rounds/Steps and the phase split are the run's charged or measured
	// costs, byte-identical across Workers values by the determinism
	// contract (see determinism_test.go).
	Rounds       int64 `json:"rounds"`
	Steps        int64 `json:"steps"`
	Phase1Rounds int64 `json:"phase1_rounds"`
	Phase2Rounds int64 `json:"phase2_rounds"`
	// Messages/Bits are the exact engine's full message counters (zero for
	// the step engine, which does not exchange messages). They let a report
	// demonstrate the event-vs-dense identity contract: rows differing only
	// in engine "exact" vs "exact-dense" must agree on rounds, messages and
	// bits byte for byte.
	Messages int64 `json:"messages,omitempty"`
	Bits     int64 `json:"bits,omitempty"`
	// RoundsSkipped is the quiet-round subset of Rounds the event-driven
	// engine charged without executing (zero for exact-dense and step).
	RoundsSkipped int64 `json:"rounds_skipped,omitempty"`
	// OK is false when the run errored; Error then holds the message.
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// Report is the top-level BENCH_<rev>.json document.
type Report struct {
	SchemaVersion int `json:"schema_version"`
	// Rev labels the source revision the binary was built from.
	Rev string `json:"rev"`
	// GoVersion and NumCPU pin the host shape: wall-clock comparisons
	// (notably worker scaling) are only meaningful at NumCPU > 1.
	GoVersion string   `json:"go_version"`
	NumCPU    int      `json:"num_cpu"`
	Records   []Record `json:"records"`
}

// NewReport creates an empty report for the given revision label and host.
func NewReport(rev, goVersion string, numCPU int) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Rev:           rev,
		GoVersion:     goVersion,
		NumCPU:        numCPU,
	}
}

// Append adds a record.
func (r *Report) Append(rec Record) { r.Records = append(r.Records, rec) }

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport parses and validates a BENCH_*.json document. Unknown fields
// are rejected so schema drift fails loudly instead of silently dropping
// data.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: malformed report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Validate checks structural invariants: known schema version, non-empty
// identity fields, coherent costs. It does NOT fail on OK=false records —
// a report may legitimately document failures; use FailedRecords for CI
// gating.
func (r *Report) Validate() error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("bench: unsupported schema version %d (want %d)", r.SchemaVersion, SchemaVersion)
	}
	if r.Rev == "" {
		return fmt.Errorf("bench: report missing rev")
	}
	if len(r.Records) == 0 {
		return fmt.Errorf("bench: report has no records")
	}
	for i, rec := range r.Records {
		if rec.Algo == "" {
			return fmt.Errorf("bench: record %d missing algo", i)
		}
		if rec.Engine != "exact" && rec.Engine != "exact-dense" && rec.Engine != "step" {
			return fmt.Errorf("bench: record %d has unknown engine %q", i, rec.Engine)
		}
		if rec.N <= 0 {
			return fmt.Errorf("bench: record %d has n = %d", i, rec.N)
		}
		if rec.Workers < 0 {
			return fmt.Errorf("bench: record %d has workers = %d", i, rec.Workers)
		}
		if rec.WallSeconds < 0 {
			return fmt.Errorf("bench: record %d has negative wall time", i)
		}
		if rec.OK && rec.Error != "" {
			return fmt.Errorf("bench: record %d is ok but carries error %q", i, rec.Error)
		}
		if rec.OK && rec.Rounds <= 0 {
			return fmt.Errorf("bench: record %d succeeded with no rounds charged", i)
		}
		if !rec.OK && rec.Error == "" {
			return fmt.Errorf("bench: record %d failed without an error message", i)
		}
	}
	return nil
}

// FailedRecords returns the indices of records with OK=false, for callers
// (the CI smoke job) that treat any failed run as fatal.
func (r *Report) FailedRecords() []int {
	var out []int
	for i, rec := range r.Records {
		if !rec.OK {
			out = append(out, i)
		}
	}
	return out
}

// Speedup returns wall-clock ratio base/test between the first records
// matching (algo, engine, n) at the two worker counts, and false when either
// side is missing or failed. It is the accessor the perf trajectory is read
// through: Speedup(..., 1, 8) > 1 means workers=8 beat workers=1.
func (r *Report) Speedup(algo, engine string, n, baseWorkers, testWorkers int) (float64, bool) {
	find := func(workers int) (Record, bool) {
		for _, rec := range r.Records {
			if rec.Algo == algo && rec.Engine == engine && rec.N == n && rec.Workers == workers && rec.OK {
				return rec, true
			}
		}
		return Record{}, false
	}
	base, ok1 := find(baseWorkers)
	test, ok2 := find(testWorkers)
	if !ok1 || !ok2 || test.WallSeconds <= 0 {
		return 0, false
	}
	return base.WallSeconds / test.WallSeconds, true
}
