package bench

// Versioned machine-readable benchmark reports. Every PR that touches a hot
// path records a BENCH_<rev>.json at the repository root via
// `hcbench -json`, so the perf trajectory of the codebase is comparable
// across revisions without re-running old binaries. The schema is
// intentionally flat: one Record per (algo, engine, n, workers, seed) run,
// wrapped in a Report that pins the schema version and the host shape the
// numbers were measured on.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"dhc"
)

// SchemaVersion identifies the BENCH_<rev>.json layout. Bump it when a field
// changes meaning or disappears; pure additions are backward compatible and
// do not require a bump.
//
// v2 added the optional sweep section (per-cell Monte Carlo statistics and
// scaling fits, written by hcsweep) and allowed a report to carry a sweep
// section instead of records; every v1 document is also a valid v2 document,
// so DecodeReport accepts both versions.
const SchemaVersion = 2

// minSchemaVersion is the oldest layout DecodeReport still accepts.
const minSchemaVersion = 1

// Record is one measured run.
type Record struct {
	// Algo is the short algorithm name ("dra", "dhc1", "dhc2", "upcast").
	Algo string `json:"algo"`
	// Engine is "exact" (event-driven), "exact-dense" (the dense-sweep
	// oracle) or "step".
	Engine string `json:"engine"`
	// N and M are the instance's vertex and edge counts; P its density.
	N int     `json:"n"`
	M int64   `json:"m"`
	P float64 `json:"p"`
	// Seed is the Solve seed; GraphSeed the generator seed.
	Seed      uint64 `json:"seed"`
	GraphSeed uint64 `json:"graph_seed"`
	// NumColors is the partition count K passed to the run (0 = derived).
	NumColors int `json:"num_colors,omitempty"`
	// BroadcastBound is the B override passed to the run (0 = the
	// algorithm's default tight bound).
	BroadcastBound int64 `json:"broadcast_bound,omitempty"`
	// Workers is the worker-pool bound the run was measured at.
	Workers int `json:"workers"`
	// Mode distinguishes solver-lifecycle benchmark rows: "" for ordinary
	// single-run records, "fresh" for a repeated-trial series through
	// independent Solve calls, "reuse" for the same series through one
	// reusable Solver session. Rows differing only in "fresh" vs "reuse"
	// measure the session-reuse speedup.
	Mode string `json:"mode,omitempty"`
	// Trials is the number of repeated trials a Mode row aggregates (0 for
	// ordinary records, which measure exactly one run).
	Trials int `json:"trials,omitempty"`
	// TrialsPerSec is Trials/WallSeconds for Mode rows — the repeated-trial
	// throughput this PR series tracks.
	TrialsPerSec float64 `json:"trials_per_sec,omitempty"`
	// WallSeconds is the Solve call's wall-clock time (graph generation
	// excluded — graphs are built once and shared across the worker grid).
	// For Mode rows it is the whole series' wall-clock.
	WallSeconds float64 `json:"wall_seconds"`
	// Rounds/Steps and the phase split are the run's charged or measured
	// costs, byte-identical across Workers values by the determinism
	// contract (see determinism_test.go).
	Rounds       int64 `json:"rounds"`
	Steps        int64 `json:"steps"`
	Phase1Rounds int64 `json:"phase1_rounds"`
	Phase2Rounds int64 `json:"phase2_rounds"`
	// Messages/Bits are the exact engine's full message counters (zero for
	// the step engine, which does not exchange messages). They let a report
	// demonstrate the event-vs-dense identity contract: rows differing only
	// in engine "exact" vs "exact-dense" must agree on rounds, messages and
	// bits byte for byte.
	Messages int64 `json:"messages,omitempty"`
	Bits     int64 `json:"bits,omitempty"`
	// RoundsSkipped is the quiet-round subset of Rounds the event-driven
	// engine charged without executing (zero for exact-dense and step).
	RoundsSkipped int64 `json:"rounds_skipped,omitempty"`
	// Scaling marks rows produced by the hcbench -scaling mode: a workers
	// curve measured over one shared instance with heap high-water metering.
	// Successful scaling rows must carry MemPeakBytes (Validate enforces it)
	// so a scaling report can never silently lose its memory story. A pure
	// schema-v2 addition, like the three fields after it.
	Scaling bool `json:"scaling,omitempty"`
	// MemPeakBytes is the sampled heap high-water (runtime.ReadMemStats
	// HeapAlloc, see PeakSampler) over the Solve call, including the pinned
	// input graph.
	MemPeakBytes int64 `json:"mem_peak_bytes,omitempty"`
	// BytesPerVertex is the solver's working set per vertex above the pinned
	// graph: (MemPeakBytes - GraphBytes) / N. This is the packed-node-state
	// trajectory metric — it moves when per-vertex solver state is repacked,
	// and stays put when only the graph grows denser.
	BytesPerVertex float64 `json:"bytes_per_vertex,omitempty"`
	// ConstructionPeakBytes is the heap high-water over the instance's graph
	// construction, repeated on each of the instance's scaling rows. The
	// streaming-construction contract is ConstructionPeakBytes <= ~2x
	// GraphBytes plus a fixed per-vertex overhead.
	ConstructionPeakBytes int64 `json:"construction_peak_bytes,omitempty"`
	// GraphBytes is the built CSR's resident footprint (arena + offsets).
	GraphBytes int64 `json:"graph_bytes,omitempty"`
	// Shards and Transport describe the sharded topology of engine "dist"
	// rows: how many worker shards the run was partitioned across and the
	// transport their frames crossed ("unix", "tcp" or "proc"). Zero/empty
	// for the in-process engines; Validate enforces that pairing. Pure
	// schema-v2 additions.
	Shards    int    `json:"shards,omitempty"`
	Transport string `json:"transport,omitempty"`
	// ShardStats is the per-shard wall/bytes-on-the-wire accounting of a
	// dist row: each shard's vertex range, bytes sent/received through the
	// frame codec, and busy time inside Step/Deliver calls.
	ShardStats []dhc.ShardStat `json:"shard_stats,omitempty"`
	// RTTs is a dist row's coordinator round trips per link (every exchange
	// fans out to all shards, so links agree), and RTTsPerRound is RTTs
	// divided by the executed (non-skipped) round count: 1 plus epsilon
	// under the fused protocol, 2 plus epsilon under the PR 9 two-exchange
	// protocol. Pure schema-v2 additions, dist rows only.
	RTTs         int64   `json:"rtts,omitempty"`
	RTTsPerRound float64 `json:"rtts_per_round,omitempty"`
	// BatchBytesFixed/BatchBytesDelta total the coordinator->worker deliver
	// payload cost across shards under the fixed-width reference encoding
	// versus the delta-varint encoding actually on the wire.
	BatchBytesFixed int64 `json:"batch_bytes_fixed,omitempty"`
	BatchBytesDelta int64 `json:"batch_bytes_delta,omitempty"`
	// DistVsInProc is the dist row's wall-clock ratio against the in-process
	// exact row of the same (algo, n, seed, workers) in the same report:
	// above 1 the wire dominates, below 1 the shards out-run one core.
	DistVsInProc float64 `json:"dist_vs_inproc,omitempty"`
	// OK is false when the run errored; Error then holds the message.
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// Quantiles summarizes one per-trial cost series with nearest-rank order
// statistics over the cell's successful trials.
type Quantiles struct {
	P50 int64 `json:"p50"`
	P90 int64 `json:"p90"`
	Max int64 `json:"max"`
}

// NewQuantiles computes nearest-rank quantiles of values (which it sorts in
// place). An empty series yields the zero Quantiles.
func NewQuantiles(values []int64) Quantiles {
	if len(values) == 0 {
		return Quantiles{}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	rank := func(p float64) int64 {
		return values[int(p*float64(len(values)-1))]
	}
	return Quantiles{P50: rank(0.50), P90: rank(0.90), Max: values[len(values)-1]}
}

// CellStats is one grid cell of a Monte Carlo sweep: the aggregate of Trials
// independent (graph, solve) runs of one (family, n, param, algo, engine)
// configuration. It deliberately carries no wall-clock fields — every field
// is a pure function of the master seed, which is what lets the sweep
// pipeline promise byte-identical reports at any worker count.
type CellStats struct {
	// Family is the graph family ("gnp", "gnm", "regular").
	Family string `json:"family"`
	N      int    `json:"n"`
	// Param is the family's density knob: the threshold constant c for
	// gnp/gnm (p = c·ln n / n^delta), the degree d for regular.
	Param float64 `json:"param"`
	// Delta is the gnp/gnm threshold exponent (0 for regular).
	Delta float64 `json:"delta,omitempty"`
	// P is the derived edge probability (0 for regular).
	P float64 `json:"p,omitempty"`
	// Algo and Engine name the solver configuration, with the same
	// spellings as Record ("dra", ... / "step", "exact", "exact-dense").
	Algo   string `json:"algo"`
	Engine string `json:"engine"`
	// Trials is the cell's trial count; the five outcome counters below
	// partition it (Successes + FailNoHC + FailRoundLimit + FailError +
	// FailCanceled).
	Trials         int `json:"trials"`
	Successes      int `json:"successes"`
	FailNoHC       int `json:"fail_no_hc,omitempty"`
	FailRoundLimit int `json:"fail_round_limit,omitempty"`
	FailError      int `json:"fail_error,omitempty"`
	// FailCanceled counts trials cut off by a per-cell timeout or an
	// operator interrupt. Unlike every other field it is wall-clock
	// dependent, so a canceled cell is never byte-stable: the sweep
	// pipeline refuses to resume from it (the cell re-runs) and -validate
	// rejects reports that still carry one.
	FailCanceled int `json:"fail_canceled,omitempty"`
	// SuccessRate is Successes/Trials, the Monte Carlo estimate of the
	// paper's "w.h.p." success probability at this grid point.
	SuccessRate float64 `json:"success_rate"`
	// FirstError samples one failure message, so a report documents *why* a
	// cell failed without storing every error. Classes are sampled in
	// severity order — a configuration error always wins the slot, then
	// round-limit, canceled, and plain no-cycle messages (first trial in
	// trial order within a class) — so a routine no_hc sentinel string can
	// never mask the config error a fail_error cell is reported for.
	FirstError string `json:"first_error,omitempty"`
	// Rounds/Steps summarize the successful trials' charged costs.
	Rounds Quantiles `json:"rounds"`
	Steps  Quantiles `json:"steps"`
	// Messages/Bits are present for the exact engines only (the step
	// engine exchanges no messages).
	Messages *Quantiles `json:"messages,omitempty"`
	Bits     *Quantiles `json:"bits,omitempty"`
}

// Key identifies the cell within a grid, independent of cell order. It is
// both the resume key and the input of the cell's RNG stream derivation.
func (c *CellStats) Key() string {
	return fmt.Sprintf("%s/n=%d/param=%g/delta=%g/%s/%s",
		c.Family, c.N, c.Param, c.Delta, c.Algo, c.Engine)
}

// ScalingFit is the log-log slope of a cost statistic against n along one
// (family, param, algo, engine) series of the grid — the empirical scaling
// exponent the paper's round/step theorems predict.
type ScalingFit struct {
	Family string  `json:"family"`
	Param  float64 `json:"param"`
	Delta  float64 `json:"delta,omitempty"`
	Algo   string  `json:"algo"`
	Engine string  `json:"engine"`
	// Points is the number of grid sizes with at least one success that
	// entered the fit; slopes need Points >= 2.
	Points int `json:"points"`
	// RoundsSlope and StepsSlope fit median rounds/steps ~ n^slope. Zero
	// means "no data" (the statistic is not metered for the configuration,
	// e.g. steps for algorithms that never rotate), never a real fit — a
	// genuine flat series fits a near-zero but non-zero slope.
	RoundsSlope float64 `json:"rounds_slope,omitempty"`
	StepsSlope  float64 `json:"steps_slope,omitempty"`
}

// GenRecord is one measured graph-construction run: how fast a generator
// family builds an instance at a given size. Generator throughput is part of
// the perf trajectory because the sweep pipeline regenerates every trial's
// graph — a slow generator taxes every Monte Carlo cell that uses it.
type GenRecord struct {
	// Family is the generator's family name (FamilyNames vocabulary).
	Family string `json:"family"`
	// N is the instance's vertex count; M its realized edge count.
	N int   `json:"n"`
	M int64 `json:"m"`
	// Param is the family's density knob with the same meaning as
	// CellStats.Param (0 for the deterministic lattices).
	Param float64 `json:"param,omitempty"`
	// Seed is the generator seed (0 for deterministic families).
	Seed uint64 `json:"seed,omitempty"`
	// WallSeconds is the construction wall-clock; EdgesPerSec is
	// M/WallSeconds, the throughput this section tracks.
	WallSeconds float64 `json:"wall_seconds"`
	EdgesPerSec float64 `json:"edges_per_sec,omitempty"`
}

// ServiceRecord is one hcbench -client load-test pass against a running
// hcserve instance: Requests solve requests issued over Conns concurrent
// connections, drawn round-robin from a mix of Distinct distinct request
// bodies. A cold pass touches each distinct request for the first time
// (every response computed); a warm pass repeats the same mix against the
// populated replay cache (every response replayed). The cold/warm p50 ratio
// of a pass pair is the cache-hit speedup this section tracks.
type ServiceRecord struct {
	// Pass is "cold" (cache-empty) or "warm" (cache-populated).
	Pass string `json:"pass"`
	// Conns is the number of concurrent client connections.
	Conns int `json:"conns"`
	// Requests is the number of requests the pass issued; Distinct is the
	// size of the request mix they were drawn from.
	Requests int `json:"requests"`
	Distinct int `json:"distinct"`
	// Algos, Engines and Sizes record the request mix's axes (comma lists,
	// same spellings as the pipeline flags).
	Algos   string `json:"algos"`
	Engines string `json:"engines"`
	Sizes   string `json:"sizes"`
	// WallSeconds is the whole pass's wall-clock; ReqPerSec its throughput.
	WallSeconds float64 `json:"wall_seconds"`
	ReqPerSec   float64 `json:"req_per_sec,omitempty"`
	// P50MS and P99MS are nearest-rank per-request latency quantiles in
	// milliseconds, measured at the client (network + queue + solve).
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// Hits and Misses count the responses' X-Cache headers; a warm pass over
	// an adequate cache should be all hits.
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	// Errors counts transport failures and non-outcome HTTP statuses
	// (anything other than ok/no_hc/round_limit). -validate treats any
	// error as fatal, like a failed Record.
	Errors int `json:"errors,omitempty"`
}

// SweepSection is the schema-v2 Monte Carlo payload: the grid's per-cell
// statistics plus the scaling fits across cells. MasterSeed, TrialsPerCell
// and the solver overrides pin the sweep's determinism contract —
// re-running the same grid with the same master seed reproduces the section
// byte for byte at any worker count — and are exactly the fields a resume
// must match before reusing cells (cell keys do not repeat them).
type SweepSection struct {
	MasterSeed    uint64 `json:"master_seed"`
	TrialsPerCell int    `json:"trials_per_cell"`
	// NumColors and MaxAttempts record the grid's solver overrides; cells
	// computed under different overrides are not comparable.
	NumColors   int          `json:"num_colors,omitempty"`
	MaxAttempts int          `json:"max_attempts,omitempty"`
	Cells       []CellStats  `json:"cells"`
	Fits        []ScalingFit `json:"fits,omitempty"`
}

// Report is the top-level BENCH_<rev>.json document.
type Report struct {
	SchemaVersion int `json:"schema_version"`
	// Rev labels the source revision the binary was built from.
	Rev string `json:"rev"`
	// GoVersion and NumCPU pin the host shape: wall-clock comparisons
	// (notably worker scaling) are only meaningful at NumCPU > 1.
	GoVersion string   `json:"go_version"`
	NumCPU    int      `json:"num_cpu"`
	Records   []Record `json:"records,omitempty"`
	// Sweep is the v2 Monte Carlo section (hcsweep); nil for pure
	// benchmark reports. A report must carry records, a sweep, generator
	// records, or any combination.
	Sweep *SweepSection `json:"sweep,omitempty"`
	// Generators holds graph-construction throughput rows (hcbench -gen).
	// A pure addition to schema v2: absent in older reports, ignored by
	// older readers.
	Generators []GenRecord `json:"generators,omitempty"`
	// Service holds hcserve load-test passes (hcbench -client). Like
	// Generators, a pure v2 addition.
	Service []ServiceRecord `json:"service,omitempty"`
}

// NewReport creates an empty report for the given revision label and host.
func NewReport(rev, goVersion string, numCPU int) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Rev:           rev,
		GoVersion:     goVersion,
		NumCPU:        numCPU,
	}
}

// Append adds a record.
func (r *Report) Append(rec Record) { r.Records = append(r.Records, rec) }

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport parses and validates a BENCH_*.json document. Unknown fields
// are rejected so schema drift fails loudly instead of silently dropping
// data.
func DecodeReport(data []byte) (*Report, error) {
	var r Report
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: malformed report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Validate checks structural invariants: known schema version, non-empty
// identity fields, coherent costs. It does NOT fail on OK=false records or
// failed sweep trials — a report may legitimately document failures; use
// FailedRecords (or the sweep's success rates) for CI gating.
func (r *Report) Validate() error {
	if r.SchemaVersion < minSchemaVersion || r.SchemaVersion > SchemaVersion {
		return fmt.Errorf("bench: unsupported schema version %d (want %d..%d)",
			r.SchemaVersion, minSchemaVersion, SchemaVersion)
	}
	if r.Rev == "" {
		return fmt.Errorf("bench: report missing rev")
	}
	if len(r.Records) == 0 && r.Sweep == nil && len(r.Generators) == 0 && len(r.Service) == 0 {
		return fmt.Errorf("bench: report has no records, sweep section, generator records, or service records")
	}
	if r.Sweep != nil && r.SchemaVersion < 2 {
		return fmt.Errorf("bench: sweep section requires schema version >= 2, got %d", r.SchemaVersion)
	}
	if r.Sweep != nil {
		if err := r.Sweep.validate(); err != nil {
			return err
		}
	}
	for i, g := range r.Generators {
		if !ValidFamily(g.Family) {
			return fmt.Errorf("bench: generator record %d has unknown family %q (valid: %s)",
				i, g.Family, strings.Join(FamilyNames(), ", "))
		}
		if g.N <= 0 {
			return fmt.Errorf("bench: generator record %d has n = %d", i, g.N)
		}
		if g.M < 0 {
			return fmt.Errorf("bench: generator record %d has m = %d", i, g.M)
		}
		if g.WallSeconds < 0 {
			return fmt.Errorf("bench: generator record %d has negative wall time", i)
		}
	}
	for i, s := range r.Service {
		if s.Pass != "cold" && s.Pass != "warm" {
			return fmt.Errorf("bench: service record %d has unknown pass %q (want cold or warm)", i, s.Pass)
		}
		if s.Conns <= 0 {
			return fmt.Errorf("bench: service record %d has conns = %d", i, s.Conns)
		}
		if s.Requests <= 0 {
			return fmt.Errorf("bench: service record %d has requests = %d", i, s.Requests)
		}
		if s.Distinct <= 0 || s.Distinct > s.Requests {
			return fmt.Errorf("bench: service record %d has distinct = %d of %d requests", i, s.Distinct, s.Requests)
		}
		if s.Hits+s.Misses+s.Errors != s.Requests {
			return fmt.Errorf("bench: service record %d hits+misses+errors do not partition %d requests", i, s.Requests)
		}
		if s.WallSeconds < 0 {
			return fmt.Errorf("bench: service record %d has negative wall time", i)
		}
		if s.P50MS < 0 || s.P99MS < s.P50MS {
			return fmt.Errorf("bench: service record %d has incoherent latency quantiles (p50=%v p99=%v)", i, s.P50MS, s.P99MS)
		}
	}
	for i, rec := range r.Records {
		if rec.Algo == "" {
			return fmt.Errorf("bench: record %d missing algo", i)
		}
		if !ValidEngine(rec.Engine) {
			return fmt.Errorf("bench: record %d has unknown engine %q", i, rec.Engine)
		}
		if rec.Engine == "dist" && rec.Shards < 2 {
			return fmt.Errorf("bench: record %d is a dist row with shards = %d", i, rec.Shards)
		}
		if rec.Engine != "dist" && (rec.Shards != 0 || len(rec.ShardStats) != 0 ||
			rec.RTTs != 0 || rec.RTTsPerRound != 0 ||
			rec.BatchBytesFixed != 0 || rec.BatchBytesDelta != 0 || rec.DistVsInProc != 0) {
			return fmt.Errorf("bench: record %d carries shard fields but engine is %q", i, rec.Engine)
		}
		if rec.N <= 0 {
			return fmt.Errorf("bench: record %d has n = %d", i, rec.N)
		}
		if rec.Workers < 0 {
			return fmt.Errorf("bench: record %d has workers = %d", i, rec.Workers)
		}
		if rec.Mode != "" && rec.Mode != "fresh" && rec.Mode != "reuse" {
			return fmt.Errorf("bench: record %d has unknown mode %q", i, rec.Mode)
		}
		if rec.Mode != "" && rec.Trials <= 0 {
			return fmt.Errorf("bench: record %d mode %q needs trials > 0", i, rec.Mode)
		}
		if rec.WallSeconds < 0 {
			return fmt.Errorf("bench: record %d has negative wall time", i)
		}
		if rec.OK && rec.Error != "" {
			return fmt.Errorf("bench: record %d is ok but carries error %q", i, rec.Error)
		}
		if rec.OK && rec.Rounds <= 0 {
			return fmt.Errorf("bench: record %d succeeded with no rounds charged", i)
		}
		if !rec.OK && rec.Error == "" {
			return fmt.Errorf("bench: record %d failed without an error message", i)
		}
		if rec.Scaling && rec.OK && rec.MemPeakBytes <= 0 {
			return fmt.Errorf("bench: record %d is a scaling row without mem_peak_bytes", i)
		}
		if rec.MemPeakBytes < 0 || rec.ConstructionPeakBytes < 0 || rec.GraphBytes < 0 {
			return fmt.Errorf("bench: record %d has a negative memory field", i)
		}
	}
	return nil
}

// validate checks the sweep section's cell invariants.
func (s *SweepSection) validate() error {
	if len(s.Cells) == 0 {
		return fmt.Errorf("bench: sweep section has no cells")
	}
	seen := make(map[string]bool, len(s.Cells))
	for i := range s.Cells {
		c := &s.Cells[i]
		if !ValidFamily(c.Family) {
			return fmt.Errorf("bench: sweep cell %d has unknown family %q (valid: %s)",
				i, c.Family, strings.Join(FamilyNames(), ", "))
		}
		if c.Algo == "" {
			return fmt.Errorf("bench: sweep cell %d missing algo", i)
		}
		if !ValidEngine(c.Engine) {
			return fmt.Errorf("bench: sweep cell %d has unknown engine %q", i, c.Engine)
		}
		if c.N <= 0 {
			return fmt.Errorf("bench: sweep cell %d has n = %d", i, c.N)
		}
		if c.Trials <= 0 {
			return fmt.Errorf("bench: sweep cell %d has %d trials", i, c.Trials)
		}
		if c.Successes+c.FailNoHC+c.FailRoundLimit+c.FailError+c.FailCanceled != c.Trials {
			return fmt.Errorf("bench: sweep cell %d outcome counts do not partition %d trials", i, c.Trials)
		}
		if got, want := c.SuccessRate, float64(c.Successes)/float64(c.Trials); got != want {
			return fmt.Errorf("bench: sweep cell %d success rate %v inconsistent with %d/%d", i, got, c.Successes, c.Trials)
		}
		if key := c.Key(); seen[key] {
			return fmt.Errorf("bench: duplicate sweep cell %s", key)
		} else {
			seen[key] = true
		}
	}
	return nil
}

// FailedRecords returns the indices of records with OK=false, for callers
// (the CI smoke job) that treat any failed run as fatal.
func (r *Report) FailedRecords() []int {
	var out []int
	for i, rec := range r.Records {
		if !rec.OK {
			out = append(out, i)
		}
	}
	return out
}

// CacheSpeedup returns the replay-cache hit speedup of the first cold/warm
// service-pass pair — cold p50 latency over warm p50 latency — and false
// when either pass is missing, errored, or degenerate. It is the accessor
// the service perf trajectory is read through.
func (r *Report) CacheSpeedup() (float64, bool) {
	find := func(pass string) (ServiceRecord, bool) {
		for _, s := range r.Service {
			if s.Pass == pass && s.Errors == 0 {
				return s, true
			}
		}
		return ServiceRecord{}, false
	}
	cold, ok1 := find("cold")
	warm, ok2 := find("warm")
	if !ok1 || !ok2 || warm.P50MS <= 0 {
		return 0, false
	}
	return cold.P50MS / warm.P50MS, true
}

// Speedup returns wall-clock ratio base/test between the first records
// matching (algo, engine, n) at the two worker counts, and false when either
// side is missing or failed. Mode rows (fresh/reuse series) are excluded:
// their WallSeconds aggregates a whole trial series and would corrupt a
// single-run ratio. It is the accessor the perf trajectory is read through:
// Speedup(..., 1, 8) > 1 means workers=8 beat workers=1.
func (r *Report) Speedup(algo, engine string, n, baseWorkers, testWorkers int) (float64, bool) {
	find := func(workers int) (Record, bool) {
		for _, rec := range r.Records {
			if rec.Algo == algo && rec.Engine == engine && rec.N == n && rec.Workers == workers && rec.OK && rec.Mode == "" {
				return rec, true
			}
		}
		return Record{}, false
	}
	base, ok1 := find(baseWorkers)
	test, ok2 := find(testWorkers)
	if !ok1 || !ok2 || test.WallSeconds <= 0 {
		return 0, false
	}
	return base.WallSeconds / test.WallSeconds, true
}
