package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFitExponent(t *testing.T) {
	// y = 3 x^2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if b := FitExponent(xs, ys); math.Abs(b-2) > 1e-9 {
		t.Fatalf("exponent %v, want 2", b)
	}
	if !math.IsNaN(FitExponent([]float64{1}, []float64{1})) {
		t.Fatal("single point should be NaN")
	}
	if !math.IsNaN(FitExponent([]float64{0, -1}, []float64{1, 1})) {
		t.Fatal("non-positive xs should be NaN")
	}
}

func TestGeoMeanRatio(t *testing.T) {
	r := GeoMeanRatio([]float64{1, 1}, []float64{2, 8})
	if math.Abs(r-4) > 1e-9 {
		t.Fatalf("ratio %v, want 4", r)
	}
}

func TestTableWrite(t *testing.T) {
	tb := &Table{Name: "X", Caption: "c", ExtraCols: []string{"k"}}
	tb.Append(Row{Label: "a", N: 10, P: 0.5, Rounds: 7, Steps: 3, OK: true,
		Extra: map[string]float64{"k": 1.5}})
	var buf bytes.Buffer
	if err := tb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"## X", "label", "a\t10", "1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestColumns(t *testing.T) {
	rows := []Row{
		{N: 10, Rounds: 100, OK: true},
		{N: 20, Rounds: 200, OK: false}, // skipped
		{N: 30, Rounds: 300, OK: true},
	}
	xs, ys := Columns(rows, XN, YRounds)
	if len(xs) != 2 || xs[1] != 30 || ys[1] != 300 {
		t.Fatalf("columns wrong: %v %v", xs, ys)
	}
}

func TestE3Concentration(t *testing.T) {
	tb := E3(Config{Seed: 1})
	for _, r := range tb.Rows {
		// Chernoff concentration width scales as 1/sqrt(mean class size);
		// the paper's [1/2, 3/2] band is the asymptotic statement.
		mean := float64(r.N) / r.Extra["k"]
		tol := 5 / math.Sqrt(mean)
		if r.Extra["min_ratio"] < 1-tol || r.Extra["max_ratio"] > 1+tol {
			t.Fatalf("partition sizes outside concentration band ±%.2f: %+v", tol, r)
		}
	}
}

func TestD1DiameterSmall(t *testing.T) {
	tb := D1(Config{Seed: 2, Scale: 0.25})
	for _, r := range tb.Rows {
		if !r.OK {
			t.Fatalf("disconnected sample graph at n=%d", r.N)
		}
		if r.Extra["diameter"] > 6*r.Extra["bound"] {
			t.Fatalf("diameter %v far above Chung-Lu bound %v at n=%d",
				r.Extra["diameter"], r.Extra["bound"], r.N)
		}
	}
}

func TestE1SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tb := E1(Config{Seed: 3, Scale: 0.25, Trials: 1})
	for _, r := range tb.Rows {
		if !r.OK {
			t.Fatalf("E1 failed at n=%d", r.N)
		}
		// Theorem 2 budget: steps/(n ln n) <= 7.
		if r.Extra["steps_over_nlogn"] > 7 {
			t.Fatalf("steps ratio %v exceeds Theorem 2 budget at n=%d",
				r.Extra["steps_over_nlogn"], r.N)
		}
	}
}
