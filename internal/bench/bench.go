// Package bench defines the experiment harness that regenerates the paper's
// per-theorem results (experiment index in DESIGN.md): workload generation,
// parameter sweeps, log-log exponent fitting, and table formatting. It is
// used both by cmd/hcbench (full sweeps, EXPERIMENTS.md rows) and by the
// testing.B benchmarks in the repository root.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Row is one sweep point of an experiment.
type Row struct {
	Label  string
	N      int
	P      float64
	Rounds int64
	Steps  int64
	Extra  map[string]float64
	OK     bool
}

// Table is a named collection of rows with column order.
type Table struct {
	Name    string
	Caption string
	Rows    []Row
	// ExtraCols lists Extra keys to print, in order.
	ExtraCols []string
}

// Append adds a row.
func (t *Table) Append(r Row) { t.Rows = append(t.Rows, r) }

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s\n%s\n\n", t.Name, t.Caption); err != nil {
		return err
	}
	header := []string{"label", "n", "p", "rounds", "steps", "ok"}
	header = append(header, t.ExtraCols...)
	if _, err := fmt.Fprintln(w, strings.Join(header, "\t")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		cols := []string{
			r.Label,
			fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%.5f", r.P),
			fmt.Sprintf("%d", r.Rounds),
			fmt.Sprintf("%d", r.Steps),
			fmt.Sprintf("%v", r.OK),
		}
		for _, k := range t.ExtraCols {
			cols = append(cols, fmt.Sprintf("%.4g", r.Extra[k]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cols, "\t")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// FitExponent least-squares fits log(y) = a + b·log(x) and returns b, the
// empirical scaling exponent. Points with non-positive values are skipped.
// It returns NaN with fewer than two usable points.
func FitExponent(xs []float64, ys []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
	}
	if n < 2 {
		return math.NaN()
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (fn*sxy - sx*sy) / den
}

// GeoMeanRatio returns the geometric mean of ys[i]/xs[i], used to compare
// algorithm round counts ("who wins, by what factor").
func GeoMeanRatio(xs, ys []float64) float64 {
	var s float64
	n := 0
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		s += math.Log(ys[i] / xs[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(s / float64(n))
}

// Columns extracts (x, y) float series from rows via accessor functions,
// skipping failed rows.
func Columns(rows []Row, x, y func(Row) float64) ([]float64, []float64) {
	var xs, ys []float64
	for _, r := range rows {
		if !r.OK {
			continue
		}
		xs = append(xs, x(r))
		ys = append(ys, y(r))
	}
	return xs, ys
}

// XN is the n accessor.
func XN(r Row) float64 { return float64(r.N) }

// YRounds is the rounds accessor.
func YRounds(r Row) float64 { return float64(r.Rounds) }

// YSteps is the steps accessor.
func YSteps(r Row) float64 { return float64(r.Steps) }
