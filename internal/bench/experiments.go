package bench

import (
	"fmt"
	"math"

	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/stepsim"
)

// Config tunes experiment sweeps. Zero values select defaults sized for a
// laptop run of a few minutes total.
type Config struct {
	// Trials per sweep point.
	Trials int
	// Scale multiplies the default n grids (1 = default; 0.5 halves).
	Scale float64
	Seed  uint64
	// Workers shards the step engine's phase 1 across a worker pool.
	// Results are identical for every value; only wall-clock changes.
	Workers int
}

// simOpts builds the step-engine options for one sweep point.
func (c Config) simOpts(delta float64, numColors int) stepsim.Options {
	return stepsim.Options{
		Delta:       delta,
		NumColors:   numColors,
		MaxAttempts: 6,
		Workers:     c.Workers,
	}
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 3
	}
	return c.Trials
}

func (c Config) scale(n int) int {
	if c.Scale <= 0 {
		return n
	}
	s := int(float64(n) * c.Scale)
	if s < 64 {
		s = 64
	}
	return s
}

// cEff is the effective density constant used by the sweeps: the paper's
// analysis constant (86) forces p ≥ 1 at laptop n, so experiments use the
// empirically sufficient multiple of the threshold and EXPERIMENTS.md
// documents the gap.
const cEff = 16.0

// maxSweepP caps sweep densities: near-clamped p means a near-complete
// graph, which measures nothing about the sparse regime and costs quadratic
// memory/time.
const maxSweepP = 0.7

func capP(p float64) float64 {
	if p > maxSweepP {
		return maxSweepP
	}
	return p
}

// E1 — Theorem 2: DRA closes within 7·n·ln n steps whp; measure
// steps/(n·ln n) and the success rate at p = c·ln n/n.
func E1(cfg Config) *Table {
	t := &Table{
		Name:      "E1",
		Caption:   "Theorem 2 - DRA step count vs the 7 n ln n budget at p = c ln(n)/n",
		ExtraCols: []string{"steps_over_nlogn", "success_rate"},
	}
	for _, n0 := range []int{256, 512, 1024, 2048, 4096, 8192} {
		n := cfg.scale(n0)
		p := graph.HCThresholdP(n, cEff, 1.0)
		var steps, rounds int64
		ok := 0
		for tr := 0; tr < cfg.trials(); tr++ {
			g := graph.GNP(n, p, rng.New(cfg.Seed+uint64(n*31+tr)))
			_, cost, err := stepsim.DRA(g, cfg.Seed+uint64(tr), 1)
			steps += cost.Steps
			rounds += cost.Rounds
			if err == nil {
				ok++
			}
		}
		tr := int64(cfg.trials())
		t.Append(Row{
			Label: "dra", N: n, P: p,
			Rounds: rounds / tr, Steps: steps / tr, OK: ok > 0,
			Extra: map[string]float64{
				"steps_over_nlogn": float64(steps/tr) / (float64(n) * math.Log(float64(n))),
				"success_rate":     float64(ok) / float64(cfg.trials()),
			},
		})
	}
	return t
}

// E2 — Theorem 1: DHC1 rounds scale as Õ(√n) at p = c·ln n/√n.
func E2(cfg Config) *Table {
	t := &Table{
		Name:      "E2",
		Caption:   "Theorem 1 - DHC1 rounds at p = c ln(n)/sqrt(n); expect exponent ~0.5 (x polylog)",
		ExtraCols: []string{"rounds_over_sqrtn", "phase1", "phase2"},
	}
	for _, n0 := range []int{512, 1024, 2048, 4096, 8192, 16384} {
		n := cfg.scale(n0)
		p := capP(graph.HCThresholdP(n, 8, 0.5))
		var rounds, steps, p1, p2 int64
		ok := 0
		for tr := 0; tr < cfg.trials(); tr++ {
			g := graph.GNP(n, p, rng.New(cfg.Seed+uint64(n*37+tr)))
			_, cost, err := stepsim.DHC1(g, cfg.Seed+uint64(tr), cfg.simOpts(0, 0))
			rounds += cost.Rounds
			steps += cost.Steps
			p1 += cost.Phase1Rounds
			p2 += cost.Phase2Rounds
			if err == nil {
				ok++
			}
		}
		tr := int64(cfg.trials())
		t.Append(Row{
			Label: "dhc1", N: n, P: p,
			Rounds: rounds / tr, Steps: steps / tr, OK: ok == cfg.trials(),
			Extra: map[string]float64{
				"rounds_over_sqrtn": float64(rounds/tr) / math.Sqrt(float64(n)),
				"phase1":            float64(p1 / tr),
				"phase2":            float64(p2 / tr),
			},
		})
	}
	return t
}

// E3 — Lemma 4/7: partition sizes concentrate within [1/2, 3/2] of n/K.
func E3(cfg Config) *Table {
	t := &Table{
		Name:      "E3",
		Caption:   "Lemma 4/7 - color-class size concentration around n/K",
		ExtraCols: []string{"k", "min_ratio", "max_ratio"},
	}
	for _, tc := range []struct {
		n     int
		delta float64
	}{
		{1024, 0.5}, {4096, 0.5}, {16384, 0.5}, {16384, 0.3}, {16384, 0.7},
	} {
		n := cfg.scale(tc.n)
		k := int(math.Round(math.Pow(float64(n), 1-tc.delta)))
		src := rng.New(cfg.Seed + uint64(n) + uint64(tc.delta*100))
		counts := make([]int, k)
		for v := 0; v < n; v++ {
			counts[src.Intn(k)]++
		}
		minC, maxC := counts[0], counts[0]
		for _, c := range counts {
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		mean := float64(n) / float64(k)
		t.Append(Row{
			Label: fmt.Sprintf("delta=%.1f", tc.delta), N: n, OK: true,
			Extra: map[string]float64{
				"k":         float64(k),
				"min_ratio": float64(minC) / mean,
				"max_ratio": float64(maxC) / mean,
			},
		})
	}
	return t
}

// E4 — Theorem 10: DHC2 rounds scale as Õ(n^δ); denser graphs are faster.
func E4(cfg Config) *Table {
	t := &Table{
		Name:      "E4",
		Caption:   "Theorem 10 - DHC2 rounds at p = c ln(n)/n^delta; expect exponent ~delta",
		ExtraCols: []string{"delta", "rounds_over_ndelta"},
	}
	for _, delta := range []float64{0.3, 0.5, 0.7} {
		for _, n0 := range []int{1024, 2048, 4096, 8192} {
			n := cfg.scale(n0)
			p := capP(graph.HCThresholdP(n, 8, delta))
			var rounds, steps int64
			ok := 0
			for tr := 0; tr < cfg.trials(); tr++ {
				g := graph.GNP(n, p, rng.New(cfg.Seed+uint64(n*41+tr)))
				_, cost, err := stepsim.DHC2(g, cfg.Seed+uint64(tr), cfg.simOpts(delta, 0))
				rounds += cost.Rounds
				steps += cost.Steps
				if err == nil {
					ok++
				}
			}
			tr := int64(cfg.trials())
			t.Append(Row{
				Label: fmt.Sprintf("delta=%.1f", delta), N: n, P: p,
				Rounds: rounds / tr, Steps: steps / tr, OK: ok == cfg.trials(),
				Extra: map[string]float64{
					"delta":              delta,
					"rounds_over_ndelta": float64(rounds/tr) / math.Pow(float64(n), delta),
				},
			})
		}
	}
	return t
}

// E6 — Theorems 17/19, Corollary 20: Upcast rounds ≈ O(log n/p).
func E6(cfg Config) *Table {
	t := &Table{
		Name:      "E6",
		Caption:   "Theorem 17/19 - Upcast rounds vs log(n)/p at delta in {1/2, 2/3}",
		ExtraCols: []string{"delta", "rounds_over_bound"},
	}
	for _, delta := range []float64{0.5, 2.0 / 3.0} {
		for _, n0 := range []int{1024, 4096, 16384} {
			n := cfg.scale(n0)
			p := graph.HCThresholdP(n, 3, delta)
			if p >= 1 {
				continue
			}
			var rounds int64
			ok := 0
			for tr := 0; tr < cfg.trials(); tr++ {
				g := graph.GNP(n, p, rng.New(cfg.Seed+uint64(n*43+tr)))
				_, cost, err := stepsim.Upcast(g, cfg.Seed+uint64(tr), 0)
				rounds += cost.Rounds
				if err == nil {
					ok++
				}
			}
			tr := int64(cfg.trials())
			bound := math.Log(float64(n)) / p
			t.Append(Row{
				Label: fmt.Sprintf("delta=%.2f", delta), N: n, P: p,
				Rounds: rounds / tr, OK: ok == cfg.trials(),
				Extra: map[string]float64{
					"delta":             delta,
					"rounds_over_bound": float64(rounds/tr) / bound,
				},
			})
		}
	}
	return t
}

// E8 — baseline comparison: DHC2 vs DHC1 vs Upcast vs Levy-style vs the
// trivial O(m) bound, on identical graphs.
func E8(cfg Config) *Table {
	t := &Table{
		Name:      "E8",
		Caption:   "Baselines - rounds on identical G(n, c ln(n)/sqrt(n)) graphs",
		ExtraCols: nil,
	}
	for _, n0 := range []int{1024, 2048, 4096} {
		n := cfg.scale(n0)
		p := capP(graph.HCThresholdP(n, 8, 0.5))
		type algo struct {
			name string
			run  func(g *graph.Graph, seed uint64) (int64, error)
		}
		algos := []algo{
			{"dhc1", func(g *graph.Graph, s uint64) (int64, error) {
				_, c, err := stepsim.DHC1(g, s, cfg.simOpts(0, 0))
				return c.Rounds, err
			}},
			{"dhc2", func(g *graph.Graph, s uint64) (int64, error) {
				_, c, err := stepsim.DHC2(g, s, cfg.simOpts(0.5, 0))
				return c.Rounds, err
			}},
			{"upcast", func(g *graph.Graph, s uint64) (int64, error) {
				_, c, err := stepsim.Upcast(g, s, 0)
				return c.Rounds, err
			}},
			{"levy", func(g *graph.Graph, s uint64) (int64, error) {
				_, c, err := stepsim.Levy(g, s)
				return c.Rounds, err
			}},
			{"trivial", func(g *graph.Graph, s uint64) (int64, error) {
				_, c, err := stepsim.Trivial(g, s)
				return c.Rounds, err
			}},
		}
		for _, a := range algos {
			var rounds int64
			ok := 0
			for tr := 0; tr < cfg.trials(); tr++ {
				g := graph.GNP(n, p, rng.New(cfg.Seed+uint64(n*47+tr)))
				r, err := a.run(g, cfg.Seed+uint64(tr))
				rounds += r
				if err == nil {
					ok++
				}
			}
			t.Append(Row{
				Label: a.name, N: n, P: p,
				Rounds: rounds / int64(cfg.trials()), OK: ok == cfg.trials(),
			})
		}
	}
	return t
}

// D1 — Chung–Lu: diameter of threshold random graphs is Θ(ln n/ln ln n).
func D1(cfg Config) *Table {
	t := &Table{
		Name:      "D1",
		Caption:   "Chung-Lu diameter fact - measured diameter vs ln(n)/lnln(n)",
		ExtraCols: []string{"diameter", "bound"},
	}
	for _, n0 := range []int{256, 1024, 4096, 16384} {
		n := cfg.scale(n0)
		p := graph.HCThresholdP(n, 4, 1.0)
		g := graph.GNP(n, p, rng.New(cfg.Seed+uint64(n)))
		d := g.DiameterSampled(4, rng.New(cfg.Seed+uint64(n)+1))
		bound := math.Log(float64(n)) / math.Log(math.Log(float64(n)))
		t.Append(Row{
			Label: "gnp", N: n, P: p, OK: d > 0,
			Extra: map[string]float64{"diameter": float64(d), "bound": bound},
		})
	}
	return t
}

// All runs every experiment.
func All(cfg Config) []*Table {
	return []*Table{E1(cfg), E2(cfg), E3(cfg), E4(cfg), E6(cfg), E8(cfg), D1(cfg)}
}
