package bench

// Grid-spec parsing shared by the cmd/hcbench benchmark pipeline and the
// cmd/hcsweep Monte Carlo pipeline: comma-separated list handling plus the
// algorithm/engine column vocabulary, so both CLIs and both report sections
// spell configurations identically.

import (
	"fmt"
	"strconv"
	"strings"

	"dhc"
)

// EngineMode is one engine column of a grid: the simulation engine plus, for
// the exact engine, the scheduling mode (event-driven vs the dense-sweep
// oracle) and whether the run is distributed across shard workers.
type EngineMode struct {
	Engine dhc.Engine
	Dense  bool
	// Dist selects the distributed exact engine (shard workers behind real
	// transports); the driver supplies the shard count and transport.
	Dist bool
}

// Name returns the mode's report spelling: "step", "exact", "exact-dense" or
// "dist".
func (e EngineMode) Name() string {
	switch {
	case e.Engine == dhc.EngineStep:
		return "step"
	case e.Dist:
		return "dist"
	case e.Dense:
		return "exact-dense"
	default:
		return "exact"
	}
}

// EngineModeNames returns the engine-column vocabulary in sorted order —
// exactly the spelling ParseEngineMode's error reports.
func EngineModeNames() []string {
	return []string{"dist", "exact", "exact-dense", "step"}
}

// FamilyNames returns the graph-family vocabulary of the report schema in
// sorted order: the spellings sweep cells and generator records may carry.
// sweep.FamilyNames must stay in lockstep (pinned by a test there); the list
// lives here because the schema validator cannot import the sweep package.
func FamilyNames() []string {
	return []string{"geometric", "gnm", "gnp", "hypercube", "powerlaw", "regular", "sbm", "torus"}
}

// ValidEngine reports whether name is in the EngineModeNames vocabulary.
func ValidEngine(name string) bool {
	for _, e := range EngineModeNames() {
		if e == name {
			return true
		}
	}
	return false
}

// ValidFamily reports whether name is in the FamilyNames vocabulary.
func ValidFamily(name string) bool {
	for _, f := range FamilyNames() {
		if f == name {
			return true
		}
	}
	return false
}

// ParseEngineMode resolves one engine column name. The error of an unknown
// name lists the valid names deterministically (sorted), so CLI messages are
// stable across runs.
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "step":
		return EngineMode{Engine: dhc.EngineStep}, nil
	case "exact":
		return EngineMode{Engine: dhc.EngineExact}, nil
	case "exact-dense":
		return EngineMode{Engine: dhc.EngineExact, Dense: true}, nil
	case "dist":
		return EngineMode{Engine: dhc.EngineExact, Dist: true}, nil
	default:
		return EngineMode{}, fmt.Errorf("unknown engine %q (valid: %s)", s, strings.Join(EngineModeNames(), ", "))
	}
}

// ParseEngineModes resolves a comma-separated engine list.
func ParseEngineModes(s string) ([]EngineMode, error) {
	var out []EngineMode
	for _, part := range SplitList(s) {
		m, err := ParseEngineMode(part)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// ParseAlgorithms resolves a comma-separated algorithm list.
func ParseAlgorithms(s string) ([]dhc.Algorithm, error) {
	var out []dhc.Algorithm
	for _, part := range SplitList(s) {
		a, err := dhc.ParseAlgorithm(part)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// SplitList splits a comma-separated flag value, trimming whitespace and
// dropping empty entries.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ParseInts parses a comma-separated list of non-negative integers.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range SplitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("negative value %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a comma-separated list of non-negative floats.
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range SplitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("negative value %v", v)
		}
		out = append(out, v)
	}
	return out, nil
}
