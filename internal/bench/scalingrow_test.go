package bench

import (
	"strings"
	"testing"
)

// TestValidateScalingRows pins the -scaling report contract: a successful
// scaling row without mem_peak_bytes is rejected, and negative memory fields
// never pass.
func TestValidateScalingRows(t *testing.T) {
	mk := func(mut func(*Record)) *Report {
		rep := NewReport("test", "go", 1)
		rec := Record{
			Algo: "dhc2", Engine: "step", N: 1000, Workers: 1,
			OK: true, Rounds: 10,
			Scaling: true, MemPeakBytes: 1 << 20,
			BytesPerVertex: 12, ConstructionPeakBytes: 1 << 19, GraphBytes: 1 << 18,
		}
		mut(&rec)
		rep.Append(rec)
		return rep
	}
	if err := mk(func(r *Record) {}).Validate(); err != nil {
		t.Fatalf("well-formed scaling row rejected: %v", err)
	}
	err := mk(func(r *Record) { r.MemPeakBytes = 0 }).Validate()
	if err == nil || !strings.Contains(err.Error(), "mem_peak_bytes") {
		t.Fatalf("scaling row without mem_peak_bytes passed validation (err=%v)", err)
	}
	// A failed scaling row may legitimately lack the metric (the sampler
	// result is still recorded in practice, but absence must not mask the
	// failure itself).
	failed := mk(func(r *Record) { r.OK = false; r.Error = "boom"; r.Rounds = 0; r.MemPeakBytes = 0 })
	if err := failed.Validate(); err != nil {
		t.Fatalf("failed scaling row rejected for missing metric: %v", err)
	}
	if err := mk(func(r *Record) { r.GraphBytes = -1 }).Validate(); err == nil {
		t.Fatal("negative graph_bytes passed validation")
	}
	if err := mk(func(r *Record) { r.ConstructionPeakBytes = -5 }).Validate(); err == nil {
		t.Fatal("negative construction_peak_bytes passed validation")
	}
}
