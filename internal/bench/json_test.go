package bench

import (
	"bytes"
	"strings"
	"testing"
)

func sampleReport() *Report {
	r := NewReport("test-rev", "go1.x", 4)
	r.Append(Record{
		Algo: "dhc2", Engine: "step", N: 512, M: 4000, P: 0.1,
		Seed: 2, GraphSeed: 1, NumColors: 8, Workers: 1,
		WallSeconds: 0.25, Rounds: 900, Steps: 4000,
		Phase1Rounds: 700, Phase2Rounds: 200, OK: true,
	})
	r.Append(Record{
		Algo: "dhc2", Engine: "step", N: 512, M: 4000, P: 0.1,
		Seed: 2, GraphSeed: 1, NumColors: 8, Workers: 8,
		WallSeconds: 0.05, Rounds: 900, Steps: 4000,
		Phase1Rounds: 700, Phase2Rounds: 200, OK: true,
	})
	return r
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.Rev != "test-rev" || len(got.Records) != 2 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	if got.Records[1].Workers != 8 || got.Records[1].Rounds != 900 {
		t.Fatalf("record mangled: %+v", got.Records[1])
	}
}

func TestReportSpeedup(t *testing.T) {
	r := sampleReport()
	s, ok := r.Speedup("dhc2", "step", 512, 1, 8)
	if !ok || s < 4.9 || s > 5.1 {
		t.Fatalf("speedup = %v ok=%v, want 5.0", s, ok)
	}
	if _, ok := r.Speedup("dhc1", "step", 512, 1, 8); ok {
		t.Fatal("speedup found for absent series")
	}
}

func TestReportValidationRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		substr string
	}{
		{"bad-version", func(r *Report) { r.SchemaVersion = 99 }, "schema version"},
		{"no-rev", func(r *Report) { r.Rev = "" }, "missing rev"},
		{"no-records", func(r *Report) { r.Records = nil }, "no records"},
		{"bad-engine", func(r *Report) { r.Records[0].Engine = "warp" }, "unknown engine"},
		{"bad-n", func(r *Report) { r.Records[0].N = 0 }, "has n"},
		{"ok-with-error", func(r *Report) { r.Records[0].Error = "boom" }, "carries error"},
		{"ok-no-rounds", func(r *Report) { r.Records[0].Rounds = 0 }, "no rounds"},
		{"fail-no-message", func(r *Report) { r.Records[0].OK = false; r.Records[0].Error = "" }, "without an error"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := sampleReport()
			tc.mutate(r)
			err := r.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("got %v, want error containing %q", err, tc.substr)
			}
		})
	}
}

func TestDecodeReportRejectsMalformed(t *testing.T) {
	if _, err := DecodeReport([]byte(`{"schema_version": 1,`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := DecodeReport([]byte(`{"schema_version": 1, "rev": "x", "bogus_field": true, "records": []}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestFailedRecords(t *testing.T) {
	r := sampleReport()
	r.Append(Record{Algo: "dra", Engine: "step", N: 64, Workers: 1, OK: false, Error: "no cycle"})
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.FailedRecords(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("FailedRecords = %v, want [2]", got)
	}
}
