package bench

import (
	"bytes"
	"strings"
	"testing"
)

func sampleReport() *Report {
	r := NewReport("test-rev", "go1.x", 4)
	r.Append(Record{
		Algo: "dhc2", Engine: "step", N: 512, M: 4000, P: 0.1,
		Seed: 2, GraphSeed: 1, NumColors: 8, Workers: 1,
		WallSeconds: 0.25, Rounds: 900, Steps: 4000,
		Phase1Rounds: 700, Phase2Rounds: 200, OK: true,
	})
	r.Append(Record{
		Algo: "dhc2", Engine: "step", N: 512, M: 4000, P: 0.1,
		Seed: 2, GraphSeed: 1, NumColors: 8, Workers: 8,
		WallSeconds: 0.05, Rounds: 900, Steps: 4000,
		Phase1Rounds: 700, Phase2Rounds: 200, OK: true,
	})
	return r
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.Rev != "test-rev" || len(got.Records) != 2 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	if got.Records[1].Workers != 8 || got.Records[1].Rounds != 900 {
		t.Fatalf("record mangled: %+v", got.Records[1])
	}
}

func TestReportSpeedup(t *testing.T) {
	r := sampleReport()
	s, ok := r.Speedup("dhc2", "step", 512, 1, 8)
	if !ok || s < 4.9 || s > 5.1 {
		t.Fatalf("speedup = %v ok=%v, want 5.0", s, ok)
	}
	if _, ok := r.Speedup("dhc1", "step", 512, 1, 8); ok {
		t.Fatal("speedup found for absent series")
	}
}

func TestReportValidationRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		substr string
	}{
		{"bad-version", func(r *Report) { r.SchemaVersion = 99 }, "schema version"},
		{"no-rev", func(r *Report) { r.Rev = "" }, "missing rev"},
		{"no-records", func(r *Report) { r.Records = nil }, "no records, sweep section, generator records, or service records"},
		{"bad-engine", func(r *Report) { r.Records[0].Engine = "warp" }, "unknown engine"},
		{"bad-n", func(r *Report) { r.Records[0].N = 0 }, "has n"},
		{"ok-with-error", func(r *Report) { r.Records[0].Error = "boom" }, "carries error"},
		{"ok-no-rounds", func(r *Report) { r.Records[0].Rounds = 0 }, "no rounds"},
		{"fail-no-message", func(r *Report) { r.Records[0].OK = false; r.Records[0].Error = "" }, "without an error"},
		{"shards-on-inproc", func(r *Report) { r.Records[0].Shards = 3 }, "carries shard fields"},
		{"rtts-on-inproc", func(r *Report) { r.Records[0].RTTs = 40 }, "carries shard fields"},
		{"rtts-per-round-on-inproc", func(r *Report) { r.Records[0].RTTsPerRound = 1.1 }, "carries shard fields"},
		{"batch-bytes-on-inproc", func(r *Report) { r.Records[0].BatchBytesDelta = 9 }, "carries shard fields"},
		{"ratio-on-inproc", func(r *Report) { r.Records[0].DistVsInProc = 2.5 }, "carries shard fields"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := sampleReport()
			tc.mutate(r)
			err := r.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("got %v, want error containing %q", err, tc.substr)
			}
		})
	}
}

// sampleService builds a valid cold/warm service-pass pair.
func sampleService() []ServiceRecord {
	return []ServiceRecord{
		{Pass: "cold", Conns: 4, Requests: 16, Distinct: 16, Algos: "dhc2", Engines: "step", Sizes: "256",
			WallSeconds: 1.0, ReqPerSec: 16, P50MS: 50, P99MS: 80, Misses: 16},
		{Pass: "warm", Conns: 4, Requests: 64, Distinct: 16, Algos: "dhc2", Engines: "step", Sizes: "256",
			WallSeconds: 0.1, ReqPerSec: 640, P50MS: 0.5, P99MS: 2, Hits: 64},
	}
}

func TestServiceRecordValidation(t *testing.T) {
	r := sampleReport()
	r.Records = nil
	r.Service = sampleService()
	if err := r.Validate(); err != nil {
		t.Fatalf("service-only report rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Report)
		substr string
	}{
		{"bad-pass", func(r *Report) { r.Service[0].Pass = "tepid" }, "unknown pass"},
		{"no-conns", func(r *Report) { r.Service[0].Conns = 0 }, "has conns"},
		{"distinct-over-requests", func(r *Report) { r.Service[0].Distinct = 99 }, "distinct"},
		{"bad-partition", func(r *Report) { r.Service[0].Hits = 3 }, "partition"},
		{"p99-below-p50", func(r *Report) { r.Service[0].P99MS = 1 }, "latency quantiles"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := sampleReport()
			r.Service = sampleService()
			tc.mutate(r)
			if err := r.Validate(); err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("got %v, want error containing %q", err, tc.substr)
			}
		})
	}
}

func TestCacheSpeedup(t *testing.T) {
	r := sampleReport()
	r.Service = sampleService()
	s, ok := r.CacheSpeedup()
	if !ok || s != 100 {
		t.Fatalf("CacheSpeedup = %v ok=%v, want 100x", s, ok)
	}
	r.Service[1].Errors = 1
	r.Service[1].Hits-- // keep the partition intact
	if _, ok := r.CacheSpeedup(); ok {
		t.Fatal("CacheSpeedup accepted an errored warm pass")
	}
	r.Service = r.Service[:1]
	if _, ok := r.CacheSpeedup(); ok {
		t.Fatal("CacheSpeedup without a warm pass")
	}
}

func TestDecodeReportRejectsMalformed(t *testing.T) {
	if _, err := DecodeReport([]byte(`{"schema_version": 1,`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := DecodeReport([]byte(`{"schema_version": 1, "rev": "x", "bogus_field": true, "records": []}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// sampleSweep builds a minimal valid sweep section.
func sampleSweep() *SweepSection {
	return &SweepSection{
		MasterSeed:    7,
		TrialsPerCell: 10,
		Cells: []CellStats{{
			Family: "gnp", N: 256, Param: 1.5, Delta: 0.5, P: 0.5,
			Algo: "dra", Engine: "step",
			Trials: 10, Successes: 9, FailNoHC: 1, SuccessRate: 0.9,
			Rounds: Quantiles{P50: 100, P90: 200, Max: 300},
		}},
		Fits: []ScalingFit{{
			Family: "gnp", Param: 1.5, Delta: 0.5, Algo: "dra", Engine: "step",
			Points: 2, RoundsSlope: 1.3,
		}},
	}
}

// TestSchemaV1StillDecodes pins backward compatibility: the BENCH_pr2/pr3
// trajectory files at the repository root are schema v1 and must keep
// decoding after the v2 bump.
func TestSchemaV1StillDecodes(t *testing.T) {
	v1 := []byte(`{"schema_version": 1, "rev": "pr2", "go_version": "go1.22",
		"num_cpu": 1, "records": [{"algo": "dhc2", "engine": "step", "n": 64,
		"m": 100, "p": 0.1, "seed": 1, "graph_seed": 1, "workers": 1,
		"wall_seconds": 0.1, "rounds": 10, "steps": 5,
		"phase1_rounds": 5, "phase2_rounds": 5, "ok": true}]}`)
	rep, err := DecodeReport(v1)
	if err != nil {
		t.Fatalf("v1 report rejected: %v", err)
	}
	if rep.SchemaVersion != 1 || len(rep.Records) != 1 {
		t.Fatalf("v1 report mangled: %+v", rep)
	}
}

// TestSweepSectionRoundTrip checks a records-free v2 sweep report validates
// and survives encode/decode.
func TestSweepSectionRoundTrip(t *testing.T) {
	r := NewReport("test-rev", "go1.x", 4)
	r.Sweep = sampleSweep()
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweep == nil || len(got.Sweep.Cells) != 1 || got.Sweep.Cells[0].Key() != sampleSweep().Cells[0].Key() {
		t.Fatalf("sweep section mangled: %+v", got.Sweep)
	}
	if got.Sweep.Fits[0].RoundsSlope != 1.3 {
		t.Fatalf("fit mangled: %+v", got.Sweep.Fits[0])
	}
}

// TestSweepValidationRejects drives the sweep-section invariants.
func TestSweepValidationRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		substr string
	}{
		{"v1-with-sweep", func(r *Report) { r.SchemaVersion = 1 }, "requires schema version"},
		{"no-cells", func(r *Report) { r.Sweep.Cells = nil }, "no cells"},
		{"bad-family", func(r *Report) { r.Sweep.Cells[0].Family = "smallworld" }, "unknown family"},
		{"bad-engine", func(r *Report) { r.Sweep.Cells[0].Engine = "warp" }, "unknown engine"},
		{"bad-n", func(r *Report) { r.Sweep.Cells[0].N = 0 }, "has n"},
		{"no-trials", func(r *Report) { r.Sweep.Cells[0].Trials = 0 }, "trials"},
		{"bad-partition", func(r *Report) { r.Sweep.Cells[0].FailNoHC = 5 }, "partition"},
		{"canceled-breaks-partition", func(r *Report) { r.Sweep.Cells[0].FailCanceled = 1 }, "partition"},
		{"bad-rate", func(r *Report) { r.Sweep.Cells[0].SuccessRate = 0.5 }, "success rate"},
		{"dup-cell", func(r *Report) { r.Sweep.Cells = append(r.Sweep.Cells, r.Sweep.Cells[0]) }, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReport("test-rev", "go1.x", 4)
			r.Sweep = sampleSweep()
			tc.mutate(r)
			err := r.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("got %v, want error containing %q", err, tc.substr)
			}
		})
	}
}

// TestCanceledTrialsPartition pins the five-way outcome partition: a cell
// whose trials were cut off by a timeout/interrupt is schema-valid exactly
// when FailCanceled participates in the partition.
func TestCanceledTrialsPartition(t *testing.T) {
	r := NewReport("test-rev", "go1.x", 4)
	r.Sweep = sampleSweep()
	c := &r.Sweep.Cells[0]
	c.FailCanceled = c.Successes
	c.Successes = 0
	c.SuccessRate = 0
	if err := r.Validate(); err != nil {
		t.Fatalf("canceled-partitioned cell rejected: %v", err)
	}
}

// TestModeRecordValidation pins the solver-lifecycle record fields: modes
// outside the fresh/reuse vocabulary and mode rows without a trial count are
// rejected; a well-formed reuse row round-trips.
func TestModeRecordValidation(t *testing.T) {
	r := sampleReport()
	r.Records[0].Mode = "reuse"
	r.Records[0].Trials = 16
	r.Records[0].TrialsPerSec = 64
	var buf bytes.Buffer
	if err := r.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Records[0].Mode != "reuse" || got.Records[0].Trials != 16 || got.Records[0].TrialsPerSec != 64 {
		t.Fatalf("mode record mangled: %+v", got.Records[0])
	}

	bad := sampleReport()
	bad.Records[0].Mode = "warp"
	bad.Records[0].Trials = 4
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Fatalf("unknown mode accepted: %v", err)
	}
	bad = sampleReport()
	bad.Records[0].Mode = "fresh"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "trials > 0") {
		t.Fatalf("mode row without trials accepted: %v", err)
	}
}

// TestEngineModeParseError pins the deterministic (sorted) vocabulary
// listing of the engine parse error, per the CLI-stability satellite.
func TestEngineModeParseError(t *testing.T) {
	_, err := ParseEngineMode("warp")
	if err == nil {
		t.Fatal("bad engine name accepted")
	}
	want := `unknown engine "warp" (valid: dist, exact, exact-dense, step)`
	if err.Error() != want {
		t.Fatalf("ParseEngineMode error = %q, want %q", err.Error(), want)
	}
}

// TestNewQuantiles checks the nearest-rank order statistics.
func TestNewQuantiles(t *testing.T) {
	if q := NewQuantiles(nil); q != (Quantiles{}) {
		t.Fatalf("empty series: %+v", q)
	}
	q := NewQuantiles([]int64{5, 1, 9, 3, 7})
	if q.P50 != 5 || q.Max != 9 {
		t.Fatalf("quantiles of 1..9: %+v", q)
	}
	if q.P90 < q.P50 || q.P90 > q.Max {
		t.Fatalf("p90 out of order: %+v", q)
	}
	if q := NewQuantiles([]int64{42}); q.P50 != 42 || q.P90 != 42 || q.Max != 42 {
		t.Fatalf("singleton series: %+v", q)
	}
}

func TestFailedRecords(t *testing.T) {
	r := sampleReport()
	r.Append(Record{Algo: "dra", Engine: "step", N: 64, Workers: 1, OK: false, Error: "no cycle"})
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := r.FailedRecords(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("FailedRecords = %v, want [2]", got)
	}
}
