package proto

import (
	"testing"

	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/rng"
)

// countNode builds a BFS tree for bfsBudget rounds, then runs a Counter.
type countNode struct {
	bfs       *BFSState
	counter   *Counter
	bfsBudget int64
	value     int64
}

func (n *countNode) Init(ctx *congest.Context) {
	n.bfs = NewBFSState(0)
	n.bfs.Start(ctx)
}

func (n *countNode) Round(ctx *congest.Context, inbox []congest.Envelope) {
	if ctx.Round() <= n.bfsBudget {
		n.bfs.Absorb(ctx, inbox)
		return
	}
	if n.counter == nil {
		n.counter = NewCounter(n.bfs, n.value, 1)
	}
	n.counter.Tick(ctx, inbox)
	if n.counter.Done() {
		ctx.Halt()
	}
}

func TestCounterSumsTree(t *testing.T) {
	g := graph.GNP(120, 0.07, rng.New(14))
	if !g.Connected() {
		t.Skip("test graph disconnected")
	}
	progs := make([]*countNode, g.N())
	nodes := make([]congest.Node, g.N())
	wantTotal := int64(0)
	for i := range progs {
		progs[i] = &countNode{bfsBudget: int64(g.N()), value: int64(i % 5)}
		wantTotal += int64(i % 5)
		nodes[i] = progs[i]
	}
	net, err := congest.NewNetwork(g, nodes, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(3); err != nil {
		t.Fatal(err)
	}
	for v, p := range progs {
		if p.counter.Total != wantTotal {
			t.Fatalf("node %d learned total %d, want %d", v, p.counter.Total, wantTotal)
		}
	}
}

func TestCounterCountsNodes(t *testing.T) {
	// Counting with value 1 everywhere yields n — the partition-size use.
	g := graph.Ring(17)
	progs := make([]*countNode, g.N())
	nodes := make([]congest.Node, g.N())
	for i := range progs {
		progs[i] = &countNode{bfsBudget: int64(g.N()), value: 1}
		nodes[i] = progs[i]
	}
	net, err := congest.NewNetwork(g, nodes, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(4); err != nil {
		t.Fatal(err)
	}
	for v, p := range progs {
		if p.counter.Total != 17 {
			t.Fatalf("node %d counted %d, want 17", v, p.counter.Total)
		}
	}
}

// barrierNode arrives at 3 successive barriers with node-dependent delays and
// records the rounds at which each release reached it.
type barrierNode struct {
	bfs        *BFSState
	barrier    *Barrier
	bfsBudget  int64
	arrivalGap int64
	nextSeq    int32
	releasedAt map[int32]int64
	arrivedAt  map[int32]int64
}

func (n *barrierNode) Init(ctx *congest.Context) {
	n.bfs = NewBFSState(0)
	n.bfs.Start(ctx)
	n.releasedAt = make(map[int32]int64)
	n.arrivedAt = make(map[int32]int64)
}

func (n *barrierNode) Round(ctx *congest.Context, inbox []congest.Envelope) {
	if ctx.Round() <= n.bfsBudget {
		n.bfs.Absorb(ctx, inbox)
		return
	}
	if n.barrier == nil {
		n.barrier = NewBarrier(n.bfs, n.bfsBudget)
	}
	n.barrier.Absorb(ctx, inbox)
	// Arrive at barrier k once the previous barrier released, after a
	// node-specific delay.
	if n.nextSeq < 3 {
		prevDone := n.nextSeq == 0 || n.barrier.Released(n.nextSeq-1)
		if prevDone {
			if n.arrivedAt[n.nextSeq] == 0 {
				n.arrivedAt[n.nextSeq] = ctx.Round() + n.arrivalGap
			}
			if ctx.Round() >= n.arrivedAt[n.nextSeq] {
				n.barrier.Arrive(ctx, n.nextSeq)
			}
		}
	}
	for s := int32(0); s < 3; s++ {
		if n.barrier.Released(s) && n.releasedAt[s] == 0 {
			n.releasedAt[s] = ctx.Round()
			if s == n.nextSeq {
				n.nextSeq++
			}
		}
	}
	if n.nextSeq >= 3 {
		ctx.Halt()
	}
}

func TestBarrierSequencing(t *testing.T) {
	g := graph.GNP(80, 0.1, rng.New(19))
	if !g.Connected() {
		t.Skip("test graph disconnected")
	}
	progs := make([]*barrierNode, g.N())
	nodes := make([]congest.Node, g.N())
	for i := range progs {
		progs[i] = &barrierNode{bfsBudget: int64(g.N()), arrivalGap: int64(i % 7)}
		nodes[i] = progs[i]
	}
	net, err := congest.NewNetwork(g, nodes, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	// Every barrier must release at every node, and no node may see
	// barrier s released before every node arrived at s.
	for s := int32(0); s < 3; s++ {
		var maxArrive, minRelease int64
		minRelease = 1 << 60
		for _, p := range progs {
			if p.arrivedAt[s] > maxArrive {
				maxArrive = p.arrivedAt[s]
			}
			if p.releasedAt[s] == 0 {
				t.Fatalf("barrier %d never released somewhere", s)
			}
			if p.releasedAt[s] < minRelease {
				minRelease = p.releasedAt[s]
			}
		}
		if minRelease < maxArrive {
			t.Fatalf("barrier %d released at round %d before last arrival at %d",
				s, minRelease, maxArrive)
		}
	}
}
