package proto

import (
	"testing"

	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/wire"
)

// electNode runs a Flooder for a fixed number of rounds then halts.
type electNode struct {
	f      *Flooder
	rounds int
	budget int
}

func (e *electNode) Init(ctx *congest.Context) {
	e.f = NewFlooder(ctx.ID())
	e.f.Start(ctx)
}

func (e *electNode) Round(ctx *congest.Context, inbox []congest.Envelope) {
	e.f.Absorb(ctx, inbox)
	e.rounds++
	if e.rounds >= e.budget {
		ctx.Halt()
	}
}

func TestLeaderElection(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ring", graph.Ring(16)},
		{"path", graph.Path(10)},
		{"gnp", graph.GNP(100, 0.08, rng.New(4))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.g.Connected() {
				t.Skip("test graph disconnected")
			}
			progs := make([]*electNode, tc.g.N())
			nodes := make([]congest.Node, tc.g.N())
			for i := range progs {
				progs[i] = &electNode{budget: tc.g.N()} // >= diameter
				nodes[i] = progs[i]
			}
			net, err := congest.NewNetwork(tc.g, nodes, congest.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := net.Run(1); err != nil {
				t.Fatal(err)
			}
			leaders := 0
			for i, p := range progs {
				if p.f.Best != 0 {
					t.Fatalf("node %d converged to %d, want 0", i, p.f.Best)
				}
				if p.f.IsLeader(graph.NodeID(i)) {
					leaders++
				}
			}
			if leaders != 1 {
				t.Fatalf("%d leaders, want exactly 1", leaders)
			}
		})
	}
}

// bfsNode runs BFSState for a fixed budget.
type bfsNode struct {
	b      *BFSState
	rounds int
	budget int
}

func (n *bfsNode) Init(ctx *congest.Context) {
	n.b = NewBFSState(0)
	n.b.Start(ctx)
}

func (n *bfsNode) Round(ctx *congest.Context, inbox []congest.Envelope) {
	n.b.Absorb(ctx, inbox)
	n.rounds++
	if n.rounds >= n.budget {
		ctx.Halt()
	}
}

func TestBFSTreeLevelsMatchGraphDistances(t *testing.T) {
	g := graph.GNP(150, 0.06, rng.New(9))
	if !g.Connected() {
		t.Skip("test graph disconnected")
	}
	want := g.BFS(0)
	progs := make([]*bfsNode, g.N())
	nodes := make([]congest.Node, g.N())
	for i := range progs {
		progs[i] = &bfsNode{budget: g.N()}
		nodes[i] = progs[i]
	}
	net, err := congest.NewNetwork(g, nodes, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(2); err != nil {
		t.Fatal(err)
	}
	for v, p := range progs {
		if !p.b.Adopted() {
			t.Fatalf("node %d never adopted a parent", v)
		}
		if int(p.b.Level) != want.Dist[v] {
			t.Fatalf("node %d level %d, BFS distance %d", v, p.b.Level, want.Dist[v])
		}
		if v != 0 {
			// Parent must be one level closer and adjacent.
			par := p.b.Parent
			if want.Dist[par] != want.Dist[v]-1 {
				t.Fatalf("node %d parent %d at distance %d, want %d",
					v, par, want.Dist[par], want.Dist[v]-1)
			}
			if !g.HasEdge(graph.NodeID(v), par) {
				t.Fatalf("node %d parent %d not adjacent", v, par)
			}
		}
	}
	// Children lists must mirror parent pointers.
	childCount := 0
	for v, p := range progs {
		for _, c := range p.b.Children {
			childCount++
			if progs[c].b.Parent != graph.NodeID(v) {
				t.Fatalf("node %d lists child %d whose parent is %d", v, c, progs[c].b.Parent)
			}
		}
	}
	if childCount != g.N()-1 {
		t.Fatalf("tree has %d child links, want %d", childCount, g.N()-1)
	}
}

// scopedNode floods a broadcast within its color class.
type scopedNode struct {
	color   int32
	colors  []int32
	sb      *ScopedBroadcaster
	gotMsgs []wire.Message
	rounds  int
	budget  int
}

func (s *scopedNode) Init(ctx *congest.Context) {
	s.sb = NewScopedBroadcaster(func(v graph.NodeID) bool { return s.colors[v] == s.color })
	if ctx.ID() == 0 {
		s.sb.Originate(ctx, wire.Msg(wire.KindBroadcast, 7, 3))
	}
}

func (s *scopedNode) Round(ctx *congest.Context, inbox []congest.Envelope) {
	s.gotMsgs = append(s.gotMsgs, s.sb.Absorb(ctx, inbox, wire.KindBroadcast)...)
	s.rounds++
	if s.rounds >= s.budget {
		ctx.Halt()
	}
}

func TestScopedBroadcastStaysInPartition(t *testing.T) {
	// Complete graph, two colors: evens (including origin 0) and odds.
	g := graph.Complete(10)
	colors := make([]int32, 10)
	for v := range colors {
		colors[v] = int32(v % 2)
	}
	progs := make([]*scopedNode, 10)
	nodes := make([]congest.Node, 10)
	for i := range progs {
		progs[i] = &scopedNode{color: colors[i], colors: colors, budget: 12}
		nodes[i] = progs[i]
	}
	net, err := congest.NewNetwork(g, nodes, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Run(5); err != nil {
		t.Fatal(err)
	}
	for v, p := range progs {
		inScope := colors[v] == 0 && v != 0
		if inScope && len(p.gotMsgs) != 1 {
			t.Fatalf("in-scope node %d received %d messages, want 1", v, len(p.gotMsgs))
		}
		if !inScope && v != 0 && len(p.gotMsgs) != 0 {
			t.Fatalf("out-of-scope node %d received %d messages, want 0", v, len(p.gotMsgs))
		}
	}
}

func TestScopedBroadcasterReset(t *testing.T) {
	sb := NewScopedBroadcaster(func(graph.NodeID) bool { return true })
	sb.seen[key(wire.Msg(wire.KindBroadcast, 1))] = true
	if sb.SeenCount() != 1 {
		t.Fatal("seen not recorded")
	}
	sb.Reset()
	if sb.SeenCount() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestKeyDistinguishesPayloads(t *testing.T) {
	a := key(wire.Msg(wire.KindBroadcast, 1, 2, 0))
	b := key(wire.Msg(wire.KindBroadcast, 1, 2, 1)) // different tag (arg 2)
	c := key(wire.Msg(wire.KindRotation, 1, 2, 0))  // different kind
	if a == b || a == c {
		t.Fatalf("keys collide: %v %v %v", a, b, c)
	}
}
