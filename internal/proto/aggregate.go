package proto

import (
	"dhc/internal/congest"
	"dhc/internal/wire"
)

// Counter performs a convergecast sum over a settled BFS tree followed by a
// downward announcement of the total: leaves report their value to their
// parent; internal nodes forward the subtree sum once every child reported;
// the root adds its own value and floods the total down the tree. The DHC
// algorithms use it to count partition sizes (the |V| input of Algorithm 1's
// success test), and Upcast uses the same shape for congestion-free
// aggregation.
//
// Values must fit in int32 (they are vertex counts, bounded by n, so they
// respect the CONGEST word size).
type Counter struct {
	tree    *BFSState
	tag     int32
	value   int64
	reports int
	sum     int64
	sentUp  bool
	// Total is the tree-wide sum, or -1 until the announcement arrives.
	Total int64
}

// NewCounter creates a counter over a final BFS tree. ownValue is this
// node's contribution; tag separates concurrent/sequential counting sessions.
func NewCounter(tree *BFSState, ownValue int64, tag int32) *Counter {
	return &Counter{tree: tree, tag: tag, value: ownValue, Total: -1}
}

// Tick processes one round. Call every round (with that round's inbox) from
// the first round after the tree is final until Total >= 0 at every node;
// that takes at most 2*depth+1 rounds. Only the first call performs
// empty-inbox work (a childless node reports its own value unprompted), so
// under event-driven execution the embedder schedules a wake-up for the
// starting round and lets deliveries drive the rest.
func (c *Counter) Tick(ctx *congest.Context, inbox []congest.Envelope) {
	for _, env := range inbox {
		switch env.Msg.Kind {
		case wire.KindCount:
			if env.Msg.Arg(1) == c.tag {
				c.sum += int64(env.Msg.Arg(0))
				c.reports++
			}
		case wire.KindSizeAnnounce:
			if env.Msg.Arg(1) == c.tag && c.Total < 0 {
				c.Total = int64(env.Msg.Arg(0))
				c.announceDown(ctx)
			}
		}
	}
	if !c.sentUp && c.reports == len(c.tree.Children) {
		subtree := c.sum + c.value
		c.sentUp = true
		if c.tree.IsRoot(ctx.ID()) {
			c.Total = subtree
			c.announceDown(ctx)
		} else {
			ctx.Send(c.tree.Parent, wire.Msg(wire.KindCount, int32(subtree), c.tag))
		}
	}
}

func (c *Counter) announceDown(ctx *congest.Context) {
	for _, child := range c.tree.Children {
		ctx.Send(child, wire.Msg(wire.KindSizeAnnounce, int32(c.Total), c.tag))
	}
}

// Done reports whether this node knows the total.
func (c *Counter) Done() bool { return c.Total >= 0 }

// Barrier synchronizes global phase transitions over a network-wide BFS
// tree: every node Arrives at numbered barriers in order; a node reports
// "subtree at barrier s" to its parent once it has arrived and all children
// reported; the root then releases the barrier down the tree. One barrier
// costs O(tree depth) rounds — within the paper's round budgets, which are
// all Ω(diameter).
type Barrier struct {
	tree         *BFSState
	childReports map[int32]int
	arrived      map[int32]bool
	sentUp       map[int32]bool
	released     map[int32]bool
	startRound   map[int32]int64
	// ReleaseDelay is added by the root to the release round to produce a
	// common StartRound at which all nodes may begin the next phase; it
	// must be at least the tree depth so the Go flood arrives in time.
	ReleaseDelay int64
}

// NewBarrier creates barrier state over a final BFS tree. releaseDelay must
// upper-bound the tree depth.
func NewBarrier(tree *BFSState, releaseDelay int64) *Barrier {
	return &Barrier{
		tree:         tree,
		childReports: make(map[int32]int),
		arrived:      make(map[int32]bool),
		sentUp:       make(map[int32]bool),
		released:     make(map[int32]bool),
		startRound:   make(map[int32]int64),
		ReleaseDelay: releaseDelay,
	}
}

// Arrive marks this node's arrival at barrier seq (idempotent).
func (b *Barrier) Arrive(ctx *congest.Context, seq int32) {
	if b.arrived[seq] {
		return
	}
	b.arrived[seq] = true
	b.maybeSendUp(ctx, seq)
}

// Absorb processes barrier traffic for one round.
func (b *Barrier) Absorb(ctx *congest.Context, inbox []congest.Envelope) {
	for _, env := range inbox {
		seq := env.Msg.Arg(0)
		switch env.Msg.Kind {
		case wire.KindBarrierUp:
			b.childReports[seq]++
			b.maybeSendUp(ctx, seq)
		case wire.KindBarrierGo:
			b.release(ctx, seq, int64(env.Msg.Arg(1)))
		}
	}
}

func (b *Barrier) maybeSendUp(ctx *congest.Context, seq int32) {
	if b.sentUp[seq] || !b.arrived[seq] || b.childReports[seq] != len(b.tree.Children) {
		return
	}
	b.sentUp[seq] = true
	if b.tree.IsRoot(ctx.ID()) {
		b.release(ctx, seq, ctx.Round()+b.ReleaseDelay)
	} else if b.tree.Adopted() {
		ctx.Send(b.tree.Parent, wire.Msg(wire.KindBarrierUp, seq))
	}
	// A node the tree never adopted (disconnected from the root) has nowhere
	// to report; it stays silent and the barrier never releases, so the run
	// ends at its round budget — the correct verdict on a network that
	// cannot agree on anything, and one the model allows us to observe.
}

func (b *Barrier) release(ctx *congest.Context, seq int32, startRound int64) {
	if b.released[seq] {
		return
	}
	b.released[seq] = true
	b.startRound[seq] = startRound
	for _, child := range b.tree.Children {
		ctx.Send(child, wire.Msg(wire.KindBarrierGo, seq, int32(startRound)))
	}
}

// Released reports whether barrier seq has been released at this node.
func (b *Barrier) Released(seq int32) bool { return b.released[seq] }

// StartRound returns the common round at which the phase following barrier
// seq begins (valid once Released(seq) is true). Every node receives the same
// value, giving the network a synchronized phase boundary.
func (b *Barrier) StartRound(seq int32) int64 { return b.startRound[seq] }

// MemoryWords estimates retained state for metering.
func (b *Barrier) MemoryWords() int64 {
	return int64(len(b.childReports) + len(b.arrived) + len(b.sentUp) + len(b.released))
}
