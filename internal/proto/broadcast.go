package proto

import (
	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/wire"
)

// ScopedBroadcaster floods payload messages within a vertex subset (the
// "partition" of DHC1/DHC2): a node only forwards to neighbors it knows are
// in the same scope. Each distinct payload is forwarded at most once per
// node, identified by a (tag, a, b) triple, so concurrent broadcasts from
// different origins coexist.
//
// The DHC algorithms use scoped broadcasts for the rotation(h, j)
// renumbering messages inside a partition and for bridge announcements
// during merging.
//
// The broadcaster is fully message-driven (Absorb with an empty inbox is a
// no-op), so embedders running under the event-driven simulator need no
// wake-ups on its behalf — Originate happens on the originator's own
// schedule and forwarding happens on delivery.
type ScopedBroadcaster struct {
	inScope func(graph.NodeID) bool
	seen    map[[4]int32]bool
}

// NewScopedBroadcaster creates a broadcaster; inScope must report whether a
// neighbor belongs to this node's partition (each node learns its neighbors'
// colors in one round at DHC startup).
func NewScopedBroadcaster(inScope func(graph.NodeID) bool) *ScopedBroadcaster {
	return &ScopedBroadcaster{inScope: inScope, seen: make(map[[4]int32]bool)}
}

// key identifies a payload for duplicate suppression: the kind plus the
// first three arguments (algorithms use Arg(2) as a per-session step tag).
func key(m wire.Message) [4]int32 {
	return [4]int32{int32(m.Kind), m.Arg(0), m.Arg(1), m.Arg(2)}
}

// Originate starts a broadcast of m from this node. The message itself is
// also marked seen locally so the origin does not re-forward it.
func (s *ScopedBroadcaster) Originate(ctx *congest.Context, m wire.Message) {
	s.seen[key(m)] = true
	s.forward(ctx, m, -1)
}

// Absorb processes one round of inbox messages with the given kind,
// forwarding each new payload once. It returns the newly seen payloads in
// arrival order.
func (s *ScopedBroadcaster) Absorb(ctx *congest.Context, inbox []congest.Envelope, kinds ...wire.Kind) []wire.Message {
	wanted := make(map[wire.Kind]bool, len(kinds))
	for _, k := range kinds {
		wanted[k] = true
	}
	var fresh []wire.Message
	for _, env := range inbox {
		if !wanted[env.Msg.Kind] {
			continue
		}
		k := key(env.Msg)
		if s.seen[k] {
			continue
		}
		s.seen[k] = true
		fresh = append(fresh, env.Msg)
		s.forward(ctx, env.Msg, env.From)
	}
	return fresh
}

// Reset clears duplicate-suppression state between broadcast sessions, so
// long runs do not accumulate unbounded seen-sets (keeping node memory o(n)).
func (s *ScopedBroadcaster) Reset() {
	s.seen = make(map[[4]int32]bool)
}

// SeenCount returns the number of distinct payloads recorded, used by memory
// accounting.
func (s *ScopedBroadcaster) SeenCount() int { return len(s.seen) }

func (s *ScopedBroadcaster) forward(ctx *congest.Context, m wire.Message, except graph.NodeID) {
	for _, nb := range ctx.Neighbors() {
		if nb == except || !s.inScope(nb) {
			continue
		}
		ctx.Send(nb, m)
	}
}
