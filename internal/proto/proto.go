// Package proto implements the reusable distributed primitives the paper's
// algorithms are built from: flooding broadcast scoped to a subgraph, leader
// election by minimum-id flooding, and BFS-tree construction. All primitives
// run in the CONGEST model via package congest and are written as embeddable
// state machines so algorithm nodes can compose them.
//
// Activity contract (for the event-driven simulator): every machine in this
// package is message-driven after its start call — an Absorb/Tick with an
// empty inbox is a no-op — with exactly two empty-inbox obligations the
// embedder must cover with congest.Context.WakeAt wake-ups: the round a
// machine is started in (Flooder.Start, BFSState.Start, the first
// Counter.Tick, which sends a leaf's count upward unprompted), and any
// deadline the embedder itself imposes (e.g. "read Leader after D rounds").
// Barrier.Arrive is driven by the embedder's own progress and so needs no
// wake-up of its own.
package proto

import (
	"dhc/internal/congest"
	"dhc/internal/graph"
	"dhc/internal/wire"
)

// Flooder is a per-node state machine implementing min-id leader election by
// flooding: every node repeatedly forwards the smallest candidate id it has
// seen. After Rounds() rounds with no new information for `patience` rounds,
// the node with id == minimum considers itself leader.
//
// In a connected graph, flooding stabilizes after diameter rounds; callers
// that know an upper bound D on the diameter should run the flooder for D
// rounds and then read Leader.
type Flooder struct {
	// Best is the smallest id heard so far (initially the node's own).
	Best graph.NodeID
	// changed reports whether Best improved last round.
	changed bool
}

// NewFlooder initializes election state for the given node.
func NewFlooder(self graph.NodeID) *Flooder {
	return &Flooder{Best: self, changed: true}
}

// Start sends the initial candidate to all neighbors. Call from Init.
func (f *Flooder) Start(ctx *congest.Context) {
	for _, nb := range ctx.Neighbors() {
		ctx.Send(nb, wire.Msg(wire.KindCandidate, int32(f.Best)))
	}
	f.changed = false
}

// Absorb processes this round's candidate messages and forwards improvements.
// It returns true if Best changed.
func (f *Flooder) Absorb(ctx *congest.Context, inbox []congest.Envelope) bool {
	improved := false
	for _, env := range inbox {
		if env.Msg.Kind != wire.KindCandidate {
			continue
		}
		if c := graph.NodeID(env.Msg.Arg(0)); c < f.Best {
			f.Best = c
			improved = true
		}
	}
	if improved {
		for _, nb := range ctx.Neighbors() {
			ctx.Send(nb, wire.Msg(wire.KindCandidate, int32(f.Best)))
		}
	}
	f.changed = improved
	return improved
}

// IsLeader reports whether this node currently believes it is the leader.
func (f *Flooder) IsLeader(self graph.NodeID) bool { return f.Best == self }

// BFSState is a per-node state machine that builds a BFS tree rooted at a
// designated node. The root sends KindBFSExplore in its start round; every
// node adopts the first explorer heard (ties broken by smallest sender id,
// which the simulator's sorted inboxes give us for free) and forwards the
// exploration. Children acknowledge adoption so parents learn their subtree
// edges.
type BFSState struct {
	Root     graph.NodeID
	Parent   graph.NodeID // -1 until adopted
	Level    int32        // hop distance from root; -1 until adopted
	Children []graph.NodeID
	// InScope, if non-nil, restricts the tree to a vertex subset: explore
	// messages are only sent to in-scope neighbors (DHC builds one tree
	// per partition).
	InScope func(graph.NodeID) bool
	// Tag distinguishes concurrent BFS instances (e.g. the global tree vs
	// per-partition trees); explore/ack messages carry it.
	Tag int32
}

// NewBFSState returns idle BFS state; the root adopts itself at Start.
func NewBFSState(root graph.NodeID) *BFSState {
	return &BFSState{Root: root, Parent: -1, Level: -1}
}

// NewScopedBFSState returns BFS state restricted to a vertex subset.
func NewScopedBFSState(root graph.NodeID, inScope func(graph.NodeID) bool) *BFSState {
	return &BFSState{Root: root, Parent: -1, Level: -1, InScope: inScope}
}

func (b *BFSState) sendExplore(ctx *congest.Context, except graph.NodeID) {
	for _, nb := range ctx.Neighbors() {
		if nb == except {
			continue
		}
		if b.InScope != nil && !b.InScope(nb) {
			continue
		}
		ctx.Send(nb, wire.Msg(wire.KindBFSExplore, b.Level, b.Tag))
	}
}

// Start begins exploration if this node is the root. Call from the round the
// BFS should begin.
func (b *BFSState) Start(ctx *congest.Context) {
	if ctx.ID() != b.Root {
		return
	}
	b.Parent = b.Root
	b.Level = 0
	b.sendExplore(ctx, -1)
}

// Absorb processes explore/ack messages for one round. It returns true if the
// node adopted a parent this round. After the BFS has quiesced (2*depth
// rounds), Parent/Level/Children are final.
func (b *BFSState) Absorb(ctx *congest.Context, inbox []congest.Envelope) bool {
	adopted := false
	for _, env := range inbox {
		switch env.Msg.Kind {
		case wire.KindBFSExplore:
			if env.Msg.Arg(1) != b.Tag {
				continue
			}
			if b.Parent < 0 {
				b.Parent = env.From
				b.Level = env.Msg.Arg(0) + 1
				adopted = true
				ctx.Send(env.From, wire.Msg(wire.KindBFSAck, 0, b.Tag))
				b.sendExplore(ctx, env.From)
			}
		case wire.KindBFSAck:
			if env.Msg.Arg(1) != b.Tag {
				continue
			}
			b.Children = append(b.Children, env.From)
		}
	}
	return adopted
}

// Adopted reports whether this node has joined the tree.
func (b *BFSState) Adopted() bool { return b.Parent >= 0 }

// IsRoot reports whether this node is the tree root.
func (b *BFSState) IsRoot(self graph.NodeID) bool { return self == b.Root }
