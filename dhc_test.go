package dhc

import (
	"errors"
	"testing"
)

func TestSolveAllAlgorithmsExact(t *testing.T) {
	g := NewGNP(220, 0.7, 1)
	for _, algo := range []Algorithm{AlgorithmDRA, AlgorithmDHC1, AlgorithmDHC2, AlgorithmUpcast} {
		t.Run(algo.String(), func(t *testing.T) {
			res, err := Solve(g, algo, Options{Seed: 2, NumColors: 8})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, res.Cycle); err != nil {
				t.Fatal(err)
			}
			if res.Rounds <= 0 {
				t.Fatal("no rounds metered")
			}
		})
	}
}

func TestSolveAllAlgorithmsStep(t *testing.T) {
	g := NewGNP(600, 0.5, 3)
	for _, algo := range []Algorithm{AlgorithmDRA, AlgorithmDHC1, AlgorithmDHC2, AlgorithmUpcast} {
		t.Run(algo.String(), func(t *testing.T) {
			res, err := Solve(g, algo, Options{Seed: 4, Engine: EngineStep, NumColors: 12})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, res.Cycle); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSolveFailsBelowThreshold(t *testing.T) {
	g := NewGNP(100, 0.01, 5) // far below connectivity threshold
	_, err := Solve(g, AlgorithmDRA, Options{Seed: 1, Engine: EngineStep})
	if !errors.Is(err, ErrNoHamiltonianCycle) {
		t.Fatalf("got %v, want ErrNoHamiltonianCycle", err)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, name := range []string{"dra", "dhc1", "dhc2", "upcast"} {
		a, err := ParseAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != name {
			t.Fatalf("round trip %q -> %q", name, a.String())
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestThresholdP(t *testing.T) {
	if p := ThresholdP(10000, 2, 0.5); p <= 0 || p >= 1 {
		t.Fatalf("threshold %v", p)
	}
}

func TestGenerators(t *testing.T) {
	if g := NewGNP(50, 0.2, 1); g.N() != 50 {
		t.Fatal("GNP wrong size")
	}
	if g := NewGNM(50, 100, 1); g.M() != 100 {
		t.Fatal("GNM wrong edge count")
	}
	g, err := NewRandomRegular(50, 4, 1)
	if err != nil || g.MinDegree() != 4 || g.MaxDegree() != 4 {
		t.Fatalf("regular graph wrong: %v", err)
	}
}

func TestDeterministicAPI(t *testing.T) {
	g := NewGNP(150, 0.8, 9)
	a, err := Solve(g, AlgorithmDHC2, Options{Seed: 7, NumColors: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, AlgorithmDHC2, Options{Seed: 7, NumColors: 6})
	if err != nil {
		t.Fatal(err)
	}
	ao, bo := a.Cycle.Order(), b.Cycle.Order()
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatal("same seed produced different cycles")
		}
	}
}
