package dhc

import (
	"errors"
	"testing"
)

func TestSolveAllAlgorithmsExact(t *testing.T) {
	skipIfShort(t)
	g := NewGNP(220, 0.7, 1)
	for _, algo := range []Algorithm{AlgorithmDRA, AlgorithmDHC1, AlgorithmDHC2, AlgorithmUpcast} {
		t.Run(algo.String(), func(t *testing.T) {
			res, err := Solve(g, algo, Options{Seed: 2, NumColors: 8})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, res.Cycle); err != nil {
				t.Fatal(err)
			}
			if res.Rounds <= 0 {
				t.Fatal("no rounds metered")
			}
		})
	}
}

func TestSolveAllAlgorithmsStep(t *testing.T) {
	g := NewGNP(600, 0.5, 3)
	for _, algo := range []Algorithm{AlgorithmDRA, AlgorithmDHC1, AlgorithmDHC2, AlgorithmUpcast} {
		t.Run(algo.String(), func(t *testing.T) {
			res, err := Solve(g, algo, Options{Seed: 4, Engine: EngineStep, NumColors: 12})
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(g, res.Cycle); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSolveFailsBelowThreshold(t *testing.T) {
	g := NewGNP(100, 0.01, 5) // far below connectivity threshold
	_, err := Solve(g, AlgorithmDRA, Options{Seed: 1, Engine: EngineStep})
	if !errors.Is(err, ErrNoHamiltonianCycle) {
		t.Fatalf("got %v, want ErrNoHamiltonianCycle", err)
	}
}

// TestNoCycleSentinelOnGenuineFailures pins the positive half of the
// wrapNoHC contract: a structurally non-Hamiltonian input must surface as
// ErrNoHamiltonianCycle on every engine and algorithm that can reach the
// run stage.
func TestNoCycleSentinelOnGenuineFailures(t *testing.T) {
	// 60 vertices with 40 edges cannot be Hamiltonian (a HC needs n edges),
	// and the graph is disconnected besides.
	g := NewGNM(60, 40, 7)
	cases := []struct {
		name string
		algo Algorithm
		opts Options
	}{
		{"dra/step", AlgorithmDRA, Options{Seed: 1, Engine: EngineStep}},
		{"dra/exact", AlgorithmDRA, Options{Seed: 1}},
		{"dhc2/step", AlgorithmDHC2, Options{Seed: 1, Engine: EngineStep, NumColors: 4}},
		{"dhc2/exact", AlgorithmDHC2, Options{Seed: 1, NumColors: 4}},
		{"dhc1/step", AlgorithmDHC1, Options{Seed: 1, Engine: EngineStep, NumColors: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Solve(g, tc.algo, tc.opts)
			if err == nil {
				t.Fatal("impossible instance solved")
			}
			if !errors.Is(err, ErrNoHamiltonianCycle) {
				t.Fatalf("genuine failure not tagged ErrNoHamiltonianCycle: %v", err)
			}
		})
	}
}

// TestConfigErrorsAreNotNoCycle pins the negative half: configuration
// mistakes must NOT match ErrNoHamiltonianCycle — callers use the sentinel
// to decide whether retrying with a fresh seed makes sense, and a bad Delta
// or partition count never stops failing.
func TestConfigErrorsAreNotNoCycle(t *testing.T) {
	g := NewGNP(64, 0.8, 3)
	cases := []struct {
		name string
		algo Algorithm
		opts Options
	}{
		{"dhc2/step/delta-too-big", AlgorithmDHC2, Options{Seed: 1, Engine: EngineStep, Delta: 2.5}},
		{"dhc2/step/delta-zero", AlgorithmDHC2, Options{Seed: 1, Engine: EngineStep}},
		{"dhc2/exact/delta-too-big", AlgorithmDHC2, Options{Seed: 1, Delta: 2.5}},
		{"dhc2/exact/delta-zero", AlgorithmDHC2, Options{Seed: 1}},
		{"dhc2/exact/negative-bound", AlgorithmDHC2, Options{Seed: 1, Delta: 0.5, BroadcastBound: -5}},
		{"dhc1/exact/negative-bound", AlgorithmDHC1, Options{Seed: 1, BroadcastBound: -5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Solve(g, tc.algo, tc.opts)
			if err == nil {
				t.Fatal("bad configuration accepted")
			}
			if errors.Is(err, ErrNoHamiltonianCycle) {
				t.Fatalf("config error wrongly tagged ErrNoHamiltonianCycle: %v", err)
			}
		})
	}
	if _, err := Solve(g, Algorithm(99), Options{Seed: 1}); err == nil ||
		errors.Is(err, ErrNoHamiltonianCycle) {
		t.Fatalf("unknown algorithm: got %v, want plain error", err)
	}
	if _, err := Solve(g, AlgorithmDRA, Options{Seed: 1, Engine: Engine(9)}); err == nil ||
		errors.Is(err, ErrNoHamiltonianCycle) {
		t.Fatalf("unknown engine: got %v, want plain error", err)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, name := range []string{"dra", "dhc1", "dhc2", "upcast"} {
		a, err := ParseAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != name {
			t.Fatalf("round trip %q -> %q", name, a.String())
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestThresholdP(t *testing.T) {
	if p := ThresholdP(10000, 2, 0.5); p <= 0 || p >= 1 {
		t.Fatalf("threshold %v", p)
	}
}

func TestGenerators(t *testing.T) {
	if g := NewGNP(50, 0.2, 1); g.N() != 50 {
		t.Fatal("GNP wrong size")
	}
	if g := NewGNM(50, 100, 1); g.M() != 100 {
		t.Fatal("GNM wrong edge count")
	}
	g, err := NewRandomRegular(50, 4, 1)
	if err != nil || g.MinDegree() != 4 || g.MaxDegree() != 4 {
		t.Fatalf("regular graph wrong: %v", err)
	}
}

func TestDeterministicAPI(t *testing.T) {
	g := NewGNP(150, 0.8, 9)
	a, err := Solve(g, AlgorithmDHC2, Options{Seed: 7, NumColors: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, AlgorithmDHC2, Options{Seed: 7, NumColors: 6})
	if err != nil {
		t.Fatal(err)
	}
	ao, bo := a.Cycle.Order(), b.Cycle.Order()
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatal("same seed produced different cycles")
		}
	}
}
