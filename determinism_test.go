package dhc

// Determinism regression tests: same graph + same seed must yield a
// byte-identical cycle and identical cost metrics for both engines, at every
// Workers value. This pins the exact engine's parallel executor and the step
// engine's sharded phase 1 AND parallel phase-2 merge tree to sequential
// behavior — the property both rely on for reproducible experiments.

import (
	"fmt"
	"testing"
)

// fingerprint reduces a Result to a comparable string covering the cycle
// order and every cost the engines meter.
func fingerprint(res *Result) string {
	s := fmt.Sprintf("cycle=%v rounds=%d steps=%d p1=%d p2=%d",
		res.Cycle.Order(), res.Rounds, res.Steps, res.Phase1Rounds, res.Phase2Rounds)
	if res.Counters != nil {
		s += fmt.Sprintf(" messages=%d bits=%d maxMsgBits=%d mem=%+v work=%+v",
			res.Counters.Messages, res.Counters.Bits, res.Counters.MaxMessageBits,
			res.Counters.MemoryDistribution(), res.Counters.WorkDistribution())
	}
	return s
}

var workerGrid = []int{0, 1, 4, 8}

func TestDeterminismAcrossWorkersStep(t *testing.T) {
	// NumColors = 16 gives the DHC2 merge tree 4 levels (8, 4, 2, 1 pairs),
	// exercising both the multi-pair parallel levels and the single-pair
	// tail at every workers value.
	g := NewGNP(400, 0.6, 11)
	for _, algo := range []Algorithm{AlgorithmDHC1, AlgorithmDHC2} {
		t.Run(algo.String(), func(t *testing.T) {
			var want string
			var wantP2 int64
			for _, workers := range workerGrid {
				for rep := 0; rep < 2; rep++ {
					res, err := Solve(g, algo, Options{
						Seed: 21, Engine: EngineStep, NumColors: 16, Workers: workers,
					})
					if err != nil {
						t.Fatalf("workers=%d rep=%d: %v", workers, rep, err)
					}
					got := fingerprint(res)
					if want == "" {
						want = got
						wantP2 = res.Phase2Rounds
						continue
					}
					if got != want {
						t.Fatalf("workers=%d rep=%d diverged:\n got %s\nwant %s",
							workers, rep, got, want)
					}
					if res.Phase2Rounds != wantP2 {
						t.Fatalf("workers=%d rep=%d: Phase2Rounds %d, want %d",
							workers, rep, res.Phase2Rounds, wantP2)
					}
				}
			}
		})
	}
}

func TestDeterminismAcrossWorkersExact(t *testing.T) {
	g := NewGNP(160, 0.7, 13)
	for _, algo := range []Algorithm{AlgorithmDHC1, AlgorithmDHC2} {
		t.Run(algo.String(), func(t *testing.T) {
			var want string
			var wantP2 int64
			for _, workers := range workerGrid {
				res, err := Solve(g, algo, Options{
					Seed: 5, NumColors: 8, Workers: workers,
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := fingerprint(res)
				if want == "" {
					want = got
					wantP2 = res.Phase2Rounds
					continue
				}
				if got != want {
					t.Fatalf("workers=%d diverged:\n got %s\nwant %s", workers, got, want)
				}
				if res.Phase2Rounds != wantP2 {
					t.Fatalf("workers=%d: Phase2Rounds %d, want %d",
						workers, res.Phase2Rounds, wantP2)
				}
			}
		})
	}
}

// eventVsDenseFingerprint reduces a Result to the fields the event-driven
// engine contract pins against the dense sweep: the cycle itself, the round
// accounting (including charged skipped rounds), and the full message/bit
// counters. Invocation and skip counters are intentionally excluded — they
// are exactly what the two modes are allowed (indeed expected) to differ on.
func eventVsDenseFingerprint(res *Result) string {
	return fmt.Sprintf("cycle=%v rounds=%d p1=%d p2=%d messages=%d bits=%d maxMsgBits=%d",
		res.Cycle.Order(), res.Rounds, res.Phase1Rounds, res.Phase2Rounds,
		res.Counters.Messages, res.Counters.Bits, res.Counters.MaxMessageBits)
}

// TestEventDrivenMatchesDenseSweep is the differential test of the
// event-driven exact engine against its dense-sweep oracle: for both DHC
// algorithms, across the full worker grid, the two scheduling modes must
// produce byte-identical cycles, round counts, and message/bit counters —
// while the event-driven runs must actually skip rounds and invoke far
// fewer nodes, or the engine isn't event-driven at all.
func TestEventDrivenMatchesDenseSweep(t *testing.T) {
	skipIfShort(t)
	g := NewGNP(160, 0.7, 13)
	for _, algo := range []Algorithm{AlgorithmDHC1, AlgorithmDHC2} {
		t.Run(algo.String(), func(t *testing.T) {
			var want string
			var denseInvocations int64
			for _, dense := range []bool{true, false} {
				for _, workers := range workerGrid {
					res, err := Solve(g, algo, Options{
						Seed: 5, NumColors: 8, Workers: workers, DenseSweep: dense,
					})
					if err != nil {
						t.Fatalf("dense=%v workers=%d: %v", dense, workers, err)
					}
					got := eventVsDenseFingerprint(res)
					if want == "" {
						want = got
					} else if got != want {
						t.Fatalf("dense=%v workers=%d diverged:\n got %s\nwant %s",
							dense, workers, got, want)
					}
					if dense {
						denseInvocations = res.Counters.Invocations
						if res.Counters.RoundsSkipped != 0 {
							t.Fatalf("dense sweep skipped %d rounds", res.Counters.RoundsSkipped)
						}
					} else {
						if res.Counters.RoundsSkipped == 0 {
							t.Fatal("event-driven run skipped no rounds")
						}
						if res.Counters.Invocations >= denseInvocations {
							t.Fatalf("event-driven run invoked %d nodes, dense %d — no activity savings",
								res.Counters.Invocations, denseInvocations)
						}
					}
				}
			}
		})
	}
}

// TestEventDrivenMatchesDenseSweepSingleMachine extends the differential
// check to the single-instance algorithms (standalone DRA and Upcast).
func TestEventDrivenMatchesDenseSweepSingleMachine(t *testing.T) {
	skipIfShort(t)
	g := NewGNP(200, 0.7, 17)
	for _, algo := range []Algorithm{AlgorithmDRA, AlgorithmUpcast} {
		t.Run(algo.String(), func(t *testing.T) {
			var want string
			for _, dense := range []bool{true, false} {
				res, err := Solve(g, algo, Options{Seed: 9, DenseSweep: dense})
				if err != nil {
					t.Fatalf("dense=%v: %v", dense, err)
				}
				got := eventVsDenseFingerprint(res)
				if want == "" {
					want = got
				} else if got != want {
					t.Fatalf("dense=%v diverged:\n got %s\nwant %s", dense, got, want)
				}
			}
		})
	}
}

// TestDeterminismSingleMachine covers the algorithms without a partition
// phase (DRA, Upcast): repeat runs must be identical for both engines.
func TestDeterminismSingleMachine(t *testing.T) {
	skipIfShort(t)
	g := NewGNP(200, 0.7, 17)
	for _, algo := range []Algorithm{AlgorithmDRA, AlgorithmUpcast} {
		for _, engine := range []Engine{EngineExact, EngineStep} {
			t.Run(fmt.Sprintf("%s/engine=%d", algo, engine), func(t *testing.T) {
				var want string
				for rep := 0; rep < 2; rep++ {
					res, err := Solve(g, algo, Options{Seed: 9, Engine: engine})
					if err != nil {
						t.Fatal(err)
					}
					got := fingerprint(res)
					if want == "" {
						want = got
					} else if got != want {
						t.Fatalf("rep %d diverged:\n got %s\nwant %s", rep, got, want)
					}
				}
			})
		}
	}
}

// TestGraphGenerationDeterminism pins the generators themselves: the CSR
// build paths (two-pass GNP, batch-sampled GNM) must stay pure functions of
// the seed.
func TestGraphGenerationDeterminism(t *testing.T) {
	for rep := 0; rep < 2; rep++ {
		g1 := NewGNP(300, 0.1, 23)
		g2 := NewGNP(300, 0.1, 23)
		if g1.M() != g2.M() {
			t.Fatal("GNP not deterministic")
		}
		h1 := NewGNM(300, 2000, 29)
		h2 := NewGNM(300, 2000, 29)
		e1, e2 := h1.Edges(), h2.Edges()
		if len(e1) != len(e2) {
			t.Fatal("GNM not deterministic")
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("GNM edge %d differs: %v vs %v", i, e1[i], e2[i])
			}
		}
	}
}
