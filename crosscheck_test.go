package dhc

// Cross-engine agreement tests: the exact CONGEST engine simulates every
// round and message, the step engine charges the paper's round costs at
// rotation-step granularity. The two must agree up to a constant factor —
// that agreement is what licenses using the step engine for the large-n
// scaling experiments (the promise made in internal/stepsim's package doc).

import (
	"fmt"
	"testing"
)

// crossEngineRoundSlack bounds the multiplicative disagreement between the
// exact engine's measured rounds and the step engine's charged rounds, in
// either direction. Measured ratios on the fixed instances below range from
// 0.53 (DRA: the step engine over-charges rotations at the full broadcast
// bound) to 5.3 (DHC1/DHC2: the exact engine pays scaffolding the step
// engine prices more tightly); 8 leaves constant-factor headroom without
// letting an asymptotic divergence slip through.
const crossEngineRoundSlack = 8

func crosscheckAlgos() []Algorithm {
	return []Algorithm{AlgorithmDRA, AlgorithmDHC1, AlgorithmDHC2, AlgorithmUpcast}
}

func TestCrosscheckEngines(t *testing.T) {
	skipIfShort(t)
	for _, n := range []int{64, 128, 256} {
		g := NewGNP(n, 0.8, uint64(n))
		k := n / 16
		for _, algo := range crosscheckAlgos() {
			t.Run(fmt.Sprintf("%s/n=%d", algo, n), func(t *testing.T) {
				opts := Options{Seed: 7, NumColors: k, Delta: 0.5}
				exact, err := Solve(g, algo, opts)
				if err != nil {
					t.Fatalf("exact engine: %v", err)
				}
				opts.Engine = EngineStep
				step, err := Solve(g, algo, opts)
				if err != nil {
					t.Fatalf("step engine: %v", err)
				}
				for name, res := range map[string]*Result{"exact": exact, "step": step} {
					if err := Verify(g, res.Cycle); err != nil {
						t.Fatalf("%s engine produced invalid cycle: %v", name, err)
					}
					if res.Rounds <= 0 {
						t.Fatalf("%s engine charged no rounds", name)
					}
				}
				lo, hi := exact.Rounds, step.Rounds
				if lo > hi {
					lo, hi = hi, lo
				}
				if hi > crossEngineRoundSlack*lo {
					t.Fatalf("engines disagree beyond %dx slack: exact=%d step=%d",
						crossEngineRoundSlack, exact.Rounds, step.Rounds)
				}
			})
		}
	}
}

// TestCrosscheckEnginesLarge extends the agreement test to n ∈ {512, 1024},
// sizes the event-driven exact engine made feasible (the dense sweep kept
// the old band pinned at n ≤ 256). Standalone DRA is excluded: its single
// scope spans the whole graph, so every rotation floods Θ(m) messages and
// exact simulation at n = 1024 costs ~10⁹ envelope-hops — the very cost the
// DHC partitioning exists to avoid; DRA stays covered at n ≤ 256 above.
// The slack is the same documented constant as the base test.
func TestCrosscheckEnginesLarge(t *testing.T) {
	skipIfShort(t)
	for _, n := range []int{512, 1024} {
		g := NewGNP(n, 0.8, uint64(n))
		k := n / 16
		for _, algo := range []Algorithm{AlgorithmDHC1, AlgorithmDHC2, AlgorithmUpcast} {
			t.Run(fmt.Sprintf("%s/n=%d", algo, n), func(t *testing.T) {
				opts := Options{Seed: 7, NumColors: k, Delta: 0.5}
				exact, err := Solve(g, algo, opts)
				if err != nil {
					t.Fatalf("exact engine: %v", err)
				}
				opts.Engine = EngineStep
				step, err := Solve(g, algo, opts)
				if err != nil {
					t.Fatalf("step engine: %v", err)
				}
				for name, res := range map[string]*Result{"exact": exact, "step": step} {
					if err := Verify(g, res.Cycle); err != nil {
						t.Fatalf("%s engine produced invalid cycle: %v", name, err)
					}
					if res.Rounds <= 0 {
						t.Fatalf("%s engine charged no rounds", name)
					}
				}
				lo, hi := exact.Rounds, step.Rounds
				if lo > hi {
					lo, hi = hi, lo
				}
				if hi > crossEngineRoundSlack*lo {
					t.Fatalf("engines disagree beyond %dx slack: exact=%d step=%d",
						crossEngineRoundSlack, exact.Rounds, step.Rounds)
				}
			})
		}
	}
}

// TestCrosscheckPhase2Costs pins the phase-2 cost model against the exact
// engine, per phase rather than in total: the step engine charges the merge
// tree at levels·(2·scopeB+10) (DHC2) and the hypernode rotation at the
// global broadcast bound (DHC1), while the exact engine measures its phase 2
// round by round. The two must agree within the same documented slack as the
// total-rounds crosscheck — the step engine prices broadcasts at the scope
// bound where the exact engine pays the global one, a constant-factor gap,
// and anything beyond the slack would mean the merge-tree accounting
// diverged asymptotically.
func TestCrosscheckPhase2Costs(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		g := NewGNP(n, 0.8, uint64(n))
		k := n / 16
		for _, algo := range []Algorithm{AlgorithmDHC1, AlgorithmDHC2} {
			t.Run(fmt.Sprintf("%s/n=%d", algo, n), func(t *testing.T) {
				opts := Options{Seed: 7, NumColors: k}
				exact, err := Solve(g, algo, opts)
				if err != nil {
					t.Fatalf("exact engine: %v", err)
				}
				opts.Engine = EngineStep
				step, err := Solve(g, algo, opts)
				if err != nil {
					t.Fatalf("step engine: %v", err)
				}
				if exact.Phase2Rounds <= 0 || step.Phase2Rounds <= 0 {
					t.Fatalf("missing phase-2 charge: exact=%d step=%d",
						exact.Phase2Rounds, step.Phase2Rounds)
				}
				lo, hi := exact.Phase2Rounds, step.Phase2Rounds
				if lo > hi {
					lo, hi = hi, lo
				}
				if hi > crossEngineRoundSlack*lo {
					t.Fatalf("phase-2 accounting disagrees beyond %dx slack: exact=%d step=%d",
						crossEngineRoundSlack, exact.Phase2Rounds, step.Phase2Rounds)
				}
			})
		}
	}
}

// TestCrosscheckSteps pins the step-count agreement between the engines for
// the DHC algorithms — the fix for Result.Steps silently reading 0 on the
// exact engine while the step engine reported it. Both engines must meter a
// positive rotation-step total, and the two totals must agree within the
// same documented slack as the round crosscheck (the engines consume
// randomness differently, so counts match in scale, not bit for bit).
func TestCrosscheckSteps(t *testing.T) {
	for _, n := range []int{64, 128, 256} {
		g := NewGNP(n, 0.8, uint64(n))
		k := n / 16
		for _, algo := range []Algorithm{AlgorithmDHC1, AlgorithmDHC2} {
			t.Run(fmt.Sprintf("%s/n=%d", algo, n), func(t *testing.T) {
				opts := Options{Seed: 7, NumColors: k, Delta: 0.5}
				exact, err := Solve(g, algo, opts)
				if err != nil {
					t.Fatalf("exact engine: %v", err)
				}
				opts.Engine = EngineStep
				step, err := Solve(g, algo, opts)
				if err != nil {
					t.Fatalf("step engine: %v", err)
				}
				if exact.Steps <= 0 || step.Steps <= 0 {
					t.Fatalf("missing step metering: exact=%d step=%d", exact.Steps, step.Steps)
				}
				lo, hi := exact.Steps, step.Steps
				if lo > hi {
					lo, hi = hi, lo
				}
				if hi > crossEngineRoundSlack*lo {
					t.Fatalf("step accounting disagrees beyond %dx slack: exact=%d step=%d",
						crossEngineRoundSlack, exact.Steps, step.Steps)
				}
			})
		}
	}
}

// TestCrosscheckPhaseAccounting pins the invariant both engines share: for
// the two-phase algorithms the total equals the phase split.
func TestCrosscheckPhaseAccounting(t *testing.T) {
	g := NewGNP(128, 0.8, 128)
	for _, algo := range []Algorithm{AlgorithmDHC1, AlgorithmDHC2} {
		for _, engine := range []Engine{EngineExact, EngineStep} {
			res, err := Solve(g, algo, Options{Seed: 3, NumColors: 8, Engine: engine})
			if err != nil {
				t.Fatalf("%s engine %d: %v", algo, engine, err)
			}
			if res.Phase1Rounds <= 0 || res.Phase2Rounds <= 0 {
				t.Fatalf("%s engine %d: missing phase split %+v", algo, engine, res)
			}
			if res.Phase1Rounds+res.Phase2Rounds != res.Rounds {
				t.Fatalf("%s engine %d: phases %d+%d != total %d",
					algo, engine, res.Phase1Rounds, res.Phase2Rounds, res.Rounds)
			}
		}
	}
}
