module dhc

go 1.22
