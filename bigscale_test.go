package dhc

// Large-scale demonstrations of the CSR graph core and the sharded step
// engine. The million-vertex test is gated behind DHC_BIG=1 because it needs
// a few GB of RAM and minutes of CPU — run it with:
//
//	DHC_BIG=1 go test -run MillionVertex -v .
//
// Gating contract (README "Testing"): a big run executes only when DHC_BIG
// is set AND -short is not — requireBig checks both, so `go test -short
// ./...` stays fast even in an environment that exports DHC_BIG globally,
// and a plain `go test ./...` skips the big runs unless explicitly opted in.
//
// Density regimes: the full story (why the big runs use δ = 1 instead of
// the paper's δ = 0.5 analysis density, and why the partition count K must
// be chosen jointly with c so every partition clears its own Hamiltonicity
// threshold) lives in README.md under "Scaling: the ten-million-vertex
// runbook". Short version: at n = 10^6 the δ = 0.5 graph would have ~10^10
// edges (~100 GB of CSR arena), so the demonstrations run at the
// connectivity-threshold density (δ = 1, c = 32, m ≈ 2.2·10^8 edges here)
// with K = 8 fixed explicitly — the same sharded phase 1 + pairwise-merge
// phase 2 machinery the δ = 0.5 analysis is about.

import (
	"os"
	"testing"
	"time"
)

// requireBig gates a big run on the full contract: the DHC_BIG env var must
// opt in and testing.Short() must not opt out. Every slow test in the repo
// goes through this helper so the two knobs cannot drift apart again.
func requireBig(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("-short set: skipping big run (DHC_BIG gating contract)")
	}
	if os.Getenv("DHC_BIG") == "" {
		t.Skip("set DHC_BIG=1 to run big demonstrations (and do not pass -short)")
	}
}

// skipIfShort gates the merely-slow tier (multi-second exact-engine runs
// that are still tier-1 coverage): they always run by default and need no
// env var, but -short skips them. Big runs use requireBig instead.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("-short set: skipping multi-second exact-engine test")
	}
}

func TestDHC2MillionVertexStepEngine(t *testing.T) {
	requireBig(t)
	n := 1_000_000
	p := ThresholdP(n, 32, 1.0)
	start := time.Now()
	g := NewGNP(n, p, 1)
	genTime := time.Since(start)
	t.Logf("generated G(n=%d, p=%.6f): m=%d in %v", n, p, g.M(), genTime)

	start = time.Now()
	res, err := Solve(g, AlgorithmDHC2, Options{
		Seed:      2,
		Engine:    EngineStep,
		NumColors: 8,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	solveTime := time.Since(start)
	if err := Verify(g, res.Cycle); err != nil {
		t.Fatal(err)
	}
	if res.Cycle.Len() != n {
		t.Fatalf("cycle length %d, want %d", res.Cycle.Len(), n)
	}
	t.Logf("DHC2 step engine (K=8, workers=4): rounds=%d steps=%d phase1=%d phase2=%d in %v",
		res.Rounds, res.Steps, res.Phase1Rounds, res.Phase2Rounds, solveTime)
}
