package dhc

// Large-scale demonstrations of the CSR graph core and the sharded step
// engine. The million-vertex test is gated behind DHC_BIG=1 because it needs
// a few GB of RAM and minutes of CPU — run it with:
//
//	DHC_BIG=1 go test -run MillionVertex -v .
//
// A note on density regimes: at n = 10^6 the paper's δ = 0.5 graph
// G(n, c·ln n/√n) has Θ(c·ln n·n^1.5) ≈ 10^10 edges — about 100 GB of CSR
// arena — so no explicit-graph engine can materialize it. The demonstration
// therefore runs at the connectivity-threshold density (δ = 1, c = 32,
// m ≈ 2.2·10^8 edges) with the partition count K = 8 fixed explicitly,
// which exercises exactly the same sharded phase 1 + pairwise-merge phase 2
// machinery that the δ = 0.5 analysis is about.

import (
	"os"
	"testing"
	"time"
)

func TestDHC2MillionVertexStepEngine(t *testing.T) {
	if os.Getenv("DHC_BIG") == "" {
		t.Skip("set DHC_BIG=1 to run the 10^6-vertex demonstration")
	}
	n := 1_000_000
	p := ThresholdP(n, 32, 1.0)
	start := time.Now()
	g := NewGNP(n, p, 1)
	genTime := time.Since(start)
	t.Logf("generated G(n=%d, p=%.6f): m=%d in %v", n, p, g.M(), genTime)

	start = time.Now()
	res, err := Solve(g, AlgorithmDHC2, Options{
		Seed:      2,
		Engine:    EngineStep,
		NumColors: 8,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	solveTime := time.Since(start)
	if err := Verify(g, res.Cycle); err != nil {
		t.Fatal(err)
	}
	if res.Cycle.Len() != n {
		t.Fatalf("cycle length %d, want %d", res.Cycle.Len(), n)
	}
	t.Logf("DHC2 step engine (K=8, workers=4): rounds=%d steps=%d phase1=%d phase2=%d in %v",
		res.Rounds, res.Steps, res.Phase1Rounds, res.Phase2Rounds, solveTime)
}
