package dhc

// Tests for the trial-friendly single-shot API: the failure taxonomy that
// the Monte Carlo sweep harness (internal/sweep) builds its per-cell
// statistics from. The taxonomy's load-bearing property is separation:
// genuine negatives, round-limit cut-offs and configuration errors must
// never bleed into each other, because each feeds a different statistic.

import (
	"errors"
	"fmt"
	"testing"

	"dhc/internal/congest"
	"dhc/internal/stepsim"
)

func TestClassifySyntheticErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want FailureClass
	}{
		{"nil", nil, FailureNone},
		{"no-hc sentinel", ErrNoHamiltonianCycle, FailureNoHC},
		{"wrapped step failure", wrapNoHC(fmt.Errorf("%w: boom", stepsim.ErrFailed)), FailureNoHC},
		{"wrapped round limit", wrapNoHC(fmt.Errorf("%w: 99 rounds", congest.ErrRoundLimit)), FailureRoundLimit},
		{"bare round limit", congest.ErrRoundLimit, FailureRoundLimit},
		{"config error", errors.New("dhc: delta out of range"), FailureError},
		{"bandwidth violation", congest.ErrBandwidth, FailureError},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestWrapNoHCPreservesUnwrapChain pins the double-%w wrapping: after
// tagging with ErrNoHamiltonianCycle the original sentinel must stay
// reachable via errors.Is, or Classify could not tell a round-limit
// cut-off from an ordinary negative.
func TestWrapNoHCPreservesUnwrapChain(t *testing.T) {
	err := wrapNoHC(fmt.Errorf("%w: 42 rounds", congest.ErrRoundLimit))
	if !errors.Is(err, ErrNoHamiltonianCycle) {
		t.Fatal("wrapped error lost the no-cycle sentinel")
	}
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatal("wrapped error lost the round-limit sentinel")
	}
}

func TestFailureClassString(t *testing.T) {
	want := map[FailureClass]string{
		FailureNone:       "ok",
		FailureNoHC:       "no_hc",
		FailureRoundLimit: "round_limit",
		FailureError:      "error",
	}
	for class, name := range want {
		if class.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(class), class.String(), name)
		}
	}
	if FailureClass(99).String() != "failure(99)" {
		t.Errorf("unknown class: %q", FailureClass(99).String())
	}
}

// TestTrialEndToEnd drives each class through a real Solve: a dense solvable
// instance, a sub-threshold negative, and a configuration error.
func TestTrialEndToEnd(t *testing.T) {
	g := NewGNP(64, 0.5, 1)
	res, class, err := Trial(g, AlgorithmDRA, Options{Seed: 2, Engine: EngineStep})
	if class != FailureNone || err != nil || res == nil {
		t.Fatalf("solvable trial: class=%v err=%v", class, err)
	}
	if err := Verify(g, res.Cycle); err != nil {
		t.Fatal(err)
	}

	sparse := NewGNP(64, 0.02, 1)
	res, class, err = Trial(sparse, AlgorithmDRA, Options{Seed: 2, Engine: EngineStep})
	if class != FailureNoHC || err == nil || res != nil {
		t.Fatalf("sub-threshold trial: class=%v err=%v res=%v", class, err, res)
	}

	res, class, err = Trial(g, AlgorithmDHC2, Options{Seed: 2, Engine: EngineStep, Delta: 7})
	if class != FailureError || err == nil || res != nil {
		t.Fatalf("bad-delta trial: class=%v err=%v res=%v", class, err, res)
	}

	if _, class, _ = Trial(g, AlgorithmDRA, Options{BroadcastBound: -1}); class != FailureError {
		t.Fatalf("negative broadcast bound: class=%v", class)
	}
}
