// Package dhc is a Go reproduction of "Fast and Efficient Distributed
// Computation of Hamiltonian Cycles in Random Graphs" (Chatterjee, Fathi,
// Pandurangan, Pham — ICDCS 2018): randomized distributed algorithms that
// find Hamiltonian cycles in G(n, p) random graphs in the synchronous
// CONGEST model.
//
// The package exposes two engines:
//
//   - the exact engine simulates every CONGEST round and message, enforcing
//     the O(log n)-bit per-edge bandwidth and metering rounds, messages,
//     bits, and per-node memory (EngineExact);
//   - the step engine executes the same algorithm logic at rotation-step
//     granularity and charges the paper's round costs, scaling to millions
//     of vertices (EngineStep).
//
// Quick start:
//
//	g := dhc.NewGNP(1024, dhc.ThresholdP(1024, 8, 0.5), 1)
//	res, err := dhc.Solve(g, dhc.AlgorithmDHC2, dhc.Options{Seed: 2, Delta: 0.5})
package dhc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"dhc/internal/congest"
	"dhc/internal/core"
	"dhc/internal/cycle"
	"dhc/internal/dist"
	"dhc/internal/dra"
	"dhc/internal/graph"
	"dhc/internal/metrics"
	"dhc/internal/rng"
	"dhc/internal/stepsim"
	"dhc/internal/upcast"
)

// Graph re-exports the immutable undirected graph type.
type Graph = graph.Graph

// NodeID re-exports the vertex identifier type.
type NodeID = graph.NodeID

// Cycle re-exports the Hamiltonian-cycle result type.
type Cycle = cycle.Cycle

// Counters re-exports the exact engine's cost counters.
type Counters = metrics.Counters

// NewGNP samples an Erdős–Rényi G(n, p) random graph deterministically from
// the seed.
func NewGNP(n int, p float64, seed uint64) *Graph {
	return graph.GNP(n, p, rng.New(seed))
}

// NewGNM samples a uniform n-vertex graph with exactly m edges.
func NewGNM(n, m int, seed uint64) *Graph {
	return graph.GNM(n, m, rng.New(seed))
}

// NewRandomRegular samples a d-regular random graph.
func NewRandomRegular(n, d int, seed uint64) (*Graph, error) {
	return graph.RandomRegular(n, d, rng.New(seed))
}

// NewChungLu samples a Chung–Lu expected-degree power-law graph with mean
// degree avgDeg and tail exponent > 2, deterministically from the seed.
func NewChungLu(n int, avgDeg, exponent float64, seed uint64) *Graph {
	return graph.ChungLu(n, avgDeg, exponent, rng.New(seed))
}

// NewGeometric samples a random geometric graph: n uniform points on the
// unit square, edges between points within the given radius.
func NewGeometric(n int, radius float64, seed uint64) *Graph {
	return graph.Geometric(n, radius, rng.New(seed))
}

// NewSBM samples a stochastic block model with k contiguous near-equal
// blocks, in-block edge probability pIn and cross-block probability pOut.
func NewSBM(n, k int, pIn, pOut float64, seed uint64) *Graph {
	return graph.SBM(n, k, pIn, pOut, rng.New(seed))
}

// NewHypercube returns the dim-dimensional hypercube Q_dim (deterministic).
func NewHypercube(dim int) *Graph {
	return graph.Hypercube(dim)
}

// NewTorus returns the rows×cols wraparound torus lattice (deterministic).
func NewTorus(rows, cols int) *Graph {
	return graph.Torus(rows, cols)
}

// ThresholdP returns p = c·ln(n)/n^delta, the paper's edge-probability
// parameterization (clamped to [0, 1]).
func ThresholdP(n int, c, delta float64) float64 {
	return graph.HCThresholdP(n, c, delta)
}

// Algorithm selects which of the paper's algorithms to run.
type Algorithm int

const (
	// AlgorithmDRA is the standalone Distributed Rotation Algorithm
	// (Algorithm 1), the building block of both DHC algorithms.
	AlgorithmDRA Algorithm = iota + 1
	// AlgorithmDHC1 is Algorithm 2: √n partitions plus a hypernode
	// rotation (for p ≈ c·ln n/√n).
	AlgorithmDHC1
	// AlgorithmDHC2 is Algorithm 3: n^{1-δ} partitions plus ⌈log K⌉
	// parallel pairwise merge levels (for p ≈ c·ln n/n^δ).
	AlgorithmDHC2
	// AlgorithmUpcast is the Section III centralized algorithm: sample
	// Θ(log n) edges per node, upcast to a root, solve locally, downcast.
	AlgorithmUpcast
)

var algorithmNames = map[Algorithm]string{
	AlgorithmDRA:    "dra",
	AlgorithmDHC1:   "dhc1",
	AlgorithmDHC2:   "dhc2",
	AlgorithmUpcast: "upcast",
}

// String returns the algorithm's short name.
func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// AlgorithmNames returns every algorithm's short name in sorted order — the
// vocabulary ParseAlgorithm accepts, spelled the way its error reports it.
func AlgorithmNames() []string {
	names := make([]string, 0, len(algorithmNames))
	for _, name := range algorithmNames {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParseAlgorithm resolves a short name ("dra", "dhc1", "dhc2", "upcast").
// The error of an unknown name lists the valid names deterministically
// (sorted), so CLI messages are stable across runs.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algorithmNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("dhc: unknown algorithm %q (valid: %s)", s, strings.Join(AlgorithmNames(), ", "))
}

// Engine selects the simulation fidelity.
type Engine int

const (
	// EngineExact simulates every CONGEST round and message.
	EngineExact Engine = iota + 1
	// EngineStep executes at rotation-step granularity with charged round
	// costs; orders of magnitude faster for large n.
	EngineStep
)

// Options configures Solve.
type Options struct {
	// Seed makes the run deterministic. Same graph + same seed = same
	// cycle, metrics, everything.
	Seed uint64
	// Engine defaults to EngineExact.
	Engine Engine
	// Delta is DHC2's sparsity exponent (0 < δ ≤ 1); ignored elsewhere.
	Delta float64
	// NumColors overrides the partition count K for DHC1/DHC2.
	NumColors int
	// Workers bounds run parallelism in both phases of both engines: the
	// exact engine's parallel executor (which drives phase 1 and the
	// phase-2 merge levels alike) and the step engine's sharded phase 1
	// plus parallel phase-2 merge tree. Any value (0, 1, 4, ...) produces
	// byte-identical results; only wall-clock changes.
	Workers int
	// DenseSweep forces the exact engine's dense per-round sweep (every
	// node invoked every round) instead of the default event-driven
	// schedule that invokes only nodes with deliveries or due wake-ups and
	// skips globally quiet rounds. Both modes produce byte-identical
	// cycles, rounds, and message/bit counters; the dense sweep is retained
	// as the differential-testing oracle. Ignored by EngineStep.
	DenseSweep bool
	// BroadcastBound overrides B, the bound every broadcast/BFS settling
	// wait is charged at (rotation consistency waits, barrier release
	// delays). Zero keeps each algorithm's default: a tight bound computed
	// from an eccentricity BFS — global knowledge the CONGEST model does
	// not actually grant. Setting BroadcastBound to n selects the paper's
	// assumption-free trivial bound; its long quiet waits are exactly what
	// the event-driven engine skips. Exact engine only.
	BroadcastBound int64
	// MaxAttempts bounds restart retries (step engine and partition DRA).
	MaxAttempts int
	// SamplesPerNode is Upcast's per-node edge sample count (0 = 3·ln n).
	SamplesPerNode int
	// MaxRounds overrides the exact engine's round budget — the watchdog
	// that turns a non-terminating run into ErrRoundLimit. Zero keeps each
	// algorithm's derived default; negatives are rejected up front (like
	// BroadcastBound, a negative budget would surface as a round-limit
	// failure and corrupt the failure taxonomy). Ignored by EngineStep,
	// which has no round loop to bound — use a context deadline there.
	MaxRounds int64
	// Shards > 1 runs the exact engine distributed: the vertex set is
	// partitioned into that many contiguous shards, each executed by its own
	// worker behind a real transport (see Transport), with the coordinator
	// replaying the in-process round loop over per-round message batches. A
	// distributed run is byte-identical to the in-process run — same cycle,
	// same counters — which the differential tests enforce. 0 or 1 keeps the
	// in-process engine. Exact engine only.
	Shards int
	// Transport selects the shard transport when Shards > 1: "unix"
	// (default) and "tcp" run goroutine workers behind real sockets; "proc"
	// forks one hcshard OS process per shard (DRA and DHC2 only — their
	// programs are portable across a process boundary).
	Transport string
	// ShardBinary is the hcshard executable for Transport "proc"
	// ("hcshard" via PATH when empty).
	ShardBinary string
	// Observer, if non-nil, receives best-effort lifecycle callbacks (see
	// Observer). It observes only: a run's cycle, rounds and counters are
	// byte-identical with or without it.
	Observer *Observer
}

// Observer receives lifecycle callbacks from a run, for CLIs and harnesses
// that want liveness signals out of long solves without polling. Callbacks
// run synchronously on the solving goroutine — keep them fast — and every
// field is optional. Callback granularity is engine-dependent: the step
// engine reports its real phase transitions ("phase1", "phase2") and restart
// attempts; the exact engine reports a single "run" phase plus throttled
// round progress (its phases are per-node state, invisible to the driver
// until extraction).
type Observer struct {
	// OnPhase fires when the run enters a named phase: "run" for
	// single-phase algorithms and the exact engine, "phase1"/"phase2" for
	// the step engine's DHC algorithms.
	OnPhase func(phase string)
	// OnRounds fires with the charged round total at the exact engine's
	// amortized checkpoint (every few dozen executed rounds). Never fires
	// for EngineStep, which charges rounds analytically.
	OnRounds func(rounds int64)
	// OnRestart fires when the step engine burns a run-level restart
	// attempt (a failed standalone rotation attempt, a phase-1 recolor, or
	// a phase-2 retry), with a strictly increasing cumulative count per
	// run. The step engine's per-partition internal restarts happen on
	// pool workers and are aggregated into cost accounting rather than
	// reported individually; the exact engine's restarts are per-node
	// decisions and are not reported at all.
	OnRestart func(restarts int)
}

// hooks adapts the observer to the step engine's callback set.
func (o *Observer) hooks() stepsim.Hooks {
	if o == nil {
		return stepsim.Hooks{}
	}
	return stepsim.Hooks{OnPhase: o.OnPhase, OnRestart: o.OnRestart}
}

// phase fires OnPhase if configured.
func (o *Observer) phase(name string) {
	if o != nil && o.OnPhase != nil {
		o.OnPhase(name)
	}
}

// progress returns the congest-layer progress hook, nil when unobserved.
func (o *Observer) progress() func(int64) {
	if o == nil {
		return nil
	}
	return o.OnRounds
}

// Result is the outcome of a successful Solve.
type Result struct {
	// Cycle is the verified Hamiltonian cycle.
	Cycle *Cycle
	// Rounds is the CONGEST round count (measured or charged).
	Rounds int64
	// Steps is the rotation-step count across all phases.
	Steps int64
	// Counters holds full exact-engine metrics (nil for EngineStep).
	Counters *Counters
	// Phase1Rounds/Phase2Rounds split the total when the algorithm has two
	// phases (zero otherwise).
	Phase1Rounds int64
	Phase2Rounds int64
	// ShardStats is the per-shard transport accounting when the run executed
	// distributed (Options.Shards > 1); nil otherwise.
	ShardStats []ShardStat
}

// ShardStat re-exports the distributed engine's per-shard accounting record.
type ShardStat = dist.ShardStat

// ErrNoHamiltonianCycle is returned when the run terminates without a valid
// Hamiltonian cycle.
var ErrNoHamiltonianCycle = errors.New("dhc: no Hamiltonian cycle found")

// ErrRoundLimit re-exports the exact engine's round-budget sentinel: the run
// was cut off before terminating. It always arrives wrapped in
// ErrNoHamiltonianCycle (on a valid input the two are the same verdict), but
// callers building a failure taxonomy can match it specifically.
var ErrRoundLimit = congest.ErrRoundLimit

// FailureClass is the taxonomy of Solve outcomes, for Monte Carlo harnesses
// that aggregate many trials: a genuine negative (no cycle found) is evidence
// about the algorithm's success probability, a round-limit cut-off is
// evidence about the round budget, and a usage error is evidence about the
// caller — conflating them would corrupt all three statistics.
type FailureClass int

const (
	// FailureNone means the run produced a verified Hamiltonian cycle.
	FailureNone FailureClass = iota
	// FailureNoHC means the run executed to completion but found no
	// Hamiltonian cycle (restart budgets exhausted, no bridge found, ...).
	FailureNoHC
	// FailureRoundLimit means the exact engine hit its round budget before
	// the algorithm terminated.
	FailureRoundLimit
	// FailureError means the run never meaningfully executed: invalid
	// options, a CONGEST model violation, an infeasible generator request.
	// Retrying with a new seed cannot help.
	FailureError
	// FailureCanceled means the run was cut off by its context (cancellation
	// or deadline) before terminating. It is evidence about the operator's
	// patience, not the algorithm: a canceled trial must not count toward
	// success probability, the round-budget statistic, or usage errors.
	FailureCanceled
)

var failureNames = map[FailureClass]string{
	FailureNone:       "ok",
	FailureNoHC:       "no_hc",
	FailureRoundLimit: "round_limit",
	FailureError:      "error",
	FailureCanceled:   "canceled",
}

// String returns the class's short name ("ok", "no_hc", "round_limit",
// "error"), the spelling used by the sweep report schema.
func (f FailureClass) String() string {
	if s, ok := failureNames[f]; ok {
		return s
	}
	return fmt.Sprintf("failure(%d)", int(f))
}

// Classify maps a Solve error to its failure class. A nil error is
// FailureNone; a round-limit cut-off classifies as FailureRoundLimit even
// though it is also wrapped in ErrNoHamiltonianCycle; context cancellation
// and deadline expiry classify as FailureCanceled regardless of which layer
// surfaced them.
func Classify(err error) FailureClass {
	switch {
	case err == nil:
		return FailureNone
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return FailureCanceled
	case errors.Is(err, ErrRoundLimit):
		return FailureRoundLimit
	case errors.Is(err, ErrNoHamiltonianCycle):
		return FailureNoHC
	default:
		return FailureError
	}
}

// Trial is the single-shot Monte Carlo entry point: one Solve call plus its
// failure class. The Result is nil exactly when class != FailureNone.
func Trial(g *Graph, algo Algorithm, opts Options) (*Result, FailureClass, error) {
	res, err := Solve(g, algo, opts)
	return res, Classify(err), err
}

// Solve runs the selected algorithm on g and returns the verified cycle and
// cost metrics. All randomness derives from opts.Seed. It is the one-shot
// form of a Solver session: repeated trials should construct one Solver and
// reuse it (see NewSolver).
func Solve(g *Graph, algo Algorithm, opts Options) (*Result, error) {
	return SolveContext(context.Background(), g, algo, opts)
}

// SolveContext is Solve with cooperative cancellation: the run stops at the
// engine's next amortized checkpoint once ctx is done and returns ctx's
// error (matchable with errors.Is against context.Canceled or
// context.DeadlineExceeded; Classify maps both to FailureCanceled).
func SolveContext(ctx context.Context, g *Graph, algo Algorithm, opts Options) (*Result, error) {
	s, err := NewSolver(algo, opts)
	if err != nil {
		return nil, err
	}
	return s.Solve(ctx, g)
}

// Solver is a reusable run session for one (algorithm, options) pair. Its
// Solve method executes independent trials while retaining engine state
// across calls — the exact engine's simulator arena (persistent node
// contexts, inbox buckets, wake-schedule heap, codec) and the step engine's
// scratch buffers — so repeated trials on same-shape instances (equal vertex
// count) allocate a small fraction of what fresh Solve calls would.
//
// The determinism contract is unchanged: a Solver trial with a given
// (graph, seed) is byte-identical to a fresh Solve call with the same
// inputs, in any order, after any number of prior trials, and after
// cancelled or failed trials (pinned by TestSolverReuseMatchesFreshSolve).
//
// A Solver is not safe for concurrent use; run one per goroutine (or check
// sessions in and out of a pool). The contract is enforced: a Solve call that
// overlaps another on the same session fails fast with ErrSolverInUse instead
// of racing on the shared engine arena. The guard serializes nothing — the
// overlapping call returns immediately; the caller owns the retry policy.
type Solver struct {
	algo Algorithm
	opts Options

	// inUse flags an in-flight trial: SolveSeeded owns the session between a
	// successful CompareAndSwap and its deferred release. It detects misuse
	// (concurrent calls corrupt the reused arena) rather than queueing it.
	inUse atomic.Bool

	draSess  *dra.Session
	dhc1Sess *core.DHC1Session
	dhc2Sess *core.DHC2Session
	upSess   *upcast.Session
	stepSess *stepsim.Session

	// cluster is the distributed executor, built once at NewSolver when
	// Shards > 1 and injected into whichever session the algorithm uses.
	cluster *dist.Cluster
}

// ErrSolverInUse is returned by Solver.Solve/SolveSeeded when the session
// already has a trial in flight on another goroutine. It classifies as
// FailureError: the overlap is a usage bug, not evidence about the instance.
var ErrSolverInUse = errors.New("dhc: solver in concurrent use")

// NewSolver validates the configuration up front — unknown algorithm or
// engine, negative BroadcastBound or MaxRounds — and returns a reusable
// Solver. Validation here rather than per call means a Solver that
// constructed successfully cannot fail on configuration later.
func NewSolver(algo Algorithm, opts Options) (*Solver, error) {
	if opts.Engine == 0 {
		opts.Engine = EngineExact
	}
	if opts.Engine != EngineExact && opts.Engine != EngineStep {
		return nil, fmt.Errorf("dhc: unknown engine %d", opts.Engine)
	}
	if _, ok := algorithmNames[algo]; !ok {
		return nil, fmt.Errorf("dhc: unknown algorithm %d", algo)
	}
	if opts.BroadcastBound < 0 {
		// A negative bound would poison the derived round budgets and
		// surface as a round-limit failure, which wrapNoHC would then
		// misclassify as a genuine no-cycle outcome; reject it up front.
		return nil, fmt.Errorf("dhc: broadcast bound %d must be >= 0", opts.BroadcastBound)
	}
	if opts.MaxRounds < 0 {
		// Same reasoning as BroadcastBound: a negative budget is a usage
		// error, not a round-limit verdict.
		return nil, fmt.Errorf("dhc: max rounds %d must be >= 0", opts.MaxRounds)
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("dhc: shard count %d must be >= 0", opts.Shards)
	}
	s := &Solver{algo: algo, opts: opts}
	if opts.Shards > 1 {
		if opts.Engine != EngineExact {
			return nil, fmt.Errorf("dhc: shards require the exact engine")
		}
		if opts.Transport == dist.TransportProc && algo != AlgorithmDRA && algo != AlgorithmDHC2 {
			return nil, fmt.Errorf("dhc: algorithm %s is not portable to worker processes (transport %q supports dra and dhc2; use unix or tcp)",
				algo, opts.Transport)
		}
		cluster, err := dist.NewCluster(dist.Options{
			Shards:      opts.Shards,
			Transport:   opts.Transport,
			ShardBinary: opts.ShardBinary,
		})
		if err != nil {
			return nil, err
		}
		s.cluster = cluster
	} else if opts.Transport != "" {
		return nil, fmt.Errorf("dhc: transport %q requires shards > 1", opts.Transport)
	}
	return s, nil
}

// Algorithm returns the algorithm this solver runs.
func (s *Solver) Algorithm() Algorithm { return s.algo }

// Options returns the solver's (normalized) configuration.
func (s *Solver) Options() Options { return s.opts }

// Solve runs one trial on g with the configured Seed, honoring ctx (see
// SolveContext). Engine state is reused across calls; results never alias it.
func (s *Solver) Solve(ctx context.Context, g *Graph) (*Result, error) {
	return s.SolveSeeded(ctx, g, s.opts.Seed)
}

// SolveSeeded runs one trial on g with an explicit seed, the entry point for
// Monte Carlo harnesses that vary the seed per trial over one session.
func (s *Solver) SolveSeeded(ctx context.Context, g *Graph, seed uint64) (*Result, error) {
	if !s.inUse.CompareAndSwap(false, true) {
		return nil, ErrSolverInUse
	}
	defer s.inUse.Store(false)
	if s.opts.Engine == EngineStep {
		return s.solveStep(ctx, g, seed)
	}
	return s.solveExact(ctx, g, seed)
}

func (s *Solver) solveExact(ctx context.Context, g *Graph, seed uint64) (*Result, error) {
	opts := s.opts
	// The DHC algorithms own their executor sizing and round budget through
	// their core options (the single source of truth for those knobs); the
	// single-phase algorithms take both via congest.Options directly.
	netOpts := congest.Options{
		Workers:    opts.Workers,
		DenseSweep: opts.DenseSweep,
		MaxRounds:  opts.MaxRounds,
		Progress:   opts.Observer.progress(),
	}
	opts.Observer.phase("run")
	var res *Result
	switch s.algo {
	case AlgorithmDRA:
		if s.draSess == nil {
			s.draSess = dra.NewSession()
		}
		if s.cluster != nil {
			s.draSess.SetRunner(s.cluster)
		}
		r, err := s.draSess.Run(ctx, g, seed, dra.NodeOptions{BroadcastRounds: opts.BroadcastBound}, netOpts)
		if err != nil {
			return nil, wrapNoHC(err)
		}
		res = &Result{Cycle: r.Cycle, Rounds: r.Counters.Rounds, Steps: r.Steps, Counters: r.Counters}
	case AlgorithmDHC1:
		if s.dhc1Sess == nil {
			s.dhc1Sess = core.NewDHC1Session()
		}
		if s.cluster != nil {
			s.dhc1Sess.SetRunner(s.cluster)
		}
		r, err := s.dhc1Sess.Run(ctx, g, seed, core.DHC1Options{
			NumColors: opts.NumColors,
			B:         opts.BroadcastBound,
			MaxRounds: opts.MaxRounds,
			Workers:   opts.Workers,
		}, congest.Options{DenseSweep: opts.DenseSweep, Progress: opts.Observer.progress()})
		if err != nil {
			return nil, wrapNoHC(err)
		}
		res = fromCoreResult(r)
	case AlgorithmDHC2:
		if s.dhc2Sess == nil {
			s.dhc2Sess = core.NewDHC2Session()
		}
		if s.cluster != nil {
			s.dhc2Sess.SetRunner(s.cluster)
		}
		r, err := s.dhc2Sess.Run(ctx, g, seed, core.DHC2Options{
			Delta:     opts.Delta,
			NumColors: opts.NumColors,
			B:         opts.BroadcastBound,
			MaxRounds: opts.MaxRounds,
			Workers:   opts.Workers,
		}, congest.Options{DenseSweep: opts.DenseSweep, Progress: opts.Observer.progress()})
		if err != nil {
			return nil, wrapNoHC(err)
		}
		res = fromCoreResult(r)
	case AlgorithmUpcast:
		if s.upSess == nil {
			s.upSess = upcast.NewSession()
		}
		if s.cluster != nil {
			s.upSess.SetRunner(s.cluster)
		}
		r, err := s.upSess.Run(ctx, g, seed, upcast.Options{SamplesPerNode: opts.SamplesPerNode, B: opts.BroadcastBound}, netOpts)
		if err != nil {
			return nil, wrapNoHC(err)
		}
		res = &Result{Cycle: r.Cycle, Rounds: r.Counters.Rounds, Counters: r.Counters}
	default:
		return nil, fmt.Errorf("dhc: unknown algorithm %d", s.algo)
	}
	if s.cluster != nil {
		res.ShardStats = s.cluster.Stats()
	}
	return res, nil
}

func (s *Solver) solveStep(ctx context.Context, g *Graph, seed uint64) (*Result, error) {
	opts := s.opts
	attempts := opts.MaxAttempts
	if attempts == 0 {
		attempts = 6
	}
	simOpts := stepsim.Options{
		NumColors:   opts.NumColors,
		Delta:       opts.Delta,
		MaxAttempts: attempts,
		Workers:     opts.Workers,
	}
	if s.stepSess == nil {
		s.stepSess = stepsim.NewSession()
	}
	s.stepSess.Hooks = opts.Observer.hooks()
	var (
		hc   *Cycle
		cost stepsim.Cost
		err  error
	)
	switch s.algo {
	case AlgorithmDRA:
		hc, cost, err = s.stepSess.DRA(ctx, g, seed, attempts)
	case AlgorithmDHC1:
		hc, cost, err = s.stepSess.DHC1(ctx, g, seed, simOpts)
	case AlgorithmDHC2:
		hc, cost, err = s.stepSess.DHC2(ctx, g, seed, simOpts)
	case AlgorithmUpcast:
		hc, cost, err = s.stepSess.Upcast(ctx, g, seed, opts.SamplesPerNode)
	default:
		return nil, fmt.Errorf("dhc: unknown algorithm %d", s.algo)
	}
	if err != nil {
		return nil, wrapNoHC(err)
	}
	return &Result{
		Cycle:        hc,
		Rounds:       cost.Rounds,
		Steps:        cost.Steps,
		Phase1Rounds: cost.Phase1Rounds,
		Phase2Rounds: cost.Phase2Rounds,
	}, nil
}

func fromCoreResult(r *core.Result) *Result {
	return &Result{
		Cycle:        r.Cycle,
		Rounds:       r.Counters.Rounds,
		Steps:        r.Steps,
		Counters:     r.Counters,
		Phase1Rounds: r.Phase1Rounds,
		Phase2Rounds: r.Counters.Rounds - r.Phase1Rounds,
	}
}

// noCycleErrs lists every engine's genuine negative outcomes — the run
// executed but terminated without a Hamiltonian cycle (including exhausting
// its round budget, which on a valid input is the same verdict). Anything
// outside this list is a usage problem — a Delta outside (0, 1], an invalid
// partition count, a CONGEST bandwidth violation — and must NOT match
// errors.Is(err, ErrNoHamiltonianCycle): retrying a config error with a new
// seed would loop forever, and callers use the sentinel to decide exactly
// that.
var noCycleErrs = []error{
	stepsim.ErrFailed,
	core.ErrNoHC,
	dra.ErrFailed,
	upcast.ErrNoHC,
	congest.ErrRoundLimit,
}

// wrapNoHC tags genuine no-cycle failures with ErrNoHamiltonianCycle and
// passes every other error through unchanged. The original error stays on
// the unwrap chain (double %w) so Classify can still distinguish a
// round-limit cut-off from an ordinary negative.
func wrapNoHC(err error) error {
	for _, sentinel := range noCycleErrs {
		if errors.Is(err, sentinel) {
			return fmt.Errorf("%w: %w", ErrNoHamiltonianCycle, err)
		}
	}
	return err
}

// Verify checks that c is a Hamiltonian cycle of g.
func Verify(g *Graph, c *Cycle) error { return c.Verify(g) }
