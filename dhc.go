// Package dhc is a Go reproduction of "Fast and Efficient Distributed
// Computation of Hamiltonian Cycles in Random Graphs" (Chatterjee, Fathi,
// Pandurangan, Pham — ICDCS 2018): randomized distributed algorithms that
// find Hamiltonian cycles in G(n, p) random graphs in the synchronous
// CONGEST model.
//
// The package exposes two engines:
//
//   - the exact engine simulates every CONGEST round and message, enforcing
//     the O(log n)-bit per-edge bandwidth and metering rounds, messages,
//     bits, and per-node memory (EngineExact);
//   - the step engine executes the same algorithm logic at rotation-step
//     granularity and charges the paper's round costs, scaling to millions
//     of vertices (EngineStep).
//
// Quick start:
//
//	g := dhc.NewGNP(1024, dhc.ThresholdP(1024, 8, 0.5), 1)
//	res, err := dhc.Solve(g, dhc.AlgorithmDHC2, dhc.Options{Seed: 2, Delta: 0.5})
package dhc

import (
	"errors"
	"fmt"

	"dhc/internal/congest"
	"dhc/internal/core"
	"dhc/internal/cycle"
	"dhc/internal/dra"
	"dhc/internal/graph"
	"dhc/internal/metrics"
	"dhc/internal/rng"
	"dhc/internal/stepsim"
	"dhc/internal/upcast"
)

// Graph re-exports the immutable undirected graph type.
type Graph = graph.Graph

// NodeID re-exports the vertex identifier type.
type NodeID = graph.NodeID

// Cycle re-exports the Hamiltonian-cycle result type.
type Cycle = cycle.Cycle

// Counters re-exports the exact engine's cost counters.
type Counters = metrics.Counters

// NewGNP samples an Erdős–Rényi G(n, p) random graph deterministically from
// the seed.
func NewGNP(n int, p float64, seed uint64) *Graph {
	return graph.GNP(n, p, rng.New(seed))
}

// NewGNM samples a uniform n-vertex graph with exactly m edges.
func NewGNM(n, m int, seed uint64) *Graph {
	return graph.GNM(n, m, rng.New(seed))
}

// NewRandomRegular samples a d-regular random graph.
func NewRandomRegular(n, d int, seed uint64) (*Graph, error) {
	return graph.RandomRegular(n, d, rng.New(seed))
}

// ThresholdP returns p = c·ln(n)/n^delta, the paper's edge-probability
// parameterization (clamped to [0, 1]).
func ThresholdP(n int, c, delta float64) float64 {
	return graph.HCThresholdP(n, c, delta)
}

// Algorithm selects which of the paper's algorithms to run.
type Algorithm int

const (
	// AlgorithmDRA is the standalone Distributed Rotation Algorithm
	// (Algorithm 1), the building block of both DHC algorithms.
	AlgorithmDRA Algorithm = iota + 1
	// AlgorithmDHC1 is Algorithm 2: √n partitions plus a hypernode
	// rotation (for p ≈ c·ln n/√n).
	AlgorithmDHC1
	// AlgorithmDHC2 is Algorithm 3: n^{1-δ} partitions plus ⌈log K⌉
	// parallel pairwise merge levels (for p ≈ c·ln n/n^δ).
	AlgorithmDHC2
	// AlgorithmUpcast is the Section III centralized algorithm: sample
	// Θ(log n) edges per node, upcast to a root, solve locally, downcast.
	AlgorithmUpcast
)

var algorithmNames = map[Algorithm]string{
	AlgorithmDRA:    "dra",
	AlgorithmDHC1:   "dhc1",
	AlgorithmDHC2:   "dhc2",
	AlgorithmUpcast: "upcast",
}

// String returns the algorithm's short name.
func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ParseAlgorithm resolves a short name ("dra", "dhc1", "dhc2", "upcast").
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algorithmNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("dhc: unknown algorithm %q", s)
}

// Engine selects the simulation fidelity.
type Engine int

const (
	// EngineExact simulates every CONGEST round and message.
	EngineExact Engine = iota + 1
	// EngineStep executes at rotation-step granularity with charged round
	// costs; orders of magnitude faster for large n.
	EngineStep
)

// Options configures Solve.
type Options struct {
	// Seed makes the run deterministic. Same graph + same seed = same
	// cycle, metrics, everything.
	Seed uint64
	// Engine defaults to EngineExact.
	Engine Engine
	// Delta is DHC2's sparsity exponent (0 < δ ≤ 1); ignored elsewhere.
	Delta float64
	// NumColors overrides the partition count K for DHC1/DHC2.
	NumColors int
	// Workers bounds run parallelism in both phases of both engines: the
	// exact engine's parallel executor (which drives phase 1 and the
	// phase-2 merge levels alike) and the step engine's sharded phase 1
	// plus parallel phase-2 merge tree. Any value (0, 1, 4, ...) produces
	// byte-identical results; only wall-clock changes.
	Workers int
	// DenseSweep forces the exact engine's dense per-round sweep (every
	// node invoked every round) instead of the default event-driven
	// schedule that invokes only nodes with deliveries or due wake-ups and
	// skips globally quiet rounds. Both modes produce byte-identical
	// cycles, rounds, and message/bit counters; the dense sweep is retained
	// as the differential-testing oracle. Ignored by EngineStep.
	DenseSweep bool
	// BroadcastBound overrides B, the bound every broadcast/BFS settling
	// wait is charged at (rotation consistency waits, barrier release
	// delays). Zero keeps each algorithm's default: a tight bound computed
	// from an eccentricity BFS — global knowledge the CONGEST model does
	// not actually grant. Setting BroadcastBound to n selects the paper's
	// assumption-free trivial bound; its long quiet waits are exactly what
	// the event-driven engine skips. Exact engine only.
	BroadcastBound int64
	// MaxAttempts bounds restart retries (step engine and partition DRA).
	MaxAttempts int
	// SamplesPerNode is Upcast's per-node edge sample count (0 = 3·ln n).
	SamplesPerNode int
}

// Result is the outcome of a successful Solve.
type Result struct {
	// Cycle is the verified Hamiltonian cycle.
	Cycle *Cycle
	// Rounds is the CONGEST round count (measured or charged).
	Rounds int64
	// Steps is the rotation-step count across all phases.
	Steps int64
	// Counters holds full exact-engine metrics (nil for EngineStep).
	Counters *Counters
	// Phase1Rounds/Phase2Rounds split the total when the algorithm has two
	// phases (zero otherwise).
	Phase1Rounds int64
	Phase2Rounds int64
}

// ErrNoHamiltonianCycle is returned when the run terminates without a valid
// Hamiltonian cycle.
var ErrNoHamiltonianCycle = errors.New("dhc: no Hamiltonian cycle found")

// ErrRoundLimit re-exports the exact engine's round-budget sentinel: the run
// was cut off before terminating. It always arrives wrapped in
// ErrNoHamiltonianCycle (on a valid input the two are the same verdict), but
// callers building a failure taxonomy can match it specifically.
var ErrRoundLimit = congest.ErrRoundLimit

// FailureClass is the taxonomy of Solve outcomes, for Monte Carlo harnesses
// that aggregate many trials: a genuine negative (no cycle found) is evidence
// about the algorithm's success probability, a round-limit cut-off is
// evidence about the round budget, and a usage error is evidence about the
// caller — conflating them would corrupt all three statistics.
type FailureClass int

const (
	// FailureNone means the run produced a verified Hamiltonian cycle.
	FailureNone FailureClass = iota
	// FailureNoHC means the run executed to completion but found no
	// Hamiltonian cycle (restart budgets exhausted, no bridge found, ...).
	FailureNoHC
	// FailureRoundLimit means the exact engine hit its round budget before
	// the algorithm terminated.
	FailureRoundLimit
	// FailureError means the run never meaningfully executed: invalid
	// options, a CONGEST model violation, an infeasible generator request.
	// Retrying with a new seed cannot help.
	FailureError
)

var failureNames = map[FailureClass]string{
	FailureNone:       "ok",
	FailureNoHC:       "no_hc",
	FailureRoundLimit: "round_limit",
	FailureError:      "error",
}

// String returns the class's short name ("ok", "no_hc", "round_limit",
// "error"), the spelling used by the sweep report schema.
func (f FailureClass) String() string {
	if s, ok := failureNames[f]; ok {
		return s
	}
	return fmt.Sprintf("failure(%d)", int(f))
}

// Classify maps a Solve error to its failure class. A nil error is
// FailureNone; a round-limit cut-off classifies as FailureRoundLimit even
// though it is also wrapped in ErrNoHamiltonianCycle.
func Classify(err error) FailureClass {
	switch {
	case err == nil:
		return FailureNone
	case errors.Is(err, ErrRoundLimit):
		return FailureRoundLimit
	case errors.Is(err, ErrNoHamiltonianCycle):
		return FailureNoHC
	default:
		return FailureError
	}
}

// Trial is the single-shot Monte Carlo entry point: one Solve call plus its
// failure class. The Result is nil exactly when class != FailureNone.
func Trial(g *Graph, algo Algorithm, opts Options) (*Result, FailureClass, error) {
	res, err := Solve(g, algo, opts)
	return res, Classify(err), err
}

// Solve runs the selected algorithm on g and returns the verified cycle and
// cost metrics. All randomness derives from opts.Seed.
func Solve(g *Graph, algo Algorithm, opts Options) (*Result, error) {
	if opts.Engine == 0 {
		opts.Engine = EngineExact
	}
	if opts.BroadcastBound < 0 {
		// A negative bound would poison the derived round budgets and
		// surface as a round-limit failure, which wrapNoHC would then
		// misclassify as a genuine no-cycle outcome; reject it up front.
		return nil, fmt.Errorf("dhc: broadcast bound %d must be >= 0", opts.BroadcastBound)
	}
	switch opts.Engine {
	case EngineExact:
		return solveExact(g, algo, opts)
	case EngineStep:
		return solveStep(g, algo, opts)
	default:
		return nil, fmt.Errorf("dhc: unknown engine %d", opts.Engine)
	}
}

func solveExact(g *Graph, algo Algorithm, opts Options) (*Result, error) {
	// The DHC algorithms own their executor sizing through their core
	// options (the single source of truth for the knob); the single-phase
	// algorithms take it via congest.Options directly.
	netOpts := congest.Options{Workers: opts.Workers, DenseSweep: opts.DenseSweep}
	switch algo {
	case AlgorithmDRA:
		r, err := dra.Run(g, opts.Seed, dra.NodeOptions{BroadcastRounds: opts.BroadcastBound}, netOpts)
		if err != nil {
			return nil, wrapNoHC(err)
		}
		return &Result{Cycle: r.Cycle, Rounds: r.Counters.Rounds, Steps: r.Steps, Counters: r.Counters}, nil
	case AlgorithmDHC1:
		r, err := core.RunDHC1(g, opts.Seed, core.DHC1Options{
			NumColors: opts.NumColors,
			B:         opts.BroadcastBound,
			Workers:   opts.Workers,
		}, congest.Options{DenseSweep: opts.DenseSweep})
		if err != nil {
			return nil, wrapNoHC(err)
		}
		return fromCoreResult(r), nil
	case AlgorithmDHC2:
		r, err := core.RunDHC2(g, opts.Seed, core.DHC2Options{
			Delta:     opts.Delta,
			NumColors: opts.NumColors,
			B:         opts.BroadcastBound,
			Workers:   opts.Workers,
		}, congest.Options{DenseSweep: opts.DenseSweep})
		if err != nil {
			return nil, wrapNoHC(err)
		}
		return fromCoreResult(r), nil
	case AlgorithmUpcast:
		r, err := upcast.Run(g, opts.Seed, upcast.Options{SamplesPerNode: opts.SamplesPerNode, B: opts.BroadcastBound}, netOpts)
		if err != nil {
			return nil, wrapNoHC(err)
		}
		return &Result{Cycle: r.Cycle, Rounds: r.Counters.Rounds, Counters: r.Counters}, nil
	default:
		return nil, fmt.Errorf("dhc: unknown algorithm %d", algo)
	}
}

func solveStep(g *Graph, algo Algorithm, opts Options) (*Result, error) {
	attempts := opts.MaxAttempts
	if attempts == 0 {
		attempts = 6
	}
	simOpts := stepsim.Options{
		NumColors:   opts.NumColors,
		Delta:       opts.Delta,
		MaxAttempts: attempts,
		Workers:     opts.Workers,
	}
	var (
		hc   *Cycle
		cost stepsim.Cost
		err  error
	)
	switch algo {
	case AlgorithmDRA:
		hc, cost, err = stepsim.DRA(g, opts.Seed, attempts)
	case AlgorithmDHC1:
		hc, cost, err = stepsim.DHC1(g, opts.Seed, simOpts)
	case AlgorithmDHC2:
		hc, cost, err = stepsim.DHC2(g, opts.Seed, simOpts)
	case AlgorithmUpcast:
		hc, cost, err = stepsim.Upcast(g, opts.Seed, opts.SamplesPerNode)
	default:
		return nil, fmt.Errorf("dhc: unknown algorithm %d", algo)
	}
	if err != nil {
		return nil, wrapNoHC(err)
	}
	return &Result{
		Cycle:        hc,
		Rounds:       cost.Rounds,
		Steps:        cost.Steps,
		Phase1Rounds: cost.Phase1Rounds,
		Phase2Rounds: cost.Phase2Rounds,
	}, nil
}

func fromCoreResult(r *core.Result) *Result {
	return &Result{
		Cycle:        r.Cycle,
		Rounds:       r.Counters.Rounds,
		Counters:     r.Counters,
		Phase1Rounds: r.Phase1Rounds,
		Phase2Rounds: r.Counters.Rounds - r.Phase1Rounds,
	}
}

// noCycleErrs lists every engine's genuine negative outcomes — the run
// executed but terminated without a Hamiltonian cycle (including exhausting
// its round budget, which on a valid input is the same verdict). Anything
// outside this list is a usage problem — a Delta outside (0, 1], an invalid
// partition count, a CONGEST bandwidth violation — and must NOT match
// errors.Is(err, ErrNoHamiltonianCycle): retrying a config error with a new
// seed would loop forever, and callers use the sentinel to decide exactly
// that.
var noCycleErrs = []error{
	stepsim.ErrFailed,
	core.ErrNoHC,
	dra.ErrFailed,
	upcast.ErrNoHC,
	congest.ErrRoundLimit,
}

// wrapNoHC tags genuine no-cycle failures with ErrNoHamiltonianCycle and
// passes every other error through unchanged. The original error stays on
// the unwrap chain (double %w) so Classify can still distinguish a
// round-limit cut-off from an ordinary negative.
func wrapNoHC(err error) error {
	for _, sentinel := range noCycleErrs {
		if errors.Is(err, sentinel) {
			return fmt.Errorf("%w: %w", ErrNoHamiltonianCycle, err)
		}
	}
	return err
}

// Verify checks that c is a Hamiltonian cycle of g.
func Verify(g *Graph, c *Cycle) error { return c.Verify(g) }
