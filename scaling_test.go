package dhc

// Scaling-PR regression tests: golden step-engine counters pinned across the
// streaming-construction and packed-state refactors, a bytes-per-vertex
// allocation budget for the step solver, and the DHC_BIG-gated large-scale
// demonstrations (streaming construction peak at 10^6, the ten-million-vertex
// step run).

import (
	"runtime"
	"testing"
	"time"

	"dhc/internal/peakmem"
)

// TestGoldenCountersDRA pins the DRA step engine byte-for-byte: these exact
// counters were recorded before the streaming CSR, packed treap node, and
// flat rotation-machine refactors, so any RNG draw or rotation reordering
// shows up as a diff here, not as a silent distribution shift.
func TestGoldenCountersDRA(t *testing.T) {
	skipIfShort(t)
	n := 4096
	g := NewGNP(n, ThresholdP(n, 4, 0.5), 0xA11CE)
	if got, want := g.M(), 4359671; got != want {
		t.Fatalf("generator drift: m=%d, want %d", got, want)
	}
	res, err := Solve(g, AlgorithmDRA, Options{Seed: 0xBEEF, Engine: EngineStep})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 275949 || res.Steps != 42932 {
		t.Fatalf("solver drift: rounds=%d steps=%d, want rounds=275949 steps=42932",
			res.Rounds, res.Steps)
	}
}

// TestGoldenCountersDHC2 pins the sharded DHC2 step engine at n=10^5 with
// K=8 partitions and a 2-worker pool — the same configuration at every
// worker count by the determinism contract.
func TestGoldenCountersDHC2(t *testing.T) {
	skipIfShort(t)
	n := 100000
	g := NewGNP(n, ThresholdP(n, 32, 1.0), 0xA11CE)
	if got, want := int64(g.M()), int64(18425799); got != want {
		t.Fatalf("generator drift: m=%d, want %d", got, want)
	}
	res, err := Solve(g, AlgorithmDHC2, Options{
		Seed: 0xBEEF, Engine: EngineStep, NumColors: 8, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1346463 || res.Steps != 954948 ||
		res.Phase1Rounds != 1346379 || res.Phase2Rounds != 84 {
		t.Fatalf("solver drift: rounds=%d steps=%d p1=%d p2=%d, "+
			"want rounds=1346463 steps=954948 p1=1346379 p2=84",
			res.Rounds, res.Steps, res.Phase1Rounds, res.Phase2Rounds)
	}
}

// TestStepSolverBytesPerVertex is the packed-state allocation regression: a
// DHC2 step solve at n=10^5 must stay within an allocation budget per vertex
// (TotalAlloc delta, single-goroutine Workers=1 so the measurement is
// stable). The budget has ~1.5x headroom over the current value; unpacking
// the treap node back to 32 bytes, re-materializing an []Edge during
// construction, or reverting a bitset to []bool all blow through it.
func TestStepSolverBytesPerVertex(t *testing.T) {
	skipIfShort(t)
	n := 100000
	g := NewGNP(n, ThresholdP(n, 32, 1.0), 0xA11CE)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := Solve(g, AlgorithmDHC2, Options{
		Seed: 0xBEEF, Engine: EngineStep, NumColors: 8, Workers: 1,
	})
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycle == nil || res.Cycle.Len() != n {
		t.Fatal("missing Hamiltonian cycle")
	}
	perVertex := float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	t.Logf("step solve allocated %.0f bytes/vertex", perVertex)
	const budget = 1000
	if perVertex > budget {
		t.Fatalf("step solve allocated %.0f bytes/vertex, budget %d", perVertex, budget)
	}
}

// TestStreamingConstructionPeak demonstrates the streaming-construction
// memory contract at n=10^6: the heap high-water during G(n,p) generation
// stays within 2x the finished CSR footprint (the chunked scatter's staging
// is capped at half the arena, so the design point is ~1.5x).
func TestStreamingConstructionPeak(t *testing.T) {
	requireBig(t)
	n := 1_000_000
	p := ThresholdP(n, 32, 1.0)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := int64(ms.HeapAlloc)
	s := peakmem.Start(time.Millisecond)
	g := NewGNP(n, p, 1)
	peak := s.Stop() - base
	graphBytes := g.MemBytes()
	ratio := float64(peak) / float64(graphBytes)
	t.Logf("construction peak %.1f MB over baseline, graph %.1f MB (%.2fx)",
		float64(peak)/(1<<20), float64(graphBytes)/(1<<20), ratio)
	if ratio > 2.0 {
		t.Fatalf("construction peak %.2fx of final CSR, want <= 2x", ratio)
	}
}

// TestDHC2TenMillionVertexStepEngine is the PR's headline run: a 10^7-vertex
// G(n,p) at c=9 (m ≈ 7.3·10^8; 2m stays under the int32 half-edge ceiling
// the CSR can address), solved by the sharded DHC2 step engine with K=2.
// K matters at this scale: each partition keeps only its within-class edges,
// so its effective density constant is c·ln(n)/(K·ln(n/K)) — about 4.7 here,
// matching the proven 10^6 c=32/K=8 configuration, whereas K=8 would leave
// the partitions below the threshold the phase-1 DRA needs (c=12/K=8 fails
// with "partition exhausted attempts", and the ceiling caps c at 13).
func TestDHC2TenMillionVertexStepEngine(t *testing.T) {
	requireBig(t)
	n := 10_000_000
	p := ThresholdP(n, 9, 1.0)
	start := time.Now()
	g := NewGNP(n, p, 1)
	genTime := time.Since(start)
	t.Logf("generated G(n=%d, p=%.8f): m=%d (%.1f GB CSR) in %v",
		n, p, g.M(), float64(g.MemBytes())/(1<<30), genTime)

	start = time.Now()
	res, err := Solve(g, AlgorithmDHC2, Options{
		Seed:      2,
		Engine:    EngineStep,
		NumColors: 2,
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	solveTime := time.Since(start)
	if err := Verify(g, res.Cycle); err != nil {
		t.Fatal(err)
	}
	if res.Cycle.Len() != n {
		t.Fatalf("cycle length %d, want %d", res.Cycle.Len(), n)
	}
	t.Logf("DHC2 step engine (K=2, workers=2): rounds=%d steps=%d phase1=%d phase2=%d in %v",
		res.Rounds, res.Steps, res.Phase1Rounds, res.Phase2Rounds, solveTime)
}
