package dhc_test

// Benchmark targets, one per experiment of DESIGN.md's per-experiment index.
// Each bench regenerates (a slice of) the corresponding table/series; run
// all with `go test -bench=. -benchmem` and full sweeps with cmd/hcbench.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"dhc"
	"dhc/internal/bench"
	"dhc/internal/congest"
	"dhc/internal/core"
	"dhc/internal/graph"
	"dhc/internal/rng"
	"dhc/internal/rotation"
	"dhc/internal/stepsim"
)

// newThinnedMachine builds a rotation machine with the Theorem 2 analysis
// coupling enabled (each unused-list entry kept with probability q/p).
func newThinnedMachine(g *graph.Graph, p float64, seed uint64) *rotation.Machine {
	src := rng.New(seed)
	return rotation.New(g, graph.NodeID(src.Intn(g.N())), src, rotation.Config{ThinningP: p})
}

// BenchmarkE1_DRASteps — Theorem 2: DRA steps vs the 7·n·ln n budget.
func BenchmarkE1_DRASteps(b *testing.B) {
	for _, n := range []int{512, 2048, 8192} {
		p := graph.HCThresholdP(n, 16, 1.0)
		g := graph.GNP(n, p, rng.New(uint64(n)))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				_, cost, err := stepsim.DRA(g, uint64(i), 3)
				if err != nil {
					b.Fatal(err)
				}
				steps = cost.Steps
			}
			b.ReportMetric(float64(steps)/(float64(n)*math.Log(float64(n))), "steps/nlnn")
		})
	}
}

// BenchmarkE2_DHC1Rounds — Theorem 1: DHC1 rounds ~ Õ(√n), with phase split
// (figure F1's two-phase structure).
func BenchmarkE2_DHC1Rounds(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		p := graph.HCThresholdP(n, 16, 0.5)
		g := graph.GNP(n, p, rng.New(uint64(n)*3))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var cost stepsim.Cost
			for i := 0; i < b.N; i++ {
				var err error
				_, cost, err = stepsim.DHC1(g, uint64(i), stepsim.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cost.Rounds)/math.Sqrt(float64(n)), "rounds/sqrtn")
			b.ReportMetric(float64(cost.Phase1Rounds), "phase1-rounds")
			b.ReportMetric(float64(cost.Phase2Rounds), "phase2-rounds")
		})
	}
}

// BenchmarkE3_Partition — Lemma 4/7: color-class size concentration.
func BenchmarkE3_Partition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.E3(bench.Config{Seed: uint64(i)})
		if len(t.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkE4_DHC2Rounds — Theorem 10: DHC2 rounds ~ Õ(n^δ); denser ⇒ faster.
func BenchmarkE4_DHC2Rounds(b *testing.B) {
	n := 4096
	for _, delta := range []float64{0.3, 0.5, 0.7} {
		p := graph.HCThresholdP(n, 16, delta)
		if p >= 1 {
			continue
		}
		g := graph.GNP(n, p, rng.New(uint64(n)+uint64(delta*100)))
		b.Run(fmt.Sprintf("delta=%.1f", delta), func(b *testing.B) {
			var cost stepsim.Cost
			for i := 0; i < b.N; i++ {
				var err error
				_, cost, err = stepsim.DHC2(g, uint64(i), stepsim.Options{Delta: delta})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cost.Rounds)/math.Pow(float64(n), delta), "rounds/n^delta")
		})
	}
}

// BenchmarkE5_MergeBridges — Lemma 8/9 and figure F3: all ⌈log K⌉ merge
// levels succeed; the exact engine exercises the real bridge protocol.
func BenchmarkE5_MergeBridges(b *testing.B) {
	g := graph.GNP(240, 0.75, rng.New(99))
	for i := 0; i < b.N; i++ {
		res, err := core.RunDHC2(g, uint64(i), core.DHC2Options{NumColors: 8, B: 10}, congest.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.MergeLevels != 3 {
			b.Fatalf("merge levels %d, want 3", res.MergeLevels)
		}
	}
}

// BenchmarkE6_Upcast — Theorems 17/19, Corollary 20: Upcast rounds vs
// log(n)/p at δ ∈ {1/2, 2/3}.
func BenchmarkE6_Upcast(b *testing.B) {
	n := 4096
	for _, delta := range []float64{0.5, 2.0 / 3.0} {
		p := graph.HCThresholdP(n, 3, delta)
		g := graph.GNP(n, p, rng.New(uint64(n)*7+uint64(delta*100)))
		b.Run(fmt.Sprintf("delta=%.2f", delta), func(b *testing.B) {
			var cost stepsim.Cost
			for i := 0; i < b.N; i++ {
				var err error
				_, cost, err = stepsim.Upcast(g, uint64(i), 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cost.Rounds)/(math.Log(float64(n))/p), "rounds/(lnn÷p)")
		})
	}
}

// BenchmarkE7_MemoryBalance — fully-distributed claim: DHC2's per-node
// memory and work stay balanced while Upcast concentrates Ω(n) at the root.
func BenchmarkE7_MemoryBalance(b *testing.B) {
	g := graph.GNP(240, 0.75, rng.New(17))
	b.Run("dhc2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := dhc.Solve(g, dhc.AlgorithmDHC2, dhc.Options{Seed: uint64(i), NumColors: 6})
			if err != nil {
				b.Fatal(err)
			}
			mem := res.Counters.MemoryDistribution()
			b.ReportMetric(float64(mem.Max)/(mem.Mean+1), "mem-balance")
		}
	})
	b.Run("upcast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := dhc.Solve(g, dhc.AlgorithmUpcast, dhc.Options{Seed: uint64(i)})
			if err != nil {
				b.Fatal(err)
			}
			mem := res.Counters.MemoryDistribution()
			b.ReportMetric(float64(mem.Max)/(mem.Mean+1), "mem-balance")
		}
	})
}

// BenchmarkE8_Baselines — comparison of all algorithms (incl. Levy-style and
// the trivial O(m) bound) on identical graphs.
func BenchmarkE8_Baselines(b *testing.B) {
	n := 2048
	p := graph.HCThresholdP(n, 16, 0.5)
	g := graph.GNP(n, p, rng.New(uint64(n)*11))
	run := map[string]func(seed uint64) (stepsim.Cost, error){
		"dhc1": func(s uint64) (stepsim.Cost, error) {
			_, c, err := stepsim.DHC1(g, s, stepsim.Options{})
			return c, err
		},
		"dhc2": func(s uint64) (stepsim.Cost, error) {
			_, c, err := stepsim.DHC2(g, s, stepsim.Options{Delta: 0.5})
			return c, err
		},
		"upcast": func(s uint64) (stepsim.Cost, error) {
			_, c, err := stepsim.Upcast(g, s, 0)
			return c, err
		},
		"levy": func(s uint64) (stepsim.Cost, error) {
			_, c, err := stepsim.Levy(g, s)
			return c, err
		},
		"trivial": func(s uint64) (stepsim.Cost, error) {
			_, c, err := stepsim.Trivial(g, s)
			return c, err
		},
	}
	for _, name := range []string{"dhc1", "dhc2", "upcast", "levy", "trivial"} {
		b.Run(name, func(b *testing.B) {
			var cost stepsim.Cost
			for i := 0; i < b.N; i++ {
				var err error
				cost, err = run[name](uint64(i))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cost.Rounds), "rounds")
		})
	}
}

// BenchmarkD1_Diameter — Chung–Lu diameter fact used by Theorems 1/10.
func BenchmarkD1_Diameter(b *testing.B) {
	n := 8192
	p := graph.HCThresholdP(n, 4, 1.0)
	g := graph.GNP(n, p, rng.New(uint64(n)*13))
	var d int
	for i := 0; i < b.N; i++ {
		d = g.DiameterSampled(3, rng.New(uint64(i)))
	}
	b.ReportMetric(float64(d), "diameter")
	b.ReportMetric(math.Log(float64(n))/math.Log(math.Log(float64(n))), "chung-lu-bound")
}

// BenchmarkA1_EngineAgreement — ablation: exact CONGEST engine vs step
// engine round counts on identical small instances.
func BenchmarkA1_EngineAgreement(b *testing.B) {
	g := graph.GNP(200, 0.8, rng.New(23))
	var exact, step int64
	for i := 0; i < b.N; i++ {
		re, err := dhc.Solve(g, dhc.AlgorithmDHC2, dhc.Options{Seed: uint64(i), NumColors: 8})
		if err != nil {
			b.Fatal(err)
		}
		rs, err := dhc.Solve(g, dhc.AlgorithmDHC2, dhc.Options{Seed: uint64(i), NumColors: 8, Engine: dhc.EngineStep})
		if err != nil {
			b.Fatal(err)
		}
		exact, step = re.Rounds, rs.Rounds
	}
	b.ReportMetric(float64(exact), "exact-rounds")
	b.ReportMetric(float64(step), "step-rounds")
}

// BenchmarkA2_ParallelExecutor — ablation: sequential vs goroutine-parallel
// exact-engine executors.
func BenchmarkA2_ParallelExecutor(b *testing.B) {
	g := graph.GNP(300, 0.6, rng.New(29))
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dhc.Solve(g, dhc.AlgorithmDHC2,
					dhc.Options{Seed: 5, NumColors: 6, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA3_EdgeThinning — ablation: the Theorem 2 analysis coupling
// (q-thinned unused lists) vs the practical full lists.
func BenchmarkA3_EdgeThinning(b *testing.B) {
	n := 2048
	p := graph.HCThresholdP(n, 24, 1.0)
	g := graph.GNP(n, p, rng.New(uint64(n)*17))
	b.Run("full", func(b *testing.B) {
		var steps int64
		for i := 0; i < b.N; i++ {
			_, cost, err := stepsim.DRA(g, uint64(i), 3)
			if err != nil {
				b.Fatal(err)
			}
			steps = cost.Steps
		}
		b.ReportMetric(float64(steps), "steps")
	})
	b.Run("thinned", func(b *testing.B) {
		// Thinning is exercised through the rotation machine directly.
		var steps int64
		for i := 0; i < b.N; i++ {
			m := newThinnedMachine(g, p, uint64(i))
			_, st, err := m.Run()
			if err != nil {
				b.Fatal(err)
			}
			steps = st.Steps
		}
		b.ReportMetric(float64(steps), "steps")
	})
}

// BenchmarkA4_StitchVsMerge — ablation: DHC1's hypernode stitching vs
// DHC2's tree merging at the same K = √n.
func BenchmarkA4_StitchVsMerge(b *testing.B) {
	n := 2048
	p := graph.HCThresholdP(n, 16, 0.5)
	g := graph.GNP(n, p, rng.New(uint64(n)*19))
	k := int(math.Round(math.Sqrt(float64(n))))
	b.Run("dhc1-stitch", func(b *testing.B) {
		var cost stepsim.Cost
		for i := 0; i < b.N; i++ {
			var err error
			_, cost, err = stepsim.DHC1(g, uint64(i), stepsim.Options{NumColors: k})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(cost.Phase2Rounds), "phase2-rounds")
	})
	b.Run("dhc2-merge", func(b *testing.B) {
		var cost stepsim.Cost
		for i := 0; i < b.N; i++ {
			var err error
			_, cost, err = stepsim.DHC2(g, uint64(i), stepsim.Options{NumColors: k})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(cost.Phase2Rounds), "phase2-rounds")
	})
}

// BenchmarkGraphRepresentation — the CSR tentpole claim: constructing
// G(n, c·ln n/n) at n = 10^5 through the two-pass CSR path vs a faithful
// replica of the seed's representation (map[Edge]struct{} dedup feeding
// per-vertex []NodeID lists). Run with -benchmem; the CSR path must allocate
// at least 2x fewer bytes (measured: 74.5 MB in 4 allocations vs 533 MB in
// 365k allocations — 7.2x less memory — and 0.62 s vs 7.9 s wall-clock).
func BenchmarkGraphRepresentation(b *testing.B) {
	n := 100_000
	p := graph.HCThresholdP(n, 16, 1.0)
	b.Run("csr-two-pass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g := graph.GNP(n, p, rng.New(42))
			if g.M() == 0 {
				b.Fatal("empty graph")
			}
		}
	})
	b.Run("seed-map-adjacency", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Identical Batagelj-Brandes edge stream, stored the way the
			// seed's Builder did it.
			src := rng.New(42)
			edges := make(map[graph.Edge]struct{})
			v, w := 1, -1
			for v < n {
				w += 1 + src.Geometric(p)
				for w >= v && v < n {
					w -= v
					v++
				}
				if v < n {
					edges[graph.Edge{U: graph.NodeID(w), V: graph.NodeID(v)}] = struct{}{}
				}
			}
			degs := make([]int, n)
			for e := range edges {
				degs[e.U]++
				degs[e.V]++
			}
			adj := make([][]graph.NodeID, n)
			for i, d := range degs {
				adj[i] = make([]graph.NodeID, 0, d)
			}
			for e := range edges {
				adj[e.U] = append(adj[e.U], e.V)
				adj[e.V] = append(adj[e.V], e.U)
			}
			for i := range adj {
				sort.Slice(adj[i], func(a, c int) bool { return adj[i][a] < adj[i][c] })
			}
			if len(edges) == 0 {
				b.Fatal("empty graph")
			}
		}
	})
}

// BenchmarkStepEngineWorkers — the sharding tentpole: DHC2 phase 1 across
// the worker pool. On multi-core hardware workers=4 cuts wall-clock; on any
// hardware the results are byte-identical (see determinism_test.go).
func BenchmarkStepEngineWorkers(b *testing.B) {
	n := 20000
	pr := graph.HCThresholdP(n, 16, 1.0)
	g := graph.GNP(n, pr, rng.New(77))
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := stepsim.DHC2(g, uint64(i), stepsim.Options{NumColors: 8, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
