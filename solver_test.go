package dhc

// Tests for the Solver session lifecycle introduced with the run-lifecycle
// layer: engine-state reuse across trials (allocation regression + the
// byte-identical contract), context cancellation through both engines, and
// the FailureCanceled taxonomy class. The load-bearing properties:
//
//  1. A Solver trial is byte-identical to a fresh Solve with the same
//     (graph, seed), regardless of session history — reuse must be
//     invisible in results.
//  2. Repeated Solver trials allocate a small fraction (>= 5x less) of what
//     fresh Solve calls do on same-shape instances.
//  3. Cancellation surfaces as context.Canceled / DeadlineExceeded
//     (FailureCanceled), leaks no goroutines, and never corrupts the
//     session: an uncancelled rerun of the same seed on the same Solver is
//     byte-identical to a never-cancelled run.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// assertSameResult compares every deterministic field of two results.
func assertSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	wantOrder, gotOrder := want.Cycle.Order(), got.Cycle.Order()
	if len(wantOrder) != len(gotOrder) {
		t.Fatalf("%s: cycle length %d != %d", label, len(gotOrder), len(wantOrder))
	}
	for i := range wantOrder {
		if wantOrder[i] != gotOrder[i] {
			t.Fatalf("%s: cycle diverges at position %d", label, i)
		}
	}
	if want.Rounds != got.Rounds || want.Steps != got.Steps ||
		want.Phase1Rounds != got.Phase1Rounds || want.Phase2Rounds != got.Phase2Rounds {
		t.Fatalf("%s: costs differ: want rounds=%d steps=%d p1=%d p2=%d, got rounds=%d steps=%d p1=%d p2=%d",
			label, want.Rounds, want.Steps, want.Phase1Rounds, want.Phase2Rounds,
			got.Rounds, got.Steps, got.Phase1Rounds, got.Phase2Rounds)
	}
	if (want.Counters == nil) != (got.Counters == nil) {
		t.Fatalf("%s: counters presence differs", label)
	}
	if want.Counters != nil {
		if want.Counters.Messages != got.Counters.Messages || want.Counters.Bits != got.Counters.Bits ||
			want.Counters.Rounds != got.Counters.Rounds || want.Counters.Invocations != got.Counters.Invocations {
			t.Fatalf("%s: counters differ: want %v, got %v", label, want.Counters, got.Counters)
		}
	}
}

// TestSolverReuseMatchesFreshSolve pins property 1 over both engines and
// several algorithms: interleaved trials with distinct seeds (and a failing
// sub-threshold trial in the middle) through one Solver must equal fresh
// Solve calls byte for byte.
func TestSolverReuseMatchesFreshSolve(t *testing.T) {
	g := NewGNP(96, 0.6, 11)
	sparse := NewGNP(96, 0.02, 12)
	for _, engine := range []Engine{EngineExact, EngineStep} {
		for _, algo := range []Algorithm{AlgorithmDRA, AlgorithmDHC1, AlgorithmDHC2, AlgorithmUpcast} {
			t.Run(fmt.Sprintf("%s/engine=%d", algo, engine), func(t *testing.T) {
				opts := Options{Engine: engine, NumColors: 6}
				solver, err := NewSolver(algo, opts)
				if err != nil {
					t.Fatal(err)
				}
				for trial, seed := range []uint64{3, 7, 3, 19} {
					if trial == 2 {
						// A genuine failure between trials must not disturb
						// the session.
						if _, err := solver.SolveSeeded(context.Background(), sparse, 5); err == nil {
							t.Fatal("sub-threshold instance unexpectedly solved")
						}
					}
					o := opts
					o.Seed = seed
					want, err := Solve(g, algo, o)
					if err != nil {
						t.Fatalf("fresh solve (seed %d): %v", seed, err)
					}
					got, err := solver.SolveSeeded(context.Background(), g, seed)
					if err != nil {
						t.Fatalf("session solve (seed %d): %v", seed, err)
					}
					assertSameResult(t, fmt.Sprintf("trial %d seed %d", trial, seed), want, got)
				}
			})
		}
	}
}

// TestSolverReuseAllocBytes is the allocation regression test of the
// acceptance criteria: repeated Solver trials on same-shape instances must
// allocate at least 5x fewer bytes per trial than fresh Solve calls. It
// measures heap bytes directly (TotalAlloc deltas over a fixed trial count,
// single-goroutine, so the measurement is stable) on the exact engine, whose
// per-run arena the session layer recycles.
func TestSolverReuseAllocBytes(t *testing.T) {
	g := NewGNP(128, 0.5, 21)
	opts := Options{Engine: EngineExact}
	const trials = 6
	seeds := []uint64{1, 2, 3, 4, 5, 6}

	measure := func(f func()) uint64 {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		f()
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	freshBytes := measure(func() {
		for _, seed := range seeds {
			o := opts
			o.Seed = seed
			if _, err := Solve(g, AlgorithmDRA, o); err != nil {
				t.Fatal(err)
			}
		}
	})
	solver, err := NewSolver(AlgorithmDRA, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the session: the first trial builds the arena it then reuses.
	if _, err := solver.SolveSeeded(context.Background(), g, seeds[0]); err != nil {
		t.Fatal(err)
	}
	reuseBytes := measure(func() {
		for _, seed := range seeds {
			if _, err := solver.SolveSeeded(context.Background(), g, seed); err != nil {
				t.Fatal(err)
			}
		}
	})
	ratio := float64(freshBytes) / float64(reuseBytes)
	t.Logf("fresh: %d B/trial, reused: %d B/trial, ratio %.1fx",
		freshBytes/trials, reuseBytes/trials, ratio)
	if ratio < 5 {
		t.Fatalf("solver reuse saves only %.1fx bytes/trial (fresh %d, reused %d); want >= 5x",
			ratio, freshBytes/trials, reuseBytes/trials)
	}
}

// waitNoGoroutineLeak asserts the goroutine count settles back to the
// baseline (worker pools are joined, nothing keeps running after a cancelled
// solve).
func waitNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSolverCancelExactEngine cancels exact-engine runs at a random round
// (via the Observer's amortized round checkpoint) for Workers 1 and 4,
// checks the error and class, the goroutine baseline, and that an
// uncancelled rerun of the same seed on the same Solver is byte-identical to
// a never-cancelled fresh run.
func TestSolverCancelExactEngine(t *testing.T) {
	g := NewGNP(96, 0.8, 31)
	rnd := rand.New(rand.NewSource(2018))
	for _, algo := range []Algorithm{AlgorithmDRA, AlgorithmDHC1, AlgorithmDHC2} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", algo, workers), func(t *testing.T) {
				baseline := runtime.NumGoroutine()
				opts := Options{Engine: EngineExact, NumColors: 4, Workers: workers, Seed: 9}
				want, err := Solve(g, algo, opts)
				if err != nil {
					t.Fatal(err)
				}
				// Pick a random cancellation round in the run's first half;
				// the checkpoint fires every few dozen rounds, so any
				// threshold lands mid-run.
				cancelAt := 1 + int64(rnd.Intn(int(want.Rounds/2)+1))
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				cancelOpts := opts
				cancelOpts.Observer = &Observer{OnRounds: func(rounds int64) {
					if rounds >= cancelAt {
						cancel()
					}
				}}
				solver, err := NewSolver(algo, cancelOpts)
				if err != nil {
					t.Fatal(err)
				}
				_, err = solver.Solve(ctx, g)
				if err == nil {
					t.Fatalf("run at cancel round %d (of %d) was not cancelled", cancelAt, want.Rounds)
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled run returned %v, want context.Canceled on the chain", err)
				}
				if class := Classify(err); class != FailureCanceled {
					t.Fatalf("cancelled run classified %v, want %v", class, FailureCanceled)
				}
				waitNoGoroutineLeak(t, baseline)
				// The same session, uncancelled, must reproduce the fresh
				// run byte for byte.
				got, err := solver.Solve(context.Background(), g)
				if err != nil {
					t.Fatalf("rerun after cancellation: %v", err)
				}
				assertSameResult(t, "rerun after cancellation", want, got)
			})
		}
	}
}

// TestSolverCancelStepEngine cancels step-engine runs mid-run — at the
// phase-2 transition, reported synchronously by the Observer — for Workers 1
// and 4, with the same reuse-after-cancel and leak assertions.
func TestSolverCancelStepEngine(t *testing.T) {
	g := NewGNP(256, 0.8, 41)
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			opts := Options{Engine: EngineStep, NumColors: 8, Workers: workers, Seed: 9}
			want, err := Solve(g, AlgorithmDHC2, opts)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cancelOpts := opts
			cancelOpts.Observer = &Observer{OnPhase: func(phase string) {
				if phase == "phase2" {
					cancel()
				}
			}}
			solver, err := NewSolver(AlgorithmDHC2, cancelOpts)
			if err != nil {
				t.Fatal(err)
			}
			_, err = solver.Solve(ctx, g)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled run returned %v, want context.Canceled on the chain", err)
			}
			if class := Classify(err); class != FailureCanceled {
				t.Fatalf("cancelled run classified %v, want %v", class, FailureCanceled)
			}
			waitNoGoroutineLeak(t, baseline)
			got, err := solver.Solve(context.Background(), g)
			if err != nil {
				t.Fatalf("rerun after cancellation: %v", err)
			}
			assertSameResult(t, "rerun after cancellation", want, got)
		})
	}
}

// TestSolveContextDeadline drives the DeadlineExceeded path of both engines:
// an already-expired deadline must cut the run off before it does any work
// and classify as FailureCanceled.
func TestSolveContextDeadline(t *testing.T) {
	g := NewGNP(64, 0.5, 51)
	for _, engine := range []Engine{EngineExact, EngineStep} {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		_, err := SolveContext(ctx, g, AlgorithmDRA, Options{Seed: 1, Engine: engine})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("engine %d: got %v, want context.DeadlineExceeded on the chain", engine, err)
		}
		if class := Classify(err); class != FailureCanceled {
			t.Fatalf("engine %d: classified %v, want %v", engine, class, FailureCanceled)
		}
		if errors.Is(err, ErrNoHamiltonianCycle) {
			t.Fatalf("engine %d: cancellation wrongly tagged as a no-cycle verdict", engine)
		}
	}
}

// TestObserverCallbacks pins the Observer contract: the step engine reports
// its real phases in order, and the exact engine reports its run phase plus
// round progress that only ever increases.
func TestObserverCallbacks(t *testing.T) {
	g := NewGNP(96, 0.6, 61)

	var phases []string
	_, err := Solve(g, AlgorithmDHC2, Options{
		Seed: 1, Engine: EngineStep, NumColors: 6,
		Observer: &Observer{OnPhase: func(p string) { phases = append(phases, p) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 || phases[0] != "phase1" || phases[1] != "phase2" {
		t.Fatalf("step engine phases = %v, want [phase1 phase2]", phases)
	}

	var runPhases []string
	var beats atomic.Int64
	var last int64
	res, err := Solve(g, AlgorithmDHC2, Options{
		Seed: 1, Engine: EngineExact, NumColors: 6,
		Observer: &Observer{
			OnPhase: func(p string) { runPhases = append(runPhases, p) },
			OnRounds: func(rounds int64) {
				beats.Add(1)
				if rounds < last {
					t.Errorf("round progress went backwards: %d after %d", rounds, last)
				}
				last = rounds
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runPhases) != 1 || runPhases[0] != "run" {
		t.Fatalf("exact engine phases = %v, want [run]", runPhases)
	}
	if beats.Load() == 0 {
		t.Fatal("exact engine fired no round-progress callbacks")
	}
	if last > res.Rounds {
		t.Fatalf("last progress %d exceeds final rounds %d", last, res.Rounds)
	}
	// Observed and unobserved runs must be byte-identical.
	plain, err := Solve(g, AlgorithmDHC2, Options{Seed: 1, Engine: EngineExact, NumColors: 6})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "observer vs plain", plain, res)
}

// TestMaxRoundsOption pins the new Options.MaxRounds: negatives are rejected
// up front (FailureError, like BroadcastBound), and a tiny budget turns
// every exact-engine algorithm's run into a round-limit failure — through
// the congest layer for the single-phase algorithms and through both DHC
// core drivers.
func TestMaxRoundsOption(t *testing.T) {
	g := NewGNP(64, 0.5, 71)
	if _, err := Solve(g, AlgorithmDRA, Options{Seed: 1, MaxRounds: -1}); err == nil {
		t.Fatal("negative MaxRounds accepted")
	} else if Classify(err) != FailureError {
		t.Fatalf("negative MaxRounds classified %v, want %v", Classify(err), FailureError)
	}
	if _, err := NewSolver(AlgorithmDRA, Options{MaxRounds: -1}); err == nil {
		t.Fatal("NewSolver accepted negative MaxRounds")
	}
	for _, algo := range []Algorithm{AlgorithmDRA, AlgorithmDHC1, AlgorithmDHC2, AlgorithmUpcast} {
		_, class, err := Trial(g, algo, Options{Seed: 1, NumColors: 4, MaxRounds: 3})
		if err == nil {
			t.Fatalf("%s: 3-round budget unexpectedly sufficed", algo)
		}
		if class != FailureRoundLimit {
			t.Fatalf("%s: tiny budget classified %v (%v), want %v", algo, class, err, FailureRoundLimit)
		}
	}
	// A generous explicit budget must not change the result.
	want, err := Solve(g, AlgorithmDHC2, Options{Seed: 1, NumColors: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(g, AlgorithmDHC2, Options{Seed: 1, NumColors: 4, MaxRounds: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "explicit generous budget", want, got)
}

// TestParseErrorsListValidNames pins the deterministic (sorted) vocabulary
// listings of the parse errors, per the CLI-stability satellite.
func TestParseErrorsListValidNames(t *testing.T) {
	_, err := ParseAlgorithm("nope")
	if err == nil {
		t.Fatal("bad algorithm name accepted")
	}
	want := `dhc: unknown algorithm "nope" (valid: dhc1, dhc2, dra, upcast)`
	if err.Error() != want {
		t.Fatalf("ParseAlgorithm error = %q, want %q", err.Error(), want)
	}
	names := AlgorithmNames()
	wantNames := []string{"dhc1", "dhc2", "dra", "upcast"}
	if len(names) != len(wantNames) {
		t.Fatalf("AlgorithmNames() = %v", names)
	}
	for i := range names {
		if names[i] != wantNames[i] {
			t.Fatalf("AlgorithmNames() = %v, want %v", names, wantNames)
		}
	}
}

// TestFailureCanceledString pins the taxonomy spelling used by the report
// schema.
func TestFailureCanceledString(t *testing.T) {
	if got := FailureCanceled.String(); got != "canceled" {
		t.Fatalf("FailureCanceled.String() = %q, want %q", got, "canceled")
	}
	if got := Classify(context.Canceled); got != FailureCanceled {
		t.Fatalf("Classify(context.Canceled) = %v, want %v", got, FailureCanceled)
	}
	if got := Classify(context.DeadlineExceeded); got != FailureCanceled {
		t.Fatalf("Classify(context.DeadlineExceeded) = %v, want %v", got, FailureCanceled)
	}
}

// TestSolverConcurrentUseGuard pins the session concurrency contract: a Solve
// call that overlaps an in-flight trial on the same Solver must fail fast
// with ErrSolverInUse (classified FailureError — a usage bug, not instance
// evidence) instead of racing on the shared arena, and the session must stay
// fully usable afterwards. The overlap is forced deterministically: the first
// trial parks inside its Observer.OnPhase callback (which runs on the solving
// goroutine with the guard held) while the second call is issued.
func TestSolverConcurrentUseGuard(t *testing.T) {
	g := NewGNP(128, ThresholdP(128, 3, 0.5), 1)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool
	solver, err := NewSolver(AlgorithmDRA, Options{
		Engine: EngineStep,
		Observer: &Observer{OnPhase: func(string) {
			if once.CompareAndSwap(false, true) {
				close(entered)
				<-release
			}
		}},
	})
	if err != nil {
		t.Fatalf("NewSolver: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := solver.SolveSeeded(context.Background(), g, 7)
		done <- err
	}()
	<-entered

	if _, err := solver.SolveSeeded(context.Background(), g, 8); !errors.Is(err, ErrSolverInUse) {
		t.Fatalf("overlapping Solve error = %v, want ErrSolverInUse", err)
	}
	if got := Classify(ErrSolverInUse); got != FailureError {
		t.Fatalf("Classify(ErrSolverInUse) = %v, want FailureError", got)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first trial failed: %v", err)
	}

	// The guard must release on every exit path: the session still solves,
	// byte-identical to a fresh run.
	res, err := solver.SolveSeeded(context.Background(), g, 8)
	if err != nil {
		t.Fatalf("post-overlap trial failed: %v", err)
	}
	fresh, err := Solve(g, AlgorithmDRA, Options{Engine: EngineStep, Seed: 8})
	if err != nil {
		t.Fatalf("fresh solve failed: %v", err)
	}
	assertSameResult(t, "post-overlap reuse", fresh, res)
}
