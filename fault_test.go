package dhc

// Fault-injection conformance: the end-to-end verification story promoted
// from examples/faulty into a pinned regression. The CONGEST simulator's
// fault hook perturbs or drops protocol messages mid-flight; the safety
// property under test is that a perturbed run NEVER silently returns an
// unverified cycle — it either errors, or whatever cycle it does return
// still passes independent verification. The property must hold under both
// exact-engine scheduling modes (event-driven and the dense-sweep oracle):
// fault handling may not depend on the scheduler. The step engine is out of
// scope by construction — it exchanges no messages, so there is no wire to
// corrupt.

import (
	"fmt"
	"testing"

	"dhc/internal/congest"
	"dhc/internal/core"
	"dhc/internal/dra"
	"dhc/internal/graph"
	"dhc/internal/wire"
)

// corruptEveryNth returns a fault hook that shifts the second argument of
// every nth message of the given kind — the perturbation of examples/faulty
// (a rotation renumbering off by one) generalized per message kind.
func corruptEveryNth(kind wire.Kind, nth int) congest.Options {
	count := 0
	return congest.Options{
		FaultHook: func(round int64, from, to graph.NodeID, m wire.Message) (wire.Message, bool) {
			if m.Kind == kind && m.NArgs > 1 {
				count++
				if count%nth == 0 {
					bad := m
					bad.Args[1]++
					return bad, true
				}
			}
			return m, true
		},
	}
}

// dropEveryNth returns a fault hook that silently drops every nth message
// (any kind) — loss rather than corruption.
func dropEveryNth(nth int) congest.Options {
	count := 0
	return congest.Options{
		FaultHook: func(round int64, from, to graph.NodeID, m wire.Message) (wire.Message, bool) {
			count++
			return m, count%nth != 0
		},
	}
}

// TestFaultHookNeverYieldsUnverifiedCycle runs DRA under a matrix of fault
// patterns and both scheduling modes. Every outcome must be safe: an error,
// or a cycle that independently verifies.
func TestFaultHookNeverYieldsUnverifiedCycle(t *testing.T) {
	skipIfShort(t)
	g := NewGNP(120, 0.4, 5)
	faults := map[string]func() congest.Options{
		"corrupt-rotation-50th": func() congest.Options { return corruptEveryNth(wire.KindRotation, 50) },
		"corrupt-rotation-7th":  func() congest.Options { return corruptEveryNth(wire.KindRotation, 7) },
		"drop-every-97th":       func() congest.Options { return dropEveryNth(97) },
	}
	sawFailure := false
	for name, mkOpts := range faults {
		for _, dense := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/dense=%v", name, dense), func(t *testing.T) {
				for seed := uint64(1); seed <= 3; seed++ {
					netOpts := mkOpts()
					netOpts.DenseSweep = dense
					res, err := dra.Run(g, seed, dra.NodeOptions{}, netOpts)
					if err != nil {
						sawFailure = true
						continue
					}
					// A survived run must still hold a genuinely valid
					// cycle under the independent verifier.
					if verr := Verify(g, res.Cycle); verr != nil {
						t.Fatalf("seed %d: perturbed run returned an unverified cycle: %v", seed, verr)
					}
				}
			})
		}
	}
	if !sawFailure {
		t.Fatal("no fault pattern ever failed a run — the hooks are not biting and the test is vacuous")
	}
}

// TestFaultHookAcrossAlgorithms extends the safety property to the
// partitioned algorithms: DHC1's and DHC2's multi-phase protocols (scoped
// floods, hypernode rotation, pairwise merges) must also fail closed when
// their coordination messages are corrupted.
func TestFaultHookAcrossAlgorithms(t *testing.T) {
	skipIfShort(t)
	g := NewGNP(160, 0.6, 9)
	for _, dense := range []bool{false, true} {
		t.Run(fmt.Sprintf("dhc1/dense=%v", dense), func(t *testing.T) {
			netOpts := corruptEveryNth(wire.KindRotation, 9)
			netOpts.DenseSweep = dense
			res, err := core.RunDHC1(g, 3, core.DHC1Options{NumColors: 4}, netOpts)
			if err == nil {
				if verr := Verify(g, res.Cycle); verr != nil {
					t.Fatalf("perturbed DHC1 returned an unverified cycle: %v", verr)
				}
			}
		})
		t.Run(fmt.Sprintf("dhc2/dense=%v", dense), func(t *testing.T) {
			netOpts := dropEveryNth(41)
			netOpts.DenseSweep = dense
			res, err := core.RunDHC2(g, 3, core.DHC2Options{NumColors: 4}, netOpts)
			if err == nil {
				if verr := Verify(g, res.Cycle); verr != nil {
					t.Fatalf("perturbed DHC2 returned an unverified cycle: %v", verr)
				}
			}
		})
	}
}

// TestFaultHookHealthyBaseline pins the control: with no faults the same
// instances solve cleanly, so the failures observed above are attributable
// to the injected faults and not to the instances.
func TestFaultHookHealthyBaseline(t *testing.T) {
	g := NewGNP(120, 0.4, 5)
	res, err := dra.Run(g, 1, dra.NodeOptions{}, congest.Options{})
	if err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	if err := Verify(g, res.Cycle); err != nil {
		t.Fatal(err)
	}
}
